package banks

import (
	"strings"
	"testing"

	"banks/internal/relational"
)

// fixtureDB builds the small bibliography database shared by the facade
// tests.
func fixtureDB(t testing.TB) *relational.Database {
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	conf, _ := db.CreateTable("conference", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conference"}})
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	paper.Append([]string{"Transaction Recovery Principles"}, []int32{0})
	paper.Append([]string{"Access Path Selection"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildAndSearch(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range Algorithms() {
		res, err := bdb.Search("gray transaction", algo, Options{K: 5})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answers", algo)
		}
		best := res.Answers[0]
		labels := make([]string, 0, len(best.Nodes))
		for _, u := range best.Nodes {
			labels = append(labels, bdb.NodeLabel(u))
		}
		joined := strings.Join(labels, ";")
		if !strings.Contains(joined, "Gray") || !strings.Contains(joined, "Transaction") {
			t.Fatalf("%s: best answer does not connect Gray to Transaction: %v", algo, labels)
		}
	}
}

func TestBuildPrestigeModes(t *testing.T) {
	src := fixtureDB(t)
	for _, mode := range []PrestigeMode{PrestigeRandomWalk, PrestigeIndegree, PrestigeUniform} {
		bdb, err := Build(src, BuildOptions{Prestige: mode})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if bdb.Graph.MaxPrestige() <= 0 {
			t.Fatalf("mode %d: prestige not set", mode)
		}
	}
	if _, err := Build(src, BuildOptions{Prestige: PrestigeMode(99)}); err == nil {
		t.Fatal("unknown prestige mode accepted")
	}
	if _, err := Build(nil, BuildOptions{}); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestSearchErrors(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bdb.Search("", Bidirectional, Options{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := bdb.Search("...!!!", Bidirectional, Options{}); err == nil {
		t.Fatal("punctuation-only query accepted")
	}
	if _, err := bdb.Search("gray", Algorithm("nope"), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSearchUnmatchedKeyword(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bdb.Search("gray zzzznotaword", Bidirectional, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers for unmatched keyword: %v", res.Answers)
	}
}

func TestRelationNameQuery(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	// "conference recovery": conference matches the relation (its only
	// tuple), recovery matches the Gray paper; the answer connects them
	// through the paper's conf FK.
	res, err := bdb.Search("conference recovery", Bidirectional, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers for relation-name query")
	}
}

func TestNearQuery(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := bdb.Near("gray recovery", Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || stats.NodesExplored == 0 {
		t.Fatalf("near query empty: %v %+v", res, stats)
	}
	if _, _, err := bdb.Near("", Options{}); err == nil {
		t.Fatal("empty near query accepted")
	}
}

func TestExplainRendering(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bdb.Search("gray transaction", Bidirectional, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	out := bdb.Explain(res.Answers[0])
	if !strings.Contains(out, "score=") || !strings.Contains(out, "writes[") {
		t.Fatalf("Explain output unexpected:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+res.Answers[0].Size() {
		t.Fatalf("Explain should print one line per node plus header:\n%s", out)
	}
}

func TestKeywordsTokenizer(t *testing.T) {
	got := Keywords("Gray, TRANSACTION; recovery!")
	want := []string{"gray", "transaction", "recovery"}
	if len(got) != len(want) {
		t.Fatalf("Keywords = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keywords = %v, want %v", got, want)
		}
	}
}

func TestSearchNodesDirect(t *testing.T) {
	bdb, err := Build(fixtureDB(t), BuildOptions{Prestige: PrestigeUniform})
	if err != nil {
		t.Fatal(err)
	}
	gray := bdb.KeywordNodes("gray")
	trans := bdb.KeywordNodes("transaction")
	if len(gray) != 1 || len(trans) != 1 {
		t.Fatalf("keyword nodes: gray=%v trans=%v", gray, trans)
	}
	res, err := bdb.SearchNodes([][]NodeID{gray, trans}, SIBackward, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers from SearchNodes")
	}
}
