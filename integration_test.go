package banks_test

import (
	"math/rand"
	"testing"

	"banks"
	"banks/internal/datagen"
	"banks/internal/experiments"
	"banks/internal/sparse"
	"banks/internal/workload"
)

// TestIntegrationAllDatasets runs the full pipeline — generate dataset,
// build graph/index/prestige, generate a workload query with ground truth,
// search with every algorithm — on each dataset family, and checks every
// algorithm retrieves a ground-truth answer.
func TestIntegrationAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	for _, name := range experiments.Datasets() {
		name := name
		t.Run(name, func(t *testing.T) {
			env, err := experiments.NewEnv(name, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			db := &banks.DB{
				Graph: env.Built.Graph, Index: env.Built.Index,
				Mapping: env.Built.Mapping, EdgeTypes: env.Built.EdgeTypes,
				Source: env.DS.DB,
			}
			rng := rand.New(rand.NewSource(17))
			var q *workload.Query
			ok := false
			for tries := 0; tries < 500 && !ok; tries++ {
				q, ok = env.Gen.SizeFive(rng, 3, workload.OriginAny)
			}
			if !ok {
				t.Fatal("no workload query")
			}
			for _, algo := range banks.Algorithms() {
				res, err := db.SearchNodes(q.Keywords, algo, banks.Options{K: 40, MaxNodes: 400_000})
				if err != nil {
					t.Fatalf("%s: %v", algo, err)
				}
				m := experiments.Measure(res, q)
				if m.Found == 0 {
					t.Errorf("%s on %s: ground-truth answer not retrieved (total %d, answers %d)",
						algo, name, m.Total, len(res.Answers))
				}
			}
		})
	}
}

// TestIntegrationSparseAgreesWithGraphSearch checks that the Sparse
// baseline retrieves the same ground-truth connections as the graph
// algorithms on a combo query.
func TestIntegrationSparseAgreesWithGraphSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	env, err := experiments.NewEnv("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	combo := [4]datagen.Band{datagen.BandTiny, datagen.BandSmall, datagen.BandMedium, datagen.BandLarge}
	q, ok := env.Gen.Combo(rng, combo)
	if !ok {
		t.Fatal("no combo query")
	}
	out, err := sparse.Run(env.DS.DB, q.Terms, q.AnswerSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth node set must appear among Sparse's results.
	got := map[workload.NodeSet]bool{}
	for _, r := range out.Results {
		ids := make([]banks.NodeID, len(r.Rows))
		for i, ref := range r.Rows {
			ids[i] = env.Built.Mapping.NodeOf(ref)
		}
		got[workload.CanonNodes(ids)] = true
	}
	for set := range q.Relevant {
		if !got[set] {
			t.Errorf("sparse missed ground-truth result %s", set)
		}
	}
	if len(out.CNs) == 0 {
		t.Fatal("no candidate networks")
	}
}

// TestIntegrationBidirectionalBeatsBackwardOnSkewedQuery asserts the
// paper's central claim end to end: on a query mixing a tiny origin with a
// large one, Bidirectional search generates the relevant answer after
// exploring a fraction of what Backward search explores.
func TestIntegrationBidirectionalBeatsBackwardOnSkewedQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short")
	}
	env, err := experiments.NewEnv("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	T, L := datagen.BandTiny, datagen.BandLarge
	var sumSI, sumBI float64
	n := 0
	for i := 0; i < 5; i++ {
		q, ok := env.Gen.Combo(rng, [4]datagen.Band{T, T, L, L})
		if !ok {
			continue
		}
		db := &banks.DB{Graph: env.Built.Graph, Index: env.Built.Index,
			Mapping: env.Built.Mapping, EdgeTypes: env.Built.EdgeTypes, Source: env.DS.DB}
		si, err := db.SearchNodes(q.Keywords, banks.SIBackward, banks.Options{K: 10, MaxNodes: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		bi, err := db.SearchNodes(q.Keywords, banks.Bidirectional, banks.Options{K: 10, MaxNodes: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		mSI, mBI := experiments.Measure(si, q), experiments.Measure(bi, q)
		if mSI.Found == 0 || mBI.Found == 0 {
			continue
		}
		sumSI += float64(mSI.Explored)
		sumBI += float64(mBI.Explored)
		n++
	}
	if n == 0 {
		t.Fatal("no measurable queries")
	}
	if sumBI*1.5 >= sumSI {
		t.Errorf("bidirectional explored %v vs backward %v at last relevant answer; expected ≥1.5× advantage",
			sumBI/float64(n), sumSI/float64(n))
	}
}
