package banks

import (
	"context"
	"errors"
	"fmt"

	"banks/internal/delta"
	"banks/internal/graph"
	"banks/internal/prestige"
)

// Live-mutation types, aliased from internal/delta so callers only import
// this package.
type (
	// MutationOp is one mutation operation: a node/edge/term insert or
	// delete. See docs/MUTATIONS.md for per-kind field requirements and
	// semantics.
	MutationOp = delta.Op
	// MutationKind discriminates MutationOp.
	MutationKind = delta.OpKind
	// LiveStats is a point-in-time snapshot of live-mutation state:
	// generation, delta sizes, and mutation/compaction counters.
	LiveStats = delta.Stats
)

// Mutation operation kinds.
const (
	OpInsertNode = delta.OpInsertNode
	OpInsertEdge = delta.OpInsertEdge
	OpDeleteNode = delta.OpDeleteNode
	OpDeleteEdge = delta.OpDeleteEdge
	OpInsertTerm = delta.OpInsertTerm
	OpDeleteTerm = delta.OpDeleteTerm
)

// LiveOptions configures OpenLive.
type LiveOptions struct {
	// SnapshotPath, when non-empty, enables compaction: generation N is
	// written to SnapshotPath + ".genN" (temp file + atomic rename) and
	// hot-swapped in as the new base. Empty disables Compact.
	SnapshotPath string
	// Prestige must match how the base DB's prestige was computed; the
	// overlay recomputes prestige over the mutated graph in the same mode
	// so scores stay consistent with a from-scratch build.
	Prestige PrestigeMode
	// PrestigeOptions tunes the random-walk mode (ignored otherwise).
	PrestigeOptions PrestigeOptions
}

// PrestigeOptions re-exports the random-walk tuning knobs (the same type
// BuildOptions.PrestigeOptions takes).
type PrestigeOptions = prestige.Options

// Live turns an Engine into a mutable serving instance: mutation batches
// apply to an in-memory delta overlay on the immutable base and become
// visible to queries atomically (each in-flight query keeps the exact
// state it started with), and Compact folds the overlay into a new
// snapshot generation on disk, hot-swapping it in with zero dropped
// queries.
//
// All mutating entry points serialize internally; queries never block on
// them. The Engine's result cache is keyed by (generation, delta version),
// so mutations invalidate exactly the stale entries.
type Live struct {
	e *Engine
	m *delta.Manager
	// baseNodes is the node count of the process-initial base. The DB's
	// row mapping covers exactly those nodes; nodes appended later get
	// synthetic labels even after a compaction folds them into the base.
	baseNodes int
}

// OpenLive enables live mutations on an Engine. The engine's queries are
// redirected through the mutation overlay from this point on (at zero
// overlay cost until the first mutation). The DB backing the engine must
// not be Closed while Live is in use; compacted generations are managed
// internally.
func OpenLive(e *Engine, opts LiveOptions) (*Live, error) {
	if e == nil {
		return nil, errors.New("banks: OpenLive requires an engine")
	}
	d := e.db
	var generation uint64
	if d.snap != nil {
		generation = d.snap.Generation
	}
	mode := delta.PrestigeRandomWalk
	switch opts.Prestige {
	case PrestigeIndegree:
		mode = delta.PrestigeIndegree
	case PrestigeUniform:
		mode = delta.PrestigeUniform
	}
	m, err := delta.NewManager(delta.Config{
		Engine:          e.e,
		Graph:           d.Graph,
		Index:           d.Index,
		Mapping:         d.Mapping,
		EdgeTypes:       d.EdgeTypes,
		Generation:      generation,
		SnapshotPath:    opts.SnapshotPath,
		Mode:            mode,
		PrestigeOptions: opts.PrestigeOptions,
	})
	if err != nil {
		return nil, err
	}
	return &Live{e: e, m: m, baseNodes: d.Graph.NumNodes()}, nil
}

// Apply validates and applies one mutation batch atomically: either every
// op is applied and visible to all queries arriving afterwards, or none
// is and the error names the offending op. It returns the NodeIDs
// assigned to the batch's insert_node ops, in op order.
func (l *Live) Apply(ops []MutationOp) ([]NodeID, error) {
	return l.m.Apply(ops)
}

// Compact folds the current overlay into a snapshot file of the next
// generation and hot-swaps it in as the new base without dropping
// in-flight queries. Returns the new generation and the file path.
func (l *Live) Compact(ctx context.Context) (uint64, string, error) {
	return l.m.Compact(ctx)
}

// Stats samples the live-mutation state.
func (l *Live) Stats() LiveStats { return l.m.Stats() }

// Generation returns the current base snapshot generation.
func (l *Live) Generation() uint64 { return l.m.Stats().Generation }

// NodeLabel renders a node for display, replacing DB.NodeLabel for
// mutable instances: nodes of the process-initial base keep their
// "table[row]" labels from the row mapping, nodes inserted at runtime —
// which have no source row — are labeled "table[+k]" by insertion order.
// Tombstoned nodes are labeled as deleted.
func (l *Live) NodeLabel(u NodeID) string {
	v := l.m.View()
	if int(u) >= v.NumNodes() {
		return fmt.Sprintf("node[%d]", u)
	}
	if v.Deleted(u) {
		return fmt.Sprintf("%s[deleted %d]", v.Table(u), u)
	}
	if int(u) < l.baseNodes {
		return l.e.db.NodeLabel(u)
	}
	return fmt.Sprintf("%s[+%d]", v.Table(u), int(u)-l.baseNodes)
}

// Explain renders an answer tree like DB.Explain, routing labels through
// the overlay so answers containing runtime-inserted nodes render instead
// of faulting on the row mapping.
func (l *Live) Explain(a *Answer) string {
	return explainTree(l.NodeLabel, a)
}

// EdgeTypeName resolves an edge-type ID to its schema name ("" for the
// generic type 0 and for IDs the base schema does not define).
func (l *Live) EdgeTypeName(t graph.EdgeType) string {
	if l.e.db.EdgeTypes == nil {
		return ""
	}
	return l.e.db.EdgeTypes.Name(t)
}

// Generation returns the snapshot generation of a snapshot-backed DB
// (0 for built DBs and for snapshot files that predate generations).
func (d *DB) Generation() uint64 {
	if d.snap == nil {
		return 0
	}
	return d.snap.Generation
}
