package banks

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"banks/internal/delta"
	"banks/internal/graph"
	"banks/internal/prestige"
	"banks/internal/wal"
)

// Live-mutation types, aliased from internal/delta so callers only import
// this package.
type (
	// MutationOp is one mutation operation: a node/edge/term insert or
	// delete. See docs/MUTATIONS.md for per-kind field requirements and
	// semantics.
	MutationOp = delta.Op
	// MutationKind discriminates MutationOp.
	MutationKind = delta.OpKind
	// LiveStats is a point-in-time snapshot of live-mutation state:
	// generation, delta sizes, and mutation/compaction counters.
	LiveStats = delta.Stats
	// ApplyResult reports one acknowledged mutation batch: assigned
	// NodeIDs, the (generation, delta_version) it produced — the
	// read-your-writes token — and its WAL offset (-1 without a WAL).
	ApplyResult = delta.ApplyResult
	// CompactResult reports one completed compaction: the new generation,
	// its snapshot path, and whether the WAL was truncated.
	CompactResult = delta.CompactResult
	// WALError marks a mutation batch that was valid but could not be
	// made durable; it was not applied.
	WALError = delta.WALError
	// WALStats samples the write-ahead log's position and activity.
	WALStats = wal.Stats
	// WALFsyncPolicy selects when the write-ahead log fsyncs:
	// WALFsyncAlways, WALFsyncInterval, or WALFsyncNever.
	WALFsyncPolicy = wal.Policy
)

// Write-ahead-log fsync policies (see docs/MUTATIONS.md for the ack
// guarantee each one buys).
const (
	WALFsyncAlways   = wal.PolicyAlways
	WALFsyncInterval = wal.PolicyInterval
	WALFsyncNever    = wal.PolicyNever
)

// ParseWALFsyncPolicy parses a policy name ("always", "interval",
// "never") — the banksd -wal-fsync flag values — into a WALFsyncPolicy.
func ParseWALFsyncPolicy(s string) (WALFsyncPolicy, error) {
	return wal.ParsePolicy(s)
}

// Mutation operation kinds.
const (
	OpInsertNode = delta.OpInsertNode
	OpInsertEdge = delta.OpInsertEdge
	OpDeleteNode = delta.OpDeleteNode
	OpDeleteEdge = delta.OpDeleteEdge
	OpInsertTerm = delta.OpInsertTerm
	OpDeleteTerm = delta.OpDeleteTerm
)

// LiveOptions configures OpenLive.
type LiveOptions struct {
	// SnapshotPath, when non-empty, enables compaction: generation N is
	// written to SnapshotPath + ".genN" (temp file + atomic rename) and
	// hot-swapped in as the new base. Empty disables Compact.
	SnapshotPath string
	// Prestige must match how the base DB's prestige was computed; the
	// overlay recomputes prestige over the mutated graph in the same mode
	// so scores stay consistent with a from-scratch build.
	Prestige PrestigeMode
	// PrestigeOptions tunes the random-walk mode (ignored otherwise).
	PrestigeOptions PrestigeOptions

	// WALPath, when non-empty, enables the write-ahead log: every batch
	// is appended (and, per WALFsync, fsync'd) there before Apply
	// acknowledges it, and OpenLive replays any records found at the
	// path — crash recovery. The conventional path is SnapshotPath +
	// ".wal" (what banksd -wal uses).
	WALPath string
	// WALFsync is the log's fsync policy (empty means WALFsyncAlways).
	WALFsync WALFsyncPolicy
	// WALFsyncInterval is the WALFsyncInterval group-commit window
	// (0 means the wal package default, 100ms).
	WALFsyncInterval time.Duration
}

// PrestigeOptions re-exports the random-walk tuning knobs (the same type
// BuildOptions.PrestigeOptions takes).
type PrestigeOptions = prestige.Options

// Live turns an Engine into a mutable serving instance: mutation batches
// apply to an in-memory delta overlay on the immutable base and become
// visible to queries atomically (each in-flight query keeps the exact
// state it started with), and Compact folds the overlay into a new
// snapshot generation on disk, hot-swapping it in with zero dropped
// queries. With a write-ahead log configured, Apply's acknowledgment
// additionally means the batch is durable per the fsync policy and will
// survive a crash and restart.
//
// All mutating entry points serialize internally; queries never block on
// them. The Engine's result cache is keyed by (generation, delta version),
// so mutations invalidate exactly the stale entries.
type Live struct {
	e *Engine
	m *delta.Manager
	w *wal.Log // nil without a WAL
	// baseNodes is the node count of the process-initial base. The DB's
	// row mapping covers exactly those nodes; nodes appended later get
	// synthetic labels even after a compaction folds them into the base.
	// Atomic because a replication follower overrides it with the
	// primary's value (SetBaseNodes) while queries render labels.
	baseNodes atomic.Int64
	// replayed is how many WAL records OpenLive recovered.
	replayed int
}

// OpenLive enables live mutations on an Engine. The engine's queries are
// redirected through the mutation overlay from this point on (at zero
// overlay cost until the first mutation). The DB backing the engine must
// not be Closed while Live is in use; compacted generations are managed
// internally.
//
// When LiveOptions.WALPath names an existing write-ahead log, OpenLive
// replays it: records stamped with the base's generation rebuild the
// overlay batch by batch (stale records from before the base snapshot
// are skipped; a log that is ahead of the snapshot, or has a hole, is
// refused). A torn final record — a crash mid-append — is discarded, it
// was never acknowledged.
func OpenLive(e *Engine, opts LiveOptions) (*Live, error) {
	if e == nil {
		return nil, errors.New("banks: OpenLive requires an engine")
	}
	d := e.db
	var generation uint64
	if d.snap != nil {
		generation = d.snap.Generation
	}
	mode := delta.PrestigeRandomWalk
	switch opts.Prestige {
	case PrestigeIndegree:
		mode = delta.PrestigeIndegree
	case PrestigeUniform:
		mode = delta.PrestigeUniform
	}

	var (
		log  *wal.Log
		recs []wal.Record
		err  error
	)
	if opts.WALPath != "" {
		log, recs, err = wal.Open(opts.WALPath, wal.Options{
			Policy:   opts.WALFsync,
			Interval: opts.WALFsyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("banks: open WAL: %w", err)
		}
	}

	cfg := delta.Config{
		Engine:          e.e,
		Graph:           d.Graph,
		Index:           d.Index,
		Mapping:         d.Mapping,
		EdgeTypes:       d.EdgeTypes,
		Generation:      generation,
		SnapshotPath:    opts.SnapshotPath,
		Mode:            mode,
		PrestigeOptions: opts.PrestigeOptions,
	}
	if log != nil {
		cfg.Log = log
	}
	m, err := delta.NewManager(cfg)
	if err != nil {
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	l := &Live{e: e, m: m, w: log}
	l.baseNodes.Store(int64(d.Graph.NumNodes()))
	for _, rec := range recs {
		applied, err := m.Replay(rec.Generation, rec.Version, rec.Ops)
		if err != nil {
			if log != nil {
				log.Close()
			}
			return nil, fmt.Errorf("banks: WAL replay: %w", err)
		}
		if applied {
			l.replayed++
		}
	}
	return l, nil
}

// Apply validates and applies one mutation batch atomically: either every
// op is applied and visible to all queries arriving afterwards, or none
// is and the error names the offending op. With a WAL configured the
// batch is durable (per the fsync policy) before Apply returns; a
// *WALError means the batch was valid but could not be made durable and
// was NOT applied. The result carries the assigned NodeIDs and the
// read-your-writes (generation, delta_version, wal_offset) tokens.
func (l *Live) Apply(ops []MutationOp) (*ApplyResult, error) {
	return l.m.Apply(ops)
}

// Compact folds the current overlay into a snapshot file of the next
// generation and hot-swaps it in as the new base without dropping
// in-flight queries. Once the new generation is durable on disk the
// write-ahead log is truncated — its records are redundant with the
// snapshot.
func (l *Live) Compact(ctx context.Context) (*CompactResult, error) {
	return l.m.Compact(ctx)
}

// Stats samples the live-mutation state.
func (l *Live) Stats() LiveStats { return l.m.Stats() }

// WALStats samples the write-ahead log (zero value when no WAL is
// configured; check HasWAL).
func (l *Live) WALStats() WALStats {
	if l.w == nil {
		return WALStats{}
	}
	return l.w.Stats()
}

// HasWAL reports whether a write-ahead log is configured.
func (l *Live) HasWAL() bool { return l.w != nil }

// Replayed returns how many WAL records OpenLive recovered into the
// overlay.
func (l *Live) Replayed() int { return l.replayed }

// Close releases live-mutation resources (today: syncs and closes the
// WAL). The Engine and DB stay usable; Close is not required when the
// process is exiting anyway.
func (l *Live) Close() error {
	if l.w == nil {
		return nil
	}
	return l.w.Close()
}

// Generation returns the current base snapshot generation.
func (l *Live) Generation() uint64 { return l.m.Stats().Generation }

// DeltaVersion returns the number of mutation batches applied onto the
// current base — with Generation, the logical position replication lag
// is measured against.
func (l *Live) DeltaVersion() uint64 { return l.m.Stats().DeltaVersion }

// BasePath returns the snapshot file backing the current base (the
// newest compacted generation, or the process-initial snapshot). Empty
// when no snapshot path is configured — such an instance cannot
// bootstrap replication followers.
func (l *Live) BasePath() string { return l.m.BasePath() }

// BaseNodes returns the node count that splits mapped row labels from
// synthetic "+k" labels (see NodeLabel).
func (l *Live) BaseNodes() int { return int(l.baseNodes.Load()) }

// SetBaseNodes overrides the label split point. A replication follower
// adopts its primary's value so both render byte-identical labels even
// when the follower bootstrapped from a compacted snapshot whose node
// count already includes appended nodes.
func (l *Live) SetBaseNodes(n int) { l.baseNodes.Store(int64(n)) }

// WALSize returns the write-ahead log's current end offset (0 without
// a WAL). For a primary this is the replication position followers
// chase; for a follower it is the position already applied locally.
func (l *Live) WALSize() int64 {
	if l.w == nil {
		return 0
	}
	return l.w.Size()
}

// WALChanged returns a channel closed at the log's next append or
// reset (nil without a WAL) — the replication publisher's long-poll
// hook. Grab the channel, then check WALSize, then wait.
func (l *Live) WALChanged() <-chan struct{} {
	if l.w == nil {
		return nil
	}
	return l.w.Changed()
}

// WALReadAt serves whole log frames from the given offset (the
// replication wire payload). See wal.Log.ReadAt for the contract.
func (l *Live) WALReadAt(from int64, max int) ([]byte, int64, error) {
	if l.w == nil {
		return nil, 0, errors.New("banks: no write-ahead log configured")
	}
	return l.w.ReadAt(from, max)
}

// ReplayLogged applies one replicated record under the WAL replay
// idempotence rules and appends it to the local log, keeping the
// follower's log byte-identical to the primary's. See
// delta.Manager.ReplayLogged.
func (l *Live) ReplayLogged(generation, version uint64, ops []MutationOp) (applied bool, offset int64, err error) {
	return l.m.ReplayLogged(generation, version, ops)
}

// AdoptSnapshot hot-swaps an externally fetched snapshot in as the new
// base (a follower crossing its primary's compaction), truncating the
// local WAL. Returns the adopted generation.
func (l *Live) AdoptSnapshot(ctx context.Context, path string) (uint64, error) {
	return l.m.AdoptBase(ctx, path)
}

// LatestSnapshotPath resolves the newest snapshot generation for a base
// path: the highest path+".genN" compaction output if any exists, else
// the base path itself. Restarting servers open this so recovery
// resumes from the newest durable base (the WAL's stale records are
// skipped by generation).
func LatestSnapshotPath(path string) string {
	matches, err := filepath.Glob(path + ".gen*")
	if err != nil || len(matches) == 0 {
		return path
	}
	best, bestGen := path, uint64(0)
	for _, m := range matches {
		suffix := strings.TrimPrefix(m, path+".gen")
		gen, err := strconv.ParseUint(suffix, 10, 64)
		if err != nil {
			continue
		}
		if gen > bestGen {
			best, bestGen = m, gen
		}
	}
	return best
}

// NodeLabel renders a node for display, replacing DB.NodeLabel for
// mutable instances: nodes of the process-initial base keep their
// "table[row]" labels from the row mapping, nodes inserted at runtime —
// which have no source row — are labeled "table[+k]" by insertion order.
// Tombstoned nodes are labeled as deleted.
func (l *Live) NodeLabel(u NodeID) string {
	v := l.m.View()
	if int(u) >= v.NumNodes() {
		return fmt.Sprintf("node[%d]", u)
	}
	if v.Deleted(u) {
		return fmt.Sprintf("%s[deleted %d]", v.Table(u), u)
	}
	base := int(l.baseNodes.Load())
	if int(u) < base {
		return l.e.db.NodeLabel(u)
	}
	return fmt.Sprintf("%s[+%d]", v.Table(u), int(u)-base)
}

// Explain renders an answer tree like DB.Explain, routing labels through
// the overlay so answers containing runtime-inserted nodes render instead
// of faulting on the row mapping.
func (l *Live) Explain(a *Answer) string {
	return explainTree(l.NodeLabel, a)
}

// EdgeTypeName resolves an edge-type ID to its schema name ("" for the
// generic type 0 and for IDs the base schema does not define).
func (l *Live) EdgeTypeName(t graph.EdgeType) string {
	if l.e.db.EdgeTypes == nil {
		return ""
	}
	return l.e.db.EdgeTypes.Name(t)
}

// Generation returns the snapshot generation of a snapshot-backed DB
// (0 for built DBs and for snapshot files that predate generations).
func (d *DB) Generation() uint64 {
	if d.snap == nil {
		return 0
	}
	return d.snap.Generation
}
