// Command banks runs interactive keyword search over a generated dataset,
// the way the original BANKS web demo worked.
//
// Usage:
//
//	banks [-dataset dblp|imdb|patents] [-factor 0.25] [-algo bidirectional]
//	      [-k 10] [-near] [-stream] [-timeout 200ms] [-parallel 4] [-workers 4]
//	      [-snapshot dblp.snap] [-query "gray transaction"]
//
// -stream prints each answer the moment the search outputs it (the
// paper's §5.2 interactive delivery) instead of waiting for the full
// top-k, and reports the first-answer latency alongside the total.
//
// -parallel widens the pool that runs queries concurrently; -workers lets
// each single query use that many extra goroutines for its own search
// (intra-query parallelism, bit-identical results). Both draw on the same
// pool budget when combined.
//
// Without -query it reads one query per line from standard input. A -query
// value may contain several queries separated by ';' — tree-search queries
// are executed as one batch fanned out across -parallel workers; with -near
// or -stream they run sequentially (near queries have no batch API yet, and
// interleaving several streams would garble the incremental output).
//
// -snapshot serves queries from a memory-mapped snapshot file (see cmd/
// datagen -out): if the file exists it is opened without any rebuild; if
// it does not, the dataset is built from -dataset/-factor and saved there
// for next time. Snapshot-served answers are bit-identical to built ones,
// but nodes are labeled "table[row]" (source row text is not persisted).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"banks"
	"banks/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banks: ")

	dataset := flag.String("dataset", "dblp", "dataset family: dblp, imdb or patents")
	factor := flag.Float64("factor", 0.25, "dataset scale factor (1 ≈ 180k tuples)")
	algo := flag.String("algo", string(banks.Bidirectional), "search algorithm: bidirectional, si-backward or mi-backward")
	k := flag.Int("k", 10, "answers to return")
	near := flag.Bool("near", false, "run a near query (activation-ranked nodes) instead of tree search")
	stream := flag.Bool("stream", false, "print answers as they are output (incremental delivery with first-answer latency)")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none); expired queries return a truncated partial top-k")
	parallel := flag.Int("parallel", 0, "worker-pool width for batch queries (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "intra-query worker goroutines per search (0 = serial; results are bit-identical either way)")
	snapshot := flag.String("snapshot", "", "open this snapshot file (building and saving it first if absent)")
	query := flag.String("query", "", "run a single query (or several separated by ';') and exit (default: read queries from stdin)")
	flag.Parse()

	db, err := openOrBuild(*snapshot, *dataset, *factor)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: *parallel, DefaultTimeout: *timeout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s ready: %d nodes, %d edges, %d terms (%d workers)\n",
		*dataset, db.Graph.NumNodes(), db.Graph.NumEdges(), db.Index.NumTerms(), eng.Workers())

	opts := banks.Options{K: *k, Workers: *workers}
	ctx := context.Background()

	printResult := func(res *banks.Result, elapsed time.Duration) {
		trunc := ""
		if res.Stats.Truncated {
			trunc = " [truncated by deadline]"
		}
		fmt.Printf("%d answers in %v (explored %d, touched %d)%s:\n",
			len(res.Answers), elapsed.Round(time.Microsecond),
			res.Stats.NodesExplored, res.Stats.NodesTouched, trunc)
		for i, a := range res.Answers {
			fmt.Printf("--- answer %d ---\n%s", i+1, db.Explain(a))
		}
	}

	// runStream delivers answers as the search outputs them, printing the
	// first-answer latency — the number streaming exists to shrink.
	runStream := func(q string, start time.Time) {
		st, err := eng.SearchStream(ctx, q, banks.Algorithm(*algo), opts, banks.StreamOptions{})
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		n := 0
		for ev := range st.Answers() {
			n++
			if n == 1 {
				fmt.Printf("first answer in %v (output at +%v into the search)\n",
					time.Since(start).Round(time.Microsecond), ev.OutputAt.Round(time.Microsecond))
			}
			fmt.Printf("--- answer %d (+%v) ---\n%s", ev.Rank, ev.OutputAt.Round(time.Microsecond), db.Explain(ev.Answer))
		}
		tr, err := st.Trailer()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		suffix := ""
		if tr.Truncated {
			suffix = " [truncated by deadline]"
		}
		if tr.Cached {
			suffix += " [replayed from cache]"
		}
		fmt.Printf("%d answers in %v (explored %d, touched %d)%s\n",
			n, time.Since(start).Round(time.Microsecond),
			tr.Stats.NodesExplored, tr.Stats.NodesTouched, suffix)
	}

	runOne := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		start := time.Now()
		if *near {
			res, stats, err := eng.Near(ctx, q, opts)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			trunc := ""
			if stats.Truncated {
				trunc = " [truncated by deadline]"
			}
			fmt.Printf("%d nodes in %v (explored %d)%s:\n",
				len(res), time.Since(start).Round(time.Microsecond), stats.NodesExplored, trunc)
			for i, r := range res {
				fmt.Printf("%2d. a=%.5f %s\n", i+1, r.Activation, db.NodeLabel(r.Node))
			}
			return
		}
		if *stream {
			runStream(q, start)
			return
		}
		res, err := eng.Search(ctx, q, banks.Algorithm(*algo), opts)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		printResult(res, time.Since(start))
	}

	runBatch := func(queries []string) {
		batch := make([]banks.BatchQuery, len(queries))
		for i, q := range queries {
			batch[i] = banks.BatchQuery{Query: q, Algo: banks.Algorithm(*algo), Opts: opts}
		}
		start := time.Now()
		results, errs := eng.SearchBatch(ctx, batch)
		fmt.Printf("batch of %d queries in %v across %d workers\n",
			len(batch), time.Since(start).Round(time.Microsecond), eng.Workers())
		for i := range results {
			fmt.Printf("=== query %d: %q ===\n", i+1, queries[i])
			if errs[i] != nil {
				fmt.Printf("error: %v\n", errs[i])
				continue
			}
			printResult(results[i], results[i].Stats.Duration)
		}
	}

	if *query != "" {
		var queries []string
		for _, q := range strings.Split(*query, ";") {
			if q = strings.TrimSpace(q); q != "" {
				queries = append(queries, q)
			}
		}
		switch {
		case len(queries) == 0:
			log.Fatal("no queries in -query")
		case len(queries) == 1 || *near || *stream:
			for _, q := range queries {
				runOne(q)
			}
		default:
			runBatch(queries)
		}
		return
	}
	fmt.Println("enter keyword queries, one per line (ctrl-D to exit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		runOne(sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// openOrBuild serves the DB from a snapshot when one is requested and
// present; otherwise it builds from the generated dataset (and, with
// -snapshot set, saves the snapshot for the next run).
func openOrBuild(snapshot, dataset string, factor float64) (*banks.DB, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			start := time.Now()
			db, err := banks.OpenSnapshot(snapshot)
			if err != nil {
				return nil, err
			}
			fmt.Printf("opened snapshot %s in %v (zero-copy=%v)\n",
				snapshot, time.Since(start).Round(time.Microsecond), db.SnapshotZeroCopy())
			return db, nil
		}
	}
	db, err := buildDataset(dataset, factor)
	if err != nil {
		return nil, err
	}
	if snapshot != "" {
		if err := db.WriteSnapshotFile(snapshot); err != nil {
			return nil, err
		}
		fmt.Printf("saved snapshot %s\n", snapshot)
	}
	return db, nil
}

func buildDataset(name string, factor float64) (*banks.DB, error) {
	var (
		ds  *datagen.Dataset
		err error
	)
	switch name {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(factor))
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	return banks.Build(ds.DB, banks.BuildOptions{})
}
