// Command banks runs interactive keyword search over a generated dataset,
// the way the original BANKS web demo worked.
//
// Usage:
//
//	banks [-dataset dblp|imdb|patents] [-factor 0.25] [-algo bidirectional]
//	      [-k 10] [-near] [-query "gray transaction"]
//
// Without -query it reads one query per line from standard input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"banks"
	"banks/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banks: ")

	dataset := flag.String("dataset", "dblp", "dataset family: dblp, imdb or patents")
	factor := flag.Float64("factor", 0.25, "dataset scale factor (1 ≈ 180k tuples)")
	algo := flag.String("algo", string(banks.Bidirectional), "search algorithm: bidirectional, si-backward or mi-backward")
	k := flag.Int("k", 10, "answers to return")
	near := flag.Bool("near", false, "run a near query (activation-ranked nodes) instead of tree search")
	query := flag.String("query", "", "run a single query and exit (default: read queries from stdin)")
	flag.Parse()

	db, err := buildDataset(*dataset, *factor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s ready: %d nodes, %d edges, %d terms\n",
		*dataset, db.Graph.NumNodes(), db.Graph.NumEdges(), db.Index.NumTerms())

	runOne := func(q string) {
		q = strings.TrimSpace(q)
		if q == "" {
			return
		}
		start := time.Now()
		if *near {
			res, stats, err := db.Near(q, banks.Options{K: *k})
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			fmt.Printf("%d nodes in %v (explored %d):\n", len(res), time.Since(start).Round(time.Microsecond), stats.NodesExplored)
			for i, r := range res {
				fmt.Printf("%2d. a=%.5f %s\n", i+1, r.Activation, db.NodeLabel(r.Node))
			}
			return
		}
		res, err := db.Search(q, banks.Algorithm(*algo), banks.Options{K: *k})
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("%d answers in %v (explored %d, touched %d):\n",
			len(res.Answers), time.Since(start).Round(time.Microsecond),
			res.Stats.NodesExplored, res.Stats.NodesTouched)
		for i, a := range res.Answers {
			fmt.Printf("--- answer %d ---\n%s", i+1, db.Explain(a))
		}
	}

	if *query != "" {
		runOne(*query)
		return
	}
	fmt.Println("enter keyword queries, one per line (ctrl-D to exit):")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		runOne(sc.Text())
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func buildDataset(name string, factor float64) (*banks.DB, error) {
	var (
		ds  *datagen.Dataset
		err error
	)
	switch name {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(factor))
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	return banks.Build(ds.DB, banks.BuildOptions{})
}
