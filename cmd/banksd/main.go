// Command banksd serves BANKS keyword search over HTTP: the interactive,
// multi-tenant front end the paper's system implies (§1), layered on
// banks.Engine. See docs/SERVING.md for the API.
//
// Usage:
//
//	banksd [-addr :8080] [-snapshot dblp.snap | -dataset dblp -factor 0.25]
//	       [-parallel 0] [-cache 256] [-max-inflight 0]
//	       [-tenants tenants.json] [-drain-timeout 15s]
//	       [-live [-wal] [-wal-fsync always] [-compact-after-ops N] [-compact-after-bytes N]]
//
// -snapshot serves from a memory-mapped snapshot file (see cmd/datagen
// -out), building and saving it first if absent — the fast path for
// production restarts. -parallel sets the engine worker-pool width
// (0 = GOMAXPROCS) and -max-inflight the admission limit (0 = 4× pool).
// -tenants points at a JSON file of per-tenant caps (docs/SERVING.md has
// the schema); without it every tenant gets the built-in limits.
//
// With -live, -wal write-ahead-logs every acknowledged mutation batch to
// <snapshot>.wal (fsync per -wal-fsync) and replays the log on restart,
// so a crash loses nothing that was acknowledged; restarts also resume
// from the newest <snapshot>.genN compaction output. -compact-after-ops
// and -compact-after-bytes bound recovery time by folding the overlay
// into a new generation automatically. See docs/MUTATIONS.md and
// docs/WAL_FORMAT.md.
//
// On SIGTERM or SIGINT the server drains gracefully: /healthz flips to
// 503, listeners close, in-flight requests run to completion (bounded by
// -drain-timeout), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"banks"
	"banks/internal/datagen"
	"banks/internal/repl"
	"banks/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banksd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "dblp", "dataset family: dblp, imdb or patents")
	factor := flag.Float64("factor", 0.25, "dataset scale factor (1 ≈ 180k tuples)")
	snapshot := flag.String("snapshot", "", "serve from this snapshot file (building and saving it first if absent)")
	parallel := flag.Int("parallel", 0, "engine worker-pool width (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 0, "result-cache entries (0 = default 256, negative disables)")
	maxInFlight := flag.Int("max-inflight", 0, "admission limit on concurrent query requests (0 = 4x pool width)")
	tenantsPath := flag.String("tenants", "", "JSON file of per-tenant serving limits (see docs/SERVING.md)")
	liveFlag := flag.Bool("live", false, "enable live mutations (POST /v1/mutate and /v1/compact; see docs/MUTATIONS.md)")
	livePrestige := flag.String("live-prestige", "random-walk", "prestige mode the served data was built with (random-walk, indegree, uniform); the mutation overlay recomputes prestige in the same mode")
	walFlag := flag.Bool("wal", false, "write-ahead-log mutations for crash recovery (requires -live and -snapshot; the log lives at <snapshot>.wal and is replayed on restart; see docs/WAL_FORMAT.md)")
	walPath := flag.String("wal-path", "", "write-ahead-log file (overrides the <snapshot>.wal convention; implies -wal)")
	walFsync := flag.String("wal-fsync", "always", "WAL fsync policy: always (fsync before every ack), interval (group commit), never (leave it to the OS)")
	compactAfterOps := flag.Uint64("compact-after-ops", 0, "auto-compact once this many ops accumulate since the base generation (0 disables)")
	compactAfterBytes := flag.Int64("compact-after-bytes", 0, "auto-compact once the WAL grows past this many bytes (0 disables)")
	follow := flag.String("follow", "", "run as a replication follower tailing this primary's WAL, e.g. http://primary:8080 (requires -live -wal -snapshot; local writes answer 409 not_primary; see docs/REPLICATION.md)")
	legacyErrors := flag.Bool("legacy-errors", true, "keep the deprecated error-envelope mirror fields (top-level code, error.status, error.message); false emits the pure v1 shape (see docs/ERRORS.md)")
	streamDropToBatch := flag.Bool("stream-drop-to-batch", false, "degrade slow /v1/search/stream consumers to batch delivery instead of blocking answer generation (see docs/STREAMING.md)")
	drainGrace := flag.Duration("drain-grace", time.Second, "window between /healthz turning 503 and the listener closing, so load balancers can observe unreadiness and stop routing (0 for tests)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long graceful shutdown waits for in-flight requests")
	flag.Parse()

	tenants := server.DefaultTenantConfig()
	if *tenantsPath != "" {
		var err error
		if tenants, err = server.LoadTenants(*tenantsPath); err != nil {
			return err
		}
	}

	if *follow != "" {
		// Follower mode needs the full durable-state kit: a snapshot path
		// to root the base under, and a WAL to re-append the primary's
		// records to (that re-append is what makes wal_offset comparable
		// across the pair).
		if *snapshot == "" {
			return errors.New("-follow needs -snapshot (the follower roots its base and fetched generations there)")
		}
		if !*liveFlag {
			return errors.New("-follow needs -live (the follower applies the primary's mutations through the live overlay)")
		}
		if !*walFlag && *walPath == "" {
			return errors.New("-follow needs -wal (the follower re-appends the primary's records to its own log)")
		}
		// First start with no local base: fetch the primary's current
		// snapshot before opening anything. Restarts skip this — the
		// local base + WAL resume, and the tailer re-bootstraps on its
		// own if the primary compacted past them.
		if _, err := os.Stat(banks.LatestSnapshotPath(*snapshot)); errors.Is(err, fs.ErrNotExist) {
			log.Printf("no local base; bootstrapping from %s", *follow)
			dest, pos, err := repl.FetchSnapshot(context.Background(), nil, *follow, *snapshot)
			if err != nil {
				return fmt.Errorf("bootstrap from %s: %w", *follow, err)
			}
			log.Printf("bootstrapped generation %d from %s into %s", pos.Generation, *follow, dest)
		}
	}

	// A restart after compactions must resume from the newest durable
	// base: open the highest <snapshot>.genN if any exist, and let the
	// WAL replay skip records the newer base already contains.
	openPath := *snapshot
	if *liveFlag && *snapshot != "" {
		if latest := banks.LatestSnapshotPath(*snapshot); latest != *snapshot {
			log.Printf("resuming from compacted generation %s", latest)
			openPath = latest
		}
	}
	db, desc, err := openOrBuild(openPath, *dataset, *factor)
	if err != nil {
		return err
	}
	defer db.Close()
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: *parallel, CacheSize: *cacheSize})
	if err != nil {
		return err
	}

	var live *banks.Live
	if *liveFlag {
		mode, err := parsePrestigeMode(*livePrestige)
		if err != nil {
			return err
		}
		policy, err := banks.ParseWALFsyncPolicy(*walFsync)
		if err != nil {
			return err
		}
		wpath := *walPath
		if wpath == "" && *walFlag {
			if *snapshot == "" {
				return errors.New("-wal needs -snapshot to derive the log path (<snapshot>.wal); name one with -wal-path instead")
			}
			// The WAL path stays fixed across generations: compaction
			// truncates the log in place rather than rotating files.
			wpath = *snapshot + ".wal"
		}
		// Compaction needs somewhere to write generations; without
		// -snapshot, mutations still work but /v1/compact reports the
		// missing path.
		live, err = banks.OpenLive(eng, banks.LiveOptions{
			SnapshotPath: *snapshot,
			Prestige:     mode,
			WALPath:      wpath,
			WALFsync:     policy,
		})
		if err != nil {
			return err
		}
		defer live.Close()
		if wpath != "" {
			log.Printf("live mutations enabled (generation %d, prestige %s, wal %s fsync=%s, %d records replayed)",
				live.Generation(), *livePrestige, wpath, policy, live.Replayed())
		} else {
			log.Printf("live mutations enabled (generation %d, prestige %s)", live.Generation(), *livePrestige)
		}
	}

	var follower *repl.Follower
	if *follow != "" {
		follower, err = repl.StartFollower(repl.FollowerConfig{
			Primary:  *follow,
			Target:   live,
			BasePath: *snapshot,
			Logf:     log.Printf,
		})
		if err != nil {
			return err
		}
		defer follower.Close()
		log.Printf("following %s from generation %d, wal offset %d",
			*follow, live.Generation(), live.WALSize())
	}

	srv, err := server.New(server.Config{
		Engine:            eng,
		DB:                db,
		Live:              live,
		Tenants:           tenants,
		MaxInFlight:       *maxInFlight,
		Logger:            log.Default(),
		Dataset:           desc,
		StreamDropToBatch: *streamDropToBatch,
		Follower:          follower,
		V1ErrorsOnly:      !*legacyErrors,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if live != nil && (*compactAfterOps > 0 || *compactAfterBytes > 0) {
		if *snapshot == "" {
			return errors.New("-compact-after-ops/-compact-after-bytes need -snapshot (compaction writes <snapshot>.genN)")
		}
		go autoCompact(ctx, live, *compactAfterOps, *compactAfterBytes)
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s (pool=%d, max-inflight=%d)",
			desc, *addr, eng.Workers(), srv.MaxInFlight())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: advertise unreadiness, give load balancers a
	// window to observe it before the listener closes, then let
	// in-flight requests finish and confirm the engine is idle.
	log.Printf("signal received, draining (grace %v, timeout %v)", *drainGrace, *drainTimeout)
	srv.BeginDrain()
	time.Sleep(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := eng.Quiesce(shutdownCtx); err != nil {
		return fmt.Errorf("drain: engine still busy: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

// autoCompact folds the overlay into a new snapshot generation whenever
// it grows past a configured threshold: ops applied since the base
// (-compact-after-ops) or WAL size (-compact-after-bytes). Polling every
// second keeps the check off the mutation hot path. A failed compaction
// is logged and retried at the next poll; mutations keep flowing either
// way.
func autoCompact(ctx context.Context, live *banks.Live, maxOps uint64, maxBytes int64) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var trigger string
		switch ops, size := live.Stats().OpsSinceBase, live.WALStats().SizeBytes; {
		case maxOps > 0 && ops >= maxOps:
			trigger = fmt.Sprintf("%d ops since base >= %d", ops, maxOps)
		case maxBytes > 0 && size >= maxBytes:
			trigger = fmt.Sprintf("wal at %d bytes >= %d", size, maxBytes)
		default:
			continue
		}
		res, err := live.Compact(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("auto-compaction (%s) failed: %v", trigger, err)
			continue
		}
		log.Printf("auto-compacted (%s): generation %d at %s", trigger, res.Generation, res.Path)
	}
}

// parsePrestigeMode maps the -live-prestige flag to a banks.PrestigeMode.
func parsePrestigeMode(name string) (banks.PrestigeMode, error) {
	switch name {
	case "random-walk":
		return banks.PrestigeRandomWalk, nil
	case "indegree":
		return banks.PrestigeIndegree, nil
	case "uniform":
		return banks.PrestigeUniform, nil
	}
	return 0, fmt.Errorf("unknown prestige mode %q (have random-walk, indegree, uniform)", name)
}

// openOrBuild serves the DB from a snapshot when one is requested and
// present; otherwise it builds from the generated dataset (and, with
// -snapshot set, saves the snapshot for the next start).
func openOrBuild(snapshot, dataset string, factor float64) (*banks.DB, string, error) {
	if snapshot != "" {
		switch _, err := os.Stat(snapshot); {
		case err == nil:
			start := time.Now()
			db, err := banks.OpenSnapshot(snapshot)
			if err != nil {
				return nil, "", err
			}
			log.Printf("opened snapshot %s in %v (zero-copy=%v)",
				snapshot, time.Since(start).Round(time.Microsecond), db.SnapshotZeroCopy())
			return db, fmt.Sprintf("snapshot %s", snapshot), nil
		case !errors.Is(err, fs.ErrNotExist):
			// Only a missing file means "build it": a permission or I/O
			// error must fail in milliseconds with the real diagnosis,
			// not after minutes of rebuilding a dataset that exists.
			return nil, "", fmt.Errorf("snapshot %s: %w", snapshot, err)
		}
	}
	db, err := buildDataset(dataset, factor)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s factor %g", dataset, factor)
	if snapshot != "" {
		if err := db.WriteSnapshotFile(snapshot); err != nil {
			return nil, "", err
		}
		log.Printf("saved snapshot %s", snapshot)
		desc = fmt.Sprintf("snapshot %s", snapshot)
	}
	return db, desc, nil
}

func buildDataset(name string, factor float64) (*banks.DB, error) {
	var (
		ds  *datagen.Dataset
		err error
	)
	switch name {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(factor))
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}
	return banks.Build(ds.DB, banks.BuildOptions{})
}
