// Command banksrouter is the scatter-gather front end over a sharded
// BANKS deployment: it fans each query out to N banksd shard servers
// (one per shard file written by cmd/datagen -shards) and merges their
// top-k streams into the global top-k, bit-identical to a single-node
// server over the unsharded snapshot. See docs/SERVING.md, "Sharded
// deployment".
//
// Usage:
//
//	banksrouter -shards http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	            [-addr :8080] [-probe-interval 5s] [-drain-timeout 15s]
//
// -shards lists the shard base URLs in shard order: position i must
// serve shard i of N (the router's /statusz flags backends whose own
// shard claim contradicts their position). On SIGTERM or SIGINT the
// router drains gracefully, mirroring banksd: /healthz flips to 503,
// listeners close, in-flight fan-outs run to completion (bounded by
// -drain-timeout), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"banks/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banksrouter: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, in shard order (required)")
	probeInterval := flag.Duration("probe-interval", 5*time.Second, "shard health-probe period (negative disables probing)")
	drainGrace := flag.Duration("drain-grace", time.Second, "window between /healthz turning 503 and the listener closing, so load balancers can observe unreadiness and stop routing (0 for tests)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long graceful shutdown waits for in-flight requests")
	flag.Parse()

	if *shards == "" {
		return errors.New("-shards is required (comma-separated shard base URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	rt, err := router.New(router.Config{
		Shards:        urls,
		ProbeInterval: *probeInterval,
		Logger:        log.Default(),
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing %d shards on %s", rt.NumShards(), *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (grace %v, timeout %v)", *drainGrace, *drainTimeout)
	rt.BeginDrain()
	time.Sleep(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}
