// Command banksrouter is the scatter-gather front end over a sharded
// BANKS deployment: it fans each query out to N shard replica groups
// (banksd processes serving the shard files written by cmd/datagen
// -shards) and merges their top-k streams into the global top-k,
// bit-identical to a single-node server over the unsharded snapshot.
// Each shard may be served by several interchangeable replicas: the
// router picks one per query by health- and load-driven selection and
// fails over to the others when it dies, so 502 means "every replica of
// some shard is down", not "a process crashed". See docs/SERVING.md,
// "Sharded deployment".
//
// Usage (pick exactly one topology source):
//
//	banksrouter -shards http://127.0.0.1:8081,http://127.0.0.1:8082 ...
//	banksrouter -shard 0=http://10.0.0.1:8081,http://10.0.0.2:8081 \
//	            -shard 1=http://10.0.0.1:8082,http://10.0.0.2:8082 ...
//	banksrouter -topology topology.json ...
//
// plus [-addr :8080] [-probe-interval 5s] [-hedge-after 0]
// [-drain-grace 1s] [-drain-timeout 15s].
//
// -shards lists one replica per shard in shard order (the pre-replica
// style); -shard is repeatable with an explicit shard index and
// comma-separated replica URLs; -topology names a JSON file of the form
// {"shards": [["urlA","urlB"], ["urlC"]]}. Position/index i must serve
// shard i of N (the router's /statusz flags backends whose own shard
// claim contradicts their slot). On SIGTERM or SIGINT the router drains
// gracefully, mirroring banksd: /healthz flips to 503, listeners close,
// in-flight fan-outs run to completion (bounded by -drain-timeout), and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"banks/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("banksrouter: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, one replica per shard, in shard order")
	var shardSpecs []string
	flag.Func("shard", "repeatable shard spec <index>=<url>[,<url>...] listing one shard's replicas", func(v string) error {
		shardSpecs = append(shardSpecs, v)
		return nil
	})
	topologyPath := flag.String("topology", "", "JSON topology file: {\"shards\": [[\"urlA\",\"urlB\"], ...]}")
	probeInterval := flag.Duration("probe-interval", 5*time.Second, "replica health-probe period (negative disables probing)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a slow replica by also querying its runner-up after this delay (0 disables hedging)")
	maxLag := flag.Int64("max-lag", 0, "demote a replication follower behind its primary by more than this many WAL records until it catches up (0 = default 256, negative disables; see docs/REPLICATION.md)")
	drainGrace := flag.Duration("drain-grace", time.Second, "window between /healthz turning 503 and the listener closing, so load balancers can observe unreadiness and stop routing (0 for tests)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long graceful shutdown waits for in-flight requests")
	flag.Parse()

	topology, err := resolveTopology(*shards, shardSpecs, *topologyPath)
	if err != nil {
		return err
	}

	rt, err := router.New(router.Config{
		Shards:        topology,
		ProbeInterval: *probeInterval,
		HedgeAfter:    *hedgeAfter,
		MaxLagRecords: *maxLag,
		Logger:        log.Default(),
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing %d shards (%d replicas) on %s", rt.NumShards(), rt.NumReplicas(), *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received, draining (grace %v, timeout %v)", *drainGrace, *drainTimeout)
	rt.BeginDrain()
	time.Sleep(*drainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

// resolveTopology builds the shard→replicas table from exactly one of
// the three topology flags.
func resolveTopology(shards string, shardSpecs []string, topologyPath string) ([][]string, error) {
	sources := 0
	if shards != "" {
		sources++
	}
	if len(shardSpecs) > 0 {
		sources++
	}
	if topologyPath != "" {
		sources++
	}
	switch {
	case sources == 0:
		return nil, errors.New("a topology is required: -shards, repeated -shard, or -topology")
	case sources > 1:
		return nil, errors.New("-shards, -shard and -topology are mutually exclusive; pick one")
	}
	if topologyPath != "" {
		return router.LoadTopologyFile(topologyPath)
	}
	if len(shardSpecs) > 0 {
		return router.ParseShardSpecs(shardSpecs)
	}
	var urls []string
	for _, u := range strings.Split(shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return router.SingleReplicaTopology(urls), nil
}
