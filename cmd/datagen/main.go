// Command datagen generates a synthetic dataset, builds its data graph
// (with prestige) and keyword index, and saves the complete queryable
// state to a single snapshot file that cmd tools and downstream users can
// memory-map without rebuilding anything.
//
// Usage:
//
//	datagen -dataset dblp -factor 1 -out dblp.snap       # generate + save
//	datagen -dataset dblp -out dblp.snap -shards 3       # + 3 shard files
//	datagen -in dblp.snap                                # load + stats
//	datagen -dataset dblp -legacy-graph dblp.graph       # graph-only BNK2 file
//	datagen -out x.snap -mutations 50 -mutations-out m.json  # + mutation trace
//
// -in accepts both the snapshot format ("BANKSNAP") and the legacy
// graph-only "BNK2" format. At -factor 11 the DBLP-like dataset
// approaches the paper's 2M-node, 9M-edge graph (§5); the default stays
// laptop-friendly.
//
// With -shards N the dataset is additionally partitioned into N
// component-closed shard snapshots named "<out>.shard<i>of<N>", ready to
// serve behind cmd/banksrouter (see docs/SERVING.md, "Sharded
// deployment"). Prestige is computed once on the full graph before
// partitioning, so per-shard scores match the single-node snapshot
// bit-for-bit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"banks"
	"banks/internal/datagen"
	"banks/internal/graph"
	"banks/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	dataset := flag.String("dataset", "dblp", "dataset family: dblp, imdb or patents")
	factor := flag.Float64("factor", 1, "scale factor (1 ≈ 180k tuples; paper scale ≈ 11)")
	out := flag.String("out", "", "write the built graph+index snapshot to this file")
	shards := flag.Int("shards", 1, "also partition into N component-closed shard snapshots named <out>.shard<i>of<N>")
	legacyOut := flag.String("legacy-graph", "", "also write the graph (only) in the legacy BNK2 format")
	mutations := flag.Int("mutations", 0, "also emit a mutation trace of N ops as a /v1/mutate request body (requires -mutations-out)")
	mutationsOut := flag.String("mutations-out", "", "write the mutation trace here (JSON, curl-able against POST /v1/mutate)")
	mutationsSeed := flag.Int64("mutations-seed", 1, "seed for the mutation trace generator")
	in := flag.String("in", "", "load a snapshot or legacy graph file and print stats instead of generating")
	flag.Parse()

	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}
	if *shards > 1 && *out == "" {
		log.Fatal("-shards requires -out (shard files are named <out>.shard<i>of<N>)")
	}
	if (*mutations > 0) != (*mutationsOut != "") {
		log.Fatal("-mutations and -mutations-out must be given together")
	}

	if *in != "" {
		printStats(*in)
		return
	}

	start := time.Now()
	var (
		ds  *datagen.Dataset
		err error
	)
	switch *dataset {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(*factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(*factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(*factor))
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s (%d tuples) in %v\n", ds.Name, ds.DB.NumRows(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	db, err := banks.Build(ds.DB, banks.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built graph (%d nodes, %d edges) + index (%d terms) + prestige in %v\n",
		db.Graph.NumNodes(), db.Graph.NumEdges(), db.Index.NumTerms(), time.Since(start).Round(time.Millisecond))

	if *out != "" {
		start = time.Now()
		if err := db.WriteSnapshotFile(*out); err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote snapshot %s (%d bytes) in %v\n", *out, st.Size(), time.Since(start).Round(time.Millisecond))

		if *shards > 1 {
			start = time.Now()
			stats, err := shard.WriteFiles(*out, *shards, db.Graph, db.Index, db.Mapping, db.EdgeTypes)
			if err != nil {
				log.Fatal(err)
			}
			for _, s := range stats {
				fmt.Printf("wrote shard %s (%d bytes): %d nodes, %d edges, %d components\n",
					s.Path, s.Bytes, s.Nodes, s.Edges, s.Components)
			}
			fmt.Printf("partitioned into %d shards in %v\n", *shards, time.Since(start).Round(time.Millisecond))
		}
	}
	if *mutations > 0 {
		if err := writeMutationTrace(*mutationsOut, *mutations, *mutationsSeed, db); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote mutation trace %s (%d ops)\n", *mutationsOut, *mutations)
	}
	if *legacyOut != "" {
		f, err := os.Create(*legacyOut)
		if err != nil {
			log.Fatal(err)
		}
		n, err := db.Graph.WriteTo(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote legacy graph %s (%d bytes)\n", *legacyOut, n)
	}
}

// writeMutationTrace emits n valid mutation ops as one /v1/mutate request
// body, for smoke tests that need live traffic against a served snapshot
// (e.g. `curl -d @trace.json .../v1/mutate`). Inserted-node IDs are
// predictable: the delta layer assigns them sequentially starting at the
// base node count, so later ops in the trace can reference earlier
// inserts before any server has applied them.
func writeMutationTrace(path string, n int, seed int64, db *banks.DB) error {
	rng := rand.New(rand.NewSource(seed))
	tables := db.Graph.Tables()
	base := int64(db.Graph.NumNodes())
	words := []string{"livetrace", "overlay", "delta", "generation", "compaction", "proximity", "backward", "spreading"}

	ops := make([]map[string]any, 0, n)
	appended := int64(0)
	for len(ops) < n {
		switch {
		case appended == 0 || rng.Intn(3) == 0:
			// Every trace starts with an insert_node so edge/term ops
			// always have an appended node to target.
			text := fmt.Sprintf("livetrace%d %s %s", appended,
				words[rng.Intn(len(words))], words[rng.Intn(len(words))])
			ops = append(ops, map[string]any{
				"op": "insert_node", "table": tables[rng.Intn(len(tables))], "text": text,
			})
			appended++
		case rng.Intn(2) == 0 && base > 0:
			// Appended → base edge: from >= base and to < base, so no
			// self-loops regardless of the draws.
			ops = append(ops, map[string]any{
				"op":   "insert_edge",
				"from": base + rng.Int63n(appended), "to": rng.Int63n(base),
				"weight": 1 + rng.Float64(),
			})
		default:
			ops = append(ops, map[string]any{
				"op":   "insert_term",
				"node": base + rng.Int63n(appended),
				"term": fmt.Sprintf("%s%d", words[rng.Intn(len(words))], len(ops)),
			})
		}
	}
	body, err := json.MarshalIndent(map[string]any{"ops": ops}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o666)
}

// printStats sniffs the file's magic and prints stats for either format.
func printStats(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var m [4]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		log.Fatal(err)
	}

	if string(m[:]) == "BNK2" { // legacy graph-only format
		g, err := graph.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (legacy graph): %d nodes, %d original edges, %d relations, max prestige %.3f\n",
			path, g.NumNodes(), g.NumEdges(), len(g.Tables()), g.MaxPrestige())
		return
	}

	start := time.Now()
	db, err := banks.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("%s (snapshot, zero-copy=%v, opened in %v): %d nodes, %d original edges, %d relations, %d terms, max prestige %.3f\n",
		path, db.SnapshotZeroCopy(), time.Since(start).Round(time.Millisecond),
		db.Graph.NumNodes(), db.Graph.NumEdges(), len(db.Graph.Tables()), db.Index.NumTerms(), db.Graph.MaxPrestige())
	if sm := db.ShardInfo(); sm != nil {
		fmt.Printf("  shard %d of %d: %d owned nodes, %d components, %d duplicated edges\n",
			sm.Shard, sm.NumShards, sm.OwnedNodes, sm.OwnedComponents, sm.DuplicatedEdges)
	}
}
