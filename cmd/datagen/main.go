// Command datagen generates a synthetic dataset, builds its data graph
// (with prestige), and saves the graph to a binary file that cmd tools and
// downstream users can reload without regenerating.
//
// Usage:
//
//	datagen -dataset dblp -factor 1 -out dblp.graph      # generate + save
//	datagen -in dblp.graph                               # load + stats
//
// At -factor 11 the DBLP-like dataset approaches the paper's 2M-node,
// 9M-edge graph (§5); the default stays laptop-friendly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"banks"
	"banks/internal/datagen"
	"banks/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	dataset := flag.String("dataset", "dblp", "dataset family: dblp, imdb or patents")
	factor := flag.Float64("factor", 1, "scale factor (1 ≈ 180k tuples; paper scale ≈ 11)")
	out := flag.String("out", "", "write the built graph to this file")
	in := flag.String("in", "", "load a graph file and print stats instead of generating")
	flag.Parse()

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := graph.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d original edges, %d relations, max prestige %.3f\n",
			*in, g.NumNodes(), g.NumEdges(), len(g.Tables()), g.MaxPrestige())
		return
	}

	start := time.Now()
	var (
		ds  *datagen.Dataset
		err error
	)
	switch *dataset {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(*factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(*factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(*factor))
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s (%d tuples) in %v\n", ds.Name, ds.DB.NumRows(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	db, err := banks.Build(ds.DB, banks.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built graph (%d nodes, %d edges) + index (%d terms) + prestige in %v\n",
		db.Graph.NumNodes(), db.Graph.NumEdges(), db.Index.NumTerms(), time.Since(start).Round(time.Millisecond))

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := db.Graph.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, n)
}
