// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic stand-in datasets and prints
// them as text tables.
//
// Usage:
//
//	experiments [-exp f5|f6ab|f6c|rp|all] [-factor 0.25] [-queries 6]
//	            [-k 20] [-maxnodes 600000] [-seed 42] [-snapshot cachedir]
//
// -snapshot caches each built dataset graph+index as a memory-mapped
// snapshot file in the given directory, so repeated experiment runs skip
// graph conversion, indexing and prestige computation.
//
// Larger -factor and -queries approach the paper's scale at the cost of
// run time (the paper's DBLP corresponds to roughly -factor 11).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"banks/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	exp := flag.String("exp", "all", "experiment to run: f5, f6ab, f6c, rp, ablation or all")
	factor := flag.Float64("factor", 0.25, "dataset scale factor (1 ≈ 180k tuples)")
	queries := flag.Int("queries", 6, "workload queries per figure cell")
	k := flag.Int("k", 20, "answers requested per search")
	maxNodes := flag.Int("maxnodes", 600_000, "node-expansion budget per search (0 = unlimited)")
	seed := flag.Int64("seed", 42, "workload sampling seed")
	snapshot := flag.String("snapshot", "", "cache built graphs+indexes as snapshots in this directory")
	workers := flag.Int("workers", 0, "intra-query worker goroutines per search (0 = serial; results are bit-identical)")
	flag.Parse()

	cfg := experiments.Config{
		Factor:         *factor,
		QueriesPerCell: *queries,
		K:              *k,
		MaxNodes:       *maxNodes,
		Seed:           *seed,
		SnapshotDir:    *snapshot,
		Workers:        *workers,
	}

	run := func(name string, f func() (string, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	any := false
	if *exp == "f5" || *exp == "all" {
		any = true
		run("figure 5", func() (string, error) {
			rows, err := experiments.Figure5(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure5(rows), nil
		})
	}
	if *exp == "f6ab" || *exp == "all" {
		any = true
		run("figure 6(a)/(b)", func() (string, error) {
			rows, err := experiments.Figure6AB(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure6AB(rows), nil
		})
	}
	if *exp == "f6c" || *exp == "all" {
		any = true
		run("figure 6(c)", func() (string, error) {
			rows, err := experiments.Figure6C(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure6C(rows), nil
		})
	}
	if *exp == "rp" || *exp == "all" {
		any = true
		run("recall/precision", func() (string, error) {
			rows, err := experiments.RecallPrecision(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatRecallPrecision(rows), nil
		})
	}
	if *exp == "ablation" || *exp == "all" {
		any = true
		run("ablations", func() (string, error) {
			rows, err := experiments.Ablations(cfg)
			if err != nil {
				return "", err
			}
			return experiments.FormatAblations(rows), nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want f5, f6ab, f6c, rp, ablation or all)\n", *exp)
		os.Exit(2)
	}
}
