// Intra-query parallelism benchmarks (BENCH_parallel.json): single-query
// latency of MI-Backward across worker counts, and of Bidirectional with
// sharded forward expansion, on factor-1 DBLP (~180k tuples — the scale
// BENCH_store.json uses). These benchmarks build the full factor-1
// dataset on first use and are meant for explicit runs:
//
//	go test -run xxx -bench 'MIBackwardSerial|MIBackwardParallel|BidirectionalShard' -benchtime 5x .
//
// The workers sweep measures the same query with Options.Workers set;
// results are bit-identical across the sweep (the differential harness
// enforces that), so ns/op is the only thing that may move. Speedup needs
// parallel hardware: with GOMAXPROCS=1 the worker variants measure pure
// coordination overhead instead (the same caveat as
// BenchmarkSearchParallel).
package banks_test

import (
	"math/rand"
	"sync"
	"testing"

	"banks"
	"banks/internal/experiments"
	"banks/internal/workload"
)

// parallelBenchCfg mirrors the BENCH_store.json environment: factor-1
// DBLP. MaxNodes bounds MI-Backward the way every other benchmark in this
// suite does.
var parallelBenchCfg = experiments.Config{Factor: 1, K: 10, MaxNodes: 120_000, Seed: 42}

var (
	parallelEnvOnce sync.Once
	parallelEnv     *experiments.Env
)

func parallelBenchDB(b *testing.B) *banks.DB {
	b.Helper()
	parallelEnvOnce.Do(func() {
		e, err := experiments.NewEnv("dblp", parallelBenchCfg.Factor)
		if err != nil {
			panic(err)
		}
		parallelEnv = e
	})
	e := parallelEnv
	return &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
}

// parallelBenchQuery picks one deterministic 3-keyword large-origin query:
// large origin sets mean many MI iterators, the parallelizable unit.
var (
	parallelQueryOnce sync.Once
	parallelQuery     *workload.Query
)

func parallelBenchQuery(b *testing.B) *workload.Query {
	b.Helper()
	parallelBenchDB(b)
	parallelQueryOnce.Do(func() {
		rng := rand.New(rand.NewSource(parallelBenchCfg.Seed))
		for tries := 0; tries < 3000; tries++ {
			if q, ok := parallelEnv.Gen.SizeFive(rng, 3, workload.OriginLarge); ok {
				parallelQuery = q
				return
			}
		}
		panic("could not generate a 3-keyword large-origin query")
	})
	return parallelQuery
}

func benchmarkParallelSearch(b *testing.B, algo banks.Algorithm, workers int) {
	db := parallelBenchDB(b)
	q := parallelBenchQuery(b)
	opts := banks.Options{K: parallelBenchCfg.K, MaxNodes: parallelBenchCfg.MaxNodes, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.SearchNodes(q.Keywords, algo, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// --- MI-Backward: serial vs parallel iterators ---

func BenchmarkMIBackwardSerial(b *testing.B)    { benchmarkParallelSearch(b, banks.MIBackward, 0) }
func BenchmarkMIBackwardParallel2(b *testing.B) { benchmarkParallelSearch(b, banks.MIBackward, 2) }
func BenchmarkMIBackwardParallel4(b *testing.B) { benchmarkParallelSearch(b, banks.MIBackward, 4) }
func BenchmarkMIBackwardParallel8(b *testing.B) { benchmarkParallelSearch(b, banks.MIBackward, 8) }

// --- Bidirectional: serial vs sharded forward expansion ---

func BenchmarkBidirectionalShardSerial(b *testing.B) {
	benchmarkParallelSearch(b, banks.Bidirectional, 0)
}

func BenchmarkBidirectionalSharded(b *testing.B) {
	benchmarkParallelSearch(b, banks.Bidirectional, 4)
}
