package banks

import (
	"io"

	"banks/internal/store"
)

// SnapshotOptions tunes OpenSnapshotOptions. The zero value is the safe
// default: memory-map when the platform supports it and verify every
// section checksum.
type SnapshotOptions struct {
	// SkipChecksums skips per-section CRC verification on open.
	// Structural validation still runs; only bit-rot detection is skipped.
	SkipChecksums bool
	// NoMmap reads the snapshot into the heap instead of mapping it.
	NoMmap bool
}

// WriteSnapshot serializes the DB's complete queryable state — graph,
// prestige, frozen inverted index, and row/edge-type mappings — into the
// single-file snapshot format (see docs/SNAPSHOT_FORMAT.md). The source
// relational rows are not included: a snapshot-opened DB answers queries
// bit-identically but labels nodes as "table[row]" only.
func (d *DB) WriteSnapshot(w io.Writer) (int64, error) {
	return store.Write(w, d.Graph, d.Index, d.Mapping, d.EdgeTypes)
}

// WriteSnapshotFile writes a snapshot atomically (temp file + rename).
func (d *DB) WriteSnapshotFile(path string) error {
	_, err := store.WriteFile(path, d.Graph, d.Index, d.Mapping, d.EdgeTypes)
	return err
}

// OpenSnapshot memory-maps a snapshot file and returns a ready-to-query
// DB without rebuilding anything: no tokenization, no sorting, no
// prestige computation. On little-endian hosts the graph and index read
// straight out of the mapping (zero-copy), so open time is dominated by
// one sequential validation pass and pages fault in on demand.
//
// Call Close on the returned DB when done; the DB (and every Result
// derived from it) must not be used after Close.
func OpenSnapshot(path string) (*DB, error) {
	return OpenSnapshotOptions(path, SnapshotOptions{})
}

// OpenSnapshotOptions is OpenSnapshot with explicit options.
func OpenSnapshotOptions(path string, opts SnapshotOptions) (*DB, error) {
	s, err := store.Open(path, store.Options{SkipChecksums: opts.SkipChecksums, NoMmap: opts.NoMmap})
	if err != nil {
		return nil, err
	}
	return dbFromSnapshot(s), nil
}

// ReadSnapshot decodes a snapshot from a stream into a heap-backed DB
// (for callers that do not have a file, e.g. network transfer).
func ReadSnapshot(r io.Reader) (*DB, error) {
	s, err := store.Read(r, store.Options{})
	if err != nil {
		return nil, err
	}
	return dbFromSnapshot(s), nil
}

func dbFromSnapshot(s *store.Snapshot) *DB {
	return &DB{
		Graph:     s.Graph,
		Index:     s.Index,
		Mapping:   s.Mapping,
		EdgeTypes: s.EdgeTypes,
		snap:      s,
	}
}

// Close releases the snapshot mapping backing this DB, if any. It is a
// no-op (and always safe) for DBs constructed by Build.
func (d *DB) Close() error {
	if d.snap == nil {
		return nil
	}
	return d.snap.Close()
}

// Snapshotted reports whether this DB is served from an opened snapshot
// (true) or was built in memory from relational source data (false).
func (d *DB) Snapshotted() bool { return d.snap != nil }

// ShardInfo describes one shard of a partitioned dataset (the snapshot's
// optional shard-meta section, written by datagen -shards).
type ShardInfo = store.ShardMeta

// ShardInfo returns the shard metadata of a snapshot-backed DB, or nil
// when the DB is not one shard of a partitioned dataset (built in memory,
// or opened from an ordinary snapshot).
func (d *DB) ShardInfo() *ShardInfo {
	if d.snap == nil {
		return nil
	}
	return d.snap.ShardMeta
}

// SnapshotZeroCopy reports whether a snapshot-backed DB reads its arrays
// directly out of the file mapping. It returns false for built DBs.
func (d *DB) SnapshotZeroCopy() bool { return d.snap != nil && d.snap.ZeroCopy() }
