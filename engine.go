package banks

import (
	"context"
	"time"

	"banks/internal/engine"
)

// EngineOptions configures a query Engine. The zero value gives a worker
// pool sized to GOMAXPROCS, no default deadline, and a 256-entry result
// cache.
type EngineOptions struct {
	// Workers bounds how many searches execute simultaneously.
	// Default: runtime.GOMAXPROCS(0).
	Workers int
	// DefaultTimeout is a per-query deadline applied in addition to any
	// deadline on the caller's context (the earlier wins). 0 disables it.
	DefaultTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries: 0 selects the
	// default (256), negative disables caching.
	CacheSize int
}

// BatchQuery is one query of a SearchBatch call.
type BatchQuery struct {
	Query string
	Algo  Algorithm
	Opts  Options
}

// Engine serves concurrent queries against one DB with a bounded worker
// pool, per-query deadlines and an LRU result cache. It relies on the DB
// concurrency contract (immutable after Build): any number of goroutines
// may call Search/SearchBatch/Near on the same Engine.
//
// Queries that request intra-query parallelism (Options.Workers) draw
// those workers opportunistically from the same pool budget: the grab
// never blocks, so a saturated pool degrades such queries to serial
// execution with identical results (parallel search is bit-identical to
// serial by the core contract) rather than deadlocking or oversubscribing.
//
// Results may be shared between callers through the cache and must be
// treated as read-only. The cache key ignores Options.Workers — serial
// and parallel callers share entries.
type Engine struct {
	db *DB
	e  *engine.Engine
}

// NewEngine builds an Engine over a DB.
func NewEngine(db *DB, opts EngineOptions) (*Engine, error) {
	e, err := engine.New(db.Graph, db.Index, engine.Options{
		Workers:        opts.Workers,
		DefaultTimeout: opts.DefaultTimeout,
		CacheSize:      opts.CacheSize,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{db: db, e: e}, nil
}

// DB returns the database the engine serves.
func (e *Engine) DB() *DB { return e.db }

// Workers returns the concurrency bound of the pool.
func (e *Engine) Workers() int { return e.e.Workers() }

// Search runs one free-text query through the pool. It blocks while all
// workers are busy (respecting ctx while waiting); on deadline expiry the
// partial top-k is returned with Stats.Truncated set.
func (e *Engine) Search(ctx context.Context, query string, algo Algorithm, opts Options) (*Result, error) {
	return e.e.Search(ctx, engine.Query{Terms: Keywords(query), Algo: algo, Opts: opts})
}

// Near runs a near query (activation-ranked nodes) through the pool.
func (e *Engine) Near(ctx context.Context, query string, opts Options) ([]NearResult, Stats, error) {
	return e.e.Near(ctx, Keywords(query), opts)
}

// Streaming types, aliased from the engine so callers configure streams
// without importing internal packages.
type (
	// StreamOptions configures a SearchStream call (buffer size and
	// backpressure policy).
	StreamOptions = engine.StreamOptions
	// Stream is one in-progress streaming search: range over Answers()
	// until closed, then read Trailer().
	Stream = engine.Stream
	// StreamTrailer summarizes a finished stream (stats, truncation,
	// cache provenance, delivered-answer count).
	StreamTrailer = engine.StreamTrailer
)

// DefaultStreamBuffer is the answer-channel capacity used when
// StreamOptions.Buffer is zero.
const DefaultStreamBuffer = engine.DefaultStreamBuffer

// SearchStream runs one free-text query with incremental answer
// delivery: answers appear on the returned Stream the moment the search
// outputs them (the paper's §5.2 generation-vs-output distinction made
// visible to callers), instead of all at once when the search finishes.
// The streamed sequence is bit-identical in content and order to what
// Search returns for the same query; a result-cache hit is replayed as a
// stream; deadline expiry mid-stream ends the stream cleanly with the
// trailer's Truncated flag set over a valid partial prefix.
//
// The consumer must drain Answers() until it closes, or cancel ctx to
// abandon the stream.
func (e *Engine) SearchStream(ctx context.Context, query string, algo Algorithm, opts Options, sopts StreamOptions) (*Stream, error) {
	return e.e.SearchStream(ctx, engine.Query{Terms: Keywords(query), Algo: algo, Opts: opts}, sopts)
}

// SearchBatch fans the queries out across the worker pool and waits for all
// of them; results[i] and errs[i] correspond to queries[i], and one failing
// query never affects its siblings.
func (e *Engine) SearchBatch(ctx context.Context, queries []BatchQuery) (results []*Result, errs []error) {
	qs := make([]engine.Query, len(queries))
	for i, q := range queries {
		qs[i] = engine.Query{Terms: Keywords(q.Query), Algo: q.Algo, Opts: q.Opts}
	}
	return e.e.SearchBatch(ctx, qs)
}

// CacheStats reports cumulative result-cache hits and misses.
func (e *Engine) CacheStats() (hits, misses uint64) { return e.e.CacheStats() }

// MergeTopK merges independently produced answer lists into one global
// top-k with the canonical scatter-gather recipe: duplicate trees
// (rotations) and duplicate roots keep only their best-scoring version,
// survivors sort stably by score descending (bit-equal scores keep their
// arrival order, mirroring the core output heap's final sort), and the
// list is cut at k. Answers are returned by reference, bit-identical to
// the inputs. This is the merge the sharded serving tier
// (cmd/banksrouter) applies to per-shard results.
func MergeTopK(k int, lists ...[]*Answer) []*Answer {
	return engine.MergeTopK(k, lists...)
}

// EngineStats is a point-in-time snapshot of an Engine's activity, for
// status pages and metrics exporters. Counters are cumulative; gauges
// (CacheLen, InFlight) reflect the sampling instant.
type EngineStats struct {
	// Searches counts tree-search queries accepted by the engine,
	// including ones answered from the result cache.
	Searches uint64
	// Nears counts near queries accepted by the engine.
	Nears uint64
	// Truncated counts queries whose result was cut short by a deadline
	// or cancellation (Stats.Truncated set).
	Truncated uint64
	// Errored counts queries that returned an error.
	Errored uint64
	// CacheHits/CacheMisses are the result-cache counters.
	CacheHits, CacheMisses uint64
	// CacheLen is the current number of cached results.
	CacheLen int
	// InFlight is the number of pool slots currently held (executing
	// queries plus intra-query worker grants).
	InFlight int
	// Workers is the pool's concurrency bound.
	Workers int
}

// Stats samples the engine's activity counters and pool state.
func (e *Engine) Stats() EngineStats {
	c := e.e.Counters()
	hits, misses := e.e.CacheStats()
	return EngineStats{
		Searches:    c.Searches,
		Nears:       c.Nears,
		Truncated:   c.Truncated,
		Errored:     c.Errored,
		CacheHits:   hits,
		CacheMisses: misses,
		CacheLen:    e.e.CacheLen(),
		InFlight:    e.e.InFlight(),
		Workers:     e.e.Workers(),
	}
}

// Quiesce blocks until the engine has no query executing (all pool slots
// simultaneously free) or ctx is done. It is the drain barrier used by
// serving front ends during graceful shutdown.
func (e *Engine) Quiesce(ctx context.Context) error { return e.e.Quiesce(ctx) }

// SearchBatch is a convenience one-shot batch on a DB: it fans the queries
// out across a temporary pool of the given width (0 = GOMAXPROCS) without
// caching. For repeated batches build a NewEngine once and reuse it.
func (d *DB) SearchBatch(ctx context.Context, queries []BatchQuery, workers int) ([]*Result, []error) {
	e, err := NewEngine(d, EngineOptions{Workers: workers, CacheSize: -1})
	if err != nil {
		errs := make([]error, len(queries))
		for i := range errs {
			errs[i] = err
		}
		return make([]*Result, len(queries)), errs
	}
	return e.SearchBatch(ctx, queries)
}
