// Concurrency tests: proof of the "DB is immutable after Build and safe
// for concurrent readers" contract. The hammer test runs every algorithm
// (plus near queries) from many goroutines against one shared DB under the
// race detector and asserts bit-identical results to a serial run.
package banks_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"banks"
	"banks/internal/datagen"
)

// sharedDB lazily builds one mid-size deterministic DBLP database shared by
// the concurrency and cancellation tests.
var (
	sharedOnce sync.Once
	sharedDB   *banks.DB
	sharedErr  error
)

func testDB(t testing.TB) *banks.DB {
	t.Helper()
	sharedOnce.Do(func() {
		ds, err := datagen.DBLP(datagen.DefaultDBLP(0.05))
		if err != nil {
			sharedErr = err
			return
		}
		sharedDB, sharedErr = banks.Build(ds.DB, banks.BuildOptions{})
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDB
}

// resultSignature renders everything deterministic about a search result:
// per answer the root, the exact score, and the sorted node set, plus the
// deterministic counters. Wall-clock fields are excluded.
func resultSignature(res *banks.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "answers=%d explored=%d touched=%d relaxed=%d generated=%d truncated=%v\n",
		len(res.Answers), res.Stats.NodesExplored, res.Stats.NodesTouched,
		res.Stats.EdgesRelaxed, res.Stats.AnswersGenerated, res.Stats.Truncated)
	for i, a := range res.Answers {
		nodes := make([]int, len(a.Nodes))
		for j, u := range a.Nodes {
			nodes[j] = int(u)
		}
		sort.Ints(nodes)
		fmt.Fprintf(&sb, "%d: root=%d score=%.12g edge=%.12g nodes=%v\n",
			i, a.Root, a.Score, a.EdgeScore, nodes)
	}
	return sb.String()
}

func nearSignature(res []banks.NearResult) string {
	var sb strings.Builder
	for i, r := range res {
		fmt.Fprintf(&sb, "%d: node=%d act=%.12g\n", i, r.Node, r.Activation)
	}
	return sb.String()
}

// hammerWork is one query in the mixed workload: a free-text query plus the
// algorithm ("near" selects a near query).
type hammerWork struct {
	query string
	algo  banks.Algorithm
	near  bool
}

// hammerWorkload builds a deterministic mixed workload over terms known to
// exist in the generated dataset (vocabulary words plus relation names),
// cycling through all three algorithms and near queries.
func hammerWorkload(t testing.TB, db *banks.DB) []hammerWork {
	t.Helper()
	queries := []string{
		"database transaction",
		"index spatial",
		"concurrency recovery",
		"graph mining author",
		"storage optimization",
		"paper query",
		"relational join",
		"conference parallel",
	}
	algos := banks.Algorithms()
	var work []hammerWork
	for i, q := range queries {
		// Skip queries whose terms vanish at this dataset scale.
		usable := true
		for _, term := range banks.Keywords(q) {
			if len(db.KeywordNodes(term)) == 0 {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		work = append(work, hammerWork{query: q, algo: algos[i%len(algos)]})
		work = append(work, hammerWork{query: q, near: true})
	}
	if len(work) < 8 {
		t.Fatalf("only %d usable hammer queries", len(work))
	}
	return work
}

// runHammerWork executes one workload item with the given intra-query
// worker count (0 = serial) and returns its deterministic signature.
func runHammerWork(t testing.TB, db *banks.DB, w hammerWork, workers int) string {
	t.Helper()
	opts := banks.Options{K: 5, MaxNodes: 2000, Workers: workers}
	if w.near {
		res, stats, err := db.Near(w.query, opts)
		if err != nil {
			t.Errorf("near %q: %v", w.query, err)
			return ""
		}
		_ = stats
		return nearSignature(res)
	}
	res, err := db.Search(w.query, w.algo, opts)
	if err != nil {
		t.Errorf("%s %q: %v", w.algo, w.query, err)
		return ""
	}
	return resultSignature(res)
}

// TestConcurrentSearchHammer is the concurrent-readers proof: 8 goroutines
// each run 52 mixed queries (all three tree algorithms plus near queries)
// against one shared DB and every result must be identical to the serial
// baseline. Run under -race this also proves the absence of any lazy
// mutation in graph, index or prestige state.
func TestConcurrentSearchHammer(t *testing.T) {
	db := testDB(t)
	work := hammerWorkload(t, db)

	// Serial baseline, and a serial re-run to prove the engine itself is
	// deterministic before blaming concurrency for any mismatch.
	baseline := make([]string, len(work))
	for i, w := range work {
		baseline[i] = runHammerWork(t, db, w, 0)
	}
	for i, w := range work {
		if again := runHammerWork(t, db, w, 0); again != baseline[i] {
			t.Fatalf("serial run not deterministic for %+v:\n--- first ---\n%s--- second ---\n%s", w, baseline[i], again)
		}
	}

	const goroutines = 8
	const perGoroutine = 52
	var wg sync.WaitGroup
	mismatch := make(chan string, goroutines)
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for it := 0; it < perGoroutine; it++ {
				i := (gid + it) % len(work)
				if got := runHammerWork(t, db, work[i], 0); got != baseline[i] {
					select {
					case mismatch <- fmt.Sprintf("goroutine %d work %+v:\n--- serial ---\n%s--- concurrent ---\n%s",
						gid, work[i], baseline[i], got):
					default:
					}
					return
				}
			}
		}(gid)
	}
	wg.Wait()
	close(mismatch)
	if msg, ok := <-mismatch; ok {
		t.Fatalf("concurrent result diverged from serial baseline:\n%s", msg)
	}
}

// TestConcurrentIntraQueryHammer is the intra-query extension of the
// hammer: 8 goroutines run concurrent queries that each ALSO use
// intra-query workers (2 or 4, varying per goroutine), so worker
// goroutines of different searches interleave on the shared DB. Under
// -race this proves the parallel search machinery shares nothing mutable
// across queries; the signature comparison proves every parallel result
// is bit-identical to the serial (Workers: 0) baseline.
func TestConcurrentIntraQueryHammer(t *testing.T) {
	db := testDB(t)
	work := hammerWorkload(t, db)

	baseline := make([]string, len(work))
	for i, w := range work {
		baseline[i] = runHammerWork(t, db, w, 0)
	}

	const goroutines = 8
	const perGoroutine = 26
	var wg sync.WaitGroup
	mismatch := make(chan string, goroutines)
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			workers := 2 + (gid%2)*2 // goroutines alternate 2 and 4 intra-query workers
			for it := 0; it < perGoroutine; it++ {
				i := (gid + it) % len(work)
				if got := runHammerWork(t, db, work[i], workers); got != baseline[i] {
					select {
					case mismatch <- fmt.Sprintf("goroutine %d (workers %d) work %+v:\n--- serial ---\n%s--- parallel ---\n%s",
						gid, workers, work[i], baseline[i], got):
					default:
					}
					return
				}
			}
		}(gid)
	}
	wg.Wait()
	close(mismatch)
	if msg, ok := <-mismatch; ok {
		t.Fatalf("intra-query parallel result diverged from serial baseline:\n%s", msg)
	}
}

// TestConcurrentEngineBatch exercises the same contract through the engine:
// one batch of mixed queries fanned out across workers must match the
// serial per-query results.
func TestConcurrentEngineBatch(t *testing.T) {
	db := testDB(t)
	work := hammerWorkload(t, db)

	var batch []banks.BatchQuery
	var serial []string
	opts := banks.Options{K: 5, MaxNodes: 2000}
	for _, w := range work {
		if w.near {
			continue
		}
		res, err := db.Search(w.query, w.algo, opts)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, resultSignature(res))
		// Every other query also asks for intra-query workers: the engine
		// grants them opportunistically from the same pool, and by the
		// bit-identical contract the granted count (0..2) cannot change
		// the signature.
		bq := banks.BatchQuery{Query: w.query, Algo: w.algo, Opts: opts}
		if len(batch)%2 == 1 {
			bq.Opts.Workers = 2
		}
		batch = append(batch, bq)
	}

	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 8, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := eng.SearchBatch(nil, batch)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("batch query %d: %v", i, errs[i])
		}
		if got := resultSignature(results[i]); got != serial[i] {
			t.Fatalf("batch query %d diverged:\n--- serial ---\n%s--- batch ---\n%s", i, serial[i], got)
		}
	}
}
