package banks_test

// Snapshot-store benchmarks (ISSUE 2 acceptance): ready-to-query time of
// a memory-mapped snapshot open vs rebuilding the same state from raw
// relational data, on the factor-1 DBLP dataset (~180k tuples), plus the
// latency of the first query after an open (page-in cost included).
// Baselines are recorded in BENCH_store.json.
//
// Run with:
//
//	go test -run xxx -bench 'SnapshotOpen|BuildFromScratch|FirstQueryAfterOpen' -benchtime 5x .

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"banks"
	"banks/internal/datagen"
)

var storeBench struct {
	once sync.Once
	ds   *datagen.Dataset
	dir  string
	path string
	err  error
}

// TestMain removes the shared benchmark snapshot dir, which outlives any
// single benchmark because of the sync.Once setup.
func TestMain(m *testing.M) {
	code := m.Run()
	if storeBench.dir != "" {
		os.RemoveAll(storeBench.dir)
	}
	os.Exit(code)
}

// storeBenchSetup generates the factor-1 DBLP dataset once per process
// and writes its snapshot to a temp file shared by all benchmarks.
func storeBenchSetup(b *testing.B) (*datagen.Dataset, string) {
	b.Helper()
	storeBench.once.Do(func() {
		ds, err := datagen.DBLP(datagen.DefaultDBLP(1))
		if err != nil {
			storeBench.err = err
			return
		}
		db, err := banks.Build(ds.DB, banks.BuildOptions{})
		if err != nil {
			storeBench.err = err
			return
		}
		dir, err := os.MkdirTemp("", "banks-bench-*")
		if err != nil {
			storeBench.err = err
			return
		}
		storeBench.dir = dir
		path := filepath.Join(dir, "dblp-f1.snap")
		if err := db.WriteSnapshotFile(path); err != nil {
			storeBench.err = err
			return
		}
		storeBench.ds, storeBench.path = ds, path
	})
	if storeBench.err != nil {
		b.Fatal(storeBench.err)
	}
	return storeBench.ds, storeBench.path
}

// BenchmarkBuildFromScratch is the rebuild-from-raw baseline: graph
// conversion, keyword indexing and prestige over the already-generated
// relational rows — exactly what every consumer paid at startup before
// the snapshot store existed.
func BenchmarkBuildFromScratch(b *testing.B) {
	ds, _ := storeBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := banks.Build(ds.DB, banks.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = db
	}
}

// BenchmarkSnapshotOpen measures ready-to-query time from the snapshot
// file with default options (mmap + full checksum verification).
func BenchmarkSnapshotOpen(b *testing.B) {
	_, path := storeBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := banks.OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkSnapshotOpenNoVerify is the fastest open: structural
// validation only, checksums skipped.
func BenchmarkSnapshotOpenNoVerify(b *testing.B) {
	_, path := storeBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := banks.OpenSnapshotOptions(path, banks.SnapshotOptions{SkipChecksums: true})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkFirstQueryAfterOpen measures open plus the first bidirectional
// query (cold result cache; page-in of the touched sections included).
func BenchmarkFirstQueryAfterOpen(b *testing.B) {
	_, path := storeBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := banks.OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		res, err := db.Search("database query optimization", banks.Bidirectional, banks.Options{K: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
		db.Close()
	}
}
