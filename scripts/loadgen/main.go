// Command loadgen drives a running banksd with concurrent keyword
// queries and reports the latency distribution as JSON — the measuring
// stick for the serving roadmap (admission tuning, streaming first-answer
// latency, future perf PRs).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-stream] [-c 8] [-duration 10s | -n 400]
//	        [-query "database query" | -queries file] [-k 10]
//	        [-algo bidirectional] [-tenant name] [-timeout 2s]
//	        [-expect-zero-errors]
//	loadgen -mutate -url http://127.0.0.1:8080 -n 40 [-mutate-ops 8]
//	        [-mutate-seed 1] [-mutate-table paper] [-mutate-interval 25ms]
//
// With -mutate the workload is writes instead of queries: a
// deterministic seeded trace of POST /v1/mutate batches, issued
// sequentially (see mutate.go). The report shape is the same.
//
// Queries run round-robin from -queries (one query per line, '#'
// comments) or the single -query. Every worker loops until -duration
// elapses, or — with -n — until exactly n requests have been issued in
// total (for deterministic CI runs). With -stream the workers call
// /v1/search/stream and additionally record first-answer latency — the
// time from request start to the first NDJSON answer line, the number
// the streaming subsystem exists to shrink. Output is one JSON document
// on stdout:
//
//	{"requests":1234,"errors":0,"errors_by_code":{"502":2,"transport":1},
//	 "qps":123.4,
//	 "total_ms":{"p50":8.1,"p95":14.2,"p99":21.0,...},
//	 "first_answer_ms":{"p50":1.2,...}}        // -stream only
//
// errors_by_code (omitted when clean) classifies failures: "transport"
// (the request never got a response), an HTTP status code like "502"
// (non-200 response), or "stream" (the response body died mid-read).
//
// The exit status is 1 when any request errored, so CI can gate on a
// clean run. With -expect-zero-errors the per-code breakdown is also
// printed to stderr and the exit status is 3 — a distinct code for
// fault-injection CI jobs that must tell "the deployment dropped
// requests" apart from ordinary harness failure.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// sample is one request's measurements.
type sample struct {
	totalMS float64
	// firstMS is the first-answer latency (streaming runs only; negative
	// when the stream produced no answer line).
	firstMS float64
	// errCode classifies a failed request: "" for success, "transport"
	// (no response), an HTTP status code like "502", or "stream" (body
	// died mid-read).
	errCode string
}

// latencySummary is a percentile digest of one latency series, in
// milliseconds.
type latencySummary struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
}

// summary is the JSON report.
type summary struct {
	Requests        int             `json:"requests"`
	Errors          int             `json:"errors"`
	ErrorsByCode    map[string]int  `json:"errors_by_code,omitempty"`
	DurationSeconds float64         `json:"duration_seconds"`
	QPS             float64         `json:"qps"`
	TotalMS         latencySummary  `json:"total_ms"`
	FirstAnswerMS   *latencySummary `json:"first_answer_ms,omitempty"`
}

// percentile returns the p-th percentile (0 < p ≤ 100) of a sorted
// series using the nearest-rank definition: the smallest value with at
// least p% of the mass at or below it, rank = ceil(p/100 · n).
// Multiplying before dividing keeps exact boundary products exact
// (95·20/100 is 19, not 19+ε), so the ceil cannot round an exact rank
// up by one. Zero-length series yield 0.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted)) / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// summarize digests a latency series (any order) into percentiles.
func summarize(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		P50:   percentile(sorted, 50),
		P95:   percentile(sorted, 95),
		P99:   percentile(sorted, 99),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		Count: len(sorted),
	}
}

// buildReport assembles the JSON report from raw samples.
func buildReport(samples []sample, elapsed time.Duration, stream bool) summary {
	var totals, firsts []float64
	var byCode map[string]int
	errors := 0
	for _, s := range samples {
		if s.errCode != "" {
			errors++
			if byCode == nil {
				byCode = make(map[string]int)
			}
			byCode[s.errCode]++
			continue
		}
		totals = append(totals, s.totalMS)
		if stream && s.firstMS >= 0 {
			firsts = append(firsts, s.firstMS)
		}
	}
	rep := summary{
		Requests:        len(samples),
		Errors:          errors,
		ErrorsByCode:    byCode,
		DurationSeconds: elapsed.Seconds(),
		TotalMS:         summarize(totals),
	}
	if elapsed > 0 {
		rep.QPS = float64(len(samples)) / elapsed.Seconds()
	}
	if stream {
		fa := summarize(firsts)
		rep.FirstAnswerMS = &fa
	}
	return rep
}

// loadQueries reads one query per line, skipping blanks and '#' comments.
func loadQueries(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no queries", path)
	}
	return out, nil
}

// oneRequest performs a single query and measures it. For streams the
// first-answer latency is the time to the first NDJSON line of type
// "answer"; the body is read to EOF either way so connections are reused.
func oneRequest(client *http.Client, base *url.URL, stream bool, query string, k int, algo, tenant string, timeout time.Duration) sample {
	endpoint := "/v1/search"
	if stream {
		endpoint = "/v1/search/stream"
	}
	u := *base
	u.Path = strings.TrimSuffix(u.Path, "/") + endpoint
	q := url.Values{}
	q.Set("q", query)
	if k > 0 {
		q.Set("k", fmt.Sprint(k))
	}
	if algo != "" {
		q.Set("algo", algo)
	}
	if timeout > 0 {
		// The Go duration string, not rounded milliseconds: the server
		// parses it exactly and applies its own sub-millisecond guard —
		// a 500µs request must be rejected there, not silently rounded
		// to "unset" here.
		q.Set("timeout", timeout.String())
	}
	u.RawQuery = q.Encode()

	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, u.String(), nil)
	if err != nil {
		return sample{errCode: "transport"}
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{errCode: "transport"}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return sample{errCode: strconv.Itoa(resp.StatusCode)}
	}
	s := sample{firstMS: -1}
	if stream {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if s.firstMS < 0 && strings.Contains(sc.Text(), `"type":"answer"`) {
				s.firstMS = float64(time.Since(start)) / float64(time.Millisecond)
			}
		}
		if sc.Err() != nil {
			return sample{errCode: "stream"}
		}
	} else if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return sample{errCode: "stream"}
	}
	s.totalMS = float64(time.Since(start)) / float64(time.Millisecond)
	return s
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	baseURL := flag.String("url", "http://127.0.0.1:8080", "banksd or banksrouter base URL")
	stream := flag.Bool("stream", false, "use /v1/search/stream and record first-answer latency")
	concurrency := flag.Int("c", 8, "concurrent workers")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load (ignored with -n)")
	count := flag.Int("n", 0, "issue exactly this many requests in total instead of running for -duration")
	expectZero := flag.Bool("expect-zero-errors", false, "on any error, print a per-code breakdown to stderr and exit 3")
	query := flag.String("query", "database query", "single query to run (ignored with -queries)")
	queriesPath := flag.String("queries", "", "file of queries, one per line ('#' comments)")
	k := flag.Int("k", 10, "answers per query (0 = server default)")
	algo := flag.String("algo", "", "algorithm (empty = server default)")
	tenant := flag.String("tenant", "", "X-Tenant header value")
	timeout := flag.Duration("timeout", 0, "per-query deadline passed to the server (0 = tenant default)")
	mutate := flag.Bool("mutate", false, "generate a deterministic write workload (sequential POST /v1/mutate batches) instead of queries; -n counts batches and -c is ignored")
	mutateOps := flag.Int("mutate-ops", 8, "ops per -mutate batch")
	mutateSeed := flag.Int64("mutate-seed", 1, "seed for the -mutate trace generator (same seed + same starting server = same trace)")
	mutateTable := flag.String("mutate-table", "paper", "relation name for -mutate insert_node ops (created if the graph lacks it)")
	mutateInterval := flag.Duration("mutate-interval", 0, "pause between -mutate batches (0 = back to back)")
	flag.Parse()

	queries := []string{*query}
	if *queriesPath != "" {
		var err error
		if queries, err = loadQueries(*queriesPath); err != nil {
			log.Fatal(err)
		}
	}
	base, err := url.Parse(*baseURL)
	if err != nil {
		log.Fatalf("bad -url: %v", err)
	}
	if *concurrency < 1 {
		log.Fatalf("-c must be positive, got %d", *concurrency)
	}

	client := &http.Client{}

	if *mutate {
		samples, elapsed := runMutate(client, base, *count, *duration, *mutateInterval,
			*mutateOps, *mutateSeed, *mutateTable, *tenant)
		report(buildReport(samples, elapsed, false), *expectZero)
		return
	}

	var (
		mu      sync.Mutex
		samples []sample
		seq     atomic.Int64
	)
	stop := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				if *count > 0 {
					// Fixed-count mode: claim a global slot; round-robin
					// by slot so the query mix is deterministic.
					slot := seq.Add(1) - 1
					if slot >= int64(*count) {
						return
					}
					i = int(slot)
				} else if !time.Now().Before(stop) {
					return
				}
				s := oneRequest(client, base, *stream, queries[i%len(queries)], *k, *algo, *tenant, *timeout)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	report(buildReport(samples, time.Since(start), *stream), *expectZero)
}

// report prints the JSON summary and exits non-zero on any error: 1
// normally, 3 (with a per-code stderr breakdown) under -expect-zero-errors
// so fault-injection jobs can tell dropped requests from harness failure.
func report(rep summary, expectZero bool) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.Errors > 0 {
		if expectZero {
			codes := make([]string, 0, len(rep.ErrorsByCode))
			for code := range rep.ErrorsByCode {
				codes = append(codes, code)
			}
			sort.Strings(codes)
			for _, code := range codes {
				fmt.Fprintf(os.Stderr, "loadgen: %d request(s) failed with %s\n", rep.ErrorsByCode[code], code)
			}
			os.Exit(3)
		}
		os.Exit(1)
	}
}
