package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 5},   // 50% of 10 = rank 5
		{95, 10},  // ceil(9.5) = rank 10
		{99, 10},  // ceil(9.9) = rank 10
		{100, 10}, // the max
		{10, 1},   // rank 1
		{1, 1},    // rank floor
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("p%g of 1..10 = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %g, want 0", got)
	}
	if got := percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("p99 of single = %g, want 7", got)
	}
}

// TestPercentileBoundaries pins the ranks the old fudge-factor
// implementation (rank = int(p/100·n + 0.9999999)) could get wrong:
// exact boundary products must not be rounded up to the next rank.
func TestPercentileBoundaries(t *testing.T) {
	// n=1: every percentile is the single sample.
	for _, p := range []float64{1, 50, 95, 99, 100} {
		if got := percentile([]float64{42}, p); got != 42 {
			t.Fatalf("p%g of n=1 = %g, want 42", p, got)
		}
	}
	// p=100 is exactly the max, never past it.
	for n := 1; n <= 25; n++ {
		sorted := make([]float64, n)
		for i := range sorted {
			sorted[i] = float64(i + 1)
		}
		if got := percentile(sorted, 100); got != float64(n) {
			t.Fatalf("p100 of 1..%d = %g, want %d", n, got, n)
		}
	}
	// p=95, n=20: 0.95·20 is exactly rank 19, not 20 — the case where
	// a naive ceil over p/100·n picks up float error and overshoots.
	sorted := make([]float64, 20)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	if got := percentile(sorted, 95); got != 19 {
		t.Fatalf("p95 of 1..20 = %g, want 19", got)
	}
	// Same shape at p=50: 0.50·20 is exactly rank 10.
	if got := percentile(sorted, 50); got != 10 {
		t.Fatalf("p50 of 1..20 = %g, want 10", got)
	}
}

func TestSummarize(t *testing.T) {
	// Input deliberately unsorted: summarize must not assume order.
	s := summarize([]float64{30, 10, 20})
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 20 || s.Max != 30 {
		t.Fatalf("p50=%g max=%g, want 20/30", s.P50, s.Max)
	}
	if math.Abs(s.Mean-20) > 1e-12 {
		t.Fatalf("mean = %g, want 20", s.Mean)
	}
	if s.P95 != 30 || s.P99 != 30 {
		t.Fatalf("tail percentiles %g/%g, want 30/30", s.P95, s.P99)
	}
	zero := summarize(nil)
	if zero.Count != 0 || zero.P50 != 0 {
		t.Fatalf("empty summary %+v", zero)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("summarize reordered its input: %v", in)
	}
}

func TestBuildReport(t *testing.T) {
	samples := []sample{
		{totalMS: 10, firstMS: 2},
		{totalMS: 20, firstMS: 4},
		{totalMS: 30, firstMS: -1}, // stream with no answers: excluded from first-answer stats
		{errCode: "transport"},
	}
	rep := buildReport(samples, 2*time.Second, true)
	if rep.Requests != 4 || rep.Errors != 1 {
		t.Fatalf("requests/errors = %d/%d", rep.Requests, rep.Errors)
	}
	if rep.TotalMS.Count != 3 {
		t.Fatalf("total count = %d (errored request included?)", rep.TotalMS.Count)
	}
	if rep.FirstAnswerMS == nil || rep.FirstAnswerMS.Count != 2 {
		t.Fatalf("first-answer summary %+v, want count 2", rep.FirstAnswerMS)
	}
	if math.Abs(rep.QPS-2) > 1e-9 {
		t.Fatalf("qps = %g, want 2", rep.QPS)
	}

	// Non-streaming runs omit the first-answer block entirely.
	rep = buildReport(samples[:2], time.Second, false)
	if rep.FirstAnswerMS != nil {
		t.Fatalf("non-stream report carries first-answer stats: %+v", rep.FirstAnswerMS)
	}
}

// TestBuildReportErrorsByCode pins the failure classification the
// router-failover CI job gates on: failures are counted per code,
// errored requests stay out of the latency series, and a clean run
// omits the map entirely (so its JSON serializes without the key).
func TestBuildReportErrorsByCode(t *testing.T) {
	samples := []sample{
		{totalMS: 10},
		{errCode: "transport"},
		{errCode: "502"},
		{errCode: "502"},
		{errCode: "stream"},
	}
	rep := buildReport(samples, time.Second, false)
	if rep.Errors != 4 {
		t.Fatalf("errors = %d, want 4", rep.Errors)
	}
	want := map[string]int{"transport": 1, "502": 2, "stream": 1}
	if len(rep.ErrorsByCode) != len(want) {
		t.Fatalf("errors_by_code = %v, want %v", rep.ErrorsByCode, want)
	}
	for code, n := range want {
		if rep.ErrorsByCode[code] != n {
			t.Errorf("errors_by_code[%s] = %d, want %d", code, rep.ErrorsByCode[code], n)
		}
	}
	if rep.TotalMS.Count != 1 {
		t.Fatalf("latency count = %d: errored requests must not contribute", rep.TotalMS.Count)
	}

	clean := buildReport([]sample{{totalMS: 5}}, time.Second, false)
	if clean.ErrorsByCode != nil {
		t.Fatalf("clean run carries errors_by_code: %v", clean.ErrorsByCode)
	}
	raw, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "errors_by_code") {
		t.Fatalf("clean report JSON carries errors_by_code: %s", raw)
	}
}
