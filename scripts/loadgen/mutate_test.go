package main

import (
	"reflect"
	"strings"
	"testing"
)

// TestTraceGenDeterministic pins the property the replication smoke job
// leans on: the same seed against the same starting server produces the
// same byte-for-byte trace, so a rerun (or a second loadgen against a
// rebuilt primary) replays identical mutations.
func TestTraceGenDeterministic(t *testing.T) {
	mkTrace := func() []map[string]any {
		g := newTraceGen(7, 100, "paper")
		var batches []map[string]any
		for i := 0; i < 10; i++ {
			batches = append(batches, g.batch(8))
		}
		return batches
	}
	if a, b := mkTrace(), mkTrace(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces:\n%v\n%v", a, b)
	}
	g := newTraceGen(8, 100, "paper")
	if reflect.DeepEqual(mkTrace()[0], g.batch(8)) {
		t.Fatal("different seeds produced the same first batch")
	}
}

// TestTraceGenOpsValid checks every generated op is valid by
// construction against a server whose node count was base when the
// trace began: the trace opens with an insert_node, edges run from a
// trace-inserted node to a base node (so never a self-loop, never out of
// range), and terms land on trace-inserted nodes.
func TestTraceGenOpsValid(t *testing.T) {
	const base = int64(50)
	g := newTraceGen(1, base, "paper")
	next := base // the ID the server will assign to the next insert_node
	kinds := map[string]int{}
	for b := 0; b < 20; b++ {
		batch := g.batch(8)
		ops := batch["ops"].([]map[string]any)
		if len(ops) != 8 {
			t.Fatalf("batch %d has %d ops, want 8", b, len(ops))
		}
		for i, op := range ops {
			kind := op["op"].(string)
			kinds[kind]++
			switch kind {
			case "insert_node":
				if op["table"] != "paper" {
					t.Fatalf("insert_node table %v", op["table"])
				}
				if !strings.Contains(op["text"].(string), "mutatetrace") {
					t.Fatalf("insert_node text %q lacks the trace marker", op["text"])
				}
				next++
			case "insert_edge":
				from, to := op["from"].(int64), op["to"].(int64)
				if from < base || from >= next {
					t.Fatalf("batch %d op %d: edge from %d outside inserted range [%d,%d)", b, i, from, base, next)
				}
				if to < 0 || to >= base {
					t.Fatalf("batch %d op %d: edge to %d outside base range [0,%d)", b, i, to, base)
				}
				if from == to {
					t.Fatalf("batch %d op %d: self-loop on %d", b, i, from)
				}
			case "insert_term":
				node := op["node"].(int64)
				if node < base || node >= next {
					t.Fatalf("batch %d op %d: term node %d outside inserted range [%d,%d)", b, i, node, base, next)
				}
			default:
				t.Fatalf("batch %d op %d: unexpected kind %q", b, i, kind)
			}
		}
		if b == 0 && ops[0]["op"] != "insert_node" {
			t.Fatalf("trace does not open with insert_node: %v", ops[0])
		}
	}
	for _, kind := range []string{"insert_node", "insert_edge", "insert_term"} {
		if kinds[kind] == 0 {
			t.Fatalf("20 batches generated no %s ops (mix: %v)", kind, kinds)
		}
	}
}

// TestTraceGenEmptyBase covers the fresh-server fallback (statusz
// unreachable → base 0): with no base nodes there are no valid edge
// targets, so the trace must degrade to node and term inserts only.
func TestTraceGenEmptyBase(t *testing.T) {
	g := newTraceGen(3, 0, "paper")
	for b := 0; b < 10; b++ {
		batch := g.batch(8)
		for i, op := range batch["ops"].([]map[string]any) {
			if op["op"] == "insert_edge" {
				t.Fatalf("batch %d op %d: edge generated with no base nodes", b, i)
			}
		}
	}
}
