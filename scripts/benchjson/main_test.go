package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: banks
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMIBackwardSerial          	       5	 324381790 ns/op
BenchmarkMIBackwardParallel2-8     	       5	 208288079 ns/op
BenchmarkMIBackwardParallel4-8     	       5	 161705669 ns/op
BenchmarkMIBackwardParallel8-8     	       5	 155829560 ns/op
BenchmarkBidirectionalShardSerial-8	       5	 847792415 ns/op
BenchmarkBidirectionalSharded-8    	       5	 623737649 ns/op
PASS
ok  	banks	45.2s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("parsed %d results, want 6: %v", len(results), results)
	}
	if got := results["BenchmarkMIBackwardSerial"]; got != 324381790 {
		t.Fatalf("serial ns/op = %v", got)
	}
	if got := results["BenchmarkMIBackwardParallel4"]; got != 161705669 {
		t.Fatalf("parallel4 ns/op = %v (GOMAXPROCS suffix not stripped?)", got)
	}
}

func TestParseBenchKeepsFastestRun(t *testing.T) {
	out := "BenchmarkMIBackwardSerial 5 300 ns/op\nBenchmarkMIBackwardSerial 5 200 ns/op\nBenchmarkMIBackwardSerial 5 250 ns/op\n"
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := results["BenchmarkMIBackwardSerial"]; got != 200 {
		t.Fatalf("kept %v, want fastest 200", got)
	}
}

func TestBuild(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := build(results, "test-cpu", 8, "2026-07-29")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 6 {
		t.Fatalf("%d results, want 6", len(doc.Results))
	}
	if doc.Results[0].Benchmark != "BenchmarkMIBackwardSerial" || doc.Results[0].NsPerOp != 324381790 {
		t.Fatalf("result order/values wrong: %+v", doc.Results[0])
	}
	// 324381790 / 161705669 = 2.006... → 2.01
	if doc.Derived.MISpeedup4 != 2.01 {
		t.Fatalf("speedup %v, want 2.01", doc.Derived.MISpeedup4)
	}
	if !doc.Derived.AcceptanceMet {
		t.Fatal("2x speedup did not meet the 1.5x threshold")
	}
	if !strings.Contains(doc.Derived.Note, "8-core") {
		t.Fatalf("multi-core note wrong: %q", doc.Derived.Note)
	}

	// Missing benchmark fails loudly instead of writing a partial file.
	delete(results, "BenchmarkBidirectionalSharded")
	if _, err := build(results, "test-cpu", 8, "2026-07-29"); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

func TestBuildSingleCoreNote(t *testing.T) {
	results, _ := parseBench(strings.NewReader(sampleOutput))
	doc, err := build(results, "test-cpu", 1, "2026-07-29")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Derived.Note, "bound coordination overhead") {
		t.Fatalf("single-core note wrong: %q", doc.Derived.Note)
	}
}
