// Cancellation and deadline tests for the context-aware search API.
package banks_test

import (
	"context"
	"testing"
	"time"

	"banks"
)

// TestExpiredContextReturnsPromptly: a context that is already expired must
// come back in well under 50ms with Stats.Truncated set, for every
// algorithm and for near queries.
func TestExpiredContextReturnsPromptly(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()

	for _, algo := range banks.Algorithms() {
		start := time.Now()
		res, err := db.SearchContext(ctx, "database transaction", algo, banks.Options{K: 10})
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Stats.Truncated {
			t.Fatalf("%s: expired context did not set Truncated", algo)
		}
		if elapsed > 50*time.Millisecond {
			t.Fatalf("%s: expired context took %v", algo, elapsed)
		}
	}

	start := time.Now()
	_, stats, err := db.NearContext(ctx, "database transaction", banks.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("near: expired context did not set Truncated")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("near: expired context took %v", elapsed)
	}
}

// TestDeadlineTruncatesLargeSearch is the acceptance-criterion scenario: a
// 1ms deadline on the largest test graph must return within 50ms with a
// truncated partial result, instead of running the search to completion.
func TestDeadlineTruncatesLargeSearch(t *testing.T) {
	db := testDB(t)
	// K larger than the answer count forces frontier exhaustion: without a
	// deadline this query explores essentially the whole graph.
	opts := banks.Options{K: 500, DMax: 16}

	for _, algo := range banks.Algorithms() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		res, err := db.SearchContext(ctx, "database transaction", algo, opts)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !res.Stats.Truncated {
			t.Fatalf("%s: 1ms deadline did not truncate (took %v, explored %d)",
				algo, elapsed, res.Stats.NodesExplored)
		}
		if elapsed > 50*time.Millisecond {
			t.Fatalf("%s: truncated search took %v, want ≤50ms", algo, elapsed)
		}
	}
}

// TestCancelMidSearch: cancelling a running search makes it return its
// partial answers quickly.
func TestCancelMidSearch(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	// The query is heavy enough (~80ms serial) that the cancel goroutine is
	// guaranteed to be scheduled before the search finishes, even at
	// GOMAXPROCS=1 where it must wait for an async preemption (~10-20ms).
	start := time.Now()
	res, err := db.SearchContext(ctx, "database transaction author", banks.Bidirectional, banks.Options{K: 2000, DMax: 32})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatalf("cancel mid-search did not truncate (took %v)", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancelled search took %v", elapsed)
	}
}

// TestTruncatedResultIsUsable: a truncated result is a well-formed partial
// top-k — every answer present passes the same shape checks as a full
// answer.
func TestTruncatedResultIsUsable(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	res, err := db.SearchContext(ctx, "database transaction", banks.Bidirectional, banks.Options{K: 500, DMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Skip("search finished before the deadline on this machine")
	}
	for i, a := range res.Answers {
		if a.Root < 0 || len(a.Nodes) == 0 {
			t.Fatalf("answer %d malformed: %+v", i, a)
		}
		if a.Score <= 0 {
			t.Fatalf("answer %d has non-positive score %v", i, a.Score)
		}
		// Explain must render without panicking.
		if s := db.Explain(a); s == "" {
			t.Fatalf("answer %d: empty Explain", i)
		}
	}
}
