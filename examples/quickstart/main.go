// Quickstart: build a tiny bibliography database by hand, convert it into
// a BANKS data graph, and answer the paper's running example query
// "gray transaction" with Bidirectional search.
package main

import (
	"fmt"
	"log"

	"banks"
	"banks/internal/relational"
)

func main() {
	// 1. Define a relational database: authors, papers, and the writes
	//    relationship connecting them.
	db := relational.NewDatabase()
	author, err := db.CreateTable("author", []string{"name"}, nil)
	check(err)
	paper, err := db.CreateTable("paper", []string{"title"}, nil)
	check(err)
	writes, err := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	check(err)

	gray := author.Append([]string{"Jim Gray"}, nil)
	selinger := author.Append([]string{"Pat Selinger"}, nil)
	mohan := author.Append([]string{"C. Mohan"}, nil)

	p1 := paper.Append([]string{"The Transaction Concept: Virtues and Limitations"}, nil)
	p2 := paper.Append([]string{"Access Path Selection in a Relational Database"}, nil)
	p3 := paper.Append([]string{"ARIES: A Transaction Recovery Method"}, nil)

	writes.Append(nil, []int32{gray, p1})
	writes.Append(nil, []int32{selinger, p2})
	writes.Append(nil, []int32{mohan, p3})
	check(db.Freeze())

	// 2. Build the searchable BANKS database: data graph with derived
	//    backward edges, keyword index, and node prestige.
	bdb, err := banks.Build(db, banks.BuildOptions{})
	check(err)

	// 3. Search. An answer is a minimal rooted tree connecting nodes that
	//    match every keyword — here a writes tuple joining Gray to his
	//    transaction paper.
	res, err := bdb.Search("gray transaction", banks.Bidirectional, banks.Options{K: 3})
	check(err)

	fmt.Printf("query %q: %d answers (explored %d nodes)\n\n",
		"gray transaction", len(res.Answers), res.Stats.NodesExplored)
	for i, a := range res.Answers {
		fmt.Printf("answer %d:\n%s\n", i+1, bdb.Explain(a))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
