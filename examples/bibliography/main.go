// Bibliography example: the paper's primary scenario (a DBLP-like graph).
// Generates a synthetic bibliography, then contrasts the three search
// algorithms on the frequent-keyword query shape that motivates
// Bidirectional search (§4.1): one rare author name combined with a very
// common title word.
package main

import (
	"fmt"
	"log"
	"time"

	"banks"
	"banks/internal/datagen"
)

func main() {
	ds, err := datagen.DBLP(datagen.DBLPConfig{
		Papers: 12_000, Authors: 7_000, Confs: 40, SeedsPerCombo: 10, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := banks.Build(ds.DB, banks.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bibliography graph: %d nodes, %d edges\n\n", db.Graph.NumNodes(), db.Graph.NumEdges())

	// Pick a planted tiny-band title term (rare) and a large-band term
	// (frequent) that are guaranteed to co-occur in one answer: exactly
	// the "Gray transaction" asymmetry from the paper's introduction.
	var seed datagen.ComboSeed
	found := false
	for _, s := range ds.Seeds {
		if s.Combo == [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandLarge, datagen.BandLarge} {
			seed, found = s, true
			break
		}
	}
	if !found {
		log.Fatal("no (T,T,L,L) combo seed planted")
	}
	query := seed.EntityTerms[0] + " " + seed.NameTerms[0]
	fmt.Printf("query: %q (rare title term + frequent author term)\n", query)
	for _, t := range banks.Keywords(query) {
		fmt.Printf("  %-12s matches %d nodes\n", t, len(db.KeywordNodes(t)))
	}
	fmt.Println()

	for _, algo := range banks.Algorithms() {
		start := time.Now()
		res, err := db.Search(query, algo, banks.Options{K: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s: %2d answers, explored %6d, touched %6d nodes, %v\n",
			algo, len(res.Answers), res.Stats.NodesExplored, res.Stats.NodesTouched,
			time.Since(start).Round(time.Microsecond))
	}

	res, err := db.Search(query, banks.Bidirectional, banks.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop answers (bidirectional):")
	for i, a := range res.Answers {
		fmt.Printf("answer %d:\n%s\n", i+1, db.Explain(a))
	}
}
