// Movies example (the paper's IMDB scenario): near queries and edge-type
// constraints.
//
// Demonstrates two extensions the paper describes:
//   - "near queries" (§4.3 footnote 6): rank individual nodes by summed
//     activation instead of building connecting trees;
//   - edge-type constraints (§1): restrict the search to specified
//     relationship types, e.g. only acting credits, never directing.
package main

import (
	"fmt"
	"log"

	"banks"
	"banks/internal/datagen"
	"banks/internal/graph"
)

func main() {
	ds, err := datagen.IMDB(datagen.IMDBConfig{
		Movies: 8_000, Actors: 6_000, Directors: 900, SeedsPerCombo: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := banks.Build(ds.DB, banks.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movie graph: %d nodes, %d edges\n\n", db.Graph.NumNodes(), db.Graph.NumEdges())

	// Use a planted combo seed so the demo query is guaranteed to connect.
	seed := ds.Seeds[0]
	query := seed.EntityTerms[0] + " " + seed.NameTerms[0]

	// 1. Regular tree search.
	res, err := db.Search(query, banks.Bidirectional, banks.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree search %q: %d answers\n", query, len(res.Answers))
	if len(res.Answers) > 0 {
		fmt.Println(db.Explain(res.Answers[0]))
	}

	// 2. Near query: which nodes are closest to both keywords?
	nearRes, stats, err := db.Near(query, banks.Options{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("near query %q (explored %d nodes):\n", query, stats.NodesExplored)
	for i, r := range nearRes {
		fmt.Printf("%2d. a=%.5f %s\n", i+1, r.Activation, db.NodeLabel(r.Node))
	}
	fmt.Println()

	// 3. Edge-type constraint: only traverse casts.* edges (acting
	//    credits), never movie.director edges. Answers may only connect
	//    through the casts relationship.
	castsActor, _ := db.EdgeTypes.Lookup("casts.actor")
	castsMovie, _ := db.EdgeTypes.Lookup("casts.movie")
	onlyCasts := func(t graph.EdgeType, forward bool) bool {
		return t == castsActor || t == castsMovie
	}
	res2, err := db.Search(query, banks.Bidirectional, banks.Options{K: 3, EdgeFilter: onlyCasts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query restricted to casts edges: %d answers\n", len(res2.Answers))
	for _, a := range res2.Answers {
		for _, e := range a.Edges {
			fmt.Printf("  edge %s (%s)\n", db.EdgeTypes.Name(e.Type), direction(e.Forward))
		}
		break
	}
}

func direction(forward bool) string {
	if forward {
		return "forward"
	}
	return "backward"
}
