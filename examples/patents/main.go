// Patents example (the paper's US-Patents scenario): relation-name
// keywords and prestige modes.
//
// Shows the §2.2 semantics where a query term that names a relation
// matches every tuple of that relation ("assignee recovery" finds patents
// about recovery connected to their assignee companies), and compares the
// random-walk prestige ranking with the cheaper indegree prestige.
package main

import (
	"fmt"
	"log"

	"banks"
	"banks/internal/datagen"
)

func main() {
	ds, err := datagen.Patents(datagen.PatentsConfig{
		Patents: 10_000, Inventors: 6_000, Assignees: 400, SeedsPerCombo: 8, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		m    banks.PrestigeMode
	}{
		{"random-walk prestige (paper §2.3)", banks.PrestigeRandomWalk},
		{"indegree prestige (BANKS-I)", banks.PrestigeIndegree},
	} {
		db, err := banks.Build(ds.DB, banks.BuildOptions{Prestige: mode.m})
		if err != nil {
			log.Fatal(err)
		}
		// "microsoft" matches an assignee tuple; "assignee" names the
		// relation and therefore matches *all* assignee tuples (§2.2).
		fmt.Printf("=== %s ===\n", mode.name)
		fmt.Printf("keyword %q matches %d nodes (relation-name semantics)\n",
			"assignee", len(db.KeywordNodes("assignee")))

		res, err := db.Search("microsoft patent", banks.Bidirectional, banks.Options{K: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query \"microsoft patent\": %d answers (explored %d)\n",
			len(res.Answers), res.Stats.NodesExplored)
		if len(res.Answers) > 0 {
			fmt.Println(db.Explain(res.Answers[0]))
		}
	}
}
