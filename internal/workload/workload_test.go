package workload

import (
	"math/rand"
	"testing"

	"banks/internal/convert"
	"banks/internal/datagen"
	"banks/internal/graph"
)

var cached struct {
	ds    *datagen.Dataset
	built *convert.Result
}

func testGen(t testing.TB) *Generator {
	if cached.ds == nil {
		ds, err := datagen.DBLP(datagen.DBLPConfig{
			Papers: 4000, Authors: 2500, Confs: 15, SeedsPerCombo: 6, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		built, err := convert.Build(ds.DB, convert.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, built.Graph.NumNodes())
		for i := range p {
			p[i] = 1
		}
		_ = built.Graph.SetPrestige(p)
		cached.ds, cached.built = ds, built
	}
	return New(cached.ds, cached.built)
}

func TestCanonNodes(t *testing.T) {
	a := CanonNodes([]graph.NodeID{3, 1, 2})
	b := CanonNodes([]graph.NodeID{2, 3, 1})
	if a != b || a != "1,2,3" {
		t.Fatalf("CanonNodes not canonical: %q vs %q", a, b)
	}
	if CanonNodes([]graph.NodeID{5, 5, 5}) != "5" {
		t.Fatal("CanonNodes does not dedupe")
	}
	if CanonNodes(nil) != "" {
		t.Fatal("empty set canon")
	}
}

func TestDefaultThresholds(t *testing.T) {
	// The small threshold is scaled at nodes/1000 (more generous than the
	// paper's literal 1000/2M; see DefaultThresholds) and large at the
	// paper's nodes/250.
	sm, lg := DefaultThresholds(2_000_000)
	if sm != 2000 || lg != 8000 {
		t.Fatalf("paper-scale thresholds = (%d,%d), want (2000,8000)", sm, lg)
	}
	sm, lg = DefaultThresholds(1000)
	if sm < 1 || lg <= sm {
		t.Fatalf("tiny-scale thresholds inconsistent: (%d,%d)", sm, lg)
	}
}

func TestSizeFiveQueryShape(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(1))
	for _, nk := range []int{2, 4, 7} {
		var q *Query
		ok := false
		for tries := 0; tries < 300 && !ok; tries++ {
			q, ok = g.SizeFive(rng, nk, OriginAny)
		}
		if !ok {
			t.Fatalf("could not generate %d-keyword query", nk)
		}
		if len(q.Terms) != nk || len(q.Keywords) != nk {
			t.Fatalf("query has %d terms, want %d: %v", len(q.Terms), nk, q.Terms)
		}
		if q.AnswerSize != 5 {
			t.Fatalf("AnswerSize = %d", q.AnswerSize)
		}
		if len(q.Relevant) == 0 {
			t.Fatal("no ground truth")
		}
		for i, s := range q.Keywords {
			if len(s) == 0 {
				t.Fatalf("keyword %d (%s) resolves to nothing", i, q.Terms[i])
			}
		}
		// Ground-truth sets must contain exactly 5 nodes.
		for set := range q.Relevant {
			n := 1
			for _, c := range set {
				if c == ',' {
					n++
				}
			}
			if n != 5 {
				t.Fatalf("ground-truth set %q has %d nodes, want 5", set, n)
			}
		}
	}
}

func TestSizeFiveClasses(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(2))
	for _, class := range []OriginClass{OriginSmall, OriginLarge} {
		var q *Query
		ok := false
		for tries := 0; tries < 800 && !ok; tries++ {
			q, ok = g.SizeFive(rng, 3, class)
		}
		if !ok {
			t.Fatalf("could not generate %v-origin query", class)
		}
		if q.Class != class {
			t.Fatalf("class = %v, want %v (union=%d, small<%d, large>%d)",
				q.Class, class, q.UnionOrigin, g.SmallMax, g.LargeMin)
		}
	}
}

func TestSizeFiveInvalidKeywordCount(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(3))
	if _, ok := g.SizeFive(rng, 1, OriginAny); ok {
		t.Fatal("1-keyword query accepted")
	}
	if _, ok := g.SizeFive(rng, 8, OriginAny); ok {
		t.Fatal("8-keyword query accepted")
	}
}

func TestComboQueries(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(4))
	for _, combo := range datagen.Combos() {
		q, ok := g.Combo(rng, combo)
		if !ok {
			t.Fatalf("no combo query for %s", datagen.ComboLabel(combo))
		}
		if len(q.Terms) != 4 {
			t.Fatalf("combo query has %d terms", len(q.Terms))
		}
		if q.AnswerSize != 3 {
			t.Fatalf("combo AnswerSize = %d", q.AnswerSize)
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("combo %s: no ground truth", datagen.ComboLabel(combo))
		}
		if q.Bands != combo {
			t.Fatalf("bands not recorded: %v", q.Bands)
		}
		// Every keyword must resolve.
		for i, s := range q.Keywords {
			if len(s) == 0 {
				t.Fatalf("combo keyword %s resolves to nothing", q.Terms[i])
			}
		}
	}
}

func TestComboBandSelectivityOrdering(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(5))
	tttt, ok1 := g.Combo(rng, [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandTiny, datagen.BandTiny})
	llll, ok2 := g.Combo(rng, [4]datagen.Band{datagen.BandLarge, datagen.BandLarge, datagen.BandLarge, datagen.BandLarge})
	if !ok1 || !ok2 {
		t.Fatal("combo generation failed")
	}
	if tttt.UnionOrigin >= llll.UnionOrigin {
		t.Fatalf("tiny combo union %d not smaller than large combo union %d",
			tttt.UnionOrigin, llll.UnionOrigin)
	}
}

func TestBatch(t *testing.T) {
	g := testGen(t)
	rng := rand.New(rand.NewSource(6))
	qs := g.Batch(rng, 5, 3, OriginAny, 300)
	if len(qs) == 0 {
		t.Fatal("batch empty")
	}
	for _, q := range qs {
		if len(q.Terms) != 3 {
			t.Fatalf("batch query wrong arity: %v", q.Terms)
		}
	}
}
