// Package workload generates query workloads following §5.4 and §5.6 of
// the paper.
//
// §5.4: queries of 2–7 keywords whose most relevant result has a fixed
// join-network size of 5 (author–writes–paper–writes–author in the
// bibliography schema). The workload is produced exactly as in the paper:
// sample a join-network instantiation from the data, then draw the
// keywords from the text of its tuples; ground-truth relevant answers are
// obtained by executing the join network with keyword predicates (the
// paper's "executed SQL queries ... keywords were selected at random from
// each tuple in the result set"). Queries are classified by origin size:
// small when fewer than SmallMax records match at least one keyword, large
// when more than LargeMin do (the thresholds scale with dataset size; the
// paper uses 1000 and 8000 on ~2M-node DBLP).
//
// §5.6: 4-keyword queries with relevant-result size 3 whose keywords fall
// in prescribed selectivity bands (tiny/small/medium/large); these are
// drawn from the combo seeds the dataset generator plants.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"banks/internal/convert"
	"banks/internal/datagen"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/relational"
)

// OriginClass classifies a query by its union origin size (§5.4).
type OriginClass int

// Origin classes.
const (
	OriginAny OriginClass = iota
	OriginSmall
	OriginLarge
)

func (c OriginClass) String() string {
	switch c {
	case OriginSmall:
		return "small"
	case OriginLarge:
		return "large"
	default:
		return "any"
	}
}

// NodeSet is a canonical (sorted, comma-joined) representation of an
// answer's node set, used to compare algorithm output with ground truth.
type NodeSet string

// CanonNodes builds the canonical set representation.
func CanonNodes(ids []graph.NodeID) NodeSet {
	s := make([]int, len(ids))
	for i, id := range ids {
		s[i] = int(id)
	}
	sort.Ints(s)
	parts := make([]string, 0, len(s))
	last := -1
	for _, v := range s {
		if v == last {
			continue
		}
		last = v
		parts = append(parts, fmt.Sprint(v))
	}
	return NodeSet(strings.Join(parts, ","))
}

// Query is one generated workload query with its ground truth.
type Query struct {
	// Terms are the query keywords.
	Terms []string
	// Keywords are the resolved per-term node sets.
	Keywords [][]graph.NodeID
	// Relevant holds the ground-truth answers as canonical node sets.
	Relevant map[NodeSet]bool
	// UnionOrigin is |⋃ᵢ Sᵢ|.
	UnionOrigin int
	// Class is the query's origin-size class.
	Class OriginClass
	// AnswerSize is the join-network size of the relevant results.
	AnswerSize int
	// Bands records the selectivity bands for §5.6 queries.
	Bands [4]datagen.Band
}

// Generator produces workload queries over one dataset.
type Generator struct {
	DS    *datagen.Dataset
	Built *convert.Result
	// SmallMax / LargeMin are the §5.4 classification thresholds (scaled
	// by the caller; see DefaultThresholds).
	SmallMax int
	LargeMin int
	// MaxGroundTruth caps ground-truth enumeration per query.
	MaxGroundTruth int
}

// DefaultThresholds scales the paper's small (<1000) and large (>8000)
// origin thresholds from its ~2M-node DBLP graph to the given graph size.
// The small threshold is scaled slightly more generously (nodes/1000):
// synthetic name tokens are denser than real DBLP author names, and with
// the literal scaling the small class becomes empty for 6–7 keyword
// queries at bench scale.
func DefaultThresholds(numNodes int) (smallMax, largeMin int) {
	smallMax = numNodes / 1000
	if smallMax < 30 {
		smallMax = 30
	}
	largeMin = numNodes / 250 // 8000 at 2M nodes
	if largeMin <= smallMax*2 {
		largeMin = smallMax * 2
	}
	return smallMax, largeMin
}

// New builds a Generator with default thresholds.
func New(ds *datagen.Dataset, built *convert.Result) *Generator {
	sm, lg := DefaultThresholds(built.Graph.NumNodes())
	return &Generator{DS: ds, Built: built, SmallMax: sm, LargeMin: lg, MaxGroundTruth: 500}
}

// resolve fills Keywords, UnionOrigin and Class from Terms.
func (g *Generator) resolve(q *Query) {
	q.Keywords = make([][]graph.NodeID, len(q.Terms))
	union := make(map[graph.NodeID]struct{})
	for i, t := range q.Terms {
		q.Keywords[i] = g.Built.Index.Lookup(t)
		for _, u := range q.Keywords[i] {
			union[u] = struct{}{}
		}
	}
	q.UnionOrigin = len(union)
	switch {
	case q.UnionOrigin < g.SmallMax:
		q.Class = OriginSmall
	case q.UnionOrigin > g.LargeMin:
		q.Class = OriginLarge
	default:
		q.Class = OriginAny
	}
}

// SizeFive generates one §5.4 query with the given keyword count (2–7)
// and desired origin class. It reports ok=false when the random draw
// failed to produce a query of the requested class (callers retry).
func (g *Generator) SizeFive(rng *rand.Rand, nKeywords int, class OriginClass) (*Query, bool) {
	if nKeywords < 2 || nKeywords > 7 {
		return nil, false
	}
	db := g.DS.DB
	link := db.Table(g.DS.LinkTable)
	entity := db.Table(g.DS.EntityTable)
	names := db.Table(g.DS.NameTable)

	// Sample an entity with at least two distinct linked name tuples.
	var eRow int32
	var n1, n2 int32
	found := false
	for tries := 0; tries < 64 && !found; tries++ {
		eRow = int32(rng.Intn(entity.NumRows()))
		links := link.RefRows(g.DS.LinkEntityFK, eRow)
		if len(links) < 2 {
			continue
		}
		a := link.Row(links[rng.Intn(len(links))]).FKs[g.DS.LinkNameFK]
		b := link.Row(links[rng.Intn(len(links))]).FKs[g.DS.LinkNameFK]
		if a != b {
			n1, n2, found = a, b, true
		}
	}
	if !found {
		return nil, false
	}

	pick := func(tokens []string, preferLarge bool) (string, bool) {
		if len(tokens) == 0 {
			return "", false
		}
		best, bestCount := "", -1
		for _, t := range tokens {
			c := len(g.Built.Index.Lookup(t))
			if c == 0 {
				continue
			}
			better := false
			switch {
			case bestCount < 0:
				better = true
			case preferLarge && c > bestCount:
				better = true
			case !preferLarge && c < bestCount:
				better = true
			}
			if better {
				best, bestCount = t, c
			}
		}
		return best, best != ""
	}

	toks1 := index.Tokenize(strings.Join(names.Row(n1).Texts, " "))
	toks2 := index.Tokenize(strings.Join(names.Row(n2).Texts, " "))
	toksE := index.Tokenize(strings.Join(entity.Row(eRow).Texts, " "))

	preferLarge := class == OriginLarge
	t1, ok1 := pick(toks1, preferLarge)
	t2, ok2 := pick(toks2, false) // second endpoint stays selective
	if !ok1 || !ok2 || t1 == t2 {
		return nil, false
	}
	terms := []string{t1, t2}
	entityTerms := []string{}
	rng.Shuffle(len(toksE), func(i, j int) { toksE[i], toksE[j] = toksE[j], toksE[i] })
	for _, tok := range toksE {
		if len(terms) >= nKeywords {
			break
		}
		if tok == t1 || tok == t2 || contains(entityTerms, tok) {
			continue
		}
		// For large-origin queries let frequent title words through; for
		// small ones require selective words.
		c := len(g.Built.Index.Lookup(tok))
		if c == 0 {
			continue
		}
		if class == OriginSmall && c > g.SmallMax {
			continue
		}
		terms = append(terms, tok)
		entityTerms = append(entityTerms, tok)
	}
	if len(terms) != nKeywords {
		return nil, false
	}

	q := &Query{Terms: terms, AnswerSize: 5}
	g.resolve(q)
	if class != OriginAny && q.Class != class {
		return nil, false
	}

	// Ground truth: evaluate the size-5 join network
	// name{t1} – link – entity{entityTerms} – link – name{t2},
	// rooted at the more selective endpoint.
	gt := g.evalSizeFive(t1, t2, entityTerms)
	if len(gt) == 0 {
		return nil, false
	}
	q.Relevant = gt
	return q, true
}

// evalSizeFive executes the §5.4 join network and returns the canonical
// ground-truth node sets.
func (g *Generator) evalSizeFive(t1, t2 string, entityTerms []string) map[NodeSet]bool {
	db := g.DS.DB
	c1 := len(db.Table(g.DS.NameTable).MatchingRows(t1))
	c2 := len(db.Table(g.DS.NameTable).MatchingRows(t2))
	rootTerm, farTerm := t1, t2
	if c2 < c1 {
		rootTerm, farTerm = t2, t1
	}

	far := &relational.JoinNode{Table: g.DS.NameTable, Term: farTerm}
	link2 := &relational.JoinNode{
		Table:    g.DS.LinkTable,
		Children: []relational.JoinEdge{{Child: far, ParentFK: g.DS.LinkNameFK, ChildFK: -1}},
	}
	ent := &relational.JoinNode{
		Table: g.DS.EntityTable,
		Terms: entityTerms,
		Children: []relational.JoinEdge{{
			Child: link2, ParentFK: -1, ChildFK: g.DS.LinkEntityFK,
		}},
	}
	link1 := &relational.JoinNode{
		Table: g.DS.LinkTable,
		Children: []relational.JoinEdge{{
			Child: ent, ParentFK: g.DS.LinkEntityFK, ChildFK: -1,
		}},
	}
	root := &relational.JoinNode{
		Table: g.DS.NameTable,
		Term:  rootTerm,
		Children: []relational.JoinEdge{{
			Child: link1, ParentFK: -1, ChildFK: g.DS.LinkNameFK,
		}},
	}
	res, err := db.EvalJoin(root, g.MaxGroundTruth)
	if err != nil {
		return nil
	}
	out := make(map[NodeSet]bool)
	for _, r := range res {
		// r = [name1, link1, entity, link2, name2]; discard degenerate
		// matches where the two endpoints or the two link rows coincide.
		if r[0] == r[4] || r[1] == r[3] {
			continue
		}
		ids := make([]graph.NodeID, len(r))
		for i, ref := range r {
			ids[i] = g.Built.Mapping.NodeOf(ref)
		}
		out[CanonNodes(ids)] = true
	}
	return out
}

// Combo generates one §5.6 query for the given selectivity-band
// combination, drawing from the dataset's planted combo seeds. The
// relevant result size is 3 (entity–link–name).
func (g *Generator) Combo(rng *rand.Rand, combo [4]datagen.Band) (*Query, bool) {
	var seeds []datagen.ComboSeed
	for _, s := range g.DS.Seeds {
		if s.Combo == combo {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		return nil, false
	}
	seed := seeds[rng.Intn(len(seeds))]
	terms := []string{seed.EntityTerms[0], seed.EntityTerms[1], seed.NameTerms[0], seed.NameTerms[1]}

	q := &Query{Terms: terms, AnswerSize: 3, Bands: combo}
	g.resolve(q)

	// Ground truth: entity{t1,t2} – link – name{n1,n2}.
	name := &relational.JoinNode{Table: g.DS.NameTable, Terms: []string{seed.NameTerms[0], seed.NameTerms[1]}}
	link := &relational.JoinNode{
		Table:    g.DS.LinkTable,
		Children: []relational.JoinEdge{{Child: name, ParentFK: g.DS.LinkNameFK, ChildFK: -1}},
	}
	root := &relational.JoinNode{
		Table: g.DS.EntityTable,
		Terms: []string{seed.EntityTerms[0], seed.EntityTerms[1]},
		Children: []relational.JoinEdge{{
			Child: link, ParentFK: -1, ChildFK: g.DS.LinkEntityFK,
		}},
	}
	res, err := g.DS.DB.EvalJoin(root, g.MaxGroundTruth)
	if err != nil || len(res) == 0 {
		return nil, false
	}
	q.Relevant = make(map[NodeSet]bool)
	for _, r := range res {
		ids := make([]graph.NodeID, len(r))
		for i, ref := range r {
			ids[i] = g.Built.Mapping.NodeOf(ref)
		}
		q.Relevant[CanonNodes(ids)] = true
	}
	return q, true
}

// Batch generates up to n queries of the given keyword count and class,
// trying at most tries random draws.
func (g *Generator) Batch(rng *rand.Rand, n, nKeywords int, class OriginClass, tries int) []*Query {
	var out []*Query
	for t := 0; t < tries && len(out) < n; t++ {
		if q, ok := g.SizeFive(rng, nKeywords, class); ok {
			out = append(out, q)
		}
	}
	return out
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
