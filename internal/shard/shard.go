// Package shard partitions a built BANKS database into N self-contained
// snapshot shards for the scatter-gather serving tier (cmd/banksrouter).
//
// The partition is component-closed node hashing: every connected
// component of the combined graph G′ is assigned wholesale to the shard
// named by hashing the component's representative node (its smallest
// NodeID). Because BANKS answers are connected trees (§2.2), an answer
// can never span two components — so a component-closed partition
// guarantees each answer is discoverable on exactly one shard, with zero
// boundary edges duplicated (disclosed as ShardMeta.DuplicatedEdges).
// A naive per-node hash would cut components apart and force either edge
// duplication or cross-shard expansion, both of which break the
// bit-identity contract the router's differential harness enforces.
//
// Each shard file keeps the source snapshot's full node-indexed arrays
// (offsets, node table, prestige, row mapping) so global node IDs, row
// labels and MaxPrestige are preserved bit-for-bit; non-owned nodes
// simply have empty adjacency and are filtered out of every posting
// list. Per-shard search therefore runs the exact same arithmetic as a
// single-node search restricted to the owned components.
package shard

import (
	"fmt"
	"hash/fnv"

	"banks/internal/convert"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/store"
)

// Assignment maps every node to its shard.
type Assignment struct {
	// NumShards is the partition width.
	NumShards int
	// Shard[u] is the shard owning node u.
	Shard []int
	// Components is the number of connected components in the graph.
	Components int
	// ComponentsPerShard[s] counts components assigned to shard s.
	ComponentsPerShard []int
}

// Partition computes the component-closed node-hash assignment of g's
// nodes across n shards.
func Partition(g *graph.Graph, n int) (*Assignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: invalid shard count %d", n)
	}
	numNodes := g.NumNodes()
	rep := make([]graph.NodeID, numNodes)
	for i := range rep {
		rep[i] = graph.InvalidNode
	}
	a := &Assignment{
		NumShards:          n,
		Shard:              make([]int, numNodes),
		ComponentsPerShard: make([]int, n),
	}
	// Iterative DFS labels each component with its smallest NodeID (the
	// first unvisited node in ascending scan order is the minimum of its
	// component).
	var stack []graph.NodeID
	for u := 0; u < numNodes; u++ {
		if rep[u] != graph.InvalidNode {
			continue
		}
		r := graph.NodeID(u)
		s := shardOf(r, n)
		a.Components++
		a.ComponentsPerShard[s]++
		rep[u] = r
		a.Shard[u] = s
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.Neighbors(v) {
				if rep[h.To] == graph.InvalidNode {
					rep[h.To] = r
					a.Shard[h.To] = s
					stack = append(stack, h.To)
				}
			}
		}
	}
	return a, nil
}

// shardOf hashes a component representative to a shard (FNV-1a over the
// little-endian node ID, mod n) — deterministic across runs and
// platforms.
func shardOf(rep graph.NodeID, n int) int {
	h := fnv.New32a()
	var b [4]byte
	b[0] = byte(rep)
	b[1] = byte(rep >> 8)
	b[2] = byte(rep >> 16)
	b[3] = byte(rep >> 24)
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// Owned returns the ownership mask of one shard.
func (a *Assignment) Owned(s int) []bool {
	owned := make([]bool, len(a.Shard))
	for u, sh := range a.Shard {
		owned[u] = sh == s
	}
	return owned
}

// Build assembles the in-memory queryable state of shard s: a graph with
// adjacency restricted to owned nodes (full node arrays otherwise) and an
// index whose posting lists keep owned nodes only. The returned graph and
// index share the source's node-indexed arrays and dictionaries.
func Build(g *graph.Graph, ix *index.Index, a *Assignment, s int) (*graph.Graph, *index.Index, *store.ShardMeta, error) {
	if s < 0 || s >= a.NumShards {
		return nil, nil, nil, fmt.Errorf("shard: index %d outside [0,%d)", s, a.NumShards)
	}
	owned := a.Owned(s)
	gs := g.Sections()
	n := g.NumNodes()

	offsets := make([]int32, n+1)
	ownedNodes, ownedHalves := 0, 0
	for u := 0; u < n; u++ {
		if owned[u] {
			ownedNodes++
			ownedHalves += g.Degree(graph.NodeID(u))
		}
	}
	halves := make([]graph.Half, 0, ownedHalves)
	numOrig := 0
	for u := 0; u < n; u++ {
		offsets[u] = int32(len(halves))
		if !owned[u] {
			continue
		}
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			halves = append(halves, h)
			if h.Forward {
				numOrig++
			}
		}
	}
	offsets[n] = int32(len(halves))
	// Component closure means both halves of every owned edge land here,
	// so the graph invariant numOrig*2 == len(halves) holds per shard.
	sg, err := graph.FromSections(graph.Sections{
		Offsets:      offsets,
		Halves:       halves,
		NodeTable:    gs.NodeTable,
		Prestige:     gs.Prestige,
		Tables:       gs.Tables,
		NumOrigEdges: numOrig,
		MaxPrestige:  gs.MaxPrestige,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("shard %d: %w", s, err)
	}

	flat, err := ix.Flatten()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("shard %d: %w", s, err)
	}
	// Dictionaries are kept whole (terms with no owned matches get empty
	// posting lists) so the strictly-ascending dictionary invariant and
	// term numbering survive filtering unchanged.
	sf := &index.Flat{
		TermOffsets: flat.TermOffsets,
		TermBytes:   flat.TermBytes,
		RelOffsets:  flat.RelOffsets,
		RelBytes:    flat.RelBytes,
	}
	sf.PostOffsets, sf.Postings = filterPostings(flat.PostOffsets, flat.Postings, owned)
	sf.RelPostOffsets, sf.RelPostings = filterPostings(flat.RelPostOffsets, flat.RelPostings, owned)
	if err := sf.Validate(n); err != nil {
		return nil, nil, nil, fmt.Errorf("shard %d: %w", s, err)
	}

	meta := &store.ShardMeta{
		Shard:           uint32(s),
		NumShards:       uint32(a.NumShards),
		OwnedNodes:      uint64(ownedNodes),
		OwnedComponents: uint64(a.ComponentsPerShard[s]),
		DuplicatedEdges: 0, // component closure: no edge crosses shards
	}
	return sg, index.FromFlat(sf), meta, nil
}

// filterPostings keeps owned nodes in every posting list, preserving the
// strictly-ascending order of the source lists.
func filterPostings(postOff []uint32, postings []graph.NodeID, owned []bool) ([]uint32, []graph.NodeID) {
	out := make([]uint32, 1, len(postOff))
	kept := make([]graph.NodeID, 0, len(postings))
	for i := 0; i+1 < len(postOff); i++ {
		for _, u := range postings[postOff[i]:postOff[i+1]] {
			if owned[u] {
				kept = append(kept, u)
			}
		}
		out = append(out, uint32(len(kept)))
	}
	return out, kept
}

// FilePath names shard s of n for a base snapshot path:
// "<base>.shard<s>of<n>" (e.g. dblp.snap.shard0of3).
func FilePath(base string, s, n int) string {
	return fmt.Sprintf("%s.shard%dof%d", base, s, n)
}

// Stats summarizes one written shard file.
type Stats struct {
	Shard      int
	Path       string
	Nodes      int
	Edges      int
	Components int
	Bytes      int64
}

// WriteFiles partitions the database into n shards and writes
// FilePath(base, s, n) for every shard atomically. Mapping and edgeTypes
// are carried whole into every shard (they are node-global metadata).
func WriteFiles(base string, n int, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes) ([]Stats, error) {
	a, err := Partition(g, n)
	if err != nil {
		return nil, err
	}
	stats := make([]Stats, n)
	for s := 0; s < n; s++ {
		sg, six, meta, err := Build(g, ix, a, s)
		if err != nil {
			return nil, err
		}
		path := FilePath(base, s, n)
		bytes, err := store.WriteShardedFile(path, sg, six, mapping, edgeTypes, meta)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		stats[s] = Stats{
			Shard:      s,
			Path:       path,
			Nodes:      int(meta.OwnedNodes),
			Edges:      sg.NumEdges(),
			Components: int(meta.OwnedComponents),
			Bytes:      bytes,
		}
	}
	return stats, nil
}
