package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of a built Graph. The format is a simple
// little-endian dump guarded by a magic header and version so that cached
// dataset graphs (cmd/datagen) can be reloaded without rebuilding.
//
// Layout:
//
//	magic "BNK2" | version u32 | numNodes u64 | numHalves u64 | numOrigEdges u64
//	offsets  []i32
//	halves   []{to i32, wout f64, win f64, type u16, forward u8}
//	nodeTable []i32
//	prestige []f64
//	numTables u32 | tables []{len u32, bytes}

const (
	magic   = "BNK2"
	version = uint32(1)
)

// WriteTo serializes the graph. It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	hdr := []uint64{uint64(version), uint64(g.NumNodes()), uint64(len(g.halves)), uint64(g.numOrigEdges)}
	if err := binary.Write(cw, binary.LittleEndian, uint32(hdr[0])); err != nil {
		return cw.n, err
	}
	for _, v := range hdr[1:] {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, g.offsets); err != nil {
		return cw.n, err
	}
	for _, h := range g.halves {
		if err := writeHalf(cw, h); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, g.nodeTable); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.prestige); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(g.tables))); err != nil {
		return cw.n, err
	}
	for _, t := range g.tables {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(t)); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a graph written by WriteTo. It implements
// io.ReaderFrom semantics via the Read function below; use Read.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)

	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	var numNodes, numHalves, numOrig uint64
	for _, p := range []*uint64{&numNodes, &numHalves, &numOrig} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxReasonable = 1 << 33
	if numNodes > maxReasonable || numHalves > maxReasonable || numOrig > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes nodes=%d halves=%d orig=%d", numNodes, numHalves, numOrig)
	}
	// Every original edge contributes exactly two halves.
	if numOrig*2 != numHalves {
		return nil, fmt.Errorf("graph: inconsistent edge counts halves=%d orig=%d", numHalves, numOrig)
	}

	// All slices are read in bounded chunks (growing with the data actually
	// present) so that a forged header cannot force a huge upfront
	// allocation from a tiny input.
	g := &Graph{numOrigEdges: int(numOrig)}
	var err error
	if g.offsets, err = readSlice[int32](br, numNodes+1); err != nil {
		return nil, err
	}
	g.halves = make([]Half, 0, min(numHalves, sliceChunk))
	for i := uint64(0); i < numHalves; i++ {
		h, err := readHalf(br)
		if err != nil {
			return nil, err
		}
		g.halves = append(g.halves, h)
	}
	if g.nodeTable, err = readSlice[int32](br, numNodes); err != nil {
		return nil, err
	}
	if g.prestige, err = readSlice[float64](br, numNodes); err != nil {
		return nil, err
	}
	for _, v := range g.prestige {
		if v > g.maxPrestige {
			g.maxPrestige = v
		}
	}
	var numTables uint32
	if err := binary.Read(br, binary.LittleEndian, &numTables); err != nil {
		return nil, err
	}
	if numTables > 1<<20 {
		return nil, fmt.Errorf("graph: implausible table count %d", numTables)
	}
	g.tables = make([]string, numTables)
	for i := range g.tables {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("graph: implausible table name length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		g.tables[i] = string(buf)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) validate() error {
	n := int32(g.NumNodes())
	if g.offsets[0] != 0 || int(g.offsets[n]) != len(g.halves) {
		return fmt.Errorf("graph: corrupt offsets")
	}
	for i := int32(0); i < n; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return fmt.Errorf("graph: decreasing offsets at node %d", i)
		}
		if g.nodeTable[i] < 0 || int(g.nodeTable[i]) >= len(g.tables) {
			return fmt.Errorf("graph: node %d references unknown table %d", i, g.nodeTable[i])
		}
	}
	for i, h := range g.halves {
		if h.To < 0 || h.To >= NodeID(n) {
			return fmt.Errorf("graph: half %d references node %d outside [0,%d)", i, h.To, n)
		}
	}
	return nil
}

// sliceChunk bounds how much a slice read grows per I/O step.
const sliceChunk = 1 << 16

// readSlice reads n fixed-size values, growing the result with the data
// actually present and decoding straight into the grown tail.
func readSlice[T int32 | float64](r io.Reader, n uint64) ([]T, error) {
	out := make([]T, 0, min(n, sliceChunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, sliceChunk)
		off := len(out)
		out = append(out, make([]T, c)...)
		if err := binary.Read(r, binary.LittleEndian, out[off:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return out, nil
}

func writeHalf(w io.Writer, h Half) error {
	var buf [4 + 8 + 8 + 2 + 1]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(h.To))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(h.WOut))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(h.WIn))
	binary.LittleEndian.PutUint16(buf[20:], uint16(h.Type))
	if h.Forward {
		buf[22] = 1
	}
	_, err := w.Write(buf[:])
	return err
}

func readHalf(r io.Reader) (Half, error) {
	var buf [4 + 8 + 8 + 2 + 1]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Half{}, err
	}
	return Half{
		To:      NodeID(int32(binary.LittleEndian.Uint32(buf[0:]))),
		WOut:    math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		WIn:     math.Float64frombits(binary.LittleEndian.Uint64(buf[12:])),
		Type:    EdgeType(binary.LittleEndian.Uint16(buf[20:])),
		Forward: buf[22] == 1,
	}, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
