package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary serialization of a built Graph. The format is a simple
// little-endian dump guarded by a magic header, version and CRC32-C
// trailer so that cached dataset graphs (cmd/datagen -legacy-graph) can be
// reloaded without rebuilding. For the full queryable state (graph +
// inverted index, mmap-able) use internal/store instead; this format is
// kept for graph-only interchange and backward compatibility.
//
// Layout:
//
//	magic "BNK2" | version u32 | numNodes u64 | numHalves u64 | numOrigEdges u64
//	offsets  []i32
//	halves   []{to i32, wout f64, win f64, type u16, forward u8}  (23 bytes each)
//	nodeTable []i32
//	prestige []f64
//	numTables u32 | tables []{len u32, bytes}
//	crc u32  (version ≥ 2 only: CRC32-C of every preceding byte)
//
// Version 1 files (no trailer) remain readable; writes always emit the
// current version.

const (
	magic         = "BNK2"
	version       = uint32(2)
	legacyVersion = uint32(1)

	// halfRec is the packed on-disk size of one Half record.
	halfRec = 4 + 8 + 8 + 2 + 1
	// halfChunk is how many Half records are staged per bulk I/O call.
	halfChunk = 2048
)

// ioCRC is the CRC32-C table shared by the trailer writer and reader.
var ioCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the graph. It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	h := crc32.New(ioCRC)
	cw := &countWriter{w: io.MultiWriter(bw, h)}

	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	hdr := []uint64{uint64(version), uint64(g.NumNodes()), uint64(len(g.halves)), uint64(g.numOrigEdges)}
	if err := binary.Write(cw, binary.LittleEndian, uint32(hdr[0])); err != nil {
		return cw.n, err
	}
	for _, v := range hdr[1:] {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, g.offsets); err != nil {
		return cw.n, err
	}
	if err := writeHalves(cw, g.halves); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.nodeTable); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.prestige); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(g.tables))); err != nil {
		return cw.n, err
	}
	for _, t := range g.tables {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(t)); err != nil {
			return cw.n, err
		}
	}
	// Trailer: checksum of everything above, written outside the hash tee.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes a graph written by WriteTo, verifying the CRC trailer
// for current-version files (legacy version-1 files have none).
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	h := crc32.New(ioCRC)
	// Everything before the trailer streams through the hash; the trailer
	// itself is read from br directly so its bytes stay out of the sum.
	tr := io.TeeReader(br, h)

	var m [4]byte
	if _, err := io.ReadFull(tr, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m)
	}
	var ver uint32
	if err := binary.Read(tr, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version && ver != legacyVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	var numNodes, numHalves, numOrig uint64
	for _, p := range []*uint64{&numNodes, &numHalves, &numOrig} {
		if err := binary.Read(tr, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxReasonable = 1 << 33
	if numNodes > maxReasonable || numHalves > maxReasonable || numOrig > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes nodes=%d halves=%d orig=%d", numNodes, numHalves, numOrig)
	}
	// Every original edge contributes exactly two halves.
	if numOrig*2 != numHalves {
		return nil, fmt.Errorf("graph: inconsistent edge counts halves=%d orig=%d", numHalves, numOrig)
	}

	// All slices are read in bounded chunks (growing with the data actually
	// present) so that a forged header cannot force a huge upfront
	// allocation from a tiny input.
	g := &Graph{numOrigEdges: int(numOrig)}
	var err error
	if g.offsets, err = readSlice[int32](tr, numNodes+1); err != nil {
		return nil, err
	}
	if g.halves, err = readHalves(tr, numHalves); err != nil {
		return nil, err
	}
	if g.nodeTable, err = readSlice[int32](tr, numNodes); err != nil {
		return nil, err
	}
	if g.prestige, err = readSlice[float64](tr, numNodes); err != nil {
		return nil, err
	}
	for _, v := range g.prestige {
		if v > g.maxPrestige {
			g.maxPrestige = v
		}
	}
	var numTables uint32
	if err := binary.Read(tr, binary.LittleEndian, &numTables); err != nil {
		return nil, err
	}
	if numTables > 1<<20 {
		return nil, fmt.Errorf("graph: implausible table count %d", numTables)
	}
	g.tables = make([]string, numTables)
	for i := range g.tables {
		var n uint32
		if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("graph: implausible table name length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, err
		}
		g.tables[i] = string(buf)
	}
	if ver >= 2 {
		// The trailer is read from the underlying reader so its own bytes
		// never enter the hash.
		sum := h.Sum32()
		var trailer [4]byte
		if _, err := io.ReadFull(br, trailer[:]); err != nil {
			return nil, fmt.Errorf("graph: reading checksum trailer: %w", err)
		}
		if want := binary.LittleEndian.Uint32(trailer[:]); sum != want {
			return nil, fmt.Errorf("graph: checksum mismatch: %08x != %08x", sum, want)
		}
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) validate() error {
	n := int32(g.NumNodes())
	if g.offsets[0] != 0 || int(g.offsets[n]) != len(g.halves) {
		return fmt.Errorf("graph: corrupt offsets")
	}
	for i := int32(0); i < n; i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return fmt.Errorf("graph: decreasing offsets at node %d", i)
		}
		if g.nodeTable[i] < 0 || int(g.nodeTable[i]) >= len(g.tables) {
			return fmt.Errorf("graph: node %d references unknown table %d", i, g.nodeTable[i])
		}
	}
	for i, h := range g.halves {
		if h.To < 0 || h.To >= NodeID(n) {
			return fmt.Errorf("graph: half %d references node %d outside [0,%d)", i, h.To, n)
		}
	}
	return nil
}

// sliceChunk bounds how much a slice read grows per I/O step.
const sliceChunk = 1 << 16

// readSlice reads n fixed-size values, growing the result with the data
// actually present and decoding straight into the grown tail.
func readSlice[T int32 | float64](r io.Reader, n uint64) ([]T, error) {
	out := make([]T, 0, min(n, sliceChunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, sliceChunk)
		off := len(out)
		out = append(out, make([]T, c)...)
		if err := binary.Read(r, binary.LittleEndian, out[off:]); err != nil {
			return nil, err
		}
		remaining -= c
	}
	return out, nil
}

// writeHalves bulk-encodes the half array through a fixed staging buffer,
// one Write per halfChunk records instead of one per record.
func writeHalves(w io.Writer, halves []Half) error {
	var buf [halfChunk * halfRec]byte
	for len(halves) > 0 {
		n := min(len(halves), halfChunk)
		for i := 0; i < n; i++ {
			encodeHalfRec(buf[i*halfRec:], halves[i])
		}
		if _, err := w.Write(buf[:n*halfRec]); err != nil {
			return err
		}
		halves = halves[n:]
	}
	return nil
}

// readHalves bulk-decodes n records, growing the result with the data
// actually present (a forged count cannot force a huge allocation).
func readHalves(r io.Reader, n uint64) ([]Half, error) {
	var buf [halfChunk * halfRec]byte
	out := make([]Half, 0, min(n, halfChunk))
	for remaining := n; remaining > 0; {
		c := int(min(remaining, halfChunk))
		if _, err := io.ReadFull(r, buf[:c*halfRec]); err != nil {
			return nil, err
		}
		off := len(out)
		out = append(out, make([]Half, c)...)
		for i := 0; i < c; i++ {
			out[off+i] = decodeHalfRec(buf[i*halfRec:])
		}
		remaining -= uint64(c)
	}
	return out, nil
}

func encodeHalfRec(buf []byte, h Half) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(h.To))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(h.WOut))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(h.WIn))
	binary.LittleEndian.PutUint16(buf[20:], uint16(h.Type))
	buf[22] = 0
	if h.Forward {
		buf[22] = 1
	}
}

func decodeHalfRec(buf []byte) Half {
	return Half{
		To:      NodeID(int32(binary.LittleEndian.Uint32(buf[0:]))),
		WOut:    math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		WIn:     math.Float64frombits(binary.LittleEndian.Uint64(buf[12:])),
		Type:    EdgeType(binary.LittleEndian.Uint16(buf[20:])),
		Forward: buf[22] == 1,
	}
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
