package graph

import (
	"bytes"
	"testing"
)

// serializedSeed produces the bytes of a small valid graph for the Read
// fuzzer's corpus.
func serializedSeed(tb testing.TB) []byte {
	tb.Helper()
	b := NewBuilder()
	b.AddNodes("author", 2)
	b.AddNodes("paper", 2)
	if err := b.AddEdge(0, 2, 1, 0); err != nil {
		tb.Fatal(err)
	}
	if err := b.AddEdge(1, 3, 2, 1); err != nil {
		tb.Fatal(err)
	}
	g := b.Build()
	if err := g.SetPrestige([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRead feeds arbitrary bytes to the binary deserializer: it must never
// panic or over-allocate, and anything it accepts must re-serialize to a
// stable fixed point (read → write → read → write gives identical bytes).
func FuzzRead(f *testing.F) {
	valid := serializedSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	corrupt := bytes.Clone(valid)
	corrupt[10] ^= 0xff // mangled node count
	f.Add(corrupt)
	f.Add([]byte("BNK2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the job
		}
		var buf1 bytes.Buffer
		if _, err := g.WriteTo(&buf1); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := Read(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of accepted graph failed: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := g2.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatal("serialization is not a fixed point after one round trip")
		}
	})
}

// FuzzBuildRoundTrip builds a graph from fuzz-derived nodes/edges and
// checks the write→read round trip preserves every observable property.
func FuzzBuildRoundTrip(f *testing.F) {
	f.Add(uint8(4), []byte{0, 2, 1, 3, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(9), []byte{0, 1, 1, 2, 2, 0, 3, 4, 5, 6, 7, 8, 0, 8})
	f.Fuzz(func(t *testing.T, rawN uint8, rawEdges []byte) {
		n := 1 + int(rawN)%24
		b := NewBuilder()
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				b.AddNode("even")
			} else {
				b.AddNode("odd")
			}
		}
		for i := 0; i+1 < len(rawEdges) && i < 64; i += 2 {
			u := NodeID(int(rawEdges[i]) % n)
			v := NodeID(int(rawEdges[i+1]) % n)
			if u == v {
				continue
			}
			w := 1 + float64(rawEdges[i]%7)/4
			if err := b.AddEdge(u, v, w, EdgeType(rawEdges[i+1]%3)); err != nil {
				t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, w, err)
			}
		}
		g := b.Build()
		p := make([]float64, n)
		for i := range p {
			p[i] = float64(i+1) / float64(n)
		}
		if err := g.SetPrestige(p); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip Read failed: %v", err)
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			t.Fatalf("sizes changed: %d/%d vs %d/%d", got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		if got.MaxPrestige() != g.MaxPrestige() {
			t.Fatalf("max prestige changed: %v vs %v", got.MaxPrestige(), g.MaxPrestige())
		}
		for u := 0; u < n; u++ {
			id := NodeID(u)
			if got.Table(id) != g.Table(id) {
				t.Fatalf("node %d table changed", u)
			}
			if got.Prestige(id) != g.Prestige(id) {
				t.Fatalf("node %d prestige changed", u)
			}
			a, bn := g.Neighbors(id), got.Neighbors(id)
			if len(a) != len(bn) {
				t.Fatalf("node %d degree changed: %d vs %d", u, len(a), len(bn))
			}
			for i := range a {
				if a[i] != bn[i] {
					t.Fatalf("node %d half %d changed: %+v vs %+v", u, i, a[i], bn[i])
				}
			}
		}
	})
}
