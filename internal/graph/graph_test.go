package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	// paper(0), paper(1), author(2), conf(3)
	p0 := b.AddNode("paper")
	p1 := b.AddNode("paper")
	a := b.AddNode("author")
	c := b.AddNode("conference")
	// writes-style edges: author side modeled as paper→author? Keep it
	// simple: p0→a, p1→a (papers reference author), p0→c, p1→c.
	for _, e := range [][2]NodeID{{p0, a}, {p1, a}, {p0, c}, {p1, c}} {
		if err := b.AddEdge(e[0], e[1], 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildSmall(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Table(0) != "paper" || g.Table(2) != "author" || g.Table(3) != "conference" {
		t.Fatalf("table names wrong: %q %q %q", g.Table(0), g.Table(2), g.Table(3))
	}
	if g.Degree(0) != 2 || g.Degree(2) != 2 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(2), g.Degree(3))
	}
}

func TestBackwardWeightFormula(t *testing.T) {
	g := buildSmall(t)
	// Node 2 (author) has indegree 2, node 3 (conference) indegree 2.
	// Forward edge p0→a has weight 1; backward edge a→p0 must weigh
	// 1·log2(1+2) = log2(3).
	want := math.Log2(3)
	var found bool
	for _, h := range g.Neighbors(0) {
		if h.To == 2 {
			found = true
			if h.WOut != 1 {
				t.Fatalf("forward weight = %v, want 1", h.WOut)
			}
			if math.Abs(h.WIn-want) > 1e-12 {
				t.Fatalf("backward weight = %v, want %v", h.WIn, want)
			}
			if !h.Forward {
				t.Fatal("edge p0→a should be Forward at p0's adjacency")
			}
		}
	}
	if !found {
		t.Fatal("edge p0→a not found in adjacency of p0")
	}
	// The mirrored half at the author node must flip the labels.
	for _, h := range g.Neighbors(2) {
		if h.To == 0 {
			if math.Abs(h.WOut-want) > 1e-12 || h.WIn != 1 {
				t.Fatalf("mirror half = (%v,%v), want (%v,1)", h.WOut, h.WIn, want)
			}
			if h.Forward {
				t.Fatal("edge a→p0 is a backward edge and must not be Forward")
			}
		}
	}
}

func TestHighFaninBackwardWeight(t *testing.T) {
	// A hub with indegree 1000 must have expensive backward edges:
	// log2(1001) ≈ 9.97.
	b := NewBuilder()
	hub := b.AddNode("conference")
	first := b.AddNodes("paper", 1000)
	for i := 0; i < 1000; i++ {
		if err := b.AddEdge(first+NodeID(i), hub, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	h := g.Neighbors(first)[0]
	want := math.Log2(1001)
	if math.Abs(h.WIn-want) > 1e-9 {
		t.Fatalf("hub backward weight = %v, want %v", h.WIn, want)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("t")
	v := b.AddNode("t")
	cases := []struct {
		name    string
		u, v    NodeID
		w       float64
		wantErr bool
	}{
		{"ok", u, v, 1, false},
		{"self-loop", u, u, 1, true},
		{"bad-from", -1, v, 1, true},
		{"bad-to", u, 99, 1, true},
		{"zero-weight", u, v, 0, true},
		{"neg-weight", u, v, -2, true},
		{"nan-weight", u, v, math.NaN(), true},
		{"inf-weight", u, v, math.Inf(1), true},
	}
	for _, c := range cases {
		err := b.AddEdge(c.u, c.v, c.w, 0)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: AddEdge err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

func TestSetPrestige(t *testing.T) {
	g := buildSmall(t)
	if err := g.SetPrestige([]float64{1, 2}); err == nil {
		t.Fatal("SetPrestige with wrong length should fail")
	}
	if err := g.SetPrestige([]float64{1, 2, 3, 0.5}); err != nil {
		t.Fatal(err)
	}
	if g.Prestige(1) != 2 {
		t.Fatalf("Prestige(1) = %v, want 2", g.Prestige(1))
	}
	if g.MaxPrestige() != 3 {
		t.Fatalf("MaxPrestige = %v, want 3", g.MaxPrestige())
	}
}

func TestParallelEdgesKept(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("a")
	v := b.AddNode("b")
	if err := b.AddEdge(u, v, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(u, v, 2, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.Degree(u) != 2 || g.Degree(v) != 2 {
		t.Fatalf("parallel edges collapsed: deg(u)=%d deg(v)=%d", g.Degree(u), g.Degree(v))
	}
}

// Property: for random graphs, every original edge appears exactly once as
// a Forward half at its source and once as a non-Forward half at its
// target, with the documented backward weight.
func TestQuickAdjacencyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder()
		b.AddNodes("t", n)
		type edge struct {
			u, v NodeID
			w    float64
		}
		var edges []edge
		indeg := make([]int, n)
		m := rng.Intn(80)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			w := 0.5 + rng.Float64()*4
			if err := b.AddEdge(u, v, w, 0); err != nil {
				return false
			}
			edges = append(edges, edge{u, v, w})
			indeg[v]++
		}
		g := b.Build()
		if g.NumEdges() != len(edges) {
			return false
		}
		// Count halves.
		total := 0
		for u := 0; u < n; u++ {
			total += g.Degree(NodeID(u))
		}
		if total != 2*len(edges) {
			return false
		}
		// Each edge must be present with correct weights.
		for _, e := range edges {
			wantBack := e.w * math.Log2(1+float64(indeg[e.v]))
			okFwd, okBack := false, false
			for _, h := range g.Neighbors(e.u) {
				if h.To == e.v && h.Forward && h.WOut == e.w && math.Abs(h.WIn-wantBack) < 1e-9 {
					okFwd = true
					break
				}
			}
			for _, h := range g.Neighbors(e.v) {
				if h.To == e.u && !h.Forward && math.Abs(h.WOut-wantBack) < 1e-9 && h.WIn == e.w {
					okBack = true
					break
				}
			}
			if !okFwd || !okBack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 100_000
	const m = 400_000
	us := make([]NodeID, m)
	vs := make([]NodeID, m)
	for i := 0; i < m; i++ {
		us[i] = NodeID(rng.Intn(n))
		vs[i] = NodeID(rng.Intn(n))
		if us[i] == vs[i] {
			vs[i] = (vs[i] + 1) % n
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder()
		bl.AddNodes("t", n)
		for j := 0; j < m; j++ {
			_ = bl.AddEdge(us[j], vs[j], 1, 0)
		}
		g := bl.Build()
		if g.NumNodes() != n {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	bl := NewBuilder()
	bl.AddNodes("t", 10_000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		u := NodeID(rng.Intn(10_000))
		v := NodeID(rng.Intn(10_000))
		if u != v {
			_ = bl.AddEdge(u, v, 1, 0)
		}
	}
	g := bl.Build()
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for _, h := range g.Neighbors(NodeID(i % 10_000)) {
			sum += h.WOut
		}
	}
	_ = sum
}
