package graph

// View is the read-only graph abstraction the search algorithms run
// over. *Graph satisfies it directly; internal/delta layers a mutation
// overlay behind the same five methods so frontier expansion, prestige
// recomputation and answer construction see one logical graph without
// knowing whether a node's adjacency lives in the mmap'd base snapshot
// or in an in-memory delta.
//
// Implementations must be safe for concurrent readers and must keep the
// slice returned by Neighbors immutable for the lifetime of the view
// (callers iterate it without copying, exactly as they do over a
// *Graph's backing array).
type View interface {
	// NumNodes reports the number of nodes; valid NodeIDs are
	// [0, NumNodes).
	NumNodes() int
	// Neighbors returns the combined-graph half-edge adjacency of u in
	// its canonical per-node order. The slice is read-only.
	Neighbors(u NodeID) []Half
	// Degree returns len(Neighbors(u)) without materializing the slice.
	Degree(u NodeID) int
	// Prestige returns the node-prestige score of u.
	Prestige(u NodeID) float64
	// MaxPrestige returns the maximum prestige over all nodes.
	MaxPrestige() float64
}

// *Graph is the canonical View implementation.
var _ View = (*Graph)(nil)
