package graph

import "fmt"

// Sections is the storage abstraction between a Graph and its backing
// memory. Each field is one contiguous fixed-layout array; the slices may
// be ordinary heap allocations (the Build path) or zero-copy views over a
// memory-mapped snapshot section (the internal/store path). A Graph built
// from mapped Sections never copies the arrays into the Go heap — readers
// fault pages in on demand, so datasets larger than RAM stay queryable.
//
// Whoever produces the slices owns their lifetime: a store.Snapshot must
// stay open for as long as a Graph built from its sections is in use.
type Sections struct {
	// Offsets has NumNodes+1 entries; the adjacency of node i is
	// Halves[Offsets[i]:Offsets[i+1]].
	Offsets []int32
	// Halves is the combined-graph half-edge array.
	Halves []Half
	// NodeTable maps each node to an index into Tables.
	NodeTable []int32
	// Prestige holds one precomputed prestige score per node.
	Prestige []float64
	// Tables lists relation names; NodeTable values index into it.
	Tables []string
	// NumOrigEdges is the original (pre-backward) directed edge count.
	NumOrigEdges int
	// MaxPrestige caches max(Prestige); 0 means "recompute from Prestige".
	MaxPrestige float64
}

// Sections exports the graph's backing arrays for serialization. The
// returned slices alias the graph and must be treated as read-only.
func (g *Graph) Sections() Sections {
	return Sections{
		Offsets:      g.offsets,
		Halves:       g.halves,
		NodeTable:    g.nodeTable,
		Prestige:     g.prestige,
		Tables:       g.tables,
		NumOrigEdges: g.numOrigEdges,
		MaxPrestige:  g.maxPrestige,
	}
}

// FromSections assembles a Graph directly over the given backing arrays
// (no copies) after validating their structural invariants: offset
// monotonicity and bounds, half-edge targets, and node→table references.
// Validation reads every array once — on mapped sections that is a single
// sequential page-in, the only full pass an open performs.
func FromSections(s Sections) (*Graph, error) {
	if len(s.Offsets) == 0 {
		return nil, fmt.Errorf("graph: sections missing offsets")
	}
	n := len(s.Offsets) - 1
	if len(s.NodeTable) != n {
		return nil, fmt.Errorf("graph: node table has %d entries for %d nodes", len(s.NodeTable), n)
	}
	if len(s.Prestige) != n {
		return nil, fmt.Errorf("graph: prestige has %d entries for %d nodes", len(s.Prestige), n)
	}
	if s.NumOrigEdges*2 != len(s.Halves) {
		return nil, fmt.Errorf("graph: %d original edges inconsistent with %d halves", s.NumOrigEdges, len(s.Halves))
	}
	g := &Graph{
		offsets:      s.Offsets,
		halves:       s.Halves,
		nodeTable:    s.NodeTable,
		prestige:     s.Prestige,
		tables:       s.Tables,
		numOrigEdges: s.NumOrigEdges,
		maxPrestige:  s.MaxPrestige,
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	if g.maxPrestige == 0 {
		for _, v := range g.prestige {
			if v > g.maxPrestige {
				g.maxPrestige = v
			}
		}
	}
	return g, nil
}
