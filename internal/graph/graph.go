// Package graph implements the weighted directed data-graph model of
// BANKS-II (§2.1).
//
// The database is modeled as a directed graph whose nodes are tuples (or
// XML elements, web pages, ...) and whose edges are relationships such as
// foreign-key references. For every original edge u→v with weight w_uv the
// model adds a backward edge v→u whose weight grows with the indegree of v
// (w_vu = w_uv·log2(1+indegree(v))), discouraging meaningless shortcuts
// through hub nodes (§2.1, §2.3).
//
// Search runs over the combined graph G′ that contains both edge families.
// Because the backward edge of u→v connects the same node pair in the
// opposite direction, u and v are mutually adjacent in G′; the package
// therefore stores a single compact adjacency array per node where each
// entry carries both directed weights (self→neighbour and neighbour→self).
// This keeps the in-memory footprint close to the paper's 16·|V|+8·|E|
// bytes figure while serving both the incoming (backward) and outgoing
// (forward) iterators from one array scan.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node. IDs are dense: 0 ≤ id < Graph.NumNodes().
type NodeID int32

// InvalidNode is a sentinel for "no node".
const InvalidNode NodeID = -1

// EdgeType identifies the relationship type of an edge (e.g. which foreign
// key induced it). Type 0 is the generic default.
type EdgeType uint16

// Half describes, from the perspective of one endpoint u, the half-edge to
// a neighbour v in the combined graph G′.
type Half struct {
	// To is the neighbour node v.
	To NodeID
	// WOut is the weight of the combined edge u→v. If the original graph
	// had edge u→v this is its forward weight; otherwise it is the derived
	// backward weight of the original edge v→u.
	WOut float64
	// WIn is the weight of the combined edge v→u (symmetric companion of
	// WOut).
	WIn float64
	// Type is the relationship type of the underlying original edge.
	Type EdgeType
	// Forward reports whether the combined edge u→v is an original
	// (forward) edge; when false, u→v is a derived backward edge and v→u
	// is the original edge.
	Forward bool
}

// Graph is an immutable weighted directed data graph in combined (G′)
// form. Build one with a Builder.
type Graph struct {
	offsets []int32 // len = n+1; adjacency of node i is halves[offsets[i]:offsets[i+1]]
	halves  []Half

	nodeTable []int32   // table index per node (relation the tuple belongs to)
	prestige  []float64 // node prestige; filled by SetPrestige
	tables    []string  // table names; nodeTable values index into this

	numOrigEdges int
	maxPrestige  float64
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of original directed edges (before backward
// edges are added).
func (g *Graph) NumEdges() int { return g.numOrigEdges }

// Neighbors returns the adjacency slice of u in the combined graph. The
// returned slice is shared with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []Half {
	return g.halves[g.offsets[u]:g.offsets[u+1]]
}

// Degree returns the number of combined-graph neighbours of u (counting
// parallel edges separately).
func (g *Graph) Degree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Table returns the name of the relation node u belongs to.
func (g *Graph) Table(u NodeID) string { return g.tables[g.nodeTable[u]] }

// TableIndex returns the dense index of node u's relation.
func (g *Graph) TableIndex(u NodeID) int { return int(g.nodeTable[u]) }

// Tables returns the relation names known to the graph; TableIndex values
// index into this slice. The returned slice must not be modified.
func (g *Graph) Tables() []string { return g.tables }

// Prestige returns the prestige score of node u (0 until SetPrestige is
// called).
func (g *Graph) Prestige(u NodeID) float64 { return g.prestige[u] }

// MaxPrestige returns the largest prestige over all nodes. It is used for
// the answer-score upper bound of §4.5.
func (g *Graph) MaxPrestige() float64 { return g.maxPrestige }

// SetPrestige installs node prestige scores (one per node). It is typically
// called with the output of the prestige package.
func (g *Graph) SetPrestige(p []float64) error {
	if len(p) != g.NumNodes() {
		return fmt.Errorf("graph: prestige length %d does not match %d nodes", len(p), g.NumNodes())
	}
	g.prestige = p
	g.maxPrestige = 0
	for _, v := range p {
		if v > g.maxPrestige {
			g.maxPrestige = v
		}
	}
	return nil
}

// Builder accumulates nodes and original directed edges and produces an
// immutable Graph with derived backward-edge weights.
type Builder struct {
	tables    []string
	tableIdx  map[string]int
	nodeTable []int32

	from, to []NodeID
	weight   []float64
	etype    []EdgeType
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{tableIdx: make(map[string]int)}
}

// AddNode appends a node belonging to the named relation and returns its
// NodeID.
func (b *Builder) AddNode(table string) NodeID {
	ti, ok := b.tableIdx[table]
	if !ok {
		ti = len(b.tables)
		b.tables = append(b.tables, table)
		b.tableIdx[table] = ti
	}
	id := NodeID(len(b.nodeTable))
	b.nodeTable = append(b.nodeTable, int32(ti))
	return id
}

// AddNodes appends n nodes of the named relation and returns the first
// assigned NodeID (the rest are consecutive).
func (b *Builder) AddNodes(table string, n int) NodeID {
	first := b.AddNode(table)
	for i := 1; i < n; i++ {
		b.AddNode(table)
	}
	return first
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeTable) }

// AddEdge appends an original directed edge u→v with the given forward
// weight (the paper's schema-defined weight; 1 by default) and type.
func (b *Builder) AddEdge(u, v NodeID, weight float64, etype EdgeType) error {
	n := NodeID(len(b.nodeTable))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) references node outside [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d not allowed", u)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, weight)
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	b.weight = append(b.weight, weight)
	b.etype = append(b.etype, etype)
	return nil
}

// Build assembles the immutable combined graph. The Builder can be reused
// afterwards, but further additions do not affect already-built graphs.
func (b *Builder) Build() *Graph {
	n := len(b.nodeTable)
	m := len(b.from)

	indeg := make([]int32, n)
	for _, v := range b.to {
		indeg[v]++
	}

	// Each original edge u→v contributes one half-edge at u (toward v) and
	// one at v (toward u).
	deg := make([]int32, n+1)
	for i := 0; i < m; i++ {
		deg[b.from[i]+1]++
		deg[b.to[i]+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}

	halves := make([]Half, offsets[n])
	next := make([]int32, n)
	copy(next, offsets[:n])
	for i := 0; i < m; i++ {
		u, v, w := b.from[i], b.to[i], b.weight[i]
		// Backward edge v→u of original u→v (§2.3): w_vu = w_uv·log2(1+indeg(v)).
		back := w * math.Log2(1+float64(indeg[v]))
		if back < w {
			// indeg(v) == 0 cannot happen here (v has edge u→v), so
			// log2(1+indeg) ≥ 1; kept as a safety clamp for exotic weights.
			back = w
		}
		halves[next[u]] = Half{To: v, WOut: w, WIn: back, Type: b.etype[i], Forward: true}
		next[u]++
		halves[next[v]] = Half{To: u, WOut: back, WIn: w, Type: b.etype[i], Forward: false}
		next[v]++
	}

	tables := make([]string, len(b.tables))
	copy(tables, b.tables)
	nodeTable := make([]int32, n)
	copy(nodeTable, b.nodeTable)

	return &Graph{
		offsets:      offsets,
		halves:       halves,
		nodeTable:    nodeTable,
		prestige:     make([]float64, n),
		tables:       tables,
		numOrigEdges: m,
	}
}
