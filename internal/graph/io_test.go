package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			b.AddNode("alpha")
		} else {
			b.AddNode("beta")
		}
	}
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		_ = b.AddEdge(u, v, 0.5+rng.Float64(), EdgeType(rng.Intn(4)))
	}
	g := b.Build()
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() * 3
	}
	_ = g.SetPrestige(p)
	return g
}

func TestSerializationRoundTrip(t *testing.T) {
	g := randomGraph(42, 50, 200)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(g.offsets, g2.offsets) {
		t.Fatal("offsets differ after round trip")
	}
	if !reflect.DeepEqual(g.halves, g2.halves) {
		t.Fatal("halves differ after round trip")
	}
	if !reflect.DeepEqual(g.nodeTable, g2.nodeTable) {
		t.Fatal("nodeTable differs after round trip")
	}
	if !reflect.DeepEqual(g.prestige, g2.prestige) {
		t.Fatal("prestige differs after round trip")
	}
	if !reflect.DeepEqual(g.tables, g2.tables) {
		t.Fatal("tables differ after round trip")
	}
	if g2.MaxPrestige() != g.MaxPrestige() {
		t.Fatalf("MaxPrestige %v vs %v", g2.MaxPrestige(), g.MaxPrestige())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad-magic": []byte("NOPE0123456789"),
		"truncated": func() []byte {
			g := randomGraph(1, 10, 20)
			var buf bytes.Buffer
			if _, err := g.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()/2]
		}(),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	g := randomGraph(2, 5, 5)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // clobber version
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("Read accepted wrong version")
	}
}

// asV1 converts current-version bytes to a legacy version-1 file: same
// payload, version field 1, no CRC trailer.
func asV1(t *testing.T, data []byte) []byte {
	t.Helper()
	if len(data) < 12 {
		t.Fatal("short serialization")
	}
	v1 := bytes.Clone(data[:len(data)-4])
	v1[4] = 1
	return v1
}

// TestLegacyV1Read pins the compatibility shim: version-1 files (written
// before the CRC trailer existed) still load and decode identically.
func TestLegacyV1Read(t *testing.T) {
	g := randomGraph(7, 40, 160)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(bytes.NewReader(asV1(t, buf.Bytes())))
	if err != nil {
		t.Fatalf("legacy v1 read: %v", err)
	}
	if !reflect.DeepEqual(g.halves, g2.halves) || !reflect.DeepEqual(g.prestige, g2.prestige) {
		t.Fatal("legacy v1 decode differs from original")
	}
}

// TestCRCTrailerDetectsCorruption flips single bits across the file; the
// trailer must reject every one of them (structural validation alone
// cannot see e.g. a flipped weight mantissa).
func TestCRCTrailerDetectsCorruption(t *testing.T) {
	g := randomGraph(11, 30, 120)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for pos := 4; pos < len(data); pos += 17 {
		c := bytes.Clone(data)
		c[pos] ^= 0x20
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Fatalf("accepted corruption at byte %d", pos)
		}
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddNode("only")
	g := b.Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 1 || g2.NumEdges() != 0 {
		t.Fatalf("round trip of single-node graph: %d nodes %d edges", g2.NumNodes(), g2.NumEdges())
	}
	if g2.Table(0) != "only" {
		t.Fatalf("table = %q", g2.Table(0))
	}
}
