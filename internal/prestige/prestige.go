// Package prestige computes node-prestige scores (§2.3).
//
// BANKS-II determines prestige "using a biased version of the Pagerank
// random walk, similar to the computation of global ObjectRank, except
// that ... the probability of following an edge is inversely proportional
// to its edge weight taken from the data graph instead of the schema
// graph." The walk runs over the combined graph G′ (forward edges plus the
// derived backward edges), so hub shortcuts — whose backward edges carry
// large weights — are followed with proportionally small probability.
//
// The package also provides the cheaper indegree-based prestige of BANKS-I
// as an alternative for very large graphs.
package prestige

import (
	"errors"
	"math"

	"banks/internal/graph"
)

// Options configures the random-walk computation.
type Options struct {
	// Damping is the probability of following an edge rather than
	// teleporting. Defaults to 0.85.
	Damping float64
	// Tolerance is the L1 convergence threshold. Defaults to 1e-9.
	Tolerance float64
	// MaxIterations bounds the power iteration. Defaults to 100.
	MaxIterations int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	return o
}

// Compute runs the biased PageRank power iteration and returns one score
// per node. Scores are normalized to sum to the number of nodes, so the
// average prestige is 1 (this keeps activation seeds and tree node-scores
// on a scale independent of graph size). The paper reports prestige
// computation "takes about a minute" on 2M-node graphs and is precomputed;
// callers should compute once per dataset and attach via Graph.SetPrestige.
func Compute(g graph.View, opts Options) ([]float64, error) {
	opts = opts.withDefaults()
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, errors.New("prestige: damping must be in [0,1)")
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("prestige: empty graph")
	}

	// Precompute, per node, the sum of inverse outgoing weights in G′.
	invSum := make([]float64, n)
	for u := 0; u < n; u++ {
		s := 0.0
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			s += 1 / h.WOut
		}
		invSum[u] = s
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}

	d := opts.Damping
	base := (1 - d) / float64(n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			ru := rank[u]
			if invSum[u] == 0 {
				dangling += ru
				continue
			}
			scale := d * ru / invSum[u]
			for _, h := range g.Neighbors(graph.NodeID(u)) {
				next[h.To] += scale / h.WOut
			}
		}
		// Dangling mass and teleportation are spread uniformly.
		add := base + d*dangling/float64(n)
		diff := 0.0
		for i := range next {
			next[i] += add
			diff += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if diff < opts.Tolerance {
			break
		}
	}

	// Normalize so scores sum to n (average prestige 1).
	sum := 0.0
	for _, v := range rank {
		sum += v
	}
	if sum <= 0 {
		return nil, errors.New("prestige: ranks vanished (numerical failure)")
	}
	scale := float64(n) / sum
	for i := range rank {
		rank[i] *= scale
	}
	return rank, nil
}

// Indegree returns the BANKS-I style prestige: log2(1+indegree) over the
// original directed graph, normalized to average 1. It is a cheap
// substitute for the random-walk prestige on very large graphs.
func Indegree(g graph.View) []float64 {
	n := g.NumNodes()
	p := make([]float64, n)
	for u := 0; u < n; u++ {
		indeg := 0
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			// A half-edge with Forward=false means the original edge points
			// from h.To into u.
			if !h.Forward {
				indeg++
			}
		}
		p[u] = math.Log2(1 + float64(indeg))
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum == 0 {
		for i := range p {
			p[i] = 1
		}
		return p
	}
	scale := float64(n) / sum
	for i := range p {
		p[i] *= scale
	}
	return p
}
