package prestige

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"banks/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder()
	b.AddNodes("t", n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1, 0)
	}
	return b.Build()
}

func TestComputeSumsToN(t *testing.T) {
	g := lineGraph(10)
	p, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative prestige %v", v)
		}
		sum += v
	}
	if math.Abs(sum-10) > 1e-6 {
		t.Fatalf("prestige sum = %v, want 10", sum)
	}
}

func TestComputeEmptyGraphFails(t *testing.T) {
	b := graph.NewBuilder()
	g := b.Build()
	if _, err := Compute(g, Options{}); err == nil {
		t.Fatal("Compute on empty graph should fail")
	}
}

func TestBadDamping(t *testing.T) {
	g := lineGraph(3)
	if _, err := Compute(g, Options{Damping: 1.5}); err == nil {
		t.Fatal("Compute with damping ≥ 1 should fail")
	}
	if _, err := Compute(g, Options{Damping: -0.1}); err == nil {
		t.Fatal("Compute with negative damping should fail")
	}
}

func TestPopularNodeGetsHigherPrestige(t *testing.T) {
	// A "highly cited paper": many nodes point to node 0; node 1 is cited
	// once. Prestige(0) must exceed Prestige(1).
	b := graph.NewBuilder()
	star := b.AddNode("paper")  // 0
	other := b.AddNode("paper") // 1
	first := b.AddNodes("paper", 40)
	for i := 0; i < 40; i++ {
		_ = b.AddEdge(first+graph.NodeID(i), star, 1, 0)
	}
	_ = b.AddEdge(first, other, 1, 0)
	g := b.Build()
	p, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p[star] <= p[other] {
		t.Fatalf("prestige(star)=%v not greater than prestige(other)=%v", p[star], p[other])
	}
}

func TestEdgeWeightBiasesWalk(t *testing.T) {
	// From node 0 there are two targets: cheap (weight 1) and expensive
	// (weight 8). The walk follows edges with probability inversely
	// proportional to weight, so the cheap target accumulates more rank.
	b := graph.NewBuilder()
	src := b.AddNode("t")
	cheap := b.AddNode("t")
	dear := b.AddNode("t")
	_ = b.AddEdge(src, cheap, 1, 0)
	_ = b.AddEdge(src, dear, 8, 0)
	g := b.Build()
	p, err := Compute(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p[cheap] <= p[dear] {
		t.Fatalf("prestige(cheap)=%v not greater than prestige(dear)=%v", p[cheap], p[dear])
	}
}

func TestIndegreePrestige(t *testing.T) {
	b := graph.NewBuilder()
	hub := b.AddNode("t")
	leaf := b.AddNode("t")
	first := b.AddNodes("t", 10)
	for i := 0; i < 10; i++ {
		_ = b.AddEdge(first+graph.NodeID(i), hub, 1, 0)
	}
	_ = b.AddEdge(first, leaf, 1, 0)
	g := b.Build()
	p := Indegree(g)
	if p[hub] <= p[leaf] {
		t.Fatalf("indegree prestige hub=%v leaf=%v", p[hub], p[leaf])
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-float64(g.NumNodes())) > 1e-9 {
		t.Fatalf("indegree prestige sum = %v, want %d", sum, g.NumNodes())
	}
}

func TestIndegreeNoEdges(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNodes("t", 4)
	g := b.Build()
	p := Indegree(g)
	for _, v := range p {
		if v != 1 {
			t.Fatalf("isolated-node prestige = %v, want 1", v)
		}
	}
}

// Property: prestige is non-negative and sums to n on random graphs,
// regardless of topology (dangling nodes, hubs, cycles).
func TestQuickPrestigeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder()
		b.AddNodes("t", n)
		for i := 0; i < rng.Intn(120); i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, 0.25+rng.Float64()*4, 0)
			}
		}
		g := b.Build()
		p, err := Compute(g, Options{MaxIterations: 60})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-float64(n)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrestige10k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bl := graph.NewBuilder()
	bl.AddNodes("t", 10_000)
	for i := 0; i < 40_000; i++ {
		u := graph.NodeID(rng.Intn(10_000))
		v := graph.NodeID(rng.Intn(10_000))
		if u != v {
			_ = bl.AddEdge(u, v, 1, 0)
		}
	}
	g := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, Options{Tolerance: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
