package relational

import (
	"reflect"
	"testing"
)

// miniDBLP builds the small bibliography database used across the tests:
//
//	author:  0 "Jim Gray", 1 "Pat Selinger", 2 "Jim Smith"
//	conf:    0 "VLDB", 1 "SIGMOD"
//	paper:   0 "Transaction Recovery" (VLDB), 1 "Query Optimization" (SIGMOD),
//	         2 "Transaction Models" (VLDB)
//	writes:  (Gray,0) (Gray,2) (Selinger,1) (Smith,1)
func miniDBLP(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	author, err := db.CreateTable("author", []string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := db.CreateTable("conf", []string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := db.CreateTable("paper", []string{"title"}, []FK{{Name: "conf", RefTable: "conf"}})
	if err != nil {
		t.Fatal(err)
	}
	writes, err := db.CreateTable("writes", nil, []FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	if err != nil {
		t.Fatal(err)
	}

	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	author.Append([]string{"Jim Smith"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	conf.Append([]string{"SIGMOD"}, nil)
	paper.Append([]string{"Transaction Recovery"}, []int32{0})
	paper.Append([]string{"Query Optimization"}, []int32{1})
	paper.Append([]string{"Transaction Models"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{0, 2})
	writes.Append(nil, []int32{1, 1})
	writes.Append(nil, []int32{2, 1})

	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable("", nil, nil); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := db.CreateTable("a", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", nil, nil); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestFreezeValidatesFKs(t *testing.T) {
	db := NewDatabase()
	tbl, _ := db.CreateTable("child", nil, []FK{{Name: "p", RefTable: "nosuch"}})
	tbl.Append(nil, []int32{0})
	if err := db.Freeze(); err == nil {
		t.Fatal("Freeze accepted fk to unknown table")
	}

	db2 := NewDatabase()
	parent, _ := db2.CreateTable("parent", nil, nil)
	child, _ := db2.CreateTable("child", nil, []FK{{Name: "p", RefTable: "parent"}})
	parent.Append(nil, nil)
	child.Append(nil, []int32{5}) // out of range
	if err := db2.Freeze(); err == nil {
		t.Fatal("Freeze accepted out-of-range fk")
	}
}

func TestMatchingRows(t *testing.T) {
	db := miniDBLP(t)
	paper := db.Table("paper")
	if got := paper.MatchingRows("transaction"); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("MatchingRows(transaction) = %v, want [0 2]", got)
	}
	if got := paper.MatchingRows("TRANSACTION"); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("MatchingRows is not case-insensitive: %v", got)
	}
	if got := paper.MatchingRows("nosuch"); len(got) != 0 {
		t.Fatalf("MatchingRows(nosuch) = %v", got)
	}
	author := db.Table("author")
	if got := author.MatchingRows("jim"); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Fatalf("MatchingRows(jim) = %v, want [0 2]", got)
	}
}

func TestRefRows(t *testing.T) {
	db := miniDBLP(t)
	writes := db.Table("writes")
	// Rows of writes whose author fk (index 0) references author 0 (Gray).
	if got := writes.RefRows(0, 0); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("RefRows(author=0) = %v, want [0 1]", got)
	}
	// Rows of writes whose paper fk (index 1) references paper 1.
	if got := writes.RefRows(1, 1); !reflect.DeepEqual(got, []int32{2, 3}) {
		t.Fatalf("RefRows(paper=1) = %v, want [2 3]", got)
	}
}

// The classic "Gray transaction" query: author ← writes → paper with
// keyword predicates on the endpoints.
func TestEvalJoinPath(t *testing.T) {
	db := miniDBLP(t)
	paperNode := &JoinNode{Table: "paper", Term: "transaction"}
	root := &JoinNode{
		Table: "author",
		Term:  "gray",
		Children: []JoinEdge{{
			Child: &JoinNode{
				Table:    "writes",
				Children: []JoinEdge{{Child: paperNode, ParentFK: 1, ChildFK: -1}},
			},
			ParentFK: -1,
			ChildFK:  0,
		}},
	}
	res, err := db.EvalJoin(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2 (Gray wrote two transaction papers): %v", len(res), res)
	}
	for _, r := range res {
		if len(r) != 3 || r[0].Table != "author" || r[0].Row != 0 || r[2].Table != "paper" {
			t.Fatalf("malformed result %v", r)
		}
	}
}

func TestEvalJoinLimit(t *testing.T) {
	db := miniDBLP(t)
	root := &JoinNode{
		Table: "writes",
		Children: []JoinEdge{
			{Child: &JoinNode{Table: "author"}, ParentFK: 0, ChildFK: -1},
			{Child: &JoinNode{Table: "paper"}, ParentFK: 1, ChildFK: -1},
		},
	}
	all, err := db.EvalJoin(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("unlimited join returned %d results, want 4", len(all))
	}
	two, err := db.EvalJoin(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("limited join returned %d results, want 2", len(two))
	}
}

func TestEvalJoinMultiTermNode(t *testing.T) {
	db := miniDBLP(t)
	// Both terms on the same tuple: papers containing "transaction" AND
	// "recovery" — only paper 0.
	root := &JoinNode{Table: "paper", Terms: []string{"transaction", "recovery"}}
	res, err := db.EvalJoin(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0][0].Row != 0 {
		t.Fatalf("multi-term node: %v", res)
	}
}

func TestEvalJoinNoMatches(t *testing.T) {
	db := miniDBLP(t)
	root := &JoinNode{Table: "paper", Term: "zzzz"}
	res, err := db.EvalJoin(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("expected no results, got %v", res)
	}
}

func TestEvalJoinValidation(t *testing.T) {
	db := miniDBLP(t)
	cases := []*JoinNode{
		{Table: "nosuch"},
		{Table: "paper", Children: []JoinEdge{{Child: &JoinNode{Table: "conf"}, ParentFK: -1, ChildFK: -1}}},
		{Table: "paper", Children: []JoinEdge{{Child: &JoinNode{Table: "conf"}, ParentFK: 0, ChildFK: 0}}},
		{Table: "paper", Children: []JoinEdge{{Child: &JoinNode{Table: "conf"}, ParentFK: 5, ChildFK: -1}}},
		{Table: "paper", Children: []JoinEdge{{Child: &JoinNode{Table: "author"}, ParentFK: 0, ChildFK: -1}}},
	}
	for i, c := range cases {
		if _, err := db.EvalJoin(c, 0); err == nil {
			t.Errorf("case %d: invalid join tree accepted", i)
		}
	}
}

// Deep join: conf ← paper ← writes → author (size-4 network), verifying
// nested expansion through an intermediate node with its own child.
func TestEvalJoinDeep(t *testing.T) {
	db := miniDBLP(t)
	root := &JoinNode{
		Table: "conf",
		Term:  "vldb",
		Children: []JoinEdge{{
			Child: &JoinNode{
				Table: "paper",
				Children: []JoinEdge{{
					Child: &JoinNode{
						Table:    "writes",
						Children: []JoinEdge{{Child: &JoinNode{Table: "author", Term: "gray"}, ParentFK: 0, ChildFK: -1}},
					},
					ParentFK: -1,
					ChildFK:  1,
				}},
			},
			ParentFK: -1,
			ChildFK:  0,
		}},
	}
	res, err := db.EvalJoin(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Gray wrote papers 0 and 2, both at VLDB.
	if len(res) != 2 {
		t.Fatalf("deep join returned %d results, want 2: %v", len(res), res)
	}
	for _, r := range res {
		if len(r) != 4 {
			t.Fatalf("result arity %d, want 4: %v", len(r), r)
		}
	}
}

func TestAppendPanics(t *testing.T) {
	db := NewDatabase()
	tbl, _ := db.CreateTable("t", []string{"a"}, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("arity mismatch did not panic")
			}
		}()
		tbl.Append(nil, nil)
	}()
	tbl.Append([]string{"x"}, nil)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("append to frozen table did not panic")
			}
		}()
		tbl.Append([]string{"y"}, nil)
	}()
}

func TestNumRowsAndTerms(t *testing.T) {
	db := miniDBLP(t)
	if db.NumRows() != 3+2+3+4 {
		t.Fatalf("NumRows = %d, want 12", db.NumRows())
	}
	terms := db.Table("conf").Terms()
	if !reflect.DeepEqual(terms, []string{"sigmod", "vldb"}) {
		t.Fatalf("conf terms = %v", terms)
	}
	if names := db.TableNames(); !reflect.DeepEqual(names, []string{"author", "conf", "paper", "writes"}) {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestJoinNodeSize(t *testing.T) {
	n := &JoinNode{Table: "a", Children: []JoinEdge{
		{Child: &JoinNode{Table: "b"}, ParentFK: 0, ChildFK: -1},
		{Child: &JoinNode{Table: "c", Children: []JoinEdge{
			{Child: &JoinNode{Table: "d"}, ParentFK: 0, ChildFK: -1},
		}}, ParentFK: 1, ChildFK: -1},
	}}
	if n.Size() != 4 {
		t.Fatalf("Size = %d, want 4", n.Size())
	}
}
