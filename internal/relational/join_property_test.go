package relational

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// randomTwoTableDB builds a parent/child database with random rows, texts
// drawn from a tiny vocabulary, and random FKs.
func randomTwoTableDB(rng *rand.Rand) (*Database, int, int) {
	db := NewDatabase()
	parent, _ := db.CreateTable("parent", []string{"txt"}, nil)
	child, _ := db.CreateTable("child", []string{"txt"}, []FK{{Name: "p", RefTable: "parent"}})
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	np := 1 + rng.Intn(8)
	nc := rng.Intn(20)
	for i := 0; i < np; i++ {
		parent.Append([]string{vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]}, nil)
	}
	for i := 0; i < nc; i++ {
		fk := int32(rng.Intn(np))
		if rng.Intn(10) == 0 {
			fk = -1 // NULL
		}
		child.Append([]string{vocab[rng.Intn(len(vocab))]}, []int32{fk})
	}
	if err := db.Freeze(); err != nil {
		panic(err)
	}
	return db, np, nc
}

// bruteForceJoin evaluates child{termC} ⋈ parent{termP} by scanning every
// row pair.
func bruteForceJoin(db *Database, termC, termP string) []string {
	parent := db.Table("parent")
	child := db.Table("child")
	match := func(t *Table, row int32, term string) bool {
		if term == "" {
			return true
		}
		for _, r := range t.MatchingRows(term) {
			if r == row {
				return true
			}
		}
		return false
	}
	var out []string
	for c := int32(0); c < int32(child.NumRows()); c++ {
		fk := child.Row(c).FKs[0]
		if fk < 0 {
			continue
		}
		if match(child, c, termC) && match(parent, fk, termP) {
			out = append(out, fmt.Sprintf("c%d-p%d", c, fk))
		}
	}
	sort.Strings(out)
	return out
}

// Property: EvalJoin over child→parent with keyword predicates agrees with
// brute-force enumeration, for random databases and random predicates.
func TestQuickEvalJoinMatchesBruteForce(t *testing.T) {
	vocab := []string{"", "alpha", "beta", "gamma", "delta", "nomatch"}
	f := func(seed int64, ci, pi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _, _ := randomTwoTableDB(rng)
		termC := vocab[int(ci)%len(vocab)]
		termP := vocab[int(pi)%len(vocab)]

		root := &JoinNode{
			Table: "child",
			Term:  termC,
			Children: []JoinEdge{{
				Child:    &JoinNode{Table: "parent", Term: termP},
				ParentFK: 0,
				ChildFK:  -1,
			}},
		}
		res, err := db.EvalJoin(root, 0)
		if err != nil {
			return false
		}
		var got []string
		for _, r := range res {
			if len(r) != 2 || r[0].Table != "child" || r[1].Table != "parent" {
				return false
			}
			got = append(got, fmt.Sprintf("c%d-p%d", r[0].Row, r[1].Row))
		}
		sort.Strings(got)
		want := bruteForceJoin(db, termC, termP)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reversing the join direction (parent root, child via reverse
// index) yields the same pair multiset.
func TestQuickEvalJoinReverseDirection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db, _, _ := randomTwoTableDB(rng)

		fwd := &JoinNode{
			Table: "child",
			Children: []JoinEdge{{
				Child:    &JoinNode{Table: "parent"},
				ParentFK: 0,
				ChildFK:  -1,
			}},
		}
		rev := &JoinNode{
			Table: "parent",
			Children: []JoinEdge{{
				Child:    &JoinNode{Table: "child"},
				ParentFK: -1,
				ChildFK:  0,
			}},
		}
		fr, err := db.EvalJoin(fwd, 0)
		if err != nil {
			return false
		}
		rr, err := db.EvalJoin(rev, 0)
		if err != nil {
			return false
		}
		pairs := func(res []JoinResult, childFirst bool) []string {
			var out []string
			for _, r := range res {
				c, p := r[0].Row, r[1].Row
				if !childFirst {
					c, p = r[1].Row, r[0].Row
				}
				out = append(out, fmt.Sprintf("c%d-p%d", c, p))
			}
			sort.Strings(out)
			return out
		}
		a, b := pairs(fr, true), pairs(rr, false)
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
