package relational

import (
	"fmt"
)

// JoinNode is one relation occurrence in a join network (a "candidate
// network" in Discover/Sparse terminology, or the shape of a SQL join
// query in the workload generator). A node optionally carries a keyword
// predicate: only rows whose text contains Term qualify. An empty Term
// means the occurrence is a pure connector ("free tuple set").
type JoinNode struct {
	Table string
	// Term restricts this occurrence to rows matching the term ("" = all).
	Term string
	// Terms restricts to rows matching all listed terms (AND semantics);
	// used when several query keywords must fall on the same tuple.
	Terms    []string
	Children []JoinEdge
}

// JoinEdge connects a parent occurrence to a child occurrence through a
// foreign key on exactly one of the two sides.
type JoinEdge struct {
	Child *JoinNode
	// ParentFK ≥ 0 selects parent.FKs[ParentFK] == child-row join.
	// ChildFK ≥ 0 selects child.FKs[ChildFK] == parent-row join.
	// Exactly one must be ≥ 0; the other must be -1.
	ParentFK int
	ChildFK  int
}

// RowRef identifies a tuple.
type RowRef struct {
	Table string
	Row   int32
}

// JoinResult is one instantiation of a join network: the matched rows in
// pre-order of the join tree.
type JoinResult []RowRef

// Size returns the number of JoinNode occurrences in the tree rooted at n.
func (n *JoinNode) Size() int {
	s := 1
	for _, e := range n.Children {
		s += e.Child.Size()
	}
	return s
}

// EvalJoin evaluates the join network rooted at root using indexed
// nested-loop joins, returning up to limit results (limit ≤ 0 means
// unlimited). Results are produced in row-id order of the root occurrence.
func (db *Database) EvalJoin(root *JoinNode, limit int) ([]JoinResult, error) {
	if !db.frozen {
		return nil, fmt.Errorf("relational: EvalJoin before Freeze")
	}
	if err := db.checkJoinTree(root); err != nil {
		return nil, err
	}
	t := db.tables[root.Table]
	candidates, all := db.nodeCandidates(root)
	var out []JoinResult

	emit := func(rows JoinResult) bool {
		out = append(out, append(JoinResult(nil), rows...))
		return limit > 0 && len(out) >= limit
	}

	tryRow := func(r int32) bool {
		prefix := make(JoinResult, 0, root.Size())
		prefix = append(prefix, RowRef{root.Table, r})
		return db.expandSubtree(root, r, prefix, emit)
	}

	if all {
		for r := int32(0); r < int32(t.NumRows()); r++ {
			if tryRow(r) {
				break
			}
		}
	} else {
		for _, r := range candidates {
			if tryRow(r) {
				break
			}
		}
	}
	return out, nil
}

// CountJoin returns the number of results of the join network, up to limit.
func (db *Database) CountJoin(root *JoinNode, limit int) (int, error) {
	res, err := db.EvalJoin(root, limit)
	return len(res), err
}

// expandSubtree enumerates all instantiations of n's subtree below the
// bound row (depth-first over the cartesian product of children matches),
// invoking cont with the accumulated rows. Slices passed to cont are
// reused; cont must copy what it keeps. It returns true when enumeration
// should stop.
func (db *Database) expandSubtree(n *JoinNode, row int32, acc JoinResult, cont func(JoinResult) bool) bool {
	if len(n.Children) == 0 {
		return cont(acc)
	}
	var rec func(ci int, cur JoinResult) bool
	rec = func(ci int, cur JoinResult) bool {
		if ci == len(n.Children) {
			return cont(cur)
		}
		e := n.Children[ci]
		child := db.tables[e.Child.Table]
		var rows []int32
		switch {
		case e.ParentFK >= 0:
			v := db.tables[n.Table].rows[row].FKs[e.ParentFK]
			if v >= 0 {
				rows = []int32{v}
			}
		default:
			rows = child.RefRows(e.ChildFK, row)
		}
		for _, cr := range rows {
			if !db.rowMatches(e.Child, cr) {
				continue
			}
			if db.expandSubtree(e.Child, cr, append(cur, RowRef{e.Child.Table, cr}), func(full JoinResult) bool {
				return rec(ci+1, full)
			}) {
				return true
			}
		}
		return false
	}
	return rec(0, acc)
}

// nodeCandidates returns the candidate root rows: the term posting list if
// the node has predicates, else "all rows" (all == true).
func (db *Database) nodeCandidates(n *JoinNode) (rows []int32, all bool) {
	t := db.tables[n.Table]
	terms := n.allTerms()
	if len(terms) == 0 {
		return nil, true
	}
	// Intersect posting lists, smallest first (§1: "it is standard to
	// intersect inverted lists starting with the smallest one").
	lists := make([][]int32, len(terms))
	for i, term := range terms {
		lists[i] = t.MatchingRows(term)
		if len(lists[i]) == 0 {
			return nil, false
		}
	}
	res := lists[0]
	for _, l := range lists {
		if len(l) < len(res) {
			res = l
		}
	}
	var filtered []int32
	for _, r := range res {
		if db.rowMatches(n, r) {
			filtered = append(filtered, r)
		}
	}
	return filtered, false
}

func (n *JoinNode) allTerms() []string {
	if n.Term == "" {
		return n.Terms
	}
	return append([]string{n.Term}, n.Terms...)
}

func (db *Database) rowMatches(n *JoinNode, row int32) bool {
	t := db.tables[n.Table]
	for _, term := range n.allTerms() {
		if !containsSorted(t.MatchingRows(term), row) {
			return false
		}
	}
	return true
}

func containsSorted(list []int32, v int32) bool {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(list) && list[lo] == v
}

func (db *Database) checkJoinTree(n *JoinNode) error {
	t, ok := db.tables[n.Table]
	if !ok {
		return fmt.Errorf("relational: join references unknown table %q", n.Table)
	}
	for _, e := range n.Children {
		if (e.ParentFK >= 0) == (e.ChildFK >= 0) {
			return fmt.Errorf("relational: join edge %s→%s must set exactly one of ParentFK/ChildFK",
				n.Table, e.Child.Table)
		}
		if e.ParentFK >= 0 {
			if e.ParentFK >= len(t.FKs) {
				return fmt.Errorf("relational: %s has no fk #%d", n.Table, e.ParentFK)
			}
			if t.FKs[e.ParentFK].RefTable != e.Child.Table {
				return fmt.Errorf("relational: %s fk #%d references %s, not %s",
					n.Table, e.ParentFK, t.FKs[e.ParentFK].RefTable, e.Child.Table)
			}
		} else {
			ct, ok := db.tables[e.Child.Table]
			if !ok {
				return fmt.Errorf("relational: join references unknown table %q", e.Child.Table)
			}
			if e.ChildFK >= len(ct.FKs) {
				return fmt.Errorf("relational: %s has no fk #%d", e.Child.Table, e.ChildFK)
			}
			if ct.FKs[e.ChildFK].RefTable != n.Table {
				return fmt.Errorf("relational: %s fk #%d references %s, not %s",
					e.Child.Table, e.ChildFK, ct.FKs[e.ChildFK].RefTable, n.Table)
			}
		}
		if err := db.checkJoinTree(e.Child); err != nil {
			return err
		}
	}
	return nil
}
