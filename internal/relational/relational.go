// Package relational is a minimal in-memory relational engine.
//
// It provides exactly the substrate the BANKS-II evaluation depends on:
// tables of tuples with string-valued attributes and foreign keys, hash
// indexes on join columns, and evaluation of join networks (trees of
// relation occurrences connected by FK edges). The Sparse baseline of
// Hristidis et al. [8] runs its candidate networks against this engine with
// warm in-memory indexes, matching the paper's measurement methodology
// (§5.2: "Indices were created on all join columns ... ran each query
// several times to get a warm cache"). The workload generator (§5.4) uses
// the same machinery to produce ground-truth relevant answers by executing
// join networks with keyword predicates.
package relational

import (
	"fmt"
	"sort"

	"banks/internal/index"
)

// FK declares a foreign-key column: each row stores the row id of a tuple
// in RefTable (or -1 for NULL).
type FK struct {
	// Name of the foreign-key column (for diagnostics and edge typing).
	Name string
	// RefTable is the referenced table's name.
	RefTable string
}

// Row is one tuple: text attribute values parallel to the table's text
// columns, and FK row ids parallel to the table's FK declarations.
type Row struct {
	Texts []string
	FKs   []int32
}

// Table holds the rows of one relation plus its indexes.
type Table struct {
	Name     string
	TextCols []string
	FKs      []FK

	rows []Row

	// termIndex maps normalized term → sorted row ids (built by Freeze).
	termIndex map[string][]int32
	// fkIndex[k] maps referenced row id → rows of this table whose k-th FK
	// points at it (built by Freeze). This is the hash index on the join
	// column used by indexed nested-loop joins.
	fkIndex []map[int32][]int32

	frozen bool
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns tuple i. The returned value shares storage with the table.
func (t *Table) Row(i int32) Row { return t.rows[i] }

// Append adds a tuple and returns its row id. It panics if the arity is
// wrong or the table is frozen — generator bugs, not runtime conditions.
func (t *Table) Append(texts []string, fks []int32) int32 {
	if t.frozen {
		panic(fmt.Sprintf("relational: append to frozen table %s", t.Name))
	}
	if len(texts) != len(t.TextCols) || len(fks) != len(t.FKs) {
		panic(fmt.Sprintf("relational: arity mismatch appending to %s: %d texts (want %d), %d fks (want %d)",
			t.Name, len(texts), len(t.TextCols), len(fks), len(t.FKs)))
	}
	t.rows = append(t.rows, Row{Texts: texts, FKs: fks})
	return int32(len(t.rows) - 1)
}

// MatchingRows returns the sorted row ids whose text contains term.
// Only valid after Database.Freeze.
func (t *Table) MatchingRows(term string) []int32 {
	return t.termIndex[index.Normalize(term)]
}

// RefRows returns the rows of this table whose fk-th foreign key references
// refRow (the reverse join index). Only valid after Database.Freeze.
func (t *Table) RefRows(fk int, refRow int32) []int32 {
	return t.fkIndex[fk][refRow]
}

// Terms returns all distinct indexed terms of this table.
func (t *Table) Terms() []string {
	out := make([]string, 0, len(t.termIndex))
	for k := range t.termIndex {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Database is a set of tables.
type Database struct {
	tables map[string]*Table
	order  []string
	frozen bool
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable declares a table. Referenced tables may be declared later;
// Freeze validates all references.
func (db *Database) CreateTable(name string, textCols []string, fks []FK) (*Table, error) {
	if db.frozen {
		return nil, fmt.Errorf("relational: database is frozen")
	}
	if name == "" {
		return nil, fmt.Errorf("relational: empty table name")
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relational: duplicate table %q", name)
	}
	t := &Table{Name: name, TextCols: textCols, FKs: fks}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// TableNames returns table names in creation order.
func (db *Database) TableNames() []string { return db.order }

// Freeze validates foreign keys and builds all indexes. The database is
// immutable afterwards.
func (db *Database) Freeze() error {
	if db.frozen {
		return nil
	}
	for _, name := range db.order {
		t := db.tables[name]
		for k, fk := range t.FKs {
			ref, ok := db.tables[fk.RefTable]
			if !ok {
				return fmt.Errorf("relational: table %s fk %s references unknown table %s",
					name, fk.Name, fk.RefTable)
			}
			for i, row := range t.rows {
				v := row.FKs[k]
				if v < -1 || v >= int32(len(ref.rows)) {
					return fmt.Errorf("relational: %s row %d fk %s = %d out of range (ref %s has %d rows)",
						name, i, fk.Name, v, fk.RefTable, len(ref.rows))
				}
			}
		}
	}
	for _, name := range db.order {
		t := db.tables[name]
		t.termIndex = make(map[string][]int32)
		for i, row := range t.rows {
			seen := make(map[string]struct{}, 8)
			for _, txt := range row.Texts {
				for _, term := range index.Tokenize(txt) {
					if _, dup := seen[term]; dup {
						continue
					}
					seen[term] = struct{}{}
					t.termIndex[term] = append(t.termIndex[term], int32(i))
				}
			}
		}
		t.fkIndex = make([]map[int32][]int32, len(t.FKs))
		for k := range t.FKs {
			idx := make(map[int32][]int32)
			for i, row := range t.rows {
				if v := row.FKs[k]; v >= 0 {
					idx[v] = append(idx[v], int32(i))
				}
			}
			t.fkIndex[k] = idx
		}
		t.frozen = true
	}
	db.frozen = true
	return nil
}

// NumRows returns the total tuple count across tables.
func (db *Database) NumRows() int {
	n := 0
	for _, name := range db.order {
		n += db.tables[name].NumRows()
	}
	return n
}
