package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"banks"
	"banks/internal/api"
	"banks/internal/repl"
)

// nodeJSON is one tree node with its display label.
type nodeJSON struct {
	ID    banks.NodeID `json:"id"`
	Label string       `json:"label"`
}

// edgeJSON is one parent→child tree edge.
type edgeJSON struct {
	From    banks.NodeID `json:"from"`
	To      banks.NodeID `json:"to"`
	Type    string       `json:"type,omitempty"`
	Forward bool         `json:"forward"`
	Weight  float64      `json:"weight"`
}

// answerJSON is one ranked answer tree.
type answerJSON struct {
	Root         banks.NodeID   `json:"root"`
	RootLabel    string         `json:"root_label"`
	Score        float64        `json:"score"`
	EdgeScore    float64        `json:"edge_score"`
	NodeScore    float64        `json:"node_score"`
	Nodes        []nodeJSON     `json:"nodes"`
	Edges        []edgeJSON     `json:"edges"`
	KeywordNodes []banks.NodeID `json:"keyword_nodes"`
	PathWeights  []float64      `json:"path_weights"`
}

// statsJSON carries the §5.2 performance counters over the wire.
type statsJSON struct {
	NodesExplored    int     `json:"nodes_explored"`
	NodesTouched     int     `json:"nodes_touched"`
	EdgesRelaxed     int     `json:"edges_relaxed"`
	AnswersGenerated int     `json:"answers_generated"`
	WorkersUsed      int     `json:"workers_used"`
	DurationMS       float64 `json:"duration_ms"`
	BudgetExhausted  bool    `json:"budget_exhausted,omitempty"`
}

// searchResponse is the /v1/search (and per-element /v1/batch) body.
type searchResponse struct {
	QueryID string `json:"query_id"`
	Algo    string `json:"algo"`
	K       int    `json:"k"`
	// Clamped lists request fields reduced by the tenant limits, so a
	// caller can tell "ran as asked" from "ran with caps applied".
	Clamped []string `json:"clamped,omitempty"`
	// Truncated reports that the deadline cut the search short: Answers
	// is a valid partial top-k prefix, not the complete answer.
	Truncated bool         `json:"truncated"`
	Answers   []answerJSON `json:"answers"`
	Stats     statsJSON    `json:"stats"`
}

func (s *Server) statsJSON(st banks.Stats) statsJSON {
	return statsJSON{
		NodesExplored:    st.NodesExplored,
		NodesTouched:     st.NodesTouched,
		EdgesRelaxed:     st.EdgesRelaxed,
		AnswersGenerated: st.AnswersGenerated,
		WorkersUsed:      st.WorkersUsed,
		DurationMS:       float64(st.Duration) / float64(time.Millisecond),
		BudgetExhausted:  st.BudgetExhausted,
	}
}

// nodeLabel routes node rendering through the mutation overlay when live
// mutations are enabled: runtime-inserted nodes have no source row, and
// the base row mapping would fault on their IDs.
func (s *Server) nodeLabel(u banks.NodeID) string {
	if s.live != nil {
		return s.live.NodeLabel(u)
	}
	return s.db.NodeLabel(u)
}

func (s *Server) explain(a *banks.Answer) string {
	if s.live != nil {
		return s.live.Explain(a)
	}
	return s.db.Explain(a)
}

func (s *Server) answerJSON(a *banks.Answer) answerJSON {
	nodes := make([]nodeJSON, len(a.Nodes))
	for i, u := range a.Nodes {
		nodes[i] = nodeJSON{ID: u, Label: s.nodeLabel(u)}
	}
	edges := make([]edgeJSON, len(a.Edges))
	for i, e := range a.Edges {
		edges[i] = edgeJSON{
			From: e.From, To: e.To,
			Type:    s.db.EdgeTypes.Name(e.Type),
			Forward: e.Forward,
			Weight:  e.Weight,
		}
	}
	return answerJSON{
		Root:         a.Root,
		RootLabel:    s.nodeLabel(a.Root),
		Score:        a.Score,
		EdgeScore:    a.EdgeScore,
		NodeScore:    a.NodeScore,
		Nodes:        nodes,
		Edges:        edges,
		KeywordNodes: a.KeywordNodes,
		PathWeights:  a.PathWeights,
	}
}

func (s *Server) searchResponse(req *searchRequest, res *banks.Result) *searchResponse {
	answers := make([]answerJSON, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = s.answerJSON(a)
	}
	return &searchResponse{
		QueryID:   req.queryID(),
		Algo:      string(req.Algo),
		K:         req.Opts.Normalized().K,
		Clamped:   req.Clamped,
		Truncated: res.Stats.Truncated,
		Answers:   answers,
		Stats:     s.statsJSON(res.Stats),
	}
}

// annotate fills the request-log record for the middleware.
func annotate(r *http.Request, queryID string, answers int, truncated bool) {
	if info := infoFrom(r.Context()); info != nil {
		info.queryID = queryID
		info.answers = answers
		info.truncated = truncated
	}
}

// limits resolves the request's tenant header to its serving limits.
func (s *Server) limits(r *http.Request) TenantLimits {
	return s.tenants.Resolve(r.Header.Get("X-Tenant"))
}

// queryCtx applies the effective deadline to the request context.
func queryCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// runSearch executes one decoded query and records its metrics outcome.
// The duration fed to the latency metric is the search's own execution
// time (Stats.Duration), the one definition every query path shares;
// errored queries have no execution time and contribute only to the
// outcome counter.
func (s *Server) runSearch(ctx context.Context, req *searchRequest) (*banks.Result, *httpError) {
	res, err := s.eng.Search(ctx, req.Query, req.Algo, req.Opts)
	if err != nil {
		s.met.observeQuery(string(req.Algo), outcomeError, 0)
		return nil, mapQueryError(err)
	}
	outcome := outcomeOK
	if res.Stats.Truncated {
		outcome = outcomeTruncated
	}
	s.met.observeQuery(string(req.Algo), outcome, res.Stats.Duration)
	return res, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, herr := decodeSearchRequest(r, s.limits(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel := queryCtx(r, req.Timeout)
	defer cancel()
	res, herr := s.runSearch(ctx, req)
	if herr != nil {
		annotate(r, req.queryID(), 0, false)
		s.writeError(w, herr)
		return
	}
	resp := s.searchResponse(req, res)
	annotate(r, resp.QueryID, len(resp.Answers), resp.Truncated)
	writeJSON(w, resp)
}

// explainResponse is the /v1/explain body: the same search, rendered the
// way cmd/banks prints it.
type explainResponse struct {
	QueryID   string   `json:"query_id"`
	Algo      string   `json:"algo"`
	Clamped   []string `json:"clamped,omitempty"`
	Truncated bool     `json:"truncated"`
	Explains  []string `json:"explains"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, herr := decodeSearchRequest(r, s.limits(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel := queryCtx(r, req.Timeout)
	defer cancel()
	res, herr := s.runSearch(ctx, req)
	if herr != nil {
		annotate(r, req.queryID(), 0, false)
		s.writeError(w, herr)
		return
	}
	explains := make([]string, len(res.Answers))
	for i, a := range res.Answers {
		explains[i] = s.explain(a)
	}
	annotate(r, req.queryID(), len(explains), res.Stats.Truncated)
	writeJSON(w, explainResponse{
		QueryID:   req.queryID(),
		Algo:      string(req.Algo),
		Clamped:   req.Clamped,
		Truncated: res.Stats.Truncated,
		Explains:  explains,
	})
}

// nearNodeJSON is one activation-ranked node.
type nearNodeJSON struct {
	ID         banks.NodeID `json:"id"`
	Label      string       `json:"label"`
	Activation float64      `json:"activation"`
}

// nearResponse is the /v1/near body.
type nearResponse struct {
	QueryID   string         `json:"query_id"`
	Clamped   []string       `json:"clamped,omitempty"`
	Truncated bool           `json:"truncated"`
	Nodes     []nearNodeJSON `json:"nodes"`
	Stats     statsJSON      `json:"stats"`
}

func (s *Server) handleNear(w http.ResponseWriter, r *http.Request) {
	p, herr := decodeSearchParams(r)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	// Near queries have no algorithm choice, no output-bound mode, and
	// always combine activations by sum (core.Near forces it); accepting
	// and ignoring any of these would be the silent mismatch the strict
	// decoding exists to prevent.
	if p.Algo != "" {
		s.writeError(w, badRequest("algo", "near queries have no algorithm choice"))
		return
	}
	if p.StrictBound {
		s.writeError(w, badRequest("strict_bound", "near queries have no output bound mode"))
		return
	}
	if p.ActivationSum {
		s.writeError(w, badRequest("activation_sum", "near queries always sum activations; the flag is not configurable"))
		return
	}
	req, herr := p.resolve(s.limits(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	// Discriminate the stable query ID from a tree search over the same
	// terms: "near" takes the algorithm slot in the hash.
	req.Algo = "near"
	ctx, cancel := queryCtx(r, req.Timeout)
	defer cancel()
	res, stats, err := s.eng.Near(ctx, req.Query, req.Opts)
	if err != nil {
		s.met.observeQuery("near", outcomeError, 0)
		annotate(r, req.queryID(), 0, false)
		s.writeError(w, mapQueryError(err))
		return
	}
	outcome := outcomeOK
	if stats.Truncated {
		outcome = outcomeTruncated
	}
	s.met.observeQuery("near", outcome, stats.Duration)
	nodes := make([]nearNodeJSON, len(res))
	for i, n := range res {
		nodes[i] = nearNodeJSON{ID: n.Node, Label: s.nodeLabel(n.Node), Activation: n.Activation}
	}
	annotate(r, req.queryID(), len(nodes), stats.Truncated)
	writeJSON(w, nearResponse{
		QueryID:   req.queryID(),
		Clamped:   req.Clamped,
		Truncated: stats.Truncated,
		Nodes:     nodes,
		Stats:     s.statsJSON(stats),
	})
}

// batchResponse is the /v1/batch body: results[i] and errors[i] mirror
// queries[i]; exactly one of the pair is non-null. Clamped discloses
// batch-level reductions (the shared deadline); per-element clamps appear
// on the elements.
type batchResponse struct {
	Clamped []string          `json:"clamped,omitempty"`
	Results []*searchResponse `json:"results"`
	Errors  []*errorJSON      `json:"errors"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &httpError{status: http.StatusMethodNotAllowed,
			code: api.CodeMethodNotAllowed, message: "batch requests are POST with a JSON body"})
		return
	}
	reqs, timeout, clamped, herr := decodeBatchRequest(r, s.limits(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel := queryCtx(r, timeout)
	defer cancel()

	queries := make([]banks.BatchQuery, len(reqs))
	for i, req := range reqs {
		queries[i] = banks.BatchQuery{Query: req.Query, Algo: req.Algo, Opts: req.Opts}
	}
	results, errs := s.eng.SearchBatch(ctx, queries)

	resp := batchResponse{
		Clamped: clamped,
		Results: make([]*searchResponse, len(reqs)),
		Errors:  make([]*errorJSON, len(reqs)),
	}
	answers, truncated := 0, false
	for i := range reqs {
		if errs[i] != nil {
			s.met.observeQuery(string(reqs[i].Algo), outcomeError, 0)
			he := mapQueryError(errs[i])
			field := he.field
			if field != "" {
				field = fmt.Sprintf("queries[%d].%s", i, field)
			}
			detail := api.NewErrorDetail(he.status, he.code, field, he.message)
			if s.v1ErrorsOnly {
				detail = detail.V1Only()
			}
			resp.Errors[i] = &detail
			continue
		}
		res := results[i]
		outcome := outcomeOK
		if res.Stats.Truncated {
			outcome = outcomeTruncated
			truncated = true
		}
		s.met.observeQuery(string(reqs[i].Algo), outcome, res.Stats.Duration)
		resp.Results[i] = s.searchResponse(reqs[i], res)
		answers += len(resp.Results[i].Answers)
	}
	annotate(r, "batch", answers, truncated)
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// statuszResponse is the /statusz introspection document.
type statuszResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Dataset       struct {
		Description string `json:"description,omitempty"`
		Nodes       int    `json:"nodes"`
		Edges       int    `json:"edges"`
		Terms       int    `json:"terms"`
		Snapshotted bool   `json:"snapshotted"`
		ZeroCopy    bool   `json:"zero_copy"`
		// Shard discloses that this server holds one partition of a
		// sharded dataset (datagen -shards); the router's routing table
		// verifies its configuration against this claim.
		Shard *shardJSON `json:"shard,omitempty"`
	} `json:"dataset"`
	Engine struct {
		PoolWorkers int    `json:"pool_workers"`
		InFlight    int    `json:"in_flight"`
		Searches    uint64 `json:"searches"`
		Nears       uint64 `json:"nears"`
		Truncated   uint64 `json:"truncated"`
		Errored     uint64 `json:"errored"`
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
		CacheLen    int    `json:"cache_len"`
	} `json:"engine"`
	Admission struct {
		Limit    int    `json:"limit"`
		InFlight int    `json:"in_flight"`
		Rejected uint64 `json:"rejected"`
		// TenantRejected counts rejections caused by per-tenant quotas
		// (included in Rejected).
		TenantRejected uint64 `json:"tenant_rejected,omitempty"`
		// Tenants discloses the per-tenant admission state: the
		// configured max in-flight quota for every tenant that has one,
		// plus live in-flight/rejected counts for tenants currently
		// holding or recently refused slots.
		Tenants map[string]tenantAdmissionJSON `json:"tenants,omitempty"`
	} `json:"admission"`
	// Live discloses the mutation-overlay state when live mutations are
	// enabled: the current generation, how much delta has accumulated
	// since it, and cumulative mutation/compaction activity.
	Live *liveJSON `json:"live,omitempty"`
	// Replication discloses follower state when this server tails a
	// primary's write-ahead log (banksd -follow): connection state, the
	// local and primary log positions, and the lag between them.
	Replication *repl.FollowerStats `json:"replication,omitempty"`
	Tenants     []string            `json:"tenants,omitempty"`
	Runtime     struct {
		GoVersion  string `json:"go_version"`
		Goroutines int    `json:"goroutines"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		HeapBytes  uint64 `json:"heap_bytes"`
	} `json:"runtime"`
}

// shardJSON is the /statusz disclosure of a shard snapshot's metadata.
type shardJSON struct {
	Shard           uint32 `json:"shard"`
	NumShards       uint32 `json:"num_shards"`
	OwnedNodes      uint64 `json:"owned_nodes"`
	OwnedComponents uint64 `json:"owned_components"`
	DuplicatedEdges uint64 `json:"duplicated_edges"`
}

// liveJSON is the /statusz disclosure of the live-mutation state.
type liveJSON struct {
	Generation            uint64  `json:"generation"`
	DeltaVersion          uint64  `json:"delta_version"`
	DeltaNodes            int     `json:"delta_nodes"`
	DeltaEdges            int     `json:"delta_edges"`
	Tombstones            int     `json:"tombstones"`
	OpsSinceBase          uint64  `json:"ops_since_base"`
	MutationsTotal        uint64  `json:"mutations_total"`
	MutationBatches       uint64  `json:"mutation_batches"`
	CompactionsTotal      uint64  `json:"compactions_total"`
	LastCompactionSeconds float64 `json:"last_compaction_seconds,omitempty"`
	// WAL discloses the write-ahead log when one is configured; its
	// absence means mutation acks are memory-only between compactions.
	WAL *walJSON `json:"wal,omitempty"`
}

// walJSON is the /statusz disclosure of the write-ahead log.
type walJSON struct {
	Path           string `json:"path"`
	FsyncPolicy    string `json:"fsync_policy"`
	SizeBytes      int64  `json:"size_bytes"`
	Records        uint64 `json:"records"`
	Appends        uint64 `json:"appends"`
	Syncs          uint64 `json:"syncs"`
	Resets         uint64 `json:"resets"`
	AppendFailures uint64 `json:"append_failures"`
	// ReplayedRecords is how many records crash recovery replayed at
	// startup (0 after a clean start).
	ReplayedRecords int `json:"replayed_records"`
}

// tenantAdmissionJSON is one tenant's admission disclosure in /statusz.
type tenantAdmissionJSON struct {
	// MaxInFlight is the configured quota (0 = none; the global limit
	// alone applies).
	MaxInFlight int    `json:"max_in_flight"`
	InFlight    int    `json:"in_flight"`
	Rejected    uint64 `json:"rejected"`
}

// tenantAdmission merges the configured quotas with the live gate state:
// every configured tenant with a quota appears (even when idle), and so
// does any tenant currently holding quota slots or with past rejections.
func (s *Server) tenantAdmission() map[string]tenantAdmissionJSON {
	out := make(map[string]tenantAdmissionJSON)
	for _, name := range s.tenants.Names() {
		if q := s.tenants.Resolve(name).MaxInFlight; q > 0 {
			out[name] = tenantAdmissionJSON{MaxInFlight: q}
		}
	}
	// The default chain may impose a quota on every unconfigured tenant;
	// disclose it under the empty-header key only when active below.
	for name, st := range s.adm.tenantSnapshot() {
		out[name] = tenantAdmissionJSON{
			MaxInFlight: s.tenants.Resolve(name).MaxInFlight,
			InFlight:    st.InFlight,
			Rejected:    st.Rejected,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var resp statuszResponse
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Draining = s.draining.Load()

	resp.Dataset.Description = s.dataset
	resp.Dataset.Nodes = s.db.Graph.NumNodes()
	resp.Dataset.Edges = s.db.Graph.NumEdges()
	resp.Dataset.Terms = s.db.Index.NumTerms()
	resp.Dataset.Snapshotted = s.db.Snapshotted()
	resp.Dataset.ZeroCopy = s.db.SnapshotZeroCopy()
	if sm := s.db.ShardInfo(); sm != nil {
		resp.Dataset.Shard = &shardJSON{
			Shard:           sm.Shard,
			NumShards:       sm.NumShards,
			OwnedNodes:      sm.OwnedNodes,
			OwnedComponents: sm.OwnedComponents,
			DuplicatedEdges: sm.DuplicatedEdges,
		}
	}

	es := s.eng.Stats()
	resp.Engine.PoolWorkers = es.Workers
	resp.Engine.InFlight = es.InFlight
	resp.Engine.Searches = es.Searches
	resp.Engine.Nears = es.Nears
	resp.Engine.Truncated = es.Truncated
	resp.Engine.Errored = es.Errored
	resp.Engine.CacheHits = es.CacheHits
	resp.Engine.CacheMisses = es.CacheMisses
	resp.Engine.CacheLen = es.CacheLen

	resp.Admission.Limit = s.adm.limit
	resp.Admission.InFlight = s.adm.inFlight()
	resp.Admission.Rejected = s.adm.rejectedTotal()
	resp.Admission.TenantRejected = s.adm.tenantRejectedTotal()
	resp.Admission.Tenants = s.tenantAdmission()

	if s.live != nil {
		st := s.live.Stats()
		resp.Live = &liveJSON{
			Generation:            st.Generation,
			DeltaVersion:          st.DeltaVersion,
			DeltaNodes:            st.DeltaNodes,
			DeltaEdges:            st.DeltaEdges,
			Tombstones:            st.Tombstones,
			OpsSinceBase:          st.OpsSinceBase,
			MutationsTotal:        st.MutationsTotal,
			MutationBatches:       st.MutationBatches,
			CompactionsTotal:      st.CompactionsTotal,
			LastCompactionSeconds: st.LastCompactionSeconds,
		}
		if s.live.HasWAL() {
			ws := s.live.WALStats()
			resp.Live.WAL = &walJSON{
				Path:            ws.Path,
				FsyncPolicy:     string(ws.Policy),
				SizeBytes:       ws.SizeBytes,
				Records:         ws.Records,
				Appends:         ws.Appends,
				Syncs:           ws.Syncs,
				Resets:          ws.Resets,
				AppendFailures:  ws.AppendFailures,
				ReplayedRecords: s.live.Replayed(),
			}
		}
	}

	if s.follower != nil {
		st := s.follower.Stats()
		resp.Replication = &st
	}

	resp.Tenants = s.tenants.Names()

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	resp.Runtime.GoVersion = runtime.Version()
	resp.Runtime.Goroutines = runtime.NumGoroutine()
	resp.Runtime.GOMAXPROCS = runtime.GOMAXPROCS(0)
	resp.Runtime.HeapBytes = mem.HeapAlloc

	writeJSON(w, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	counters := []counterExtra{
		{"banksd_admission_rejected_total", "Requests rejected by the admission gate (HTTP 429).", s.adm.rejectedTotal()},
		{"banksd_admission_tenant_rejected_total", "Requests rejected by a per-tenant in-flight quota (subset of rejected).", s.adm.tenantRejectedTotal()},
		{"banksd_cache_hits_total", "Engine result-cache hits.", es.CacheHits},
		{"banksd_cache_misses_total", "Engine result-cache misses.", es.CacheMisses},
	}
	gauges := []gauge{
		{"banksd_admission_in_flight", "Requests currently admitted.", float64(s.adm.inFlight())},
		{"banksd_admission_limit", "Admission in-flight limit.", float64(s.adm.limit)},
		{"banksd_engine_in_flight", "Engine pool slots currently held.", float64(es.InFlight)},
		{"banksd_engine_pool_workers", "Engine pool width.", float64(es.Workers)},
		{"banksd_cache_entries", "Entries in the engine result cache.", float64(es.CacheLen)},
		{"banksd_draining", "1 once graceful drain has begun.", boolGauge(s.draining.Load())},
		{"banksd_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds()},
		{"go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine())},
	}
	if s.live != nil {
		st := s.live.Stats()
		counters = append(counters,
			counterExtra{"banksd_mutations_total", "Mutation ops applied (cumulative across compactions).", st.MutationsTotal},
			counterExtra{"banksd_mutation_batches_total", "Mutation batches accepted.", st.MutationBatches},
			counterExtra{"banksd_compactions_total", "Completed snapshot compactions.", st.CompactionsTotal},
		)
		gauges = append(gauges,
			gauge{"banksd_generation", "Current base snapshot generation.", float64(st.Generation)},
			gauge{"banksd_delta_version", "Mutation batches applied since the current base.", float64(st.DeltaVersion)},
			gauge{"banksd_delta_nodes", "Live nodes inserted since the current base.", float64(st.DeltaNodes)},
			gauge{"banksd_delta_edges", "Live edges inserted since the current base.", float64(st.DeltaEdges)},
			gauge{"banksd_delta_tombstones", "Nodes deleted since the current base.", float64(st.Tombstones)},
			gauge{"banksd_ops_since_base", "Mutation ops applied since the current base generation (resets on compaction).", float64(st.OpsSinceBase)},
			gauge{"banksd_compaction_seconds_sum", "Total seconds spent in compactions (pair with banksd_compactions_total for averages).", st.CompactionSecondsSum},
			gauge{"banksd_last_compaction_seconds", "Duration of the most recent compaction.", st.LastCompactionSeconds},
		)
		if s.live.HasWAL() {
			ws := s.live.WALStats()
			counters = append(counters,
				counterExtra{"banksd_wal_appends_total", "Mutation batches appended to the write-ahead log.", ws.Appends},
				counterExtra{"banksd_wal_syncs_total", "fsync calls issued by the write-ahead log.", ws.Syncs},
				counterExtra{"banksd_wal_resets_total", "Write-ahead log truncations (one per compaction).", ws.Resets},
				counterExtra{"banksd_wal_append_failures_total", "Mutation batches the write-ahead log refused (batch not applied).", ws.AppendFailures},
			)
			gauges = append(gauges,
				gauge{"banksd_wal_size_bytes", "Current write-ahead log file size.", float64(ws.SizeBytes)},
				gauge{"banksd_wal_records", "Records currently in the write-ahead log.", float64(ws.Records)},
			)
		}
	}
	if s.follower != nil {
		st := s.follower.Stats()
		counters = append(counters,
			counterExtra{"banksd_replication_records_applied_total", "WAL records applied from the primary's log.", st.RecordsApplied},
			counterExtra{"banksd_replication_bytes_applied_total", "WAL bytes applied from the primary's log.", uint64(st.BytesApplied)},
			counterExtra{"banksd_replication_bootstraps_total", "Snapshot bootstraps (initial sync or re-sync across a compaction).", st.Bootstraps},
			counterExtra{"banksd_replication_reconnects_total", "Stream reconnects after an error or cut.", st.Reconnects},
		)
		gauges = append(gauges,
			gauge{"banksd_replication_connected", "1 while the follower's tail of the primary's log is healthy.", boolGauge(st.Connected)},
			gauge{"banksd_replication_lag_records", "Mutation batches the primary has acknowledged that this follower has not yet applied.", float64(st.LagRecords)},
			gauge{"banksd_replication_lag_bytes", "WAL bytes between the primary's log end and this follower's.", float64(st.LagBytes)},
			gauge{"banksd_replication_lag_seconds", "Seconds this follower has continuously been behind the primary (0 when caught up).", st.LagSeconds},
		)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, counters, gauges)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
