package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the bounded in-flight gate in front of the query
// endpoints. It admits at most limit requests simultaneously; the
// (limit+1)-th concurrent request is rejected immediately with
// ErrOverCapacity rather than queued, so overload turns into fast 429s
// (with a Retry-After hint) instead of an unbounded latency tail. The
// engine's own worker pool below still bounds executing searches; the
// admission limit bounds how many requests may be *waiting on* that pool,
// which is what keeps memory and tail latency flat when traffic spikes.
type admission struct {
	limit    int
	slots    chan struct{}
	rejected atomic.Uint64

	// ewmaNS tracks an exponentially-weighted moving average of admitted
	// request durations, the basis of the Retry-After hint.
	mu     sync.Mutex
	ewmaNS float64
}

// ewmaAlpha weights the latest observation at 1/8 — smooth enough to
// ignore one slow query, fresh enough to follow a load shift.
const ewmaAlpha = 0.125

func newAdmission(limit int) *admission {
	return &admission{limit: limit, slots: make(chan struct{}, limit)}
}

// tryAcquire claims an in-flight slot. It never blocks: false means the
// gate is at capacity and the caller must reject the request.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		a.rejected.Add(1)
		return false
	}
}

// release returns a slot and feeds the request's duration into the
// latency average.
func (a *admission) release(elapsed time.Duration) {
	<-a.slots
	a.mu.Lock()
	if a.ewmaNS == 0 {
		a.ewmaNS = float64(elapsed)
	} else {
		a.ewmaNS += ewmaAlpha * (float64(elapsed) - a.ewmaNS)
	}
	a.mu.Unlock()
}

// retryAfterSeconds estimates how long a rejected caller should back off:
// the average request duration rounded up to whole seconds, at least 1
// (Retry-After is integral seconds and 0 would invite an immediate,
// equally doomed retry).
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	ewma := a.ewmaNS
	a.mu.Unlock()
	s := int(math.Ceil(ewma / float64(time.Second)))
	if s < 1 {
		s = 1
	}
	return s
}

// inFlight reports the number of currently admitted requests.
func (a *admission) inFlight() int { return len(a.slots) }

// rejectedTotal reports how many requests have been turned away.
func (a *admission) rejectedTotal() uint64 { return a.rejected.Load() }
