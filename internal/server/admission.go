package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the bounded in-flight gate in front of the query
// endpoints. It admits at most limit requests simultaneously; the
// (limit+1)-th concurrent request is rejected immediately with
// ErrOverCapacity rather than queued, so overload turns into fast 429s
// (with a Retry-After hint) instead of an unbounded latency tail. The
// engine's own worker pool below still bounds executing searches; the
// admission limit bounds how many requests may be *waiting on* that pool,
// which is what keeps memory and tail latency flat when traffic spikes.
type admission struct {
	limit    int
	slots    chan struct{}
	rejected atomic.Uint64
	// tenantRejected counts rejections caused by a per-tenant quota
	// specifically (also included in rejected).
	tenantRejected atomic.Uint64

	// now is the clock, injectable by tests. Defaults to time.Now.
	now func() time.Time

	// ewmaNS tracks an exponentially-weighted moving average of admitted
	// request durations, the basis of the Retry-After hint. starts
	// records when each currently admitted request entered the gate
	// (keyed by the token tryAcquire returned): the age of the oldest
	// in-flight request floors the hint, so a server whose slots are all
	// pinned by long-lived streams that have never released — leaving
	// ewmaNS at zero — does not advertise the 1-second minimum while
	// callers would in truth wait minutes.
	mu     sync.Mutex
	ewmaNS float64
	nextID uint64
	starts map[uint64]time.Time

	// tenants tracks per-tenant in-flight counts for tenants subject to a
	// quota (TenantLimits.MaxInFlight), keyed by the raw X-Tenant header
	// value. Streams hold their slot for their full duration, so
	// long-lived streams count against the quota the whole time they are
	// open. The header value is attacker-controlled, so the map must not
	// grow one entry per name ever seen: gates for names that are not
	// explicitly configured tenants (keep=false — they merely inherit the
	// default chain's quota) are pruned as soon as they go idle, keeping
	// the map bounded by the config size plus currently-active traffic.
	// A pruned gate's rejection count survives in the aggregate
	// tenantRejected counter.
	tmu     sync.Mutex
	tenants map[string]*tenantGate
}

// tenantGate is one tenant's admission state.
type tenantGate struct {
	inFlight int
	rejected uint64
	// keep pins the gate across idle periods (explicitly configured
	// tenants only — a bounded set, so their rejection counts can stay
	// visible in /statusz).
	keep bool
}

// ewmaAlpha weights the latest observation at 1/8 — smooth enough to
// ignore one slow query, fresh enough to follow a load shift.
const ewmaAlpha = 0.125

func newAdmission(limit int) *admission {
	return &admission{
		limit:   limit,
		slots:   make(chan struct{}, limit),
		tenants: make(map[string]*tenantGate),
		now:     time.Now,
		starts:  make(map[uint64]time.Time),
	}
}

// tryAcquire claims an in-flight slot for the tenant, applying first the
// global gate and then the tenant's own quota (quota ≤ 0 means the
// tenant has none). keep marks explicitly configured tenant names whose
// gates persist across idle periods (see the tenants field comment). It
// never blocks: ok=false means the caller must reject the request, and
// byTenant tells which gate refused (so the 429 can say whether the
// server or the tenant is saturated). On admission the returned token
// identifies the slot and must be handed back to release.
func (a *admission) tryAcquire(tenant string, quota int, keep bool) (token uint64, ok, byTenant bool) {
	select {
	case a.slots <- struct{}{}:
	default:
		a.rejected.Add(1)
		return 0, false, false
	}
	if quota > 0 {
		a.tmu.Lock()
		g := a.tenants[tenant]
		if g == nil {
			g = &tenantGate{keep: keep}
			a.tenants[tenant] = g
		}
		if g.inFlight >= quota {
			g.rejected++
			a.tmu.Unlock()
			<-a.slots // hand the global slot back
			a.rejected.Add(1)
			a.tenantRejected.Add(1)
			return 0, false, true
		}
		g.inFlight++
		a.tmu.Unlock()
	}
	a.mu.Lock()
	a.nextID++
	token = a.nextID
	a.starts[token] = a.now()
	a.mu.Unlock()
	return token, true, false
}

// release returns a slot (and the tenant's quota share, mirroring the
// tryAcquire that admitted the request) and feeds the request's duration
// — measured from the admit time the token records — into the latency
// average.
func (a *admission) release(tenant string, quota int, token uint64) {
	if quota > 0 {
		a.tmu.Lock()
		if g := a.tenants[tenant]; g != nil {
			g.inFlight--
			if g.inFlight <= 0 && !g.keep {
				delete(a.tenants, tenant)
			}
		}
		a.tmu.Unlock()
	}
	<-a.slots
	a.mu.Lock()
	elapsed := float64(0)
	if start, found := a.starts[token]; found {
		elapsed = float64(a.now().Sub(start))
		delete(a.starts, token)
	}
	if a.ewmaNS == 0 {
		a.ewmaNS = elapsed
	} else {
		a.ewmaNS += ewmaAlpha * (elapsed - a.ewmaNS)
	}
	a.mu.Unlock()
}

// retryAfterSeconds estimates how long a rejected caller should back off:
// the average request duration, floored by the age of the oldest
// currently admitted request, rounded up to whole seconds, at least 1
// (Retry-After is integral seconds and 0 would invite an immediate,
// equally doomed retry).
//
// The oldest-age floor matters when the average is misleadingly small or
// absent: a fresh server whose slots are all held by pinned-open streams
// has ewmaNS == 0 — no request has ever released — yet a slot will not
// free for at least as long as the current occupants have already run.
// Hinting the 1-second minimum there invites doomed retries; the age of
// the longest-held slot is the honest lower bound the gate can compute.
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	est := a.ewmaNS
	now := a.now()
	for _, start := range a.starts {
		if age := float64(now.Sub(start)); age > est {
			est = age
		}
	}
	a.mu.Unlock()
	s := int(math.Ceil(est / float64(time.Second)))
	if s < 1 {
		s = 1
	}
	return s
}

// inFlight reports the number of currently admitted requests.
func (a *admission) inFlight() int { return len(a.slots) }

// rejectedTotal reports how many requests have been turned away (global
// and per-tenant gates combined).
func (a *admission) rejectedTotal() uint64 { return a.rejected.Load() }

// tenantRejectedTotal reports rejections caused by per-tenant quotas.
func (a *admission) tenantRejectedTotal() uint64 { return a.tenantRejected.Load() }

// tenantState is a point-in-time snapshot of one tenant's gate, for
// /statusz disclosure.
type tenantState struct {
	InFlight int    `json:"in_flight"`
	Rejected uint64 `json:"rejected"`
}

// tenantSnapshot returns the active per-tenant gates.
func (a *admission) tenantSnapshot() map[string]tenantState {
	a.tmu.Lock()
	defer a.tmu.Unlock()
	if len(a.tenants) == 0 {
		return nil
	}
	out := make(map[string]tenantState, len(a.tenants))
	for name, g := range a.tenants {
		out[name] = tenantState{InFlight: g.inFlight, Rejected: g.rejected}
	}
	return out
}
