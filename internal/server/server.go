// Package server is the HTTP/JSON serving front end over banks.Engine:
// the layer that turns the reproduction from a library into the
// interactive system the paper describes (§1 frames BANKS as a web-served
// search system with sub-second answers).
//
// Endpoints:
//
//	GET|POST /v1/search         one keyword query → ranked answer trees
//	GET|POST /v1/search/stream  the same query, answered incrementally as NDJSON
//	POST     /v1/batch          many queries fanned out across the engine pool
//	GET|POST /v1/near           activation-ranked nodes ("near queries", §4.3)
//	GET|POST /v1/explain        a query's answers rendered as indented trees
//	POST     /v1/mutate         apply one batch of live mutations (tenant-gated)
//	POST     /v1/compact        fold the mutation overlay into a new snapshot generation
//	GET      /healthz           liveness; 503 once draining
//	GET      /statusz           JSON introspection: engine, cache, admission, runtime
//	GET      /metrics           Prometheus text format (stdlib-only exporter)
//
// The serving discipline, front to back: admission control bounds how
// many requests may be in flight at once — globally, and per tenant when
// the tenant's limits configure a quota (excess is rejected immediately
// with 429 + Retry-After, keeping the latency tail flat under overload;
// streams hold their slot for their full duration); per-tenant limits
// resolved from the X-Tenant header clamp what an admitted request may
// ask for (k, intra-query workers, deadline); the engine's worker pool
// bounds actual search execution; and every query runs under a deadline,
// returning its partial top-k with truncated=true rather than failing
// when time runs out. Streaming responses end with a trailer line
// carrying the same truncation disclosure (docs/STREAMING.md).
package server

import (
	"errors"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"banks"
	"banks/internal/repl"
)

// Config assembles a Server. Engine and DB are required; everything else
// has serving-grade defaults.
type Config struct {
	// Engine executes the queries. Required.
	Engine *banks.Engine
	// DB is the database the engine serves, used for node labels,
	// explain rendering and /statusz. Required.
	DB *banks.DB
	// Live enables the mutation endpoints (POST /v1/mutate and
	// /v1/compact) and routes node labels through the mutation overlay so
	// runtime-inserted nodes render without source rows. Nil serves a
	// read-only instance: the mutation endpoints answer 501.
	Live *banks.Live
	// Tenants maps X-Tenant header values to serving limits.
	// Nil means every tenant gets the built-in limits.
	Tenants *TenantConfig
	// MaxInFlight bounds concurrently admitted query requests
	// (/v1/* endpoints; health, status and metrics are exempt).
	// Default: 4× the engine pool width — enough queue to keep the pool
	// busy across request turnaround, small enough that queue wait stays
	// a few service times.
	MaxInFlight int
	// Logger receives one line per /v1/* request. Nil disables request
	// logging.
	Logger *log.Logger
	// Dataset describes the served data for /statusz (e.g. "dblp factor
	// 0.25" or a snapshot path).
	Dataset string
	// StreamDropToBatch selects the backpressure policy for
	// /v1/search/stream consumers slower than answer generation: false
	// (the default) blocks generation until the client keeps up — strict
	// incrementality at the cost of holding an engine pool slot; true
	// degrades such streams to batch delivery so a slow client never
	// throttles the search (the trailer discloses "degraded").
	StreamDropToBatch bool
	// Follower, when non-nil, marks this instance a replication
	// follower: /v1/mutate and /v1/compact are rejected with not_primary
	// pointing at the primary, and /statusz + /metrics expose the
	// replication lag the Follower reports.
	Follower *repl.Follower
	// V1ErrorsOnly drops the deprecated error-envelope mirror fields
	// (top-level "code", error.status, error.message), emitting the pure
	// v1 contract. The zero value keeps the legacy mirrors during the
	// deprecation window (banksd -legacy-errors=false sets this).
	V1ErrorsOnly bool
}

// Server routes HTTP requests into a banks.Engine.
type Server struct {
	eng     *banks.Engine
	db      *banks.DB
	live    *banks.Live
	tenants *TenantConfig
	adm     *admission
	met     *metrics
	logger  *log.Logger
	dataset string

	streamDropToBatch bool
	follower          *repl.Follower
	publisher         *repl.Publisher // non-nil when Live has a WAL
	v1ErrorsOnly      bool

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Uint64
	mux      *http.ServeMux
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.DB == nil {
		return nil, errors.New("server: nil db")
	}
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = DefaultTenantConfig()
	}
	if err := tenants.Validate(); err != nil {
		return nil, err
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = 4 * cfg.Engine.Workers()
	}
	if maxInFlight < 1 {
		return nil, errors.New("server: MaxInFlight must be positive")
	}
	s := &Server{
		eng:               cfg.Engine,
		db:                cfg.DB,
		live:              cfg.Live,
		tenants:           tenants,
		adm:               newAdmission(maxInFlight),
		met:               newMetrics(),
		logger:            cfg.Logger,
		dataset:           cfg.Dataset,
		streamDropToBatch: cfg.StreamDropToBatch,
		follower:          cfg.Follower,
		v1ErrorsOnly:      cfg.V1ErrorsOnly,
		start:             time.Now(),
	}
	if cfg.Live != nil && cfg.Live.HasWAL() {
		// Any WAL-backed live instance can serve its log — a primary to
		// its followers, and a follower to chained replicas downstream.
		pub, err := repl.NewPublisher(repl.PublisherConfig{
			Source: cfg.Live,
			WriteError: func(w http.ResponseWriter, status int, code, field, detail string) {
				s.writeError(w, &httpError{status: status, code: code, field: field, message: detail})
			},
		})
		if err != nil {
			return nil, err
		}
		s.publisher = pub
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", s.admitted(s.handleSearch))
	mux.HandleFunc("/v1/search/stream", s.admitted(s.handleSearchStream))
	mux.HandleFunc("/v1/batch", s.admitted(s.handleBatch))
	mux.HandleFunc("/v1/near", s.admitted(s.handleNear))
	mux.HandleFunc("/v1/explain", s.admitted(s.handleExplain))
	mux.HandleFunc("/v1/mutate", s.admitted(s.handleMutate))
	mux.HandleFunc("/v1/compact", s.admitted(s.handleCompact))
	if s.publisher != nil {
		// Replication bypasses admission: a parked long-poll must not
		// hold a query slot, and followers must be able to catch up even
		// when the query path is saturated.
		mux.HandleFunc("/v1/replication/log", s.publisher.ServeLog)
		mux.HandleFunc("/v1/replication/snapshot", s.publisher.ServeSnapshot)
	}
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// instrumentation middleware (request IDs, logging, metrics, panic
// containment).
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// BeginDrain flips the server into draining mode: /healthz starts
// answering 503 so load balancers stop routing here, while requests
// already in flight run to completion (http.Server.Shutdown closes the
// listeners and waits for them). Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MaxInFlight reports the admission limit.
func (s *Server) MaxInFlight() int { return s.adm.limit }
