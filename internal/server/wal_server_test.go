package server

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"banks"
)

// newWALServer is newLiveServer with a write-ahead log wired in.
func newWALServer(t *testing.T) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "live.wal")
	snapPath := filepath.Join(dir, "live.banksnap")
	db := testDB(t)
	// Materialize the base snapshot as banksd does, so the replication
	// snapshot endpoint has a file to bootstrap followers from.
	if err := db.WriteSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	eng, err := banks.NewEngine(db, banks.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := banks.OpenLive(eng, banks.LiveOptions{
		SnapshotPath: snapPath,
		WALPath:      walPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	s, err := New(Config{Engine: eng, DB: db, Live: live, Tenants: generousTenants()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, walPath
}

// TestMutateWALDisclosures pins the v1 durability surface end to end: the
// mutate envelope carries wal_offset/durable/delta, compact reports the
// truncation, and /statusz + /metrics disclose the log's position and
// counters at every step.
func TestMutateWALDisclosures(t *testing.T) {
	_, ts, walPath := newWALServer(t)

	code, body := post(t, ts, "/v1/mutate", "", `{"ops":[
		{"op":"insert_node","table":"paper","text":"durable walserver probe"}
	]}`)
	if code != 200 {
		t.Fatalf("mutate: %d %s", code, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Durable || mr.WALOffset == nil || *mr.WALOffset <= 16 {
		t.Fatalf("WAL-backed mutate not disclosed as durable: %+v", mr)
	}
	if mr.Delta.Nodes != 1 || mr.Delta.Tombstones != 0 {
		t.Fatalf("delta block: %+v", mr.Delta)
	}

	// /statusz: the live block carries the wal sub-block.
	_, body, _ = get(t, ts, "/statusz", "")
	var st struct {
		Live *liveJSON `json:"live"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Live == nil || st.Live.WAL == nil {
		t.Fatalf("statusz missing wal block: %s", body)
	}
	w := st.Live.WAL
	if w.Path != walPath || w.FsyncPolicy != "always" || w.Records != 1 || w.Appends != 1 ||
		w.SizeBytes != *mr.WALOffset || w.AppendFailures != 0 || w.ReplayedRecords != 0 {
		t.Fatalf("wal block: %+v (mutate offset %d)", w, *mr.WALOffset)
	}
	if st.Live.OpsSinceBase != 1 {
		t.Fatalf("ops_since_base = %d, want 1", st.Live.OpsSinceBase)
	}

	// /metrics: WAL counters and gauges present and moving.
	_, body, _ = get(t, ts, "/metrics", "")
	for _, want := range []string{
		"banksd_wal_appends_total 1",
		"banksd_wal_records 1",
		"banksd_wal_append_failures_total 0",
		"banksd_ops_since_base 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Compaction truncates the log and says so.
	code, body = post(t, ts, "/v1/compact", "", "")
	if code != 200 {
		t.Fatalf("compact: %d %s", code, body)
	}
	var cr compactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.WALTruncated || cr.Generation != 1 {
		t.Fatalf("compact response: %+v", cr)
	}
	if cr.Delta != (deltaStatsJSON{}) {
		t.Fatalf("post-compaction delta not empty: %+v", cr.Delta)
	}
	_, body, _ = get(t, ts, "/metrics", "")
	for _, want := range []string{
		"banksd_wal_resets_total 1",
		"banksd_wal_records 0",
		"banksd_ops_since_base 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("post-compaction metrics missing %q", want)
		}
	}
}

// TestMutateWithoutWALUndisclosed: a live server with no WAL must not
// fake durability — no wal_offset, durable false, no statusz wal block.
func TestMutateWithoutWALUndisclosed(t *testing.T) {
	_, ts, _ := newLiveServer(t, nil)
	code, body := post(t, ts, "/v1/mutate", "", `{"ops":[{"op":"insert_node","table":"paper","text":"x"}]}`)
	if code != 200 {
		t.Fatalf("mutate: %d %s", code, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Durable || mr.WALOffset != nil {
		t.Fatalf("WAL-less mutate claims durability: %+v", mr)
	}
	_, body, _ = get(t, ts, "/statusz", "")
	if strings.Contains(string(body), `"wal"`) {
		t.Fatalf("WAL-less statusz discloses a wal block: %s", body)
	}
}
