package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"banks/internal/api"
)

// TestErrorEnvelopeBothShapes pins the v1 error envelope on a real
// response: the new contract fields (error.code/field/detail) AND the
// legacy mirrors (top-level code, error.status, error.message) must both
// be present during the deprecation window, so neither old nor new
// clients break.
func TestErrorEnvelopeBothShapes(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/search?q=cite&bogus=1", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.Bytes())
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object: %s", rec.Body.Bytes())
	}
	// v1 contract.
	if e["code"] != api.CodeBadRequest {
		t.Fatalf("error.code = %v, want %q", e["code"], api.CodeBadRequest)
	}
	if e["field"] != "bogus" {
		t.Fatalf("error.field = %v, want bogus", e["field"])
	}
	if d, _ := e["detail"].(string); d == "" {
		t.Fatalf("error.detail missing: %s", rec.Body.Bytes())
	}
	// Legacy shape, kept during deprecation.
	if m["code"] != api.CodeBadRequest {
		t.Fatalf("legacy top-level code = %v, want %q", m["code"], api.CodeBadRequest)
	}
	if e["status"] != float64(http.StatusBadRequest) {
		t.Fatalf("legacy error.status = %v, want 400", e["status"])
	}
	if msg, _ := e["message"].(string); msg == "" {
		t.Fatalf("legacy error.message missing: %s", rec.Body.Bytes())
	}
}

// TestEmittedCodesRegistered pins that every code the server can emit is
// in the shared registry with a matching status.
func TestEmittedCodesRegistered(t *testing.T) {
	cases := []struct {
		code   string
		status int
	}{
		{api.CodeBadRequest, http.StatusBadRequest},
		{api.CodeBadOptions, http.StatusBadRequest},
		{api.CodeBatchTooLarge, http.StatusBadRequest},
		{api.CodeMutateTooLarge, http.StatusBadRequest},
		{api.CodeMethodNotAllowed, http.StatusMethodNotAllowed},
		{api.CodeOverCapacity, http.StatusTooManyRequests},
		{api.CodeTenantOverCapacity, http.StatusTooManyRequests},
		{api.CodeDeadlineExceeded, http.StatusGatewayTimeout},
		{api.CodeCanceled, http.StatusServiceUnavailable},
		{api.CodeInternal, http.StatusInternalServerError},
		{api.CodeNotMutable, http.StatusNotImplemented},
		{api.CodeMutateDenied, http.StatusForbidden},
		{api.CodeWALAppendFailed, http.StatusServiceUnavailable},
		{api.CodeCompactFailed, http.StatusInternalServerError},
	}
	for _, c := range cases {
		info, ok := api.Registry[c.code]
		if !ok {
			t.Errorf("code %q not in registry", c.code)
			continue
		}
		if info.Status != c.status {
			t.Errorf("registry status for %q = %d, server emits %d", c.code, info.Status, c.status)
		}
	}
}
