package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"banks/internal/api"
)

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqInfo is the per-request record handlers annotate (query ID, answer
// count, truncation) so the middleware can emit one complete log line
// after the response is written.
type reqInfo struct {
	id        uint64
	tenant    string
	queryID   string
	answers   int
	truncated bool
	// stream/firstAnswer annotate streaming requests: whether the request
	// streamed, and the wall-clock latency from handler start to the
	// first emitted answer (0 when no answer was emitted).
	stream      bool
	firstAnswer time.Duration
}

type reqInfoKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// knownRoutes are the paths the request-counter metric labels verbatim.
// Anything else — scanners probing /wp-login.php, typos, 404s — is
// bucketed as "other": every distinct path would otherwise mint a
// permanent metrics series, an unbounded memory and scrape-size leak on
// an exposed listener.
var knownRoutes = map[string]bool{
	"/v1/search": true, "/v1/search/stream": true, "/v1/batch": true,
	"/v1/near": true, "/v1/explain": true,
	"/v1/mutate": true, "/v1/compact": true,
	"/v1/replication/log": true, "/v1/replication/snapshot": true,
	"/healthz": true, "/statusz": true, "/metrics": true,
}

func metricsPath(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// instrument wraps the route mux with panic containment, per-request IDs,
// the request-counter metric, and (for /v1/ endpoints) one structured log
// line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := &reqInfo{id: s.reqSeq.Add(1), tenant: r.Header.Get("X-Tenant")}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				// A handler panic must not take the process (and every
				// other in-flight query) down with it.
				if s.logger != nil {
					s.logger.Printf("panic rid=%d %s %s: %v\n%s", info.id, r.Method, r.URL.Path, p, debug.Stack())
				}
				if sw.status == 0 {
					s.writeError(sw, &httpError{status: http.StatusInternalServerError,
						code: api.CodeInternal, message: "internal server error"})
				}
			}
			s.met.observeRequest(metricsPath(r.URL.Path), sw.status)
			if s.logger != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
				tenant := info.tenant
				if tenant == "" {
					tenant = "-"
				}
				qid := info.queryID
				if qid == "" {
					qid = "-"
				}
				first := ""
				if info.stream {
					first = fmt.Sprintf(" first=%s", info.firstAnswer.Round(time.Microsecond))
				}
				s.logger.Printf("rid=%d tenant=%s qid=%s %s %s %d %s answers=%d truncated=%v%s",
					info.id, tenant, qid, r.Method, r.URL.RequestURI(), sw.status,
					time.Since(start).Round(time.Microsecond), info.answers, info.truncated, first)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// admitted wraps a query handler with the admission gates: the global
// in-flight bound first, then the tenant's own quota (when its limits
// configure one). At capacity the request is rejected immediately with
// 429 and a Retry-After estimate instead of queueing without bound; the
// error code says which gate refused. The slot — global and tenant —
// is held until the handler returns, so a streaming response counts
// against both gates for its entire lifetime.
func (s *Server) admitted(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get("X-Tenant")
		quota := s.tenants.Resolve(tenant).MaxInFlight
		token, ok, byTenant := s.adm.tryAcquire(tenant, quota, s.tenants.Configured(tenant))
		if !ok {
			herr := &httpError{
				status:     http.StatusTooManyRequests,
				code:       api.CodeOverCapacity,
				message:    fmt.Sprintf("server is at its in-flight limit (%d); retry after the indicated delay", s.adm.limit),
				retryAfter: s.adm.retryAfterSeconds(),
			}
			if byTenant {
				herr.code = api.CodeTenantOverCapacity
				herr.message = fmt.Sprintf("tenant is at its in-flight limit (%d); retry after the indicated delay", quota)
			}
			s.writeError(w, herr)
			return
		}
		defer func() { s.adm.release(tenant, quota, token) }()
		next(w, r)
	}
}

// errorBody and errorJSON are the v1 error envelope, defined once in
// internal/api and shared with the router so the two surfaces cannot
// drift apart again.
type errorBody = api.ErrorEnvelope

type errorJSON = api.ErrorDetail

func (s *Server) writeError(w http.ResponseWriter, e *httpError) {
	w.Header().Set("Content-Type", "application/json")
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.WriteHeader(e.status)
	env := api.NewError(e.status, e.code, e.field, e.message)
	if s.v1ErrorsOnly {
		env = env.V1Only()
	}
	json.NewEncoder(w).Encode(env)
}

// writeJSON encodes the response body. An encode error at this point is a
// broken client connection — the status line is already out, so there is
// nothing useful left to report to the peer.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
