package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metrics is a minimal Prometheus-text-format exporter built on the
// standard library only (the repo deliberately takes no dependencies).
// It covers the serving layer: HTTP requests by path and status, queries
// by algorithm and outcome, a query-latency sum/count pair (enough for
// rate() and average-latency panels), and admission rejections. Engine
// and runtime gauges are appended at scrape time by the /metrics handler,
// which reads them from their owners instead of mirroring them here.
type metrics struct {
	mu sync.Mutex
	// requests["path|code"], queries["algo|outcome"].
	requests map[string]uint64
	queries  map[string]uint64
	qSecSum  float64
	qCount   uint64
	// Streaming delivery: total streams served, total answers emitted
	// across all streams, and a first-answer-latency sum/count pair over
	// streams that produced at least one answer — the interactive-latency
	// axis the paper's §5.2 generation-vs-output split is about.
	streams       uint64
	streamAnswers uint64
	faSecSum      float64
	faCount       uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		queries:  make(map[string]uint64),
	}
}

func (m *metrics) observeRequest(path string, code int) {
	m.mu.Lock()
	m.requests[path+"|"+strconv.Itoa(code)]++
	m.mu.Unlock()
}

// Query outcomes: every query the serving layer runs lands in exactly one.
const (
	outcomeOK        = "ok"
	outcomeTruncated = "truncated"
	outcomeError     = "error"
)

// observeQuery counts one query by algorithm and outcome. The latency
// summary covers only queries that executed (ok or truncated): errored
// queries never ran to produce a meaningful duration, and mixing zeros
// in would skew the average the sum/count pair exists to provide.
func (m *metrics) observeQuery(algo string, outcome string, elapsed time.Duration) {
	m.mu.Lock()
	m.queries[algo+"|"+outcome]++
	if outcome != outcomeError {
		m.qSecSum += elapsed.Seconds()
		m.qCount++
	}
	m.mu.Unlock()
}

// observeStream records one finished stream: how many answers it
// emitted, and (when it emitted any) the wall-clock latency from request
// handling start to its first answer.
func (m *metrics) observeStream(answers int, firstAnswer time.Duration) {
	m.mu.Lock()
	m.streams++
	m.streamAnswers += uint64(answers)
	if answers > 0 {
		m.faSecSum += firstAnswer.Seconds()
		m.faCount++
	}
	m.mu.Unlock()
}

// gauge is one instantaneous value appended at scrape time.
type gauge struct {
	name, help string
	value      float64
}

// counterExtra is one cumulative value owned elsewhere (engine cache,
// admission gate) exported alongside the handler-observed counters.
type counterExtra struct {
	name, help string
	value      uint64
}

// write renders the exposition in the Prometheus text format, with series
// sorted so scrapes are deterministic (and testable with string
// comparison).
func (m *metrics) write(w io.Writer, extraCounters []counterExtra, gauges []gauge) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	queries := make(map[string]uint64, len(m.queries))
	for k, v := range m.queries {
		queries[k] = v
	}
	qSecSum, qCount := m.qSecSum, m.qCount
	streams, streamAnswers := m.streams, m.streamAnswers
	faSecSum, faCount := m.faSecSum, m.faCount
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP banksd_http_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE banksd_http_requests_total counter")
	for _, k := range sortedKeys(requests) {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "banksd_http_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintln(w, "# HELP banksd_queries_total Search and near queries executed, by algorithm and outcome (ok, truncated, error).")
	fmt.Fprintln(w, "# TYPE banksd_queries_total counter")
	for _, k := range sortedKeys(queries) {
		algo, outcome, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "banksd_queries_total{algo=%q,outcome=%q} %d\n", algo, outcome, queries[k])
	}

	fmt.Fprintln(w, "# HELP banksd_query_duration_seconds Execution time of queries that produced results (ok or truncated); errored queries are excluded.")
	fmt.Fprintln(w, "# TYPE banksd_query_duration_seconds summary")
	fmt.Fprintf(w, "banksd_query_duration_seconds_sum %s\n", formatFloat(qSecSum))
	fmt.Fprintf(w, "banksd_query_duration_seconds_count %d\n", qCount)

	fmt.Fprintln(w, "# HELP banksd_first_answer_seconds Wall-clock latency from stream request start to its first emitted answer (streams that emitted at least one).")
	fmt.Fprintln(w, "# TYPE banksd_first_answer_seconds summary")
	fmt.Fprintf(w, "banksd_first_answer_seconds_sum %s\n", formatFloat(faSecSum))
	fmt.Fprintf(w, "banksd_first_answer_seconds_count %d\n", faCount)

	fmt.Fprintln(w, "# HELP banksd_streams_total Streaming search requests served to completion.")
	fmt.Fprintln(w, "# TYPE banksd_streams_total counter")
	fmt.Fprintf(w, "banksd_streams_total %d\n", streams)

	fmt.Fprintln(w, "# HELP banksd_stream_answers_total Answers emitted across all streams.")
	fmt.Fprintln(w, "# TYPE banksd_stream_answers_total counter")
	fmt.Fprintf(w, "banksd_stream_answers_total %d\n", streamAnswers)

	for _, c := range extraCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.value))
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
