package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Built-in serving limits, used where neither the tenant entry nor the
// config default overrides them. They are deliberately conservative: an
// interactive search should answer well under a second, and a single
// request should never monopolize the pool.
const (
	BuiltinMaxK           = 100
	BuiltinMaxWorkers     = 8
	BuiltinMaxTimeout     = 5 * time.Second
	BuiltinDefaultTimeout = 2 * time.Second
	BuiltinMaxBatch       = 16
	BuiltinMaxMutateOps   = 1000
)

// TenantLimits caps what one tenant's requests may ask for. The zero
// value of a field means "inherit": from the config's default entry for a
// named tenant, and from the built-in limits for the default entry
// itself.
type TenantLimits struct {
	// MaxK caps the requested answer count; larger requests are clamped.
	MaxK int `json:"max_k,omitempty"`
	// MaxWorkers caps requested intra-query workers; clamped.
	MaxWorkers int `json:"max_workers,omitempty"`
	// MaxTimeoutMS caps the per-request deadline in milliseconds; longer
	// requests are clamped.
	MaxTimeoutMS int64 `json:"max_timeout_ms,omitempty"`
	// DefaultTimeoutMS is the deadline applied when a request names none.
	DefaultTimeoutMS int64 `json:"default_timeout_ms,omitempty"`
	// MaxBatch caps the number of queries in one /v1/batch request;
	// larger batches are rejected (400), not clamped — silently dropping
	// queries from a batch would corrupt the positional result mapping.
	MaxBatch int `json:"max_batch,omitempty"`
	// MaxInFlight caps how many of this tenant's requests may be admitted
	// simultaneously (streams count for their full duration, so one
	// long-lived stream occupies quota until its last byte). Breaching
	// requests get an immediate 429 with Retry-After, like the global
	// gate. 0 inherits (default entry, then the built-in: no per-tenant
	// quota — the global admission limit alone applies). Disclosed in
	// /statusz under admission.tenants.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// AllowMutate gates POST /v1/mutate and /v1/compact for this tenant.
	// Mutations change state for every tenant, so the gate exists even
	// though read limits never refuse service. nil inherits (default
	// entry, then the built-in: allowed — single-tenant deployments work
	// out of the box; multi-tenant configs deny in the default entry and
	// allow the writer tenant explicitly).
	AllowMutate *bool `json:"allow_mutate,omitempty"`
	// MaxMutateOps caps the number of ops in one /v1/mutate batch; larger
	// batches are rejected (400), not clamped — applying a silently
	// truncated batch would desynchronize the caller's view of what was
	// written.
	MaxMutateOps int `json:"max_mutate_ops,omitempty"`
}

// MutateAllowed reports the effective mutation gate (nil means allowed).
func (l TenantLimits) MutateAllowed() bool {
	return l.AllowMutate == nil || *l.AllowMutate
}

// MaxTimeout returns the cap as a duration.
func (l TenantLimits) MaxTimeout() time.Duration {
	return time.Duration(l.MaxTimeoutMS) * time.Millisecond
}

// DefaultTimeout returns the default deadline as a duration.
func (l TenantLimits) DefaultTimeout() time.Duration {
	return time.Duration(l.DefaultTimeoutMS) * time.Millisecond
}

// overlay returns l with zero fields filled from base.
func (l TenantLimits) overlay(base TenantLimits) TenantLimits {
	if l.MaxK == 0 {
		l.MaxK = base.MaxK
	}
	if l.MaxWorkers == 0 {
		l.MaxWorkers = base.MaxWorkers
	}
	if l.MaxTimeoutMS == 0 {
		l.MaxTimeoutMS = base.MaxTimeoutMS
	}
	if l.DefaultTimeoutMS == 0 {
		l.DefaultTimeoutMS = base.DefaultTimeoutMS
	}
	if l.MaxBatch == 0 {
		l.MaxBatch = base.MaxBatch
	}
	if l.MaxInFlight == 0 {
		l.MaxInFlight = base.MaxInFlight
	}
	if l.AllowMutate == nil {
		l.AllowMutate = base.AllowMutate
	}
	if l.MaxMutateOps == 0 {
		l.MaxMutateOps = base.MaxMutateOps
	}
	return l
}

func (l TenantLimits) validate(who string) error {
	check := func(name string, v int64) error {
		if v < 0 {
			return fmt.Errorf("server: tenant config %s: %s must be non-negative, got %d", who, name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"max_k", int64(l.MaxK)},
		{"max_workers", int64(l.MaxWorkers)},
		{"max_timeout_ms", l.MaxTimeoutMS},
		{"default_timeout_ms", l.DefaultTimeoutMS},
		{"max_batch", int64(l.MaxBatch)},
		{"max_in_flight", int64(l.MaxInFlight)},
		{"max_mutate_ops", int64(l.MaxMutateOps)},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// builtinLimits is the hard floor every resolution chain ends in.
func builtinLimits() TenantLimits {
	return TenantLimits{
		MaxK:             BuiltinMaxK,
		MaxWorkers:       BuiltinMaxWorkers,
		MaxTimeoutMS:     BuiltinMaxTimeout.Milliseconds(),
		DefaultTimeoutMS: BuiltinDefaultTimeout.Milliseconds(),
		MaxBatch:         BuiltinMaxBatch,
		MaxMutateOps:     BuiltinMaxMutateOps,
	}
}

// TenantConfig maps tenant names (the X-Tenant request header) to serving
// limits. Requests without a header, or naming an unknown tenant, resolve
// to the default entry — serving is never refused for lack of tenant
// configuration, only capped.
//
// JSON schema (all fields optional, zero means inherit):
//
//	{
//	  "default": {"max_k": 50, "max_timeout_ms": 1000, "default_timeout_ms": 250},
//	  "tenants": {
//	    "analytics": {"max_k": 1000, "max_timeout_ms": 30000, "max_workers": 8},
//	    "autocomplete": {"max_k": 5, "max_timeout_ms": 50}
//	  }
//	}
type TenantConfig struct {
	Default TenantLimits            `json:"default"`
	Tenants map[string]TenantLimits `json:"tenants"`
}

// DefaultTenantConfig is the config used when none is supplied: every
// tenant gets the built-in limits.
func DefaultTenantConfig() *TenantConfig { return &TenantConfig{} }

// LoadTenants reads and validates a TenantConfig from a JSON file.
// Unknown fields are rejected so a typoed cap fails loudly at startup
// instead of silently not applying.
func LoadTenants(path string) (*TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: tenant config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var cfg TenantConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("server: tenant config %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks every entry for negative caps.
func (c *TenantConfig) Validate() error {
	if err := c.Default.validate("default"); err != nil {
		return err
	}
	for name, l := range c.Tenants {
		if name == "" {
			return fmt.Errorf("server: tenant config: empty tenant name")
		}
		if err := l.validate(fmt.Sprintf("tenants[%q]", name)); err != nil {
			return err
		}
	}
	return nil
}

// Resolve returns the effective limits for a tenant name: the tenant's
// entry overlaid on the default entry overlaid on the built-ins. Unknown
// or empty names resolve to the default chain. The resolved default
// deadline never exceeds the resolved cap: a tenant tightening
// max_timeout_ms without restating default_timeout_ms must not inherit a
// default above its own cap.
func (c *TenantConfig) Resolve(name string) TenantLimits {
	l := c.Default.overlay(builtinLimits())
	if name != "" {
		if t, ok := c.Tenants[name]; ok {
			l = t.overlay(l)
		}
	}
	if l.MaxTimeoutMS > 0 && l.DefaultTimeoutMS > l.MaxTimeoutMS {
		l.DefaultTimeoutMS = l.MaxTimeoutMS
	}
	return l
}

// Configured reports whether name has an explicit tenant entry (as
// opposed to resolving through the default chain). The admission layer
// uses it to decide which per-tenant gates may persist: explicit names
// are a bounded set, arbitrary header values are not.
func (c *TenantConfig) Configured(name string) bool {
	_, ok := c.Tenants[name]
	return ok
}

// Names lists the configured tenant names, sorted (for /statusz).
func (c *TenantConfig) Names() []string {
	names := make([]string, 0, len(c.Tenants))
	for n := range c.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
