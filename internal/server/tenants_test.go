package server

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testTenantConfig() *TenantConfig {
	return &TenantConfig{
		Default: TenantLimits{MaxK: 50, DefaultTimeoutMS: 1000},
		Tenants: map[string]TenantLimits{
			"autocomplete": {MaxK: 5, MaxTimeoutMS: 100, DefaultTimeoutMS: 50},
			"analytics":    {MaxK: 1000, MaxWorkers: 16, MaxTimeoutMS: 30000, MaxBatch: 64},
			"tight":        {MaxTimeoutMS: 100},
		},
	}
}

// TestTenantResolve: resolution overlays tenant → config default →
// built-ins, field by field.
func TestTenantResolve(t *testing.T) {
	cfg := testTenantConfig()
	cases := []struct {
		name   string
		tenant string
		want   TenantLimits
	}{
		{
			name:   "no header gets config default over builtins",
			tenant: "",
			want: TenantLimits{MaxK: 50, MaxWorkers: BuiltinMaxWorkers,
				MaxTimeoutMS: BuiltinMaxTimeout.Milliseconds(), DefaultTimeoutMS: 1000, MaxBatch: BuiltinMaxBatch, MaxMutateOps: BuiltinMaxMutateOps},
		},
		{
			name:   "unknown tenant falls back to default chain",
			tenant: "nobody",
			want: TenantLimits{MaxK: 50, MaxWorkers: BuiltinMaxWorkers,
				MaxTimeoutMS: BuiltinMaxTimeout.Milliseconds(), DefaultTimeoutMS: 1000, MaxBatch: BuiltinMaxBatch, MaxMutateOps: BuiltinMaxMutateOps},
		},
		{
			name:   "tight tenant overrides, inherits the rest",
			tenant: "autocomplete",
			want: TenantLimits{MaxK: 5, MaxWorkers: BuiltinMaxWorkers,
				MaxTimeoutMS: 100, DefaultTimeoutMS: 50, MaxBatch: BuiltinMaxBatch, MaxMutateOps: BuiltinMaxMutateOps},
		},
		{
			name:   "generous tenant may raise caps above builtins",
			tenant: "analytics",
			want: TenantLimits{MaxK: 1000, MaxWorkers: 16,
				MaxTimeoutMS: 30000, DefaultTimeoutMS: 1000, MaxBatch: 64, MaxMutateOps: BuiltinMaxMutateOps},
		},
		{
			// Tightening the cap without restating the default must pull
			// the inherited default (1000) under the new cap — otherwise
			// omitting a timeout would beat any legal value.
			name:   "inherited default deadline is bounded by the tenant cap",
			tenant: "tight",
			want: TenantLimits{MaxK: 50, MaxWorkers: BuiltinMaxWorkers,
				MaxTimeoutMS: 100, DefaultTimeoutMS: 100, MaxBatch: BuiltinMaxBatch, MaxMutateOps: BuiltinMaxMutateOps},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cfg.Resolve(tc.tenant); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Resolve(%q) = %+v, want %+v", tc.tenant, got, tc.want)
			}
		})
	}
}

// TestTenantClamping: requests above a cap are clamped (and the clamp
// disclosed), requests inside it run untouched.
func TestTenantClamping(t *testing.T) {
	cfg := testTenantConfig()
	cases := []struct {
		name        string
		tenant      string
		params      searchParams
		wantK       int
		wantWorkers int
		wantTimeout time.Duration
		wantClamped []string
	}{
		{
			name:        "k above tenant cap is clamped",
			tenant:      "autocomplete",
			params:      searchParams{Query: "database query", K: 100},
			wantK:       5,
			wantTimeout: 50 * time.Millisecond,
			wantClamped: []string{"k"},
		},
		{
			name:        "k inside the cap is untouched",
			tenant:      "autocomplete",
			params:      searchParams{Query: "database query", K: 3},
			wantK:       3,
			wantTimeout: 50 * time.Millisecond,
		},
		{
			name:        "timeout above the cap is clamped",
			tenant:      "autocomplete",
			params:      searchParams{Query: "database query", K: 3, TimeoutMS: 5000},
			wantK:       3,
			wantTimeout: 100 * time.Millisecond,
			wantClamped: []string{"timeout"},
		},
		{
			// An omitted k runs as core's default (10); a cap below that
			// must clamp it — the cap bounds the search, not the wire value.
			name:        "omitted k is clamped by a cap below the default",
			tenant:      "autocomplete",
			params:      searchParams{Query: "database query"},
			wantK:       5,
			wantTimeout: 50 * time.Millisecond,
			wantClamped: []string{"k"},
		},
		{
			name:        "workers above the default cap are clamped",
			tenant:      "",
			params:      searchParams{Query: "database query", Workers: 32},
			wantWorkers: BuiltinMaxWorkers,
			wantTimeout: time.Second,
			wantClamped: []string{"workers"},
		},
		{
			name:        "generous tenant keeps what default would clamp",
			tenant:      "analytics",
			params:      searchParams{Query: "database query", K: 500, Workers: 12, TimeoutMS: 20000},
			wantK:       500,
			wantWorkers: 12,
			wantTimeout: 20 * time.Second,
		},
		{
			name:        "unset timeout gets the tenant default deadline",
			tenant:      "",
			params:      searchParams{Query: "database query"},
			wantTimeout: time.Second,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, herr := tc.params.resolve(cfg.Resolve(tc.tenant))
			if herr != nil {
				t.Fatalf("resolve: %v", herr)
			}
			if req.Opts.K != tc.wantK {
				t.Errorf("K = %d, want %d", req.Opts.K, tc.wantK)
			}
			if req.Opts.Workers != tc.wantWorkers {
				t.Errorf("Workers = %d, want %d", req.Opts.Workers, tc.wantWorkers)
			}
			if req.Timeout != tc.wantTimeout {
				t.Errorf("Timeout = %v, want %v", req.Timeout, tc.wantTimeout)
			}
			if !reflect.DeepEqual(req.Clamped, tc.wantClamped) {
				t.Errorf("Clamped = %v, want %v", req.Clamped, tc.wantClamped)
			}
		})
	}
}

// TestTenantClampingOverHTTP: the clamp is visible in the response body,
// and negative (structurally invalid) values are NOT clamped — they reach
// core's typed validation and come back 400.
func TestTenantClampingOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: testTenantConfig()})

	code, body, _ := get(t, ts, "/v1/search?q=database+query&k=100", "autocomplete")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	resp := decodeSearchResponse(t, body)
	if resp.K != 5 {
		t.Fatalf("effective k %d, want tenant cap 5", resp.K)
	}
	if len(resp.Answers) > 5 {
		t.Fatalf("%d answers, want <= clamped k", len(resp.Answers))
	}
	if !reflect.DeepEqual(resp.Clamped, []string{"k"}) {
		t.Fatalf("clamped %v, want [k]", resp.Clamped)
	}

	// Same field, invalid instead of over-cap: typed 400, not a clamp.
	code, body, _ = get(t, ts, "/v1/search?q=database+query&k=-1", "autocomplete")
	if code != http.StatusBadRequest {
		t.Fatalf("negative k: status %d, want 400\n%s", code, body)
	}
}

func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json",
		`{"default":{"max_k":50},"tenants":{"a":{"max_k":5,"max_timeout_ms":100}}}`)
	cfg, err := LoadTenants(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Resolve("a").MaxK; got != 5 {
		t.Fatalf("loaded config: MaxK = %d, want 5", got)
	}

	cases := []struct {
		name, content string
	}{
		{"unknown field", `{"default":{"max_kk":50}}`},
		{"negative cap", `{"default":{"max_k":-2}}`},
		{"negative tenant cap", `{"tenants":{"a":{"max_batch":-1}}}`},
		{"not json", `max_k: 50`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write("bad.json", tc.content)
			if _, err := LoadTenants(p); err == nil {
				t.Fatalf("config %q accepted", tc.content)
			}
		})
	}

	if _, err := LoadTenants(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
