package server

import (
	"encoding/json"
	"net/http"
	"time"

	"banks"
)

// The /v1/search/stream endpoint: the same query surface as /v1/search,
// answered incrementally as NDJSON (application/x-ndjson) — one answer
// object per line the moment the search outputs it, then exactly one
// trailer line carrying the stats. The first byte of the first answer
// reaches the client while the search is still running, which is the
// paper's interactivity contract (§5.2 separates answer generation from
// answer output precisely so the system can emit early). See
// docs/STREAMING.md for the wire format.

// streamAnswerLine is one NDJSON answer line.
type streamAnswerLine struct {
	Type string `json:"type"` // always "answer"
	// Rank is the answer's 1-based position in the stream.
	Rank int `json:"rank"`
	// GeneratedMS/OutputMS are the §5.2 generation and output offsets of
	// this answer, in milliseconds from search start.
	GeneratedMS float64    `json:"generated_ms"`
	OutputMS    float64    `json:"output_ms"`
	Answer      answerJSON `json:"answer"`
}

// streamTrailerLine is the final NDJSON line of every stream.
type streamTrailerLine struct {
	Type    string   `json:"type"` // always "trailer"
	QueryID string   `json:"query_id"`
	Algo    string   `json:"algo"`
	K       int      `json:"k"`
	Clamped []string `json:"clamped,omitempty"`
	// Truncated reports the stream is a valid prefix, not the complete
	// top-k: the deadline cut the search (or delivery) short.
	Truncated bool `json:"truncated"`
	// Cached marks a stream replayed from the engine result cache.
	Cached bool `json:"cached,omitempty"`
	// Degraded marks a stream whose live per-answer delivery was
	// abandoned (drop-to-batch backpressure); content is unaffected.
	Degraded bool `json:"degraded,omitempty"`
	// Answers is the number of answer lines that preceded this trailer.
	Answers int `json:"answers"`
	// FirstAnswerMS is the first answer's output offset in milliseconds
	// from search start (the §5.2 first-output time); absent when the
	// stream emitted nothing. Always at most stats.duration_ms: the
	// first answer was emitted before the search completed.
	FirstAnswerMS *float64 `json:"first_answer_ms,omitempty"`
	// Error carries a post-launch search failure. The HTTP status is
	// already 200 by the time a stream fails, so in-band is the only
	// channel left; request validation errors still use plain HTTP
	// status codes, never this field.
	Error string    `json:"error,omitempty"`
	Stats statsJSON `json:"stats"`
}

// decodeStreamRequest decodes and tenant-resolves one /v1/search/stream
// query. The stream endpoint accepts exactly the /v1/search parameter
// surface — same strict decoding, same tenant clamps — so asking for a
// stream can never smuggle k, workers or a deadline past the tenant
// caps. It is a separate seam (and fuzz target: FuzzDecodeStreamRequest)
// so the stream surface can diverge later without loosening /v1/search.
func decodeStreamRequest(r *http.Request, lim TenantLimits) (*searchRequest, *httpError) {
	return decodeSearchRequest(r, lim)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s *Server) handleSearchStream(w http.ResponseWriter, r *http.Request) {
	req, herr := decodeStreamRequest(r, s.limits(r))
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel := queryCtx(r, req.Timeout)
	defer cancel()
	st, err := s.eng.SearchStream(ctx, req.Query, req.Algo, req.Opts,
		banks.StreamOptions{DropToBatch: s.streamDropToBatch})
	if err != nil {
		s.met.observeQuery(string(req.Algo), outcomeError, 0)
		annotate(r, req.queryID(), 0, false)
		s.writeError(w, mapQueryError(err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	// writeLine encodes one NDJSON line and flushes it to the wire — the
	// flush is what makes the answer reach the client now instead of
	// whenever the buffer fills. A write error means the client went
	// away: cancel the query so the search stops generating, but keep
	// draining the stream (the producer needs a reader until it notices
	// the cancellation).
	clientGone := false
	writeLine := func(v any) {
		if clientGone {
			return
		}
		if err := enc.Encode(v); err != nil {
			clientGone = true
			cancel()
			return
		}
		_ = rc.Flush()
	}

	start := time.Now()
	answers := 0
	var firstWall time.Duration // request-relative, for metrics/logs
	var firstOut float64        // search-relative, for the trailer
	for ev := range st.Answers() {
		answers++
		if answers == 1 {
			firstWall = time.Since(start)
			firstOut = ms(ev.OutputAt)
		}
		writeLine(streamAnswerLine{
			Type:        "answer",
			Rank:        ev.Rank,
			GeneratedMS: ms(ev.Answer.GeneratedAt),
			OutputMS:    ms(ev.OutputAt),
			Answer:      s.answerJSON(ev.Answer),
		})
	}
	tr, terr := st.Trailer()

	trailer := streamTrailerLine{
		Type:      "trailer",
		QueryID:   req.queryID(),
		Algo:      string(req.Algo),
		K:         req.Opts.Normalized().K,
		Clamped:   req.Clamped,
		Truncated: tr.Truncated,
		Cached:    tr.Cached,
		Degraded:  tr.Degraded,
		Answers:   answers,
		Stats:     s.statsJSON(tr.Stats),
	}
	if answers > 0 {
		trailer.FirstAnswerMS = &firstOut
	}
	if terr != nil {
		trailer.Error = terr.Error()
		s.met.observeQuery(string(req.Algo), outcomeError, 0)
	} else {
		outcome := outcomeOK
		if tr.Truncated {
			outcome = outcomeTruncated
		}
		s.met.observeQuery(string(req.Algo), outcome, tr.Stats.Duration)
	}
	writeLine(trailer)
	s.met.observeStream(answers, firstWall)

	if info := infoFrom(r.Context()); info != nil {
		info.queryID = req.queryID()
		info.answers = answers
		info.truncated = tr.Truncated
		info.stream = true
		info.firstAnswer = firstWall
	}
}
