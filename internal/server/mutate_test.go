package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"banks"
)

// newLiveServer builds a mutable server: its own engine over the shared
// DB, live mutations enabled, compaction writing under a test dir.
func newLiveServer(t *testing.T, tenants *TenantConfig) (*Server, *httptest.Server, *banks.Live) {
	t.Helper()
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := banks.OpenLive(eng, banks.LiveOptions{
		SnapshotPath: filepath.Join(t.TempDir(), "live.banksnap"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tenants == nil {
		tenants = generousTenants()
	}
	s, err := New(Config{Engine: eng, DB: db, Live: live, Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, live
}

// TestMutateEndToEnd: a mutation applied over HTTP is visible to the next
// search, the inserted node renders with a synthetic label, compaction
// over HTTP advances the generation, and the mutations survive it.
func TestMutateEndToEnd(t *testing.T) {
	_, ts, _ := newLiveServer(t, nil)

	code, body := post(t, ts, "/v1/mutate", "", `{"ops":[
		{"op":"insert_node","table":"paper","text":"zephyrqux overlay search"},
		{"op":"insert_node","table":"paper","text":"zephyrqux generation test"}
	]}`)
	if code != 200 {
		t.Fatalf("mutate: %d %s", code, body)
	}
	var mr mutateResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 2 || len(mr.Assigned) != 2 || mr.DeltaVersion != 1 {
		t.Fatalf("mutate response: %+v", mr)
	}

	// Link the two new nodes so a two-keyword search can connect them.
	code, body = post(t, ts, "/v1/mutate", "", fmt.Sprintf(
		`{"ops":[{"op":"insert_edge","from":%d,"to":%d,"weight":1}]}`, mr.Assigned[0], mr.Assigned[1]))
	if code != 200 {
		t.Fatalf("mutate edge: %d %s", code, body)
	}

	code, body, _ = get(t, ts, "/v1/search?q=zephyrqux+generation", "")
	if code != 200 {
		t.Fatalf("search: %d %s", code, body)
	}
	sr := decodeSearchResponse(t, body)
	if len(sr.Answers) == 0 {
		t.Fatalf("search does not see the mutation: %s", body)
	}
	if !strings.Contains(sr.Answers[0].RootLabel, "paper[+") {
		t.Fatalf("inserted node lacks synthetic label: %q", sr.Answers[0].RootLabel)
	}

	code, body = post(t, ts, "/v1/compact", "", "")
	if code != 200 {
		t.Fatalf("compact: %d %s", code, body)
	}
	var cr compactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Generation != 1 || cr.Path == "" {
		t.Fatalf("compact response: %+v", cr)
	}

	// The compacted base must still answer the query identically.
	code, body, _ = get(t, ts, "/v1/search?q=zephyrqux+generation", "")
	if code != 200 {
		t.Fatalf("post-compact search: %d %s", code, body)
	}
	sr2 := decodeSearchResponse(t, body)
	if len(sr2.Answers) != len(sr.Answers) || sr2.Answers[0].Score != sr.Answers[0].Score {
		t.Fatalf("compaction changed the answer: %+v vs %+v", sr2.Answers, sr.Answers)
	}

	// /statusz discloses the new generation and the reset delta.
	code, body, _ = get(t, ts, "/statusz", "")
	if code != 200 {
		t.Fatalf("statusz: %d", code)
	}
	var st struct {
		Live *liveJSON `json:"live"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Live == nil {
		t.Fatal("statusz carries no live block")
	}
	if st.Live.Generation != 1 || st.Live.DeltaVersion != 0 || st.Live.MutationsTotal != 3 || st.Live.CompactionsTotal != 1 {
		t.Fatalf("statusz live block: %+v", st.Live)
	}

	// /metrics exposes the mutation counters and delta gauges.
	code, body, _ = get(t, ts, "/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"banksd_mutations_total 3",
		"banksd_compactions_total 1",
		"banksd_generation 1",
		"banksd_delta_nodes 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMutateValidation: structural rejects (400) and semantic rejects
// from the delta layer (400 with the op index) both leave state
// untouched.
func TestMutateValidation(t *testing.T) {
	_, ts, live := newLiveServer(t, nil)
	cases := []struct {
		name, body string
	}{
		{"empty batch", `{"ops":[]}`},
		{"unknown kind", `{"ops":[{"op":"upsert_node","table":"x"}]}`},
		{"unknown field", `{"ops":[{"op":"insert_node","table":"x","weight_x":1}]}`},
		{"missing weight", `{"ops":[{"op":"insert_edge","from":0,"to":1}]}`},
		{"negative node", `{"ops":[{"op":"delete_node","node":-1}]}`},
		{"edge type overflow", `{"ops":[{"op":"insert_edge","from":0,"to":1,"weight":1,"edge_type":70000}]}`},
		{"semantic: self loop", `{"ops":[{"op":"insert_edge","from":3,"to":3,"weight":1}]}`},
		{"semantic: node out of range", `{"ops":[{"op":"delete_node","node":99999999}]}`},
		{"semantic: bad weight", `{"ops":[{"op":"insert_edge","from":0,"to":1,"weight":0}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(t, ts, "/v1/mutate", "", tc.body)
			if code != 400 {
				t.Fatalf("%s: got %d %s, want 400", tc.name, code, body)
			}
		})
	}
	if st := live.Stats(); st.DeltaVersion != 0 || st.MutationsTotal != 0 {
		t.Fatalf("rejected batches mutated state: %+v", st)
	}
}

// TestMutateTenantGate: a tenant with allow_mutate=false gets 403 from
// both mutation endpoints; an allowed tenant's op cap binds.
func TestMutateTenantGate(t *testing.T) {
	deny := false
	tenants := generousTenants()
	tenants.Tenants = map[string]TenantLimits{
		"reader": {AllowMutate: &deny},
		"writer": {MaxMutateOps: 1},
	}
	_, ts, _ := newLiveServer(t, tenants)

	body := `{"ops":[{"op":"insert_node","table":"paper","text":"x"}]}`
	if code, b := post(t, ts, "/v1/mutate", "reader", body); code != 403 {
		t.Fatalf("denied tenant mutate: %d %s", code, b)
	}
	if code, b := post(t, ts, "/v1/compact", "reader", ""); code != 403 {
		t.Fatalf("denied tenant compact: %d %s", code, b)
	}
	two := `{"ops":[{"op":"insert_node","table":"p","text":"a"},{"op":"insert_node","table":"p","text":"b"}]}`
	if code, b := post(t, ts, "/v1/mutate", "writer", two); code != 400 || !strings.Contains(string(b), "mutate_too_large") {
		t.Fatalf("op cap: %d %s", code, b)
	}
	if code, _ := post(t, ts, "/v1/mutate", "writer", body); code != 200 {
		t.Fatalf("allowed tenant: %d", code)
	}
}

// TestMutateReadOnly: a server without Live answers 501 on both mutation
// endpoints and carries no live disclosure.
func TestMutateReadOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, b := post(t, ts, "/v1/mutate", "", `{"ops":[{"op":"delete_node","node":0}]}`); code != 501 {
		t.Fatalf("mutate on read-only server: %d %s", code, b)
	}
	if code, _ := post(t, ts, "/v1/compact", "", ""); code != 501 {
		t.Fatal("compact on read-only server should 501")
	}
	_, body, _ := get(t, ts, "/statusz", "")
	if strings.Contains(string(body), `"live"`) {
		t.Fatal("read-only statusz discloses a live block")
	}
}
