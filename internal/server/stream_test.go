package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"banks"
)

// parseStreamBody splits an NDJSON stream body into its answer lines and
// the trailer, asserting the framing invariants: every line parses, all
// but the last are answers with ranks 1..n, the last is the trailer.
func parseStreamBody(t *testing.T, body []byte) ([]streamAnswerLine, streamTrailerLine) {
	t.Helper()
	var answers []streamAnswerLine
	var trailer streamTrailerLine
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatalf("empty stream body:\n%s", body)
	}
	for i, line := range lines[:len(lines)-1] {
		var a streamAnswerLine
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		if a.Type != "answer" {
			t.Fatalf("line %d has type %q, want answer", i, a.Type)
		}
		if a.Rank != i+1 {
			t.Fatalf("line %d has rank %d", i, a.Rank)
		}
		answers = append(answers, a)
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal([]byte(last), &trailer); err != nil {
		t.Fatalf("trailer does not parse: %v\n%s", err, last)
	}
	if trailer.Type != "trailer" {
		t.Fatalf("last line has type %q, want trailer\n%s", trailer.Type, last)
	}
	return answers, trailer
}

// TestStreamEndToEnd proves the wire contract: NDJSON content type,
// answer lines in rank order bit-matching the batch endpoint's answers,
// and a trailer consistent with the batch response.
func TestStreamEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, batchBody, _ := get(t, ts, "/v1/search?q=database+query&k=3", "")
	if code != http.StatusOK {
		t.Fatalf("batch status %d\n%s", code, batchBody)
	}
	batch := decodeSearchResponse(t, batchBody)

	code, body, hdr := get(t, ts, "/v1/search/stream?q=database+query&k=3", "")
	if code != http.StatusOK {
		t.Fatalf("stream status %d\n%s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	answers, trailer := parseStreamBody(t, body)
	if len(answers) != len(batch.Answers) {
		t.Fatalf("stream has %d answers, batch %d", len(answers), len(batch.Answers))
	}
	for i, a := range answers {
		b := batch.Answers[i]
		if a.Answer.Root != b.Root || a.Answer.Score != b.Score || a.Answer.RootLabel != b.RootLabel {
			t.Fatalf("stream answer %d diverged from batch: %+v vs %+v", i, a.Answer, b)
		}
		if a.OutputMS < a.GeneratedMS {
			t.Fatalf("answer %d output %.3fms before generation %.3fms", i, a.OutputMS, a.GeneratedMS)
		}
	}
	if trailer.QueryID != batch.QueryID {
		t.Fatalf("trailer query id %q, batch %q", trailer.QueryID, batch.QueryID)
	}
	if trailer.Truncated {
		t.Fatal("trailer reports truncation")
	}
	if trailer.Answers != len(answers) {
		t.Fatalf("trailer counts %d answers, stream has %d", trailer.Answers, len(answers))
	}
	if trailer.FirstAnswerMS == nil {
		t.Fatal("trailer missing first_answer_ms")
	}
	// First-answer latency is strictly inside the search duration: the
	// first answer was on the wire before the search finished.
	if *trailer.FirstAnswerMS > trailer.Stats.DurationMS {
		t.Fatalf("first answer at %.3fms after completion at %.3fms",
			*trailer.FirstAnswerMS, trailer.Stats.DurationMS)
	}
	if trailer.K != 3 || trailer.Algo != string(banks.Bidirectional) {
		t.Fatalf("trailer identity wrong: %+v", trailer)
	}
}

// TestStreamTenantClamping proves caps apply to streams exactly as to
// batch searches, with the clamp disclosed in the trailer.
func TestStreamTenantClamping(t *testing.T) {
	_, ts := newTestServer(t, Config{Tenants: &TenantConfig{
		Default: TenantLimits{MaxK: 2, MaxTimeoutMS: 5000, DefaultTimeoutMS: 2000},
	}})
	code, body, _ := get(t, ts, "/v1/search/stream?q=database+query&k=500", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	answers, trailer := parseStreamBody(t, body)
	if len(answers) > 2 {
		t.Fatalf("clamped stream delivered %d answers", len(answers))
	}
	if len(trailer.Clamped) != 1 || trailer.Clamped[0] != "k" {
		t.Fatalf("clamp not disclosed: %+v", trailer.Clamped)
	}
	if trailer.K != 2 {
		t.Fatalf("trailer k = %d, want 2", trailer.K)
	}
}

// TestStreamBadRequests: validation failures happen before any NDJSON is
// written and use the plain JSON error envelope.
func TestStreamBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{
		"/v1/search/stream",                     // no query
		"/v1/search/stream?q=db&algo=nope",      // unknown algorithm
		"/v1/search/stream?q=db&bogus=1",        // unknown parameter
		"/v1/search/stream?q=db&workers=-1",     // core-invalid option
		"/v1/search/stream?q=db&timeout=banana", // malformed timeout
	} {
		code, body, hdr := get(t, ts, path, "")
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400\n%s", path, code, body)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: error content type %q", path, ct)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code == "" {
			t.Fatalf("%s: bad error body: %s", path, body)
		}
	}
}

// TestStreamDeadlineTruncates: a stream under a tiny deadline ends
// cleanly with a trailer disclosing truncation, mirroring the batch
// endpoint's 200 + truncated contract.
func TestStreamDeadlineTruncates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The batch endpoint's truncation test uses the same shape: a heavy
	// query (big k, all algorithms are fine) with a microscopic timeout.
	code, body, _ := get(t, ts, "/v1/search/stream?q=database+query+optimization&k=2000&timeout=1", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	_, trailer := parseStreamBody(t, body)
	if !trailer.Truncated {
		t.Fatal("1ms stream was not truncated")
	}
}

// TestStreamCacheReplay: a stream after an identical batch query replays
// the cached result and says so.
func TestStreamCacheReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, body, _ := get(t, ts, "/v1/search?q=gray+transaction&k=2", ""); code != http.StatusOK {
		t.Fatalf("warm-up status %d\n%s", code, body)
	}
	code, body, _ := get(t, ts, "/v1/search/stream?q=gray+transaction&k=2", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	_, trailer := parseStreamBody(t, body)
	if !trailer.Cached {
		t.Fatal("stream after identical batch query was not served from cache")
	}
}

// TestTenantQuota is the per-tenant admission acceptance scenario: with
// max_in_flight 1 for tenant "limited", one pinned request fills the
// quota; the tenant's next request gets 429 tenant_over_capacity with
// Retry-After while other tenants still get through; the quota frees on
// completion; and /statusz discloses the quota.
func TestTenantQuota(t *testing.T) {
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &TenantConfig{
		Default: generousTenants().Default,
		Tenants: map[string]TenantLimits{"limited": {MaxInFlight: 1}},
	}
	s, ts := newTestServer(t, Config{Engine: eng, DB: db, Tenants: cfg, MaxInFlight: 8})

	pinned := startPinnedRequest(t, ts, "limited")
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.inFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pinned request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Same tenant, quota full: immediate 429 with the tenant-specific code.
	code, body, hdr := get(t, ts, "/v1/search?q=database&k=1", "limited")
	if code != http.StatusTooManyRequests {
		t.Fatalf("quota breach: status %d\n%s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("tenant 429 without Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != "tenant_over_capacity" {
		t.Fatalf("bad tenant 429 body: %s", body)
	}

	// A different tenant is unaffected (global gate has room).
	if code, body, _ := get(t, ts, "/v1/search?q=database&k=1", "other"); code != http.StatusOK {
		t.Fatalf("other tenant: status %d\n%s", code, body)
	}

	// Streams occupy the quota too: a stream request from the tenant is
	// rejected the same way.
	if code, body, _ := get(t, ts, "/v1/search/stream?q=database&k=1", "limited"); code != http.StatusTooManyRequests {
		t.Fatalf("stream past quota: status %d\n%s", code, body)
	}

	// /statusz discloses the quota and the live usage.
	code, body, _ = get(t, ts, "/statusz", "")
	if code != http.StatusOK {
		t.Fatalf("statusz status %d", code)
	}
	var status struct {
		Admission struct {
			TenantRejected uint64                         `json:"tenant_rejected"`
			Tenants        map[string]tenantAdmissionJSON `json:"tenants"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("statusz does not parse: %v", err)
	}
	lim, ok := status.Admission.Tenants["limited"]
	if !ok {
		t.Fatalf("statusz does not disclose the limited tenant: %s", body)
	}
	if lim.MaxInFlight != 1 || lim.InFlight != 1 || lim.Rejected < 2 {
		t.Fatalf("statusz tenant state %+v", lim)
	}
	if status.Admission.TenantRejected < 2 {
		t.Fatalf("tenant_rejected = %d, want >= 2", status.Admission.TenantRejected)
	}

	// Completing the pinned request frees the quota.
	if out := pinned.finish(t); out.err != nil || out.code != http.StatusOK {
		t.Fatalf("pinned request: %+v", out)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		code, _, _ := get(t, ts, "/v1/search?q=database&k=1", "limited")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota never freed (last status %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTenantGatePruning pins the bounded-memory property of the
// per-tenant gates: names that are not explicitly configured (they
// merely inherit a default-chain quota) are pruned once idle — the
// X-Tenant header is attacker-controlled and must not mint permanent
// map entries — while configured names persist so /statusz keeps their
// rejection history.
func TestTenantGatePruning(t *testing.T) {
	a := newAdmission(8)
	// Spoofed name under an inherited quota: admitted, trips the quota
	// once, then goes idle → pruned despite the recorded rejection.
	tok, ok, _ := a.tryAcquire("spoofed-123", 1, false)
	if !ok {
		t.Fatal("first spoofed request refused")
	}
	if _, ok, byTenant := a.tryAcquire("spoofed-123", 1, false); ok || !byTenant {
		t.Fatalf("quota breach not rejected by tenant gate (ok=%v byTenant=%v)", ok, byTenant)
	}
	a.release("spoofed-123", 1, tok)
	if snap := a.tenantSnapshot(); snap != nil {
		t.Fatalf("idle unconfigured gate survived: %+v", snap)
	}
	if a.tenantRejectedTotal() != 1 {
		t.Fatalf("aggregate tenant rejections = %d, want 1", a.tenantRejectedTotal())
	}
	// Configured name: the gate persists across idleness with its count.
	tok, ok, _ = a.tryAcquire("limited", 1, true)
	if !ok {
		t.Fatal("configured tenant refused")
	}
	if _, ok, _ := a.tryAcquire("limited", 1, true); ok {
		t.Fatal("configured quota breach admitted")
	}
	a.release("limited", 1, tok)
	snap := a.tenantSnapshot()
	if st, ok := snap["limited"]; !ok || st.Rejected != 1 || st.InFlight != 0 {
		t.Fatalf("configured gate lost after idle: %+v", snap)
	}
}

// TestStreamMetrics: serving a stream moves the streaming counters and
// the first-answer summary.
func TestStreamMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, body, _ := get(t, ts, "/v1/search/stream?q=database+query&k=2", ""); code != http.StatusOK {
		t.Fatalf("stream status %d\n%s", code, body)
	}
	code, body, _ := get(t, ts, "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"banksd_streams_total 1",
		"banksd_first_answer_seconds_count 1",
		"banksd_stream_answers_total 2",
		"banksd_admission_tenant_rejected_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(string(body), fmt.Sprintf("banksd_http_requests_total{path=%q,code=%q}", "/v1/search/stream", "200")) {
		t.Fatalf("stream route not counted:\n%s", body)
	}
}
