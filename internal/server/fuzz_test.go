package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"banks"
	"banks/internal/core"
)

// FuzzDecodeSearchRequest throws arbitrary bytes at the /v1/search
// decoder through both transports (URL query string and JSON body) and
// checks the decoder's contract: it never panics, and whatever it
// accepts respects the tenant clamps — no fuzz input may smuggle a k,
// worker count or deadline past the caps, because those caps are the
// serving layer's overload defense.
func FuzzDecodeSearchRequest(f *testing.F) {
	seeds := []string{
		"q=database+query&k=3",
		"q=gray+transaction&algo=mi-backward&workers=4&timeout=250ms",
		"q=a&k=999999&workers=999999&timeout=9999999",
		"q=%21%21%21",
		"q=db&kk=3",
		"q=db&mu=1.5&lambda=-1&dmax=-2&max_nodes=-1",
		"q=db&strict_bound=true&activation_sum=1",
		"q=db&mu=NaN&lambda=Inf",
		"q=db&timeout=10000000000000",
		`{"query":"db","timeout_ms":10000000000000}`,
		`{"query":"database query","k":3}`,
		`{"query":"db","algo":"si-backward","timeout_ms":100,"workers":2}`,
		`{"query":"db","kk":1}`,
		`{"query":"db"} trailing`,
		`{"query":"` + strings.Repeat("w ", 40) + `"}`,
		`[1,2,3]`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}

	// MaxK below core.DefaultK on purpose: an omitted k runs as the
	// default, and the cap must bind that too, not just explicit values.
	lim := TenantLimits{MaxK: 5, MaxWorkers: 3, MaxTimeoutMS: 500, DefaultTimeoutMS: 200, MaxBatch: 4}

	f.Fuzz(func(t *testing.T, data string, asJSON bool) {
		var r *http.Request
		if asJSON {
			r = httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(data))
		} else {
			// Raw fuzz data lands in RawQuery exactly as a client could
			// send it on the wire (the URL parser has its own fuzzing;
			// here it is just transport).
			r = httptest.NewRequest(http.MethodGet, "/v1/search", nil)
			r.URL.RawQuery = data
		}
		req, herr := decodeSearchRequest(r, lim)
		if herr != nil {
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("decode failure with non-4xx status %d (%s)", herr.status, herr.message)
			}
			if herr.message == "" || herr.code == "" {
				t.Fatalf("error without message/code: %+v", herr)
			}
			return
		}

		// Accepted requests are executable and inside the tenant caps.
		if len(req.Terms) == 0 || len(req.Terms) > core.MaxKeywords {
			t.Fatalf("accepted %d terms", len(req.Terms))
		}
		if !knownAlgo(req.Algo) {
			t.Fatalf("accepted unknown algorithm %q", req.Algo)
		}
		if req.Opts.K > lim.MaxK {
			t.Fatalf("k %d escaped the cap %d", req.Opts.K, lim.MaxK)
		}
		// The cap binds the k the search runs with, defaults included.
		if effK := req.Opts.Normalized().K; effK > lim.MaxK {
			t.Fatalf("normalized k %d escaped the cap %d", effK, lim.MaxK)
		}
		if req.Opts.Workers > lim.MaxWorkers {
			t.Fatalf("workers %d escaped the cap %d", req.Opts.Workers, lim.MaxWorkers)
		}
		if req.Timeout <= 0 || req.Timeout > lim.MaxTimeout() {
			t.Fatalf("timeout %v outside (0, %v]", req.Timeout, lim.MaxTimeout())
		}
		// The stable ID must be derivable for anything accepted.
		if id := req.queryID(); !strings.HasPrefix(id, "q-") || len(id) != 18 {
			t.Fatalf("bad query id %q", id)
		}
	})
}

// FuzzDecodeStreamRequest throws the same arbitrary inputs at the
// /v1/search/stream decoder: the stream endpoint must be exactly as
// strict as /v1/search — no panic, and no accepted request may smuggle a
// k, worker count or deadline past the tenant caps by asking for a
// stream instead of a batch response. The per-tenant in-flight quota is
// enforced at admission (before decoding), so the decoder contract here
// is the caps themselves.
func FuzzDecodeStreamRequest(f *testing.F) {
	seeds := []string{
		"q=database+query&k=3",
		"q=gray+transaction&algo=mi-backward&workers=4&timeout=250ms",
		"q=a&k=999999&workers=999999&timeout=9999999",
		"q=db&strict_bound=true&activation_sum=1",
		"q=db&mu=NaN&lambda=Inf",
		`{"query":"database query","k":3}`,
		`{"query":"db","algo":"si-backward","timeout_ms":100,"workers":2}`,
		`{"query":"db","buffer":64}`, // not a stream parameter: must 400
		`{"query":"db","drop_to_batch":true}`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}

	lim := TenantLimits{MaxK: 5, MaxWorkers: 3, MaxTimeoutMS: 500, DefaultTimeoutMS: 200, MaxBatch: 4, MaxInFlight: 2}

	f.Fuzz(func(t *testing.T, data string, asJSON bool) {
		var r *http.Request
		if asJSON {
			r = httptest.NewRequest(http.MethodPost, "/v1/search/stream", strings.NewReader(data))
		} else {
			r = httptest.NewRequest(http.MethodGet, "/v1/search/stream", nil)
			r.URL.RawQuery = data
		}
		req, herr := decodeStreamRequest(r, lim)
		if herr != nil {
			if req != nil {
				t.Fatal("decoder returned both a request and an error")
			}
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("decode failure with non-4xx status %d (%s)", herr.status, herr.message)
			}
			return
		}
		if len(req.Terms) == 0 || len(req.Terms) > core.MaxKeywords {
			t.Fatalf("accepted %d terms", len(req.Terms))
		}
		if !knownAlgo(req.Algo) {
			t.Fatalf("accepted unknown algorithm %q", req.Algo)
		}
		if effK := req.Opts.Normalized().K; effK > lim.MaxK {
			t.Fatalf("normalized k %d escaped the cap %d", effK, lim.MaxK)
		}
		if req.Opts.Workers > lim.MaxWorkers {
			t.Fatalf("workers %d escaped the cap %d", req.Opts.Workers, lim.MaxWorkers)
		}
		if req.Timeout <= 0 || req.Timeout > lim.MaxTimeout() {
			t.Fatalf("timeout %v outside (0, %v]", req.Timeout, lim.MaxTimeout())
		}
		// Accepted stream requests never carry callbacks from the wire:
		// the emission seam belongs to the engine, not the client.
		if req.Opts.Emit != nil || req.Opts.EmitNear != nil || req.Opts.EdgeFilter != nil || req.Opts.EdgePriority != nil {
			t.Fatal("wire request smuggled a callback into Options")
		}
	})
}

// FuzzDecodeBatchRequest does the same for the batch decoder: no panics,
// and every accepted batch respects MaxBatch and the per-element caps.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(`{"queries":[{"query":"database query","k":3}]}`)
	f.Add(`{"queries":[{"query":"a"},{"query":"b"},{"query":"c"},{"query":"d"},{"query":"e"}]}`)
	f.Add(`{"timeout_ms":100,"queries":[{"query":"db","workers":99}]}`)
	f.Add(`{"queries":[{"query":"db","timeout_ms":5}]}`)
	f.Add(`{"queries":[]}`)
	f.Add(`not json`)

	lim := TenantLimits{MaxK: 5, MaxWorkers: 3, MaxTimeoutMS: 500, DefaultTimeoutMS: 200, MaxBatch: 4}

	f.Fuzz(func(t *testing.T, data string) {
		r := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(data))
		reqs, timeout, _, herr := decodeBatchRequest(r, lim)
		if herr != nil {
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("decode failure with non-4xx status %d", herr.status)
			}
			return
		}
		if len(reqs) == 0 || len(reqs) > lim.MaxBatch {
			t.Fatalf("accepted batch of %d outside (0, %d]", len(reqs), lim.MaxBatch)
		}
		if timeout <= 0 || timeout > time.Duration(lim.MaxTimeoutMS)*time.Millisecond {
			t.Fatalf("batch timeout %v outside caps", timeout)
		}
		for i, req := range reqs {
			if req == nil {
				t.Fatalf("nil element %d in accepted batch", i)
			}
			if effK := req.Opts.Normalized().K; effK > lim.MaxK || req.Opts.Workers > lim.MaxWorkers {
				t.Fatalf("element %d escaped caps: %+v", i, req.Opts)
			}
		}
	})
}

// FuzzDecodeMutateRequest throws arbitrary bytes at the /v1/mutate
// decoder: it never panics, and nothing it accepts can smuggle a value
// past the wire caps — batches stay within the tenant op limit, node IDs
// within the int32 NodeID domain, edge types within uint16, and every op
// carries the fields its kind requires. Weights are finite by JSON
// construction. Semantic validity (node exists, not tombstoned) is the
// delta layer's job and out of scope here.
func FuzzDecodeMutateRequest(f *testing.F) {
	seeds := []string{
		`{"ops":[{"op":"insert_node","table":"paper","text":"keyword search"}]}`,
		`{"ops":[{"op":"insert_edge","from":1,"to":2,"weight":1.5,"edge_type":3}]}`,
		`{"ops":[{"op":"delete_node","node":0}]}`,
		`{"ops":[{"op":"delete_edge","from":0,"to":0}]}`,
		`{"ops":[{"op":"insert_term","node":5,"term":"banks"}]}`,
		`{"ops":[{"op":"delete_term","node":5,"term":"banks"}]}`,
		`{"ops":[{"op":"insert_edge","from":-1,"to":99999999999,"weight":1}]}`,
		`{"ops":[{"op":"insert_edge","from":1,"to":2,"weight":1,"edge_type":65536}]}`,
		`{"ops":[{"op":"insert_edge","from":1,"to":2}]}`,
		`{"ops":[{"op":"nonsense"}]}`,
		`{"ops":[{"op":"insert_node"}]}`,
		`{"ops":[{"op":"insert_term","node":1}]}`,
		`{"ops":[]}`,
		`{"ops":[{"op":"delete_node","node":1},{"op":"delete_node","node":2},{"op":"delete_node","node":3}]}`,
		`{"oops":[]}`,
		`{"ops":[{"op":"delete_node","node":1}]} trailing`,
		`not json`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	const maxOps = 2

	f.Fuzz(func(t *testing.T, data string) {
		ops, herr := decodeMutateOps(strings.NewReader(data), maxOps)
		if herr != nil {
			if ops != nil {
				t.Fatal("decoder returned both ops and an error")
			}
			if herr.status < 400 || herr.status > 499 {
				t.Fatalf("decode failure with non-4xx status %d (%s)", herr.status, herr.message)
			}
			if herr.message == "" || herr.code == "" {
				t.Fatalf("error without message/code: %+v", herr)
			}
			return
		}
		if len(ops) == 0 || len(ops) > maxOps {
			t.Fatalf("accepted batch of %d outside (0, %d]", len(ops), maxOps)
		}
		for i, op := range ops {
			switch op.Kind {
			case banks.OpInsertNode:
				if op.Table == "" {
					t.Fatalf("op %d: insert_node without table", i)
				}
			case banks.OpInsertEdge:
				if op.From < 0 || op.To < 0 {
					t.Fatalf("op %d: negative node ID escaped: %+v", i, op)
				}
				if op.Weight != op.Weight || op.Weight > 1e308 || op.Weight < -1e308 {
					t.Fatalf("op %d: non-finite weight escaped: %v", i, op.Weight)
				}
			case banks.OpDeleteNode:
				if op.Node < 0 {
					t.Fatalf("op %d: negative node ID escaped", i)
				}
			case banks.OpDeleteEdge:
				if op.From < 0 || op.To < 0 {
					t.Fatalf("op %d: negative node ID escaped", i)
				}
			case banks.OpInsertTerm, banks.OpDeleteTerm:
				if op.Node < 0 || op.Term == "" {
					t.Fatalf("op %d: term op missing fields: %+v", i, op)
				}
			default:
				t.Fatalf("op %d: unknown kind %q escaped the decoder", i, op.Kind)
			}
		}
	})
}
