package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"banks"
)

// pinnedRequest is one in-flight request the test holds open
// deterministically: a POST /v1/search whose JSON body arrives through a
// pipe the test controls. Admission happens before body decoding, so the
// handler sits inside the gate, blocked on the body, until the test calls
// finish — no dependence on query duration or scheduler timing.
type pinnedRequest struct {
	pw   *io.PipeWriter
	done chan outcome
}

type outcome struct {
	code int
	body []byte
	err  error
}

func startPinnedRequest(t *testing.T, ts *httptest.Server, tenant string) *pinnedRequest {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	p := &pinnedRequest{pw: pw, done: make(chan outcome, 1)}
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			p.done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		p.done <- outcome{code: resp.StatusCode, body: body, err: err}
	}()
	return p
}

// finish delivers the request body, letting the pinned handler decode and
// run a real (cheap) query, and returns the outcome.
func (p *pinnedRequest) finish(t *testing.T) outcome {
	t.Helper()
	if _, err := p.pw.Write([]byte(`{"query":"database query","k":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := p.pw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-p.done:
		return out
	case <-time.After(30 * time.Second):
		t.Fatal("pinned request never completed")
		return outcome{}
	}
}

// TestAdmissionOverflow is the acceptance-criterion scenario, table-driven
// over the in-flight limit: with limit n, n concurrent requests are
// admitted and all complete successfully, while the (n+1)-th is rejected
// with 429 and a Retry-After hint.
func TestAdmissionOverflow(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("limit=%d", n), func(t *testing.T) {
			db := testDB(t)
			eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 1, CacheSize: -1})
			if err != nil {
				t.Fatal(err)
			}
			s, ts := newTestServer(t, Config{Engine: eng, DB: db, MaxInFlight: n})

			// Occupy all n in-flight slots with requests pinned open on
			// their half-sent bodies.
			pinned := make([]*pinnedRequest, n)
			for i := range pinned {
				pinned[i] = startPinnedRequest(t, ts, "")
			}
			deadline := time.Now().Add(10 * time.Second)
			for s.adm.inFlight() != n {
				if time.Now().After(deadline) {
					t.Fatalf("in-flight never reached %d (at %d)", n, s.adm.inFlight())
				}
				time.Sleep(time.Millisecond)
			}

			// The (n+1)-th concurrent request: rejected immediately, with
			// the slots still pinned by the first n.
			code, body, hdr := get(t, ts, "/v1/search?q=database+query&k=1", "")
			if code != http.StatusTooManyRequests {
				t.Fatalf("overflow request: status %d, want 429\n%s", code, body)
			}
			ra := hdr.Get("Retry-After")
			if ra == "" {
				t.Fatal("429 without Retry-After")
			}
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("bad Retry-After %q", ra)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != "over_capacity" {
				t.Fatalf("bad 429 body: %s", body)
			}

			// The first n complete successfully once their bodies arrive.
			for i, p := range pinned {
				out := p.finish(t)
				if out.err != nil {
					t.Fatalf("admitted request %d: %v", i, out.err)
				}
				if out.code != http.StatusOK {
					t.Fatalf("admitted request %d: status %d\n%s", i, out.code, out.body)
				}
				if resp := decodeSearchResponse(t, out.body); len(resp.Answers) == 0 {
					t.Fatalf("admitted request %d returned no answers", i)
				}
			}
			if got := s.adm.rejectedTotal(); got != 1 {
				t.Fatalf("rejected counter %d, want 1", got)
			}
			if got := s.adm.inFlight(); got != 0 {
				t.Fatalf("in-flight %d after completion, want 0", got)
			}

			// And the gate admits again now that the slots are free.
			if code, body, _ := get(t, ts, "/v1/search?q=database+query&k=1", ""); code != http.StatusOK {
				t.Fatalf("post-overflow request: status %d\n%s", code, body)
			}
		})
	}
}

// TestAdmissionRecovers: after load subsides, the gate admits again.
func TestAdmissionRecovers(t *testing.T) {
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng, DB: db, MaxInFlight: 1})
	for i := 0; i < 3; i++ {
		code, body, _ := get(t, ts, "/v1/search?q=database&k=1", "")
		if code != http.StatusOK {
			t.Fatalf("sequential request %d: status %d\n%s", i, code, body)
		}
	}
}

// fakeClock makes the admission gate's time observable to tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRetryAfterEstimate(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(1)
	a.now = clk.now
	if got := a.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold estimate %d, want 1", got)
	}
	tok, ok, _ := a.tryAcquire("", 0, false)
	if !ok {
		t.Fatal("empty gate refused")
	}
	clk.advance(2500 * time.Millisecond)
	a.release("", 0, tok)
	if got := a.retryAfterSeconds(); got != 3 {
		t.Fatalf("estimate after 2.5s request: %d, want 3 (ceil)", got)
	}
	tok, ok, _ = a.tryAcquire("", 0, false)
	if !ok {
		t.Fatal("gate refused after release")
	}
	clk.advance(10 * time.Millisecond)
	a.release("", 0, tok)
	// EWMA moves toward the fast request but stays >= 1s floor.
	if got := a.retryAfterSeconds(); got < 1 || got > 3 {
		t.Fatalf("estimate drifted to %d", got)
	}
}

// TestRetryAfterOldestInFlightFloor is the regression test for the hint
// returning its 1-second floor while every slot was pinned by requests
// that had never released (ewmaNS still zero): the age of the oldest
// in-flight request must floor the estimate.
func TestRetryAfterOldestInFlightFloor(t *testing.T) {
	clk := newFakeClock()
	a := newAdmission(2)
	a.now = clk.now

	// Occupy both slots; nothing has ever released, so the EWMA is zero.
	tok1, ok, _ := a.tryAcquire("", 0, false)
	if !ok {
		t.Fatal("first acquire refused")
	}
	clk.advance(90 * time.Second)
	tok2, ok, _ := a.tryAcquire("", 0, false)
	if !ok {
		t.Fatal("second acquire refused")
	}
	clk.advance(30 * time.Second)

	// Oldest slot has been held 120s, newest 30s: the hint follows the
	// oldest, not the 1s cold floor.
	if got := a.retryAfterSeconds(); got != 120 {
		t.Fatalf("estimate with pinned slots = %d, want 120 (oldest age)", got)
	}

	// Releasing the oldest leaves the 30s-old occupant as the floor
	// (its age now beats the fresh EWMA).
	a.release("", 0, tok1)
	if got := a.retryAfterSeconds(); got != 120 {
		t.Fatalf("estimate after first release = %d, want 120 (EWMA of the 120s request)", got)
	}
	a.release("", 0, tok2)
	if got := a.retryAfterSeconds(); got < 1 {
		t.Fatalf("estimate after drain = %d", got)
	}
}

// TestRetryAfterPinnedStreamE2E pins the same scenario through the real
// server: a pinned-open request holds the only slot, the admission
// clock is advanced five minutes, and the resulting 429 must carry a
// Retry-After reflecting the held slot's age — not the 1-second floor
// the zeroed EWMA used to produce.
func TestRetryAfterPinnedStreamE2E(t *testing.T) {
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Engine: eng, DB: db, MaxInFlight: 1})

	p := startPinnedRequest(t, ts, "")
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.inFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pinned request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Shift the gate's clock five minutes ahead of the recorded admit
	// time: from the gate's point of view the stream has been holding
	// its slot for five minutes without ever releasing. Every gate read
	// of the clock happens under mu, so the swap synchronizes there too.
	s.adm.mu.Lock()
	s.adm.now = func() time.Time { return time.Now().Add(5 * time.Minute) }
	s.adm.mu.Unlock()

	code, body, hdr := get(t, ts, "/v1/search?q=database+query&k=1", "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429\n%s", code, body)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("bad Retry-After %q", hdr.Get("Retry-After"))
	}
	if secs < 300 {
		t.Fatalf("Retry-After %ds with a slot held 5 minutes, want >= 300", secs)
	}

	if out := p.finish(t); out.err != nil || out.code != http.StatusOK {
		t.Fatalf("pinned request failed: %v %d\n%s", out.err, out.code, out.body)
	}
}
