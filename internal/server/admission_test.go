package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"banks"
)

// pinnedRequest is one in-flight request the test holds open
// deterministically: a POST /v1/search whose JSON body arrives through a
// pipe the test controls. Admission happens before body decoding, so the
// handler sits inside the gate, blocked on the body, until the test calls
// finish — no dependence on query duration or scheduler timing.
type pinnedRequest struct {
	pw   *io.PipeWriter
	done chan outcome
}

type outcome struct {
	code int
	body []byte
	err  error
}

func startPinnedRequest(t *testing.T, ts *httptest.Server, tenant string) *pinnedRequest {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	p := &pinnedRequest{pw: pw, done: make(chan outcome, 1)}
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			p.done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		p.done <- outcome{code: resp.StatusCode, body: body, err: err}
	}()
	return p
}

// finish delivers the request body, letting the pinned handler decode and
// run a real (cheap) query, and returns the outcome.
func (p *pinnedRequest) finish(t *testing.T) outcome {
	t.Helper()
	if _, err := p.pw.Write([]byte(`{"query":"database query","k":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := p.pw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-p.done:
		return out
	case <-time.After(30 * time.Second):
		t.Fatal("pinned request never completed")
		return outcome{}
	}
}

// TestAdmissionOverflow is the acceptance-criterion scenario, table-driven
// over the in-flight limit: with limit n, n concurrent requests are
// admitted and all complete successfully, while the (n+1)-th is rejected
// with 429 and a Retry-After hint.
func TestAdmissionOverflow(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("limit=%d", n), func(t *testing.T) {
			db := testDB(t)
			eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 1, CacheSize: -1})
			if err != nil {
				t.Fatal(err)
			}
			s, ts := newTestServer(t, Config{Engine: eng, DB: db, MaxInFlight: n})

			// Occupy all n in-flight slots with requests pinned open on
			// their half-sent bodies.
			pinned := make([]*pinnedRequest, n)
			for i := range pinned {
				pinned[i] = startPinnedRequest(t, ts, "")
			}
			deadline := time.Now().Add(10 * time.Second)
			for s.adm.inFlight() != n {
				if time.Now().After(deadline) {
					t.Fatalf("in-flight never reached %d (at %d)", n, s.adm.inFlight())
				}
				time.Sleep(time.Millisecond)
			}

			// The (n+1)-th concurrent request: rejected immediately, with
			// the slots still pinned by the first n.
			code, body, hdr := get(t, ts, "/v1/search?q=database+query&k=1", "")
			if code != http.StatusTooManyRequests {
				t.Fatalf("overflow request: status %d, want 429\n%s", code, body)
			}
			ra := hdr.Get("Retry-After")
			if ra == "" {
				t.Fatal("429 without Retry-After")
			}
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Fatalf("bad Retry-After %q", ra)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code != "over_capacity" {
				t.Fatalf("bad 429 body: %s", body)
			}

			// The first n complete successfully once their bodies arrive.
			for i, p := range pinned {
				out := p.finish(t)
				if out.err != nil {
					t.Fatalf("admitted request %d: %v", i, out.err)
				}
				if out.code != http.StatusOK {
					t.Fatalf("admitted request %d: status %d\n%s", i, out.code, out.body)
				}
				if resp := decodeSearchResponse(t, out.body); len(resp.Answers) == 0 {
					t.Fatalf("admitted request %d returned no answers", i)
				}
			}
			if got := s.adm.rejectedTotal(); got != 1 {
				t.Fatalf("rejected counter %d, want 1", got)
			}
			if got := s.adm.inFlight(); got != 0 {
				t.Fatalf("in-flight %d after completion, want 0", got)
			}

			// And the gate admits again now that the slots are free.
			if code, body, _ := get(t, ts, "/v1/search?q=database+query&k=1", ""); code != http.StatusOK {
				t.Fatalf("post-overflow request: status %d\n%s", code, body)
			}
		})
	}
}

// TestAdmissionRecovers: after load subsides, the gate admits again.
func TestAdmissionRecovers(t *testing.T) {
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng, DB: db, MaxInFlight: 1})
	for i := 0; i < 3; i++ {
		code, body, _ := get(t, ts, "/v1/search?q=database&k=1", "")
		if code != http.StatusOK {
			t.Fatalf("sequential request %d: status %d\n%s", i, code, body)
		}
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	a := newAdmission(1)
	if got := a.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold estimate %d, want 1", got)
	}
	if ok, _ := a.tryAcquire("", 0, false); !ok {
		t.Fatal("empty gate refused")
	}
	a.release("", 0, 2500*time.Millisecond)
	if got := a.retryAfterSeconds(); got != 3 {
		t.Fatalf("estimate after 2.5s request: %d, want 3 (ceil)", got)
	}
	if ok, _ := a.tryAcquire("", 0, false); !ok {
		t.Fatal("gate refused after release")
	}
	a.release("", 0, 10*time.Millisecond)
	// EWMA moves toward the fast request but stays >= 1s floor.
	if got := a.retryAfterSeconds(); got < 1 || got > 3 {
		t.Fatalf("estimate drifted to %d", got)
	}
}
