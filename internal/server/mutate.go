package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"banks"
	"banks/internal/api"
	"banks/internal/graph"
)

// maxWireEdgeType bounds the edge_type wire field to what graph.EdgeType
// (uint16) can hold; anything above would silently truncate.
const maxWireEdgeType = int64(^uint16(0))

// mutateOpJSON is the wire form of one mutation op. Node references use
// pointers so "absent" and "node 0" are distinguishable — op kinds that
// require a node must name one explicitly.
type mutateOpJSON struct {
	Op       string   `json:"op"`
	Table    string   `json:"table,omitempty"`
	Text     string   `json:"text,omitempty"`
	Node     *int64   `json:"node,omitempty"`
	From     *int64   `json:"from,omitempty"`
	To       *int64   `json:"to,omitempty"`
	Weight   *float64 `json:"weight,omitempty"`
	EdgeType int64    `json:"edge_type,omitempty"`
	Term     string   `json:"term,omitempty"`
}

// mutateParams is the POST /v1/mutate body.
type mutateParams struct {
	Ops []mutateOpJSON `json:"ops"`
}

// deltaStatsJSON is the overlay-size block shared by the mutate and
// compact response envelopes.
type deltaStatsJSON struct {
	Nodes      int `json:"nodes"`
	Edges      int `json:"edges"`
	Tombstones int `json:"tombstones"`
}

// mutateResponse is the v1 /v1/mutate envelope, reporting exactly the
// state the acknowledged batch produced (from the typed ApplyResult, not
// a racy re-sample): applied/assigned/generation/delta_version are the
// original fields (kept stable for pre-v1 clients and the reload-smoke
// assertions), wal_offset + durable + delta are the v1 additions.
// (generation, delta_version) — and wal_offset when a WAL is configured
// — are the client's read-your-writes tokens.
type mutateResponse struct {
	Applied      int            `json:"applied"`
	Assigned     []banks.NodeID `json:"assigned,omitempty"`
	Generation   uint64         `json:"generation"`
	DeltaVersion uint64         `json:"delta_version"`
	// WALOffset is the write-ahead-log end offset of this batch's
	// record; absent when the server runs without a WAL.
	WALOffset *int64 `json:"wal_offset,omitempty"`
	// Durable reports whether acknowledgment implies durability (a WAL
	// is configured; the strength depends on its fsync policy).
	Durable bool `json:"durable"`
	// Delta is the overlay size after this batch.
	Delta deltaStatsJSON `json:"delta"`
}

// compactResponse is the v1 /v1/compact envelope, shaped like
// mutateResponse: the state identity the operation produced plus its
// durability disclosure.
type compactResponse struct {
	Generation uint64  `json:"generation"`
	Path       string  `json:"path"`
	DurationMS float64 `json:"duration_ms"`
	// WALTruncated reports that the write-ahead log was emptied because
	// the new generation is durable (false when no WAL is configured).
	WALTruncated bool `json:"wal_truncated"`
	// Delta is the overlay size after compaction (all zero by
	// construction — the overlay folded into the new base).
	Delta deltaStatsJSON `json:"delta"`
}

// nodeField converts one wire node reference, enforcing presence and the
// NodeID (int32) range so an out-of-range value cannot wrap into a valid
// ID.
func nodeField(v *int64, opIdx int, name string) (graph.NodeID, *httpError) {
	if v == nil {
		return 0, badRequest(fmt.Sprintf("ops[%d].%s", opIdx, name), "%s is required for this op", name)
	}
	if *v < 0 || *v > math.MaxInt32 {
		return 0, badRequest(fmt.Sprintf("ops[%d].%s", opIdx, name), "node ID %d out of range", *v)
	}
	return graph.NodeID(*v), nil
}

// decodeMutateOps decodes and validates a /v1/mutate body into mutation
// ops. maxOps is the tenant batch cap (0 = uncapped). Structural
// validation only — semantic checks (unknown nodes, tombstoned endpoints,
// bad weights in context) belong to the delta layer, which reports them
// per op.
func decodeMutateOps(body io.Reader, maxOps int) ([]banks.MutationOp, *httpError) {
	var p mutateParams
	if herr := decodeStrictJSON(body, &p); herr != nil {
		return nil, herr
	}
	if len(p.Ops) == 0 {
		return nil, badRequest("ops", "mutation batch contains no ops")
	}
	if maxOps > 0 && len(p.Ops) > maxOps {
		return nil, &httpError{status: http.StatusBadRequest, code: api.CodeMutateTooLarge, field: "ops",
			message: fmt.Sprintf("batch of %d ops exceeds the tenant limit %d", len(p.Ops), maxOps)}
	}
	ops := make([]banks.MutationOp, len(p.Ops))
	for i, w := range p.Ops {
		field := func(name string) string { return fmt.Sprintf("ops[%d].%s", i, name) }
		op := banks.MutationOp{Kind: banks.MutationKind(w.Op)}
		var herr *httpError
		switch op.Kind {
		case banks.OpInsertNode:
			if w.Table == "" {
				return nil, badRequest(field("table"), "insert_node requires a table")
			}
			op.Table, op.Text = w.Table, w.Text
		case banks.OpInsertEdge:
			if op.From, herr = nodeField(w.From, i, "from"); herr != nil {
				return nil, herr
			}
			if op.To, herr = nodeField(w.To, i, "to"); herr != nil {
				return nil, herr
			}
			if w.Weight == nil {
				return nil, badRequest(field("weight"), "insert_edge requires a weight")
			}
			// JSON cannot express NaN/Inf, so finiteness holds by
			// construction; positivity is the delta layer's check.
			op.Weight = *w.Weight
			if w.EdgeType < 0 || w.EdgeType > maxWireEdgeType {
				return nil, badRequest(field("edge_type"), "edge type %d out of range", w.EdgeType)
			}
			op.EdgeType = graph.EdgeType(w.EdgeType)
		case banks.OpDeleteNode:
			if op.Node, herr = nodeField(w.Node, i, "node"); herr != nil {
				return nil, herr
			}
		case banks.OpDeleteEdge:
			if op.From, herr = nodeField(w.From, i, "from"); herr != nil {
				return nil, herr
			}
			if op.To, herr = nodeField(w.To, i, "to"); herr != nil {
				return nil, herr
			}
		case banks.OpInsertTerm, banks.OpDeleteTerm:
			if op.Node, herr = nodeField(w.Node, i, "node"); herr != nil {
				return nil, herr
			}
			if w.Term == "" {
				return nil, badRequest(field("term"), "%s requires a term", w.Op)
			}
			op.Term = w.Term
		default:
			return nil, badRequest(field("op"), "unknown op kind %q", w.Op)
		}
		ops[i] = op
	}
	return ops, nil
}

// requireLive gates the mutation endpoints: 501 when the server was built
// without live mutations, 403 when the tenant's limits deny them.
func (s *Server) requireLive(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &httpError{status: http.StatusMethodNotAllowed,
			code: api.CodeMethodNotAllowed, message: "mutations are POST with a JSON body"})
		return false
	}
	if s.live == nil {
		s.writeError(w, &httpError{status: http.StatusNotImplemented, code: api.CodeNotMutable,
			message: "this server was started without live mutations (banksd -live)"})
		return false
	}
	if s.follower != nil {
		// A follower's state is a replica of its primary's log; a local
		// write would fork it. Point the client at the leader.
		st := s.follower.Stats()
		s.writeError(w, &httpError{status: http.StatusConflict, code: api.CodeNotPrimary,
			message: fmt.Sprintf("this server is a replication follower; write to the primary at %s", st.Primary)})
		return false
	}
	if !s.limits(r).MutateAllowed() {
		s.writeError(w, &httpError{status: http.StatusForbidden, code: api.CodeMutateDenied,
			message: "this tenant is not allowed to mutate"})
		return false
	}
	return true
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w, r) {
		return
	}
	ops, herr := decodeMutateOps(http.MaxBytesReader(nil, r.Body, maxBodyBytes), s.limits(r).MaxMutateOps)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	res, err := s.live.Apply(ops)
	if err != nil {
		var werr *banks.WALError
		if errors.As(err, &werr) {
			// The batch was valid but could not be made durable — and
			// therefore was not applied. 503: the client may retry, the
			// data is intact.
			s.writeError(w, &httpError{status: http.StatusServiceUnavailable,
				code: api.CodeWALAppendFailed, message: err.Error()})
			return
		}
		// Semantic rejections from the delta layer are the caller's to
		// fix; the batch was not applied.
		s.writeError(w, badRequest("ops", "%v", err))
		return
	}
	annotate(r, "mutate", len(ops), false)
	resp := mutateResponse{
		Applied:      len(ops),
		Assigned:     res.Assigned,
		Generation:   res.Generation,
		DeltaVersion: res.DeltaVersion,
		Durable:      res.WALOffset >= 0,
		Delta:        deltaStatsJSON{Nodes: res.DeltaNodes, Edges: res.DeltaEdges, Tombstones: res.Tombstones},
	}
	if res.WALOffset >= 0 {
		off := res.WALOffset
		resp.WALOffset = &off
	}
	writeJSON(w, resp)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w, r) {
		return
	}
	start := time.Now()
	res, err := s.live.Compact(r.Context())
	if err != nil {
		s.writeError(w, &httpError{status: http.StatusInternalServerError, code: api.CodeCompactFailed,
			message: err.Error()})
		return
	}
	annotate(r, "compact", 0, false)
	writeJSON(w, compactResponse{
		Generation:   res.Generation,
		Path:         res.Path,
		DurationMS:   float64(time.Since(start)) / float64(time.Millisecond),
		WALTruncated: res.WALReset,
	})
}
