package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"banks"
	"banks/internal/api"
	"banks/internal/repl"
	"banks/internal/wal"
)

// TestReplicationLogEndpoint pins the wire contract of the publisher as
// mounted by the server: raw WAL frames from an offset, position headers
// on every response, empty-body 200 when caught up, and a 409 + Position
// handshake when the client's generation is stale.
func TestReplicationLogEndpoint(t *testing.T) {
	s, ts, _ := newWALServer(t)

	for i := 0; i < 3; i++ {
		code, body := post(t, ts, "/v1/mutate", "", fmt.Sprintf(`{"ops":[
			{"op":"insert_node","table":"paper","text":"repl endpoint probe %d"}
		]}`, i))
		if code != 200 {
			t.Fatalf("mutate %d: %d %s", i, code, body)
		}
	}
	wantSize := s.live.WALSize()

	code, body, hdr := get(t, ts, fmt.Sprintf("/v1/replication/log?gen=0&from=%d", wal.HeaderSize), "")
	if code != 200 {
		t.Fatalf("log fetch: %d %s", code, body)
	}
	recs, err := wal.DecodeFrames(body)
	if err != nil {
		t.Fatalf("served frames do not decode: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if got := hdr.Get(repl.HeaderWALSize); got != strconv.FormatInt(wantSize, 10) {
		t.Fatalf("%s = %q, want %d", repl.HeaderWALSize, got, wantSize)
	}
	if hdr.Get(repl.HeaderGeneration) != "0" || hdr.Get(repl.HeaderDeltaVersion) != "3" {
		t.Fatalf("position headers: gen=%q ver=%q", hdr.Get(repl.HeaderGeneration), hdr.Get(repl.HeaderDeltaVersion))
	}
	if hdr.Get(repl.HeaderBaseNodes) == "" {
		t.Fatalf("missing %s header", repl.HeaderBaseNodes)
	}

	// Caught up: empty 200, headers still present.
	code, body, hdr = get(t, ts, fmt.Sprintf("/v1/replication/log?gen=0&from=%d", wantSize), "")
	if code != 200 || len(body) != 0 {
		t.Fatalf("caught-up fetch: %d, %d body bytes", code, len(body))
	}
	if hdr.Get(repl.HeaderWALSize) == "" {
		t.Fatal("caught-up response lost its position headers")
	}

	// Stale generation: 409 with the primary's Position so the follower
	// can decide to re-bootstrap.
	code, body, _ = get(t, ts, fmt.Sprintf("/v1/replication/log?gen=7&from=%d", wal.HeaderSize), "")
	if code != http.StatusConflict {
		t.Fatalf("stale-gen fetch: %d %s, want 409", code, body)
	}
	var pos repl.Position
	if err := json.Unmarshal(body, &pos); err != nil {
		t.Fatalf("409 body is not a Position: %v\n%s", err, body)
	}
	if pos.Generation != 0 || pos.WALSize != wantSize {
		t.Fatalf("handshake position: %+v", pos)
	}

	// Snapshot endpoint streams the base snapshot with position headers.
	code, body, hdr = get(t, ts, "/v1/replication/snapshot", "")
	if code != 200 || len(body) == 0 {
		t.Fatalf("snapshot fetch: %d, %d body bytes", code, len(body))
	}
	if hdr.Get(repl.HeaderGeneration) != "0" {
		t.Fatalf("snapshot generation header: %q", hdr.Get(repl.HeaderGeneration))
	}
}

// newFollowerServer stands up a second WAL-backed live over the shared DB
// and starts a follower tailing the given primary. Both sides build their
// base from the same in-process DB, so state converges to byte identity
// once the log is drained.
func newFollowerServer(t *testing.T, primaryURL string) (*Server, *httptest.Server, *repl.Follower) {
	t.Helper()
	dir := t.TempDir()
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := banks.OpenLive(eng, banks.LiveOptions{
		SnapshotPath: filepath.Join(dir, "follower.banksnap"),
		WALPath:      filepath.Join(dir, "follower.wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	f, err := repl.StartFollower(repl.FollowerConfig{
		Primary:  primaryURL,
		Target:   live,
		BasePath: filepath.Join(dir, "follower.banksnap"),
		PollWait: 200 * time.Millisecond,
		Backoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	s, err := New(Config{Engine: eng, DB: db, Live: live, Tenants: generousTenants(), Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, f
}

// waitCaughtUp polls the follower until it reports zero lag against the
// given primary WAL size.
func waitCaughtUp(t *testing.T, f *repl.Follower, primarySize int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Stats()
		if st.Connected && st.WALOffset == primarySize && st.LagRecords == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to %d: %+v", primarySize, f.Stats())
}

// TestFollowerServerEndToEnd drives a primary/follower pair through the
// full serving stack: mutations on the primary become visible on the
// follower, searches answer byte-identically, local writes are rejected
// with not_primary, and /statusz + /metrics disclose the replication
// state.
func TestFollowerServerEndToEnd(t *testing.T) {
	ps, pts, _ := newWALServer(t)
	_, fts, f := newFollowerServer(t, pts.URL)

	code, body := post(t, pts, "/v1/mutate", "", `{"ops":[
		{"op":"insert_node","table":"paper","text":"xylocarp replication serving"},
		{"op":"insert_node","table":"paper","text":"xylocarp follower identity"}
	]}`)
	if code != 200 {
		t.Fatalf("primary mutate: %d %s", code, body)
	}
	waitCaughtUp(t, f, ps.live.WALSize())

	// The same search must answer byte-identically on both sides —
	// including the labels of the runtime-inserted nodes.
	const q = "/v1/search?q=xylocarp&k=5"
	pc, pbody, _ := get(t, pts, q, "")
	fc, fbody, _ := get(t, fts, q, "")
	if pc != 200 || fc != 200 {
		t.Fatalf("search: primary %d, follower %d", pc, fc)
	}
	var pr, fr struct {
		Answers json.RawMessage `json:"answers"`
	}
	if err := json.Unmarshal(pbody, &pr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fbody, &fr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pr.Answers, fr.Answers) {
		t.Fatalf("answers diverged:\nprimary:  %s\nfollower: %s", pr.Answers, fr.Answers)
	}

	// Local writes on the follower are rejected with not_primary naming
	// the leader.
	code, body = post(t, fts, "/v1/mutate", "", `{"ops":[
		{"op":"insert_node","table":"paper","text":"forbidden fork"}
	]}`)
	if code != http.StatusConflict {
		t.Fatalf("follower mutate: %d %s, want 409", code, body)
	}
	var env struct {
		Error struct {
			Code   string `json:"code"`
			Detail string `json:"detail"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != api.CodeNotPrimary {
		t.Fatalf("error.code = %q, want %q", env.Error.Code, api.CodeNotPrimary)
	}
	if !bytes.Contains([]byte(env.Error.Detail), []byte(pts.URL)) {
		t.Fatalf("not_primary detail does not name the primary: %q", env.Error.Detail)
	}
	if code, body = post(t, fts, "/v1/compact", "", `{}`); code != http.StatusConflict {
		t.Fatalf("follower compact: %d %s, want 409", code, body)
	}

	// /statusz on the follower discloses the replication block.
	_, sbody, _ := get(t, fts, "/statusz", "")
	var st struct {
		Replication *repl.FollowerStats `json:"replication"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Replication == nil {
		t.Fatalf("no replication block in follower /statusz: %s", sbody)
	}
	if !st.Replication.Connected || st.Replication.Primary != pts.URL {
		t.Fatalf("replication block: %+v", st.Replication)
	}
	if st.Replication.LagRecords != 0 || st.Replication.RecordsApplied == 0 {
		t.Fatalf("replication counters: %+v", st.Replication)
	}

	// /metrics on the follower exposes the lag series.
	_, mbody, _ := get(t, fts, "/metrics", "")
	for _, series := range []string{
		"banksd_replication_connected 1",
		"banksd_replication_lag_records 0",
		"banksd_replication_records_applied_total",
	} {
		if !bytes.Contains(mbody, []byte(series)) {
			t.Fatalf("metrics missing %q:\n%s", series, mbody)
		}
	}
}

// TestV1OnlyErrorShape pins the post-deprecation envelope: with
// V1ErrorsOnly set (banksd -legacy-errors=false), the legacy mirror
// fields — top-level "code", error.status, error.message — are gone and
// only the v1 contract remains.
func TestV1OnlyErrorShape(t *testing.T) {
	s, _ := newTestServer(t, Config{V1ErrorsOnly: true})
	req := httptest.NewRequest(http.MethodGet, "/v1/search?q=cite&bogus=1", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body.Bytes())
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, ok := m["code"]; ok {
		t.Fatalf("legacy top-level code still present: %s", rec.Body.Bytes())
	}
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object: %s", rec.Body.Bytes())
	}
	if _, ok := e["status"]; ok {
		t.Fatalf("legacy error.status still present: %s", rec.Body.Bytes())
	}
	if _, ok := e["message"]; ok {
		t.Fatalf("legacy error.message still present: %s", rec.Body.Bytes())
	}
	if e["code"] != api.CodeBadRequest || e["field"] != "bogus" {
		t.Fatalf("v1 contract fields wrong: %s", rec.Body.Bytes())
	}
	if d, _ := e["detail"].(string); d == "" {
		t.Fatalf("error.detail missing: %s", rec.Body.Bytes())
	}
}
