package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"banks"
)

func decodeError(t *testing.T, body []byte) errorJSON {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, body)
	}
	return eb.Error
}

// TestBadRequests: every malformed request maps to a 400 whose body names
// a stable code (and, where known, the offending field). The
// "bad_options" rows prove the typed *core.OptionsError contract: invalid
// option values flow through the engine untouched and come back with
// core's own field name.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name      string
		method    string
		target    string // path?query for GET, path for POST
		body      string // POST only
		wantCode  string
		wantField string
	}{
		{name: "missing q", method: "GET", target: "/v1/search", wantCode: "bad_request", wantField: "q"},
		{name: "stopword-only query", method: "GET", target: "/v1/search?q=%21%21%21", wantCode: "bad_request", wantField: "q"},
		{name: "unknown parameter", method: "GET", target: "/v1/search?q=db&kk=3", wantCode: "bad_request", wantField: "kk"},
		{name: "repeated parameter", method: "GET", target: "/v1/search?q=db&k=1&k=2", wantCode: "bad_request", wantField: "k"},
		{name: "non-integer k", method: "GET", target: "/v1/search?q=db&k=ten", wantCode: "bad_request", wantField: "k"},
		{name: "non-number mu", method: "GET", target: "/v1/search?q=db&mu=half", wantCode: "bad_request", wantField: "mu"},
		{name: "bad bool", method: "GET", target: "/v1/search?q=db&strict_bound=maybe", wantCode: "bad_request", wantField: "strict_bound"},
		{name: "unknown algo", method: "GET", target: "/v1/search?q=db&algo=dijkstra", wantCode: "bad_request", wantField: "algo"},
		{name: "bad timeout", method: "GET", target: "/v1/search?q=db&timeout=soon", wantCode: "bad_request", wantField: "timeout"},
		{name: "NaN mu", method: "GET", target: "/v1/search?q=db&mu=NaN", wantCode: "bad_request", wantField: "mu"},
		{name: "infinite lambda", method: "GET", target: "/v1/search?q=db&lambda=Inf", wantCode: "bad_request", wantField: "lambda"},
		{name: "overflow-sized timeout", method: "GET", target: "/v1/search?q=db&timeout=10000000000000", wantCode: "bad_request", wantField: "timeout"},
		{name: "negative timeout", method: "GET", target: "/v1/search?q=db&timeout=-5s", wantCode: "bad_request", wantField: "timeout"},
		{name: "sub-ms timeout", method: "GET", target: "/v1/search?q=db&timeout=10us", wantCode: "bad_request", wantField: "timeout"},
		{name: "too many keywords", method: "GET", target: "/v1/search?q=" + strings.Repeat("w+", 17) + "z", wantCode: "bad_request", wantField: "q"},

		{name: "negative k is core's call", method: "GET", target: "/v1/search?q=db&k=-1", wantCode: "bad_options", wantField: "K"},
		{name: "negative workers is core's call", method: "GET", target: "/v1/search?q=db&workers=-1", wantCode: "bad_options", wantField: "Workers"},
		{name: "mu out of range is core's call", method: "GET", target: "/v1/search?q=db&mu=1.5", wantCode: "bad_options", wantField: "Mu"},
		{name: "negative dmax is core's call", method: "GET", target: "/v1/search?q=db&dmax=-2", wantCode: "bad_options", wantField: "DMax"},
		{name: "negative lambda is core's call", method: "GET", target: "/v1/search?q=db&lambda=-1", wantCode: "bad_options", wantField: "Lambda"},
		{name: "negative max_nodes is core's call", method: "GET", target: "/v1/search?q=db&max_nodes=-1", wantCode: "bad_options", wantField: "MaxNodes"},

		{name: "not json", method: "POST", target: "/v1/search", body: `query=db`, wantCode: "bad_request"},
		{name: "unknown json field", method: "POST", target: "/v1/search", body: `{"query":"db","kk":3}`, wantCode: "bad_request"},
		{name: "trailing json", method: "POST", target: "/v1/search", body: `{"query":"db"} {"query":"again"}`, wantCode: "bad_request"},
		{name: "negative timeout_ms", method: "POST", target: "/v1/search", body: `{"query":"db","timeout_ms":-5}`, wantCode: "bad_request", wantField: "timeout_ms"},
		{name: "overflow-sized timeout_ms", method: "POST", target: "/v1/search", body: `{"query":"db","timeout_ms":10000000000000}`, wantCode: "bad_request", wantField: "timeout_ms"},
		{name: "batch overflow-sized timeout_ms", method: "POST", target: "/v1/batch", body: `{"timeout_ms":10000000000000,"queries":[{"query":"db"}]}`, wantCode: "bad_request", wantField: "timeout_ms"},
		{name: "empty json query", method: "POST", target: "/v1/search", body: `{"query":""}`, wantCode: "bad_request", wantField: "q"},

		{name: "batch with element timeout", method: "POST", target: "/v1/batch",
			body: `{"queries":[{"query":"db","timeout_ms":50}]}`, wantCode: "bad_request", wantField: "queries[0].timeout_ms"},
		{name: "batch element bad algo", method: "POST", target: "/v1/batch",
			body: `{"queries":[{"query":"db"},{"query":"db","algo":"nope"}]}`, wantCode: "bad_request", wantField: "queries[1].algo"},

		{name: "near rejects algo", method: "GET", target: "/v1/near?q=db&algo=mi-backward", wantCode: "bad_request", wantField: "algo"},
		{name: "near rejects strict_bound", method: "GET", target: "/v1/near?q=db&strict_bound=true", wantCode: "bad_request", wantField: "strict_bound"},
		{name: "near rejects activation_sum", method: "GET", target: "/v1/near?q=db&activation_sum=true", wantCode: "bad_request", wantField: "activation_sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				code int
				body []byte
			)
			if tc.method == "GET" {
				code, body, _ = get(t, ts, tc.target, "")
			} else {
				code, body = post(t, ts, tc.target, "", tc.body)
			}
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400\n%s", code, body)
			}
			e := decodeError(t, body)
			if e.Code != tc.wantCode {
				t.Errorf("error code %q, want %q (%s)", e.Code, tc.wantCode, e.Message)
			}
			if tc.wantField != "" && e.Field != tc.wantField {
				t.Errorf("error field %q, want %q (%s)", e.Field, tc.wantField, e.Message)
			}
			if e.Status != http.StatusBadRequest || e.Message == "" {
				t.Errorf("incomplete error body: %+v", e)
			}
		})
	}
}

// TestBatchElementOptionsError: options only core can judge (negative
// workers) fail per element, positionally, without sinking the siblings —
// and still carry the typed field name.
func TestBatchElementOptionsError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/batch", "",
		`{"queries":[{"query":"database query","k":1},{"query":"db","workers":-1}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (batch errors are positional)\n%s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Errors[0] != nil || resp.Results[0] == nil {
		t.Fatalf("healthy sibling affected: %+v", resp.Errors[0])
	}
	if resp.Results[1] != nil || resp.Errors[1] == nil {
		t.Fatal("invalid element did not fail")
	}
	if resp.Errors[1].Code != "bad_options" || resp.Errors[1].Field != "queries[1].Workers" {
		t.Fatalf("element error %+v, want bad_options on queries[1].Workers", resp.Errors[1])
	}
}

// TestBatchTooLarge: over-limit batches are rejected whole — clamping
// would silently drop queries and break the positional result mapping.
func TestBatchTooLarge(t *testing.T) {
	cfg := &TenantConfig{Default: TenantLimits{MaxBatch: 2, MaxK: 100, DefaultTimeoutMS: 5000}}
	_, ts := newTestServer(t, Config{Tenants: cfg})
	code, body := post(t, ts, "/v1/batch", "",
		`{"queries":[{"query":"a"},{"query":"b"},{"query":"c"}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400\n%s", code, body)
	}
	if e := decodeError(t, body); e.Code != "batch_too_large" {
		t.Fatalf("error code %q, want batch_too_large", e.Code)
	}
}

// TestBatchTimeoutClampDisclosed: reducing the batch's shared deadline to
// the tenant cap is disclosed at the batch level, mirroring the
// per-element clamp contract.
func TestBatchTimeoutClampDisclosed(t *testing.T) {
	cfg := &TenantConfig{Default: TenantLimits{MaxK: 100, MaxTimeoutMS: 1000, DefaultTimeoutMS: 500}}
	_, ts := newTestServer(t, Config{Tenants: cfg})
	code, body := post(t, ts, "/v1/batch", "",
		`{"timeout_ms":30000,"queries":[{"query":"database query","k":1}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Clamped) != 1 || resp.Clamped[0] != "timeout" {
		t.Fatalf("batch clamped %v, want [timeout]", resp.Clamped)
	}
}

// TestDeadlineTruncation is the satellite scenario: a deadline that
// expires mid-search yields HTTP 200 with the partial top-k found so far
// and "truncated":true in the JSON body — interactive serving degrades to
// partial answers, never to errors.
func TestDeadlineTruncation(t *testing.T) {
	db := testDB(t)
	// No result cache: an earlier test completing the same query would
	// otherwise serve a full (untruncated) result instantly.
	eng, err := banks.NewEngine(db, banks.EngineOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng, DB: db})

	// Without the deadline this query explores essentially the whole
	// graph (~80ms+); 5ms reliably expires mid-search, with enough margin
	// that the search always *starts* (the pool is idle, so slot
	// acquisition is immediate).
	code, body, _ := get(t, ts, "/v1/search?q=database+transaction&k=500&dmax=16&timeout=5", "")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200\n%s", code, body)
	}
	if !strings.Contains(string(body), `"truncated":true`) {
		t.Fatalf("body does not report truncation:\n%s", body)
	}
	resp := decodeSearchResponse(t, body)
	if !resp.Truncated {
		t.Fatal("Truncated false after deadline expiry")
	}
	if resp.Stats.NodesExplored == 0 {
		t.Fatal("search never started")
	}

	// Near queries truncate the same way.
	code, body, _ = get(t, ts, "/v1/near?q=database+transaction&k=500&dmax=16&timeout=5", "")
	if code != http.StatusOK {
		t.Fatalf("near status %d\n%s", code, body)
	}
	var nresp nearResponse
	if err := json.Unmarshal(body, &nresp); err != nil {
		t.Fatal(err)
	}
	if !nresp.Truncated {
		t.Fatal("near: Truncated false after deadline expiry")
	}
}

// TestQueryIDIgnoresExecutionKnobs: deadline and workers change how a
// query runs, not what it is — the stable ID must not move.
func TestQueryIDIgnoresExecutionKnobs(t *testing.T) {
	lim := generousTenants().Resolve("")
	base, herr := (&searchParams{Query: "Database Query", K: 3}).resolve(lim)
	if herr != nil {
		t.Fatal(herr)
	}
	variants := []*searchParams{
		{Query: "database query", K: 3, TimeoutMS: 50},
		{Query: "DATABASE   query", K: 3, Workers: 4},
	}
	for _, p := range variants {
		req, herr := p.resolve(lim)
		if herr != nil {
			t.Fatal(herr)
		}
		if req.queryID() != base.queryID() {
			t.Fatalf("queryID changed for %+v: %s vs %s", p, req.queryID(), base.queryID())
		}
	}
	diff, _ := (&searchParams{Query: "database query", K: 3, Algo: string(banks.MIBackward)}).resolve(lim)
	if diff.queryID() == base.queryID() {
		t.Fatal("different algorithm kept the same queryID")
	}
}
