package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"banks"
	"banks/internal/api"
	"banks/internal/core"
)

// maxBodyBytes bounds request bodies: a keyword query fits in a line, so
// one MiB is already generous for the largest sane batch.
const maxBodyBytes = 1 << 20

// maxWireTimeoutMS bounds the timeout a request may name: 24 hours,
// far above any sane interactive deadline but small enough that
// converting to time.Duration can never overflow int64 — an overflowed
// (negative) duration would read as "no deadline" and smuggle a request
// past the tenant timeout cap.
const maxWireTimeoutMS = 24 * 60 * 60 * 1000

// httpError is a request failure with a definite HTTP mapping. Handlers
// return it up to the middleware, which renders the JSON error body (and
// the Retry-After header when set).
type httpError struct {
	status     int
	code       string // stable machine-readable slug, e.g. "bad_request"
	message    string
	field      string // offending field for validation errors, if known
	retryAfter int    // seconds; emitted as Retry-After when > 0
}

func (e *httpError) Error() string { return e.message }

func badRequest(field, format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest, field: field,
		message: fmt.Sprintf(format, args...)}
}

// mapQueryError converts an engine/core failure into its HTTP form. The
// contract with internal/core is typed: every invalid-option failure is a
// *core.OptionsError carrying the offending field, which becomes a 400
// the client can correct. Deadline expiry *while waiting for a pool slot*
// is the one case where a deadline yields an error instead of a truncated
// partial result, and maps to 504.
func mapQueryError(err error) *httpError {
	var oe *core.OptionsError
	if errors.As(err, &oe) {
		return &httpError{status: http.StatusBadRequest, code: api.CodeBadOptions,
			field: oe.Field, message: oe.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &httpError{status: http.StatusGatewayTimeout, code: api.CodeDeadlineExceeded,
			message: "deadline expired before the query could start executing"}
	}
	if errors.Is(err, context.Canceled) {
		return &httpError{status: http.StatusServiceUnavailable, code: api.CodeCanceled,
			message: "request canceled before the query could start executing"}
	}
	return &httpError{status: http.StatusInternalServerError, code: api.CodeInternal,
		message: err.Error()}
}

// searchParams is the wire form of one query, shared by the /v1/search
// query string, the /v1/search JSON body, and /v1/batch elements. Zero
// values mean "use the default". Decoding is strict: unknown parameters
// and fields are rejected so client typos fail loudly instead of
// silently running with defaults.
type searchParams struct {
	Query         string  `json:"query"`
	Algo          string  `json:"algo,omitempty"`
	K             int     `json:"k,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	TimeoutMS     int64   `json:"timeout_ms,omitempty"`
	MaxNodes      int     `json:"max_nodes,omitempty"`
	DMax          int     `json:"dmax,omitempty"`
	Mu            float64 `json:"mu,omitempty"`
	Lambda        float64 `json:"lambda,omitempty"`
	StrictBound   bool    `json:"strict_bound,omitempty"`
	ActivationSum bool    `json:"activation_sum,omitempty"`
}

// searchRequest is a decoded, tenant-clamped query ready to execute.
type searchRequest struct {
	Query   string
	Terms   []string // normalized keywords of Query (non-empty)
	Algo    banks.Algorithm
	Opts    banks.Options
	Timeout time.Duration // effective deadline, after tenant resolution
	// Clamped lists the wire fields the tenant limits reduced, so
	// responses can disclose that the request was not run as asked.
	Clamped []string
}

// queryID derives the stable identifier logged and returned for a query:
// a hash of the normalized terms, the algorithm, and the options that
// change the answer (deadline and workers are excluded — they affect how
// long the search runs, not which query it is). Identical logical queries
// therefore share an ID across requests, retries and replicas, which is
// what makes server logs greppable by query.
func (r *searchRequest) queryID() string {
	h := fnv.New64a()
	io.WriteString(h, string(r.Algo))
	for _, t := range r.Terms {
		h.Write([]byte{0})
		io.WriteString(h, t)
	}
	o := r.Opts.Normalized()
	fmt.Fprintf(h, "|k=%d|mu=%g|lambda=%g|dmax=%d|maxnodes=%d|strict=%v|asum=%v",
		o.K, o.Mu, o.Lambda, o.DMax, o.MaxNodes, o.StrictBound, o.ActivationSum)
	return fmt.Sprintf("q-%016x", h.Sum64())
}

// knownParams lists the accepted /v1/search and /v1/near query-string
// parameters.
var knownParams = map[string]bool{
	"q": true, "algo": true, "k": true, "workers": true, "timeout": true,
	"max_nodes": true, "dmax": true, "mu": true, "lambda": true,
	"strict_bound": true, "activation_sum": true,
}

// paramsFromQueryString decodes a URL query string into searchParams.
func paramsFromQueryString(values url.Values) (*searchParams, *httpError) {
	for k, vs := range values {
		if !knownParams[k] {
			return nil, badRequest(k, "unknown query parameter %q", k)
		}
		if len(vs) != 1 {
			return nil, badRequest(k, "parameter %q given %d times, want once", k, len(vs))
		}
	}
	p := &searchParams{Query: values.Get("q"), Algo: values.Get("algo")}
	var err *httpError
	if p.K, err = intParam(values, "k"); err != nil {
		return nil, err
	}
	if p.Workers, err = intParam(values, "workers"); err != nil {
		return nil, err
	}
	if p.MaxNodes, err = intParam(values, "max_nodes"); err != nil {
		return nil, err
	}
	if p.DMax, err = intParam(values, "dmax"); err != nil {
		return nil, err
	}
	if p.Mu, err = floatParam(values, "mu"); err != nil {
		return nil, err
	}
	if p.Lambda, err = floatParam(values, "lambda"); err != nil {
		return nil, err
	}
	if p.StrictBound, err = boolParam(values, "strict_bound"); err != nil {
		return nil, err
	}
	if p.ActivationSum, err = boolParam(values, "activation_sum"); err != nil {
		return nil, err
	}
	if raw := values.Get("timeout"); raw != "" {
		d, derr := parseTimeout(raw)
		if derr != nil {
			return nil, badRequest("timeout", "bad timeout %q: want a duration like 250ms or integral milliseconds", raw)
		}
		p.TimeoutMS = d.Milliseconds()
		// Sub-millisecond durations round to 0 == "unset"; reject instead
		// of silently removing the caller's deadline.
		if p.TimeoutMS == 0 && d != 0 {
			return nil, badRequest("timeout", "timeout %q is below 1ms resolution", raw)
		}
		if d < 0 {
			return nil, badRequest("timeout", "timeout must be non-negative, got %q", raw)
		}
	}
	return p, nil
}

// parseTimeout accepts a Go duration string ("250ms", "2s") or a bare
// integer meaning milliseconds (curl ergonomics). The bound check runs
// before the multiplication so an enormous wire value cannot overflow
// into a negative Duration.
func parseTimeout(raw string) (time.Duration, error) {
	if ms, err := strconv.ParseInt(raw, 10, 64); err == nil {
		if ms > maxWireTimeoutMS {
			return 0, fmt.Errorf("timeout %dms exceeds the maximum %dms", ms, maxWireTimeoutMS)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	return time.ParseDuration(raw)
}

func intParam(values url.Values, name string) (int, *httpError) {
	raw := values.Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest(name, "bad integer %q for %s", raw, name)
	}
	return v, nil
}

func floatParam(values url.Values, name string) (float64, *httpError) {
	raw := values.Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	// ParseFloat accepts "NaN" and "Inf", which no search parameter
	// means and which a JSON response could not even encode; only
	// finite numbers cross this boundary (JSON bodies cannot express
	// non-finite values at all, so this closes the one transport that
	// can).
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, badRequest(name, "bad number %q for %s", raw, name)
	}
	return v, nil
}

func boolParam(values url.Values, name string) (bool, *httpError) {
	raw := values.Get(name)
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, badRequest(name, "bad boolean %q for %s", raw, name)
	}
	return v, nil
}

// decodeStrictJSON decodes exactly one JSON document into v: unknown
// fields are rejected (a typoed cap or option must fail loudly, not
// silently run with defaults), and a second document in the body is a
// framing error, not extra input to ignore.
func decodeStrictJSON(body io.Reader, v any) *httpError {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("", "bad JSON body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return badRequest("", "trailing data after JSON body")
	}
	return nil
}

// paramsFromJSON decodes a JSON request body into searchParams, strictly.
func paramsFromJSON(body io.Reader) (*searchParams, *httpError) {
	var p searchParams
	if herr := decodeStrictJSON(body, &p); herr != nil {
		return nil, herr
	}
	return &p, nil
}

// resolve validates searchParams and applies tenant limits, producing an
// executable searchRequest. Values *above* a tenant cap are clamped (and
// reported in Clamped); structurally invalid values (negative k, mu out
// of range, ...) are left for core's typed validation so every limit
// lives in exactly one place.
func (p *searchParams) resolve(lim TenantLimits) (*searchRequest, *httpError) {
	terms := banks.Keywords(p.Query)
	if len(terms) == 0 {
		return nil, badRequest("q", "query contains no keywords")
	}
	if len(terms) > core.MaxKeywords {
		return nil, badRequest("q", "query has %d keywords, maximum is %d", len(terms), core.MaxKeywords)
	}
	algo := banks.Bidirectional
	if p.Algo != "" {
		algo = banks.Algorithm(p.Algo)
		if !knownAlgo(algo) {
			return nil, badRequest("algo", "unknown algorithm %q (have %s)", p.Algo, algoNames())
		}
	}
	if p.TimeoutMS < 0 {
		return nil, badRequest("timeout_ms", "timeout must be non-negative, got %d", p.TimeoutMS)
	}
	if p.TimeoutMS > maxWireTimeoutMS {
		return nil, badRequest("timeout_ms", "timeout %dms exceeds the maximum %dms", p.TimeoutMS, maxWireTimeoutMS)
	}

	req := &searchRequest{
		Query: p.Query,
		Terms: terms,
		Algo:  algo,
		Opts: banks.Options{
			K:             p.K,
			Workers:       p.Workers,
			MaxNodes:      p.MaxNodes,
			DMax:          p.DMax,
			Mu:            p.Mu,
			Lambda:        p.Lambda,
			StrictBound:   p.StrictBound,
			ActivationSum: p.ActivationSum,
		},
		Timeout: time.Duration(p.TimeoutMS) * time.Millisecond,
	}
	// The cap applies to the k the search would actually run with: an
	// omitted k means core's default (10), which a tighter tenant cap
	// must still clamp — otherwise omitting the field would beat any
	// legal value.
	if lim.MaxK > 0 {
		effK := req.Opts.K
		if effK == 0 {
			effK = core.DefaultK
		}
		if effK > lim.MaxK {
			req.Opts.K = lim.MaxK
			req.Clamped = append(req.Clamped, "k")
		}
	}
	if req.Opts.Workers > lim.MaxWorkers {
		req.Opts.Workers = lim.MaxWorkers
		req.Clamped = append(req.Clamped, "workers")
	}
	var timeoutClamped bool
	req.Timeout, timeoutClamped = clampTimeout(req.Timeout, lim)
	if timeoutClamped {
		req.Clamped = append(req.Clamped, "timeout")
	}
	return req, nil
}

// clampTimeout resolves a requested deadline against the tenant limits:
// zero (unset) becomes the tenant default, itself bounded by the cap
// (Resolve guarantees this for configs; the guard here keeps a
// hand-built TenantLimits from handing out more than MaxTimeout), and an
// explicit request above the cap is clamped with clamped=true — only an
// explicit over-ask is a disclosure, the default is not.
func clampTimeout(requested time.Duration, lim TenantLimits) (effective time.Duration, clamped bool) {
	switch {
	case requested == 0:
		effective = lim.DefaultTimeout()
		if lim.MaxTimeoutMS > 0 && effective > lim.MaxTimeout() {
			effective = lim.MaxTimeout()
		}
	case lim.MaxTimeoutMS > 0 && requested > lim.MaxTimeout():
		effective = lim.MaxTimeout()
		clamped = true
	default:
		effective = requested
	}
	return effective, clamped
}

func knownAlgo(a banks.Algorithm) bool {
	for _, algo := range banks.Algorithms() {
		if a == algo {
			return true
		}
	}
	return false
}

func algoNames() string {
	names := make([]string, 0, 3)
	for _, a := range banks.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

// decodeSearchParams decodes the wire form of one query from an HTTP
// request — the query string on GET, a JSON body on POST — without
// resolving tenant limits (handlers that restrict the parameter surface,
// like /v1/near, inspect the raw params first).
func decodeSearchParams(r *http.Request) (*searchParams, *httpError) {
	switch r.Method {
	case http.MethodGet:
		return paramsFromQueryString(r.URL.Query())
	case http.MethodPost:
		return paramsFromJSON(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	default:
		return nil, &httpError{status: http.StatusMethodNotAllowed, code: api.CodeMethodNotAllowed,
			message: "use GET with query parameters or POST with a JSON body"}
	}
}

// decodeSearchRequest decodes and tenant-resolves one query.
func decodeSearchRequest(r *http.Request, lim TenantLimits) (*searchRequest, *httpError) {
	p, herr := decodeSearchParams(r)
	if herr != nil {
		return nil, herr
	}
	return p.resolve(lim)
}

// batchParams is the wire form of a /v1/batch request. The deadline is
// per batch, not per element: the whole batch shares one request context,
// so a per-element timeout would be a lie the server cannot keep.
type batchParams struct {
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
	Queries   []searchParams `json:"queries"`
}

// decodeBatchRequest decodes and resolves a POST /v1/batch body. The
// returned clamped list discloses batch-level reductions (today only the
// shared deadline); per-element clamps are disclosed on each element.
func decodeBatchRequest(r *http.Request, lim TenantLimits) (reqs []*searchRequest, timeout time.Duration, clamped []string, herr *httpError) {
	var b batchParams
	if herr := decodeStrictJSON(http.MaxBytesReader(nil, r.Body, maxBodyBytes), &b); herr != nil {
		return nil, 0, nil, herr
	}
	if len(b.Queries) == 0 {
		return nil, 0, nil, badRequest("queries", "batch contains no queries")
	}
	if lim.MaxBatch > 0 && len(b.Queries) > lim.MaxBatch {
		return nil, 0, nil, &httpError{status: http.StatusBadRequest, code: api.CodeBatchTooLarge, field: "queries",
			message: fmt.Sprintf("batch of %d queries exceeds the tenant limit %d", len(b.Queries), lim.MaxBatch)}
	}
	if b.TimeoutMS < 0 {
		return nil, 0, nil, badRequest("timeout_ms", "timeout must be non-negative, got %d", b.TimeoutMS)
	}
	if b.TimeoutMS > maxWireTimeoutMS {
		return nil, 0, nil, badRequest("timeout_ms", "timeout %dms exceeds the maximum %dms", b.TimeoutMS, maxWireTimeoutMS)
	}
	reqs = make([]*searchRequest, len(b.Queries))
	for i := range b.Queries {
		if b.Queries[i].TimeoutMS != 0 {
			return nil, 0, nil, badRequest(fmt.Sprintf("queries[%d].timeout_ms", i),
				"timeout_ms is per batch: set it at the top level")
		}
		req, eherr := b.Queries[i].resolve(lim)
		if eherr != nil {
			eherr.field = fmt.Sprintf("queries[%d].%s", i, eherr.field)
			return nil, 0, nil, eherr
		}
		reqs[i] = req
	}
	var timeoutClamped bool
	timeout, timeoutClamped = clampTimeout(time.Duration(b.TimeoutMS)*time.Millisecond, lim)
	if timeoutClamped {
		clamped = append(clamped, "timeout")
	}
	return reqs, timeout, clamped, nil
}
