package server

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"banks"
	"banks/internal/datagen"
)

// The serving tests run against a real built DB (the same factor-0.05
// DBLP-like dataset the repo's concurrency and context tests use), built
// once and shared: the server layer must be exercised over the actual
// engine, not a stub, because admission, deadlines and truncation are
// timing behaviors of real searches.
var (
	sharedOnce sync.Once
	sharedDB   *banks.DB
	sharedErr  error
)

func testDB(t testing.TB) *banks.DB {
	t.Helper()
	sharedOnce.Do(func() {
		ds, err := datagen.DBLP(datagen.DefaultDBLP(0.05))
		if err != nil {
			sharedErr = err
			return
		}
		sharedDB, sharedErr = banks.Build(ds.DB, banks.BuildOptions{})
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDB
}

// generousTenants lifts the built-in caps so tests can run the heavy
// queries that make deadlines and admission observable.
func generousTenants() *TenantConfig {
	return &TenantConfig{Default: TenantLimits{
		MaxK: 5000, MaxWorkers: 8, MaxTimeoutMS: 10000, DefaultTimeoutMS: 8000, MaxBatch: 16,
	}}
}

// newTestServer builds a Server over the shared DB and an httptest
// listener. Zero-value config fields get test defaults.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testDB(t)
	}
	if cfg.Engine == nil {
		eng, err := banks.NewEngine(cfg.DB, banks.EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Engine = eng
	}
	if cfg.Tenants == nil {
		cfg.Tenants = generousTenants()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs a GET with an optional tenant header and returns the
// status, body, and response headers.
func get(t *testing.T, ts *httptest.Server, path, tenant string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func post(t *testing.T, ts *httptest.Server, path, tenant, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeSearchResponse(t *testing.T, body []byte) *searchResponse {
	t.Helper()
	var resp searchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	return &resp
}

var queryIDRe = regexp.MustCompile(`^q-[0-9a-f]{16}$`)

func TestSearchEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, body, _ := get(t, ts, "/v1/search?q=database+query&k=3", "")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200\n%s", code, body)
	}
	resp := decodeSearchResponse(t, body)
	if len(resp.Answers) != 3 {
		t.Fatalf("got %d answers, want 3", len(resp.Answers))
	}
	if resp.Truncated {
		t.Fatal("unbounded query reported truncated")
	}
	if !queryIDRe.MatchString(resp.QueryID) {
		t.Fatalf("bad query id %q", resp.QueryID)
	}
	if resp.Algo != string(banks.Bidirectional) {
		t.Fatalf("default algo %q, want bidirectional", resp.Algo)
	}
	if resp.K != 3 {
		t.Fatalf("effective k %d, want 3", resp.K)
	}
	top := resp.Answers[0]
	if top.RootLabel == "" || len(top.Nodes) == 0 {
		t.Fatalf("answer missing labels/nodes: %+v", top)
	}
	if top.Score <= 0 {
		t.Fatalf("non-positive score %v", top.Score)
	}
	if resp.Stats.NodesExplored <= 0 {
		t.Fatal("stats not populated")
	}
	// Answers are in non-increasing score order.
	for i := 1; i < len(resp.Answers); i++ {
		if resp.Answers[i].Score > resp.Answers[i-1].Score {
			t.Fatalf("answers out of order: %v after %v", resp.Answers[i].Score, resp.Answers[i-1].Score)
		}
	}
}

// TestSearchMatchesLibrary pins the HTTP path to the library path: the
// top answer served over HTTP must be the same tree the DB returns
// directly (root, score, node count) — the serving layer adds transport,
// never different answers.
func TestSearchMatchesLibrary(t *testing.T) {
	db := testDB(t)
	_, ts := newTestServer(t, Config{})

	want, err := db.Search("database query", banks.Bidirectional, banks.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, ts, "/v1/search?q=database+query&k=3", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	resp := decodeSearchResponse(t, body)
	if len(resp.Answers) != len(want.Answers) {
		t.Fatalf("HTTP answers %d, library %d", len(resp.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if resp.Answers[i].Root != want.Answers[i].Root {
			t.Fatalf("answer %d root %d over HTTP, %d from library", i, resp.Answers[i].Root, want.Answers[i].Root)
		}
		if resp.Answers[i].Score != want.Answers[i].Score {
			t.Fatalf("answer %d score %v over HTTP, %v from library", i, resp.Answers[i].Score, want.Answers[i].Score)
		}
		if resp.Answers[i].RootLabel != db.NodeLabel(want.Answers[i].Root) {
			t.Fatalf("answer %d label %q, want %q", i, resp.Answers[i].RootLabel, db.NodeLabel(want.Answers[i].Root))
		}
	}
}

func TestSearchPOSTBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/search", "", `{"query":"database query","algo":"mi-backward","k":2}`)
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	resp := decodeSearchResponse(t, body)
	if resp.Algo != string(banks.MIBackward) {
		t.Fatalf("algo %q, want mi-backward", resp.Algo)
	}
	if len(resp.Answers) != 2 {
		t.Fatalf("got %d answers, want 2", len(resp.Answers))
	}
}

// TestQueryIDStable: the same logical query gets the same ID across
// requests and transports; a different query gets a different one.
func TestQueryIDStable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, b1, _ := get(t, ts, "/v1/search?q=database+query&k=3", "")
	_, b2, _ := get(t, ts, "/v1/search?q=database+query&k=3", "")
	_, b3 := post(t, ts, "/v1/search", "", `{"query":"database query","k":3}`)
	_, b4, _ := get(t, ts, "/v1/search?q=database+query&k=4", "")
	id1 := decodeSearchResponse(t, b1).QueryID
	id2 := decodeSearchResponse(t, b2).QueryID
	id3 := decodeSearchResponse(t, b3).QueryID
	id4 := decodeSearchResponse(t, b4).QueryID
	if id1 != id2 || id1 != id3 {
		t.Fatalf("identical queries got different ids: %s %s %s", id1, id2, id3)
	}
	if id1 == id4 {
		t.Fatalf("different k got the same id %s", id1)
	}
}

func TestNearEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := get(t, ts, "/v1/near?q=database+query&k=5", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	var resp nearResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Nodes) == 0 || len(resp.Nodes) > 5 {
		t.Fatalf("got %d nodes, want 1..5", len(resp.Nodes))
	}
	for i := 1; i < len(resp.Nodes); i++ {
		if resp.Nodes[i].Activation > resp.Nodes[i-1].Activation {
			t.Fatal("near nodes not in activation order")
		}
	}
	if resp.Nodes[0].Label == "" {
		t.Fatal("near node missing label")
	}

	// A near query and a tree search over the same terms are different
	// queries and must not share a stable ID.
	_, sbody, _ := get(t, ts, "/v1/search?q=database+query&k=5", "")
	if sid := decodeSearchResponse(t, sbody).QueryID; sid == resp.QueryID {
		t.Fatalf("near and search share query id %s", sid)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := get(t, ts, "/v1/explain?q=database+query&k=2", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	var resp explainResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Explains) != 2 {
		t.Fatalf("got %d explains, want 2", len(resp.Explains))
	}
	for _, e := range resp.Explains {
		if !strings.HasPrefix(e, "score=") {
			t.Fatalf("explain does not look rendered: %q", e)
		}
	}

	// Explain discloses tenant clamps like search and near do.
	code, body = 0, nil
	code, body, _ = get(t, ts, "/v1/explain?q=database+query&k=100000", "")
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	var clamped explainResponse
	if err := json.Unmarshal(body, &clamped); err != nil {
		t.Fatal(err)
	}
	if len(clamped.Clamped) != 1 || clamped.Clamped[0] != "k" {
		t.Fatalf("explain clamped %v, want [k]", clamped.Clamped)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := post(t, ts, "/v1/batch", "",
		`{"queries":[{"query":"database query","k":2},{"query":"transaction recovery","k":1,"algo":"si-backward"}]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d\n%s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Results) != 2 || len(resp.Errors) != 2 {
		t.Fatalf("results/errors length %d/%d, want 2/2", len(resp.Results), len(resp.Errors))
	}
	for i := range resp.Results {
		if resp.Errors[i] != nil {
			t.Fatalf("query %d failed: %+v", i, resp.Errors[i])
		}
		if resp.Results[i] == nil || len(resp.Results[i].Answers) == 0 {
			t.Fatalf("query %d has no answers", i)
		}
	}
	if resp.Results[1].Algo != string(banks.SIBackward) {
		t.Fatalf("query 1 algo %q, want si-backward", resp.Results[1].Algo)
	}

	if code, _ := post(t, ts, "/v1/batch", "", `{"queries":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	if code, body, _ := get(t, ts, "/v1/batch?q=x", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch: status %d, want 405\n%s", code, body)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, body, _ := get(t, ts, "/healthz", "")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	code, body, _ = get(t, ts, "/healthz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz while draining: %d %q", code, body)
	}
	// Admitted work still completes during drain: the gate stays open
	// until the listeners close.
	code, _, _ = get(t, ts, "/v1/search?q=database&k=1", "")
	if code != http.StatusOK {
		t.Fatalf("search during drain: %d, want 200", code)
	}
}

func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := get(t, ts, "/v1/search?q=database+query&k=1", ""); code != http.StatusOK {
		t.Fatal("warmup query failed")
	}
	code, body, _ := get(t, ts, "/statusz", "")
	if code != http.StatusOK {
		t.Fatalf("statusz status %d", code)
	}
	var st statuszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad statusz JSON: %v\n%s", err, body)
	}
	if st.Dataset.Nodes == 0 || st.Dataset.Edges == 0 || st.Dataset.Terms == 0 {
		t.Fatalf("dataset counters empty: %+v", st.Dataset)
	}
	if st.Engine.Searches == 0 {
		t.Fatal("engine search counter did not move")
	}
	if st.Engine.PoolWorkers < 1 || st.Admission.Limit < 1 {
		t.Fatalf("bad pool/admission config: %+v %+v", st.Engine, st.Admission)
	}
	if st.Runtime.GoVersion == "" || st.Runtime.Goroutines == 0 {
		t.Fatalf("runtime section empty: %+v", st.Runtime)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := get(t, ts, "/v1/search?q=database+query&k=1", ""); code != http.StatusOK {
		t.Fatal("warmup query failed")
	}
	code, body, hdr := get(t, ts, "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`banksd_queries_total{algo="bidirectional",outcome="ok"} 1`,
		`banksd_http_requests_total{path="/v1/search",code="200"} 1`,
		"banksd_query_duration_seconds_count 1",
		"banksd_admission_rejected_total 0",
		"banksd_admission_limit",
		"banksd_engine_pool_workers",
		"banksd_cache_misses_total 1",
		"go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Every non-comment line parses as "name{labels} value" or "name value".
	lineRe := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? -?[0-9].*$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed metrics line %q", line)
		}
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := get(t, ts, "/v1/nope", ""); code != http.StatusNotFound {
		t.Fatalf("unknown route: %d, want 404", code)
	}
	if code, _, _ := get(t, ts, "/wp-login.php", ""); code != http.StatusNotFound {
		t.Fatal("scanner path not 404")
	}
	// Unmatched paths share one "other" metrics bucket: each distinct
	// probe path must not mint its own never-evicted series.
	_, body, _ := get(t, ts, "/metrics", "")
	text := string(body)
	if !strings.Contains(text, `banksd_http_requests_total{path="other",code="404"} 2`) {
		t.Fatalf("404s not bucketed as other:\n%s", text)
	}
	if strings.Contains(text, "wp-login") {
		t.Fatal("scanner path leaked into metrics labels")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/search", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE search: %d, want 405", resp.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{DB: db}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(Config{Engine: eng}); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := New(Config{Engine: eng, DB: db, MaxInFlight: -1}); err == nil {
		t.Fatal("negative MaxInFlight accepted")
	}
	bad := &TenantConfig{Tenants: map[string]TenantLimits{"x": {MaxK: -1}}}
	if _, err := New(Config{Engine: eng, DB: db, Tenants: bad}); err == nil {
		t.Fatal("invalid tenant config accepted")
	}
}

// TestRequestLogging: every /v1/ request emits one line carrying the
// stable query ID and tenant.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	logger := log.New(&buf, "", 0)
	_, ts := newTestServer(t, Config{Logger: logger})
	_, body, _ := get(t, ts, "/v1/search?q=database+query&k=1", "acme")
	qid := decodeSearchResponse(t, body).QueryID
	out := buf.String()
	if !strings.Contains(out, "tenant=acme") {
		t.Fatalf("log line missing tenant: %q", out)
	}
	if !strings.Contains(out, "qid="+qid) {
		t.Fatalf("log line missing query id %s: %q", qid, out)
	}
	if !strings.Contains(out, "/v1/search") || !strings.Contains(out, " 200 ") {
		t.Fatalf("log line missing request summary: %q", out)
	}
}

type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestSerialFallbackStatsContract pins, end-to-end through the HTTP
// stats, that inherently sequential query paths ignore a workers request
// rather than pretending to parallelize: SIBackward and Near accept
// workers > 0 but report workers_used == 0, while MIBackward (which does
// parallelize) reports a non-zero count for the same request shape.
func TestSerialFallbackStatsContract(t *testing.T) {
	// An explicit pool width: the control query's worker grab is
	// opportunistic, so on a single-CPU host the default GOMAXPROCS pool
	// would leave no extra slots and the control would degrade to serial.
	db := testDB(t)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 8, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Engine: eng, DB: db})

	code, body, _ := get(t, ts, "/v1/search?q=database+query&algo=si-backward&k=3&workers=4", "")
	if code != http.StatusOK {
		t.Fatalf("si-backward status %d\n%s", code, body)
	}
	if resp := decodeSearchResponse(t, body); resp.Stats.WorkersUsed != 0 {
		t.Fatalf("si-backward workers_used = %d, want 0 (serial fallback)", resp.Stats.WorkersUsed)
	}

	code, body, _ = get(t, ts, "/v1/near?q=database+query&k=3&workers=4", "")
	if code != http.StatusOK {
		t.Fatalf("near status %d\n%s", code, body)
	}
	var near nearResponse
	if err := json.Unmarshal(body, &near); err != nil {
		t.Fatalf("bad near JSON: %v\n%s", err, body)
	}
	if near.Stats.WorkersUsed != 0 {
		t.Fatalf("near workers_used = %d, want 0 (serial fallback)", near.Stats.WorkersUsed)
	}

	// Control: an algorithm that does parallelize reports its workers, so
	// the zeros above are the contract, not a dead counter.
	code, body, _ = get(t, ts, "/v1/search?q=database+query&algo=mi-backward&k=3&workers=4", "")
	if code != http.StatusOK {
		t.Fatalf("mi-backward status %d\n%s", code, body)
	}
	if resp := decodeSearchResponse(t, body); resp.Stats.WorkersUsed == 0 {
		t.Fatal("mi-backward workers_used = 0 with workers=4; control expected parallel execution")
	}
}
