package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"banks/internal/api"
)

// TestErrorEnvelopeBothShapes pins the router's error envelope to the
// shared v1 contract: new fields (error.code/detail) and the legacy
// mirrors (top-level code, error.status, error.message) must both be
// present during the deprecation window — and byte-compatible with what
// the shard servers emit, since clients cannot tell which tier answered.
func TestErrorEnvelopeBothShapes(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, &httpError{status: http.StatusNotImplemented,
		code: api.CodeNotRouted, message: "near queries are not routable"})
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object: %s", rec.Body.Bytes())
	}
	// v1 contract.
	if e["code"] != api.CodeNotRouted {
		t.Fatalf("error.code = %v, want %q", e["code"], api.CodeNotRouted)
	}
	if e["detail"] != "near queries are not routable" {
		t.Fatalf("error.detail = %v", e["detail"])
	}
	// Legacy shape, kept during deprecation.
	if m["code"] != api.CodeNotRouted {
		t.Fatalf("legacy top-level code = %v, want %q", m["code"], api.CodeNotRouted)
	}
	if e["status"] != float64(http.StatusNotImplemented) {
		t.Fatalf("legacy error.status = %v, want 501", e["status"])
	}
	if e["message"] != "near queries are not routable" {
		t.Fatalf("legacy error.message = %v", e["message"])
	}
}

// TestRouterCodesRegistered pins that every code the router can emit is
// in the shared registry.
func TestRouterCodesRegistered(t *testing.T) {
	for _, code := range []string{
		api.CodeBadBody, api.CodeBodyTooLarge, api.CodeMethodNotAllowed,
		api.CodeBadRequest, api.CodeBatchTooLarge, api.CodeShardRejected,
		api.CodeShardError, api.CodeNotRouted, api.CodeInternal,
	} {
		if !api.Known(code) {
			t.Errorf("router-emitted code %q not in registry", code)
		}
	}
}
