package router

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metrics is the router's stdlib-only Prometheus-text exporter,
// following the internal/server idiom: deterministic ordering (sorted
// label keys, fixed shard/replica indexes) so scrapes are testable by
// string comparison. Per-replica series are arrays indexed by shard and
// replica position — the label space is fixed at construction, never
// minted per request.
type metrics struct {
	mu sync.Mutex
	// requests["path|code"], queries[outcome].
	requests map[string]uint64
	queries  map[string]uint64
	qSecSum  float64
	qCount   uint64
	// Per-replica attempt outcomes and latency, [shard][replica].
	// Latency sums cover successful fetches only: a failed fetch's
	// duration measures the failure mode, not the replica's service
	// time, and would skew the average. Canceled attempts (hedge losers,
	// query teardown) are counted apart from errors — they say nothing
	// about the replica.
	repOK       [][]uint64
	repErr      [][]uint64
	repCanceled [][]uint64
	repSecSum   [][]float64
	// failovers[shard] counts queries the shard answered only after
	// extra replica attempts; hedges counts hedge timers fired.
	failovers []uint64
	hedges    uint64
}

func newMetrics(groups []*shardGroup) *metrics {
	m := &metrics{
		requests:    make(map[string]uint64),
		queries:     make(map[string]uint64),
		repOK:       make([][]uint64, len(groups)),
		repErr:      make([][]uint64, len(groups)),
		repCanceled: make([][]uint64, len(groups)),
		repSecSum:   make([][]float64, len(groups)),
		failovers:   make([]uint64, len(groups)),
	}
	for i, g := range groups {
		n := len(g.replicas)
		m.repOK[i] = make([]uint64, n)
		m.repErr[i] = make([]uint64, n)
		m.repCanceled[i] = make([]uint64, n)
		m.repSecSum[i] = make([]float64, n)
	}
	return m
}

func (m *metrics) observeRequest(path string, code int) {
	m.mu.Lock()
	m.requests[path+"|"+strconv.Itoa(code)]++
	m.mu.Unlock()
}

// Routed-query outcomes.
const (
	outcomeOK        = "ok"
	outcomeTruncated = "truncated"
	outcomeError     = "error"
)

// Per-replica attempt outcomes.
const (
	outcomeAttemptOK       = "ok"
	outcomeAttemptError    = "error"
	outcomeAttemptCanceled = "canceled"
)

// observeQuery counts one routed query; the latency pair covers the full
// scatter-gather-merge wall time of queries that produced a result.
func (m *metrics) observeQuery(outcome string, elapsed time.Duration) {
	m.mu.Lock()
	m.queries[outcome]++
	if outcome != outcomeError {
		m.qSecSum += elapsed.Seconds()
		m.qCount++
	}
	m.mu.Unlock()
}

// observeReplica records one fan-out attempt against a replica.
func (m *metrics) observeReplica(shard, replica int, outcome string, elapsed time.Duration) {
	m.mu.Lock()
	switch outcome {
	case outcomeAttemptOK:
		m.repOK[shard][replica]++
		m.repSecSum[shard][replica] += elapsed.Seconds()
	case outcomeAttemptCanceled:
		m.repCanceled[shard][replica]++
	default:
		m.repErr[shard][replica]++
	}
	m.mu.Unlock()
}

// observeFailover counts one query a shard answered only after extra
// replica attempts.
func (m *metrics) observeFailover(shard int) {
	m.mu.Lock()
	m.failovers[shard]++
	m.mu.Unlock()
}

// observeHedge counts one hedge timer firing (a concurrent attempt
// launched against a slow replica's runner-up).
func (m *metrics) observeHedge() {
	m.mu.Lock()
	m.hedges++
	m.mu.Unlock()
}

// replicaCounts returns one replica's request/error totals for /statusz
// (canceled attempts count as requests, not errors).
func (m *metrics) replicaCounts(shard, replica int) (requests, errors uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.repOK[shard][replica] + m.repErr[shard][replica] + m.repCanceled[shard][replica],
		m.repErr[shard][replica]
}

// shardFailovers returns one shard's failover total for /statusz.
func (m *metrics) shardFailovers(shard int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers[shard]
}

// gauge is one instantaneous value appended at scrape time.
type gauge struct {
	name, help string
	value      float64
}

// replicaGauges are the per-replica instantaneous values sampled by the
// scrape handler, [shard][replica].
type replicaGauges struct {
	healthy  [][]bool
	inflight [][]int64
}

func (m *metrics) write(w io.Writer, gauges []gauge, rg replicaGauges) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	queries := make(map[string]uint64, len(m.queries))
	for k, v := range m.queries {
		queries[k] = v
	}
	qSecSum, qCount := m.qSecSum, m.qCount
	repOK := copy2D(m.repOK)
	repErr := copy2D(m.repErr)
	repCanceled := copy2D(m.repCanceled)
	repSecSum := copy2D(m.repSecSum)
	failovers := append([]uint64(nil), m.failovers...)
	hedges := m.hedges
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP banksrouter_http_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE banksrouter_http_requests_total counter")
	for _, k := range sortedKeys(requests) {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "banksrouter_http_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintln(w, "# HELP banksrouter_queries_total Routed search queries, by outcome (ok, truncated, error).")
	fmt.Fprintln(w, "# TYPE banksrouter_queries_total counter")
	for _, k := range sortedKeys(queries) {
		fmt.Fprintf(w, "banksrouter_queries_total{outcome=%q} %d\n", k, queries[k])
	}

	fmt.Fprintln(w, "# HELP banksrouter_query_duration_seconds Scatter-gather-merge wall time of routed queries that produced a result.")
	fmt.Fprintln(w, "# TYPE banksrouter_query_duration_seconds summary")
	fmt.Fprintf(w, "banksrouter_query_duration_seconds_sum %s\n", formatFloat(qSecSum))
	fmt.Fprintf(w, "banksrouter_query_duration_seconds_count %d\n", qCount)

	fmt.Fprintln(w, "# HELP banksrouter_shard_requests_total Fan-out attempts per replica, by outcome (ok, error, canceled).")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_requests_total counter")
	for i := range repOK {
		for j := range repOK[i] {
			fmt.Fprintf(w, "banksrouter_shard_requests_total{shard=\"%d\",replica=\"%d\",outcome=\"ok\"} %d\n", i, j, repOK[i][j])
			fmt.Fprintf(w, "banksrouter_shard_requests_total{shard=\"%d\",replica=\"%d\",outcome=\"error\"} %d\n", i, j, repErr[i][j])
			fmt.Fprintf(w, "banksrouter_shard_requests_total{shard=\"%d\",replica=\"%d\",outcome=\"canceled\"} %d\n", i, j, repCanceled[i][j])
		}
	}

	fmt.Fprintln(w, "# HELP banksrouter_shard_latency_seconds Per-replica stream service time of successful fan-out attempts.")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_latency_seconds summary")
	for i := range repOK {
		for j := range repOK[i] {
			fmt.Fprintf(w, "banksrouter_shard_latency_seconds_sum{shard=\"%d\",replica=\"%d\"} %s\n", i, j, formatFloat(repSecSum[i][j]))
			fmt.Fprintf(w, "banksrouter_shard_latency_seconds_count{shard=\"%d\",replica=\"%d\"} %d\n", i, j, repOK[i][j])
		}
	}

	fmt.Fprintln(w, "# HELP banksrouter_failovers_total Queries a shard answered only after extra replica attempts.")
	fmt.Fprintln(w, "# TYPE banksrouter_failovers_total counter")
	for i, v := range failovers {
		fmt.Fprintf(w, "banksrouter_failovers_total{shard=\"%d\"} %d\n", i, v)
	}

	fmt.Fprintln(w, "# HELP banksrouter_hedges_total Hedge attempts launched against slow replicas.")
	fmt.Fprintln(w, "# TYPE banksrouter_hedges_total counter")
	fmt.Fprintf(w, "banksrouter_hedges_total %d\n", hedges)

	fmt.Fprintln(w, "# HELP banksrouter_shard_healthy 1 when at least one replica of the shard is healthy.")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_healthy gauge")
	for i := range rg.healthy {
		any := false
		for _, h := range rg.healthy[i] {
			any = any || h
		}
		fmt.Fprintf(w, "banksrouter_shard_healthy{shard=\"%d\"} %s\n", i, formatFloat(boolGauge(any)))
	}

	fmt.Fprintln(w, "# HELP banksrouter_replica_healthy 1 when the replica's last probe or query succeeded.")
	fmt.Fprintln(w, "# TYPE banksrouter_replica_healthy gauge")
	for i := range rg.healthy {
		for j, h := range rg.healthy[i] {
			fmt.Fprintf(w, "banksrouter_replica_healthy{shard=\"%d\",replica=\"%d\"} %s\n", i, j, formatFloat(boolGauge(h)))
		}
	}

	fmt.Fprintln(w, "# HELP banksrouter_replica_inflight In-flight fan-out attempts per replica.")
	fmt.Fprintln(w, "# TYPE banksrouter_replica_inflight gauge")
	for i := range rg.inflight {
		for j, n := range rg.inflight[i] {
			fmt.Fprintf(w, "banksrouter_replica_inflight{shard=\"%d\",replica=\"%d\"} %d\n", i, j, n)
		}
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.value))
	}
}

func copy2D[T uint64 | float64](src [][]T) [][]T {
	out := make([][]T, len(src))
	for i, row := range src {
		out[i] = append([]T(nil), row...)
	}
	return out
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
