package router

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// metrics is the router's stdlib-only Prometheus-text exporter,
// following the internal/server idiom: deterministic ordering (sorted
// label keys, fixed shard indexes) so scrapes are testable by string
// comparison. Per-shard series are arrays indexed by shard position —
// the label space is fixed at construction, never minted per request.
type metrics struct {
	mu sync.Mutex
	// requests["path|code"], queries[outcome].
	requests map[string]uint64
	queries  map[string]uint64
	qSecSum  float64
	qCount   uint64
	// Per-shard fan-out outcomes and latency (successful fetches only:
	// a failed fetch's duration measures the failure mode, not the
	// shard's service time, and would skew the average).
	shardOK     []uint64
	shardErr    []uint64
	shardSecSum []float64
}

func newMetrics(numShards int) *metrics {
	return &metrics{
		requests:    make(map[string]uint64),
		queries:     make(map[string]uint64),
		shardOK:     make([]uint64, numShards),
		shardErr:    make([]uint64, numShards),
		shardSecSum: make([]float64, numShards),
	}
}

func (m *metrics) observeRequest(path string, code int) {
	m.mu.Lock()
	m.requests[path+"|"+strconv.Itoa(code)]++
	m.mu.Unlock()
}

// Routed-query outcomes.
const (
	outcomeOK        = "ok"
	outcomeTruncated = "truncated"
	outcomeError     = "error"
)

// observeQuery counts one routed query; the latency pair covers the full
// scatter-gather-merge wall time of queries that produced a result.
func (m *metrics) observeQuery(outcome string, elapsed time.Duration) {
	m.mu.Lock()
	m.queries[outcome]++
	if outcome != outcomeError {
		m.qSecSum += elapsed.Seconds()
		m.qCount++
	}
	m.mu.Unlock()
}

// observeShard records one fan-out call to a shard.
func (m *metrics) observeShard(shard int, ok bool, elapsed time.Duration) {
	m.mu.Lock()
	if ok {
		m.shardOK[shard]++
		m.shardSecSum[shard] += elapsed.Seconds()
	} else {
		m.shardErr[shard]++
	}
	m.mu.Unlock()
}

// shardCounts returns one shard's request/error totals for /statusz.
func (m *metrics) shardCounts(shard int) (requests, errors uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shardOK[shard] + m.shardErr[shard], m.shardErr[shard]
}

// gauge is one instantaneous value appended at scrape time.
type gauge struct {
	name, help string
	value      float64
}

func (m *metrics) write(w io.Writer, gauges []gauge, shardHealthy []bool) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	queries := make(map[string]uint64, len(m.queries))
	for k, v := range m.queries {
		queries[k] = v
	}
	qSecSum, qCount := m.qSecSum, m.qCount
	shardOK := append([]uint64(nil), m.shardOK...)
	shardErr := append([]uint64(nil), m.shardErr...)
	shardSecSum := append([]float64(nil), m.shardSecSum...)
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP banksrouter_http_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE banksrouter_http_requests_total counter")
	for _, k := range sortedKeys(requests) {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "banksrouter_http_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintln(w, "# HELP banksrouter_queries_total Routed search queries, by outcome (ok, truncated, error).")
	fmt.Fprintln(w, "# TYPE banksrouter_queries_total counter")
	for _, k := range sortedKeys(queries) {
		fmt.Fprintf(w, "banksrouter_queries_total{outcome=%q} %d\n", k, queries[k])
	}

	fmt.Fprintln(w, "# HELP banksrouter_query_duration_seconds Scatter-gather-merge wall time of routed queries that produced a result.")
	fmt.Fprintln(w, "# TYPE banksrouter_query_duration_seconds summary")
	fmt.Fprintf(w, "banksrouter_query_duration_seconds_sum %s\n", formatFloat(qSecSum))
	fmt.Fprintf(w, "banksrouter_query_duration_seconds_count %d\n", qCount)

	fmt.Fprintln(w, "# HELP banksrouter_shard_requests_total Fan-out calls per shard, by outcome (ok, error).")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_requests_total counter")
	for i := range shardOK {
		fmt.Fprintf(w, "banksrouter_shard_requests_total{shard=\"%d\",outcome=\"ok\"} %d\n", i, shardOK[i])
		fmt.Fprintf(w, "banksrouter_shard_requests_total{shard=\"%d\",outcome=\"error\"} %d\n", i, shardErr[i])
	}

	fmt.Fprintln(w, "# HELP banksrouter_shard_latency_seconds Per-shard stream service time of successful fan-out calls.")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_latency_seconds summary")
	for i := range shardOK {
		fmt.Fprintf(w, "banksrouter_shard_latency_seconds_sum{shard=\"%d\"} %s\n", i, formatFloat(shardSecSum[i]))
		fmt.Fprintf(w, "banksrouter_shard_latency_seconds_count{shard=\"%d\"} %d\n", i, shardOK[i])
	}

	fmt.Fprintln(w, "# HELP banksrouter_shard_healthy 1 when the shard's last probe or query succeeded.")
	fmt.Fprintln(w, "# TYPE banksrouter_shard_healthy gauge")
	for i, h := range shardHealthy {
		fmt.Fprintf(w, "banksrouter_shard_healthy{shard=\"%d\"} %s\n", i, formatFloat(boolGauge(h)))
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.value))
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
