package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"banks/internal/api"
)

// maxBodyBytes bounds a forwarded POST body; the shards enforce their
// own (smaller) request limits, this only keeps the router's buffering
// bounded.
const maxBodyBytes = 1 << 20

// routedStats is the routed response's stats object: the shard counters
// aggregated per the aggregate() contract, plus the fan-out width and
// the failover disclosure (extra replica attempts any shard needed —
// omitted when every shard's first replica answered).
type routedStats struct {
	statsJSON
	Shards    int `json:"shards"`
	Failovers int `json:"failovers,omitempty"`
	// MaxReplicaLag is the largest replication lag (in WAL records) any
	// answering replica disclosed: how stale the merged answer can be.
	// Omitted when every shard answered from a primary or a caught-up
	// follower.
	MaxReplicaLag int64 `json:"max_replica_lag,omitempty"`
}

// searchResponse is the routed /v1/search body — the same shape the
// shards serve (internal/server searchResponse), with answers passed
// through as the shards' bytes.
type searchResponse struct {
	QueryID   string            `json:"query_id"`
	Algo      string            `json:"algo"`
	K         int               `json:"k"`
	Clamped   []string          `json:"clamped,omitempty"`
	Truncated bool              `json:"truncated"`
	Answers   []json.RawMessage `json:"answers"`
	Stats     routedStats       `json:"stats"`
}

// streamAnswerLine is one routed NDJSON answer line. Ranks are assigned
// by the merged order; generated_ms/output_ms are the originating
// shard's own offsets, passed through.
type streamAnswerLine struct {
	Type        string          `json:"type"` // always "answer"
	Rank        int             `json:"rank"`
	GeneratedMS float64         `json:"generated_ms"`
	OutputMS    float64         `json:"output_ms"`
	Answer      json.RawMessage `json:"answer"`
}

// streamTrailerLine is the final NDJSON line of every routed stream.
type streamTrailerLine struct {
	Type          string      `json:"type"` // always "trailer"
	QueryID       string      `json:"query_id"`
	Algo          string      `json:"algo"`
	K             int         `json:"k"`
	Clamped       []string    `json:"clamped,omitempty"`
	Truncated     bool        `json:"truncated"`
	Cached        bool        `json:"cached,omitempty"`
	Degraded      bool        `json:"degraded,omitempty"`
	Answers       int         `json:"answers"`
	FirstAnswerMS *float64    `json:"first_answer_ms,omitempty"`
	Error         string      `json:"error,omitempty"`
	Stats         routedStats `json:"stats"`
}

// readBody buffers a POST body for replay to every shard. GET requests
// return nil.
func readBody(r *http.Request) ([]byte, *httpError) {
	if r.Body == nil || r.Method == http.MethodGet {
		return nil, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		return nil, &httpError{status: http.StatusBadRequest, code: api.CodeBadBody,
			message: fmt.Sprintf("reading request body: %v", err)}
	}
	if len(body) > maxBodyBytes {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge, code: api.CodeBodyTooLarge,
			message: fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)}
	}
	return body, nil
}

func checkMethod(r *http.Request) *httpError {
	if r.Method == http.MethodGet || r.Method == http.MethodPost {
		return nil
	}
	return &httpError{status: http.StatusMethodNotAllowed, code: api.CodeMethodNotAllowed,
		message: "use GET with query parameters or POST with a JSON body"}
}

// gather runs the full scatter-gather-merge for one request, mapping
// failures to wire errors.
func (rt *Router) gather(w http.ResponseWriter, r *http.Request) ([]*shardResult, []*wireAnswer, bool) {
	if herr := checkMethod(r); herr != nil {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, herr)
		return nil, nil, false
	}
	body, herr := readBody(r)
	if herr != nil {
		writeError(w, herr)
		return nil, nil, false
	}
	start := time.Now()
	results, err := rt.scatter(r, body)
	if err != nil {
		// A merged answer is only correct when every shard contributed:
		// fail the query rather than serve a silently partial top-k. A
		// shard-side 4xx (bad query, over capacity) passes its status
		// through; infrastructure failures map to 502.
		rt.met.observeQuery(outcomeError, 0)
		writeError(w, mapShardError(err))
		return nil, nil, false
	}
	merged := mergeResults(results)
	outcome := outcomeOK
	if anyTruncated(results) {
		outcome = outcomeTruncated
	}
	rt.met.observeQuery(outcome, time.Since(start))
	return results, merged, true
}

func anyTruncated(results []*shardResult) bool {
	for _, res := range results {
		if res.trailer.Truncated {
			return true
		}
	}
	return false
}

// mapShardError converts a scatter failure to the client-facing error.
// A shard's own 4xx (malformed query, over capacity) is the client's
// fault on every shard equally — its status and code pass through; any
// other failure is the deployment's and maps to 502.
func mapShardError(err error) *httpError {
	var she *shardHTTPError
	if errors.As(err, &she) && she.status >= 400 && she.status < 500 {
		code := she.code
		if code == "" {
			code = api.CodeShardRejected
		}
		return &httpError{status: she.status, code: code, message: err.Error()}
	}
	return &httpError{
		status:  http.StatusBadGateway,
		code:    api.CodeShardError,
		message: err.Error(),
	}
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	results, merged, ok := rt.gather(w, r)
	if !ok {
		return
	}
	agg := aggregate(results)
	answers := make([]json.RawMessage, len(merged))
	for i, wa := range merged {
		answers[i] = wa.raw
	}
	resp := &searchResponse{
		QueryID:   agg.queryID,
		Algo:      agg.algo,
		K:         agg.k,
		Clamped:   agg.clamped,
		Truncated: agg.truncated,
		Answers:   answers,
		Stats:     routedStats{statsJSON: agg.stats, Shards: len(results), Failovers: agg.failovers, MaxReplicaLag: agg.maxReplicaLag},
	}
	annotate(r, resp.QueryID, len(answers), resp.Truncated)
	writeJSON(w, resp)
}

// handleSearchStream serves the routed query as NDJSON in the shard wire
// format (docs/STREAMING.md). The router gathers before it emits — the
// global rank of an answer is unknowable until every shard has reported
// — so the stream offers format compatibility, not earlier first bytes;
// clients wanting both should query shards directly.
func (rt *Router) handleSearchStream(w http.ResponseWriter, r *http.Request) {
	results, merged, ok := rt.gather(w, r)
	if !ok {
		return
	}
	agg := aggregate(results)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i, wa := range merged {
		if err := enc.Encode(streamAnswerLine{
			Type:        "answer",
			Rank:        i + 1,
			GeneratedMS: wa.generatedMS,
			OutputMS:    wa.outputMS,
			Answer:      wa.raw,
		}); err != nil {
			return // client gone; nothing useful left to send
		}
	}
	trailer := streamTrailerLine{
		Type:      "trailer",
		QueryID:   agg.queryID,
		Algo:      agg.algo,
		K:         agg.k,
		Clamped:   agg.clamped,
		Truncated: agg.truncated,
		Cached:    agg.cached,
		Degraded:  agg.degraded,
		Answers:   len(merged),
		Stats:     routedStats{statsJSON: agg.stats, Shards: len(results), Failovers: agg.failovers, MaxReplicaLag: agg.maxReplicaLag},
	}
	if len(merged) > 0 {
		first := merged[0].outputMS
		trailer.FirstAnswerMS = &first
	}
	_ = enc.Encode(trailer)
	annotate(r, agg.queryID, len(merged), agg.truncated)
}

// maxRoutedBatch bounds a routed batch's fan-out amplification: each
// element scatters to every shard, so a batch of B costs B×N upstream
// streams. Shard-side tenant batch caps apply to /v1/batch bodies only
// — the router forwards elements as individual queries — so the router
// enforces its own structural cap here.
const maxRoutedBatch = 64

// routedBatchParallel bounds how many batch elements scatter at once, so
// one large batch cannot monopolize every shard's admission slots.
const routedBatchParallel = 4

// routedBatchParams mirrors the shard /v1/batch wire form
// (internal/server batchParams), with the elements kept raw: the router
// forwards them to the shards, which do the real validation.
type routedBatchParams struct {
	TimeoutMS int64             `json:"timeout_ms"`
	Queries   []json.RawMessage `json:"queries"`
}

// routedBatchResponse is the routed /v1/batch body: results[i] and
// errors[i] mirror queries[i], exactly one of the pair non-null — the
// same contract the shards serve. Element-level clamps (k, workers,
// timeout) are disclosed on each element, as resolved by the shards.
type routedBatchResponse struct {
	Results []*searchResponse `json:"results"`
	Errors  []*errorJSON      `json:"errors"`
}

// handleBatch serves a routed batch by fanning each element through the
// same scatter-gather-merge path as /v1/search: every element is
// forwarded to every shard as an individual query and its per-shard
// top-k streams merge with the canonical recipe, so results[i] is
// bit-identical to routing queries[i] through /v1/search alone. The
// batch-level deadline is pushed down by injecting timeout_ms into each
// forwarded element. Per-element failures (a shard rejection or outage
// during that element's fan-out) land in errors[i] without failing the
// siblings.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &httpError{status: http.StatusMethodNotAllowed,
			code: api.CodeMethodNotAllowed, message: "batch requests are POST with a JSON body"})
		return
	}
	body, herr := readBody(r)
	if herr != nil {
		writeError(w, herr)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var p routedBatchParams
	if err := dec.Decode(&p); err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadBody,
			message: fmt.Sprintf("decoding batch body: %v", err)})
		return
	}
	if len(p.Queries) == 0 {
		writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest,
			message: "batch contains no queries"})
		return
	}
	if len(p.Queries) > maxRoutedBatch {
		writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBatchTooLarge,
			message: fmt.Sprintf("batch of %d queries exceeds the router limit %d", len(p.Queries), maxRoutedBatch)})
		return
	}
	if p.TimeoutMS < 0 {
		writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest,
			message: fmt.Sprintf("timeout must be non-negative, got %d", p.TimeoutMS)})
		return
	}
	bodies := make([][]byte, len(p.Queries))
	for i, raw := range p.Queries {
		edec := json.NewDecoder(bytes.NewReader(raw))
		edec.UseNumber() // preserve numeric literals bit-for-bit through the rewrite
		var m map[string]any
		if err := edec.Decode(&m); err != nil {
			writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest,
				message: fmt.Sprintf("queries[%d]: %v", i, err)})
			return
		}
		if _, ok := m["timeout_ms"]; ok {
			writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest,
				message: fmt.Sprintf("queries[%d].timeout_ms: timeout_ms is per batch: set it at the top level", i)})
			return
		}
		if p.TimeoutMS > 0 {
			m["timeout_ms"] = p.TimeoutMS
		}
		b, err := json.Marshal(m)
		if err != nil {
			writeError(w, &httpError{status: http.StatusBadRequest, code: api.CodeBadRequest,
				message: fmt.Sprintf("queries[%d]: %v", i, err)})
			return
		}
		bodies[i] = b
	}

	resp := routedBatchResponse{
		Results: make([]*searchResponse, len(bodies)),
		Errors:  make([]*errorJSON, len(bodies)),
	}
	sem := make(chan struct{}, routedBatchParallel)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			elem := r.Clone(r.Context())
			elem.Method = http.MethodPost
			elem.URL.RawQuery = ""
			elem.Header.Set("Content-Type", "application/json")
			results, err := rt.scatter(elem, bodies[i])
			if err != nil {
				rt.met.observeQuery(outcomeError, 0)
				he := mapShardError(err)
				detail := api.NewErrorDetail(he.status, he.code, "", he.message)
				resp.Errors[i] = &detail
				return
			}
			merged := mergeResults(results)
			agg := aggregate(results)
			outcome := outcomeOK
			if agg.truncated {
				outcome = outcomeTruncated
			}
			rt.met.observeQuery(outcome, time.Since(start))
			answers := make([]json.RawMessage, len(merged))
			for j, wa := range merged {
				answers[j] = wa.raw
			}
			resp.Results[i] = &searchResponse{
				QueryID:   agg.queryID,
				Algo:      agg.algo,
				K:         agg.k,
				Clamped:   agg.clamped,
				Truncated: agg.truncated,
				Answers:   answers,
				Stats:     routedStats{statsJSON: agg.stats, Shards: len(results), Failovers: agg.failovers, MaxReplicaLag: agg.maxReplicaLag},
			}
		}(i)
	}
	wg.Wait()

	answers, truncated := 0, false
	for _, res := range resp.Results {
		if res != nil {
			answers += len(res.Answers)
			truncated = truncated || res.Truncated
		}
	}
	annotate(r, "batch", answers, truncated)
	writeJSON(w, &resp)
}

// handleUnsupported rejects an endpoint the router cannot serve
// correctly, explaining why.
func (rt *Router) handleUnsupported(reason string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &httpError{
			status:  http.StatusNotImplemented,
			code:    api.CodeNotRouted,
			message: reason,
		})
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// replicaStatusJSON is one replica row of the /statusz routing table.
type replicaStatusJSON struct {
	Replica int    `json:"replica"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// LastError is the most recent probe or query failure; empty while
	// healthy.
	LastError string `json:"last_error,omitempty"`
	// CheckedSecondsAgo is the age of the health verdict (-1 before the
	// first probe or query).
	CheckedSecondsAgo float64 `json:"checked_seconds_ago"`
	// EWMALatencyMS is the replica's moving-average stream service time
	// (0 until the first successful fan-out); InFlight its live attempt
	// count. Together they drive replica selection.
	EWMALatencyMS float64 `json:"ewma_latency_ms"`
	InFlight      int64   `json:"in_flight"`
	// ClaimedShard/ClaimedNumShards mirror the backend's own /statusz
	// shard disclosure (absent until probed, or when the backend serves
	// an unsharded snapshot).
	ClaimedShard     *uint32 `json:"claimed_shard,omitempty"`
	ClaimedNumShards *uint32 `json:"claimed_num_shards,omitempty"`
	Nodes            int     `json:"nodes,omitempty"`
	// Misrouted flags a backend whose claim contradicts its position in
	// the routing table (wrong shard index or wrong shard count).
	Misrouted bool `json:"misrouted,omitempty"`
	// Requests/Errors count fan-out attempts against this replica.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Follower marks a backend that discloses a replication block;
	// ReplicationLagRecords / ReplicationConnected mirror it, and Stale
	// reports whether the lag bound currently demotes this replica in
	// selection.
	Follower              bool   `json:"follower,omitempty"`
	ReplicationLagRecords *int64 `json:"replication_lag_records,omitempty"`
	ReplicationConnected  *bool  `json:"replication_connected,omitempty"`
	Stale                 bool   `json:"stale,omitempty"`
}

// shardStatusJSON is one shard's row: healthy when at least one replica
// is, with the replica set nested.
type shardStatusJSON struct {
	Index     int                 `json:"index"`
	Healthy   bool                `json:"healthy"`
	Failovers uint64              `json:"failovers"`
	Replicas  []replicaStatusJSON `json:"replicas"`
}

// statuszResponse is the router's /statusz introspection document.
// AllHealthy means every shard is answerable (≥1 healthy replica);
// Degraded means the deployment is answerable but some replica is down.
type statuszResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Draining      bool              `json:"draining"`
	NumShards     int               `json:"num_shards"`
	TotalReplicas int               `json:"total_replicas"`
	AllHealthy    bool              `json:"all_healthy"`
	Degraded      bool              `json:"degraded"`
	Shards        []shardStatusJSON `json:"shards"`
	Runtime       struct {
		GoVersion  string `json:"go_version"`
		Goroutines int    `json:"goroutines"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"runtime"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	resp := statuszResponse{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Draining:      rt.draining.Load(),
		NumShards:     len(rt.groups),
		TotalReplicas: len(rt.replicas),
		AllHealthy:    true,
		Shards:        make([]shardStatusJSON, len(rt.groups)),
	}
	now := time.Now()
	for i, g := range rt.groups {
		row := shardStatusJSON{
			Index:     i,
			Failovers: rt.met.shardFailovers(i),
			Replicas:  make([]replicaStatusJSON, len(g.replicas)),
		}
		for j, rep := range g.replicas {
			reqs, errs := rt.met.replicaCounts(i, j)
			inflight := rep.inflight.Load()
			rep.mu.Lock()
			rrow := replicaStatusJSON{
				Replica:           j,
				URL:               rep.url,
				Healthy:           rep.healthy,
				LastError:         rep.lastErr,
				CheckedSecondsAgo: -1,
				EWMALatencyMS:     rep.ewmaNS / 1e6,
				InFlight:          inflight,
				Nodes:             rep.claimedNodes,
				Requests:          reqs,
				Errors:            errs,
			}
			if !rep.lastCheck.IsZero() {
				rrow.CheckedSecondsAgo = now.Sub(rep.lastCheck).Seconds()
			}
			if rep.claimedNumShards != 0 {
				cs, cn := rep.claimedShard, rep.claimedNumShards
				rrow.ClaimedShard, rrow.ClaimedNumShards = &cs, &cn
				rrow.Misrouted = int(cs) != i || int(cn) != len(rt.groups)
			}
			if rep.follower {
				lag, conn := rep.lagRecords, rep.replConnected
				rrow.Follower = true
				rrow.ReplicationLagRecords = &lag
				rrow.ReplicationConnected = &conn
				rrow.Stale = g.maxLag >= 0 && (lag > g.maxLag || !conn)
			}
			rep.mu.Unlock()
			if rrow.Healthy {
				row.Healthy = true
			} else {
				resp.Degraded = true
			}
			row.Replicas[j] = rrow
		}
		if !row.Healthy {
			resp.AllHealthy = false
		}
		resp.Shards[i] = row
	}
	resp.Runtime.GoVersion = runtime.Version()
	resp.Runtime.Goroutines = runtime.NumGoroutine()
	resp.Runtime.GOMAXPROCS = runtime.GOMAXPROCS(0)
	writeJSON(w, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rg := replicaGauges{
		healthy:  make([][]bool, len(rt.groups)),
		inflight: make([][]int64, len(rt.groups)),
	}
	for i, g := range rt.groups {
		rg.healthy[i] = make([]bool, len(g.replicas))
		rg.inflight[i] = make([]int64, len(g.replicas))
		for j, rep := range g.replicas {
			rep.mu.Lock()
			rg.healthy[i][j] = rep.healthy
			rep.mu.Unlock()
			rg.inflight[i][j] = rep.inflight.Load()
		}
	}
	rt.met.write(w, []gauge{
		{"banksrouter_shards", "Configured fan-out width.", float64(len(rt.groups))},
		{"banksrouter_replicas", "Total backend replicas across all shards.", float64(len(rt.replicas))},
		{"banksrouter_draining", "1 once graceful drain has begun.", boolGauge(rt.draining.Load())},
		{"banksrouter_uptime_seconds", "Seconds since the router started.", time.Since(rt.start).Seconds()},
		{"go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine())},
	}, rg)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
