package router

import "sort"

// Replica selection: one replica of each shard serves each query, chosen
// by health- and load-driven scoring. The score of a replica is
//
//	(in-flight attempts + 1) × max(EWMA service time, 1ms)
//
// — an estimate of how long a new request would wait there. The EWMA
// floor keeps untried replicas (EWMA 0) attractive without letting them
// dominate, so load spreads onto fresh capacity; the in-flight factor
// spreads concurrent queries across replicas even before latency samples
// diverge. Unhealthy replicas (probe or query failure not yet cleared)
// sort after every healthy one — they are still tried as a last resort,
// because health is a cached observation and the replica may have
// recovered since, but only once all healthy candidates failed.

// ewmaFloorNS is the scoring floor for replicas with no latency samples
// yet (1ms in nanoseconds).
const ewmaFloorNS = 1e6

// loadSnapshot is one replica's scoring inputs, captured atomically.
type loadSnapshot struct {
	rep     *replicaState
	healthy bool
	score   float64
}

func (s *replicaState) snapshotLoad() loadSnapshot {
	s.mu.Lock()
	healthy := s.healthy
	ewma := s.ewmaNS
	s.mu.Unlock()
	if ewma < ewmaFloorNS {
		ewma = ewmaFloorNS
	}
	return loadSnapshot{
		rep:     s,
		healthy: healthy,
		score:   float64(s.inflight.Load()+1) * ewma,
	}
}

// candidates orders the group's replicas for one query: healthy replicas
// by ascending load score, then unhealthy replicas by ascending score —
// stable, so equal scores keep replica-index order and single-replica
// deployments behave exactly as before. The first candidate serves the
// query; the rest are the failover/hedge order.
func (g *shardGroup) candidates() []*replicaState {
	snaps := make([]loadSnapshot, len(g.replicas))
	for i, rep := range g.replicas {
		snaps[i] = rep.snapshotLoad()
	}
	sort.SliceStable(snaps, func(i, j int) bool {
		if snaps[i].healthy != snaps[j].healthy {
			return snaps[i].healthy
		}
		return snaps[i].score < snaps[j].score
	})
	out := make([]*replicaState, len(snaps))
	for i, s := range snaps {
		out[i] = s.rep
	}
	return out
}
