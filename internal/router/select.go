package router

import "sort"

// Replica selection: one replica of each shard serves each query, chosen
// by health-, freshness- and load-driven scoring. The score of a replica
// is
//
//	(in-flight attempts + 1) × max(EWMA service time, 1ms)
//
// — an estimate of how long a new request would wait there. The EWMA
// floor keeps untried replicas (EWMA 0) attractive without letting them
// dominate, so load spreads onto fresh capacity; the in-flight factor
// spreads concurrent queries across replicas even before latency samples
// diverge.
//
// Candidates sort into three tiers. Healthy, fresh replicas come first;
// then healthy-but-stale replication followers (disclosed lag beyond the
// group's bound, or a cut tail) — behind, but still serving a complete
// consistent prefix of the primary's state; unhealthy replicas last, as
// the final resort, because health is a cached observation and the
// replica may have recovered since. A stale follower is re-promoted into
// the first tier the moment a probe sees its lag back inside the bound.

// ewmaFloorNS is the scoring floor for replicas with no latency samples
// yet (1ms in nanoseconds).
const ewmaFloorNS = 1e6

// loadSnapshot is one replica's scoring inputs, captured atomically.
type loadSnapshot struct {
	rep     *replicaState
	healthy bool
	stale   bool
	score   float64
}

// tier collapses the health/freshness pair into the sort rank:
// 0 healthy+fresh, 1 healthy+stale, 2 unhealthy.
func (s loadSnapshot) tier() int {
	switch {
	case !s.healthy:
		return 2
	case s.stale:
		return 1
	default:
		return 0
	}
}

// snapshotLoad captures one replica's scoring inputs. maxLag is the
// freshness bound: a follower whose disclosed replication lag exceeds it
// — or whose tail of the primary is cut — is stale. Negative disables
// staleness; non-followers are always fresh.
func (s *replicaState) snapshotLoad(maxLag int64) loadSnapshot {
	s.mu.Lock()
	healthy := s.healthy
	ewma := s.ewmaNS
	stale := maxLag >= 0 && s.follower && (s.lagRecords > maxLag || !s.replConnected)
	s.mu.Unlock()
	if ewma < ewmaFloorNS {
		ewma = ewmaFloorNS
	}
	return loadSnapshot{
		rep:     s,
		healthy: healthy,
		stale:   stale,
		score:   float64(s.inflight.Load()+1) * ewma,
	}
}

// candidates orders the group's replicas for one query: by tier
// (healthy+fresh, healthy+stale, unhealthy), then by ascending load
// score — stable, so equal scores keep replica-index order and
// single-replica deployments behave exactly as before. The first
// candidate serves the query; the rest are the failover/hedge order.
func (g *shardGroup) candidates() []*replicaState {
	snaps := make([]loadSnapshot, len(g.replicas))
	for i, rep := range g.replicas {
		snaps[i] = rep.snapshotLoad(g.maxLag)
	}
	sort.SliceStable(snaps, func(i, j int) bool {
		if ti, tj := snaps[i].tier(), snaps[j].tier(); ti != tj {
			return ti < tj
		}
		return snaps[i].score < snaps[j].score
	})
	out := make([]*replicaState, len(snaps))
	for i, s := range snaps {
		out[i] = s.rep
	}
	return out
}
