// Package faultproxy is a test fixture: an httptest-backed reverse proxy
// that sits between the router and one shard replica and injects
// failures on demand — dropped connections, 5xx rejections, latency
// spikes, and NDJSON streams truncated mid-flight. The router's failover
// tests point a replica slot at a Proxy and assert that answers under
// injected faults stay byte-identical to the healthy baseline.
//
// Faults are armed per proxy with Set and consumed per matching request:
// a Fault with Count 3 fires on the first three matching requests and
// then the proxy passes traffic through untouched. By default only
// /v1/* requests match, so the router's health probes (/healthz,
// /statusz) keep seeing a live backend and the tests exercise the
// query-path retry, not the prober; a custom Match widens or narrows
// that.
package faultproxy

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the failure a Fault injects.
type Mode int

const (
	// ModeDrop hijacks the connection and closes it without writing a
	// response: the client sees a transport error (EOF / connection
	// reset), the failure class of a SIGKILLed backend.
	ModeDrop Mode = iota
	// Mode5xx answers 503 with a JSON error envelope, the failure class
	// of an overloaded or restarting backend.
	Mode5xx
	// ModeDelay sleeps Fault.Delay before proxying the request through
	// unchanged — the slow-replica class that hedging exists for.
	ModeDelay
	// ModeTruncate proxies the request but cuts the response stream
	// after Fault.AfterLines NDJSON lines (before the trailer), the
	// failure class of a backend dying mid-stream. With MidLine set, the
	// cut lands inside the next line's JSON, leaving a malformed partial
	// line on the wire.
	ModeTruncate
)

// Fault is one armed failure rule.
type Fault struct {
	Mode Mode
	// Count is how many matching requests the fault consumes before
	// disarming. 0 means unlimited (every matching request).
	Count int
	// Delay is the injected latency for ModeDelay.
	Delay time.Duration
	// AfterLines is how many complete NDJSON lines ModeTruncate lets
	// through before cutting the stream.
	AfterLines int
	// MidLine makes ModeTruncate additionally emit the first few bytes
	// of the next line, so the router sees a malformed partial line
	// rather than a clean cut between lines.
	MidLine bool
	// Match selects which requests the fault applies to. Nil matches
	// /v1/* paths only, leaving health probes untouched.
	Match func(r *http.Request) bool
}

func (f *Fault) matches(r *http.Request) bool {
	if f.Match != nil {
		return f.Match(r)
	}
	return strings.HasPrefix(r.URL.Path, "/v1/")
}

// Proxy is one fault-injecting reverse proxy in front of one backend.
type Proxy struct {
	server  *httptest.Server
	backend *url.URL

	mu    sync.Mutex
	fault *Fault
	left  int // remaining firings; -1 = unlimited

	injected atomic.Int64
}

// New starts a proxy in front of backendURL with no fault armed. The
// caller owns Close.
//
// Keep-alives are disabled so every client request reaches the proxy on
// a fresh connection: Go's http.Transport silently replays an idempotent
// request whose REUSED connection died before response bytes arrived,
// which would let a ModeDrop fault be absorbed below the caller's
// visibility — the second, fresh-connection attempt would consume
// nothing and succeed. Fresh connections are never auto-retried, so an
// injected drop is guaranteed to surface as an error to the system under
// test.
func New(backendURL string) (*Proxy, error) {
	bu, err := url.Parse(backendURL)
	if err != nil {
		return nil, err
	}
	p := &Proxy{backend: bu}
	p.server = httptest.NewUnstartedServer(http.HandlerFunc(p.serve))
	p.server.Config.SetKeepAlivesEnabled(false)
	p.server.Start()
	return p, nil
}

// URL is the proxy's base URL — what the router's topology should list
// in place of the backend.
func (p *Proxy) URL() string { return p.server.URL }

// Close shuts the proxy down.
func (p *Proxy) Close() { p.server.Close() }

// Set arms one fault, replacing any previous one. Set(nil) disarms.
func (p *Proxy) Set(f *Fault) {
	p.mu.Lock()
	p.fault = f
	p.left = 0
	if f != nil {
		if f.Count == 0 {
			p.left = -1
		} else {
			p.left = f.Count
		}
	}
	p.mu.Unlock()
}

// Injected reports how many faults the proxy has fired since New.
func (p *Proxy) Injected() int64 { return p.injected.Load() }

// take consumes one firing of the armed fault if it matches r.
func (p *Proxy) take(r *http.Request) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fault == nil || p.left == 0 || !p.fault.matches(r) {
		return nil
	}
	if p.left > 0 {
		p.left--
	}
	p.injected.Add(1)
	return p.fault
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	f := p.take(r)
	if f == nil {
		p.forward(w, r, nil)
		return
	}
	switch f.Mode {
	case ModeDrop:
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("faultproxy: response writer is not a Hijacker")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic("faultproxy: hijack: " + err.Error())
		}
		conn.Close()
	case Mode5xx:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":{"code":"injected","message":"faultproxy 503"}}`)
	case ModeDelay:
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			return
		}
		p.forward(w, r, nil)
	case ModeTruncate:
		p.forward(w, r, f)
	}
}

// forward proxies the request to the backend. A non-nil truncate fault
// cuts the response body after AfterLines NDJSON lines.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, truncate *Fault) {
	out := *r.URL
	out.Scheme = p.backend.Scheme
	out.Host = p.backend.Host
	req, err := http.NewRequestWithContext(r.Context(), r.Method, out.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if truncate != nil {
		// Drop the backend's Content-Length so the shortened body goes
		// out chunked and ends cleanly at the cut — the reader sees EOF
		// with no trailer line, not a transport-layer length mismatch.
		w.Header().Del("Content-Length")
	}
	w.WriteHeader(resp.StatusCode)
	if truncate == nil {
		io.Copy(w, resp.Body)
		return
	}
	fl, _ := w.(http.Flusher)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Bytes()
		if lines >= truncate.AfterLines {
			if truncate.MidLine && len(line) > 2 {
				// Leak a malformed prefix of the next line before dying.
				w.Write(line[:len(line)/2])
			}
			break
		}
		w.Write(line)
		w.Write([]byte("\n"))
		lines++
	}
	if fl != nil {
		fl.Flush()
	}
	// Returning without the remaining lines ends the chunked response
	// cleanly: the router sees EOF with no trailer line, exactly what a
	// mid-stream backend death looks like after the kernel flushes.
}
