package faultproxy

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// ndjsonBackend serves a fixed 4-line NDJSON stream (3 answers + a
// trailer) on /v1/stream and "ok" on /healthz.
func ndjsonBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"type":"answer","rank":1}`+"\n")
		io.WriteString(w, `{"type":"answer","rank":2}`+"\n")
		io.WriteString(w, `{"type":"answer","rank":3}`+"\n")
		io.WriteString(w, `{"type":"trailer","answers":3}`+"\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newProxy(t *testing.T, backend string) *Proxy {
	t.Helper()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func get(t *testing.T, url string) (*http.Response, []string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp, lines
}

func TestPassthrough(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	resp, lines := get(t, p.URL()+"/v1/stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if len(lines) != 4 || !strings.Contains(lines[3], "trailer") {
		t.Fatalf("passthrough mangled the stream: %v", lines)
	}
	if p.Injected() != 0 {
		t.Errorf("injected %d faults with none armed", p.Injected())
	}
}

func TestDropThenRecover(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: ModeDrop, Count: 2})
	for i := 0; i < 2; i++ {
		if _, err := http.Get(p.URL() + "/v1/stream"); err == nil {
			t.Fatalf("request %d: dropped connection produced no error", i)
		}
	}
	// Fault consumed: traffic passes again.
	resp, lines := get(t, p.URL()+"/v1/stream")
	if resp.StatusCode != http.StatusOK || len(lines) != 4 {
		t.Fatalf("after drops: HTTP %d, %d lines", resp.StatusCode, len(lines))
	}
	if p.Injected() != 2 {
		t.Errorf("injected = %d, want 2", p.Injected())
	}
}

func Test5xx(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: Mode5xx, Count: 1})
	resp, lines := get(t, p.URL()+"/v1/stream")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503", resp.StatusCode)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "injected") {
		t.Fatalf("503 body: %v", lines)
	}
}

func TestDelayPassesThrough(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: ModeDelay, Count: 1, Delay: 50 * time.Millisecond})
	start := time.Now()
	resp, lines := get(t, p.URL()+"/v1/stream")
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delayed request returned in %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK || len(lines) != 4 {
		t.Fatalf("delay corrupted the response: HTTP %d, %d lines", resp.StatusCode, len(lines))
	}
}

func TestTruncateCleanCut(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: ModeTruncate, Count: 1, AfterLines: 2})
	resp, lines := get(t, p.URL()+"/v1/stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("clean cut left %d lines, want 2: %v", len(lines), lines)
	}
	for _, l := range lines {
		if !strings.Contains(l, "answer") {
			t.Errorf("truncated stream leaked a non-answer line: %q", l)
		}
	}
}

func TestTruncateMidLine(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: ModeTruncate, Count: 1, AfterLines: 1, MidLine: true})
	resp, lines := get(t, p.URL()+"/v1/stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("mid-line cut left %d lines, want 2 (1 whole + 1 partial): %v", len(lines), lines)
	}
	if strings.HasSuffix(lines[1], "}") {
		t.Errorf("second line is well-formed JSON, want a partial: %q", lines[1])
	}
}

func TestHealthProbesUntouchedByDefault(t *testing.T) {
	ts := ndjsonBackend(t)
	p := newProxy(t, ts.URL)
	p.Set(&Fault{Mode: ModeDrop}) // unlimited, but /v1/ only
	resp, lines := get(t, p.URL()+"/healthz")
	if resp.StatusCode != http.StatusOK || len(lines) != 1 || lines[0] != "ok" {
		t.Fatalf("healthz through armed proxy: HTTP %d, %v", resp.StatusCode, lines)
	}
	if p.Injected() != 0 {
		t.Errorf("default matcher fired on /healthz")
	}
}
