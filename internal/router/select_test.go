package router

import (
	"testing"
	"time"
)

// mkGroup builds a shard group of n replicas with default (zero) state.
func mkGroup(n int) *shardGroup {
	g := &shardGroup{index: 0}
	for j := 0; j < n; j++ {
		g.replicas = append(g.replicas, &replicaState{shard: 0, replica: j, healthy: true})
	}
	return g
}

func order(reps []*replicaState) []int {
	out := make([]int, len(reps))
	for i, r := range reps {
		out[i] = r.replica
	}
	return out
}

func TestCandidatesTieKeepsIndexOrder(t *testing.T) {
	// Fresh replicas: no samples, no load — scores tie at the floor, and
	// the stable sort must preserve index order so single-replica and
	// pre-replica deployments behave identically to before.
	g := mkGroup(3)
	got := order(g.candidates())
	for i, idx := range got {
		if idx != i {
			t.Fatalf("tied candidates reordered: %v", got)
		}
	}
}

func TestCandidatesPreferLowerLatency(t *testing.T) {
	g := mkGroup(2)
	g.replicas[0].observeLatency(50 * time.Millisecond)
	g.replicas[1].observeLatency(5 * time.Millisecond)
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("slow replica selected first: %v", got)
	}
}

func TestCandidatesInflightSpreadsLoad(t *testing.T) {
	// Same latency, but replica 0 already carries two attempts: the
	// (inflight+1) factor must route the next query to replica 1.
	g := mkGroup(2)
	g.replicas[0].observeLatency(5 * time.Millisecond)
	g.replicas[1].observeLatency(5 * time.Millisecond)
	g.replicas[0].inflight.Add(2)
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("loaded replica selected first: %v", got)
	}
}

func TestCandidatesEwmaFloorKeepsFreshReplicasViable(t *testing.T) {
	// An untried replica (EWMA 0) scores at the 1ms floor: it beats a
	// replica measured slower than the floor, but not one measured
	// faster — fresh capacity is attractive, not irresistible.
	g := mkGroup(2)
	g.replicas[0].observeLatency(20 * time.Millisecond)
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("fresh replica not preferred over a 20ms one: %v", got)
	}
	g2 := mkGroup(2)
	g2.replicas[0].observeLatency(100 * time.Microsecond) // below the floor
	if got := order(g2.candidates()); got[0] != 0 {
		t.Fatalf("sub-floor replica not preferred over a fresh one: %v", got)
	}
}

func TestCandidatesUnhealthyLast(t *testing.T) {
	// The fastest replica in the group is down: it must sort after every
	// healthy one (last resort), regardless of score.
	g := mkGroup(3)
	g.replicas[0].observeLatency(time.Millisecond)
	g.replicas[0].setHealth(false, "probe failed", time.Now())
	g.replicas[1].observeLatency(30 * time.Millisecond)
	g.replicas[2].observeLatency(10 * time.Millisecond)
	got := order(g.candidates())
	if want := []int{2, 1, 0}; got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
}

func TestEwmaConverges(t *testing.T) {
	rep := &replicaState{}
	rep.observeLatency(10 * time.Millisecond)
	if got := rep.ewmaNS; got != 1e7 {
		t.Fatalf("first sample must seed the EWMA exactly: %g", got)
	}
	for i := 0; i < 50; i++ {
		rep.observeLatency(20 * time.Millisecond)
	}
	if got := rep.ewmaNS; got < 1.9e7 || got > 2.0e7 {
		t.Fatalf("EWMA did not converge toward the new level: %g", got)
	}
}

// trailerFor builds one shard's result with the given trailer fields.
func trailerFor(shard, retried int, mod func(*shardLine)) *shardResult {
	tr := &shardLine{
		Type:    "trailer",
		QueryID: "q-123",
		Algo:    "bidirectional",
		K:       10,
	}
	if mod != nil {
		mod(tr)
	}
	return &shardResult{shard: shard, retried: retried, trailer: tr}
}

func TestAggregateCachedANDSemantics(t *testing.T) {
	// cached only when EVERY shard answered from cache: one cold shard
	// (say, a failover to a cold replica) flips the aggregate to false.
	allWarm := aggregate([]*shardResult{
		trailerFor(0, 0, func(tr *shardLine) { tr.Cached = true }),
		trailerFor(1, 0, func(tr *shardLine) { tr.Cached = true }),
	})
	if !allWarm.cached {
		t.Error("all shards cached but aggregate cached=false")
	}
	oneCold := aggregate([]*shardResult{
		trailerFor(0, 0, func(tr *shardLine) { tr.Cached = true }),
		trailerFor(1, 1, func(tr *shardLine) { tr.Cached = false }),
	})
	if oneCold.cached {
		t.Error("one cold shard but aggregate cached=true")
	}
}

func TestAggregateFailoversSum(t *testing.T) {
	agg := aggregate([]*shardResult{
		trailerFor(0, 0, nil),
		trailerFor(1, 2, nil), // two extra attempts before an answer
		trailerFor(2, 1, nil),
	})
	if agg.failovers != 3 {
		t.Errorf("failovers = %d, want 3 (sum of extra attempts)", agg.failovers)
	}
}

func TestAggregateCountersAndStickyFlags(t *testing.T) {
	agg := aggregate([]*shardResult{
		trailerFor(0, 0, func(tr *shardLine) {
			tr.Stats = statsJSON{NodesExplored: 10, NodesTouched: 20, EdgesRelaxed: 30,
				AnswersGenerated: 2, WorkersUsed: 4, DurationMS: 1.5}
		}),
		trailerFor(1, 0, func(tr *shardLine) {
			tr.Truncated = true
			tr.Degraded = true
			tr.Stats = statsJSON{NodesExplored: 1, NodesTouched: 2, EdgesRelaxed: 3,
				AnswersGenerated: 1, WorkersUsed: 8, DurationMS: 0.5, BudgetExhausted: true}
		}),
	})
	if agg.stats.NodesExplored != 11 || agg.stats.NodesTouched != 22 || agg.stats.EdgesRelaxed != 33 || agg.stats.AnswersGenerated != 3 {
		t.Errorf("work counters did not sum: %+v", agg.stats)
	}
	if agg.stats.WorkersUsed != 8 {
		t.Errorf("workers_used = %d, want max 8", agg.stats.WorkersUsed)
	}
	if agg.stats.DurationMS != 1.5 {
		t.Errorf("duration_ms = %g, want slowest shard 1.5", agg.stats.DurationMS)
	}
	if !agg.truncated || !agg.degraded || !agg.stats.BudgetExhausted {
		t.Errorf("sticky OR flags lost: truncated=%v degraded=%v budget=%v",
			agg.truncated, agg.degraded, agg.stats.BudgetExhausted)
	}
	if agg.queryID != "q-123" || agg.algo != "bidirectional" || agg.k != 10 {
		t.Errorf("identity fields not taken from shard 0: %+v", agg)
	}
}
