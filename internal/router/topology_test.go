package router

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSingleReplicaTopology(t *testing.T) {
	got := SingleReplicaTopology([]string{"http://a", "http://b"})
	want := [][]string{{"http://a"}, {"http://b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseShardSpecs(t *testing.T) {
	got, err := ParseShardSpecs([]string{
		"1=http://c",
		"0 = http://a, http://b",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a", "http://b"}, {"http://c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseShardSpecsErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		frag string
	}{
		{"no equals", []string{"http://a"}, "want <index>="},
		{"bad index", []string{"x=http://a"}, "bad index"},
		{"out of range", []string{"0=http://a", "2=http://b"}, "out of range"},
		{"duplicate", []string{"0=http://a", "0=http://b"}, "specified twice"},
		{"no urls", []string{"0= , "}, "no replica URLs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseShardSpecs(tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestParseTopology(t *testing.T) {
	got, err := ParseTopology([]byte(`{"shards": [["http://a", "http://b"], ["http://c"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a", "http://b"}, {"http://c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		frag string
	}{
		{"unknown field", `{"shards": [["http://a"]], "extra": 1}`, "unknown field"},
		{"no shards", `{"shards": []}`, "no shards"},
		{"empty replica set", `{"shards": [["http://a"], []]}`, "shard 1 lists no replica URLs"},
		{"not json", `shards: yaml?`, "decoding topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %v, want containing %q", err, tc.frag)
			}
		})
	}
}

func TestLoadTopologyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(`{"shards": [["http://a"]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTopologyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, [][]string{{"http://a"}}) {
		t.Fatalf("got %v", got)
	}
	if _, err := LoadTopologyFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file produced no error")
	}
}

// TestNewValidation pins the constructor's topology checks, including
// the cross-shard duplicate-URL guard.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		frag string
	}{
		{"no shards", Config{}, "no shards"},
		{"empty group", Config{Shards: [][]string{{}}}, "no replicas"},
		{"empty url", Config{Shards: [][]string{{" "}}}, "empty URL"},
		{"bad scheme", Config{Shards: [][]string{{"ftp://a"}}}, "http://"},
		{"duplicate across shards", Config{Shards: [][]string{{"http://a"}, {"http://a"}}}, "duplicate"},
		{"duplicate within shard", Config{Shards: [][]string{{"http://a", "http://a/"}}}, "duplicate"},
		{"negative hedge", Config{Shards: [][]string{{"http://a"}}, HedgeAfter: -1}, "HedgeAfter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := New(tc.cfg)
			if err == nil {
				rt.Close()
				t.Fatalf("config accepted, want error containing %q", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %v, want containing %q", err, tc.frag)
			}
		})
	}
}
