package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// setRepl fakes a probe's replication refresh on a replica.
func setRepl(rep *replicaState, lag int64, connected bool) {
	rep.mu.Lock()
	rep.follower = true
	rep.lagRecords = lag
	rep.replConnected = connected
	rep.mu.Unlock()
}

func TestCandidatesDemoteStaleFollower(t *testing.T) {
	// Replica 0 is a follower 10 records behind a bound of 5; replica 1
	// is a primary with a much worse load score. Freshness outranks
	// load: the fresh replica must come first, the stale one kept as a
	// failover candidate ahead of nothing but the unhealthy tier.
	g := mkGroup(2)
	g.maxLag = 5
	setRepl(g.replicas[0], 10, true)
	g.replicas[1].observeLatency(500 * time.Millisecond)
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("stale follower selected over fresh primary: %v", got)
	}

	// Re-promotion at lag 0: the follower caught up, and its better
	// load score makes it first choice again.
	setRepl(g.replicas[0], 0, true)
	if got := order(g.candidates()); got[0] != 0 {
		t.Fatalf("caught-up follower not re-promoted: %v", got)
	}
}

func TestCandidatesStaleOutranksUnhealthy(t *testing.T) {
	g := mkGroup(2)
	g.maxLag = 5
	setRepl(g.replicas[0], 100, true)
	g.replicas[1].setHealth(false, "probe failed", time.Now())
	if got := order(g.candidates()); got[0] != 0 {
		t.Fatalf("unhealthy replica selected over stale-but-alive follower: %v", got)
	}
}

func TestCandidatesDisconnectedFollowerIsStale(t *testing.T) {
	// A follower whose tail is cut reports a frozen lag number; the lag
	// alone says "fresh", but the cut means staleness is growing
	// unboundedly — it must demote.
	g := mkGroup(2)
	g.maxLag = 5
	setRepl(g.replicas[0], 0, false)
	g.replicas[1].observeLatency(500 * time.Millisecond)
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("disconnected follower selected first: %v", got)
	}
}

func TestCandidatesNegativeBoundDisablesDemotion(t *testing.T) {
	g := mkGroup(2)
	g.maxLag = -1
	setRepl(g.replicas[0], 1_000_000, false)
	if got := order(g.candidates()); got[0] != 0 {
		t.Fatalf("demotion applied with a negative bound: %v", got)
	}
}

// TestProbeReadsReplicationBlock drives the real probe path against fake
// backends: one primary, one follower whose /statusz discloses a
// replication block with lag beyond the bound. The router must parse the
// block, demote the follower in selection, disclose the lag and
// staleness in its own /statusz, and re-promote once a later probe sees
// lag 0.
func TestProbeReadsReplicationBlock(t *testing.T) {
	var lag atomic.Int64
	lag.Store(50)
	mkBackend := func(repl bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case "/healthz":
				fmt.Fprintln(w, "ok")
			case "/statusz":
				doc := map[string]any{"dataset": map[string]any{"nodes": 100}}
				if repl {
					doc["replication"] = map[string]any{
						"primary":     "http://primary:8080",
						"connected":   true,
						"lag_records": lag.Load(),
					}
				}
				json.NewEncoder(w).Encode(doc)
			default:
				http.NotFound(w, r)
			}
		}))
	}
	primary := mkBackend(false)
	defer primary.Close()
	follower := mkBackend(true)
	defer follower.Close()

	rt, err := New(Config{
		Shards:        [][]string{{follower.URL, primary.URL}},
		ProbeInterval: -1, // the initial round only; reprobes are explicit
		MaxLagRecords: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// The initial probe round runs asynchronously; a deterministic
	// explicit round guarantees the claims are in before asserting.
	rt.probeAll(t.Context())

	g := rt.groups[0]
	if got := order(g.candidates()); got[0] != 1 {
		t.Fatalf("lagging follower not demoted after probe: %v", got)
	}

	// The router's own statusz discloses the follower row.
	req := httptest.NewRequest(http.MethodGet, "/statusz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var doc struct {
		Shards []struct {
			Replicas []replicaStatusJSON `json:"replicas"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	frow := doc.Shards[0].Replicas[0]
	if !frow.Follower || frow.ReplicationLagRecords == nil || *frow.ReplicationLagRecords != 50 || !frow.Stale {
		t.Fatalf("follower row not disclosed: %+v", frow)
	}
	if prow := doc.Shards[0].Replicas[1]; prow.Follower || prow.Stale {
		t.Fatalf("primary row marked as follower: %+v", prow)
	}

	// The follower catches up; the next probe round re-promotes it.
	lag.Store(0)
	rt.probeAll(t.Context())
	if got := order(g.candidates()); got[0] != 0 {
		t.Fatalf("caught-up follower not re-promoted after reprobe: %v", got)
	}
}
