package router_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"banks"
	"banks/internal/router"
	"banks/internal/router/faultproxy"
	"banks/internal/shard"
)

// buildShardSnapshots writes the corpus snapshot and its shard files,
// returning the unsharded base path.
func buildShardSnapshots(t *testing.T) string {
	t.Helper()
	built := corpusDB(t)
	base := filepath.Join(t.TempDir(), "corpus.snap")
	if err := built.WriteSnapshotFile(base); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.WriteFiles(base, nshards, built.Graph, built.Index, built.Mapping, built.EdgeTypes); err != nil {
		t.Fatal(err)
	}
	return base
}

func openSnap(t *testing.T, path string) *banks.DB {
	t.Helper()
	db, err := banks.OpenSnapshot(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// repDeployment is a replicated sharded test topology: a single-node
// baseline plus two replicas per shard (each its own banksd over the
// same shard snapshot), with fault-injecting proxies in front of some
// replicas.
type repDeployment struct {
	single    *httptest.Server
	backends  [][]*httptest.Server // [shard][replica]
	proxies   [][]*faultproxy.Proxy
	router    *httptest.Server
	routerRaw *router.Router
}

type repOpts struct {
	hedgeAfter time.Duration
	// proxyBoth fronts replica 1 with a faultproxy too (replica 0 always
	// gets one); false leaves replica 1 a direct backend.
	proxyBoth bool
	// direct skips proxies entirely: both replicas are direct backends
	// (for the kill-under-load hammer).
	direct bool
}

func deployReplicated(t *testing.T, o repOpts) *repDeployment {
	t.Helper()
	base := buildShardSnapshots(t)
	d := &repDeployment{
		single:   newBackend(t, openSnap(t, base), "single"),
		backends: make([][]*httptest.Server, nshards),
		proxies:  make([][]*faultproxy.Proxy, nshards),
	}
	topo := make([][]string, nshards)
	for s := 0; s < nshards; s++ {
		for rep := 0; rep < 2; rep++ {
			ts := newBackend(t, openSnap(t, shard.FilePath(base, s, nshards)), fmt.Sprintf("shard %d", s))
			d.backends[s] = append(d.backends[s], ts)
			if !o.direct && (rep == 0 || o.proxyBoth) {
				px, err := faultproxy.New(ts.URL)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(px.Close)
				d.proxies[s] = append(d.proxies[s], px)
				topo[s] = append(topo[s], px.URL())
			} else {
				d.proxies[s] = append(d.proxies[s], nil)
				topo[s] = append(topo[s], ts.URL)
			}
		}
	}
	rt, err := router.New(router.Config{Shards: topo, ProbeInterval: -1, HedgeAfter: o.hedgeAfter})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	d.routerRaw = rt
	d.router = httptest.NewServer(rt.Handler())
	t.Cleanup(d.router.Close)
	// Wait out the router's one-shot initial probe round (ProbeInterval
	// -1 disables the periodic ones): a probe result landing mid-test
	// would re-promote a replica the test just demoted.
	waitStatusz(t, d.router.URL, func(doc map[string]any) bool {
		return doc["all_healthy"] == true
	})
	return d
}

// assertIdenticalBatch compares the routed /v1/search body to the
// single-node baseline byte-for-byte and checks the failover disclosure.
func assertIdenticalBatch(t *testing.T, d *repDeployment, path, name string, wantFailovers bool) {
	t.Helper()
	want := fetchSearch(t, d.single.URL+path)
	got := fetchSearch(t, d.router.URL+path)
	if got.QueryID != want.QueryID || got.Truncated != want.Truncated {
		t.Errorf("%s: header mismatch: (%s,%v) vs (%s,%v)", name, got.QueryID, got.Truncated, want.QueryID, want.Truncated)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%s: %d answers, want %d", name, len(got.Answers), len(want.Answers))
	}
	for i := range got.Answers {
		if string(got.Answers[i]) != string(want.Answers[i]) {
			t.Errorf("%s: answer %d differs under faults:\n  routed: %s\n  single: %s", name, i, got.Answers[i], want.Answers[i])
		}
	}
	if wantFailovers && got.Stats.Failovers == 0 {
		t.Errorf("%s: response discloses zero failovers despite injected faults", name)
	}
}

// assertIdenticalStream does the same for the NDJSON stream endpoint.
func assertIdenticalStream(t *testing.T, d *repDeployment, path, name string, wantFailovers bool) {
	t.Helper()
	spath := strings.Replace(path, "/v1/search?", "/v1/search/stream?", 1)
	want, _ := fetchStream(t, d.single.URL+spath)
	got, trailer := fetchStream(t, d.router.URL+spath)
	if len(got) != len(want) {
		t.Fatalf("%s: stream has %d answers, want %d", name, len(got), len(want))
	}
	for i := range got {
		if string(got[i].Answer) != string(want[i].Answer) {
			t.Errorf("%s: stream answer %d differs under faults:\n  routed: %s\n  single: %s", name, i, got[i].Answer, want[i].Answer)
		}
	}
	if trailer.Error != "" {
		t.Errorf("%s: trailer.error = %q", name, trailer.Error)
	}
	if wantFailovers && trailer.Stats.Failovers == 0 {
		t.Errorf("%s: trailer discloses zero failovers despite injected faults", name)
	}
}

// TestFailoverDifferential is the tentpole proof: for every fault class,
// every algorithm, and both response modes, the routed answer under
// injected replica failures is byte-identical to the healthy single-node
// baseline, and the response discloses that a retry happened. Faults are
// armed on every shard's current primary replica before each query, so
// each query really exercises the failover path; the primary flips after
// each faulted query because the failed replica is demoted.
func TestFailoverDifferential(t *testing.T) {
	classes := []struct {
		name  string
		fault faultproxy.Fault
	}{
		{"drop", faultproxy.Fault{Mode: faultproxy.ModeDrop, Count: 1}},
		{"http503", faultproxy.Fault{Mode: faultproxy.Mode5xx, Count: 1}},
		{"truncate-clean", faultproxy.Fault{Mode: faultproxy.ModeTruncate, Count: 1, AfterLines: 0}},
		{"truncate-midline", faultproxy.Fault{Mode: faultproxy.ModeTruncate, Count: 1, AfterLines: 0, MidLine: true}},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			d := deployReplicated(t, repOpts{proxyBoth: true})
			primary := 0
			for _, algo := range banks.Algorithms() {
				for _, mode := range []string{"batch", "stream"} {
					for s := 0; s < nshards; s++ {
						f := tc.fault
						d.proxies[s][primary].Set(&f)
					}
					path := fmt.Sprintf("/v1/search?q=%s&algo=%s&k=10", url.QueryEscape("gray transaction"), algo)
					name := fmt.Sprintf("%s/%s/%s", tc.name, algo, mode)
					if mode == "batch" {
						assertIdenticalBatch(t, d, path, name, true)
					} else {
						assertIdenticalStream(t, d, path, name, true)
					}
					// Every shard's primary faulted and was demoted; its
					// second replica answered and is the next primary.
					primary = 1 - primary
				}
			}
		})
	}
}

// TestHedgeDifferential covers the latency-spike class: the primary
// replica of every shard is delayed far past the hedge budget, the
// runner-up answers, and the response is still byte-identical with the
// hedge disclosed. Delayed attempts are canceled, not failed, so the
// slow replica keeps its healthy status (and its selection slot) across
// queries — the delay fault must fire every time.
func TestHedgeDifferential(t *testing.T) {
	d := deployReplicated(t, repOpts{hedgeAfter: 20 * time.Millisecond})
	for s := 0; s < nshards; s++ {
		d.proxies[s][0].Set(&faultproxy.Fault{Mode: faultproxy.ModeDelay, Delay: 2 * time.Second})
	}
	for _, algo := range banks.Algorithms() {
		for _, mode := range []string{"batch", "stream"} {
			path := fmt.Sprintf("/v1/search?q=%s&algo=%s&k=10", url.QueryEscape("database query"), algo)
			name := fmt.Sprintf("hedge/%s/%s", algo, mode)
			if mode == "batch" {
				assertIdenticalBatch(t, d, path, name, true)
			} else {
				assertIdenticalStream(t, d, path, name, true)
			}
		}
	}
	// The hedge counter moved, and no delayed attempt was mistaken for a
	// replica failure: every replica is still healthy.
	text := fetchMetrics(t, d.router.URL)
	if v := metricValue(t, text, "banksrouter_hedges_total"); v == 0 {
		t.Error("banksrouter_hedges_total is zero after hedged queries")
	}
	doc := waitStatusz(t, d.router.URL, func(doc map[string]any) bool { return true })
	if doc["all_healthy"] != true || doc["degraded"] != false {
		t.Errorf("hedging demoted a replica: all_healthy=%v degraded=%v", doc["all_healthy"], doc["degraded"])
	}
}

func fetchMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// metricValue extracts an unlabeled counter/gauge value from Prometheus
// text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestMidStreamTruncationNeverSilent pins the idempotent-retry contract
// (the router must never splice or silently truncate): a replica that
// dies after surfacing its first answer line is either retried
// byte-identically on another replica, or — when every replica of the
// shard truncates — the query fails loudly with 502. A 200 with fewer
// answers than the baseline is the one forbidden outcome.
func TestMidStreamTruncationNeverSilent(t *testing.T) {
	const q = "gray transaction"
	path := "/v1/search?q=" + url.QueryEscape(q) + "&algo=bidirectional&k=10"

	t.Run("retried byte-identically", func(t *testing.T) {
		d := deployReplicated(t, repOpts{proxyBoth: true})
		want := fetchSearch(t, d.single.URL+path)
		if len(want.Answers) < 2 {
			t.Fatalf("corpus invariant: query %q returns %d answers, need >= 2 for a mid-stream cut", q, len(want.Answers))
		}
		// Cut every shard's primary after its first line. Shards whose
		// stream fits in one line pass through complete; the shard
		// holding the component emits answer 1 and then dies mid-stream.
		for s := 0; s < nshards; s++ {
			d.proxies[s][0].Set(&faultproxy.Fault{Mode: faultproxy.ModeTruncate, Count: 1, AfterLines: 1})
		}
		assertIdenticalBatch(t, d, path, "mid-stream retry", true)
	})

	t.Run("all replicas truncate: loud 502", func(t *testing.T) {
		d := deployReplicated(t, repOpts{proxyBoth: true})
		for s := 0; s < nshards; s++ {
			for rep := 0; rep < 2; rep++ {
				d.proxies[s][rep].Set(&faultproxy.Fault{Mode: faultproxy.ModeTruncate, AfterLines: 1})
			}
		}
		resp, err := http.Get(d.router.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("HTTP %d, want 502: a universally truncated shard must fail the query, never shorten it", resp.StatusCode)
		}
		var body struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Error.Code != "shard_error" {
			t.Errorf("error code %q, want shard_error", body.Error.Code)
		}
		if !strings.Contains(body.Error.Message, "without a trailer") {
			t.Errorf("error message %q does not name the truncation", body.Error.Message)
		}
	})
}

// TestTrailerAggregationUnderFailover is the end-to-end check of the
// trailer recipe when one shard answers from its second replica: cached
// keeps AND-semantics, counters still sum, failovers is disclosed on the
// failed-over query only, and degraded stays false — a failover is a
// retry, not an approximation.
func TestTrailerAggregationUnderFailover(t *testing.T) {
	base := buildShardSnapshots(t)
	single := newBackend(t, openSnap(t, base), "single")
	topo := make([][]string, nshards)
	var px *faultproxy.Proxy
	for s := 0; s < nshards; s++ {
		ts := newBackend(t, openSnap(t, shard.FilePath(base, s, nshards)), fmt.Sprintf("shard %d", s))
		topo[s] = []string{ts.URL}
		if s == 1 {
			// Shard 1 gets a faulty primary and a healthy second replica;
			// the other shards stay single-replica so their selection is
			// pinned and the cache assertions are deterministic.
			var err error
			px, err = faultproxy.New(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(px.Close)
			ts2 := newBackend(t, openSnap(t, shard.FilePath(base, s, nshards)), "shard 1 replica 1")
			topo[s] = []string{px.URL(), ts2.URL}
		}
	}
	rt, err := router.New(router.Config{Shards: topo, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	// Let the one-shot initial probe round finish so a late probe result
	// cannot re-promote the replica the first query demotes.
	waitStatusz(t, rts.URL, func(doc map[string]any) bool {
		return doc["all_healthy"] == true
	})

	path := "/v1/search/stream?q=" + url.QueryEscape("gray transaction") + "&algo=bidirectional&k=10"
	wantAnswers, wantTrailer := fetchStream(t, single.URL+path)

	// Query 1, with shard 1's primary dropping the connection: answered
	// via failover, all engines cold.
	px.Set(&faultproxy.Fault{Mode: faultproxy.ModeDrop, Count: 1})
	got1, tr1 := fetchStream(t, rts.URL+path)
	if len(got1) != len(wantAnswers) {
		t.Fatalf("failover query: %d answers, want %d", len(got1), len(wantAnswers))
	}
	for i := range got1 {
		if string(got1[i].Answer) != string(wantAnswers[i].Answer) {
			t.Errorf("failover query: answer %d differs", i)
		}
	}
	if tr1.Stats.Failovers != 1 {
		t.Errorf("failover query: trailer failovers = %d, want 1", tr1.Stats.Failovers)
	}
	if tr1.Cached {
		t.Error("failover query: cached true on cold engines")
	}
	if tr1.Degraded {
		t.Error("failover query: degraded true — a replica retry is not degradation")
	}
	if tr1.Stats.Shards != nshards {
		t.Errorf("failover query: stats.shards = %d, want %d", tr1.Stats.Shards, nshards)
	}

	// Query 2, same query, no fault: shard 1 is now served by its second
	// replica, whose cache query 1's failover warmed; shards 0 and 2 are
	// warm from query 1. Every contributor answers from cache → AND holds.
	got2, tr2 := fetchStream(t, rts.URL+path)
	if len(got2) != len(wantAnswers) {
		t.Fatalf("cached query: %d answers, want %d", len(got2), len(wantAnswers))
	}
	if !tr2.Cached {
		t.Error("cached query: cached false though every shard (incl. the failover replica) answered from cache")
	}
	if tr2.Stats.Failovers != 0 {
		t.Errorf("cached query: failovers = %d, want 0 — serving from the promoted replica is not a retry", tr2.Stats.Failovers)
	}
	if tr2.Degraded {
		t.Error("cached query: degraded true")
	}
	// Counters still aggregate per the healthy recipe: the cached replay
	// reports the original work, identically to the single-node trailer.
	if tr2.Answers != wantTrailer.Answers {
		t.Errorf("cached query: trailer answers = %d, want %d", tr2.Answers, wantTrailer.Answers)
	}
}

// TestKillReplicaUnderLoad is the survivability hammer: 2 replicas × 3
// shards under concurrent query load, one replica hard-killed mid-run.
// Every request must still answer 200 with the baseline bytes — the
// router absorbs the death via failover, and /statusz discloses the
// demoted replica afterwards.
func TestKillReplicaUnderLoad(t *testing.T) {
	d := deployReplicated(t, repOpts{direct: true})
	path := "/v1/search?q=" + url.QueryEscape("gray transaction") + "&algo=bidirectional&k=5"
	want := fetchSearch(t, d.single.URL+path)
	wantRaw := make([]string, len(want.Answers))
	for i, a := range want.Answers {
		wantRaw[i] = string(a)
	}

	const (
		workers = 8
		perGoro = 25
		killAt  = 40 // total requests completed before the kill fires
	)
	var (
		done     sync.WaitGroup
		mu       sync.Mutex
		finished int
		killed   bool
		failures []string
	)
	kill := func() {
		// SIGKILL-equivalent for an in-process backend: drop live
		// connections, then refuse new ones.
		d.backends[1][0].CloseClientConnections()
		d.backends[1][0].Close()
	}
	client := &http.Client{}
	done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer done.Done()
			for i := 0; i < perGoro; i++ {
				resp, err := client.Get(d.router.URL + path)
				var failure string
				if err != nil {
					failure = fmt.Sprintf("transport error: %v", err)
				} else {
					var body searchBody
					decErr := json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					switch {
					case resp.StatusCode != http.StatusOK:
						failure = fmt.Sprintf("HTTP %d", resp.StatusCode)
					case decErr != nil:
						failure = fmt.Sprintf("decode: %v", decErr)
					case len(body.Answers) != len(wantRaw):
						failure = fmt.Sprintf("%d answers, want %d", len(body.Answers), len(wantRaw))
					default:
						for j := range body.Answers {
							if string(body.Answers[j]) != wantRaw[j] {
								failure = fmt.Sprintf("answer %d differs", j)
								break
							}
						}
					}
				}
				mu.Lock()
				finished++
				if failure != "" {
					failures = append(failures, failure)
				}
				if !killed && finished >= killAt {
					killed = true
					mu.Unlock()
					kill()
					continue
				}
				mu.Unlock()
			}
		}()
	}
	done.Wait()
	if !killed {
		t.Fatal("kill never fired")
	}
	if len(failures) > 0 {
		t.Fatalf("%d/%d requests failed after a replica kill; first: %s",
			len(failures), workers*perGoro, failures[0])
	}
	// The dead replica is demoted and disclosed; the deployment is
	// degraded but every shard still answerable.
	doc := waitStatusz(t, d.router.URL, func(doc map[string]any) bool {
		return doc["degraded"] == true
	})
	if doc["all_healthy"] != true {
		t.Errorf("all_healthy = %v, want true: shard 1 still has a live replica", doc["all_healthy"])
	}
	row := doc["shards"].([]any)[1].(map[string]any)
	rep0 := row["replicas"].([]any)[0].(map[string]any)
	if rep0["healthy"] == true {
		t.Error("killed replica still marked healthy in /statusz")
	}
	if !row["healthy"].(bool) {
		t.Error("shard 1 marked unanswerable though replica 1 is alive")
	}
}
