package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"banks"
)

// statsJSON mirrors the shard server's wire stats (internal/server
// statsJSON) so per-shard counters can be decoded and aggregated.
type statsJSON struct {
	NodesExplored    int     `json:"nodes_explored"`
	NodesTouched     int     `json:"nodes_touched"`
	EdgesRelaxed     int     `json:"edges_relaxed"`
	AnswersGenerated int     `json:"answers_generated"`
	WorkersUsed      int     `json:"workers_used"`
	DurationMS       float64 `json:"duration_ms"`
	BudgetExhausted  bool    `json:"budget_exhausted,omitempty"`
}

// shardLine is one NDJSON line of a shard's /v1/search/stream response —
// the union of the answer-line and trailer-line fields, discriminated by
// Type.
type shardLine struct {
	Type string `json:"type"`
	// Answer-line fields.
	Rank        int             `json:"rank"`
	GeneratedMS float64         `json:"generated_ms"`
	OutputMS    float64         `json:"output_ms"`
	Answer      json.RawMessage `json:"answer"`
	// Trailer-line fields.
	QueryID   string    `json:"query_id"`
	Algo      string    `json:"algo"`
	K         int       `json:"k"`
	Clamped   []string  `json:"clamped"`
	Truncated bool      `json:"truncated"`
	Cached    bool      `json:"cached"`
	Degraded  bool      `json:"degraded"`
	Answers   int       `json:"answers"`
	Error     string    `json:"error"`
	Stats     statsJSON `json:"stats"`
}

// answerKey is the subset of the wire answer object the merge recipe
// needs. encoding/json formats float64 with the shortest representation
// that round-trips, so Score/EdgeScore decode back to the exact bits the
// shard computed.
type answerKey struct {
	Root      banks.NodeID `json:"root"`
	Score     float64      `json:"score"`
	EdgeScore float64      `json:"edge_score"`
	Edges     []struct {
		From banks.NodeID `json:"from"`
		To   banks.NodeID `json:"to"`
	} `json:"edges"`
}

// wireAnswer is one answer gathered from a shard: the raw JSON object
// (passed through to the client byte-for-byte) plus the skeletal
// banks.Answer the merge orders and dedupes by.
type wireAnswer struct {
	shard       int
	generatedMS float64
	outputMS    float64
	raw         json.RawMessage
	key         *banks.Answer
}

// shardResult is one shard's complete contribution to a query.
type shardResult struct {
	shard   int
	answers []*wireAnswer
	trailer *shardLine
	elapsed time.Duration
}

// shardError identifies which shard failed a fan-out and why.
type shardError struct {
	shard int
	url   string
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.shard, e.url, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// maxLineBytes bounds one NDJSON line from a shard. Answer trees are
// dmax-bounded and labels are short, so real lines are a few KB; the
// limit only guards against a misbehaving backend.
const maxLineBytes = 8 << 20

// scatter fans the request out to every shard's /v1/search/stream and
// gathers the complete per-shard results. The request is forwarded
// verbatim: same method, same query parameters, same body, same X-Tenant
// header. All shards must succeed; the first failure (by shard index)
// aborts the query with a *shardError.
func (rt *Router) scatter(r *http.Request, body []byte) ([]*shardResult, error) {
	results := make([]*shardResult, len(rt.shards))
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shardState) {
			defer wg.Done()
			results[i], errs[i] = rt.fetchShard(r.Context(), sh, r, body)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &shardError{shard: i, url: rt.shards[i].url, err: err}
		}
	}
	return results, nil
}

// fetchShard runs one shard's stream to completion and parses it. It
// also feeds the shard's health state and per-shard metrics: a completed
// stream marks the shard healthy, any failure marks it unhealthy.
func (rt *Router) fetchShard(ctx context.Context, sh *shardState, orig *http.Request, body []byte) (*shardResult, error) {
	start := time.Now()
	res, err := rt.fetchStream(ctx, sh, orig, body)
	elapsed := time.Since(start)
	if err != nil {
		rt.met.observeShard(sh.index, false, elapsed)
		if sh.setHealth(false, err.Error(), time.Now()) && rt.logger != nil {
			rt.logger.Printf("shard %d (%s) unhealthy: %v", sh.index, sh.url, err)
		}
		return nil, err
	}
	rt.met.observeShard(sh.index, true, elapsed)
	if sh.setHealth(true, "", time.Now()) && rt.logger != nil {
		rt.logger.Printf("shard %d (%s) healthy", sh.index, sh.url)
	}
	res.elapsed = elapsed
	return res, nil
}

func (rt *Router) fetchStream(ctx context.Context, sh *shardState, orig *http.Request, body []byte) (*shardResult, error) {
	u := sh.url + "/v1/search/stream"
	if orig.URL.RawQuery != "" {
		u += "?" + orig.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, orig.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := orig.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if tenant := orig.Header.Get("X-Tenant"); tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeShardHTTPError(resp)
	}

	res := &shardResult{shard: sh.index}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line shardLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("malformed stream line: %w", err)
		}
		switch line.Type {
		case "answer":
			var key answerKey
			if err := json.Unmarshal(line.Answer, &key); err != nil {
				return nil, fmt.Errorf("malformed answer object: %w", err)
			}
			skel := &banks.Answer{Root: key.Root, Score: key.Score, EdgeScore: key.EdgeScore}
			if len(key.Edges) > 0 {
				skel.Edges = make([]banks.TreeEdge, len(key.Edges))
				for i, e := range key.Edges {
					skel.Edges[i] = banks.TreeEdge{From: e.From, To: e.To}
				}
			}
			res.answers = append(res.answers, &wireAnswer{
				shard:       sh.index,
				generatedMS: line.GeneratedMS,
				outputMS:    line.OutputMS,
				raw:         append(json.RawMessage(nil), line.Answer...),
				key:         skel,
			})
		case "trailer":
			if res.trailer != nil {
				return nil, fmt.Errorf("stream carried more than one trailer")
			}
			t := line
			res.trailer = &t
		default:
			return nil, fmt.Errorf("unknown stream line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stream: %w", err)
	}
	if res.trailer == nil {
		return nil, fmt.Errorf("stream ended without a trailer")
	}
	if res.trailer.Error != "" {
		return nil, fmt.Errorf("in-band stream error: %s", res.trailer.Error)
	}
	return res, nil
}

// shardHTTPError is a shard's own HTTP rejection (as opposed to an
// infrastructure failure reaching it): status and error code survive so
// the router can pass client faults (4xx) through instead of relabeling
// them 502.
type shardHTTPError struct {
	status  int
	code    string
	message string
}

func (e *shardHTTPError) Error() string {
	if e.code != "" {
		return fmt.Sprintf("HTTP %d (%s): %s", e.status, e.code, e.message)
	}
	return fmt.Sprintf("HTTP %d", e.status)
}

// decodeShardHTTPError turns a non-200 shard response into an error,
// surfacing the shard's own JSON error envelope when it sent one.
func decodeShardHTTPError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	herr := &shardHTTPError{status: resp.StatusCode}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error.Message != "" {
		herr.code = body.Error.Code
		herr.message = body.Error.Message
	}
	return herr
}

// mergeResults runs the gathered per-shard answer lists through the
// canonical top-k merge (banks.MergeTopK) and maps the surviving
// skeletal answers back to their raw wire objects, preserving the
// shards' bytes untouched. k comes from the first shard's trailer — the
// post-clamp k every identically-configured shard normalized to.
func mergeResults(results []*shardResult) []*wireAnswer {
	k := results[0].trailer.K
	lists := make([][]*banks.Answer, len(results))
	byKey := make(map[*banks.Answer]*wireAnswer)
	for i, res := range results {
		lists[i] = make([]*banks.Answer, len(res.answers))
		for j, wa := range res.answers {
			lists[i][j] = wa.key
			byKey[wa.key] = wa
		}
	}
	merged := banks.MergeTopK(k, lists...)
	out := make([]*wireAnswer, len(merged))
	for i, a := range merged {
		out[i] = byKey[a]
	}
	return out
}

// aggregate folds the per-shard trailers into the routed response's
// summary fields. Work counters sum across shards (the fan-out really
// did all of it); duration is the slowest shard (the critical path);
// workers_used is the widest intra-query parallelism any shard applied
// (shards run concurrently, so summing would overstate it). Truncated,
// degraded and budget_exhausted are sticky ORs; cached only when every
// shard answered from its cache. Identity fields (query_id, algo, k,
// clamped) come from shard 0 — identical across identically-configured
// shards, since the query ID is a content hash of the query itself.
type aggregateTrailer struct {
	queryID   string
	algo      string
	k         int
	clamped   []string
	truncated bool
	cached    bool
	degraded  bool
	stats     statsJSON
}

func aggregate(results []*shardResult) aggregateTrailer {
	t0 := results[0].trailer
	agg := aggregateTrailer{
		queryID: t0.QueryID,
		algo:    t0.Algo,
		k:       t0.K,
		clamped: t0.Clamped,
		cached:  true,
	}
	for _, res := range results {
		t := res.trailer
		agg.truncated = agg.truncated || t.Truncated
		agg.cached = agg.cached && t.Cached
		agg.degraded = agg.degraded || t.Degraded
		agg.stats.NodesExplored += t.Stats.NodesExplored
		agg.stats.NodesTouched += t.Stats.NodesTouched
		agg.stats.EdgesRelaxed += t.Stats.EdgesRelaxed
		agg.stats.AnswersGenerated += t.Stats.AnswersGenerated
		agg.stats.BudgetExhausted = agg.stats.BudgetExhausted || t.Stats.BudgetExhausted
		if t.Stats.WorkersUsed > agg.stats.WorkersUsed {
			agg.stats.WorkersUsed = t.Stats.WorkersUsed
		}
		if t.Stats.DurationMS > agg.stats.DurationMS {
			agg.stats.DurationMS = t.Stats.DurationMS
		}
	}
	return agg
}

// getJSON fetches a URL and decodes its JSON body.
func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
