package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"banks"
)

// statsJSON mirrors the shard server's wire stats (internal/server
// statsJSON) so per-shard counters can be decoded and aggregated.
type statsJSON struct {
	NodesExplored    int     `json:"nodes_explored"`
	NodesTouched     int     `json:"nodes_touched"`
	EdgesRelaxed     int     `json:"edges_relaxed"`
	AnswersGenerated int     `json:"answers_generated"`
	WorkersUsed      int     `json:"workers_used"`
	DurationMS       float64 `json:"duration_ms"`
	BudgetExhausted  bool    `json:"budget_exhausted,omitempty"`
}

// shardLine is one NDJSON line of a shard's /v1/search/stream response —
// the union of the answer-line and trailer-line fields, discriminated by
// Type.
type shardLine struct {
	Type string `json:"type"`
	// Answer-line fields.
	Rank        int             `json:"rank"`
	GeneratedMS float64         `json:"generated_ms"`
	OutputMS    float64         `json:"output_ms"`
	Answer      json.RawMessage `json:"answer"`
	// Trailer-line fields.
	QueryID   string    `json:"query_id"`
	Algo      string    `json:"algo"`
	K         int       `json:"k"`
	Clamped   []string  `json:"clamped"`
	Truncated bool      `json:"truncated"`
	Cached    bool      `json:"cached"`
	Degraded  bool      `json:"degraded"`
	Answers   int       `json:"answers"`
	Error     string    `json:"error"`
	Stats     statsJSON `json:"stats"`
}

// answerKey is the subset of the wire answer object the merge recipe
// needs. encoding/json formats float64 with the shortest representation
// that round-trips, so Score/EdgeScore decode back to the exact bits the
// shard computed.
type answerKey struct {
	Root      banks.NodeID `json:"root"`
	Score     float64      `json:"score"`
	EdgeScore float64      `json:"edge_score"`
	Edges     []struct {
		From banks.NodeID `json:"from"`
		To   banks.NodeID `json:"to"`
	} `json:"edges"`
}

// wireAnswer is one answer gathered from a shard: the raw JSON object
// (passed through to the client byte-for-byte) plus the skeletal
// banks.Answer the merge orders and dedupes by.
type wireAnswer struct {
	shard       int
	generatedMS float64
	outputMS    float64
	raw         json.RawMessage
	key         *banks.Answer
}

// shardResult is one shard's complete contribution to a query.
type shardResult struct {
	shard   int
	replica int // which replica answered
	retried int // extra attempts launched beyond the first (failovers/hedges)
	// lagRecords is the answering replica's last-disclosed replication
	// lag (0 for primaries and read-only backends) — the staleness this
	// answer may carry.
	lagRecords int64
	answers    []*wireAnswer
	trailer    *shardLine
	elapsed    time.Duration
}

// shardError identifies which shard failed a fan-out and why.
type shardError struct {
	shard int
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d: %v", e.shard, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// maxLineBytes bounds one NDJSON line from a shard. Answer trees are
// dmax-bounded and labels are short, so real lines are a few KB; the
// limit only guards against a misbehaving backend.
const maxLineBytes = 8 << 20

// scatter fans the request out to one replica of every shard (with
// failover to the remaining replicas on failure) and gathers the
// complete per-shard results. The request is forwarded verbatim: same
// method, same query parameters, same body, same X-Tenant header. Every
// shard must be answered by some replica; the first shard whose entire
// replica set failed (by shard index) aborts the query with a
// *shardError.
func (rt *Router) scatter(r *http.Request, body []byte) ([]*shardResult, error) {
	results := make([]*shardResult, len(rt.groups))
	errs := make([]error, len(rt.groups))
	var wg sync.WaitGroup
	for i, g := range rt.groups {
		wg.Add(1)
		go func(i int, g *shardGroup) {
			defer wg.Done()
			results[i], errs[i] = rt.fetchGroup(r.Context(), g, r, body)
		}(i, g)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, &shardError{shard: i, err: err}
		}
	}
	return results, nil
}

// attemptOutcome is one replica attempt's result, delivered to the
// fetchGroup select loop.
type attemptOutcome struct {
	rep *replicaState
	res *shardResult
	err error
}

// fetchGroup serves one shard's part of a query from its replica set:
// the best candidate (see candidates) streams first; a hard failure
// triggers immediate failover to the next candidate, and — when hedging
// is configured — a slow attempt triggers one concurrent hedge to the
// runner-up. The first completed stream wins and the losers are
// canceled. Attempts are bounded to one per replica; the whole dance
// runs under the query's own deadline. Retrying a complete per-shard
// stream is safe because replicas are deterministic (identical bytes)
// and nothing was emitted downstream yet: a partial stream from a dead
// replica is discarded wholesale, never spliced.
func (rt *Router) fetchGroup(ctx context.Context, g *shardGroup, orig *http.Request, body []byte) (*shardResult, error) {
	cands := g.candidates()
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // tears down hedge losers and abandoned attempts
	outcomes := make(chan attemptOutcome, len(cands))
	next, inflight := 0, 0
	launch := func() {
		rep := cands[next]
		next++
		inflight++
		go func() {
			res, err := rt.fetchReplica(actx, rep, orig, body)
			outcomes <- attemptOutcome{rep: rep, res: res, err: err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	if rt.hedgeAfter > 0 && next < len(cands) {
		tm := time.NewTimer(rt.hedgeAfter)
		defer tm.Stop()
		hedgeC = tm.C
	}
	var failures []string
	for inflight > 0 {
		select {
		case out := <-outcomes:
			inflight--
			if out.err == nil {
				out.res.replica = out.rep.replica
				out.res.retried = next - 1
				if out.res.retried > 0 {
					rt.met.observeFailover(g.index)
					if rt.logger != nil {
						rt.logger.Printf("shard %d answered by replica %d after %d extra attempt(s)",
							g.index, out.rep.replica, out.res.retried)
					}
				}
				return out.res, nil
			}
			if actx.Err() != nil {
				// The query itself was canceled or timed out mid-attempt;
				// whatever error came back is tainted by that, so it says
				// nothing about the replica and launches nothing new.
				continue
			}
			failures = append(failures, fmt.Sprintf("replica %d (%s): %v", out.rep.replica, out.rep.url, out.err))
			var she *shardHTTPError
			if errors.As(out.err, &she) && she.status >= 400 && she.status < 500 {
				// The request's own fault — identical on every replica, so
				// retrying cannot help; pass the rejection through.
				return nil, out.err
			}
			if ctx.Err() != nil {
				return nil, fmt.Errorf("%s (query context: %v)", strings.Join(failures, "; "), ctx.Err())
			}
			if next < len(cands) {
				launch()
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				rt.met.observeHedge()
				launch()
			}
		}
	}
	if len(failures) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("all %d replica(s) failed: %s", len(cands), strings.Join(failures, "; "))
}

// fetchReplica runs one replica's stream to completion and parses it. It
// also feeds the replica's health state, EWMA latency, and per-replica
// metrics: a completed stream marks the replica healthy, any failure
// (other than the attempt's own cancellation) marks it unhealthy.
func (rt *Router) fetchReplica(ctx context.Context, rep *replicaState, orig *http.Request, body []byte) (*shardResult, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	start := time.Now()
	res, err := rt.fetchStream(ctx, rep, orig, body)
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			// Canceled mid-attempt: not evidence about the replica.
			rt.met.observeReplica(rep.shard, rep.replica, outcomeAttemptCanceled, elapsed)
			return nil, err
		}
		rt.met.observeReplica(rep.shard, rep.replica, outcomeAttemptError, elapsed)
		if rep.setHealth(false, err.Error(), time.Now()) && rt.logger != nil {
			rt.logger.Printf("%s unhealthy: %v", rep.name(), err)
		}
		return nil, err
	}
	rt.met.observeReplica(rep.shard, rep.replica, outcomeAttemptOK, elapsed)
	rep.observeLatency(elapsed)
	if rep.setHealth(true, "", time.Now()) && rt.logger != nil {
		rt.logger.Printf("%s healthy", rep.name())
	}
	res.elapsed = elapsed
	rep.mu.Lock()
	if rep.follower {
		res.lagRecords = rep.lagRecords
	}
	rep.mu.Unlock()
	return res, nil
}

func (rt *Router) fetchStream(ctx context.Context, rep *replicaState, orig *http.Request, body []byte) (*shardResult, error) {
	u := rep.url + "/v1/search/stream"
	if orig.URL.RawQuery != "" {
		u += "?" + orig.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, orig.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := orig.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if tenant := orig.Header.Get("X-Tenant"); tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeShardHTTPError(resp)
	}

	res := &shardResult{shard: rep.shard}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line shardLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("malformed stream line: %w", err)
		}
		switch line.Type {
		case "answer":
			var key answerKey
			if err := json.Unmarshal(line.Answer, &key); err != nil {
				return nil, fmt.Errorf("malformed answer object: %w", err)
			}
			skel := &banks.Answer{Root: key.Root, Score: key.Score, EdgeScore: key.EdgeScore}
			if len(key.Edges) > 0 {
				skel.Edges = make([]banks.TreeEdge, len(key.Edges))
				for i, e := range key.Edges {
					skel.Edges[i] = banks.TreeEdge{From: e.From, To: e.To}
				}
			}
			res.answers = append(res.answers, &wireAnswer{
				shard:       rep.shard,
				generatedMS: line.GeneratedMS,
				outputMS:    line.OutputMS,
				raw:         append(json.RawMessage(nil), line.Answer...),
				key:         skel,
			})
		case "trailer":
			if res.trailer != nil {
				return nil, fmt.Errorf("stream carried more than one trailer")
			}
			t := line
			res.trailer = &t
		default:
			return nil, fmt.Errorf("unknown stream line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading stream: %w", err)
	}
	if res.trailer == nil {
		// The replica died (or was cut off) mid-stream: its partial
		// answer list is poison — discarding it here is what makes the
		// group-level retry safe and a silently truncated top-k
		// impossible.
		return nil, fmt.Errorf("stream ended without a trailer (%d answer line(s) discarded)", len(res.answers))
	}
	if res.trailer.Error != "" {
		return nil, fmt.Errorf("in-band stream error: %s", res.trailer.Error)
	}
	return res, nil
}

// shardHTTPError is a shard's own HTTP rejection (as opposed to an
// infrastructure failure reaching it): status and error code survive so
// the router can pass client faults (4xx) through instead of relabeling
// them 502.
type shardHTTPError struct {
	status  int
	code    string
	message string
}

func (e *shardHTTPError) Error() string {
	if e.code != "" {
		return fmt.Sprintf("HTTP %d (%s): %s", e.status, e.code, e.message)
	}
	return fmt.Sprintf("HTTP %d", e.status)
}

// decodeShardHTTPError turns a non-200 shard response into an error,
// surfacing the shard's own JSON error envelope when it sent one.
func decodeShardHTTPError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	herr := &shardHTTPError{status: resp.StatusCode}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error.Message != "" {
		herr.code = body.Error.Code
		herr.message = body.Error.Message
	}
	return herr
}

// mergeResults runs the gathered per-shard answer lists through the
// canonical top-k merge (banks.MergeTopK) and maps the surviving
// skeletal answers back to their raw wire objects, preserving the
// shards' bytes untouched. k comes from the first shard's trailer — the
// post-clamp k every identically-configured shard normalized to.
func mergeResults(results []*shardResult) []*wireAnswer {
	k := results[0].trailer.K
	lists := make([][]*banks.Answer, len(results))
	byKey := make(map[*banks.Answer]*wireAnswer)
	for i, res := range results {
		lists[i] = make([]*banks.Answer, len(res.answers))
		for j, wa := range res.answers {
			lists[i][j] = wa.key
			byKey[wa.key] = wa
		}
	}
	merged := banks.MergeTopK(k, lists...)
	out := make([]*wireAnswer, len(merged))
	for i, a := range merged {
		out[i] = byKey[a]
	}
	return out
}

// aggregate folds the per-shard trailers into the routed response's
// summary fields. Work counters sum across shards (the fan-out really
// did all of it); duration is the slowest shard (the critical path);
// workers_used is the widest intra-query parallelism any shard applied
// (shards run concurrently, so summing would overstate it). Truncated,
// degraded and budget_exhausted are sticky ORs; cached only when every
// shard answered from its cache — whichever replica answered, so a
// failover to a cold replica correctly reports cached:false. Failovers
// counts extra replica attempts across all shards (retry disclosure).
// Identity fields (query_id, algo, k, clamped) come from shard 0 —
// identical across identically-configured shards, since the query ID is
// a content hash of the query itself.
type aggregateTrailer struct {
	queryID   string
	algo      string
	k         int
	clamped   []string
	truncated bool
	cached    bool
	degraded  bool
	failovers int
	// maxReplicaLag is the largest replication lag any answering replica
	// disclosed — the staleness bound of the merged answer (0 when every
	// shard was answered by a primary or caught-up follower).
	maxReplicaLag int64
	stats         statsJSON
}

func aggregate(results []*shardResult) aggregateTrailer {
	t0 := results[0].trailer
	agg := aggregateTrailer{
		queryID: t0.QueryID,
		algo:    t0.Algo,
		k:       t0.K,
		clamped: t0.Clamped,
		cached:  true,
	}
	for _, res := range results {
		t := res.trailer
		agg.truncated = agg.truncated || t.Truncated
		agg.cached = agg.cached && t.Cached
		agg.degraded = agg.degraded || t.Degraded
		agg.failovers += res.retried
		if res.lagRecords > agg.maxReplicaLag {
			agg.maxReplicaLag = res.lagRecords
		}
		agg.stats.NodesExplored += t.Stats.NodesExplored
		agg.stats.NodesTouched += t.Stats.NodesTouched
		agg.stats.EdgesRelaxed += t.Stats.EdgesRelaxed
		agg.stats.AnswersGenerated += t.Stats.AnswersGenerated
		agg.stats.BudgetExhausted = agg.stats.BudgetExhausted || t.Stats.BudgetExhausted
		if t.Stats.WorkersUsed > agg.stats.WorkersUsed {
			agg.stats.WorkersUsed = t.Stats.WorkersUsed
		}
		if t.Stats.DurationMS > agg.stats.DurationMS {
			agg.stats.DurationMS = t.Stats.DurationMS
		}
	}
	return agg
}

// getJSON fetches a URL and decodes its JSON body.
func (rt *Router) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
