package router

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"banks/internal/api"
)

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqInfo is the per-request record handlers annotate so the middleware
// can emit one complete log line after the response is written.
type reqInfo struct {
	id        uint64
	tenant    string
	queryID   string
	answers   int
	truncated bool
}

type reqInfoKey struct{}

func infoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// annotate fills the request-log record for the middleware.
func annotate(r *http.Request, queryID string, answers int, truncated bool) {
	if info := infoFrom(r.Context()); info != nil {
		info.queryID = queryID
		info.answers = answers
		info.truncated = truncated
	}
}

// knownRoutes are the paths the request-counter metric labels verbatim;
// anything else is bucketed as "other" so scanners cannot mint unbounded
// metric series.
var knownRoutes = map[string]bool{
	"/v1/search": true, "/v1/search/stream": true, "/v1/batch": true,
	"/v1/near": true, "/v1/explain": true,
	"/healthz": true, "/statusz": true, "/metrics": true,
}

func metricsPath(path string) string {
	if knownRoutes[path] {
		return path
	}
	return "other"
}

// instrument wraps the route mux with panic containment, per-request
// IDs, the request-counter metric, and (for /v1/ endpoints) one
// structured log line per request.
func (rt *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := &reqInfo{id: rt.reqSeq.Add(1), tenant: r.Header.Get("X-Tenant")}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if rt.logger != nil {
					rt.logger.Printf("panic rid=%d %s %s: %v\n%s", info.id, r.Method, r.URL.Path, p, debug.Stack())
				}
				if sw.status == 0 {
					writeError(sw, &httpError{status: http.StatusInternalServerError,
						code: api.CodeInternal, message: "internal server error"})
				}
			}
			rt.met.observeRequest(metricsPath(r.URL.Path), sw.status)
			if rt.logger != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
				tenant := info.tenant
				if tenant == "" {
					tenant = "-"
				}
				qid := info.queryID
				if qid == "" {
					qid = "-"
				}
				rt.logger.Printf("rid=%d tenant=%s qid=%s %s %s %d %s answers=%d truncated=%v",
					info.id, tenant, qid, r.Method, r.URL.RequestURI(), sw.status,
					time.Since(start).Round(time.Microsecond), info.answers, info.truncated)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// httpError is one client-facing failure, rendered as the same JSON
// error envelope the shard servers use.
type httpError struct {
	status  int
	code    string
	message string
}

// errorBody and errorJSON are the shared v1 envelope from internal/api —
// the router serves byte-compatible errors with the shard servers.
type errorBody = api.ErrorEnvelope

type errorJSON = api.ErrorDetail

func writeError(w http.ResponseWriter, e *httpError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(api.NewError(e.status, e.code, "", e.message))
}

// writeJSON encodes the response body; an encode failure here is a
// broken client connection with nothing useful left to report.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
