// Package router is the scatter-gather serving tier over a sharded BANKS
// deployment: one stateless front end that fans each keyword query out to
// N shard groups (each a set of interchangeable banksd replicas serving
// the same component-closed partition, see internal/shard and cmd/datagen
// -shards), gathers the per-shard top-k streams, and merges them into the
// global top-k with the canonical output-heap recipe (banks.MergeTopK).
//
// Because the partition is component-closed, every answer tree lives on
// exactly one shard and carries exactly the score the single-node search
// would give it (prestige is computed once on the full graph before
// partitioning); the merge is therefore a deterministic global ordering
// of disjoint result sets, and the routed answer list is bit-identical —
// order, scores, float bits — to the single-node answer list for the
// same query. TestRouterDifferential proves this end to end across real
// HTTP servers, and TestFailoverDifferential proves it stays true while
// replicas fail.
//
// Replicas: every shard may be served by several banksd processes over
// the same shard snapshot. Per-shard answers are deterministic, so any
// healthy replica is interchangeable — the router picks one per query by
// health- and load-driven selection (EWMA latency × in-flight count,
// health-prober demotion) and, when an attempt fails or a hedge timer
// fires, retries the remaining replicas in selection order, bounded to
// one attempt per replica within the query deadline. Retries are safe
// because nothing is emitted to the client until every shard's stream
// completed: a replica that dies mid-stream (missing trailer, malformed
// line) is detected, its partial answers are discarded, and the next
// replica replays the whole per-shard query byte-identically.
//
// Endpoints:
//
//	GET|POST /v1/search         scatter-gather search → merged top-k JSON
//	GET|POST /v1/search/stream  the same, emitted as NDJSON (gather-then-emit)
//	POST     /v1/batch          each element routed through the search scatter path
//	GET      /healthz           liveness; 503 once draining
//	GET      /statusz           JSON: per-replica health and routing table
//	GET      /metrics           Prometheus text: per-replica latency/errors
//
// /v1/near is rejected with 501: near-query activation divides prestige
// by the shard-local keyword-set size (§4.3), so per-shard near results
// are not mergeable into the single-node ranking. Query /v1/near on an
// unsharded deployment instead.
//
// Error semantics: a merged answer is only correct if every shard
// contributed, so a query fails with 502 only when EVERY replica of some
// shard failed — one healthy replica per shard is enough to answer.
// Requests are forwarded verbatim — parameters and the X-Tenant header —
// so tenant clamps are enforced by the shards, uniformly, not duplicated
// here.
package router

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Router. Shards is required; everything else has
// serving-grade defaults.
type Config struct {
	// Shards lists, per shard, the base URLs of that shard's replicas,
	// e.g. [["http://10.0.0.1:8081", "http://10.0.0.2:8081"], ...].
	// Group i is expected to serve shard i of len(Shards); every replica
	// of a group serves the same shard snapshot. The prober verifies the
	// claim against each replica's /statusz and discloses mismatches.
	Shards [][]string
	// Client issues the fan-out and probe requests. Nil uses a client
	// with sensible defaults (no global timeout: per-query deadlines come
	// from the caller's context, and streams may legitimately run long).
	Client *http.Client
	// ProbeInterval is the health-probe period. 0 selects the default
	// (5s); negative disables background probing (health then reflects
	// only query traffic and the initial probe round).
	ProbeInterval time.Duration
	// HedgeAfter, when positive, arms a per-shard hedge timer: if the
	// selected replica has not completed within this duration and another
	// candidate remains, the next-best replica is queried concurrently
	// and the first completed stream wins (the loser is canceled).
	// Replicas are deterministic, so either winner yields identical
	// bytes. 0 disables hedging; failover on hard failures is always on.
	HedgeAfter time.Duration
	// MaxLagRecords bounds how far behind its primary a replication
	// follower may be — in WAL records (mutation batches), as the
	// backend's /statusz replication block discloses — before the router
	// demotes it below fresh replicas: a stale follower is only selected
	// once every fresh candidate has failed, and is re-promoted the
	// moment its disclosed lag returns to the bound. 0 selects the
	// default (256); negative disables freshness demotion entirely.
	MaxLagRecords int64
	// Logger receives one line per /v1/* request and per replica-health
	// transition. Nil disables logging.
	Logger *log.Logger
}

const defaultProbeInterval = 5 * time.Second

// defaultMaxLagRecords is the freshness bound when Config.MaxLagRecords
// is zero: a follower more than this many mutation batches behind its
// primary stops being a first-choice replica.
const defaultMaxLagRecords = 256

// ewmaAlpha weights the latest latency sample in the per-replica EWMA.
const ewmaAlpha = 0.3

// replicaState is the router's live view of one backend process serving
// one replica of one shard.
type replicaState struct {
	shard   int
	replica int
	url     string // base URL, no trailing slash

	// inflight counts fan-out attempts currently running against this
	// replica; selection uses it to spread concurrent load.
	inflight atomic.Int64

	mu        sync.Mutex
	healthy   bool
	lastErr   string    // most recent probe/query failure, "" when healthy
	lastCheck time.Time // when health was last updated
	// ewmaNS is the exponentially weighted moving average of successful
	// stream service time, in nanoseconds (0 until the first success).
	ewmaNS float64
	// claimed* mirror the replica's own /statusz disclosure (zero until
	// the first successful probe; claimedNumShards 0 = shard meta not yet
	// seen or the backend serves an unsharded snapshot).
	claimedShard     uint32
	claimedNumShards uint32
	claimedNodes     int
	// follower/lagRecords/replConnected mirror the replica's /statusz
	// replication block: whether the backend is a replication follower,
	// how many mutation batches it reports being behind its primary, and
	// whether its tail of the primary's log is currently healthy.
	// Non-followers are always "fresh".
	follower      bool
	lagRecords    int64
	replConnected bool
}

func (s *replicaState) setHealth(healthy bool, errMsg string, now time.Time) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed = s.healthy != healthy || s.lastErr != errMsg
	s.healthy = healthy
	s.lastErr = errMsg
	s.lastCheck = now
	return changed
}

// observeLatency folds one successful service time into the EWMA.
func (s *replicaState) observeLatency(elapsed time.Duration) {
	s.mu.Lock()
	ns := float64(elapsed.Nanoseconds())
	if s.ewmaNS == 0 {
		s.ewmaNS = ns
	} else {
		s.ewmaNS = (1-ewmaAlpha)*s.ewmaNS + ewmaAlpha*ns
	}
	s.mu.Unlock()
}

// name identifies the replica in logs and error messages.
func (s *replicaState) name() string {
	return fmt.Sprintf("shard %d replica %d (%s)", s.shard, s.replica, s.url)
}

// shardGroup is the replica set serving one shard.
type shardGroup struct {
	index    int
	replicas []*replicaState
	// maxLag is the resolved freshness bound (Config.MaxLagRecords with
	// the default applied); negative disables staleness demotion.
	maxLag int64
}

// Router fans queries out across shard replica groups and merges the
// results.
type Router struct {
	groups   []*shardGroup
	replicas []*replicaState // all replicas, flattened, for probing
	client   *http.Client
	met      *metrics
	logger   *log.Logger

	hedgeAfter time.Duration

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Uint64
	mux      *http.ServeMux

	probeEvery  time.Duration
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// New builds a Router and starts its health prober (unless disabled).
// Call Close to stop the prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	seen := make(map[string]bool)
	groups := make([]*shardGroup, len(cfg.Shards))
	var all []*replicaState
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		g := &shardGroup{index: i}
		for j, u := range urls {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u == "" {
				return nil, fmt.Errorf("router: shard %d replica %d has an empty URL", i, j)
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("router: shard %d replica %d URL %q must start with http:// or https://", i, j, u)
			}
			if seen[u] {
				return nil, fmt.Errorf("router: duplicate replica URL %q", u)
			}
			seen[u] = true
			rep := &replicaState{shard: i, replica: j, url: u}
			g.replicas = append(g.replicas, rep)
			all = append(all, rep)
		}
		groups[i] = g
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery == 0 {
		probeEvery = defaultProbeInterval
	}
	if cfg.HedgeAfter < 0 {
		return nil, fmt.Errorf("router: HedgeAfter must be non-negative, got %v", cfg.HedgeAfter)
	}
	maxLag := cfg.MaxLagRecords
	if maxLag == 0 {
		maxLag = defaultMaxLagRecords
	}
	for _, g := range groups {
		g.maxLag = maxLag
	}
	rt := &Router{
		groups:     groups,
		replicas:   all,
		client:     client,
		met:        newMetrics(groups),
		logger:     cfg.Logger,
		hedgeAfter: cfg.HedgeAfter,
		start:      time.Now(),
		probeEvery: probeEvery,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", rt.handleSearch)
	mux.HandleFunc("/v1/search/stream", rt.handleSearchStream)
	mux.HandleFunc("/v1/near", rt.handleUnsupported(
		"near-query activation depends on shard-local keyword-set sizes and cannot be merged exactly; query a shard or an unsharded deployment directly"))
	mux.HandleFunc("/v1/batch", rt.handleBatch)
	mux.HandleFunc("/v1/explain", rt.handleUnsupported(
		"explain rendering is not routed; query a shard directly"))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/statusz", rt.handleStatusz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux = mux

	ctx, cancel := context.WithCancel(context.Background())
	rt.probeCancel = cancel
	rt.probeDone = make(chan struct{})
	go rt.probeLoop(ctx)
	return rt, nil
}

// Handler returns the router's HTTP handler: the route mux wrapped in the
// instrumentation middleware (request IDs, logging, metrics, panic
// containment).
func (rt *Router) Handler() http.Handler { return rt.instrument(rt.mux) }

// BeginDrain flips the router into draining mode: /healthz starts
// answering 503 so load balancers stop routing here, while fan-outs in
// flight run to completion. Idempotent.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// NumShards reports the configured fan-out width.
func (rt *Router) NumShards() int { return len(rt.groups) }

// NumReplicas reports the total backend count across all shards.
func (rt *Router) NumReplicas() int { return len(rt.replicas) }

// Close stops the background health prober. It does not wait for
// in-flight requests; drain the HTTP server first.
func (rt *Router) Close() error {
	rt.probeCancel()
	<-rt.probeDone
	return nil
}

// probeLoop probes every replica once at startup, then on the configured
// period. A negative interval disables the periodic probing but still
// runs the initial round, so /statusz is populated promptly.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	rt.probeAll(ctx)
	if rt.probeEvery < 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(ctx)
		}
	}
}

func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replicaState) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe checks one replica's /healthz and, on success, refreshes its
// /statusz shard claim for the routing table.
func (rt *Router) probe(ctx context.Context, rep *replicaState) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	err := rt.checkHealthz(ctx, rep)
	now := time.Now()
	if err != nil {
		if rep.setHealth(false, err.Error(), now) && rt.logger != nil {
			rt.logger.Printf("%s unhealthy: %v", rep.name(), err)
		}
		return
	}
	rt.refreshClaim(ctx, rep)
	if rep.setHealth(true, "", now) && rt.logger != nil {
		rt.logger.Printf("%s healthy", rep.name())
	}
}

func (rt *Router) checkHealthz(ctx context.Context, rep *replicaState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// refreshClaim reads the replica's /statusz dataset section so the
// routing table can disclose which partition each backend claims to
// serve. A failure here is not a health failure — /statusz is
// introspection, and older or unsharded backends simply have no shard
// claim.
func (rt *Router) refreshClaim(ctx context.Context, rep *replicaState) {
	var doc struct {
		Dataset struct {
			Nodes int `json:"nodes"`
			Shard *struct {
				Shard     uint32 `json:"shard"`
				NumShards uint32 `json:"num_shards"`
			} `json:"shard"`
		} `json:"dataset"`
		// Replication is the follower disclosure (internal/server
		// statuszResponse.Replication); absent on primaries and
		// read-only backends.
		Replication *struct {
			Connected  bool  `json:"connected"`
			LagRecords int64 `json:"lag_records"`
		} `json:"replication"`
	}
	if err := rt.getJSON(ctx, rep.url+"/statusz", &doc); err != nil {
		return
	}
	rep.mu.Lock()
	rep.claimedNodes = doc.Dataset.Nodes
	if doc.Dataset.Shard != nil {
		rep.claimedShard = doc.Dataset.Shard.Shard
		rep.claimedNumShards = doc.Dataset.Shard.NumShards
	} else {
		rep.claimedShard, rep.claimedNumShards = 0, 0
	}
	if doc.Replication != nil {
		rep.follower = true
		rep.lagRecords = doc.Replication.LagRecords
		rep.replConnected = doc.Replication.Connected
	} else {
		rep.follower, rep.lagRecords, rep.replConnected = false, 0, false
	}
	rep.mu.Unlock()
}
