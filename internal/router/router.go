// Package router is the scatter-gather serving tier over a sharded BANKS
// deployment: one stateless front end that fans each keyword query out to
// N banksd shard servers (each holding one component-closed partition of
// the dataset, see internal/shard and cmd/datagen -shards), gathers the
// per-shard top-k streams, and merges them into the global top-k with the
// canonical output-heap recipe (banks.MergeTopK).
//
// Because the partition is component-closed, every answer tree lives on
// exactly one shard and carries exactly the score the single-node search
// would give it (prestige is computed once on the full graph before
// partitioning); the merge is therefore a deterministic global ordering
// of disjoint result sets, and the routed answer list is bit-identical —
// order, scores, float bits — to the single-node answer list for the
// same query. TestRouterDifferential proves this end to end across real
// HTTP servers.
//
// Endpoints:
//
//	GET|POST /v1/search         scatter-gather search → merged top-k JSON
//	GET|POST /v1/search/stream  the same, emitted as NDJSON (gather-then-emit)
//	POST     /v1/batch          each element routed through the search scatter path
//	GET      /healthz           liveness; 503 once draining
//	GET      /statusz           JSON: shard health and routing table
//	GET      /metrics           Prometheus text: per-shard latency/errors
//
// /v1/near is rejected with 501: near-query activation divides prestige
// by the shard-local keyword-set size (§4.3), so per-shard near results
// are not mergeable into the single-node ranking. Query /v1/near on an
// unsharded deployment instead.
//
// Error semantics: a merged answer is only correct if every shard
// contributed, so any shard failure (connect error, non-200, in-band
// trailer error) fails the whole query with 502 naming the shard.
// Requests are forwarded verbatim — parameters and the X-Tenant header —
// so tenant clamps are enforced by the shards, uniformly, not duplicated
// here.
package router

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config assembles a Router. Shards is required; everything else has
// serving-grade defaults.
type Config struct {
	// Shards lists the base URLs of the shard servers, e.g.
	// ["http://127.0.0.1:8081", "http://127.0.0.1:8082"]. Position i is
	// expected to serve shard i of len(Shards); the prober verifies the
	// claim against each shard's /statusz and discloses mismatches.
	Shards []string
	// Client issues the fan-out and probe requests. Nil uses a client
	// with sensible defaults (no global timeout: per-query deadlines come
	// from the caller's context, and streams may legitimately run long).
	Client *http.Client
	// ProbeInterval is the health-probe period. 0 selects the default
	// (5s); negative disables background probing (health then reflects
	// only query traffic and the initial probe round).
	ProbeInterval time.Duration
	// Logger receives one line per /v1/* request and per shard-health
	// transition. Nil disables logging.
	Logger *log.Logger
}

const defaultProbeInterval = 5 * time.Second

// shardState is the router's live view of one shard server.
type shardState struct {
	index int
	url   string // base URL, no trailing slash

	mu        sync.Mutex
	healthy   bool
	lastErr   string    // most recent probe/query failure, "" when healthy
	lastCheck time.Time // when health was last updated
	// claimed* mirror the shard's own /statusz disclosure (zero until the
	// first successful probe; claimedNumShards 0 = shard meta not yet
	// seen or the backend serves an unsharded snapshot).
	claimedShard     uint32
	claimedNumShards uint32
	claimedNodes     int
}

func (s *shardState) setHealth(healthy bool, errMsg string, now time.Time) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed = s.healthy != healthy || s.lastErr != errMsg
	s.healthy = healthy
	s.lastErr = errMsg
	s.lastCheck = now
	return changed
}

// Router fans queries out across shard servers and merges the results.
type Router struct {
	shards []*shardState
	client *http.Client
	met    *metrics
	logger *log.Logger

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Uint64
	mux      *http.ServeMux

	probeEvery  time.Duration
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// New builds a Router and starts its health prober (unless disabled).
// Call Close to stop the prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	seen := make(map[string]bool, len(cfg.Shards))
	shards := make([]*shardState, len(cfg.Shards))
	for i, u := range cfg.Shards {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("router: shard %d has an empty URL", i)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("router: shard %d URL %q must start with http:// or https://", i, u)
		}
		if seen[u] {
			return nil, fmt.Errorf("router: duplicate shard URL %q", u)
		}
		seen[u] = true
		shards[i] = &shardState{index: i, url: u}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery == 0 {
		probeEvery = defaultProbeInterval
	}
	rt := &Router{
		shards:     shards,
		client:     client,
		met:        newMetrics(len(shards)),
		logger:     cfg.Logger,
		start:      time.Now(),
		probeEvery: probeEvery,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", rt.handleSearch)
	mux.HandleFunc("/v1/search/stream", rt.handleSearchStream)
	mux.HandleFunc("/v1/near", rt.handleUnsupported(
		"near-query activation depends on shard-local keyword-set sizes and cannot be merged exactly; query a shard or an unsharded deployment directly"))
	mux.HandleFunc("/v1/batch", rt.handleBatch)
	mux.HandleFunc("/v1/explain", rt.handleUnsupported(
		"explain rendering is not routed; query a shard directly"))
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/statusz", rt.handleStatusz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux = mux

	ctx, cancel := context.WithCancel(context.Background())
	rt.probeCancel = cancel
	rt.probeDone = make(chan struct{})
	go rt.probeLoop(ctx)
	return rt, nil
}

// Handler returns the router's HTTP handler: the route mux wrapped in the
// instrumentation middleware (request IDs, logging, metrics, panic
// containment).
func (rt *Router) Handler() http.Handler { return rt.instrument(rt.mux) }

// BeginDrain flips the router into draining mode: /healthz starts
// answering 503 so load balancers stop routing here, while fan-outs in
// flight run to completion. Idempotent.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// NumShards reports the configured fan-out width.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Close stops the background health prober. It does not wait for
// in-flight requests; drain the HTTP server first.
func (rt *Router) Close() error {
	rt.probeCancel()
	<-rt.probeDone
	return nil
}

// probeLoop probes every shard once at startup, then on the configured
// period. A negative interval disables the periodic probing but still
// runs the initial round, so /statusz is populated promptly.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	rt.probeAll(ctx)
	if rt.probeEvery < 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(ctx)
		}
	}
}

func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			rt.probe(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// probe checks one shard's /healthz and, on success, refreshes its
// /statusz shard claim for the routing table.
func (rt *Router) probe(ctx context.Context, sh *shardState) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	err := rt.checkHealthz(ctx, sh)
	now := time.Now()
	if err != nil {
		if sh.setHealth(false, err.Error(), now) && rt.logger != nil {
			rt.logger.Printf("shard %d (%s) unhealthy: %v", sh.index, sh.url, err)
		}
		return
	}
	rt.refreshClaim(ctx, sh)
	if sh.setHealth(true, "", now) && rt.logger != nil {
		rt.logger.Printf("shard %d (%s) healthy", sh.index, sh.url)
	}
}

func (rt *Router) checkHealthz(ctx context.Context, sh *shardState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// refreshClaim reads the shard's /statusz dataset section so the routing
// table can disclose which partition each backend claims to serve. A
// failure here is not a health failure — /statusz is introspection, and
// older or unsharded backends simply have no shard claim.
func (rt *Router) refreshClaim(ctx context.Context, sh *shardState) {
	var doc struct {
		Dataset struct {
			Nodes int `json:"nodes"`
			Shard *struct {
				Shard     uint32 `json:"shard"`
				NumShards uint32 `json:"num_shards"`
			} `json:"shard"`
		} `json:"dataset"`
	}
	if err := rt.getJSON(ctx, sh.url+"/statusz", &doc); err != nil {
		return
	}
	sh.mu.Lock()
	sh.claimedNodes = doc.Dataset.Nodes
	if doc.Dataset.Shard != nil {
		sh.claimedShard = doc.Dataset.Shard.Shard
		sh.claimedNumShards = doc.Dataset.Shard.NumShards
	} else {
		sh.claimedShard, sh.claimedNumShards = 0, 0
	}
	sh.mu.Unlock()
}
