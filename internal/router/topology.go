package router

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Topology construction for cmd/banksrouter. Three sources produce the
// same Config.Shards shape ([][]string — replica URLs per shard):
//
//	-shards url0,url1,url2            one replica per shard, in shard order
//	-shard 0=urlA,urlB -shard 1=urlC  repeatable, explicit shard index,
//	                                  comma-separated replica URLs
//	-topology file.json               {"shards": [["urlA","urlB"], ["urlC"]]}
//
// URL validation (scheme, duplicates) happens once, in New; these
// helpers only establish the shard→replicas shape.

// SingleReplicaTopology wraps a flat shard URL list (one backend per
// shard, the pre-replica deployment style) into the replica-set shape.
func SingleReplicaTopology(urls []string) [][]string {
	shards := make([][]string, len(urls))
	for i, u := range urls {
		shards[i] = []string{u}
	}
	return shards
}

// ParseShardSpecs builds a topology from repeated "-shard i=url1,url2"
// flag values. Every shard index 0..N-1 must appear exactly once, where
// N is the number of specs.
func ParseShardSpecs(specs []string) ([][]string, error) {
	shards := make([][]string, len(specs))
	for _, spec := range specs {
		idxStr, urls, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("shard spec %q: want <index>=<url>[,<url>...]", spec)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
		if err != nil {
			return nil, fmt.Errorf("shard spec %q: bad index: %v", spec, err)
		}
		if idx < 0 || idx >= len(shards) {
			return nil, fmt.Errorf("shard spec %q: index %d out of range 0..%d (one spec per shard)", spec, idx, len(shards)-1)
		}
		if shards[idx] != nil {
			return nil, fmt.Errorf("shard %d specified twice", idx)
		}
		var reps []string
		for _, u := range strings.Split(urls, ",") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, u)
			}
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("shard spec %q lists no replica URLs", spec)
		}
		shards[idx] = reps
	}
	return shards, nil
}

// topologyFile is the -topology JSON schema.
type topologyFile struct {
	// Shards[i] lists replica base URLs for shard i.
	Shards [][]string `json:"shards"`
}

// ParseTopology decodes a topology JSON document (strict: unknown
// fields rejected).
func ParseTopology(data []byte) ([][]string, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var tf topologyFile
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("decoding topology: %w", err)
	}
	if len(tf.Shards) == 0 {
		return nil, fmt.Errorf("topology lists no shards")
	}
	for i, reps := range tf.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("topology shard %d lists no replica URLs", i)
		}
	}
	return tf.Shards, nil
}

// LoadTopologyFile reads and parses a -topology file.
func LoadTopologyFile(path string) ([][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	shards, err := ParseTopology(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return shards, nil
}
