package router_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"banks"
	"banks/internal/relational"
	"banks/internal/router"
	"banks/internal/server"
	"banks/internal/shard"
)

// corpusDB builds the golden bibliography corpus (a single connected
// component, so the sharded deployment must be bit-exact for every
// algorithm).
func corpusDB(t testing.TB) *banks.DB {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	conf, _ := db.CreateTable("conference", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conference"}})
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	author.Append([]string{"Jeffrey Ullman"}, nil)
	author.Append([]string{"Michael Stonebraker"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	conf.Append([]string{"SIGMOD"}, nil)
	paper.Append([]string{"Transaction Recovery Principles"}, []int32{0})
	paper.Append([]string{"Access Path Selection"}, []int32{1})
	paper.Append([]string{"Database System Concepts"}, []int32{0})
	paper.Append([]string{"Query Optimization Survey"}, []int32{1})
	paper.Append([]string{"Distributed Transaction Management"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	writes.Append(nil, []int32{2, 2})
	writes.Append(nil, []int32{3, 3})
	writes.Append(nil, []int32{0, 4})
	writes.Append(nil, []int32{1, 4})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	bdb, err := banks.Build(db, banks.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return bdb
}

func newBackend(t *testing.T, db *banks.DB, desc string) *httptest.Server {
	t.Helper()
	eng, err := banks.NewEngine(db, banks.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Generous admission headroom: failover tests concentrate every
	// worker on one surviving replica, and a transient 429 from the
	// default 4x-pool gate would read as a routing failure. Admission
	// overflow has its own tests in internal/server.
	srv, err := server.New(server.Config{Engine: eng, DB: db, Dataset: desc, MaxInFlight: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// deployment is one complete sharded test topology: a single-node server
// over the unsharded snapshot, N shard servers over the shard files, and
// a router fanning across them. All DBs are served from snapshot files —
// the same serving mode production uses — so node labels match between
// the single-node and shard backends.
type deployment struct {
	single    *httptest.Server
	shards    []*httptest.Server
	router    *httptest.Server
	routerRaw *router.Router
}

const nshards = 3

func deploy(t *testing.T) *deployment {
	t.Helper()
	built := corpusDB(t)
	base := filepath.Join(t.TempDir(), "corpus.snap")
	if err := built.WriteSnapshotFile(base); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.WriteFiles(base, nshards, built.Graph, built.Index, built.Mapping, built.EdgeTypes); err != nil {
		t.Fatal(err)
	}
	open := func(path string) *banks.DB {
		db, err := banks.OpenSnapshot(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	d := &deployment{single: newBackend(t, open(base), "single")}
	urls := make([]string, nshards)
	for s := 0; s < nshards; s++ {
		ts := newBackend(t, open(shard.FilePath(base, s, nshards)), fmt.Sprintf("shard %d", s))
		d.shards = append(d.shards, ts)
		urls[s] = ts.URL
	}
	rt, err := router.New(router.Config{Shards: router.SingleReplicaTopology(urls), ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	d.routerRaw = rt
	d.router = httptest.NewServer(rt.Handler())
	t.Cleanup(d.router.Close)
	return d
}

// searchBody is the subset of the /v1/search response the differential
// compares; answers stay raw so the comparison is at the byte level.
type searchBody struct {
	QueryID   string            `json:"query_id"`
	Algo      string            `json:"algo"`
	K         int               `json:"k"`
	Truncated bool              `json:"truncated"`
	Answers   []json.RawMessage `json:"answers"`
	Stats     struct {
		Shards    int `json:"shards"`
		Failovers int `json:"failovers"`
	} `json:"stats"`
}

func fetchSearch(t *testing.T, rawURL string) *searchBody {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", rawURL, resp.StatusCode)
	}
	var body searchBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return &body
}

// TestRouterDifferential is the serving-tier acceptance proof: for every
// algorithm, the routed scatter-gather answer list is byte-identical —
// order, scores, float formatting, labels — to the single-node server's,
// across real HTTP servers and real shard snapshot files.
func TestRouterDifferential(t *testing.T) {
	d := deploy(t)
	queries := []string{"gray transaction", "database query", "selinger vldb", "transaction"}
	for _, q := range queries {
		for _, algo := range banks.Algorithms() {
			for _, k := range []int{3, 10} {
				path := fmt.Sprintf("/v1/search?q=%s&algo=%s&k=%d", url.QueryEscape(q), algo, k)
				want := fetchSearch(t, d.single.URL+path)
				got := fetchSearch(t, d.router.URL+path)
				name := fmt.Sprintf("%s/%s/k=%d", q, algo, k)
				if got.QueryID != want.QueryID || got.Algo != want.Algo || got.K != want.K {
					t.Errorf("%s: header mismatch: got (%s,%s,%d), want (%s,%s,%d)",
						name, got.QueryID, got.Algo, got.K, want.QueryID, want.Algo, want.K)
				}
				if got.Truncated != want.Truncated {
					t.Errorf("%s: truncated %v, want %v", name, got.Truncated, want.Truncated)
				}
				if len(got.Answers) != len(want.Answers) {
					t.Errorf("%s: %d answers, want %d", name, len(got.Answers), len(want.Answers))
					continue
				}
				for i := range got.Answers {
					if string(got.Answers[i]) != string(want.Answers[i]) {
						t.Errorf("%s: answer %d differs:\n  routed: %s\n  single: %s",
							name, i, got.Answers[i], want.Answers[i])
					}
				}
			}
		}
	}
}

// streamLine mirrors the NDJSON wire lines for assertions.
type streamLine struct {
	Type     string          `json:"type"`
	Rank     int             `json:"rank"`
	Answer   json.RawMessage `json:"answer"`
	Answers  int             `json:"answers"`
	Cached   bool            `json:"cached"`
	Degraded bool            `json:"degraded"`
	Error    string          `json:"error"`
	Stats    struct {
		Shards    int `json:"shards"`
		Failovers int `json:"failovers"`
	} `json:"stats"`
}

func fetchStream(t *testing.T, rawURL string) (answers []streamLine, trailer *streamLine) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", rawURL, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "answer":
			answers = append(answers, line)
		case "trailer":
			l := line
			trailer = &l
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if trailer == nil {
		t.Fatal("stream ended without a trailer")
	}
	return answers, trailer
}

// TestRouterStreamDifferential proves the routed stream carries the same
// answer objects in the same order as the single-node stream, with
// router-assigned ranks and a well-formed trailer.
func TestRouterStreamDifferential(t *testing.T) {
	d := deploy(t)
	path := "/v1/search?q=" + url.QueryEscape("gray transaction") + "&algo=bidirectional&k=10"
	spath := strings.Replace(path, "/v1/search?", "/v1/search/stream?", 1)

	wantAnswers, _ := fetchStream(t, d.single.URL+spath)
	gotAnswers, trailer := fetchStream(t, d.router.URL+spath)
	if len(gotAnswers) != len(wantAnswers) {
		t.Fatalf("routed stream has %d answers, single %d", len(gotAnswers), len(wantAnswers))
	}
	for i := range gotAnswers {
		if gotAnswers[i].Rank != i+1 {
			t.Errorf("answer %d has rank %d, want %d", i, gotAnswers[i].Rank, i+1)
		}
		if string(gotAnswers[i].Answer) != string(wantAnswers[i].Answer) {
			t.Errorf("answer %d differs:\n  routed: %s\n  single: %s", i, gotAnswers[i].Answer, wantAnswers[i].Answer)
		}
	}
	if trailer.Answers != len(gotAnswers) {
		t.Errorf("trailer.answers = %d, want %d", trailer.Answers, len(gotAnswers))
	}
	if trailer.Stats.Shards != nshards {
		t.Errorf("trailer.stats.shards = %d, want %d", trailer.Stats.Shards, nshards)
	}
	if trailer.Error != "" {
		t.Errorf("trailer.error = %q", trailer.Error)
	}
	// The routed batch and stream responses agree with each other too.
	batch := fetchSearch(t, d.router.URL+path)
	if len(batch.Answers) != len(gotAnswers) {
		t.Fatalf("batch/stream disagree: %d vs %d answers", len(batch.Answers), len(gotAnswers))
	}
	for i := range batch.Answers {
		if string(batch.Answers[i]) != string(gotAnswers[i].Answer) {
			t.Errorf("batch answer %d differs from stream answer", i)
		}
	}
}

// waitStatusz polls the router's /statusz until cond holds or the
// deadline passes, returning the last document.
func waitStatusz(t *testing.T, routerURL string, cond func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var doc map[string]any
	for time.Now().Before(deadline) {
		resp, err := http.Get(routerURL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		doc = map[string]any{}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cond(doc) {
			return doc
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("statusz condition not reached; last: %v", doc)
	return nil
}

func TestRouterStatuszRoutingTable(t *testing.T) {
	d := deploy(t)
	doc := waitStatusz(t, d.router.URL, func(doc map[string]any) bool {
		ok, _ := doc["all_healthy"].(bool)
		return ok
	})
	if got := doc["num_shards"].(float64); int(got) != nshards {
		t.Errorf("num_shards = %v, want %d", got, nshards)
	}
	rows := doc["shards"].([]any)
	if len(rows) != nshards {
		t.Fatalf("routing table has %d rows, want %d", len(rows), nshards)
	}
	for i, r := range rows {
		row := r.(map[string]any)
		if !row["healthy"].(bool) {
			t.Errorf("shard %d unhealthy: %v", i, row)
		}
		reps := row["replicas"].([]any)
		if len(reps) != 1 {
			t.Fatalf("shard %d has %d replica rows, want 1", i, len(reps))
		}
		rep := reps[0].(map[string]any)
		if !rep["healthy"].(bool) {
			t.Errorf("shard %d replica unhealthy: %v", i, rep["last_error"])
		}
		if rep["misrouted"] == true {
			t.Errorf("shard %d flagged misrouted: %v", i, rep)
		}
		if cs, ok := rep["claimed_shard"].(float64); !ok || int(cs) != i {
			t.Errorf("shard %d claims shard %v", i, rep["claimed_shard"])
		}
		if cn, ok := rep["claimed_num_shards"].(float64); !ok || int(cn) != nshards {
			t.Errorf("shard %d claims %v shards", i, rep["claimed_num_shards"])
		}
	}
	if tr, ok := doc["total_replicas"].(float64); !ok || int(tr) != nshards {
		t.Errorf("total_replicas = %v, want %d", doc["total_replicas"], nshards)
	}
	if doc["degraded"] != false {
		t.Errorf("degraded = %v, want false with every replica up", doc["degraded"])
	}
}

func TestRouterMetrics(t *testing.T) {
	d := deploy(t)
	fetchSearch(t, d.router.URL+"/v1/search?q=gray&k=3")
	resp, err := http.Get(d.router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	text := sb.String()
	for _, want := range []string{
		`banksrouter_queries_total{outcome="ok"} 1`,
		`banksrouter_shard_requests_total{shard="0",replica="0",outcome="ok"} 1`,
		`banksrouter_shard_requests_total{shard="2",replica="0",outcome="ok"} 1`,
		`banksrouter_shard_latency_seconds_count{shard="1",replica="0"} 1`,
		`banksrouter_shard_healthy{shard="0"} 1`,
		`banksrouter_replica_healthy{shard="0",replica="0"} 1`,
		`banksrouter_failovers_total{shard="0"} 0`,
		`banksrouter_hedges_total 0`,
		`banksrouter_shards 3`,
		`banksrouter_replicas 3`,
		`banksrouter_http_requests_total{path="/v1/search",code="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRouterShardFailure pins the all-shards-must-succeed contract: with
// one shard down the router fails the query with 502 (never a silently
// partial top-k) and discloses the failure in /statusz and /metrics.
func TestRouterShardFailure(t *testing.T) {
	d := deploy(t)
	d.shards[1].Close()
	resp, err := http.Get(d.router.URL + "/v1/search?q=gray&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("HTTP %d, want 502", resp.StatusCode)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "shard_error" {
		t.Errorf("error code %q, want shard_error", body.Error.Code)
	}
	if !strings.Contains(body.Error.Message, "shard 1") {
		t.Errorf("error message %q does not name the failed shard", body.Error.Message)
	}
	doc := waitStatusz(t, d.router.URL, func(doc map[string]any) bool {
		return doc["all_healthy"] == false
	})
	row := doc["shards"].([]any)[1].(map[string]any)
	if row["healthy"].(bool) {
		t.Error("failed shard still marked healthy")
	}
	rep := row["replicas"].([]any)[0].(map[string]any)
	if rep["healthy"].(bool) {
		t.Error("failed replica still marked healthy")
	}
	if rep["errors"].(float64) == 0 {
		t.Error("failed replica shows zero errors")
	}
	if doc["degraded"] != true {
		t.Errorf("degraded = %v, want true with a replica down", doc["degraded"])
	}
}

// TestRouterShardRejectionPassthrough: a shard-side 4xx (the client's
// fault on every shard equally) keeps its status and code instead of
// being relabeled 502.
func TestRouterShardRejectionPassthrough(t *testing.T) {
	d := deploy(t)
	resp, err := http.Get(d.router.URL + "/v1/search?q=gray&algo=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", resp.StatusCode)
	}
}

func TestRouterNearUnsupported(t *testing.T) {
	d := deploy(t)
	resp, err := http.Get(d.router.URL + "/v1/near?q=gray")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("HTTP %d, want 501", resp.StatusCode)
	}
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "not_routed" {
		t.Errorf("error code %q, want not_routed", body.Error.Code)
	}
}

func TestRouterHealthzDrain(t *testing.T) {
	d := deploy(t)
	resp, err := http.Get(d.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz HTTP %d, want 200", resp.StatusCode)
	}
	d.routerRaw.BeginDrain()
	resp, err = http.Get(d.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz HTTP %d, want 503", resp.StatusCode)
	}
}

// TestRouterPOSTBody: the router replays a POST body to every shard;
// the routed result matches the equivalent GET.
func TestRouterPOSTBody(t *testing.T) {
	d := deploy(t)
	body := `{"query":"gray transaction","algo":"bidirectional","k":5}`
	resp, err := http.Post(d.router.URL+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", resp.StatusCode)
	}
	var got searchBody
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want := fetchSearch(t, d.router.URL+"/v1/search?q="+url.QueryEscape("gray transaction")+"&algo=bidirectional&k=5")
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("POST returned %d answers, GET %d", len(got.Answers), len(want.Answers))
	}
	for i := range got.Answers {
		if string(got.Answers[i]) != string(want.Answers[i]) {
			t.Errorf("answer %d differs between POST and GET", i)
		}
	}
}

// batchBody is the routed /v1/batch response shape under test.
type batchBody struct {
	Results []*searchBody `json:"results"`
	Errors  []*struct {
		Status int    `json:"status"`
		Code   string `json:"code"`
	} `json:"errors"`
}

func postBatch(t *testing.T, baseURL, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, []byte(buf.String())
}

// TestRouterBatchDifferential: each routed batch element carries exactly
// the answers the routed single-query endpoint serves for the same
// query, and a failing element lands in errors[i] without failing its
// siblings.
func TestRouterBatchDifferential(t *testing.T) {
	d := deploy(t)
	code, raw := postBatch(t, d.router.URL, `{"queries":[
		{"query":"gray transaction","algo":"bidirectional","k":5},
		{"query":"database query","algo":"si-backward","k":3},
		{"query":"","algo":"bidirectional"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", code, raw)
	}
	var body batchBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Results) != 3 || len(body.Errors) != 3 {
		t.Fatalf("results/errors arrays: %d/%d, want 3/3", len(body.Results), len(body.Errors))
	}
	singles := []string{
		"/v1/search?q=" + url.QueryEscape("gray transaction") + "&algo=bidirectional&k=5",
		"/v1/search?q=" + url.QueryEscape("database query") + "&algo=si-backward&k=3",
	}
	for i, path := range singles {
		if body.Errors[i] != nil {
			t.Fatalf("element %d errored: %+v", i, body.Errors[i])
		}
		got := body.Results[i]
		want := fetchSearch(t, d.router.URL+path)
		if got == nil {
			t.Fatalf("element %d has no result", i)
		}
		if got.QueryID != want.QueryID || len(got.Answers) != len(want.Answers) {
			t.Fatalf("element %d: (%s, %d answers), want (%s, %d answers)",
				i, got.QueryID, len(got.Answers), want.QueryID, len(want.Answers))
		}
		for j := range got.Answers {
			if string(got.Answers[j]) != string(want.Answers[j]) {
				t.Errorf("element %d answer %d differs:\n  batch:  %s\n  single: %s",
					i, j, got.Answers[j], want.Answers[j])
			}
		}
	}
	if body.Results[2] != nil {
		t.Error("invalid element produced a result")
	}
	if body.Errors[2] == nil || body.Errors[2].Status != http.StatusBadRequest {
		t.Errorf("invalid element error: %+v, want status 400", body.Errors[2])
	}
}

// TestRouterBatchValidation: structural rejects fail the whole batch
// with 400, mirroring the shard batch decoder's contract.
func TestRouterBatchValidation(t *testing.T) {
	d := deploy(t)
	big := `{"queries":[` + strings.Repeat(`{"query":"x"},`, 64) + `{"query":"x"}]}`
	cases := []struct {
		name, body, code string
	}{
		{"empty", `{"queries":[]}`, "bad_request"},
		{"unknown top-level field", `{"queries":[{"query":"x"}],"deadline":5}`, "bad_body"},
		{"element timeout", `{"queries":[{"query":"x","timeout_ms":50}]}`, "bad_request"},
		{"negative timeout", `{"timeout_ms":-1,"queries":[{"query":"x"}]}`, "bad_request"},
		{"oversized", big, "batch_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := postBatch(t, d.router.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("HTTP %d: %s", code, raw)
			}
			var e struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatal(err)
			}
			if e.Error.Code != tc.code {
				t.Errorf("error code %q, want %q", e.Error.Code, tc.code)
			}
		})
	}
}
