// Package experiments regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic stand-in datasets:
//
//   - Figure 5: per-query comparison table (MI vs SI vs Bidirectional vs
//     the Sparse lower bound);
//   - Figure 6(a): MI-Backward / SI-Backward time ratio vs keyword count;
//   - Figure 6(b): SI-Backward / Bidirectional time ratio vs keyword count;
//   - Figure 6(c): join-order comparison across selectivity-band combos;
//   - §5.7: recall/precision.
//
// Measurements follow §5.2: all metrics are taken at the last relevant
// result (or the tenth when more than ten exist), where relevance is
// decided against the ground truth produced by executing the originating
// join network (§5.4).
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"banks/internal/convert"
	"banks/internal/core"
	"banks/internal/datagen"
	"banks/internal/graph"
	"banks/internal/prestige"
	"banks/internal/relational"
	"banks/internal/store"
	"banks/internal/workload"
)

// Config tunes experiment scale. The defaults keep the full suite
// laptop-friendly; raise Factor/QueriesPerCell to approach paper scale.
type Config struct {
	// Factor scales the datasets (1 ≈ 180k tuples for DBLP; the paper's
	// DBLP would be ≈ 11).
	Factor float64
	// QueriesPerCell is the number of workload queries per figure cell
	// (the paper uses ~200 total for Figure 6(a)/(b), ~400 for 6(c)).
	QueriesPerCell int
	// K is the number of answers requested per search.
	K int
	// MaxNodes caps node expansions per search so that pathological
	// MI-Backward runs terminate in bounded time (0 = unlimited).
	MaxNodes int
	// Seed drives workload sampling.
	Seed int64
	// Workers is the intra-query parallelism passed to every search
	// (core.Options.Workers): 0 runs serial; results are bit-identical
	// either way, so the measured §5.2 counters are comparable across
	// Workers settings while durations reflect the parallelism.
	Workers int
	// SnapshotDir, when set, caches each built graph+index as a snapshot
	// file in this directory: the first run of a (dataset, factor) pair
	// writes it, later runs mmap it and skip conversion, indexing and
	// prestige entirely (the relational rows are still regenerated for
	// ground-truth evaluation).
	SnapshotDir string
}

// DefaultConfig returns the bench-scale configuration.
func DefaultConfig() Config {
	return Config{Factor: 0.25, QueriesPerCell: 6, K: 20, MaxNodes: 600_000, Seed: 42}
}

// Env is a prepared dataset environment.
type Env struct {
	Name  string
	DS    *datagen.Dataset
	Built *convert.Result
	Gen   *workload.Generator
}

var envCache sync.Map // key string → *Env

// NewEnv builds (or returns the cached) environment for one dataset
// family at the given scale factor.
func NewEnv(name string, factor float64) (*Env, error) {
	return NewEnvSnapshot(name, factor, "")
}

// NewEnvSnapshot is NewEnv with an optional snapshot cache directory (see
// Config.SnapshotDir). An empty dir always builds from scratch.
func NewEnvSnapshot(name string, factor float64, snapshotDir string) (*Env, error) {
	key := fmt.Sprintf("%s|%g", name, factor)
	if v, ok := envCache.Load(key); ok {
		return v.(*Env), nil
	}
	var ds *datagen.Dataset
	var err error
	switch name {
	case "dblp":
		ds, err = datagen.DBLP(datagen.DefaultDBLP(factor))
	case "imdb":
		ds, err = datagen.IMDB(datagen.DefaultIMDB(factor))
	case "patents":
		ds, err = datagen.Patents(datagen.DefaultPatents(factor))
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if err != nil {
		return nil, err
	}

	var snapPath string
	if snapshotDir != "" {
		snapPath = filepath.Join(snapshotDir, fmt.Sprintf("%s-f%g.snap", name, factor))
		// The snapshot stays open (never closed) because the cached Env
		// lives for the rest of the process.
		if s, err := store.Open(snapPath, store.Options{}); err == nil {
			if snapshotMatches(s, ds.DB) {
				built := &convert.Result{Graph: s.Graph, Index: s.Index, Mapping: s.Mapping, EdgeTypes: s.EdgeTypes}
				env := &Env{Name: name, DS: ds, Built: built, Gen: workload.New(ds, built)}
				envCache.Store(key, env)
				return env, nil
			}
			s.Close() // stale cache (dataset generator changed); rebuild below
		}
	}

	built, err := convert.Build(ds.DB, convert.Options{})
	if err != nil {
		return nil, err
	}
	p, err := prestige.Compute(built.Graph, prestige.Options{Tolerance: 1e-8, MaxIterations: 60})
	if err != nil {
		return nil, err
	}
	if err := built.Graph.SetPrestige(p); err != nil {
		return nil, err
	}
	if snapPath != "" {
		// Caching is best-effort: an unwritable cache dir (permissions,
		// another user's file under a sticky-bit /tmp) must not abort an
		// experiment that has already built its environment.
		if err := os.MkdirAll(snapshotDir, 0o755); err == nil {
			_, _ = store.WriteFile(snapPath, built.Graph, built.Index, built.Mapping, built.EdgeTypes)
		}
	}
	env := &Env{Name: name, DS: ds, Built: built, Gen: workload.New(ds, built)}
	envCache.Store(key, env)
	return env, nil
}

// snapshotMatches guards against serving a stale snapshot cache after the
// dataset generator changed: the snapshot's table layout (names, per-table
// base node IDs, total rows) must match what the freshly generated
// relational data would produce. Content changes that keep the exact table
// layout (e.g. reworded row text) are not detectable here — delete the
// cache dir after editing internal/datagen.
func snapshotMatches(s *store.Snapshot, db *relational.Database) bool {
	bases := s.Mapping.Export()
	names := db.TableNames()
	if len(bases) != len(names) || s.Graph.NumNodes() != db.NumRows() {
		return false
	}
	next := graph.NodeID(0)
	for i, name := range names {
		if bases[i].Table != name || bases[i].Base != next {
			return false
		}
		next += graph.NodeID(db.Table(name).NumRows())
	}
	return true
}

// Datasets lists the supported dataset families.
func Datasets() []string { return []string{"dblp", "imdb", "patents"} }

// RunMetrics are the §5.2 measurements of one search on one query.
type RunMetrics struct {
	// Found / Total: relevant answers retrieved vs. existing.
	Found, Total int
	// Time is the output time of the last relevant result (or the full
	// search duration when none was found).
	Time time.Duration
	// GenTime is the generation time of the last relevant result.
	GenTime time.Duration
	// Explored / Touched at the last relevant output.
	Explored, Touched int
	// TotalTime is the full search duration.
	TotalTime time.Duration
	// FirstIrrelevantBeforeLastRelevant counts irrelevant answers output
	// before the last relevant one (precision signal, §5.7).
	IrrelevantBefore int
}

// Measure evaluates a search result against a query's ground truth per
// §5.2: the measurement point is the last relevant result, or the tenth
// relevant one if more than ten exist.
func Measure(res *core.Result, q *workload.Query) RunMetrics {
	m := RunMetrics{Total: len(q.Relevant), TotalTime: res.Stats.Duration}
	const tenth = 10
	lastIdx := -1
	count := 0
	for i, a := range res.Answers {
		ids := make([]graph.NodeID, len(a.Nodes))
		copy(ids, a.Nodes)
		if q.Relevant[workload.CanonNodes(ids)] {
			count++
			lastIdx = i
			if count == tenth {
				break
			}
		}
	}
	m.Found = count
	if lastIdx < 0 {
		m.Time = res.Stats.Duration
		m.GenTime = res.Stats.Duration
		m.Explored = res.Stats.NodesExplored
		m.Touched = res.Stats.NodesTouched
		return m
	}
	last := res.Answers[lastIdx]
	m.Time = last.OutputAt
	m.GenTime = last.GeneratedAt
	m.Explored = last.ExploredAtOut
	m.Touched = last.TouchedAtOut
	m.IrrelevantBefore = lastIdx + 1 - count
	return m
}

// runAlgo executes one algorithm on a query with the experiment options.
func runAlgo(env *Env, q *workload.Query, algo string, cfg Config) (*core.Result, error) {
	opts := core.Options{K: cfg.K, MaxNodes: cfg.MaxNodes, Workers: cfg.Workers}
	return core.Search(nil, env.Built.Graph, core.Algo(algo), q.Keywords, opts)
}

// ratio returns a/b guarding against zero denominators.
func ratio(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return a
	}
	return a / b
}

func newRng(cfg Config, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*7919 + salt))
}
