package experiments

import (
	"fmt"
	"strings"

	"banks/internal/datagen"
	"banks/internal/workload"
)

// F6Row is one cell of Figure 6(a)/(b): average time ratios at one keyword
// count and origin class.
type F6Row struct {
	NKeywords int
	Class     workload.OriginClass
	// MIOverSI reproduces Figure 6(a); SIOverBidir reproduces 6(b).
	MIOverSI    float64
	SIOverBidir float64
	// NodesMIOverSI is 6(a)'s companion: the paper observes the
	// nodes-explored ratio is "identical to the time ratio as both the
	// algorithms explore the graph in a similar fashion" (§5.4).
	NodesMIOverSI float64
	// GenSIOverBidir is the companion generation-time ratio (§5.2/§5.3:
	// "the generation time ratio tells us the effectiveness of our
	// prioritization techniques, whereas the output time ratios also take
	// into account secondary effects that affect the score upper bounds").
	GenSIOverBidir float64
	// NodesSIOverBidir is the nodes-explored companion ratio the paper
	// reports follows the time ratio (§5.5).
	NodesSIOverBidir float64
	// N is the number of queries measured.
	N int
}

// Figure6AB regenerates Figures 6(a) and 6(b) on the DBLP-like dataset:
// for 2–7 keywords and small/large origins, the average MI/SI and
// SI/Bidirectional time ratios over a generated workload with relevant
// result size 5 (§5.4).
func Figure6AB(cfg Config) ([]F6Row, error) {
	env, err := NewEnvSnapshot("dblp", cfg.Factor, cfg.SnapshotDir)
	if err != nil {
		return nil, err
	}
	var rows []F6Row
	for nk := 2; nk <= 7; nk++ {
		for _, class := range []workload.OriginClass{workload.OriginSmall, workload.OriginLarge} {
			rng := newRng(cfg, int64(nk*10)+int64(class))
			queries := env.Gen.Batch(rng, cfg.QueriesPerCell, nk, class, 400*cfg.QueriesPerCell)
			row := F6Row{NKeywords: nk, Class: class}
			var sumMISI, sumMISINodes, sumSIBI, sumGen, sumNodes float64
			for _, q := range queries {
				mi, err := runAlgo(env, q, "mi-backward", cfg)
				if err != nil {
					return nil, err
				}
				si, err := runAlgo(env, q, "si-backward", cfg)
				if err != nil {
					return nil, err
				}
				bi, err := runAlgo(env, q, "bidirectional", cfg)
				if err != nil {
					return nil, err
				}
				mMI, mSI, mBI := Measure(mi, q), Measure(si, q), Measure(bi, q)
				sumMISI += ratio(float64(mMI.Time), float64(mSI.Time))
				sumMISINodes += ratio(float64(mMI.Explored), float64(mSI.Explored))
				sumSIBI += ratio(float64(mSI.Time), float64(mBI.Time))
				sumGen += ratio(float64(mSI.GenTime), float64(mBI.GenTime))
				sumNodes += ratio(float64(mSI.Explored), float64(mBI.Explored))
				row.N++
			}
			if row.N > 0 {
				row.MIOverSI = sumMISI / float64(row.N)
				row.NodesMIOverSI = sumMISINodes / float64(row.N)
				row.SIOverBidir = sumSIBI / float64(row.N)
				row.GenSIOverBidir = sumGen / float64(row.N)
				row.NodesSIOverBidir = sumNodes / float64(row.N)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFigure6AB renders both series.
func FormatFigure6AB(rows []F6Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(a): MI-Backward / SI-Backward time ratio\n")
	sb.WriteString("#kw | origin<small | origin>large\n")
	writeSeries(&sb, rows, func(r F6Row) float64 { return r.MIOverSI })
	sb.WriteString("\nFigure 6(a) companion: MI/SI nodes-explored ratio\n")
	sb.WriteString("#kw | origin<small | origin>large\n")
	writeSeries(&sb, rows, func(r F6Row) float64 { return r.NodesMIOverSI })
	sb.WriteString("\nFigure 6(b): SI-Backward / Bidirectional time ratio\n")
	sb.WriteString("#kw | origin<small | origin>large\n")
	writeSeries(&sb, rows, func(r F6Row) float64 { return r.SIOverBidir })
	sb.WriteString("\nFigure 6(b) companion: SI/Bidir nodes-explored ratio\n")
	sb.WriteString("#kw | origin<small | origin>large\n")
	writeSeries(&sb, rows, func(r F6Row) float64 { return r.NodesSIOverBidir })
	sb.WriteString("\nFigure 6(b) companion: SI/Bidir generation-time ratio\n")
	sb.WriteString("#kw | origin<small | origin>large\n")
	writeSeries(&sb, rows, func(r F6Row) float64 { return r.GenSIOverBidir })
	return sb.String()
}

func writeSeries(sb *strings.Builder, rows []F6Row, get func(F6Row) float64) {
	byKey := map[int]map[workload.OriginClass]F6Row{}
	for _, r := range rows {
		if byKey[r.NKeywords] == nil {
			byKey[r.NKeywords] = map[workload.OriginClass]F6Row{}
		}
		byKey[r.NKeywords][r.Class] = r
	}
	for nk := 2; nk <= 7; nk++ {
		s := byKey[nk][workload.OriginSmall]
		l := byKey[nk][workload.OriginLarge]
		fmt.Fprintf(sb, "%d | %.2f (n=%d) | %.2f (n=%d)\n", nk, get(s), s.N, get(l), l.N)
	}
}

// F6CRow is one bar group of Figure 6(c): the join-order comparison for
// one selectivity-band combination.
type F6CRow struct {
	Combo      [4]datagen.Band
	TimeRatio  float64 // SI-Backward / Bidirectional output time
	GenRatio   float64 // SI-Backward / Bidirectional generation time
	NodesRatio float64 // SI-Backward / Bidirectional nodes explored
	N          int
}

// Figure6C regenerates the join-order experiment (§5.6): 4 keywords,
// relevant answer size 3, selectivity-band combinations.
func Figure6C(cfg Config) ([]F6CRow, error) {
	env, err := NewEnvSnapshot("dblp", cfg.Factor, cfg.SnapshotDir)
	if err != nil {
		return nil, err
	}
	var rows []F6CRow
	for ci, combo := range datagen.Combos() {
		rng := newRng(cfg, 1000+int64(ci))
		row := F6CRow{Combo: combo}
		var sumT, sumG, sumN float64
		for i := 0; i < cfg.QueriesPerCell; i++ {
			q, ok := env.Gen.Combo(rng, combo)
			if !ok {
				continue
			}
			si, err := runAlgo(env, q, "si-backward", cfg)
			if err != nil {
				return nil, err
			}
			bi, err := runAlgo(env, q, "bidirectional", cfg)
			if err != nil {
				return nil, err
			}
			mSI, mBI := Measure(si, q), Measure(bi, q)
			sumT += ratio(float64(mSI.Time), float64(mBI.Time))
			sumG += ratio(float64(mSI.GenTime), float64(mBI.GenTime))
			sumN += ratio(float64(mSI.Explored), float64(mBI.Explored))
			row.N++
		}
		if row.N > 0 {
			row.TimeRatio = sumT / float64(row.N)
			row.GenRatio = sumG / float64(row.N)
			row.NodesRatio = sumN / float64(row.N)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure6C renders the bar data.
func FormatFigure6C(rows []F6CRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 6(c): SI-Backward / Bidirectional, 4 keywords, answer size 3\n")
	sb.WriteString("combo | nodes-explored ratio | gen-time ratio | out-time ratio | n\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s | %.2f | %.2f | %.2f | %d\n",
			datagen.ComboLabel(r.Combo), r.NodesRatio, r.GenRatio, r.TimeRatio, r.N)
	}
	return sb.String()
}
