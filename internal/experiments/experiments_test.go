package experiments

import (
	"strings"
	"testing"
	"time"

	"banks/internal/core"
	"banks/internal/graph"
	"banks/internal/workload"
)

// testConfig keeps experiment tests fast: tiny datasets, few queries, and
// a tight exploration budget (MI-Backward on large origins would otherwise
// dominate the suite — which is the paper's point, but not this test's).
func testConfig() Config {
	return Config{Factor: 0.05, QueriesPerCell: 2, K: 15, MaxNodes: 40_000, Seed: 7}
}

func TestNewEnv(t *testing.T) {
	for _, name := range Datasets() {
		env, err := NewEnv(name, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if env.Built.Graph.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if env.Built.Graph.MaxPrestige() <= 0 {
			t.Fatalf("%s: prestige missing", name)
		}
		// Env caching returns the same instance.
		env2, err := NewEnv(name, 0.05)
		if err != nil || env2 != env {
			t.Fatalf("%s: env not cached", name)
		}
	}
	if _, err := NewEnv("nosuch", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMeasure(t *testing.T) {
	q := &workload.Query{Relevant: map[workload.NodeSet]bool{"1,2,3": true, "4,5,6": true}}
	mk := func(nodes []graph.NodeID, out, gen time.Duration, expl int) *core.Answer {
		return &core.Answer{Root: nodes[0], Nodes: nodes, OutputAt: out, GeneratedAt: gen, ExploredAtOut: expl}
	}
	res := &core.Result{
		Answers: []*core.Answer{
			mk([]graph.NodeID{1, 2, 3}, 10*time.Millisecond, 2*time.Millisecond, 5),
			mk([]graph.NodeID{7, 8}, 11*time.Millisecond, 3*time.Millisecond, 6),
			mk([]graph.NodeID{6, 5, 4}, 12*time.Millisecond, 4*time.Millisecond, 9),
		},
		Stats: core.Stats{Duration: 20 * time.Millisecond, NodesExplored: 30},
	}
	m := Measure(res, q)
	if m.Found != 2 || m.Total != 2 {
		t.Fatalf("Found/Total = %d/%d", m.Found, m.Total)
	}
	if m.Time != 12*time.Millisecond || m.GenTime != 4*time.Millisecond || m.Explored != 9 {
		t.Fatalf("measurement point wrong: %+v", m)
	}
	if m.IrrelevantBefore != 1 {
		t.Fatalf("IrrelevantBefore = %d, want 1", m.IrrelevantBefore)
	}
}

func TestMeasureNoRelevant(t *testing.T) {
	q := &workload.Query{Relevant: map[workload.NodeSet]bool{"9,10": true}}
	res := &core.Result{Stats: core.Stats{Duration: 5 * time.Millisecond, NodesExplored: 3, NodesTouched: 4}}
	m := Measure(res, q)
	if m.Found != 0 || m.Time != 5*time.Millisecond || m.Explored != 3 || m.Touched != 4 {
		t.Fatalf("no-relevant measurement wrong: %+v", m)
	}
}

func TestFigure5SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test skipped in -short")
	}
	rows, err := Figure5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Figure5 produced %d rows, want 10", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Label] = true
		if len(r.Terms) == 0 || len(r.KwNodes) != len(r.Terms) {
			t.Fatalf("row %s malformed: %+v", r.Label, r)
		}
		if r.RelAns == 0 {
			t.Fatalf("row %s has no relevant answers", r.Label)
		}
		if r.NumCNs == 0 {
			t.Fatalf("row %s: Sparse found no candidate networks", r.Label)
		}
	}
	for _, want := range []string{"DQ1", "DQ7", "IQ1", "UQ5"} {
		if !labels[want] {
			t.Fatalf("missing row %s", want)
		}
	}
	out := FormatFigure5(rows)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "DQ1") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestFigure6ABSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test skipped in -short")
	}
	rows, err := Figure6AB(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 keyword counts × 2 classes
		t.Fatalf("Figure6AB produced %d rows, want 12", len(rows))
	}
	measured := 0
	for _, r := range rows {
		if r.N > 0 {
			measured++
			if r.MIOverSI <= 0 || r.SIOverBidir <= 0 {
				t.Fatalf("non-positive ratio in %+v", r)
			}
		}
	}
	if measured < 6 {
		t.Fatalf("only %d cells measured", measured)
	}
	out := FormatFigure6AB(rows)
	if !strings.Contains(out, "Figure 6(a)") || !strings.Contains(out, "Figure 6(b)") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestFigure6CSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test skipped in -short")
	}
	rows, err := Figure6C(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Figure6C produced %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.N == 0 {
			t.Fatalf("combo %v has no measurements", r.Combo)
		}
	}
	out := FormatFigure6C(rows)
	if !strings.Contains(out, "(T,T,T,T)") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestRecallPrecisionSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test skipped in -short")
	}
	rows, err := RecallPrecision(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("RecallPrecision produced %d rows", len(rows))
	}
	for _, r := range rows {
		if r.N == 0 {
			t.Fatalf("%s: no queries", r.Algorithm)
		}
		// §5.7 reports near-100% recall; at bench scale allow headroom but
		// insist on a strong majority.
		if r.Recall < 0.5 {
			t.Errorf("%s: recall %.3f implausibly low", r.Algorithm, r.Recall)
		}
		if r.Precision < 0.5 {
			t.Errorf("%s: precision %.3f implausibly low", r.Algorithm, r.Precision)
		}
	}
	out := FormatRecallPrecision(rows)
	if !strings.Contains(out, "recall") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}

func TestAblationsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness test skipped in -short")
	}
	rows, err := Ablations(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dims := map[string]int{}
	for _, r := range rows {
		dims[r.Dimension]++
		if r.N == 0 {
			t.Fatalf("%s/%s: no measurements", r.Dimension, r.Variant)
		}
		if r.AvgExplored <= 0 {
			t.Fatalf("%s/%s: no exploration", r.Dimension, r.Variant)
		}
	}
	for _, d := range []string{"mu", "dmax", "combine", "bound", "prestige"} {
		if dims[d] < 2 {
			t.Fatalf("dimension %s has %d variants, want ≥2", d, dims[d])
		}
	}
	out := FormatAblations(rows)
	if !strings.Contains(out, "Ablations") || !strings.Contains(out, "prestige") {
		t.Fatalf("format output wrong:\n%s", out)
	}
}
