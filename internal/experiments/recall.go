package experiments

import (
	"fmt"
	"strings"

	"banks/internal/workload"
)

// RPRow is one algorithm's aggregate recall/precision over the workload
// (§5.7).
type RPRow struct {
	Algorithm string
	// Recall is the fraction of ground-truth relevant answers retrieved
	// (averaged over queries).
	Recall float64
	// Precision is the fraction of outputs, up to and including the last
	// relevant one, that are relevant (averaged over queries) — the
	// paper's "precision at near full recall".
	Precision float64
	// N is the number of queries measured.
	N int
}

// RecallPrecision reproduces the §5.7 experiment: on the §5.4 workload,
// all algorithms should retrieve essentially all relevant answers before
// any irrelevant one.
func RecallPrecision(cfg Config) ([]RPRow, error) {
	env, err := NewEnvSnapshot("dblp", cfg.Factor, cfg.SnapshotDir)
	if err != nil {
		return nil, err
	}
	var queries []*workload.Query
	for nk := 2; nk <= 5; nk++ {
		rng := newRng(cfg, 5000+int64(nk))
		queries = append(queries, env.Gen.Batch(rng, cfg.QueriesPerCell, nk, workload.OriginAny, 300*cfg.QueriesPerCell)...)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no workload queries generated")
	}

	var rows []RPRow
	for _, algo := range []string{"mi-backward", "si-backward", "bidirectional"} {
		row := RPRow{Algorithm: algo}
		var sumRecall, sumPrec float64
		for _, q := range queries {
			res, err := runAlgo(env, q, algo, cfg)
			if err != nil {
				return nil, err
			}
			m := Measure(res, q)
			total := m.Total
			if total > cfg.K {
				// Recall is capped by K outputs; normalize by what is
				// retrievable.
				total = cfg.K
			}
			if total > 0 {
				sumRecall += float64(m.Found) / float64(total)
			}
			denom := m.Found + m.IrrelevantBefore
			if denom > 0 {
				sumPrec += float64(m.Found) / float64(denom)
			} else {
				sumPrec += 1
			}
			row.N++
		}
		row.Recall = sumRecall / float64(row.N)
		row.Precision = sumPrec / float64(row.N)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRecallPrecision renders the §5.7 summary.
func FormatRecallPrecision(rows []RPRow) string {
	var sb strings.Builder
	sb.WriteString("§5.7 recall/precision (ground truth = originating join network results)\n")
	sb.WriteString("algorithm | recall | precision@last-relevant | queries\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-13s | %.3f | %.3f | %d\n", r.Algorithm, r.Recall, r.Precision, r.N)
	}
	return sb.String()
}
