package experiments

import (
	"fmt"
	"strings"

	"banks/internal/core"
	"banks/internal/datagen"
	"banks/internal/graph"
	"banks/internal/prestige"
	"banks/internal/workload"
)

// AblationRow reports the effect of one design-choice variant on a fixed
// skewed-origin workload ((T,T,L,L) combo queries, the configuration where
// Bidirectional search's choices matter most).
type AblationRow struct {
	Dimension string // which knob is being varied
	Variant   string // the knob's value
	// AvgExplored / AvgGenMs are averaged over the workload, measured at
	// the last relevant result (§5.2).
	AvgExplored float64
	AvgGenMs    float64
	AvgOutMs    float64
	Recall      float64
	N           int
}

// Ablations sweeps the design choices DESIGN.md calls out: the activation
// attenuation µ, the depth cutoff dmax, max- vs sum-combination of
// activation, the §4.5 bound mode, and the prestige source. Every variant
// runs Bidirectional search on the same (T,T,L,L) workload.
func Ablations(cfg Config) ([]AblationRow, error) {
	env, err := NewEnvSnapshot("dblp", cfg.Factor, cfg.SnapshotDir)
	if err != nil {
		return nil, err
	}
	rng := newRng(cfg, 7777)
	combo := [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandLarge, datagen.BandLarge}
	var queries []*workload.Query
	for i := 0; i < cfg.QueriesPerCell && len(queries) < cfg.QueriesPerCell; i++ {
		if q, ok := env.Gen.Combo(rng, combo); ok {
			queries = append(queries, q)
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("experiments: no ablation queries")
	}

	base := core.Options{K: cfg.K, MaxNodes: cfg.MaxNodes, Workers: cfg.Workers}
	var rows []AblationRow

	run := func(dim, variant string, opts core.Options) error {
		row := AblationRow{Dimension: dim, Variant: variant}
		var sumExpl, sumGen, sumOut, sumRecall float64
		for _, q := range queries {
			res, err := core.Bidirectional(nil, env.Built.Graph, q.Keywords, opts)
			if err != nil {
				return err
			}
			m := Measure(res, q)
			sumExpl += float64(m.Explored)
			sumGen += float64(m.GenTime.Microseconds()) / 1000
			sumOut += float64(m.Time.Microseconds()) / 1000
			if m.Total > 0 {
				found := m.Found
				if m.Total > cfg.K {
					sumRecall += float64(found) / float64(cfg.K)
				} else {
					sumRecall += float64(found) / float64(m.Total)
				}
			}
			row.N++
		}
		row.AvgExplored = sumExpl / float64(row.N)
		row.AvgGenMs = sumGen / float64(row.N)
		row.AvgOutMs = sumOut / float64(row.N)
		row.Recall = sumRecall / float64(row.N)
		rows = append(rows, row)
		return nil
	}

	// µ sweep (paper default 0.5): lower µ keeps activation near keyword
	// nodes; higher µ lets it travel farther.
	for _, mu := range []float64{0.2, 0.5, 0.8} {
		o := base
		o.Mu = mu
		if err := run("mu", fmt.Sprintf("%.1f", mu), o); err != nil {
			return nil, err
		}
	}
	// dmax sweep (paper default 8).
	for _, dmax := range []int{4, 8, 12} {
		o := base
		o.DMax = dmax
		if err := run("dmax", fmt.Sprint(dmax), o); err != nil {
			return nil, err
		}
	}
	// Activation combination: max (paper default) vs sum (footnote 6).
	{
		o := base
		if err := run("combine", "max", o); err != nil {
			return nil, err
		}
		o.ActivationSum = true
		if err := run("combine", "sum", o); err != nil {
			return nil, err
		}
	}
	// Bound mode: heuristic (paper experiments) vs strict NRA-style.
	{
		o := base
		if err := run("bound", "heuristic", o); err != nil {
			return nil, err
		}
		o.StrictBound = true
		if err := run("bound", "strict", o); err != nil {
			return nil, err
		}
	}
	// Prestige source: random walk (paper) vs indegree (BANKS-I) vs
	// uniform. Swapping prestige changes activation seeds and scores.
	{
		g := env.Built.Graph
		saved := make([]float64, g.NumNodes())
		for i := range saved {
			saved[i] = g.Prestige(graph.NodeID(i))
		}
		if err := run("prestige", "random-walk", base); err != nil {
			return nil, err
		}
		if err := g.SetPrestige(prestige.Indegree(g)); err != nil {
			return nil, err
		}
		if err := run("prestige", "indegree", base); err != nil {
			return nil, err
		}
		uniform := make([]float64, g.NumNodes())
		for i := range uniform {
			uniform[i] = 1
		}
		if err := g.SetPrestige(uniform); err != nil {
			return nil, err
		}
		if err := run("prestige", "uniform", base); err != nil {
			return nil, err
		}
		if err := g.SetPrestige(saved); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatAblations renders the sweep.
func FormatAblations(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablations: Bidirectional search on (T,T,L,L) workload\n")
	sb.WriteString("dimension | variant | avg explored | avg gen(ms) | avg out(ms) | recall | n\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s | %-11s | %10.1f | %9.3f | %9.3f | %.3f | %d\n",
			r.Dimension, r.Variant, r.AvgExplored, r.AvgGenMs, r.AvgOutMs, r.Recall, r.N)
	}
	return sb.String()
}
