package experiments

import (
	"fmt"
	"strings"
	"time"

	"banks/internal/datagen"
	"banks/internal/sparse"
	"banks/internal/workload"
)

// F5Row is one line of the Figure 5 table.
type F5Row struct {
	Label string
	Terms []string
	// KwNodes is |Sᵢ| per keyword (the "#Keyword nodes" column).
	KwNodes []int
	// RelAns / AnsSize are the relevant-answer count and join size.
	RelAns, AnsSize int
	// MIOverSI is the MI-Backward / SI-Backward output-time ratio.
	MIOverSI float64
	// SIOverBidir* are the SI-Backward / Bidirectional ratios.
	SIOverBidirExplored float64
	SIOverBidirTouched  float64
	SIOverBidirGenTime  float64
	SIOverBidirOutTime  float64
	// Absolute times.
	SITime, BidirTime, SparseTime time.Duration
	// NumCNs is the candidate-network count for the Sparse lower bound.
	NumCNs int
}

// fig5Spec describes how to synthesize one sample query in the spirit of
// the paper's DQ/IQ/UQ queries.
type fig5Spec struct {
	label   string
	dataset string
	// mode: "size5" (author–paper–author workload query with nk keywords
	// and class) or "combo" (band-combo query).
	mode  string
	nk    int
	class workload.OriginClass
	combo [4]datagen.Band
}

func fig5Specs() []fig5Spec {
	T, S, M, L := datagen.BandTiny, datagen.BandSmall, datagen.BandMedium, datagen.BandLarge
	return []fig5Spec{
		// DQ1 "David Fernandez parametric": two selective names, 2 kw.
		{label: "DQ1", dataset: "dblp", mode: "size5", nk: 2, class: workload.OriginSmall},
		// DQ3 "Giora Fernandez": 2 kw, mixed selectivity.
		{label: "DQ3", dataset: "dblp", mode: "size5", nk: 2, class: workload.OriginAny},
		// DQ5 "Krishnamurthy parametric query optimization": 4 kw, spread bands.
		{label: "DQ5", dataset: "dblp", mode: "combo", combo: [4]datagen.Band{T, S, M, L}},
		// DQ7 "Naughton Dewitt query processing": 4 kw with large terms.
		{label: "DQ7", dataset: "dblp", mode: "combo", combo: [4]datagen.Band{T, T, L, L}},
		// DQ9 six keywords: 6 kw workload query.
		{label: "DQ9", dataset: "dblp", mode: "size5", nk: 6, class: workload.OriginAny},
		// IQ1 "Keanu Matrix Thomas": 3 kw, large span.
		{label: "IQ1", dataset: "imdb", mode: "size5", nk: 3, class: workload.OriginLarge},
		// IQ2 "Zellweger Jude Nicole": 3 kw, small.
		{label: "IQ2", dataset: "imdb", mode: "size5", nk: 3, class: workload.OriginSmall},
		// UQ1 "Microsoft recovery": 2 kw, large side.
		{label: "UQ1", dataset: "patents", mode: "size5", nk: 2, class: workload.OriginLarge},
		// UQ3 "Cindy Joshua": 2 kw small.
		{label: "UQ3", dataset: "patents", mode: "size5", nk: 2, class: workload.OriginSmall},
		// UQ5 "Chawathe Philip": 2 kw, mixed.
		{label: "UQ5", dataset: "patents", mode: "size5", nk: 2, class: workload.OriginAny},
	}
}

// Figure5 regenerates the sample-query table.
func Figure5(cfg Config) ([]F5Row, error) {
	var rows []F5Row
	for i, spec := range fig5Specs() {
		env, err := NewEnvSnapshot(spec.dataset, cfg.Factor, cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		rng := newRng(cfg, int64(i+1))
		var q *workload.Query
		ok := false
		switch spec.mode {
		case "combo":
			for t := 0; t < 50 && !ok; t++ {
				q, ok = env.Gen.Combo(rng, spec.combo)
			}
		default:
			for t := 0; t < 2000 && !ok; t++ {
				q, ok = env.Gen.SizeFive(rng, spec.nk, spec.class)
			}
		}
		if !ok {
			return nil, fmt.Errorf("experiments: could not generate %s", spec.label)
		}

		row := F5Row{Label: spec.label, Terms: q.Terms, RelAns: len(q.Relevant), AnsSize: q.AnswerSize}
		for _, s := range q.Keywords {
			row.KwNodes = append(row.KwNodes, len(s))
		}

		mi, err := runAlgo(env, q, "mi-backward", cfg)
		if err != nil {
			return nil, err
		}
		si, err := runAlgo(env, q, "si-backward", cfg)
		if err != nil {
			return nil, err
		}
		bi, err := runAlgo(env, q, "bidirectional", cfg)
		if err != nil {
			return nil, err
		}
		mMI, mSI, mBI := Measure(mi, q), Measure(si, q), Measure(bi, q)

		row.MIOverSI = ratio(float64(mMI.Time), float64(mSI.Time))
		row.SIOverBidirExplored = ratio(float64(mSI.Explored), float64(mBI.Explored))
		row.SIOverBidirTouched = ratio(float64(mSI.Touched), float64(mBI.Touched))
		row.SIOverBidirGenTime = ratio(float64(mSI.GenTime), float64(mBI.GenTime))
		row.SIOverBidirOutTime = ratio(float64(mSI.Time), float64(mBI.Time))
		row.SITime = mSI.Time
		row.BidirTime = mBI.Time

		// Sparse lower bound: evaluate all CNs no larger than the relevant
		// answer (§5.2).
		sp, err := sparse.Run(env.DS.DB, q.Terms, q.AnswerSize, 0)
		if err != nil {
			return nil, err
		}
		row.SparseTime = sp.Elapsed
		row.NumCNs = len(sp.CNs)

		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure5 renders the table in the paper's column layout.
func FormatFigure5(rows []F5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Bidirectional vs. Backward search on sample queries\n")
	sb.WriteString("query | #kw-nodes | RelAns | AnsSize | MI/SI time | SI/Bidir expl | SI/Bidir touch | SI/Bidir gen | SI/Bidir out | SI(ms) | Bidir(ms) | Sparse-LB(ms) (#CN)\n")
	for _, r := range rows {
		kw := make([]string, len(r.KwNodes))
		for i, k := range r.KwNodes {
			kw[i] = fmt.Sprint(k)
		}
		fmt.Fprintf(&sb, "%-4s %q | (%s) | %d | %d | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f (%d)\n",
			r.Label, strings.Join(r.Terms, " "), strings.Join(kw, ", "),
			r.RelAns, r.AnsSize, r.MIOverSI,
			r.SIOverBidirExplored, r.SIOverBidirTouched, r.SIOverBidirGenTime, r.SIOverBidirOutTime,
			ms(r.SITime), ms(r.BidirTime), ms(r.SparseTime), r.NumCNs)
	}
	return sb.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
