// Package engine layers a concurrent query-serving runtime over the core
// search algorithms: a bounded worker pool, per-query deadlines, an LRU
// result cache, and a batch API that fans M queries out across W workers.
//
// Queries may also request intra-query parallelism (core.Options.Workers);
// the engine grants those workers opportunistically out of the same pool
// budget, so the total number of search goroutines stays bounded by the
// pool size whether the load is many serial queries or a few parallel
// ones.
//
// The engine relies on the data structures being immutable after build:
// the graph and index are only ever read, so any number of searches may run
// in parallel against them. Results returned by the engine may be served
// from the shared cache and must be treated as read-only by callers.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"banks/internal/core"
	"banks/internal/graph"
	"banks/internal/index"
)

// DefaultCacheSize is the LRU capacity used when Options.CacheSize is 0.
const DefaultCacheSize = 256

// Options configures an Engine. The zero value gives a pool sized to
// GOMAXPROCS, no default deadline, and a DefaultCacheSize-entry cache.
type Options struct {
	// Workers bounds the number of searches executing simultaneously.
	// Default: runtime.GOMAXPROCS(0).
	Workers int
	// DefaultTimeout is applied to every query as a deadline in addition to
	// whatever deadline the caller's context carries (the earlier wins).
	// It covers the whole call, including time spent waiting for a pool
	// slot. 0 means no engine-imposed deadline.
	DefaultTimeout time.Duration
	// CacheSize is the LRU result-cache capacity in entries: 0 selects
	// DefaultCacheSize, negative disables caching entirely.
	CacheSize int
}

// Query is one unit of work for the engine: pre-split keyword terms (they
// are normalized by the engine), an algorithm, and search options.
type Query struct {
	Terms []string
	Algo  core.Algo
	Opts  core.Options
}

// Source is one immutable logical graph the engine serves: a graph view,
// a keyword-lookup function, and the identity of that state (snapshot
// generation plus delta version) used for exact cache keying. Sources are
// swapped in atomically — each query binds to exactly one Source, so a
// mutation or compaction landing mid-stream of queries gives every query
// a view consistent with some generation, never a torn mix.
type Source struct {
	graph  graph.View
	lookup func(string) []graph.NodeID
	// generation is the base snapshot's compaction generation;
	// deltaVersion counts mutation batches applied on top of it (0 for a
	// pristine snapshot). Together they identify the logical graph
	// exactly, which is what makes cache invalidation across swaps exact
	// rather than a flush.
	generation   uint64
	deltaVersion uint64
	// maxDegree caches the view's maximum combined degree, computed
	// lazily on the first query that needs it: Bidirectional queries on
	// hub-free graphs skip the intra-query worker grab entirely. Lazy
	// because the scan touches every offsets entry — on a zero-copy
	// snapshot DB that would page the whole offsets section in at
	// construction, forfeiting the fast-open property for deployments
	// that never request Workers.
	maxDegOnce sync.Once
	maxDegree  int
}

// NewSource builds a swappable engine source from a graph view and a
// keyword-lookup function (typically index.Lookup or a delta overlay's).
func NewSource(g graph.View, lookup func(string) []graph.NodeID, generation, deltaVersion uint64) (*Source, error) {
	if g == nil {
		return nil, errors.New("engine: nil graph")
	}
	if lookup == nil {
		return nil, errors.New("engine: nil lookup")
	}
	return &Source{graph: g, lookup: lookup, generation: generation, deltaVersion: deltaVersion}, nil
}

// Graph returns the source's graph view.
func (s *Source) Graph() graph.View { return s.graph }

// Generation returns the base snapshot generation of the source.
func (s *Source) Generation() uint64 { return s.generation }

// DeltaVersion returns the count of mutation batches layered on the base.
func (s *Source) DeltaVersion() uint64 { return s.deltaVersion }

// maxDeg returns the view's maximum combined degree, scanning once on
// first use.
func (s *Source) maxDeg() int {
	s.maxDegOnce.Do(func() {
		for u := 0; u < s.graph.NumNodes(); u++ {
			if d := s.graph.Degree(graph.NodeID(u)); d > s.maxDegree {
				s.maxDegree = d
			}
		}
	})
	return s.maxDegree
}

// Engine executes keyword searches against one immutable graph+index pair
// with bounded concurrency, deadlines and result caching. The pair is
// held behind an atomic Source pointer so a serving layer can hot-swap in
// a mutated overlay or a freshly compacted snapshot without stopping
// queries: each query binds to the Source current when it starts
// executing, and Swap + Quiesce gives the swapper a moment when no query
// can still be reading the old state.
type Engine struct {
	src atomic.Pointer[Source]

	workers int
	timeout time.Duration
	sem     chan struct{}

	cache        *lruCache // nil when caching is disabled
	hits, misses atomic.Uint64

	// Cumulative activity counters for serving introspection (/statusz).
	searches  atomic.Uint64
	nears     atomic.Uint64
	truncated atomic.Uint64
	errored   atomic.Uint64
}

// Counters is a point-in-time snapshot of cumulative engine activity,
// exposed for serving-layer introspection. All fields only ever grow.
type Counters struct {
	// Searches counts Search calls that passed input validation,
	// including ones answered from the result cache.
	Searches uint64
	// Nears counts Near calls that passed input validation.
	Nears uint64
	// Truncated counts queries whose result came back with
	// Stats.Truncated set (deadline or cancellation cut the search short).
	Truncated uint64
	// Errored counts queries that returned an error (bad options,
	// deadline expiry while waiting for a pool slot, ...).
	Errored uint64
}

// Counters returns a snapshot of the cumulative activity counters. The
// fields are read individually, not atomically as a set: a query
// completing concurrently may be reflected in one counter and not yet in
// another.
func (e *Engine) Counters() Counters {
	return Counters{
		Searches:  e.searches.Load(),
		Nears:     e.nears.Load(),
		Truncated: e.truncated.Load(),
		Errored:   e.errored.Load(),
	}
}

// InFlight reports how many pool slots are currently held. This counts
// executing queries plus any extra slots granted for intra-query
// parallelism, so it can exceed the number of distinct queries running.
func (e *Engine) InFlight() int { return len(e.sem) }

// Quiesce blocks until every pool slot is simultaneously free — i.e. no
// query is executing — or ctx is done, in which case it returns ctx.Err().
// It is a drain barrier for graceful shutdown: after HTTP listeners stop
// accepting work, Quiesce confirms the engine has gone idle. New queries
// arriving while Quiesce holds slots will wait and then proceed normally;
// it observes a moment of idleness, it does not fence the pool.
func (e *Engine) Quiesce(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	held := 0
	defer func() {
		for i := 0; i < held; i++ {
			<-e.sem
		}
	}()
	for held < e.workers {
		select {
		case e.sem <- struct{}{}:
			held++
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// New builds an Engine over a graph and its keyword index.
func New(g *graph.Graph, ix *index.Index, opts Options) (*Engine, error) {
	if g == nil {
		return nil, errors.New("engine: nil graph")
	}
	if ix == nil {
		return nil, errors.New("engine: nil index")
	}
	if opts.DefaultTimeout < 0 {
		return nil, fmt.Errorf("engine: negative DefaultTimeout %v", opts.DefaultTimeout)
	}
	w := opts.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return nil, fmt.Errorf("engine: invalid worker count %d", opts.Workers)
	}
	src, err := NewSource(g, ix.Lookup, 0, 0)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		workers: w,
		timeout: opts.DefaultTimeout,
		sem:     make(chan struct{}, w),
	}
	e.src.Store(src)
	switch {
	case opts.CacheSize == 0:
		e.cache = newLRUCache(DefaultCacheSize)
	case opts.CacheSize > 0:
		e.cache = newLRUCache(opts.CacheSize)
	}
	return e, nil
}

// Workers returns the concurrency bound of the pool.
func (e *Engine) Workers() int { return e.workers }

// Source returns the engine's current source. Queries already executing
// may still be bound to an earlier one until Quiesce observes idleness.
func (e *Engine) Source() *Source { return e.src.Load() }

// Swap atomically replaces the engine's source; queries that start (or
// re-resolve) after the swap run against the new source. The old source's
// backing memory must outlive every in-flight query — callers that want
// to release it (e.g. unmapping a replaced snapshot) call Quiesce after
// Swap: once every pool slot has been simultaneously free, no query can
// still be reading the old state, because each query binds its source
// while holding a slot.
func (e *Engine) Swap(src *Source) {
	if src == nil {
		panic("engine: Swap with nil source")
	}
	e.src.Store(src)
}

// workersUsable caps an intra-query worker request at what the algorithm
// can actually put to work on this query: 0 for algorithms that ignore
// Workers, the per-keyword-node iterator count for MI-Backward, 0 for
// Bidirectional on graphs with no hub dense enough to shard, and
// core.MaxWorkers always (mirroring the core clamp). maxDegree is a
// function so the degree scan runs only for Bidirectional requests.
func workersUsable(algo core.Algo, requested int, kw [][]graph.NodeID, maxDegree func() int) int {
	if requested <= 0 {
		return 0
	}
	if requested > core.MaxWorkers {
		requested = core.MaxWorkers
	}
	switch algo {
	case core.AlgoMIBackward:
		iters := 0
		for _, s := range kw {
			iters += len(s)
		}
		if requested > iters {
			requested = iters
		}
		return requested
	case core.AlgoBidirectional:
		if maxDegree() < core.BidirShardMinDegree() {
			return 0
		}
		return requested
	default:
		// SI-Backward ignores Workers (documented serial fallback);
		// unknown algorithms fail in core.Search before using any.
		return 0
	}
}

// normalizeTerms lower-cases and trims each term, dropping terms that
// normalize to nothing. The result is the canonical form used both for
// index lookup and cache keying.
func normalizeTerms(terms []string) []string {
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := index.Normalize(t); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Search runs one query through the pool. It blocks while all workers are
// busy (respecting ctx while waiting). On deadline expiry — from the
// caller's context or the engine's DefaultTimeout — the partial top-k found
// so far is returned with Stats.Truncated set.
//
// The returned result may be shared with other callers via the cache and
// must not be modified.
func (e *Engine) Search(ctx context.Context, q Query) (*core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	terms := normalizeTerms(q.Terms)
	if len(terms) == 0 {
		return nil, errors.New("engine: query contains no keywords")
	}
	e.searches.Add(1)

	// The pre-slot cache probe uses whatever source is current now; a hit
	// costs no pool slot. The key carries the source's generation + delta
	// version, so a swap can never serve a stale entry — old entries
	// simply stop being addressable and age out of the LRU.
	src := e.src.Load()
	key, cacheable := cacheKey{}, false
	if e.cache != nil {
		if key, cacheable = newCacheKey(src, terms, q.Algo, q.Opts); cacheable {
			if res, ok := e.cache.get(key); ok {
				e.hits.Add(1)
				return res, nil
			}
			e.misses.Add(1)
		}
	}

	// The default timeout starts before the slot wait: it is a per-query
	// deadline covering queue time, not just execution time, so a saturated
	// pool cannot hold callers indefinitely.
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	select {
	case e.sem <- struct{}{}:
		defer func() { <-e.sem }()
	case <-ctx.Done():
		e.errored.Add(1)
		return nil, ctx.Err()
	}

	// Re-resolve the source now that a slot is held: binding the source
	// under a slot is what makes Swap + Quiesce a safe unmap barrier (a
	// quiesced engine has no slot held, hence no query bound to the old
	// source). A swap between the cache probe and here just re-keys the
	// result to the source that actually executes.
	if cur := e.src.Load(); cur != src {
		src = cur
		if cacheable {
			key, cacheable = newCacheKey(src, terms, q.Algo, q.Opts)
		}
	}

	kw := make([][]graph.NodeID, len(terms))
	for i, t := range terms {
		kw[i] = src.lookup(t)
	}

	// Intra-query parallelism draws on the same pool budget: a query
	// asking for Opts.Workers > 0 holds its coordinating slot (acquired
	// above, blocking) and claims up to Workers extra slots without
	// blocking — an opportunistic grab, so concurrent queries can never
	// deadlock on partial grants. The query runs with whatever it got
	// (possibly zero extras, i.e. serial). Results are unaffected either
	// way: parallel execution is bit-identical to serial by the core
	// contract, so the grant shows up only in latency and
	// Stats.WorkersUsed. The grab is clamped to an upper bound on what
	// the search can employ: nothing for SI-Backward (documented serial
	// fallback), at most the iterator count for MI-Backward, nothing for
	// Bidirectional on a hub-free graph, and never more than
	// core.MaxWorkers. The bound is graph/query-shaped, not exact — a
	// Bidirectional search on a hub-capable graph whose frontier never
	// reaches a hub still holds its granted slots to completion.
	if want := workersUsable(q.Algo, q.Opts.Workers, kw, src.maxDeg); want > 0 {
		granted := 0
		for granted < want {
			select {
			case e.sem <- struct{}{}:
				granted++
				continue
			default:
			}
			break
		}
		q.Opts.Workers = granted
		defer func() {
			for i := 0; i < granted; i++ {
				<-e.sem
			}
		}()
	}

	res, err := core.Search(ctx, src.graph, q.Algo, kw, q.Opts)
	if err != nil {
		e.errored.Add(1)
		return nil, err
	}
	if res.Stats.Truncated {
		e.truncated.Add(1)
	}
	// Truncated results are deadline artifacts of this one call, not the
	// query's answer; caching them would serve partial answers to callers
	// with generous deadlines.
	if cacheable && !res.Stats.Truncated {
		e.cache.put(key, res)
	}
	return res, nil
}

// Near runs a near query (activation-ranked nodes) through the pool with
// the same deadline handling as Search. Near results are not cached.
func (e *Engine) Near(ctx context.Context, terms []string, opts core.Options) ([]core.NearResult, core.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nt := normalizeTerms(terms)
	if len(nt) == 0 {
		return nil, core.Stats{}, errors.New("engine: query contains no keywords")
	}
	e.nears.Add(1)
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	select {
	case e.sem <- struct{}{}:
		defer func() { <-e.sem }()
	case <-ctx.Done():
		e.errored.Add(1)
		return nil, core.Stats{}, ctx.Err()
	}
	src := e.src.Load()
	kw := make([][]graph.NodeID, len(nt))
	for i, t := range nt {
		kw[i] = src.lookup(t)
	}
	res, stats, err := core.Near(ctx, src.graph, kw, opts)
	switch {
	case err != nil:
		e.errored.Add(1)
	case stats.Truncated:
		e.truncated.Add(1)
	}
	return res, stats, err
}

// SearchBatch fans len(qs) queries out across the worker pool and waits for
// all of them. results[i] and errs[i] correspond to qs[i]; a failed query
// leaves a nil result and its error, never affecting its siblings.
// Cancelling ctx aborts queries still running (they return truncated
// results) and fails queries still waiting for a worker.
func (e *Engine) SearchBatch(ctx context.Context, qs []Query) (results []*core.Result, errs []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results = make([]*core.Result, len(qs))
	errs = make([]error, len(qs))
	if len(qs) == 0 {
		return results, errs
	}
	// One dispatcher goroutine per pool slot (not per query): M may be much
	// larger than W, and each Search also acquires a pool slot, so more
	// dispatchers than workers would only add blocked goroutines.
	n := e.workers
	if n > len(qs) {
		n = len(qs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = e.Search(ctx, qs[i])
			}
		}()
	}
	for i := range qs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errs
}

// CacheStats reports cumulative cache hits and misses (both zero when
// caching is disabled).
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// CacheLen returns the current number of cached results.
func (e *Engine) CacheLen() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}
