package engine

import (
	"context"
	"errors"
	"fmt"

	"banks/internal/core"
	"banks/internal/graph"
)

// DefaultStreamBuffer is the answer-channel capacity used when
// StreamOptions.Buffer is zero. A handful of answers of headroom absorbs
// consumer jitter (one slow write does not stall generation) while
// keeping the channel small enough that backpressure still reaches the
// search quickly when the consumer genuinely cannot keep up.
const DefaultStreamBuffer = 16

// StreamOptions configures one SearchStream call.
type StreamOptions struct {
	// Buffer is the answer-channel capacity: 0 selects
	// DefaultStreamBuffer, negative means unbuffered (every emission
	// waits for the consumer — useful in tests that need deterministic
	// backpressure).
	Buffer int
	// DropToBatch selects the backpressure policy for a consumer slower
	// than answer generation. False (the default) blocks generation: the
	// search stalls inside the emission until the consumer takes the
	// answer — strict incrementality, at the cost of holding the query's
	// pool slot while the consumer dawdles. True degrades to batch
	// delivery instead: the first emission that would block stops live
	// streaming, the search runs to completion unthrottled, and the
	// remaining answers are delivered in order afterwards (the trailer
	// reports Degraded). Content and order are identical either way.
	DropToBatch bool
}

// StreamTrailer summarizes a finished stream — the final NDJSON line of
// the HTTP transport carries exactly this.
type StreamTrailer struct {
	// Stats are the search's §5.2 counters (for a cache replay, the
	// originating run's).
	Stats core.Stats
	// Truncated reports that the delivered sequence is a valid prefix,
	// not the complete top-k: the search was cut by its deadline
	// (Stats.Truncated) or delivery was cut by the stream context ending
	// mid-stream.
	Truncated bool
	// Cached reports the stream was replayed from the engine result cache
	// rather than generated live.
	Cached bool
	// Answers is how many answers were actually delivered on the channel.
	Answers int
	// Degraded reports that live per-answer delivery was abandoned
	// (DropToBatch tripped, or the context ended during a send — live or
	// replayed); answers after that point were delivered after the
	// search, if at all.
	Degraded bool
}

// Stream is one in-progress streaming search. The consumer ranges over
// Answers until the channel closes, then reads the Trailer. Abandoning a
// stream requires cancelling the context passed to SearchStream —
// walking away without draining blocks the producer (blocking
// backpressure is the default policy) and leaks its goroutine until the
// context ends.
type Stream struct {
	ch      chan core.EmittedAnswer
	done    chan struct{}
	trailer StreamTrailer
	err     error
}

// Answers is the ordered answer channel. It is closed when the search
// ends — normally, by deadline, or by error.
func (s *Stream) Answers() <-chan core.EmittedAnswer { return s.ch }

// Trailer blocks until the stream has ended (Answers is closed) and
// returns its summary. A non-nil error means the search failed after
// launch; SearchStream validates everything it can synchronously, so
// this is defensive, not expected.
func (s *Stream) Trailer() (StreamTrailer, error) {
	<-s.done
	return s.trailer, s.err
}

// finish publishes the trailer and closes the stream. Order matters: the
// trailer must be in place before the channel closes, because consumers
// call Trailer the moment the range loop ends.
func (s *Stream) finish(tr StreamTrailer, err error) {
	s.trailer, s.err = tr, err
	close(s.ch)
	close(s.done)
}

// SearchStream runs one query with incremental answer delivery: answers
// appear on the returned Stream the moment the core output heap releases
// them (the paper's §5.2 output event), rather than all at once when the
// search finishes. The streamed sequence is bit-identical in content and
// order to what Search would return for the same query — streaming
// changes when the caller hears about answers, never which answers.
//
// Invalid queries (no keywords, unknown algorithm, bad options) fail
// synchronously with the same typed errors as Search, before the stream
// exists. Like Search, the call blocks while all pool workers are busy;
// the pool slot is held for the duration of the search — under blocking
// backpressure that includes time spent waiting on a slow consumer,
// which is why serving layers put per-tenant quotas in front of streams.
//
// A cache hit replays the cached result as a stream (trailer.Cached):
// per-answer OutputAt offsets are the originating run's. A live search
// that completes untruncated populates the cache exactly as Search does.
// On deadline expiry mid-stream the stream ends cleanly: the answers
// delivered are a valid partial top-k prefix and the trailer carries
// Truncated plus the search's stats.
//
// q.Opts.Emit is the seam this API is built on: SearchStream owns it and
// replaces any caller-supplied callback (callers that want raw emissions
// use Search with Opts.Emit directly, forgoing the cache).
func (e *Engine) SearchStream(ctx context.Context, q Query, so StreamOptions) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	terms := normalizeTerms(q.Terms)
	if len(terms) == 0 {
		return nil, errors.New("engine: query contains no keywords")
	}
	if len(terms) > core.MaxKeywords {
		return nil, fmt.Errorf("engine: %d keywords exceeds maximum %d", len(terms), core.MaxKeywords)
	}
	if !knownAlgo(q.Algo) {
		return nil, fmt.Errorf("engine: unknown algorithm %q", q.Algo)
	}
	if err := q.Opts.Validate(); err != nil {
		return nil, err
	}
	e.searches.Add(1)

	buf := so.Buffer
	switch {
	case buf == 0:
		buf = DefaultStreamBuffer
	case buf < 0:
		buf = 0
	}
	st := &Stream{ch: make(chan core.EmittedAnswer, buf), done: make(chan struct{})}

	// Pre-slot cache probe against the current source; same generation +
	// delta-version keying discipline as Search.
	src := e.src.Load()
	key, cacheable := cacheKey{}, false
	if e.cache != nil {
		if key, cacheable = newCacheKey(src, terms, q.Algo, q.Opts); cacheable {
			if res, ok := e.cache.get(key); ok {
				e.hits.Add(1)
				go st.replay(ctx, res)
				return st, nil
			}
			e.misses.Add(1)
		}
	}

	// Same deadline discipline as Search: the engine default covers queue
	// time too, so a saturated pool cannot hold stream callers forever.
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if e.timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, e.timeout)
	}
	select {
	case e.sem <- struct{}{}:
	case <-runCtx.Done():
		err := runCtx.Err()
		cancel()
		e.errored.Add(1)
		return nil, err
	}

	// Re-resolve the source under the slot, as Search does: the slot is
	// what Swap + Quiesce synchronizes on.
	if cur := e.src.Load(); cur != src {
		src = cur
		if cacheable {
			key, cacheable = newCacheKey(src, terms, q.Algo, q.Opts)
		}
	}

	kw := make([][]graph.NodeID, len(terms))
	for i, t := range terms {
		kw[i] = src.lookup(t)
	}
	// Opportunistic intra-query worker grant, identical to Search.
	granted := 0
	if want := workersUsable(q.Algo, q.Opts.Workers, kw, src.maxDeg); want > 0 {
		for granted < want {
			select {
			case e.sem <- struct{}{}:
				granted++
				continue
			default:
			}
			break
		}
	}
	q.Opts.Workers = granted

	go e.runStream(runCtx, cancel, st, src, q, kw, so, key, cacheable, granted)
	return st, nil
}

// knownAlgo reports whether the algorithm is one core.Search dispatches
// on — checked up front so SearchStream fails synchronously.
func knownAlgo(a core.Algo) bool {
	for _, algo := range core.Algos() {
		if a == algo {
			return true
		}
	}
	return false
}

// runStream executes the search on its own goroutine, feeding the stream
// through the core Emit seam.
func (e *Engine) runStream(ctx context.Context, cancel context.CancelFunc, st *Stream,
	src *Source, q Query, kw [][]graph.NodeID, so StreamOptions, key cacheKey, cacheable bool, granted int) {
	defer cancel()

	// sent and degraded are touched only by the Emit callback and the
	// post-search tail below, both on this goroutine.
	sent, degraded := 0, false
	opts := q.Opts
	opts.Emit = func(ev core.EmittedAnswer) {
		if degraded {
			return
		}
		if so.DropToBatch {
			select {
			case st.ch <- ev:
				sent++
			default:
				degraded = true
			}
			return
		}
		select {
		case st.ch <- ev:
			sent++
		case <-ctx.Done():
			// The deadline (or the caller) ended the stream while the
			// consumer was not taking answers; stop live delivery. The
			// search itself notices the same context at its next
			// cancellation check and truncates.
			degraded = true
		}
	}

	res, err := core.Search(ctx, src.graph, q.Algo, kw, opts)

	// The search is over: return the pool slots before tail delivery,
	// which runs at the consumer's pace and must not hold pool capacity.
	for i := 0; i <= granted; i++ {
		<-e.sem
	}

	if err != nil {
		// Unreachable in practice — SearchStream validated the query —
		// but a defensive error still closes the stream properly. The
		// trailer stays honest about what was already delivered: the
		// streamed prefix is real, just not the complete top-k.
		e.errored.Add(1)
		st.finish(StreamTrailer{Answers: sent, Truncated: true}, err)
		return
	}

	// Deliver whatever was not streamed live (the degraded tail; empty on
	// the happy path). Answers are in output order, and the live-sent
	// prefix is exactly res.Answers[:sent], so delivery stays in order
	// and gap-free.
	delivered, deliveryCut := deliver(ctx, st.ch, res.Answers, sent, res.Stats.AnswersGenerated)
	sent += delivered

	if res.Stats.Truncated {
		e.truncated.Add(1)
	}
	// The cache policy matches Search: complete results only. A delivery
	// cut does not poison the result — the search itself was complete.
	if cacheable && !res.Stats.Truncated {
		e.cache.put(key, res)
	}
	st.finish(StreamTrailer{
		Stats:     res.Stats,
		Truncated: res.Stats.Truncated || deliveryCut,
		Answers:   sent,
		Degraded:  degraded,
	}, nil)
}

// deliver sends answers[from:] on ch in order — Rank and OutputAt come
// from the answers themselves, gen stamps Generated for these non-live
// events — stopping early when ctx ends. It reports how many were sent
// and whether the context cut delivery short. Both non-live delivery
// paths (runStream's tail, replay) share it so their semantics cannot
// drift.
func deliver(ctx context.Context, ch chan<- core.EmittedAnswer, answers []*core.Answer, from, gen int) (sent int, cut bool) {
	for i := from; i < len(answers); i++ {
		a := answers[i]
		select {
		case ch <- core.EmittedAnswer{Answer: a, Rank: i + 1, OutputAt: a.OutputAt, Generated: gen}:
			sent++
		case <-ctx.Done():
			return sent, true
		}
	}
	return sent, false
}

// replay feeds a cached result through the stream interface: same
// channel discipline, same trailer, Cached set. OutputAt offsets are the
// originating run's — a replay is a recording, not a re-search.
func (st *Stream) replay(ctx context.Context, res *core.Result) {
	sent, cut := deliver(ctx, st.ch, res.Answers, 0, res.Stats.AnswersGenerated)
	st.finish(StreamTrailer{
		Stats:     res.Stats,
		Truncated: res.Stats.Truncated || cut,
		Cached:    true,
		Degraded:  cut,
		Answers:   sent,
	}, nil)
}
