package engine

import "banks/internal/core"

// MergeTopK merges independently produced answer lists (typically the
// per-shard results of a scatter-gather fan-out) into one global top-k
// using the core output-heap discipline: rotation/root duplicates keep
// the best-scoring version, survivors are stably ordered by relevance
// score descending (exact ties keep arrival order, mirroring the output
// heap's own final sort) and cut at k.
// Answers pass through by reference — no copy, no rescore — so the
// merged list preserves every float bit of its inputs.
//
// This is the serving-tier merge seam used by internal/router; it is
// exported here so front ends compose it with Engine results without
// reaching into core.
func MergeTopK(k int, lists ...[]*core.Answer) []*core.Answer {
	return core.MergeTopK(k, lists...)
}
