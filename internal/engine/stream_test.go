package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"banks/internal/core"
)

// drainStream collects a whole stream and its trailer.
func drainStream(t *testing.T, st *Stream) ([]core.EmittedAnswer, StreamTrailer) {
	t.Helper()
	var evs []core.EmittedAnswer
	for ev := range st.Answers() {
		evs = append(evs, ev)
	}
	tr, err := st.Trailer()
	if err != nil {
		t.Fatalf("trailer error: %v", err)
	}
	return evs, tr
}

// TestSearchStreamMatchesSearch is the engine-level equivalence proof:
// the streamed sequence equals the batch result of the same query, event
// metadata included.
func TestSearchStreamMatchesSearch(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range core.Algos() {
		q := Query{Terms: []string{"alpha", "omega"}, Algo: algo, Opts: core.Options{K: 4}}
		batch, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.SearchStream(context.Background(), q, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		evs, tr := drainStream(t, st)
		if len(evs) != len(batch.Answers) {
			t.Fatalf("%s: %d streamed answers, batch has %d", algo, len(evs), len(batch.Answers))
		}
		for i, ev := range evs {
			if ev.Rank != i+1 {
				t.Fatalf("%s: event %d has rank %d", algo, i, ev.Rank)
			}
			if ev.Answer.Root != batch.Answers[i].Root || ev.Answer.Score != batch.Answers[i].Score {
				t.Fatalf("%s: event %d answer diverged from batch", algo, i)
			}
		}
		if tr.Truncated || tr.Cached || tr.Degraded {
			t.Fatalf("%s: unexpected trailer flags %+v", algo, tr)
		}
		if tr.Answers != len(evs) {
			t.Fatalf("%s: trailer reports %d answers, delivered %d", algo, tr.Answers, len(evs))
		}
		if tr.Stats.AnswersGenerated != batch.Stats.AnswersGenerated {
			t.Fatalf("%s: trailer stats diverged from batch", algo)
		}
	}
}

// TestSearchStreamValidatesSynchronously pins the fail-fast contract: bad
// queries error before any stream exists, with the same typed errors as
// Search.
func TestSearchStreamValidatesSynchronously(t *testing.T) {
	g, ix := testGraph(t, 8)
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchStream(nil, Query{Terms: nil, Algo: core.AlgoBidirectional}, StreamOptions{}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := e.SearchStream(nil, Query{Terms: []string{"alpha"}, Algo: "nope"}, StreamOptions{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	var oe *core.OptionsError
	_, err = e.SearchStream(nil, Query{Terms: []string{"alpha"}, Algo: core.AlgoBidirectional,
		Opts: core.Options{Workers: -1}}, StreamOptions{})
	if !errors.As(err, &oe) || oe.Field != "Workers" {
		t.Fatalf("want *core.OptionsError on Workers, got %v", err)
	}
}

// TestSearchStreamCacheReplay pins the cache interaction: the first
// stream populates the cache, the second replays it (Cached trailer,
// identical answers, recorded offsets).
func TestSearchStreamCacheReplay(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "mid"}, Algo: core.AlgoBidirectional, Opts: core.Options{K: 3}}
	st1, err := e.SearchStream(context.Background(), q, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs1, tr1 := drainStream(t, st1)
	if tr1.Cached {
		t.Fatal("first stream claims to be cached")
	}
	st2, err := e.SearchStream(context.Background(), q, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evs2, tr2 := drainStream(t, st2)
	if !tr2.Cached {
		t.Fatal("second stream was not served from cache")
	}
	if len(evs1) == 0 || len(evs2) != len(evs1) {
		t.Fatalf("replay delivered %d answers, original %d", len(evs2), len(evs1))
	}
	for i := range evs2 {
		if evs2[i].Answer != evs1[i].Answer {
			t.Fatalf("replay answer %d is not the cached object", i)
		}
		if evs2[i].OutputAt != evs1[i].Answer.OutputAt {
			t.Fatalf("replay answer %d lost its recorded OutputAt", i)
		}
	}
	// The batch path shares the same cache entry.
	if hits, _ := e.CacheStats(); hits == 0 {
		t.Fatal("no cache hit recorded")
	}
}

// TestSearchStreamDropToBatch exercises the degraded path
// deterministically: an unbuffered channel and a consumer that refuses to
// read until the search finishes force the first emission to trip the
// policy; every answer must still arrive, in order.
func TestSearchStreamDropToBatch(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional, Opts: core.Options{K: 4}}
	batch, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.SearchStream(context.Background(), q, StreamOptions{Buffer: -1, DropToBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	// Hold off reading until the search has finished: the engine releases
	// its pool slot right after the core search returns (before tail
	// delivery), so InFlight()==0 means every live emission already ran —
	// and with no receiver ever ready on the unbuffered channel, each
	// non-blocking send must have failed, tripping the policy. Everything
	// then arrives as the post-search tail.
	deadline := time.Now().Add(10 * time.Second)
	for e.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never finished")
		}
		time.Sleep(time.Millisecond)
	}
	evs, tr := drainStream(t, st)
	if !tr.Degraded {
		t.Fatal("unread unbuffered stream did not degrade")
	}
	if len(evs) != len(batch.Answers) {
		t.Fatalf("degraded stream delivered %d answers, batch has %d", len(evs), len(batch.Answers))
	}
	for i, ev := range evs {
		if ev.Rank != i+1 || ev.Answer.Root != batch.Answers[i].Root {
			t.Fatalf("degraded stream out of order at %d", i)
		}
	}
}

// TestSearchStreamAbandonedConsumer proves an abandoned stream does not
// leak: cancelling the context releases the producer even though nobody
// drains the channel, and the trailer reports a truncated delivery.
func TestSearchStreamAbandonedConsumer(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	st, err := e.SearchStream(ctx, Query{Terms: []string{"alpha", "omega"},
		Algo: core.AlgoBidirectional, Opts: core.Options{K: 4}}, StreamOptions{Buffer: -1})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // walk away without reading
	done := make(chan struct{})
	go func() {
		st.Trailer()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producer did not shut down after context cancellation")
	}
	// The engine pool must be fully free again (no leaked slots).
	qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer qcancel()
	if err := e.Quiesce(qctx); err != nil {
		t.Fatalf("engine did not quiesce after abandoned stream: %v", err)
	}
}

// TestSearchStreamDeadlineTrailer pins mid-stream deadline semantics: an
// already-expired context yields a clean stream that ends immediately
// with a Truncated trailer (the prefix property — possibly empty — of
// the core contract).
func TestSearchStreamDeadlineTrailer(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	st, err := e.SearchStream(ctx, Query{Terms: []string{"alpha", "omega"},
		Algo: core.AlgoBidirectional, Opts: core.Options{K: 4}}, StreamOptions{})
	if err != nil {
		// Also acceptable: the expired deadline surfaces while waiting
		// for a pool slot, exactly as Search behaves.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	evs, tr := drainStream(t, st)
	if !tr.Truncated {
		t.Fatalf("expired-deadline stream not truncated (delivered %d)", len(evs))
	}
}
