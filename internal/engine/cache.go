package engine

import (
	"container/list"
	"strings"
	"sync"

	"banks/internal/core"
)

// cacheKey identifies one cacheable query: the normalized keyword terms (in
// query order, NUL-joined), the algorithm, and the scalar search options in
// their normalized (defaults-applied) form. Queries carrying EdgeFilter,
// EdgePriority, Emit or EmitNear callbacks are never cached — functions
// have no identity to key on (and an Emit observer belongs to one call,
// not to every future cache hit; the streaming path replays cache hits
// itself, with the callback stripped from the key's perspective).
type cacheKey struct {
	terms string
	algo  core.Algo
	opts  optsKey
	// generation and deltaVersion pin the entry to the exact logical
	// graph (Source) that produced it: a mutation batch or compaction
	// swap changes the pair, so stale entries become unaddressable
	// immediately — exact invalidation, not a cache flush.
	generation   uint64
	deltaVersion uint64
}

// optsKey is the comparable subset of core.Options that can change what a
// search returns. Workers is deliberately excluded: parallel execution is
// bit-identical to serial by the core contract, so serial and parallel
// callers share cache entries (a hit may therefore report the
// Stats.WorkersUsed of whichever execution populated it).
type optsKey struct {
	k, dmax, maxNodes          int
	mu, lambda                 float64
	strictBound, activationSum bool
}

// newCacheKey builds the key for a query, or ok=false when the query is not
// cacheable.
func newCacheKey(src *Source, terms []string, algo core.Algo, opts core.Options) (cacheKey, bool) {
	if opts.EdgeFilter != nil || opts.EdgePriority != nil || opts.Emit != nil || opts.EmitNear != nil {
		return cacheKey{}, false
	}
	n := opts.Normalized()
	return cacheKey{
		terms:        strings.Join(terms, "\x00"),
		algo:         algo,
		generation:   src.generation,
		deltaVersion: src.deltaVersion,
		opts: optsKey{
			k: n.K, dmax: n.DMax, maxNodes: n.MaxNodes,
			mu: n.Mu, lambda: n.Lambda,
			strictBound: n.StrictBound, activationSum: n.ActivationSum,
		},
	}, true
}

// lruCache is a mutex-guarded LRU over search results. Cached *core.Result
// values are shared between all callers that hit the same key; the engine's
// contract is that results are read-only.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *core.Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

func (c *lruCache) get(key cacheKey) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *lruCache) put(key cacheKey, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
