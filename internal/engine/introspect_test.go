// Tests for the serving-introspection surface: activity counters,
// in-flight gauge, and the Quiesce drain barrier.
package engine

import (
	"context"
	"testing"
	"time"

	"banks/internal/core"
)

func TestCounters(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{Workers: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if c := e.Counters(); c != (Counters{}) {
		t.Fatalf("fresh engine has non-zero counters: %+v", c)
	}

	if _, err := e.Search(context.Background(), Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(context.Background(), Query{Terms: []string{"alpha"}, Algo: core.AlgoBidirectional,
		Opts: core.Options{Workers: -1}}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, _, err := e.Near(context.Background(), []string{"alpha", "omega"}, core.Options{K: 3}); err != nil {
		t.Fatal(err)
	}

	c := e.Counters()
	if c.Searches != 2 {
		t.Errorf("Searches = %d, want 2 (valid + invalid-options)", c.Searches)
	}
	if c.Nears != 1 {
		t.Errorf("Nears = %d, want 1", c.Nears)
	}
	if c.Errored != 1 {
		t.Errorf("Errored = %d, want 1", c.Errored)
	}
	if c.Truncated != 0 {
		t.Errorf("Truncated = %d, want 0", c.Truncated)
	}

	// An already-expired deadline ends in exactly one of two ways — the
	// slot wait fails (error) or the search starts and truncates — and
	// the counters must account for it either way.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	res, err := e.Search(ctx, Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional})
	c = e.Counters()
	if c.Searches != 3 {
		t.Errorf("Searches = %d, want 3", c.Searches)
	}
	switch {
	case err != nil:
		if c.Errored != 2 {
			t.Errorf("Errored = %d after slot-wait expiry, want 2", c.Errored)
		}
	case !res.Stats.Truncated:
		t.Error("expired deadline produced an untruncated result")
	case c.Truncated != 1:
		t.Errorf("Truncated = %d after truncated result, want 1", c.Truncated)
	}
}

func TestInFlightAndQuiesce(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{Workers: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("idle InFlight = %d", got)
	}
	if err := e.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce on idle engine: %v", err)
	}

	// Occupy one slot the way a running query would and verify Quiesce
	// waits for it (white-box: the semaphore is the in-flight ledger).
	e.sem <- struct{}{}
	if got := e.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d with one slot held, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Quiesce(ctx); err == nil {
		t.Fatal("Quiesce returned while a slot was held")
	}
	// Quiesce must give back the slots it did manage to grab.
	if got := e.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d after failed Quiesce, want 1 (no leaked slots)", got)
	}
	<-e.sem
	if err := e.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after release: %v", err)
	}
	if got := e.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after Quiesce, want 0", got)
	}

	// Queries proceed normally after a Quiesce cycle.
	if _, err := e.Search(context.Background(), Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional}); err != nil {
		t.Fatal(err)
	}
}
