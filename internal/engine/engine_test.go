package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"banks/internal/core"
	"banks/internal/graph"
	"banks/internal/index"
)

// testGraph builds a simple chain graph 0→1→…→n-1 with keyword "alpha" on
// node 0, "omega" on node n-1, and "mid" on the middle node, all with
// uniform prestige.
func testGraph(t testing.TB, n int) (*graph.Graph, *index.Index) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNodes("row", n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	ix.AddText(0, "alpha")
	ix.AddText(graph.NodeID(n/2), "mid")
	ix.AddText(graph.NodeID(n-1), "omega")
	ix.Freeze(g)
	return g, ix
}

func TestNewValidation(t *testing.T) {
	g, ix := testGraph(t, 4)
	if _, err := New(nil, ix, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, nil, Options{}); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := New(g, ix, Options{Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := New(g, ix, Options{DefaultTimeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Fatalf("defaulted workers = %d", e.Workers())
	}
}

func TestSearchBasic(t *testing.T) {
	g, ix := testGraph(t, 8)
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(context.Background(), Query{
		Terms: []string{"Alpha", "MID."}, // normalization is the engine's job
		Algo:  core.AlgoBidirectional,
		Opts:  core.Options{K: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if _, err := e.Search(nil, Query{Terms: []string{"..."}, Algo: core.AlgoBidirectional}); err == nil {
		t.Fatal("keyword-free query accepted")
	}
	if _, err := e.Search(nil, Query{Terms: []string{"alpha"}, Algo: core.Algo("nope")}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNear(t *testing.T) {
	g, ix := testGraph(t, 8)
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := e.Near(context.Background(), []string{"alpha", "mid"}, core.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || stats.NodesExplored == 0 {
		t.Fatalf("near query empty: %v %+v", res, stats)
	}
}

func TestCacheHit(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoSIBackward, Opts: core.Options{K: 2}}
	first, err := e.Search(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	// Same query with differently-cased terms and equivalent (defaulted)
	// options must hit the same entry.
	again, err := e.Search(nil, Query{Terms: []string{"ALPHA", "Omega"}, Algo: core.AlgoSIBackward, Opts: core.Options{K: 2, Mu: core.DefaultMu}})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("second search did not return the cached result")
	}
	hits, misses := e.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheDisabledAndUncacheable(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional}
	r1, _ := e.Search(nil, q)
	r2, _ := e.Search(nil, q)
	if r1 == r2 {
		t.Fatal("cache disabled but result was shared")
	}
	if h, m := e.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", h, m)
	}

	e2, err := New(g, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Queries with callback options must bypass the cache.
	qf := Query{
		Terms: []string{"alpha", "omega"},
		Algo:  core.AlgoBidirectional,
		Opts:  core.Options{EdgeFilter: func(graph.EdgeType, bool) bool { return true }},
	}
	if _, err := e2.Search(nil, qf); err != nil {
		t.Fatal(err)
	}
	if e2.CacheLen() != 0 {
		t.Fatal("callback query was cached")
	}
}

func TestCacheEviction(t *testing.T) {
	g, ix := testGraph(t, 16)
	e, err := New(g, ix, Options{CacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional},
		{Terms: []string{"alpha", "mid"}, Algo: core.AlgoBidirectional},
		{Terms: []string{"mid", "omega"}, Algo: core.AlgoBidirectional},
	}
	for _, q := range queries {
		if _, err := e.Search(nil, q); err != nil {
			t.Fatal(err)
		}
	}
	if e.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2", e.CacheLen())
	}
	// The oldest entry was evicted: re-running it is a miss.
	if _, err := e.Search(nil, queries[0]); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 4 {
		t.Fatalf("cache stats hits=%d misses=%d, want 0/4", hits, misses)
	}
}

func TestTruncatedResultNotCached(t *testing.T) {
	// The full search on this graph takes hundreds of milliseconds; the 5ms
	// engine deadline fires mid-search (it is long enough that the idle
	// pool's slot wait never consumes it, so Search cannot fail outright).
	g, ix := testGraph(t, 8192)
	e, err := New(g, ix, Options{DefaultTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional, Opts: core.Options{DMax: 8192}}
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatal("5ms deadline did not truncate the search")
	}
	if e.CacheLen() != 0 {
		t.Fatal("truncated result was cached")
	}
}

func TestExpiredDeadlineFailsFastAndIsNotCached(t *testing.T) {
	// A deadline that is effectively already expired covers queue time too:
	// Search either fails with DeadlineExceeded while waiting for a slot or
	// returns a truncated partial result — never a cached full answer.
	g, ix := testGraph(t, 64)
	e, err := New(g, ix, Options{DefaultTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional}
	start := time.Now()
	res, err := e.Search(context.Background(), q)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("expired deadline took %v", elapsed)
	}
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected error %v", err)
		}
	} else if !res.Stats.Truncated {
		t.Fatal("expired deadline returned a full result")
	}
	if e.CacheLen() != 0 {
		t.Fatal("expired-deadline result was cached")
	}
}

func TestPoolBlocksAndRespectsContext(t *testing.T) {
	g, ix := testGraph(t, 64)
	e, err := New(g, ix, Options{Workers: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single worker slot with a search whose edge filter blocks
	// until released.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blockingQ := Query{
		Terms: []string{"alpha", "omega"},
		Algo:  core.AlgoSIBackward,
		Opts: core.Options{EdgeFilter: func(graph.EdgeType, bool) bool {
			once.Do(func() { close(entered); <-release })
			return true
		}},
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Search(context.Background(), blockingQ)
		done <- err
	}()
	<-entered

	// A second search cannot get a slot; cancelling its context must fail
	// it with ctx.Err() while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := e.Search(ctx, Query{Terms: []string{"alpha", "mid"}, Algo: core.AlgoSIBackward})
		waitErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the slot wait
	cancel()
	if err := <-waitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting search returned %v, want context.Canceled", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocking search failed: %v", err)
	}
}

func TestSearchBatch(t *testing.T) {
	g, ix := testGraph(t, 32)
	e, err := New(g, ix, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	deep := core.Options{DMax: 64} // the chain is longer than the default depth cutoff
	qs := []Query{
		{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional, Opts: deep},
		{Terms: []string{"..."}, Algo: core.AlgoBidirectional}, // no keywords: fails alone
		{Terms: []string{"alpha", "mid"}, Algo: core.AlgoSIBackward, Opts: deep},
		{Terms: []string{"mid", "omega"}, Algo: core.AlgoMIBackward, Opts: deep},
		{Terms: []string{"alpha", "omega"}, Algo: core.AlgoBidirectional, Opts: deep}, // duplicate: cache hit
	}
	results, errs := e.SearchBatch(context.Background(), qs)
	if len(results) != len(qs) || len(errs) != len(qs) {
		t.Fatalf("batch sizes %d/%d", len(results), len(errs))
	}
	for i, r := range results {
		if i == 1 {
			if errs[i] == nil {
				t.Fatal("keyword-free batch entry did not fail")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if r == nil || len(r.Answers) == 0 {
			t.Fatalf("query %d: no answers", i)
		}
	}
	// The in-batch duplicate (query 4) may or may not hit the cache — its
	// dispatcher can reach the lookup while query 0 is still in flight
	// (query 1 fails instantly, freeing its dispatcher early), which is a
	// legitimate miss. What IS guaranteed: after the batch completes, the
	// result is cached, so a repeat query must share it.
	again, againErrs := e.SearchBatch(context.Background(), qs[:1])
	if againErrs[0] != nil {
		t.Fatalf("repeat query: %v", againErrs[0])
	}
	if again[0] != results[0] {
		t.Fatal("repeat query did not share the cached result")
	}

	// Empty batch is a no-op.
	r0, e0 := e.SearchBatch(nil, nil)
	if len(r0) != 0 || len(e0) != 0 {
		t.Fatal("empty batch returned entries")
	}
}

// TestWorkersUsable pins the grant clamp: no slots for algorithms that
// ignore Workers, at most the iterator count for MI-Backward, none for
// Bidirectional on a hub-free graph, and never more than core.MaxWorkers
// — the pool must not reserve slots a search cannot employ.
func TestWorkersUsable(t *testing.T) {
	kw2 := [][]graph.NodeID{{1}, {2}} // 2 MI iterators
	hub := core.BidirShardMinDegree()
	cases := []struct {
		algo      core.Algo
		requested int
		kw        [][]graph.NodeID
		maxDeg    int
		want      int
	}{
		{core.AlgoSIBackward, 8, kw2, hub, 0},
		{core.AlgoMIBackward, 8, kw2, hub, 2},
		{core.AlgoMIBackward, 1, kw2, hub, 1},
		{core.AlgoBidirectional, 8, kw2, hub, 8},
		{core.AlgoBidirectional, 8, kw2, hub - 1, 0},
		{core.AlgoBidirectional, core.MaxWorkers + 100, kw2, hub, core.MaxWorkers},
		{core.AlgoMIBackward, 0, kw2, hub, 0},
		{core.AlgoMIBackward, -3, kw2, hub, 0},
		{core.Algo("bogus"), 8, kw2, hub, 0},
	}
	for _, tc := range cases {
		if got := workersUsable(tc.algo, tc.requested, tc.kw, func() int { return tc.maxDeg }); got != tc.want {
			t.Errorf("workersUsable(%s, %d, maxDeg %d) = %d, want %d", tc.algo, tc.requested, tc.maxDeg, got, tc.want)
		}
	}
}
