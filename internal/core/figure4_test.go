package core

import (
	"testing"

	"banks/internal/graph"
)

// figure4Graph reconstructs the worked example of §4.4 (Figure 4): the
// query {Database, James, John} on a bibliography graph where "Database"
// matches 100 papers, "James" and "John" match single authors, James wrote
// only the target paper, and John co-wrote it along with 48 other papers
// (large fan-in on a tiny origin).
func figure4Graph(t testing.TB) (g *graph.Graph, kw [][]graph.NodeID, target graph.NodeID) {
	b := graph.NewBuilder()

	papers := make([]graph.NodeID, 100)
	for i := range papers {
		papers[i] = b.AddNode("paper")
	}
	target = papers[99] // the "Database" paper co-authored by James and John
	james := b.AddNode("author")
	john := b.AddNode("author")

	addWrites := func(author, paper graph.NodeID) {
		w := b.AddNode("writes")
		if err := b.AddEdge(w, author, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(w, paper, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	addWrites(james, target)
	addWrites(john, target)
	for i := 0; i < 48; i++ {
		addWrites(john, papers[i])
	}

	g = b.Build()
	p := make([]float64, g.NumNodes())
	for i := range p {
		p[i] = 1 // the example assumes unit prestige
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	kw = [][]graph.NodeID{papers, {james}, {john}}
	return g, kw, target
}

// TestFigure4Example verifies the paper's headline claim on its own worked
// example: Bidirectional search generates the target answer after
// exploring a handful of nodes, while Backward search must wade through
// the large "Database" origin set first.
func TestFigure4Example(t *testing.T) {
	g, kw, target := figure4Graph(t)

	findTarget := func(res *Result) *Answer {
		for _, a := range res.Answers {
			for _, u := range a.Nodes {
				if u == target {
					return a
				}
			}
		}
		return nil
	}

	bidir, err := Bidirectional(nil, g, kw, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	si, err := SIBackward(nil, g, kw, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := MIBackward(nil, g, kw, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	aBidir := findTarget(bidir)
	if aBidir == nil {
		t.Fatalf("bidirectional did not find the target answer: %v", bidir.Answers)
	}
	if findTarget(si) == nil {
		t.Fatalf("si-backward did not find the target answer: %v", si.Answers)
	}
	if findTarget(mi) == nil {
		t.Fatalf("mi-backward did not find the target answer: %v", mi.Answers)
	}

	// §4.4: "Bidirectional search would explore only 4 nodes ... before
	// generating the result rooted at 100", versus at least 151 for
	// Backward search. Our accounting differs in small constants (seeds
	// are popped too), so assert the orders of magnitude.
	if aBidir.ExploredAtGen > 30 {
		t.Errorf("bidirectional explored %d nodes before generating the target; want ≤ 30",
			aBidir.ExploredAtGen)
	}
	aSI := findTarget(si)
	if aSI.ExploredAtGen <= 2*aBidir.ExploredAtGen {
		t.Errorf("si-backward explored %d nodes at generation vs bidirectional %d; expected a large gap",
			aSI.ExploredAtGen, aBidir.ExploredAtGen)
	}
	aMI := findTarget(mi)
	if aMI.ExploredAtGen < 100 {
		t.Errorf("mi-backward explored only %d nodes before the target; the example predicts ≥ ~150",
			aMI.ExploredAtGen)
	}
}

// TestFigure4AnswerShape checks the generated answer is the expected tree:
// the target paper with paths to James and John through writes nodes.
func TestFigure4AnswerShape(t *testing.T) {
	g, kw, target := figure4Graph(t)
	res, err := Bidirectional(nil, g, kw, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	best := res.Answers[0]
	has := map[graph.NodeID]bool{}
	for _, u := range best.Nodes {
		has[u] = true
	}
	if !has[target] {
		t.Fatalf("best answer does not contain the target paper: %v", best)
	}
	james, john := kw[1][0], kw[2][0]
	if !has[james] || !has[john] {
		t.Fatalf("best answer misses an author: %v", best)
	}
	if best.Size() != 5 {
		t.Fatalf("expected the 5-node tree paper+2×writes+2×authors, got %v", best)
	}
	verifyAnswer(t, g, kw, best, Options{K: 3}.withDefaults())
}

func BenchmarkFigure4(b *testing.B) {
	g, kw, _ := figure4Graph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bidirectional(nil, g, kw, Options{K: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
