package core

import (
	"context"
	"math"
	"testing"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// starGraph builds one center with n spokes pointing at it (center has
// fan-in n) and one extra chain center→tail used to observe spreading.
func starGraph(t *testing.T, n int) (*graph.Graph, graph.NodeID, []graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	center := b.AddNode("t")
	spokes := make([]graph.NodeID, n)
	for i := range spokes {
		spokes[i] = b.AddNode("t")
		if err := b.AddEdge(spokes[i], center, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	p := make([]float64, g.NumNodes())
	for i := range p {
		p[i] = 1
	}
	_ = g.SetPrestige(p)
	return g, center, spokes
}

// TestActivationSeedFormula verifies a_{u,i} = prestige(u)/|Sᵢ| (§4.3 eq 1)
// through its observable effect: a keyword with a large origin set gets
// proportionally lower per-node priority, so its seeds are expanded after
// the small-origin keyword's seeds.
func TestActivationSeedFormula(t *testing.T) {
	// Two independent stars; keyword A matches 1 node, keyword B matches
	// 40 nodes. With budget for only a few pops, the A seed and its
	// surroundings must be expanded first.
	b := graph.NewBuilder()
	aSeed := b.AddNode("t")
	aNbr := b.AddNode("t")
	_ = b.AddEdge(aNbr, aSeed, 1, 0)
	bSeeds := make([]graph.NodeID, 40)
	for i := range bSeeds {
		bSeeds[i] = b.AddNode("t")
	}
	hub := b.AddNode("t")
	for _, s := range bSeeds {
		_ = b.AddEdge(hub, s, 1, 0)
	}
	g := b.Build()
	p := make([]float64, g.NumNodes())
	for i := range p {
		p[i] = 1
	}
	_ = g.SetPrestige(p)

	res, err := Bidirectional(nil, g, [][]graph.NodeID{{aSeed}, bSeeds}, Options{K: 1, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	// No answer exists within 3 pops (components are disconnected), but
	// the exploration order is observable through the stats: the highest-
	// activation node is aSeed (activation 1 vs 1/40 for B seeds).
	if res.Stats.NodesExplored == 0 {
		t.Fatal("no exploration")
	}
	if len(res.Answers) != 0 {
		t.Fatal("disconnected keywords produced an answer")
	}
}

// TestActivationSpreadArithmetic verifies the §4.3 spreading formula
// directly: a node spreads the fraction µ of its activation to its
// in-neighbours, divided in inverse proportion to the in-edge weights.
func TestActivationSpreadArithmetic(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode("t")
	bb := b.AddNode("t")
	c := b.AddNode("t")
	_ = b.AddEdge(a, c, 1, 0) // in-edge of c with weight 1
	_ = b.AddEdge(bb, c, 3, 0)
	g := b.Build()
	_ = g.SetPrestige([]float64{1, 1, 1})

	kw := [][]graph.NodeID{{c}}
	opts := Options{K: 1}.withDefaults()
	sc := newSearchContext(context.Background(), g, kw, opts)
	bs := &bidirSearch{searchContext: sc, qin: newTestHeapMax(), qout: newTestHeapMax()}
	bs.seed()
	v, _, _ := bs.qin.Pop()
	if v != c {
		t.Fatalf("seed pop = %d, want %d", v, c)
	}
	bs.expandIncoming(c)

	// invSumIn(c) = 1/1 + 1/3 = 4/3. With µ=0.5 and seed activation 1:
	// a receives 0.5·(1/1)/(4/3) = 0.375; bb receives 0.5·(1/3)/(4/3) = 0.125.
	sa, _ := sc.peekState(a)
	sb, _ := sc.peekState(bb)
	if math.Abs(sa.act[0]-0.375) > 1e-12 {
		t.Fatalf("act(a) = %v, want 0.375", sa.act[0])
	}
	if math.Abs(sb.act[0]-0.125) > 1e-12 {
		t.Fatalf("act(bb) = %v, want 0.125", sb.act[0])
	}
	// The less bushy in-neighbour holds the higher frontier priority.
	top, prio, _ := bs.qin.Peek()
	if top != a || math.Abs(prio-0.375) > 1e-12 {
		t.Fatalf("frontier top = (%d, %v), want a with 0.375", top, prio)
	}
}

func TestActivationSumMode(t *testing.T) {
	// With sum-combination, a node receiving activation from two keywords
	// through many paths ranks higher; the search must still terminate and
	// produce valid answers.
	g, kw := grayGraph(t)
	res, err := Bidirectional(nil, g, kw, Options{K: 5, ActivationSum: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers in ActivationSum mode")
	}
	for _, a := range res.Answers {
		verifyAnswer(t, g, kw, a, Options{K: 5}.withDefaults())
	}
}

func TestEdgePriorityBiasesOrder(t *testing.T) {
	// Two equal-cost routes distinguished by edge type; EdgePriority
	// boosts one, so its side receives more activation.
	build := func(boost graph.EdgeType) (actR1, actR2 float64) {
		b := graph.NewBuilder()
		k1 := b.AddNode("t")
		r1 := b.AddNode("t")
		r2 := b.AddNode("t")
		_ = b.AddEdge(r1, k1, 1, 1)
		_ = b.AddEdge(r2, k1, 1, 2)
		g := b.Build()
		_ = g.SetPrestige([]float64{1, 1, 1})

		opts := Options{
			K: 1,
			EdgePriority: func(t graph.EdgeType, forward bool) float64 {
				if t == boost {
					return 10
				}
				return 1
			},
		}.withDefaults()
		sc := newSearchContext(context.Background(), g, [][]graph.NodeID{{k1}}, opts)
		bs := &bidirSearch{searchContext: sc, qin: newTestHeapMax(), qout: newTestHeapMax()}
		bs.seed()
		bs.qin.Pop()
		bs.expandIncoming(k1)
		s1, _ := sc.peekState(r1)
		s2, _ := sc.peekState(r2)
		return s1.act[0], s2.act[0]
	}
	a1, a2 := build(2)
	if a2 <= a1 {
		t.Fatalf("boosting type 2 did not raise r2's activation: %v vs %v", a2, a1)
	}
	b1, b2 := build(1)
	if b1 <= b2 {
		t.Fatalf("boosting type 1 did not raise r1's activation: %v vs %v", b1, b2)
	}
}

func TestStrictBoundOrdersOutput(t *testing.T) {
	g, kw := grayGraph(t)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 10, StrictBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answers in strict mode", name)
		}
		for i := 1; i < len(res.Answers); i++ {
			if res.Answers[i].Score > res.Answers[i-1].Score+1e-12 {
				t.Fatalf("%s: strict mode output out of order: %v then %v",
					name, res.Answers[i-1].Score, res.Answers[i].Score)
			}
		}
		for _, a := range res.Answers {
			verifyAnswer(t, g, kw, a, Options{K: 10}.withDefaults())
		}
	}
}

func TestAnswerCounterSnapshots(t *testing.T) {
	g, kw, _ := figure4Graph(t)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Answers {
			if a.ExploredAtGen > a.ExploredAtOut {
				t.Fatalf("%s: explored at gen %d > at out %d", name, a.ExploredAtGen, a.ExploredAtOut)
			}
			if a.GeneratedAt > a.OutputAt {
				t.Fatalf("%s: generated after output: %v > %v", name, a.GeneratedAt, a.OutputAt)
			}
			if a.TouchedAtGen > a.TouchedAtOut {
				t.Fatalf("%s: touched at gen %d > at out %d", name, a.TouchedAtGen, a.TouchedAtOut)
			}
		}
		if res.Stats.LastOutput < res.Stats.LastGenerated {
			t.Fatalf("%s: LastOutput before LastGenerated", name)
		}
	}
}

func TestHubBackwardSpreadDilution(t *testing.T) {
	// Directly exercise the Figure 4 arithmetic: John's 48 writes nodes
	// each receive ≈ activation/48, which must be less than what James's
	// single writes node receives.
	g, kw, _ := figure4Graph(t)
	res, err := Bidirectional(nil, g, kw, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answer")
	}
	// The first generated answer must already be the target tree: found
	// after single-digit explorations (§4.4 predicts 4).
	if res.Answers[0].ExploredAtGen > 30 {
		t.Fatalf("first answer generated only after %d explorations", res.Answers[0].ExploredAtGen)
	}
}

func TestSixteenKeywords(t *testing.T) {
	// MaxKeywords boundary: a star where the center is covered by paths
	// to 16 distinct keyword spokes.
	g, center, spokes := starGraph(t, 16)
	kw := make([][]graph.NodeID, 16)
	for i := range kw {
		kw[i] = []graph.NodeID{spokes[i]}
	}
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Answers) != 1 || res.Answers[0].Root != center {
			t.Fatalf("%s: expected star answer rooted at %d, got %v", name, center, res.Answers)
		}
		if res.Answers[0].Size() != 17 {
			t.Fatalf("%s: star answer has %d nodes", name, res.Answers[0].Size())
		}
	}
}

func TestScoreMonotoneInEdgeScore(t *testing.T) {
	if overallScore(1, 2, 0.2) <= overallScore(3, 2, 0.2) {
		t.Fatal("lower edge score must give higher relevance")
	}
	if overallScore(1, 3, 0.2) <= overallScore(1, 2, 0.2) {
		t.Fatal("higher prestige must give higher relevance")
	}
	if overallScore(1, 0, 0.2) != 0 {
		t.Fatal("non-positive prestige should zero the score")
	}
	if !math.IsInf(1/overallScore(0, 1, 0), 1) == false {
		_ = math.Inf // keep math import honest
	}
	if overallScore(0, 1, 0) != 1 {
		t.Fatalf("zero-edge unit-prestige score = %v, want 1", overallScore(0, 1, 0))
	}
}

// newTestHeapMax builds the max-heap used by the manual bidirSearch
// fixtures above.
func newTestHeapMax() *pqueue.Heap[graph.NodeID] { return pqueue.NewMax[graph.NodeID]() }
