package core

// Differential harness for the streaming seam: over the random-graph
// corpus of the parallelism harness, for every algorithm, option shape
// and worker count, the sequence delivered through Options.Emit must be
// bit-identical — answers, scores, order, per-answer counters — to the
// batch Result.Answers of the same search, including truncated prefixes
// under deterministic mid-stream cancellation.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"banks/internal/graph"
)

// streamWorkerCounts is the worker sweep of the stream harness: serial,
// the full parallel machinery without speedup, and a genuinely parallel
// schedule.
var streamWorkerCounts = []int{0, 1, 4}

// collectStream runs a search with an Emit collector installed and
// returns the emissions alongside the batch result of the same run.
func collectStream(t *testing.T, ctx context.Context, g *graph.Graph, algo Algo, kw [][]graph.NodeID, opts Options) ([]EmittedAnswer, *Result) {
	t.Helper()
	var got []EmittedAnswer
	opts.Emit = func(ev EmittedAnswer) { got = append(got, ev) }
	res, err := Search(ctx, g, algo, kw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

// checkStreamMatchesBatch asserts the emission invariants against the
// result of the same run (pointer identity, rank sequence, timestamps)
// and the bit-identity of the emitted answers against an independent
// batch run's answers.
func checkStreamMatchesBatch(t *testing.T, label string, got []EmittedAnswer, own, batch *Result) {
	t.Helper()
	if len(got) != len(own.Answers) {
		t.Fatalf("%s: %d emissions for %d answers", label, len(got), len(own.Answers))
	}
	for i, ev := range got {
		if ev.Answer != own.Answers[i] {
			t.Fatalf("%s: emission %d is not the result answer (same run, same object)", label, i)
		}
		if ev.Rank != i+1 {
			t.Fatalf("%s: emission %d has rank %d", label, i, ev.Rank)
		}
		if ev.OutputAt != ev.Answer.OutputAt {
			t.Fatalf("%s: emission %d OutputAt %v != answer OutputAt %v", label, i, ev.OutputAt, ev.Answer.OutputAt)
		}
		if ev.Generated <= 0 || ev.Generated > own.Stats.AnswersGenerated {
			t.Fatalf("%s: emission %d Generated=%d outside (0, %d]", label, i, ev.Generated, own.Stats.AnswersGenerated)
		}
	}
	// Bit-identity against the independent batch run: the full diff
	// signature covers answers, float bits and deterministic counters.
	streamed := &Result{Answers: make([]*Answer, len(got)), Stats: own.Stats}
	for i, ev := range got {
		streamed.Answers[i] = ev.Answer
	}
	if want, have := diffSignature(batch), diffSignature(streamed); want != have {
		t.Fatalf("%s: streamed sequence diverged from batch:\n--- batch ---\n%s--- streamed ---\n%s", label, want, have)
	}
}

// TestStreamMatchesBatch is the acceptance property of the streaming
// subsystem: for every graph/algorithm/option/worker case, the collected
// stream equals the batch answers bit-for-bit.
func TestStreamMatchesBatch(t *testing.T) {
	lowerShardThreshold(t)
	numGraphs := 30
	if testing.Short() {
		numGraphs = 8
	}
	for gi := 0; gi < numGraphs; gi++ {
		g, kw := buildRandomGraph(t, randomGraphSpec{seed: int64(5000 + gi), hub: gi%2 == 0})
		for _, algo := range Algos() {
			for vi, opts := range diffOptVariants() {
				batch, err := Search(nil, g, algo, kw, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range streamWorkerCounts {
					so := opts
					so.Workers = w
					got, own := collectStream(t, nil, g, algo, kw, so)
					checkStreamMatchesBatch(t,
						fmt.Sprintf("graph %d %s variant %d workers %d", gi, algo, vi, w),
						got, own, batch)
				}
			}
		}
	}
}

// TestStreamCancellationPrefix proves the truncated-prefix contract: with
// a deterministic cancellation point, the streamed sequence equals the
// truncated batch result of an identically-cancelled run — the stream is
// exactly the answers a batch caller would have received, delivered
// early.
func TestStreamCancellationPrefix(t *testing.T) {
	lowerShardThreshold(t)
	for gi := 0; gi < 4; gi++ {
		g, kw := buildCancellationGraph(t, int64(11000+gi))
		for _, algo := range Algos() {
			truncatedOnce := false
			for _, limit := range []int64{1, 2, 4} {
				batch, err := Search(&countingCtx{limit: limit}, g, algo, kw, Options{K: 10})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range streamWorkerCounts {
					got, own := collectStream(t, &countingCtx{limit: limit}, g, algo, kw, Options{K: 10, Workers: w})
					if own.Stats.Truncated != batch.Stats.Truncated {
						t.Fatalf("%s limit %d workers %d: Truncated=%v, batch %v",
							algo, limit, w, own.Stats.Truncated, batch.Stats.Truncated)
					}
					checkStreamMatchesBatch(t,
						fmt.Sprintf("graph %d %s limit %d workers %d (cancelled)", gi, algo, limit, w),
						got, own, batch)
				}
				truncatedOnce = truncatedOnce || batch.Stats.Truncated
			}
			// Sanity: the sweep must actually cover the truncated regime.
			if !truncatedOnce {
				t.Fatalf("graph %d %s: no limit in the sweep truncated the search", gi, algo)
			}
		}
	}
}

// TestStreamEmissionTimestampsOrdered pins the §5.2 semantics of the
// seam: emission offsets never decrease along the stream, every answer's
// generation precedes its output, and all offsets lie inside the search
// duration.
func TestStreamEmissionTimestampsOrdered(t *testing.T) {
	g, kw := buildRandomGraph(t, randomGraphSpec{seed: 4242})
	for _, algo := range Algos() {
		got, own := collectStream(t, nil, g, algo, kw, Options{K: 8})
		if len(got) == 0 {
			t.Fatalf("%s: no emissions", algo)
		}
		var prev time.Duration
		for i, ev := range got {
			if ev.OutputAt < prev {
				t.Fatalf("%s: emission %d OutputAt %v before previous %v", algo, i, ev.OutputAt, prev)
			}
			prev = ev.OutputAt
			if ev.Answer.GeneratedAt > ev.OutputAt {
				t.Fatalf("%s: emission %d generated at %v after output at %v", algo, i, ev.Answer.GeneratedAt, ev.OutputAt)
			}
			if ev.OutputAt > own.Stats.Duration {
				t.Fatalf("%s: emission %d output at %v beyond duration %v", algo, i, ev.OutputAt, own.Stats.Duration)
			}
		}
	}
}

// TestNearEmitMatchesResult pins the Near seam: the emitted sequence is
// exactly the returned ranked slice.
func TestNearEmitMatchesResult(t *testing.T) {
	for gi := 0; gi < 6; gi++ {
		g, kw := buildRandomGraph(t, randomGraphSpec{seed: int64(13000 + gi)})
		var got []EmittedNear
		opts := Options{K: 8, EmitNear: func(ev EmittedNear) { got = append(got, ev) }}
		res, stats, err := Near(nil, g, kw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(res) {
			t.Fatalf("graph %d: %d emissions for %d results", gi, len(got), len(res))
		}
		for i, ev := range got {
			if ev.Result != res[i] {
				t.Fatalf("graph %d: emission %d = %+v, result %+v", gi, i, ev.Result, res[i])
			}
			if ev.Rank != i+1 {
				t.Fatalf("graph %d: emission %d has rank %d", gi, i, ev.Rank)
			}
			if ev.OutputAt > stats.Duration {
				t.Fatalf("graph %d: emission %d at %v beyond duration %v", gi, i, ev.OutputAt, stats.Duration)
			}
		}
	}
}
