package core

import (
	"testing"
	"time"

	"banks/internal/graph"
)

func mkAnswer(root graph.NodeID, score float64, edges ...TreeEdge) *Answer {
	nodes := []graph.NodeID{root}
	for _, e := range edges {
		nodes = append(nodes, e.To)
	}
	return &Answer{Root: root, Nodes: nodes, Edges: edges, Score: score}
}

func TestOutputHeapOrdersByScore(t *testing.T) {
	stats := &Stats{}
	o := newOutputHeap(10, false, time.Now(), stats, nil)
	o.add(mkAnswer(1, 0.3, TreeEdge{From: 1, To: 2}))
	o.add(mkAnswer(3, 0.9, TreeEdge{From: 3, To: 4}))
	o.add(mkAnswer(5, 0.6, TreeEdge{From: 5, To: 6}))
	o.flush()
	res := o.results()
	if len(res) != 3 || res[0].Score != 0.9 || res[1].Score != 0.6 || res[2].Score != 0.3 {
		t.Fatalf("flush order wrong: %v", res)
	}
	if stats.AnswersGenerated != 3 {
		t.Fatalf("AnswersGenerated = %d", stats.AnswersGenerated)
	}
}

func TestOutputHeapDrainRespectsBound(t *testing.T) {
	o := newOutputHeap(10, false, time.Now(), &Stats{}, nil)
	o.add(mkAnswer(1, 0.3, TreeEdge{From: 1, To: 2}))
	o.add(mkAnswer(3, 0.9, TreeEdge{From: 3, To: 4}))
	if o.drain(0.5, 0) {
		t.Fatal("drain reported full prematurely")
	}
	if len(o.results()) != 1 || o.results()[0].Score != 0.9 {
		t.Fatalf("drain(0.5) released %v", o.results())
	}
	o.drain(0.0, 0)
	if len(o.results()) != 2 {
		t.Fatalf("drain(0) should release everything: %v", o.results())
	}
}

func TestOutputHeapRotationDedup(t *testing.T) {
	// Same undirected tree {1-2}, two rootings with different scores: the
	// better one must win regardless of arrival order.
	o := newOutputHeap(10, false, time.Now(), &Stats{}, nil)
	worse := mkAnswer(1, 0.4, TreeEdge{From: 1, To: 2})
	better := mkAnswer(2, 0.8, TreeEdge{From: 2, To: 1})
	if !o.add(worse) {
		t.Fatal("first add rejected")
	}
	if !o.add(better) {
		t.Fatal("better rotation rejected")
	}
	// Re-adding a worse duplicate must be dropped.
	if o.add(mkAnswer(1, 0.2, TreeEdge{From: 1, To: 2})) {
		t.Fatal("worse duplicate accepted")
	}
	o.flush()
	res := o.results()
	if len(res) != 1 || res[0].Score != 0.8 {
		t.Fatalf("rotation dedup failed: %v", res)
	}
}

func TestOutputHeapRootReplacement(t *testing.T) {
	// Improved tree for the same root replaces the buffered one.
	o := newOutputHeap(10, false, time.Now(), &Stats{}, nil)
	o.add(mkAnswer(1, 0.4, TreeEdge{From: 1, To: 2}))
	o.add(mkAnswer(1, 0.7, TreeEdge{From: 1, To: 3}))
	o.flush()
	res := o.results()
	if len(res) != 1 || res[0].Score != 0.7 {
		t.Fatalf("root replacement failed: %v", res)
	}
}

func TestOutputHeapEmittedSuppression(t *testing.T) {
	o := newOutputHeap(10, false, time.Now(), &Stats{}, nil)
	o.add(mkAnswer(1, 0.4, TreeEdge{From: 1, To: 2}))
	o.drain(0.0, 0)
	// The same tree cannot be emitted twice, even as a rotation or an
	// improvement, once released.
	if o.add(mkAnswer(2, 0.9, TreeEdge{From: 2, To: 1})) {
		t.Fatal("released tree re-accepted via rotation")
	}
	if o.add(mkAnswer(1, 0.9, TreeEdge{From: 1, To: 3})) {
		t.Fatal("released root re-accepted")
	}
	if len(o.results()) != 1 {
		t.Fatalf("results = %v", o.results())
	}
}

func TestOutputHeapKZero(t *testing.T) {
	o := newOutputHeap(0, false, time.Now(), &Stats{}, nil)
	if o.add(mkAnswer(1, 0.4, TreeEdge{From: 1, To: 2})) {
		t.Fatal("K=0 accepted an answer")
	}
	if !o.full() {
		t.Fatal("K=0 heap should always be full")
	}
}

func TestOutputHeapKLimit(t *testing.T) {
	o := newOutputHeap(2, false, time.Now(), &Stats{}, nil)
	for i := 0; i < 5; i++ {
		o.add(mkAnswer(graph.NodeID(i*2), float64(i)/10+0.1,
			TreeEdge{From: graph.NodeID(i * 2), To: graph.NodeID(i*2 + 1)}))
	}
	o.flush()
	if len(o.results()) != 2 {
		t.Fatalf("K=2 released %d answers", len(o.results()))
	}
}

func TestNearBasic(t *testing.T) {
	g, kw := grayGraph(t)
	res, stats, err := Near(nil, g, kw, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("near query returned nothing")
	}
	if stats.NodesExplored == 0 {
		t.Fatal("near query explored nothing")
	}
	// Results sorted by activation.
	for i := 1; i < len(res); i++ {
		if res[i].Activation > res[i-1].Activation {
			t.Fatalf("near results unsorted: %v", res)
		}
	}
	// The writes node W1(4) bridging Gray and a transaction paper should
	// rank at or near the top (activation from both keywords).
	top := map[graph.NodeID]bool{}
	for i := 0; i < len(res) && i < 3; i++ {
		top[res[i].Node] = true
	}
	if !top[4] && !top[0] && !top[2] {
		t.Fatalf("expected the Gray cluster near the top, got %v", res)
	}
}

func TestNearValidation(t *testing.T) {
	g, kw := grayGraph(t)
	if _, _, err := Near(nil, nil, kw, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, _, err := Near(nil, g, nil, Options{}); err == nil {
		t.Fatal("no keywords accepted")
	}
	// Unmatched keyword → empty result, no error.
	res, _, err := Near(nil, g, [][]graph.NodeID{{0}, nil}, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("unmatched keyword: res=%v err=%v", res, err)
	}
}

func TestEdgeFilterRestrictsSearch(t *testing.T) {
	// Two parallel routes between keyword endpoints, distinguished by edge
	// type; filtering out type 1 must force answers through type-2 edges.
	b := graph.NewBuilder()
	a := b.AddNode("t")
	mid1 := b.AddNode("t")
	mid2 := b.AddNode("t")
	z := b.AddNode("t")
	_ = b.AddEdge(a, mid1, 1, 1)
	_ = b.AddEdge(mid1, z, 1, 1)
	_ = b.AddEdge(a, mid2, 5, 2)
	_ = b.AddEdge(mid2, z, 5, 2)
	g := b.Build()
	_ = g.SetPrestige([]float64{1, 1, 1, 1})
	kw := [][]graph.NodeID{{a}, {z}}

	opts := Options{K: 5, EdgeFilter: func(t graph.EdgeType, forward bool) bool { return t == 2 }}
	for name, algo := range algorithms {
		res, err := algo(g, kw, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answers with edge filter", name)
		}
		for _, ans := range res.Answers {
			for _, e := range ans.Edges {
				if e.Type != 2 {
					t.Fatalf("%s: filtered edge type %d used: %v", name, e.Type, ans)
				}
			}
			for _, u := range ans.Nodes {
				if u == mid1 {
					t.Fatalf("%s: path through filtered route: %v", name, ans)
				}
			}
		}
	}
}
