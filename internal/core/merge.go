package core

import (
	"sort"

	"banks/internal/graph"
)

// MergeTopK merges independently produced answer lists into one global
// top-k, applying the same duplicate discipline as the output heap
// (§4.2.3/§4.6): among answers sharing a tree signature (rotations) or a
// root, only the best-scoring one survives. Survivors are ordered by
// relevance score descending — stably, so answers with bit-equal scores
// keep their arrival order (list order, then emission order within a
// list), exactly like the output heap's own final sort, which orders by
// score alone and leaves ties in emission order — and cut at k.
//
// This is the scatter-gather seam: when the input lists are the per-shard
// results of a component-closed partition (internal/shard), every answer
// tree lives on exactly one shard, so the merge reduces to the
// deterministic global ordering of disjoint result sets. The answers are
// returned by reference, never copied or rescored, so float bits pass
// through untouched.
func MergeTopK(k int, lists ...[]*Answer) []*Answer {
	if k <= 0 {
		return nil
	}
	bySig := make(map[uint64]*Answer)
	byRoot := make(map[graph.NodeID]*Answer)
	var order []*Answer // insertion order, for deterministic iteration
	for _, list := range lists {
		for _, a := range list {
			if a == nil {
				continue
			}
			sig := a.Signature()
			// Mirror outputHeap.add: a challenger must strictly beat every
			// incumbent it collides with; winners evict losers from both
			// maps (first arrival wins ties, keeping the merge stable).
			if prev, ok := bySig[sig]; ok && prev.Score >= a.Score {
				continue
			}
			if prev, ok := byRoot[a.Root]; ok && prev.Score >= a.Score {
				continue
			}
			if prev, ok := bySig[sig]; ok {
				delete(byRoot, prev.Root)
				delete(bySig, sig)
			}
			if prev, ok := byRoot[a.Root]; ok {
				delete(bySig, prev.Signature())
				delete(byRoot, a.Root)
			}
			bySig[sig] = a
			byRoot[a.Root] = a
			order = append(order, a)
		}
	}
	merged := make([]*Answer, 0, len(byRoot))
	for _, a := range order {
		if bySig[a.Signature()] == a && byRoot[a.Root] == a {
			merged = append(merged, a)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return merged[i].Score > merged[j].Score
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
