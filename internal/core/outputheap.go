package core

import (
	"sort"
	"time"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// outputHeap buffers and reorders generated answers (§4.2.3, §4.5).
// Answers are released only when the caller-supplied bound says no better
// answer can still be generated (or at final flush). Two bound modes exist
// (§4.5):
//
//   - strict: an answer is released when its overall score is at least the
//     upper bound on any future answer's score (edge-score bound combined
//     with the maximum node prestige, NRA-style);
//   - heuristic (the paper's default, used in its experiments): an answer
//     is released once its aggregate edge score is below the best possible
//     future edge score h(m₁,…,mₖ); eligible answers are sorted by
//     relevance score before release. This ignores node prestige and may
//     release slightly out of order, which §5.7 shows is harmless in
//     practice.
//
// The heap also performs the paper's duplicate filters: rotations of an
// already-known tree (§4.6) and re-emissions for a root whose buffered
// tree improved keep only the best version.
type outputHeap struct {
	// heap orders buffered answers by release eligibility: overall score
	// (max-heap) in strict mode, edge score (min-heap) in heuristic mode.
	heap      *pqueue.Heap[*Answer]
	heuristic bool

	bySig  map[uint64]*Answer
	byRoot map[graph.NodeID]*Answer
	// emittedSig / emittedRoot suppress re-emission of released trees and
	// roots (an output cannot be retracted).
	emittedSig  map[uint64]float64
	emittedRoot map[graph.NodeID]struct{}

	out   []*Answer
	k     int
	start time.Time
	stats *Stats
	// emit, when non-nil, observes every release as it happens — the
	// streaming seam (Options.Emit). release is the single funnel all
	// output paths (drain, flush, releaseBuilt) pass through, so hooking
	// it here guarantees the streamed sequence equals the batch result.
	emit func(EmittedAnswer)
}

func newOutputHeap(k int, heuristic bool, start time.Time, stats *Stats, emit func(EmittedAnswer)) *outputHeap {
	h := pqueue.NewMax[*Answer]()
	if heuristic {
		h = pqueue.NewMin[*Answer]()
	}
	return &outputHeap{
		heap:        h,
		heuristic:   heuristic,
		bySig:       make(map[uint64]*Answer),
		byRoot:      make(map[graph.NodeID]*Answer),
		emittedSig:  make(map[uint64]float64),
		emittedRoot: make(map[graph.NodeID]struct{}),
		k:           k,
		start:       start,
		stats:       stats,
		emit:        emit,
	}
}

func (o *outputHeap) key(a *Answer) float64 {
	if o.heuristic {
		return a.EdgeScore
	}
	return a.Score
}

// add inserts a generated answer, applying duplicate filtering. It reports
// whether the answer was kept.
func (o *outputHeap) add(a *Answer) bool {
	if o.k <= 0 {
		return false
	}
	if a.GeneratedAt == 0 {
		// Not pre-stamped by a deferred emitter: generated right now.
		a.GeneratedAt = time.Since(o.start)
		a.ExploredAtGen = o.stats.NodesExplored
		a.TouchedAtGen = o.stats.NodesTouched
	}
	if a.Score > o.stats.BestGeneratedScore {
		o.stats.BestGeneratedScore = a.Score
	}
	sig := a.Signature()
	if _, done := o.emittedSig[sig]; done {
		return false
	}
	if _, done := o.emittedRoot[a.Root]; done {
		return false
	}
	if prev, ok := o.bySig[sig]; ok {
		if prev.Score >= a.Score {
			return false
		}
		o.remove(prev)
	}
	if prev, ok := o.byRoot[a.Root]; ok {
		if prev.Score >= a.Score {
			return false
		}
		o.remove(prev)
	}
	o.bySig[sig] = a
	o.byRoot[a.Root] = a
	o.heap.Push(a, o.key(a))
	o.stats.AnswersGenerated++
	return true
}

func (o *outputHeap) remove(a *Answer) {
	o.heap.Remove(a)
	delete(o.bySig, a.Signature())
	delete(o.byRoot, a.Root)
}

// drain releases buffered answers per the active bound mode and returns
// true when k answers have been output.
//
// In strict mode scoreBound is an upper bound on any future answer's
// overall score: every buffered answer scoring at least it is safe to
// release in score order.
//
// In heuristic mode edgeBound is h(m₁,…,mₖ), the least aggregate edge
// score any future answer could have: every buffered answer with a
// smaller edge score is released, sorted by relevance score (§4.5).
func (o *outputHeap) drain(scoreBound, edgeBound float64) bool {
	if o.heuristic {
		var eligible []*Answer
		for len(o.out)+len(eligible) < o.k {
			a, edge, ok := o.heap.Peek()
			if !ok || edge >= edgeBound {
				break
			}
			o.remove(a)
			eligible = append(eligible, a)
		}
		sort.Slice(eligible, func(i, j int) bool { return eligible[i].Score > eligible[j].Score })
		for _, a := range eligible {
			o.release(a)
		}
		return len(o.out) >= o.k
	}
	for len(o.out) < o.k {
		a, score, ok := o.heap.Peek()
		if !ok || score < scoreBound {
			break
		}
		o.remove(a)
		o.release(a)
	}
	return len(o.out) >= o.k
}

// flush releases remaining buffered answers in relevance-score order (used
// when the search frontier is exhausted, at which point no future answer
// exists).
func (o *outputHeap) flush() {
	var rest []*Answer
	for {
		a, _, ok := o.heap.Pop()
		if !ok {
			break
		}
		delete(o.bySig, a.Signature())
		delete(o.byRoot, a.Root)
		rest = append(rest, a)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Score > rest[j].Score })
	for _, a := range rest {
		if len(o.out) >= o.k {
			break
		}
		o.release(a)
	}
}

func (o *outputHeap) release(a *Answer) {
	a.OutputAt = time.Since(o.start)
	a.ExploredAtOut = o.stats.NodesExplored
	a.TouchedAtOut = o.stats.NodesTouched
	o.emittedSig[a.Signature()] = a.Score
	o.emittedRoot[a.Root] = struct{}{}
	o.out = append(o.out, a)
	if a.GeneratedAt > o.stats.LastGenerated {
		o.stats.LastGenerated = a.GeneratedAt
	}
	o.stats.LastOutput = a.OutputAt
	if o.emit != nil {
		o.emit(EmittedAnswer{
			Answer:    a,
			Rank:      len(o.out),
			OutputAt:  a.OutputAt,
			Generated: o.stats.AnswersGenerated,
		})
	}
}

// released reports whether an answer rooted at u was already output.
func (o *outputHeap) released(u graph.NodeID) bool {
	_, done := o.emittedRoot[u]
	return done
}

// releaseBuilt outputs a lazily-built answer directly (candidate mode),
// applying the rotation/root duplicate filters at release time. It reports
// whether the answer was released.
func (o *outputHeap) releaseBuilt(a *Answer) bool {
	if o.k <= 0 || len(o.out) >= o.k {
		return false
	}
	if _, done := o.emittedSig[a.Signature()]; done {
		return false
	}
	if _, done := o.emittedRoot[a.Root]; done {
		return false
	}
	o.stats.AnswersGenerated++
	o.release(a)
	return true
}

// len returns the number of released answers.
func (o *outputHeap) len() int { return len(o.out) }

// results returns the answers in output order.
func (o *outputHeap) results() []*Answer { return o.out }

// full reports whether k answers have been output.
func (o *outputHeap) full() bool { return len(o.out) >= o.k }
