package core

// Differential/property harness for intra-query parallelism: randomized
// graphs, every algorithm, worker counts {1,2,4,8}, and deterministic
// mid-search cancellation — parallel execution must be bit-identical to
// serial in everything except wall-clock fields and Stats.WorkersUsed.
// This is the enforcement behind the Options.Workers contract ("parallel
// execution is bit-identical to serial"): the golden tests pin serial
// output to the pre-parallelism implementation, and this harness pins
// every parallel mode to serial.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"banks/internal/graph"
)

// diffWorkerCounts are the worker counts the harness sweeps. 1 exercises
// the full parallel machinery without parallel speedup; 8 exceeds the
// iterator count of small queries (clamping paths).
var diffWorkerCounts = []int{1, 2, 4, 8}

// randomGraphSpec seeds one property-test case.
type randomGraphSpec struct {
	seed int64
	// hub forces a node whose combined degree exceeds the (lowered) shard
	// threshold so the sharded forward-expansion path runs.
	hub bool
}

// buildRandomGraph generates a random graph with varied fan-out, edge
// types, weights and prestige distributions, plus a random multi-keyword
// query over it. All randomness is drawn from the seeded rng, so each
// spec is fully reproducible.
func buildRandomGraph(t testing.TB, spec randomGraphSpec) (*graph.Graph, [][]graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(spec.seed))
	n := 30 + rng.Intn(120)
	b := graph.NewBuilder()
	tables := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		b.AddNode(tables[rng.Intn(len(tables))])
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		w := 0.25 + rng.Float64()*3
		if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), w, graph.EdgeType(rng.Intn(4))); err != nil {
			t.Fatal(err)
		}
	}
	// Base fan-out: skewed out-degrees (most nodes sparse, some bushy).
	for u := 0; u < n; u++ {
		deg := rng.Intn(3)
		if rng.Intn(8) == 0 {
			deg += 3 + rng.Intn(6)
		}
		for j := 0; j < deg; j++ {
			addEdge(u, rng.Intn(n))
		}
	}
	if spec.hub {
		// One dense hub: enough combined edges to clear the lowered shard
		// threshold several partitions over.
		hub := rng.Intn(n)
		for j := 0; j < 48; j++ {
			if other := rng.Intn(n); other != hub {
				addEdge(hub, other)
			}
		}
	}
	g := b.Build()

	// Prestige: uniform, uniform-random, or power-law-ish, per seed.
	p := make([]float64, g.NumNodes())
	switch rng.Intn(3) {
	case 0:
		for i := range p {
			p[i] = 1
		}
	case 1:
		for i := range p {
			p[i] = 0.05 + rng.Float64()
		}
	default:
		for i := range p {
			p[i] = 0.05 + math.Pow(rng.Float64(), 4)*8
		}
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}

	// Query: 2–4 keywords, 1–4 distinct matching nodes each.
	nk := 2 + rng.Intn(3)
	kw := make([][]graph.NodeID, nk)
	for i := range kw {
		seen := map[graph.NodeID]bool{}
		for len(kw[i]) < 1+rng.Intn(4) {
			u := graph.NodeID(rng.Intn(n))
			if !seen[u] {
				seen[u] = true
				kw[i] = append(kw[i], u)
			}
		}
	}
	return g, kw
}

// diffSignature renders everything deterministic about a result: the full
// answer structure with exact float bits, plus every Stats field that the
// serial/parallel contract covers. Wall-clock fields (Duration,
// GeneratedAt, OutputAt) and WorkersUsed are excluded — they are the only
// fields allowed to differ.
func diffSignature(res *Result) string {
	var sb strings.Builder
	s := res.Stats
	fmt.Fprintf(&sb, "explored=%d touched=%d relaxed=%d generated=%d best=%x budget=%v truncated=%v\n",
		s.NodesExplored, s.NodesTouched, s.EdgesRelaxed, s.AnswersGenerated,
		math.Float64bits(s.BestGeneratedScore), s.BudgetExhausted, s.Truncated)
	for i, a := range res.Answers {
		fmt.Fprintf(&sb, "%d: root=%d score=%x edge=%x node=%x nodes=%v kw=%v explG=%d touchG=%d explO=%d touchO=%d\n",
			i, a.Root, math.Float64bits(a.Score), math.Float64bits(a.EdgeScore), math.Float64bits(a.NodeScore),
			a.Nodes, a.KeywordNodes, a.ExploredAtGen, a.TouchedAtGen, a.ExploredAtOut, a.TouchedAtOut)
		for _, e := range a.Edges {
			fmt.Fprintf(&sb, "   %d->%d w=%x t=%d f=%v\n", e.From, e.To, math.Float64bits(e.Weight), e.Type, e.Forward)
		}
		for _, w := range a.PathWeights {
			fmt.Fprintf(&sb, "   pw=%x\n", math.Float64bits(w))
		}
	}
	return sb.String()
}

// diffOptVariants are the option shapes each random case is swept over.
func diffOptVariants() []Options {
	return []Options{
		{K: 8},
		{K: 8, StrictBound: true},
		{K: 8, ActivationSum: true},
		{K: 8, MaxNodes: 40},
		{K: 8, EdgeFilter: func(t graph.EdgeType, forward bool) bool { return forward || t != 2 }},
	}
}

// lowerShardThreshold drops the bidirectional shard gate so the random
// graphs (which have hubs of ~50–100 combined edges) exercise the sharded
// expansion path, restoring it when the test ends.
func lowerShardThreshold(t testing.TB) {
	t.Helper()
	old := bidirShardMinDegree
	bidirShardMinDegree = 8
	t.Cleanup(func() { bidirShardMinDegree = old })
}

// TestDifferentialParallelMatchesSerial is the acceptance property: on
// ≥ 50 randomized graphs, for every algorithm, option shape and worker
// count, the parallel result is bit-identical to the serial one.
func TestDifferentialParallelMatchesSerial(t *testing.T) {
	lowerShardThreshold(t)
	numGraphs := 60
	if testing.Short() {
		numGraphs = 12
	}
	for gi := 0; gi < numGraphs; gi++ {
		spec := randomGraphSpec{seed: int64(1000 + gi), hub: gi%2 == 0}
		g, kw := buildRandomGraph(t, spec)
		for _, algo := range Algos() {
			for vi, opts := range diffOptVariants() {
				serialRes, err := Search(nil, g, algo, kw, opts)
				if err != nil {
					t.Fatalf("graph %d %s variant %d serial: %v", gi, algo, vi, err)
				}
				want := diffSignature(serialRes)
				if serialRes.Stats.WorkersUsed != 0 {
					t.Fatalf("graph %d %s variant %d: serial run reports WorkersUsed=%d", gi, algo, vi, serialRes.Stats.WorkersUsed)
				}
				for _, w := range diffWorkerCounts {
					po := opts
					po.Workers = w
					parRes, err := Search(nil, g, algo, kw, po)
					if err != nil {
						t.Fatalf("graph %d %s variant %d workers %d: %v", gi, algo, vi, w, err)
					}
					if got := diffSignature(parRes); got != want {
						t.Fatalf("graph %d (seed %d) %s variant %d workers %d diverged:\n--- serial ---\n%s--- parallel ---\n%s",
							gi, spec.seed, algo, vi, w, want, got)
					}
				}
			}
		}
	}
}

// TestDifferentialShallowBatches drives the adaptive-batch path the big
// sweep cannot reach on small graphs: with the speculation budget lowered,
// every query uses the minimum batch size, so batch boundaries, refills
// and worker wakeups occur constantly — and results must still be
// bit-identical.
func TestDifferentialShallowBatches(t *testing.T) {
	oldBudget := miSpecBudget
	miSpecBudget = 1
	t.Cleanup(func() { miSpecBudget = oldBudget })
	for gi := 0; gi < 10; gi++ {
		g, kw := buildRandomGraph(t, randomGraphSpec{seed: int64(3000 + gi), hub: true})
		serialRes, err := MIBackward(nil, g, kw, Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		want := diffSignature(serialRes)
		for _, w := range diffWorkerCounts {
			parRes, err := MIBackward(nil, g, kw, Options{K: 8, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if got := diffSignature(parRes); got != want {
				t.Fatalf("graph %d workers %d diverged with shallow batches:\n--- serial ---\n%s--- parallel ---\n%s",
					gi, w, want, got)
			}
		}
	}
}

// TestDifferentialNearIgnoresWorkers pins the documented fallback: Near
// accepts Workers and returns results identical to serial.
func TestDifferentialNearIgnoresWorkers(t *testing.T) {
	for gi := 0; gi < 10; gi++ {
		g, kw := buildRandomGraph(t, randomGraphSpec{seed: int64(7000 + gi)})
		serialRes, serialStats, err := Near(nil, g, kw, Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range diffWorkerCounts {
			res, stats, err := Near(nil, g, kw, Options{K: 8, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if stats.WorkersUsed != 0 {
				t.Fatalf("near workers %d: WorkersUsed=%d, want 0 (serial fallback)", w, stats.WorkersUsed)
			}
			if len(res) != len(serialRes) {
				t.Fatalf("near workers %d: %d results vs %d serial", w, len(res), len(serialRes))
			}
			for i := range res {
				if res[i] != serialRes[i] {
					t.Fatalf("near workers %d result %d: %+v vs %+v", w, i, res[i], serialRes[i])
				}
			}
			if stats.NodesExplored != serialStats.NodesExplored || stats.NodesTouched != serialStats.NodesTouched {
				t.Fatalf("near workers %d stats diverged", w)
			}
		}
	}
}

// countingCtx is a context whose Err flips to Canceled after a fixed
// number of Err consultations. The search cancellers consult Err at a
// deterministic, data-dependent cadence that is identical in serial and
// parallel mode (only the coordinator ever consults the context), so a
// countingCtx cancels serial and parallel runs at exactly the same merge
// position — which is what makes truncation exactly comparable, where a
// wall-clock deadline would be racy.
type countingCtx struct {
	calls atomic.Int64
	limit int64
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return nil }
func (c *countingCtx) Value(any) any               { return nil }
func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// buildCancellationGraph makes a denser, larger graph so searches run for
// hundreds of expansions — enough to cross several amortized cancellation
// checks before exhausting the frontier.
func buildCancellationGraph(t testing.TB, seed int64) (*graph.Graph, [][]graph.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 400
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("t")
	}
	for u := 0; u < n; u++ {
		for j := 0; j < 2+rng.Intn(4); j++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.5+rng.Float64()*2, graph.EdgeType(rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.1 + rng.Float64()
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	kw := [][]graph.NodeID{
		{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))},
		{graph.NodeID(rng.Intn(n))},
		{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))},
	}
	return g, kw
}

// TestDifferentialCancellation proves the Truncated-prefix contract under
// mid-search cancellation: with a deterministic cancellation point, the
// parallel run reports the same Truncated flag, the same partial top-k
// prefix, and the same counters as the serial run — and shuts its workers
// down cleanly (a leak or deadlock would hang the test).
func TestDifferentialCancellation(t *testing.T) {
	lowerShardThreshold(t)
	for gi := 0; gi < 6; gi++ {
		g, kw := buildCancellationGraph(t, int64(9000+gi))
		for _, algo := range Algos() {
			for _, limit := range []int64{0, 1, 2, 4, 8} {
				serialRes, err := Search(&countingCtx{limit: limit}, g, algo, kw, Options{K: 10})
				if err != nil {
					t.Fatalf("%s limit %d serial: %v", algo, limit, err)
				}
				want := diffSignature(serialRes)
				for _, w := range diffWorkerCounts {
					parRes, err := Search(&countingCtx{limit: limit}, g, algo, kw, Options{K: 10, Workers: w})
					if err != nil {
						t.Fatalf("%s limit %d workers %d: %v", algo, limit, w, err)
					}
					if got := diffSignature(parRes); got != want {
						t.Fatalf("graph %d %s limit %d workers %d diverged under cancellation:\n--- serial ---\n%s--- parallel ---\n%s",
							gi, algo, limit, w, want, got)
					}
				}
			}
			// Sanity: a small limit must actually truncate mid-search and a
			// huge one must not, so the sweep covers both regimes.
			full, err := Search(context.Background(), g, algo, kw, Options{K: 10})
			if err != nil {
				t.Fatal(err)
			}
			cut, err := Search(&countingCtx{limit: 1}, g, algo, kw, Options{K: 10})
			if err != nil {
				t.Fatal(err)
			}
			if !cut.Stats.Truncated {
				t.Fatalf("%s: limit-1 run was not truncated (graph too small for the harness?)", algo)
			}
			if full.Stats.Truncated {
				t.Fatalf("%s: uncancelled run reports Truncated", algo)
			}
		}
	}
}
