package core

import (
	"context"
	"math"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// SIBackward runs single-iterator Backward expanding search (§4.6): all
// per-keyword-node Dijkstra iterators of the original Backward search are
// merged into one backward iterator, prioritized purely by distance from
// the nearest keyword node — no forward iterator and no spreading
// activation. The paper introduces it to separate the effect of merging
// iterators from the other effects of Bidirectional search.
//
// ctx bounds the search exactly as in Bidirectional: on expiry the partial
// top-k accumulated so far is returned with Stats.Truncated set.
//
// Options.Workers is accepted but ignored (Stats.WorkersUsed stays 0):
// the single merged iterator is an inherently sequential fixpoint, so the
// documented fallback is serial execution with results identical to any
// requested worker count.
func SIBackward(ctx context.Context, g graph.View, keywords [][]graph.NodeID, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validateInput(g, keywords); err != nil {
		return nil, err
	}
	sc := newSearchContext(orBackground(ctx), g, keywords, opts)
	if anyEmptyKeyword(keywords) || sc.expired() {
		return sc.finishResult(), nil
	}

	s := &siSearch{
		searchContext: sc,
		qin:           pqueue.NewMin[graph.NodeID](),
	}
	s.seed()
	s.run()
	return sc.finishResult(), nil
}

type siSearch struct {
	*searchContext
	qin    *pqueue.Heap[graph.NodeID]
	attach *pqueue.Heap[graph.NodeID]
}

func (s *siSearch) seed() {
	for _, u := range s.seedNodes() {
		st := s.st(u)
		st.depth = 0
		s.qin.Push(u, s.minDist(st))
		s.stats.NodesTouched++
		s.maybeEmit(u)
	}
}

// minDist is the queue priority: the smallest known distance to any
// keyword.
func (s *siSearch) minDist(st *nodeState) float64 {
	best := math.Inf(1)
	for i := 0; i < s.nk; i++ {
		if st.dist[i] < best {
			best = st.dist[i]
		}
	}
	return best
}

func (s *siSearch) run() {
	const boundEvery = 32
	sinceBound := 0
	for s.qin.Len() > 0 {
		if s.out.full() {
			return
		}
		if s.opts.MaxNodes > 0 && s.stats.NodesExplored >= s.opts.MaxNodes {
			s.stats.BudgetExhausted = true
			break
		}
		if s.cancelled() {
			break
		}
		v, _, _ := s.qin.Pop()
		s.expand(v)
		sinceBound++
		if sinceBound >= boundEvery {
			sinceBound = 0
			score, edge := s.upperBound()
			if s.lazy {
				if s.drainCands(edge, false) {
					return
				}
			} else {
				s.flushEmits()
				if s.out.drain(score, edge) {
					return
				}
			}
		}
	}
	if s.lazy {
		s.drainCands(0, true)
	} else {
		s.flushEmits()
		s.out.flush()
	}
}

// expand pops v and relaxes its incoming combined edges, exactly like the
// Bidirectional incoming iterator but without activation.
func (s *siSearch) expand(v graph.NodeID) {
	s.stats.NodesExplored++
	s.tick()
	sv := s.st(v)
	sv.inXin = true
	s.maybeEmit(v)

	if int(sv.depth) >= s.opts.DMax {
		return
	}
	for _, h := range s.g.Neighbors(v) {
		if !s.allowEdge(h) {
			continue
		}
		u := h.To
		s.stats.EdgesRelaxed++
		su := s.st(u)
		sv.parents = append(sv.parents, parentEdge{node: u, w: h.WIn})
		improved := false
		for i := 0; i < s.nk; i++ {
			if d := h.WIn + sv.dist[i]; d < su.dist[i]-1e-15 {
				su.dist[i] = d
				su.sp[i] = v
				s.noteDist(u, su, i)
				improved = true
			}
		}
		if improved {
			s.maybeEmit(u)
			s.attachPropagate(u)
		}
		if !su.inXin {
			if su.depth < 0 {
				su.depth = sv.depth + 1
			}
			if s.qin.PushIfAbsent(u, s.minDist(su)) {
				s.stats.NodesTouched++
			} else {
				s.qin.Bump(u, s.minDist(su))
			}
		}
	}
}

// attachPropagate propagates distance improvements to explored parents
// (Attach), updating queue priorities as it goes.
func (s *siSearch) attachPropagate(u graph.NodeID) {
	if s.attach == nil {
		s.attach = pqueue.NewMin[graph.NodeID]()
	}
	work := s.attach
	work.Clear()
	work.Push(u, s.distSum(s.st(u)))
	for work.Len() > 0 {
		v, _, _ := work.Pop()
		sv := s.st(v)
		for _, pe := range sv.parents {
			sp, ok := s.peekState(pe.node)
			if !ok {
				continue
			}
			improved := false
			for i := 0; i < s.nk; i++ {
				if d := pe.w + sv.dist[i]; d < sp.dist[i]-1e-15 {
					sp.dist[i] = d
					sp.sp[i] = v
					s.noteDist(pe.node, sp, i)
					improved = true
				}
			}
			if improved {
				s.qin.Bump(pe.node, s.minDist(sp))
				s.maybeEmit(pe.node)
				work.Push(pe.node, s.distSum(sp))
			}
		}
	}
}

// upperBound mirrors the Bidirectional bound (§4.5) over the single
// backward frontier.
func (s *siSearch) upperBound() (score, edge float64) {
	m := make([]float64, s.nk)
	for i := range m {
		m[i] = s.frontierMin(i)
	}
	h := 0.0
	for i := 0; i < s.nk; i++ {
		if math.IsInf(m[i], 1) {
			if s.qin.Len() == 0 {
				return 0, math.Inf(1)
			}
			continue
		}
		h += m[i]
	}
	if s.opts.StrictBound {
		best := math.Inf(1)
		for _, st := range s.state {
			sum := 0.0
			for i := 0; i < s.nk; i++ {
				sum += math.Min(st.dist[i], m[i])
			}
			if sum < best {
				best = sum
			}
		}
		if best < h {
			h = best
		}
	}
	return scoreUpperBound(s.g, h, s.nk, s.opts.Lambda), h
}
