package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"banks/internal/graph"
)

// TreeEdge is one parent→child edge of an answer tree, directed away from
// the root along combined-graph edges.
type TreeEdge struct {
	From, To graph.NodeID
	// Weight is the combined-graph weight of From→To.
	Weight float64
	// Type is the relationship type of the underlying original edge.
	Type graph.EdgeType
	// Forward reports whether From→To follows the original edge direction.
	Forward bool
}

// Answer is one response: a minimal rooted directed tree covering all
// query keywords (§2.2).
type Answer struct {
	Root graph.NodeID
	// Nodes lists all tree nodes; Nodes[0] is the root.
	Nodes []graph.NodeID
	// Edges lists the tree edges parent→child.
	Edges []TreeEdge
	// KeywordNodes[i] is the node covering keyword i.
	KeywordNodes []graph.NodeID
	// PathWeights[i] is s(T, tᵢ): the realized root→KeywordNodes[i] path
	// weight inside the tree (§2.3).
	PathWeights []float64
	// EdgeScore is E_raw = Σᵢ s(T,tᵢ); lower is better.
	EdgeScore float64
	// NodeScore is N: prestige(root) + Σ prestige over leaf nodes.
	NodeScore float64
	// Score is the overall relevance EScore·N^λ with EScore = 1/(1+E_raw);
	// higher is better.
	Score float64
	// GeneratedAt/OutputAt are offsets from the search start (§5.2's
	// generation vs. output time).
	GeneratedAt time.Duration
	OutputAt    time.Duration
	// ExploredAtGen/TouchedAtGen snapshot the §5.2 node counters at the
	// moment the answer was generated; ExploredAtOut/TouchedAtOut at the
	// moment it was output. The paper measures all metrics "at the last
	// relevant result".
	ExploredAtGen int
	TouchedAtGen  int
	ExploredAtOut int
	TouchedAtOut  int
}

// Size returns the number of nodes in the tree.
func (a *Answer) Size() int { return len(a.Nodes) }

// String renders the answer compactly for logs and examples.
func (a *Answer) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "root=%d score=%.4f nodes=[", a.Root, a.Score)
	for i, u := range a.Nodes {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", u)
	}
	sb.WriteString("] edges=[")
	for i, e := range a.Edges {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d→%d", e.From, e.To)
	}
	sb.WriteString("]")
	return sb.String()
}

// Signature returns a canonical hash of the tree's undirected edge set
// (and node set), used to detect the same tree re-discovered with a
// different root ("rotations", §4.6).
func (a *Answer) Signature() uint64 {
	pairs := make([]uint64, 0, len(a.Edges)+1)
	for _, e := range a.Edges {
		lo, hi := e.From, e.To
		if lo > hi {
			lo, hi = hi, lo
		}
		pairs = append(pairs, uint64(lo)<<32|uint64(uint32(hi)))
	}
	if len(pairs) == 0 {
		pairs = append(pairs, uint64(a.Root)<<32|uint64(uint32(a.Root)))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	// FNV-1a over the sorted pair list.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, p := range pairs {
		for s := 0; s < 64; s += 8 {
			h ^= (p >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// buildAnswer assembles an answer tree rooted at root from one
// root→keyword-node path per keyword. Paths that merge after diverging are
// spliced: the first parent assignment of a node wins, which keeps the
// edge set a tree while preserving root-to-keyword connectivity. The
// answer is scored from the realized tree. It returns nil when the tree is
// not a minimal answer (§3: a root with a single child whose removal still
// covers all keywords).
//
// kwBits maps nodes to the bitmask of keywords they match (used for the
// minimality test); nk is the keyword count.
func buildAnswer(g graph.View, opts Options, root graph.NodeID, paths [][]graph.NodeID,
	kwBits func(graph.NodeID) uint32, nk int) *Answer {
	lambda := opts.Lambda

	parent := map[graph.NodeID]graph.NodeID{root: graph.InvalidNode}
	order := []graph.NodeID{root}
	for _, path := range paths {
		if len(path) == 0 || path[0] != root {
			return nil // malformed; defensive
		}
		for j := 1; j < len(path); j++ {
			u := path[j]
			if _, seen := parent[u]; !seen {
				parent[u] = path[j-1]
				order = append(order, u)
			}
		}
	}

	// Realized per-node distance from root along tree edges.
	distFromRoot := map[graph.NodeID]float64{root: 0}
	edges := make([]TreeEdge, 0, len(order)-1)
	children := make(map[graph.NodeID]int, len(order))
	for _, u := range order[1:] {
		p := parent[u]
		w, et, fwd, ok := minEdge(g, p, u, opts.EdgeFilter)
		if !ok {
			// The parent pointer must correspond to a combined edge; if
			// not, the caller passed an invalid path.
			return nil
		}
		// The spliced parent may differ from the path predecessor, so the
		// realized distance is computed over tree edges, in insertion
		// order (parents always precede children in order).
		distFromRoot[u] = distFromRoot[p] + w
		edges = append(edges, TreeEdge{From: p, To: u, Weight: w, Type: et, Forward: fwd})
		children[p]++
	}

	// Keyword nodes: last node of each path.
	kwNodes := make([]graph.NodeID, len(paths))
	pathWeights := make([]float64, len(paths))
	edgeScore := 0.0
	for i, path := range paths {
		end := path[len(path)-1]
		kwNodes[i] = end
		pathWeights[i] = distFromRoot[end]
		edgeScore += pathWeights[i]
	}

	// Minimality (§3): a tree whose root has one child is redundant if the
	// keywords are covered without the root.
	if children[root] == 1 && len(order) > 1 {
		var cover uint32
		for _, u := range order[1:] {
			cover |= kwBits(u)
		}
		if cover == fullMask(nk) {
			return nil
		}
	}
	if len(order) == 1 {
		// Single-node answer: the root itself must cover everything.
		if kwBits(root) != fullMask(nk) {
			return nil
		}
	}

	// Node prestige score: root plus leaves (§2.3).
	nodeScore := g.Prestige(root)
	for _, u := range order[1:] {
		if children[u] == 0 {
			nodeScore += g.Prestige(u)
		}
	}
	if len(order) == 1 {
		nodeScore = g.Prestige(root)
	}

	return &Answer{
		Root:         root,
		Nodes:        order,
		Edges:        edges,
		KeywordNodes: kwNodes,
		PathWeights:  pathWeights,
		EdgeScore:    edgeScore,
		NodeScore:    nodeScore,
		Score:        overallScore(edgeScore, nodeScore, lambda),
	}
}

// overallScore combines the aggregate edge score and node prestige per
// §2.3: EScore·N^λ with EScore = 1/(1+E_raw) so that smaller path weights
// give larger relevance.
func overallScore(edgeScore, nodeScore, lambda float64) float64 {
	e := 1 / (1 + edgeScore)
	if nodeScore <= 0 {
		return 0
	}
	return e * math.Pow(nodeScore, lambda)
}

// scoreUpperBound bounds the relevance of any answer whose aggregate edge
// score is at least minEdgeScore (§4.5): the best node score is the
// maximum prestige on the root plus each of the nk keyword leaves.
func scoreUpperBound(g graph.View, minEdgeScore float64, nk int, lambda float64) float64 {
	n := g.MaxPrestige() * float64(nk+1)
	if n <= 0 {
		n = 1
	}
	return overallScore(minEdgeScore, n, lambda)
}

// minEdge returns the cheapest combined edge u→v (over parallel edges)
// that passes the filter, with its metadata.
func minEdge(g graph.View, u, v graph.NodeID, filter func(graph.EdgeType, bool) bool) (w float64, et graph.EdgeType, fwd bool, ok bool) {
	w = math.Inf(1)
	for _, h := range g.Neighbors(u) {
		if h.To != v || h.WOut >= w {
			continue
		}
		if filter != nil && !filter(h.Type, h.Forward) {
			continue
		}
		w, et, fwd, ok = h.WOut, h.Type, h.Forward, true
	}
	return w, et, fwd, ok
}

func fullMask(nk int) uint32 { return uint32(1)<<nk - 1 }
