package core

import (
	"errors"
	"math"
	"testing"

	"banks/internal/graph"
)

// TestOptionsValidationTyped drives every invalid-field case through every
// algorithm entry point: each must return an *OptionsError naming the
// field — never panic, never a bare error.
func TestOptionsValidationTyped(t *testing.T) {
	g, kw := grayGraph(t)
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative K", Options{K: -1}, "K"},
		{"negative Mu", Options{Mu: -0.5}, "Mu"},
		{"Mu at 1", Options{Mu: 1}, "Mu"},
		{"negative Lambda", Options{Lambda: -1}, "Lambda"},
		{"NaN Mu", Options{Mu: math.NaN()}, "Mu"},
		{"NaN Lambda", Options{Lambda: math.NaN()}, "Lambda"},
		{"negative DMax", Options{DMax: -2}, "DMax"},
		{"negative MaxNodes", Options{MaxNodes: -7}, "MaxNodes"},
		{"negative Workers", Options{Workers: -1}, "Workers"},
		{"very negative Workers", Options{Workers: -1 << 40}, "Workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, algo := range Algos() {
				_, err := Search(nil, g, algo, kw, tc.opts)
				var oe *OptionsError
				if !errors.As(err, &oe) {
					t.Fatalf("%s: got %v, want *OptionsError", algo, err)
				}
				if oe.Field != tc.field {
					t.Fatalf("%s: error field %q, want %q", algo, oe.Field, tc.field)
				}
			}
			_, _, err := Near(nil, g, kw, tc.opts)
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("near: got %v, want *OptionsError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("near: error field %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

// TestOptionsHugeWorkersClamped pins the documented fallback for
// oversized Workers requests: clamped to MaxWorkers (further clamped to
// the iterator count by MIBackward), never an error or a goroutine storm.
func TestOptionsHugeWorkersClamped(t *testing.T) {
	g, kw := grayGraph(t)
	if n := (Options{Workers: 1 << 30}).Normalized().Workers; n != MaxWorkers {
		t.Fatalf("Normalized Workers = %d, want MaxWorkers (%d)", n, MaxWorkers)
	}
	serial, err := Search(nil, g, AlgoMIBackward, kw, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(nil, g, AlgoMIBackward, kw, Options{K: 5, Workers: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkersUsed < 1 || res.Stats.WorkersUsed > MaxWorkers {
		t.Fatalf("WorkersUsed = %d, want within [1,%d]", res.Stats.WorkersUsed, MaxWorkers)
	}
	if got, want := diffSignature(res), diffSignature(serial); got != want {
		t.Fatalf("huge-Workers run diverged from serial:\n--- serial ---\n%s--- clamped ---\n%s", want, got)
	}
}

// TestOptionsEmptyKeywordGroup pins the documented fallback for a keyword
// matching no nodes: an empty (non-error) result, in serial and parallel
// mode alike — no answer can contain the keyword, so none exists.
func TestOptionsEmptyKeywordGroup(t *testing.T) {
	g, _ := grayGraph(t)
	kw := [][]graph.NodeID{{0}, {}}
	for _, w := range []int{0, 4} {
		for _, algo := range Algos() {
			res, err := Search(nil, g, algo, kw, Options{K: 5, Workers: w})
			if err != nil {
				t.Fatalf("%s workers %d: %v", algo, w, err)
			}
			if len(res.Answers) != 0 {
				t.Fatalf("%s workers %d: %d answers for an unmatched keyword", algo, w, len(res.Answers))
			}
		}
		nr, _, err := Near(nil, g, kw, Options{K: 5, Workers: w})
		if err != nil {
			t.Fatalf("near workers %d: %v", w, err)
		}
		if len(nr) != 0 {
			t.Fatalf("near workers %d: %d results for an unmatched keyword", w, len(nr))
		}
	}
}

// TestOptionsZeroKDefaults pins the documented fallback K == 0 → DefaultK
// (and that parallel mode honours it identically).
func TestOptionsZeroKDefaults(t *testing.T) {
	g, kw := grayGraph(t)
	for _, w := range []int{0, 4} {
		for _, algo := range Algos() {
			res, err := Search(nil, g, algo, kw, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers %d: %v", algo, w, err)
			}
			if len(res.Answers) == 0 || len(res.Answers) > DefaultK {
				t.Fatalf("%s workers %d: %d answers, want 1..%d (K=0 defaults to %d)",
					algo, w, len(res.Answers), DefaultK, DefaultK)
			}
		}
	}
}

// TestOptionsNearWithParallelism pins the Near fallback end to end: a
// worker request is accepted, ignored, and changes nothing.
func TestOptionsNearWithParallelism(t *testing.T) {
	g, kw := grayGraph(t)
	serial, serialStats, err := Near(nil, g, kw, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := Near(nil, g, kw, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatalf("near with Workers: %v", err)
	}
	if stats.WorkersUsed != 0 {
		t.Fatalf("near WorkersUsed = %d, want 0", stats.WorkersUsed)
	}
	if len(res) != len(serial) {
		t.Fatalf("near with Workers returned %d results, serial %d", len(res), len(serial))
	}
	for i := range res {
		if res[i] != serial[i] {
			t.Fatalf("near result %d diverged: %+v vs %+v", i, res[i], serial[i])
		}
	}
	if stats.NodesExplored != serialStats.NodesExplored {
		t.Fatal("near stats diverged under Workers")
	}
}
