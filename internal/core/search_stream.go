package core

import "time"

// This file is the core half of the streaming answer subsystem. The paper
// separates answer *generation* from answer *output* (§5.2): generated
// trees sit in the output heap until the §4.5 bound proves no better
// answer can still arrive, and only then are they output. Batch callers
// observe that release sequence all at once, as Result.Answers; the Emit
// seam below exposes it incrementally, one callback per release, which is
// what makes BANKS the *interactive* system the paper describes — the
// first answer reaches the user while the search is still running.
//
// The contract, enforced by the differential harness in
// search_stream_test.go: the emitted sequence is bit-identical — answers,
// scores, order — to the Result.Answers of the same search, for every
// algorithm, option shape and worker count, including truncated prefixes
// under mid-search cancellation. This holds by construction: Emit fires
// inside outputHeap.release, the single funnel every released answer
// passes through (drain, flush and releaseBuilt all end there), at the
// exact moment the answer is appended to the output slice.

// EmittedAnswer is one incremental release of the output heap, as
// delivered to Options.Emit: the answer itself (carrying its §5.2
// generation/output counters — GeneratedAt, ExploredAtGen/Out,
// TouchedAtGen/Out), its rank so far, and the emission timestamp as an
// offset from search start.
type EmittedAnswer struct {
	// Answer is the released answer. It is final at emission time: the
	// output heap never retracts or mutates a released answer. Receivers
	// must treat it as read-only — it is the same object that appears in
	// Result.Answers.
	Answer *Answer
	// Rank is the answer's 1-based position in the output sequence so
	// far; the stream of emissions has ranks 1, 2, 3, … in order.
	Rank int
	// OutputAt is when (relative to search start) the answer was
	// released, equal to Answer.OutputAt.
	OutputAt time.Duration
	// Generated is Stats.AnswersGenerated at the moment of emission — how
	// many answers the search had generated (buffered) when this one was
	// output, the gap the paper's §5.2 generation-vs-output distinction
	// measures. Replayed streams (an engine cache hit) report the
	// originating run's final value for every answer; the per-answer
	// counters on Answer are exact in both cases.
	Generated int
}

// EmittedNear is one incremental emission of a near query, delivered to
// Options.EmitNear. Near queries rank nodes by accumulated activation,
// which is only known once spreading finishes, so unlike tree search the
// emissions all occur at the end of the search — the seam exists so near
// results travel the same streaming path, not to make ranking
// incremental.
type EmittedNear struct {
	// Result is the activation-ranked node.
	Result NearResult
	// Rank is the node's 1-based position in the ranked list.
	Rank int
	// OutputAt is when (relative to search start) the node was emitted.
	OutputAt time.Duration
}
