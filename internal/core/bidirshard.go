package core

import (
	"sync"

	"banks/internal/graph"
)

// Sharded Bidirectional forward expansion.
//
// Bidirectional search is a sequential fixpoint computation — every
// expansion reads and writes global per-node state — so it cannot be
// parallelized by running whole expansions concurrently without changing
// results. What CAN run in parallel is the pure half of an expansion's
// inner loop: per-edge scoring (the 1/w activation terms, edge-priority
// lookups, filter checks) and the node-state lookups, none of which
// depend on the mutations the same expansion performs. Sharded mode
// splits exactly that work across contiguous partitions of the node's
// adjacency range — each partition is a contiguous sub-range of the
// graph's halves section (the same layout graph.Sections exposes, so a
// partition of a mapped snapshot touches one contiguous byte range) — and
// then applies all mutations serially in edge order.
//
// Determinism: the scratch arrays are indexed by edge position, the
// activation denominator Σ 1/w is accumulated left-to-right by the merge
// (never tree-reduced — floating-point addition is not associative, and
// the serial scan order is the pinned one), and each per-edge share is
// computed with the same operation sequence as the inline loop. The merge
// therefore produces bit-identical state transitions; only the wall-clock
// changes. The pre-pass reads the node-state map concurrently, which is
// safe because the coordinator blocks until the pass completes and no
// writer runs during it.
//
// Only expansions of nodes with at least bidirShardMinDegree combined
// edges go through the pool: below that the fork/join barrier costs more
// than the scoring loop saves. Hub nodes — exactly the expansions §4.3's
// activation model makes expensive — are the target.

// bidirShardMinDegree gates sharding. A variable (not a const) so the
// differential tests can lower it and exercise the sharded path on small
// randomized graphs.
var bidirShardMinDegree = 256

// BidirShardMinDegree reports the combined-degree gate for sharded
// forward expansions: a Bidirectional query on a graph whose maximum
// degree is below this can never employ intra-query workers. The engine
// consults it to avoid reserving pool slots such a query would hold idle.
func BidirShardMinDegree() int { return bidirShardMinDegree }

// bidirShardTask is one partition of a scoring pass over a forward
// expansion (only the outgoing iterator is sharded today; extending to
// the backward iterator means re-introducing a WIn/WOut selector here).
type bidirShardTask struct {
	halves []graph.Half
	lo, hi int
}

// bidirShards is a per-search pool of scoring workers plus the scratch
// arrays they fill, reused across expansions.
type bidirShards struct {
	sc *searchContext
	n  int

	// Scratch, indexed by edge position within the expanded adjacency.
	allow []bool
	inv   []float64 // 1/w, the activation term of the edge (0 if filtered)
	prio  []float64
	state []*nodeState // pre-looked-up state of h.To (nil = none yet)

	tasks chan bidirShardTask
	fin   chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup
}

func newBidirShards(sc *searchContext, workers int) *bidirShards {
	p := &bidirShards{
		sc:    sc,
		n:     workers,
		tasks: make(chan bidirShardTask),
		fin:   make(chan struct{}, workers),
		quit:  make(chan struct{}),
	}
	sc.stats.WorkersUsed = workers
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *bidirShards) close() {
	close(p.quit)
	p.wg.Wait()
}

func (p *bidirShards) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.score(t)
			p.fin <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

// score fills the scratch arrays for one partition: pure per-edge values
// and read-only state lookups, no mutations.
func (p *bidirShards) score(t bidirShardTask) {
	sc := p.sc
	for i := t.lo; i < t.hi; i++ {
		h := t.halves[i]
		if !sc.allowEdge(h) {
			p.allow[i] = false
			p.inv[i] = 0
			continue
		}
		p.allow[i] = true
		p.inv[i] = 1 / h.WOut
		p.prio[i] = sc.edgePriority(h)
		p.state[i], _ = sc.peekState(h.To)
	}
}

// scoreEdges runs one parallel scoring pass over the adjacency range and
// blocks until every partition is done.
func (p *bidirShards) scoreEdges(halves []graph.Half) {
	n := len(halves)
	if cap(p.inv) < n {
		p.allow = make([]bool, n)
		p.inv = make([]float64, n)
		p.prio = make([]float64, n)
		p.state = make([]*nodeState, n)
	} else {
		p.allow = p.allow[:n]
		p.inv = p.inv[:n]
		p.prio = p.prio[:n]
		p.state = p.state[:n]
	}
	chunk := (n + p.n - 1) / p.n
	sent := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.tasks <- bidirShardTask{halves: halves, lo: lo, hi: hi}
		sent++
	}
	for i := 0; i < sent; i++ {
		<-p.fin
	}
}

// expandOutgoingSharded is the sharded replica of expandOutgoing's
// neighbor loop: the scoring pass runs on the pool, then the mutations —
// the activation denominator, state creation, distance pulls, activation
// spreading, frontier pushes — are applied serially in edge order, exactly
// as the inline loop would.
func (b *bidirSearch) expandOutgoingSharded(u graph.NodeID, su *nodeState, halves []graph.Half) {
	p := b.shards
	p.scoreEdges(halves)

	if su.invOut < 0 {
		// Same left-to-right accumulation as invSumOut, reusing the
		// precomputed 1/w terms.
		sum := 0.0
		for i := range halves {
			if p.allow[i] {
				sum += p.inv[i]
			}
		}
		su.invOut = sum
	}
	invSum := su.invOut

	for i, h := range halves {
		if !p.allow[i] {
			continue
		}
		sv := p.state[i]
		if sv == nil {
			// Not present at scoring time: created now (or by an earlier
			// edge of this same expansion — st is a lookup then).
			sv = b.st(h.To)
		}
		share := 0.0
		if invSum > 0 {
			share = p.inv[i] / invSum * p.prio[i]
		}
		b.mergeOutEdge(u, su, h, sv, share)
	}
}
