package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"banks/internal/graph"
)

// randomSearchable builds a random graph with random keyword sets.
func randomSearchable(rng *rand.Rand) (*graph.Graph, [][]graph.NodeID) {
	n := 4 + rng.Intn(40)
	b := graph.NewBuilder()
	b.AddNodes("t", n)
	m := rng.Intn(4 * n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.5+rng.Float64()*2, graph.EdgeType(rng.Intn(3)))
		}
	}
	g := b.Build()
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.1 + rng.Float64()*2
	}
	_ = g.SetPrestige(p)

	nk := 1 + rng.Intn(3)
	kw := make([][]graph.NodeID, nk)
	for i := range kw {
		sz := 1 + rng.Intn(4)
		seen := map[graph.NodeID]bool{}
		for len(kw[i]) < sz {
			u := graph.NodeID(rng.Intn(n))
			if !seen[u] {
				seen[u] = true
				kw[i] = append(kw[i], u)
			}
		}
	}
	return g, kw
}

// checkAnswerInvariants is the non-fatal version of verifyAnswer for
// quick.Check properties.
func checkAnswerInvariants(g *graph.Graph, kw [][]graph.NodeID, a *Answer, lambda float64) bool {
	if len(a.Nodes) == 0 || a.Nodes[0] != a.Root {
		return false
	}
	if len(a.Edges) != len(a.Nodes)-1 {
		return false
	}
	parents := map[graph.NodeID]graph.NodeID{}
	for _, e := range a.Edges {
		if _, dup := parents[e.To]; dup {
			return false
		}
		parents[e.To] = e.From
	}
	for _, u := range a.Nodes {
		cur := u
		for steps := 0; cur != a.Root; steps++ {
			p, ok := parents[cur]
			if !ok || steps > len(a.Nodes) {
				return false
			}
			cur = p
		}
	}
	if len(a.KeywordNodes) != len(kw) {
		return false
	}
	inTree := map[graph.NodeID]bool{}
	for _, u := range a.Nodes {
		inTree[u] = true
	}
	for i, si := range kw {
		if !inTree[a.KeywordNodes[i]] {
			return false
		}
		ok := false
		for _, u := range si {
			if u == a.KeywordNodes[i] {
				ok = true
			}
		}
		if !ok {
			return false
		}
	}
	return math.Abs(overallScore(a.EdgeScore, a.NodeScore, lambda)-a.Score) <= 1e-12
}

// Property: every answer any algorithm emits on random inputs satisfies
// the structural invariants.
func TestQuickAnswersAreValidTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, kw := randomSearchable(rng)
		opts := Options{K: 20, DMax: 10}
		for _, algo := range algorithms {
			res, err := algo(g, kw, opts)
			if err != nil {
				return false
			}
			for _, a := range res.Answers {
				if !checkAnswerInvariants(g, kw, a, DefaultLambda) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a depth limit exceeding the graph size, the best
// *generated* answer score agrees across all three algorithms up to
// tie-breaking. All three converge to true shortest keyword distances at
// frontier exhaustion, but the overall score EScore·N^λ is not monotone in
// distance: equal-or-longer paths may end at higher-prestige leaves, and
// which such variant an algorithm happens to emit depends on its
// exploration order (the §4.6 "changing the answer set slightly" effect,
// which the paper reports as negligible). We therefore require agreement
// within a small relative tolerance, plus exact agreement on whether any
// answer exists at all; exact distance correctness is covered separately
// by TestQuickDistancesMatchReferenceDijkstra.
func TestQuickAlgorithmsAgreeOnBest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, kw := randomSearchable(rng)
		opts := Options{K: 1000, DMax: 64}
		best := map[string]float64{}
		count := map[string]int{}
		for name, algo := range algorithms {
			res, err := algo(g, kw, opts)
			if err != nil {
				return false
			}
			best[name] = res.Stats.BestGeneratedScore
			count[name] = len(res.Answers)
		}
		if (count["bidirectional"] == 0) != (count["si-backward"] == 0) ||
			(count["mi-backward"] == 0) != (count["si-backward"] == 0) {
			return false
		}
		lo, hi := math.Inf(1), 0.0
		for _, b := range best {
			lo = math.Min(lo, b)
			hi = math.Max(hi, b)
		}
		return hi == 0 || (hi-lo)/hi < 0.20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: answers never repeat a tree (signature) or a root in one
// result list, and scores reported are positive.
func TestQuickNoDuplicateAnswers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, kw := randomSearchable(rng)
		for _, algo := range algorithms {
			res, err := algo(g, kw, Options{K: 50, DMax: 12})
			if err != nil {
				return false
			}
			sigs := map[uint64]bool{}
			roots := map[graph.NodeID]bool{}
			for _, a := range res.Answers {
				if a.Score <= 0 {
					return false
				}
				if sigs[a.Signature()] || roots[a.Root] {
					return false
				}
				sigs[a.Signature()] = true
				roots[a.Root] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: SI-Backward's keyword distances at emitted roots match a
// reference Dijkstra (multi-source, per keyword) over the combined graph.
func TestQuickDistancesMatchReferenceDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, kw := randomSearchable(rng)
		res, err := SIBackward(nil, g, kw, Options{K: 1000, DMax: 64})
		if err != nil {
			return false
		}
		// Reference: for each keyword, true multi-source shortest distance
		// from every node to the keyword set, following combined out-edges
		// (root→keyword direction).
		ref := make([]map[graph.NodeID]float64, len(kw))
		for i, si := range kw {
			ref[i] = referenceDijkstra(g, si)
		}
		for _, a := range res.Answers {
			for i := range kw {
				want := ref[i][a.Root]
				// The realized path weight can exceed the true shortest
				// distance only from splicing; it must never beat it.
				if a.PathWeights[i] < want-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// referenceDijkstra computes, for every node u, the length of the shortest
// combined-graph path from u to any node in targets (following edges
// u→...→target).
func referenceDijkstra(g *graph.Graph, targets []graph.NodeID) map[graph.NodeID]float64 {
	dist := make(map[graph.NodeID]float64)
	type qe struct {
		u graph.NodeID
		d float64
	}
	var queue []qe
	push := func(u graph.NodeID, d float64) {
		if old, ok := dist[u]; !ok || d < old {
			dist[u] = d
			queue = append(queue, qe{u, d})
		}
	}
	for _, u := range targets {
		push(u, 0)
	}
	for len(queue) > 0 {
		// simple O(n²) extract-min; graphs are tiny
		bi := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].d < queue[bi].d {
				bi = i
			}
		}
		cur := queue[bi]
		queue = append(queue[:bi], queue[bi+1:]...)
		if cur.d > dist[cur.u] {
			continue
		}
		// Relax edges INTO cur.u: predecessor x pays w(x→u).
		for _, h := range g.Neighbors(cur.u) {
			push(h.To, cur.d+h.WIn)
		}
	}
	return dist
}

// Property: stats counters are internally consistent.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, kw := randomSearchable(rng)
		for _, algo := range algorithms {
			res, err := algo(g, kw, Options{K: 10})
			if err != nil {
				return false
			}
			s := res.Stats
			if s.NodesExplored < 0 || s.NodesTouched < 0 || s.EdgesRelaxed < 0 {
				return false
			}
			if s.NodesExplored > s.NodesTouched {
				return false // every pop was inserted first
			}
			if len(res.Answers) > 0 && s.AnswersGenerated < len(res.Answers) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
