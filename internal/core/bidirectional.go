package core

import (
	"context"
	"math"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// Bidirectional runs the paper's Bidirectional expanding search (§4,
// Figure 3): a single incoming (backward) iterator seeded at all keyword
// nodes and a concurrent outgoing (forward) iterator over every node the
// incoming iterator reaches (each such node is a potential answer root).
// Both frontiers are prioritized by spreading activation (§4.3), so
// iterators with small origin sets and less bushy subtrees are expanded
// preferentially, and forward search connects high-activation potential
// roots to frequent keywords cheaply.
//
// ctx bounds the search: on cancellation or deadline expiry the loop stops
// at the next amortized check, flushes the answers generated so far as a
// partial top-k, and returns them with Stats.Truncated set (no error).
func Bidirectional(ctx context.Context, g graph.View, keywords [][]graph.NodeID, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validateInput(g, keywords); err != nil {
		return nil, err
	}
	sc := newSearchContext(orBackground(ctx), g, keywords, opts)
	if anyEmptyKeyword(keywords) || sc.expired() {
		return sc.finishResult(), nil
	}

	b := &bidirSearch{
		searchContext: sc,
		qin:           pqueue.NewMax[graph.NodeID](),
		qout:          pqueue.NewMax[graph.NodeID](),
	}
	b.workers = opts.Workers
	defer func() {
		if b.shards != nil {
			b.shards.close()
		}
	}()
	b.seed()
	b.run()
	return sc.finishResult(), nil
}

type bidirSearch struct {
	*searchContext
	qin  *pqueue.Heap[graph.NodeID]
	qout *pqueue.Heap[graph.NodeID]
	// workers is Options.Workers; shards is the scoring pool it permits,
	// created lazily by the first forward expansion that crosses
	// bidirShardMinDegree (bidirshard.go) — a query that never meets a
	// hub spawns nothing and reports WorkersUsed 0.
	workers int
	shards  *bidirShards
	// activate is the reusable work heap for best-first activation
	// propagation (Figure 3's Activate).
	activate *pqueue.Heap[graph.NodeID]
	// attach is the reusable work heap for best-first distance propagation
	// (Figure 3's Attach).
	attach *pqueue.Heap[graph.NodeID]
}

// seed inserts every keyword node into Qin with initial activation
// a_{u,i} = prestige(u)/|Sᵢ| (§4.3 eq. 1) and emits degenerate single-node
// answers for nodes that already cover every keyword.
func (b *bidirSearch) seed() {
	for i, si := range b.kw {
		sz := float64(len(si))
		for _, u := range si {
			s := b.st(u)
			s.depth = 0
			a := b.g.Prestige(u) / sz
			if b.opts.ActivationSum {
				s.act[i] += a
			} else if a > s.act[i] {
				s.act[i] = a
			}
		}
	}
	for _, u := range b.seedNodes() {
		s := b.st(u)
		b.qin.Push(u, totalActivation(s))
		b.stats.NodesTouched++
		b.maybeEmit(u)
	}
}

func (b *bidirSearch) run() {
	const boundEvery = 32
	sinceBound := 0
	for b.qin.Len() > 0 || b.qout.Len() > 0 {
		if b.out.full() {
			return
		}
		if b.opts.MaxNodes > 0 && b.stats.NodesExplored >= b.opts.MaxNodes {
			b.stats.BudgetExhausted = true
			break
		}
		if b.cancelled() {
			break
		}
		// Schedule whichever iterator holds the higher-activation node
		// (Figure 3 lines 5–23).
		_, ain, okIn := b.qin.Peek()
		_, aout, okOut := b.qout.Peek()
		switch {
		case okIn && (!okOut || ain >= aout):
			v, _, _ := b.qin.Pop()
			b.expandIncoming(v)
		case okOut:
			u, _, _ := b.qout.Pop()
			b.expandOutgoing(u)
		}
		sinceBound++
		if sinceBound >= boundEvery {
			sinceBound = 0
			score, edge := b.upperBound()
			if b.lazy {
				if b.drainCands(edge, false) {
					return
				}
			} else {
				b.flushEmits()
				if b.out.drain(score, edge) {
					return
				}
			}
		}
	}
	if b.lazy {
		b.drainCands(0, true)
	} else {
		b.flushEmits()
		b.out.flush()
	}
}

// expandIncoming pops v from the backward frontier: explores incoming
// combined edges (u,v), propagating distances and activation to the
// predecessors u, and registers v with the outgoing iterator as a
// potential answer root.
func (b *bidirSearch) expandIncoming(v graph.NodeID) {
	b.stats.NodesExplored++
	b.tick()
	sv := b.st(v)
	sv.inXin = true
	b.maybeEmit(v)

	if int(sv.depth) < b.opts.DMax {
		invSum := b.invSumIn(v, sv)
		for _, h := range b.g.Neighbors(v) {
			if !b.allowEdge(h) {
				continue
			}
			u := h.To
			// Combined in-edge u→v has weight h.WIn.
			su := b.st(u)
			prio := b.edgePriority(h)
			share := 0.0
			if invSum > 0 {
				// v spreads activation to its in-neighbour u, divided in
				// inverse proportion to the in-edge weights (§4.3).
				share = (1 / h.WIn) / invSum * prio
			}
			b.exploreEdge(u, su, v, sv, h.WIn, share, true)
			if !su.inXin {
				if su.depth < 0 {
					su.depth = sv.depth + 1
				}
				if b.qin.PushIfAbsent(u, totalActivation(su)) {
					b.stats.NodesTouched++
				}
			}
		}
	}
	if !sv.inXout && b.qout.PushIfAbsent(v, totalActivation(sv)) {
		b.stats.NodesTouched++
	}
}

// expandOutgoing pops u from the forward frontier: explores outgoing
// combined edges (u,v), pulling distance information from v back into u
// and pushing activation forward into v.
func (b *bidirSearch) expandOutgoing(u graph.NodeID) {
	b.stats.NodesExplored++
	b.tick()
	su := b.st(u)
	su.inXout = true
	b.maybeEmit(u)

	if int(su.depth) >= b.opts.DMax {
		return
	}
	halves := b.g.Neighbors(u)
	if b.workers >= 1 && len(halves) >= bidirShardMinDegree {
		if b.shards == nil {
			b.shards = newBidirShards(b.searchContext, b.workers)
		}
		b.expandOutgoingSharded(u, su, halves)
		return
	}
	invSum := b.invSumOut(u, su)
	for _, h := range halves {
		if !b.allowEdge(h) {
			continue
		}
		sv := b.st(h.To)
		prio := b.edgePriority(h)
		share := 0.0
		if invSum > 0 {
			// u spreads activation forward to v across out-edges.
			share = (1 / h.WOut) / invSum * prio
		}
		b.mergeOutEdge(u, su, h, sv, share)
	}
}

// mergeOutEdge applies the mutating tail of one forward-expansion edge:
// the exploration itself plus the frontier registration of the successor.
// It is shared between the inline loop above and the sharded merge loop
// (bidirshard.go) so the two paths cannot drift apart — their
// bit-identical-results contract rides on executing exactly this code in
// edge order.
func (b *bidirSearch) mergeOutEdge(u graph.NodeID, su *nodeState, h graph.Half, sv *nodeState, share float64) {
	b.exploreEdge(u, su, h.To, sv, h.WOut, share, false)
	if !sv.inXout {
		if sv.depth < 0 {
			sv.depth = su.depth + 1
		}
		if b.qout.PushIfAbsent(h.To, totalActivation(sv)) {
			b.stats.NodesTouched++
		}
	}
}

// exploreEdge is Figure 3's ExploreEdge(u,v): u is the predecessor, v the
// successor of combined edge u→v with weight w. Distance information flows
// v→u (u gains paths to keywords through v); activation flows backward
// (v spreads to u, backward==true) or forward (u spreads to v) depending
// on the expanding iterator. share is the edge's activation fraction
// (1/w)/Σ(1/w')·priority, precomputed by the caller — inline for the
// serial loops, by the shard pool for high-degree forward expansions — so
// both paths apply identical arithmetic; 0 means no spreading (the
// invSum ≤ 0 case, where a zero factor could not change any activation).
func (b *bidirSearch) exploreEdge(u graph.NodeID, su *nodeState, v graph.NodeID, sv *nodeState, w, share float64, backward bool) {
	b.stats.EdgesRelaxed++

	// Record u as an explored parent of v (P_v): distance improvements at
	// v must later propagate to u (§4.2.2).
	sv.parents = append(sv.parents, parentEdge{node: u, w: w})

	improvedDist := false
	for i := 0; i < b.nk; i++ {
		if d := w + sv.dist[i]; d < su.dist[i]-1e-15 {
			su.dist[i] = d
			su.sp[i] = v
			b.noteDist(u, su, i)
			improvedDist = true
		}
	}
	if improvedDist {
		b.maybeEmit(u)
		b.attachPropagate(u)
	}

	if share > 0 {
		mu := b.opts.Mu
		if backward {
			b.receiveActivation(u, su, sv, mu*share, true)
		} else {
			b.receiveActivation(v, sv, su, mu*share, false)
		}
	}
}

// activationRespreadGain is the minimum relative activation improvement
// that re-triggers propagation through already-expanded nodes. Activation
// only steers search order (never correctness), so re-spreading on
// marginal changes would buy nothing while rescanning hub neighbourhoods;
// the paper's Activate procedure leaves this engineering threshold open.
const activationRespreadGain = 1.10

// receiveActivation updates dst's per-keyword activation with the portion
// arriving from src, re-prioritizes dst in the frontier queues, and
// propagates onward if dst has already spread before and the change is
// substantial (Figure 3's Activate).
func (b *bidirSearch) receiveActivation(dst graph.NodeID, sdst, ssrc *nodeState, factor float64, backward bool) {
	improved := false
	big := false
	for i := 0; i < b.nk; i++ {
		a := ssrc.act[i] * factor
		if a <= 0 {
			continue
		}
		if b.opts.ActivationSum {
			sdst.act[i] += a
			improved = true
			big = true
		} else if a > sdst.act[i] {
			if a > sdst.act[i]*activationRespreadGain {
				big = true
			}
			sdst.act[i] = a
			improved = true
		}
	}
	if !improved {
		return
	}
	total := totalActivation(sdst)
	b.qin.Bump(dst, total)  // no-op if not queued
	b.qout.Bump(dst, total) // no-op if not queued
	_ = backward
	if big && (sdst.inXin || sdst.inXout) {
		b.activatePropagate(dst)
	}
}

// activatePropagate re-spreads improved activation from nodes that have
// already been expanded, best-first (Figure 3's Activate). Attenuation µ
// guarantees geometric decay, so propagation terminates quickly.
func (b *bidirSearch) activatePropagate(from graph.NodeID) {
	if b.activate == nil {
		b.activate = pqueue.NewMax[graph.NodeID]()
	}
	work := b.activate
	work.Clear()
	work.Push(from, totalActivation(b.st(from)))
	for work.Len() > 0 {
		v, _, _ := work.Pop()
		sv := b.st(v)
		mu := b.opts.Mu
		if sv.inXin {
			invSum := b.invSumIn(v, sv)
			if invSum > 0 {
				for _, h := range b.g.Neighbors(v) {
					if !b.allowEdge(h) {
						continue
					}
					share := (1 / h.WIn) / invSum * b.edgePriority(h)
					b.respread(work, h.To, sv, mu*share)
				}
			}
		}
		if sv.inXout {
			invSum := b.invSumOut(v, sv)
			if invSum > 0 {
				for _, h := range b.g.Neighbors(v) {
					if !b.allowEdge(h) {
						continue
					}
					share := (1 / h.WOut) / invSum * b.edgePriority(h)
					b.respread(work, h.To, sv, mu*share)
				}
			}
		}
	}
}

// respread applies one hop of re-spreading during activatePropagate.
func (b *bidirSearch) respread(work *pqueue.Heap[graph.NodeID], dst graph.NodeID, ssrc *nodeState, factor float64) {
	sdst, ok := b.peekState(dst)
	if !ok {
		return // never touched: will receive activation when explored
	}
	improved := false
	big := false
	for i := 0; i < b.nk; i++ {
		a := ssrc.act[i] * factor
		if a > sdst.act[i] {
			if a > sdst.act[i]*activationRespreadGain {
				big = true
			}
			sdst.act[i] = a
			improved = true
		}
	}
	if !improved {
		return
	}
	total := totalActivation(sdst)
	b.qin.Bump(dst, total)
	b.qout.Bump(dst, total)
	if big && (sdst.inXin || sdst.inXout) {
		work.Push(dst, total)
	}
}

// attachPropagate propagates improved distances at u to its explored
// parents, best-first (Figure 3's Attach). Each improvement may complete
// ancestors, triggering emission.
func (b *bidirSearch) attachPropagate(u graph.NodeID) {
	if b.attach == nil {
		b.attach = pqueue.NewMin[graph.NodeID]()
	}
	work := b.attach
	work.Clear()
	work.Push(u, b.distSum(b.st(u)))
	for work.Len() > 0 {
		v, _, _ := work.Pop()
		sv := b.st(v)
		if len(sv.parents) == 0 {
			continue
		}
		for _, pe := range sv.parents {
			sp, ok := b.peekState(pe.node)
			if !ok {
				continue
			}
			improved := false
			for i := 0; i < b.nk; i++ {
				if d := pe.w + sv.dist[i]; d < sp.dist[i]-1e-15 {
					sp.dist[i] = d
					sp.sp[i] = v
					b.noteDist(pe.node, sp, i)
					improved = true
				}
			}
			if improved {
				b.maybeEmit(pe.node)
				work.Push(pe.node, b.distSum(sp))
			}
		}
	}
}

// upperBound computes the §4.5 bounds on answers not yet generated. mᵢ is
// the minimum dist_{u,i} over the backward frontier; the best future
// aggregate edge score is edge = Σᵢ mᵢ (h in the paper), and the score
// bound combines it with the maximum node prestige. In strict mode the
// bound additionally considers every seen node's partial distances
// (Σᵢ min(dist_{u,i}, mᵢ)), NRA-style.
func (b *bidirSearch) upperBound() (score, edge float64) {
	m := make([]float64, b.nk)
	for i := range m {
		m[i] = b.frontierMin(i)
	}
	h := 0.0
	for i := 0; i < b.nk; i++ {
		if math.IsInf(m[i], 1) {
			// No frontier knowledge for keyword i: fall back to the
			// coarser overall-frontier minimum (§4.5); if the frontier is
			// empty no better answer can appear at all.
			if b.qin.Len() == 0 && b.qout.Len() == 0 {
				return 0, math.Inf(1)
			}
			continue
		}
		h += m[i]
	}
	if b.opts.StrictBound {
		best := math.Inf(1)
		for _, s := range b.state {
			sum := 0.0
			for i := 0; i < b.nk; i++ {
				sum += math.Min(s.dist[i], m[i])
			}
			if sum < best {
				best = sum
			}
		}
		if best < h {
			h = best
		}
	}
	return scoreUpperBound(b.g, h, b.nk, b.opts.Lambda), h
}
