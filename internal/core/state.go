package core

import (
	"context"
	"math"
	"sort"
	"time"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// parentEdge is one entry of an explored-parents list P_u: the parent
// node and the combined-graph weight of the edge parent→u.
type parentEdge struct {
	node graph.NodeID
	w    float64
}

// Result is the outcome of one search.
type Result struct {
	// Answers in output order (relevance order up to the guarantees of the
	// bound mode, §4.5/§5.7).
	Answers []*Answer
	Stats   Stats
}

// nodeState holds the per-node bookkeeping of the single-iterator
// algorithms (Figure 2): per-keyword best distance dist_{u,i}, best child
// pointer sp_{u,i}, activation a_{u,i}, depth, explored-parent list P_u,
// and membership flags for Qin/Xin/Qout/Xout.
type nodeState struct {
	dist  []float64
	sp    []graph.NodeID
	act   []float64
	depth int32

	inXin  bool
	inXout bool

	// parents is P_u: nodes w that explored an edge (w,u), with the
	// combined edge weight w(w→u) captured at exploration time so Attach
	// propagation needs no adjacency rescan. Distance improvements at u
	// propagate to them (Attach, Figure 3).
	parents []parentEdge

	// lastEmitSum is Σᵢ dist at the last emission (or candidate update)
	// for this node as root; re-emission is attempted only when the sum
	// strictly improves.
	lastEmitSum float64
	// dirty marks the node as queued for deferred emission (strict mode).
	dirty bool
	// genAt/genExplored/genTouched snapshot the generation-time metrics at
	// the node's latest improvement (lazy candidate mode).
	genAt                   time.Duration
	genExplored, genTouched int

	// invIn/invOut cache Σ 1/w over allowed in-/out-edges (activation
	// spreading denominators); negative means not yet computed.
	invIn, invOut float64
}

// cancelEvery is how many node expansions pass between context checks.
// A check is an atomic load plus a clock read; amortizing it over a batch
// of pops keeps the overhead unmeasurable while still bounding
// post-cancellation work to microseconds.
const cancelEvery = 64

// canceller performs amortized cancellation checks against a context,
// recording expiry as Stats.Truncated (sticky: once observed, every later
// check is true without consulting the context again). The deadline is
// also compared against the clock directly rather than relying on
// ctx.Err() alone: a CPU-bound search goroutine can starve the runtime
// timer that would cancel the context (especially at GOMAXPROCS=1), and a
// deadline that has objectively passed must still truncate promptly.
type canceller struct {
	ctx         context.Context
	stats       *Stats
	deadline    time.Time
	hasDeadline bool
	// calls counts checks since the context was last consulted.
	calls int
}

func newCanceller(ctx context.Context, stats *Stats) canceller {
	d, ok := ctx.Deadline()
	return canceller{ctx: ctx, stats: stats, deadline: d, hasDeadline: ok}
}

// expired reports expiry immediately (no amortization), setting
// Stats.Truncated when it first observes it.
func (c *canceller) expired() bool {
	if c.stats.Truncated {
		return true
	}
	if c.ctx.Err() != nil || (c.hasDeadline && !time.Now().Before(c.deadline)) {
		c.stats.Truncated = true
		return true
	}
	return false
}

// cancelled reports expiry, consulting the context and clock only every
// cancelEvery calls.
func (c *canceller) cancelled() bool {
	if c.stats.Truncated {
		return true
	}
	c.calls++
	if c.calls < cancelEvery {
		return false
	}
	c.calls = 0
	return c.expired()
}

// searchContext is the shared state of SI-Backward and Bidirectional
// search over one query.
type searchContext struct {
	canceller

	g     graph.View
	opts  Options
	nk    int
	kw    [][]graph.NodeID
	bits  map[graph.NodeID]uint32 // keyword-match bitmask per matching node
	state map[graph.NodeID]*nodeState
	out   *outputHeap
	stats *Stats
	start time.Time
	// dirtyEmits queues completed nodes whose answers are built lazily at
	// the next drain point (strict-bound mode): distances of a node
	// typically improve many times in a burst during Attach propagation,
	// and building a tree per improvement would dominate the run time.
	// Generation counters are snapshotted at mark time so §5.2 metrics are
	// unaffected by the deferral.
	dirtyEmits []pendingEmit
	// cands holds completed answer roots keyed by their distance sum (the
	// default heuristic-bound mode): trees are built only when the §4.5
	// edge bound releases the root, so a search producing k answers builds
	// O(k) trees no matter how many roots completed transiently.
	cands *pqueue.Heap[graph.NodeID]
	// lazy selects the candidate path (heuristic mode).
	lazy bool
	// now caches time.Since(start), refreshed once per node expansion, so
	// per-improvement snapshots avoid a clock read.
	now time.Duration
	// boundHeaps maintains, per keyword, a lazy min-heap over the known
	// distances of nodes not yet expanded backward (not in Xin). Its top
	// gives the §4.5 frontier minimum mᵢ in amortized O(1) instead of a
	// full frontier scan per drain. Entries are decrease-keyed on every
	// relaxation and lazily discarded once their node enters Xin.
	boundHeaps []*pqueue.Heap[graph.NodeID]
}

// pendingEmit is one deferred emission with its generation-time counter
// snapshot.
type pendingEmit struct {
	node     graph.NodeID
	at       time.Duration
	explored int
	touched  int
}

func newSearchContext(ctx context.Context, g graph.View, keywords [][]graph.NodeID, opts Options) *searchContext {
	start := time.Now()
	stats := &Stats{}
	sc := &searchContext{
		canceller: newCanceller(ctx, stats),
		g:         g,
		opts:      opts,
		nk:        len(keywords),
		kw:        keywords,
		bits:      make(map[graph.NodeID]uint32),
		state:     make(map[graph.NodeID]*nodeState),
		out:       newOutputHeap(opts.K, !opts.StrictBound, start, stats, opts.Emit),
		stats:     stats,
		start:     start,
		cands:     pqueue.NewMin[graph.NodeID](),
		lazy:      !opts.StrictBound,
	}
	sc.boundHeaps = make([]*pqueue.Heap[graph.NodeID], sc.nk)
	for i := range sc.boundHeaps {
		sc.boundHeaps[i] = pqueue.NewMin[graph.NodeID]()
	}
	for i, s := range keywords {
		for _, u := range s {
			sc.bits[u] |= 1 << i
		}
	}
	return sc
}

// tick refreshes the cached clock; called once per node expansion.
func (sc *searchContext) tick() { sc.now = time.Since(sc.start) }

// seedNodes returns the keyword-matching nodes in ascending NodeID order.
// Frontiers must be seeded in deterministic order: map iteration order
// would otherwise leak into heap tie-breaking and make equal-score answer
// orderings vary run to run, which the golden regression tests and the
// concurrent-vs-serial equivalence tests forbid.
func (sc *searchContext) seedNodes() []graph.NodeID {
	nodes := make([]graph.NodeID, 0, len(sc.bits))
	for u := range sc.bits {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// kwBits returns the keyword bitmask of node u.
func (sc *searchContext) kwBits(u graph.NodeID) uint32 { return sc.bits[u] }

// st returns (creating if needed) the state of node u.
func (sc *searchContext) st(u graph.NodeID) *nodeState {
	s, ok := sc.state[u]
	if !ok {
		s = &nodeState{
			dist:        make([]float64, sc.nk),
			sp:          make([]graph.NodeID, sc.nk),
			act:         make([]float64, sc.nk),
			depth:       -1,
			lastEmitSum: math.Inf(1),
			invIn:       -1,
			invOut:      -1,
		}
		for i := 0; i < sc.nk; i++ {
			s.dist[i] = math.Inf(1)
			s.sp[i] = graph.InvalidNode
		}
		if b := sc.bits[u]; b != 0 {
			for i := 0; i < sc.nk; i++ {
				if b&(1<<i) != 0 {
					// Seed distances do not enter the bound tracker: mᵢ is
					// the minimum over nodes reached by backward expansion
					// ("nodes in the backward search trees", §4.5), not
					// over still-unexpanded origin nodes — otherwise one
					// large origin set would pin the bound at zero until
					// fully expanded, blocking all output. This is part of
					// the paper's looser-heuristic trade-off (answers may
					// release slightly out of order; §5.7 measures the
					// effect as negligible).
					s.dist[i] = 0
				}
			}
		}
		sc.state[u] = s
	}
	return s
}

// peekState returns the state of u without creating it.
func (sc *searchContext) peekState(u graph.NodeID) (*nodeState, bool) {
	s, ok := sc.state[u]
	return s, ok
}

// noteDist records a distance relaxation with the bound tracker. Call
// after updating s.dist[i] for a node that has not been backward-expanded.
func (sc *searchContext) noteDist(u graph.NodeID, s *nodeState, i int) {
	if !s.inXin {
		sc.boundHeaps[i].Improve(u, s.dist[i])
	}
}

// frontierMin returns mᵢ: the smallest known distance to keyword i among
// nodes not yet backward-expanded (∞ when none).
func (sc *searchContext) frontierMin(i int) float64 {
	h := sc.boundHeaps[i]
	for {
		u, d, ok := h.Peek()
		if !ok {
			return math.Inf(1)
		}
		if s, exists := sc.state[u]; exists && s.inXin {
			h.Pop()
			continue
		}
		return d
	}
}

// allowEdge applies the optional edge-type filter.
func (sc *searchContext) allowEdge(h graph.Half) bool {
	return sc.opts.EdgeFilter == nil || sc.opts.EdgeFilter(h.Type, h.Forward)
}

// complete reports whether node u has a known path to every keyword.
func (sc *searchContext) complete(s *nodeState) bool {
	for i := 0; i < sc.nk; i++ {
		if math.IsInf(s.dist[i], 1) {
			return false
		}
	}
	return true
}

// distSum returns Σᵢ dist_{u,i} (∞ if incomplete).
func (sc *searchContext) distSum(s *nodeState) float64 {
	sum := 0.0
	for i := 0; i < sc.nk; i++ {
		sum += s.dist[i]
	}
	return sum
}

// maybeEmit schedules the answer rooted at u for emission if u is
// complete and improved since its last emission (Figure 3's Emit). Tree
// construction is deferred: in lazy (heuristic-bound) mode the root joins
// the candidate heap and is built only if the bound ever releases it; in
// strict mode it joins the dirty list built at the next drain point.
func (sc *searchContext) maybeEmit(u graph.NodeID) {
	s, ok := sc.peekState(u)
	if !ok || !sc.complete(s) {
		return
	}
	if sc.lazy {
		if sc.out.released(u) {
			return
		}
		sum := sc.distSum(s)
		if sum >= s.lastEmitSum-1e-12 {
			return
		}
		s.lastEmitSum = sum
		s.genAt = sc.now
		s.genExplored = sc.stats.NodesExplored
		s.genTouched = sc.stats.NodesTouched
		sc.cands.Push(u, sum)
		return
	}
	if s.dirty {
		return
	}
	if sc.distSum(s) >= s.lastEmitSum-1e-12 {
		return
	}
	s.dirty = true
	sc.dirtyEmits = append(sc.dirtyEmits, pendingEmit{
		node:     u,
		at:       sc.now,
		explored: sc.stats.NodesExplored,
		touched:  sc.stats.NodesTouched,
	})
}

// buildFor constructs the current answer tree rooted at u, stamped with
// u's generation snapshot. It returns nil for non-minimal or inconsistent
// trees.
func (sc *searchContext) buildFor(u graph.NodeID) *Answer {
	s, ok := sc.peekState(u)
	if !ok {
		return nil
	}
	paths := make([][]graph.NodeID, sc.nk)
	for i := 0; i < sc.nk; i++ {
		p := sc.followSP(u, i)
		if p == nil {
			return nil
		}
		paths[i] = p
	}
	a := buildAnswer(sc.g, sc.opts, u, paths, sc.kwBits, sc.nk)
	if a == nil {
		return nil
	}
	a.GeneratedAt = s.genAt
	a.ExploredAtGen = s.genExplored
	a.TouchedAtGen = s.genTouched
	return a
}

// drainCands releases candidate roots whose distance sum beats the §4.5
// edge bound (every root when final), building trees lazily, sorting each
// eligible batch by relevance score. It returns true when k answers are
// out.
func (sc *searchContext) drainCands(edgeBound float64, final bool) bool {
	var batch []*Answer
	// On the final flush, build a few extra candidates beyond k so that
	// the relevance sort can still reorder near the cut.
	budget := sc.out.k - sc.out.len() + 2
	if final {
		budget = 4*sc.out.k + 64
	}
	built := 0
	for sc.cands.Len() > 0 && len(batch) < budget {
		u, sum, _ := sc.cands.Peek()
		if !final && sum >= edgeBound {
			break
		}
		sc.cands.Pop()
		if sc.out.released(u) {
			continue
		}
		if a := sc.buildFor(u); a != nil {
			if a.Score > sc.stats.BestGeneratedScore {
				sc.stats.BestGeneratedScore = a.Score
			}
			batch = append(batch, a)
			built++
			// Tree building dominates large-k flushes; honour the deadline
			// here too so a cancelled search cannot stall in its epilogue.
			if built%32 == 0 && sc.expired() {
				break
			}
		}
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Score > batch[j].Score })
	for _, a := range batch {
		sc.out.releaseBuilt(a)
	}
	return sc.out.full()
}

// flushEmits builds and buffers the answers of all queued emissions. It is
// called at every drain point and before final flush. Like drainCands it
// checks the deadline between tree builds.
func (sc *searchContext) flushEmits() {
	for n, pe := range sc.dirtyEmits {
		if n%32 == 31 && sc.expired() {
			// Tree building dominates large flushes; honour the deadline
			// and abandon the un-built remainder (the search is ending).
			break
		}
		s, ok := sc.peekState(pe.node)
		if !ok {
			continue
		}
		s.dirty = false
		sum := sc.distSum(s)
		if sum >= s.lastEmitSum-1e-12 {
			continue
		}
		s.lastEmitSum = sum

		paths := make([][]graph.NodeID, sc.nk)
		valid := true
		for i := 0; i < sc.nk; i++ {
			p := sc.followSP(pe.node, i)
			if p == nil {
				valid = false // inconsistent pointers; skip defensively
				break
			}
			paths[i] = p
		}
		if !valid {
			continue
		}
		if a := buildAnswer(sc.g, sc.opts, pe.node, paths, sc.kwBits, sc.nk); a != nil {
			a.GeneratedAt = pe.at
			a.ExploredAtGen = pe.explored
			a.TouchedAtGen = pe.touched
			sc.out.add(a)
		}
	}
	sc.dirtyEmits = sc.dirtyEmits[:0]
}

// followSP follows sp pointers from u toward keyword i, returning the node
// sequence u..keyword-node. Distances strictly decrease along sp edges, so
// the walk terminates; a nil return signals corrupted state.
func (sc *searchContext) followSP(u graph.NodeID, i int) []graph.NodeID {
	path := []graph.NodeID{u}
	cur := u
	for hops := 0; hops <= 4*sc.opts.DMax+8; hops++ {
		s, ok := sc.peekState(cur)
		if !ok {
			return nil
		}
		if s.dist[i] == 0 {
			return path
		}
		next := s.sp[i]
		if next == graph.InvalidNode {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return nil
}

// invSumIn returns Σ 1/w over allowed incoming combined edges of v,
// cached. It is the denominator for backward activation spreading (§4.3).
func (sc *searchContext) invSumIn(v graph.NodeID, s *nodeState) float64 {
	if s.invIn >= 0 {
		return s.invIn
	}
	sum := 0.0
	for _, h := range sc.g.Neighbors(v) {
		if !sc.allowEdge(h) {
			continue
		}
		sum += 1 / h.WIn // in-edge (h.To → v) has weight WIn
	}
	s.invIn = sum
	return sum
}

// invSumOut returns Σ 1/w over allowed outgoing combined edges of u,
// cached (forward activation spreading denominator).
func (sc *searchContext) invSumOut(u graph.NodeID, s *nodeState) float64 {
	if s.invOut >= 0 {
		return s.invOut
	}
	sum := 0.0
	for _, h := range sc.g.Neighbors(u) {
		if !sc.allowEdge(h) {
			continue
		}
		sum += 1 / h.WOut
	}
	s.invOut = sum
	return sum
}

// edgePriority returns the optional activation multiplier for an edge.
func (sc *searchContext) edgePriority(h graph.Half) float64 {
	if sc.opts.EdgePriority == nil {
		return 1
	}
	if p := sc.opts.EdgePriority(h.Type, h.Forward); p > 0 {
		return p
	}
	return 1
}

// totalActivation is a_u = Σᵢ a_{u,i} (§4.3).
func totalActivation(s *nodeState) float64 {
	sum := 0.0
	for _, a := range s.act {
		sum += a
	}
	return sum
}

// anyEmptyKeyword reports whether some keyword matches no nodes (no
// answers can exist then).
func anyEmptyKeyword(keywords [][]graph.NodeID) bool {
	for _, s := range keywords {
		if len(s) == 0 {
			return true
		}
	}
	return false
}

// finishResult stamps duration and packages the result.
func (sc *searchContext) finishResult() *Result {
	if sc.lazy {
		if !sc.out.full() {
			sc.drainCands(0, true)
		}
	} else {
		sc.flushEmits()
		sc.out.flush()
	}
	sc.stats.Duration = time.Since(sc.start)
	return &Result{Answers: sc.out.results(), Stats: *sc.stats}
}
