package core

import "time"

// Stats reports the performance counters of one search, matching the
// measures of §5.2: nodes explored (popped from a frontier queue and
// processed) and nodes touched (inserted into a frontier queue), plus
// timing detail separating answer generation from answer output.
type Stats struct {
	// NodesExplored counts frontier pops (Qin/Qout, or iterator steps for
	// MI-Backward).
	NodesExplored int
	// NodesTouched counts distinct node insertions into frontier queues.
	// For MI-Backward a node touched by three iterators counts three
	// times, reflecting its per-iterator state cost.
	NodesTouched int
	// EdgesRelaxed counts edge traversals (relaxation attempts).
	EdgesRelaxed int
	// AnswersGenerated counts answers inserted into the output buffer
	// (after minimality and duplicate filtering).
	AnswersGenerated int
	// BestGeneratedScore is the highest score of any answer generated
	// during the search, including answers later superseded or suppressed
	// by duplicate filtering. At frontier exhaustion all algorithms
	// converge to the same value (they all reach true shortest keyword
	// distances), which the invariant tests exploit; the *output* list can
	// order differently under the heuristic bound (§4.5).
	BestGeneratedScore float64
	// Duration is the total wall-clock time of the search.
	Duration time.Duration
	// LastGenerated is when (relative to search start) the last answer
	// that was eventually output was generated. The paper's "generation
	// time" metric (§5.2): an answer may be generated long before the
	// bound allows outputting it.
	LastGenerated time.Duration
	// LastOutput is when the last answer was released from the output
	// buffer.
	LastOutput time.Duration
	// WorkersUsed is the number of intra-query worker goroutines the
	// search actually ran with (0 = fully serial execution). It is the
	// only Stats field allowed to differ between serial and parallel runs
	// of the same query: everything else — answers, scores, orderings and
	// counters — is identical by the lock-step merge contract.
	WorkersUsed int
	// BudgetExhausted reports that MaxNodes stopped the search early.
	BudgetExhausted bool
	// Truncated reports that context cancellation or deadline expiry
	// stopped the search early; the Answers present are a valid partial
	// top-k prefix, but better answers may have been cut off.
	Truncated bool
}
