package core

import "testing"

func TestMergeTopKOrderingAndCut(t *testing.T) {
	a := mkAnswer(1, 0.9, TreeEdge{From: 1, To: 2})
	b := mkAnswer(3, 0.7, TreeEdge{From: 3, To: 4})
	c := mkAnswer(5, 0.8, TreeEdge{From: 5, To: 6})
	got := MergeTopK(2, []*Answer{b}, []*Answer{a, c})
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Fatalf("got %v, want [a c]", got)
	}
}

func TestMergeTopKStableTies(t *testing.T) {
	// Bit-equal scores keep arrival order: list order first, then
	// position within the list — mirroring the output heap's final sort,
	// which orders by score alone.
	a := mkAnswer(1, 0.5, TreeEdge{From: 1, To: 2})
	b := mkAnswer(3, 0.5, TreeEdge{From: 3, To: 4})
	c := mkAnswer(5, 0.5, TreeEdge{From: 5, To: 6})
	got := MergeTopK(10, []*Answer{a, b}, []*Answer{c})
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("tie order not preserved: got %v", got)
	}
}

func TestMergeTopKDedupeBySignature(t *testing.T) {
	// The same undirected tree discovered with different roots (a
	// rotation): only the better-scoring version survives.
	worse := mkAnswer(2, 0.4, TreeEdge{From: 2, To: 7})
	better := mkAnswer(7, 0.6, TreeEdge{From: 7, To: 2})
	if worse.Signature() != better.Signature() {
		t.Fatal("test setup: rotations must share a signature")
	}
	got := MergeTopK(10, []*Answer{worse}, []*Answer{better})
	if len(got) != 1 || got[0] != better {
		t.Fatalf("got %v, want [better]", got)
	}
	// First arrival wins an exact score tie (challenger must strictly beat).
	tie := mkAnswer(7, 0.4, TreeEdge{From: 7, To: 2})
	got = MergeTopK(10, []*Answer{worse}, []*Answer{tie})
	if len(got) != 1 || got[0] != worse {
		t.Fatalf("tie: got %v, want first arrival", got)
	}
}

func TestMergeTopKDedupeByRoot(t *testing.T) {
	worse := mkAnswer(2, 0.4, TreeEdge{From: 2, To: 7})
	better := mkAnswer(2, 0.6, TreeEdge{From: 2, To: 9})
	got := MergeTopK(10, []*Answer{worse, better})
	if len(got) != 1 || got[0] != better {
		t.Fatalf("got %v, want [better]", got)
	}
}

// TestMergeTopKEvictionConsistency pins the subtle case: when a
// challenger beats an incumbent in one map, the incumbent must vanish
// from BOTH maps, or a later duplicate check could resurrect or drop the
// wrong answer.
func TestMergeTopKEvictionConsistency(t *testing.T) {
	// x: root 1, tree A. y: root 1, tree B, better score (evicts x by
	// root). z: tree A again, root 3, score between — must survive,
	// because x (its signature twin) was already evicted.
	x := mkAnswer(1, 0.3, TreeEdge{From: 1, To: 2})
	y := mkAnswer(1, 0.9, TreeEdge{From: 1, To: 4})
	z := mkAnswer(3, 0.5, TreeEdge{From: 2, To: 1}) // same undirected tree as x
	if x.Signature() != z.Signature() {
		t.Fatal("test setup: x and z must share a signature")
	}
	got := MergeTopK(10, []*Answer{x, y, z})
	if len(got) != 2 || got[0] != y || got[1] != z {
		t.Fatalf("got %v, want [y z]", got)
	}
}

// TestMergeTopKDuplicateShardArrival pins the router failover case: the
// same shard's answer list arrives twice (a retry succeeded AND the
// original attempt's gather was also folded in). Replicas are
// deterministic, so the second arrival is a content-equal copy under
// fresh pointers — dedupe must keep exactly one instance of each answer
// (the first arrival, since a challenger must strictly beat), and the
// tie order against other shards' answers must be unchanged from the
// single-arrival merge.
func TestMergeTopKDuplicateShardArrival(t *testing.T) {
	// Shard A's list, decoded twice: equal content, distinct objects.
	mkShardA := func() []*Answer {
		return []*Answer{
			mkAnswer(1, 0.9, TreeEdge{From: 1, To: 2}),
			mkAnswer(3, 0.5, TreeEdge{From: 3, To: 4}),
		}
	}
	first := mkShardA()
	late := mkShardA()
	// Shard B carries a bit-equal 0.5 tie with shard A's second answer.
	b := []*Answer{mkAnswer(5, 0.5, TreeEdge{From: 5, To: 6})}

	want := MergeTopK(10, first, b)
	if len(want) != 3 || want[0] != first[0] || want[1] != first[1] || want[2] != b[0] {
		t.Fatalf("baseline merge wrong: %v", want)
	}
	got := MergeTopK(10, first, b, late)
	if len(got) != len(want) {
		t.Fatalf("duplicate arrival changed the answer count: %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: duplicate arrival changed the merge: got %v, want %v", i, got[i], want[i])
		}
	}
	// The late copies themselves must not appear — first arrival wins
	// the exact tie.
	for _, a := range got {
		if a == late[0] || a == late[1] {
			t.Fatal("a late duplicate displaced the original answer object")
		}
	}
}

func TestMergeTopKEdgeCases(t *testing.T) {
	if got := MergeTopK(0, []*Answer{mkAnswer(1, 0.5)}); got != nil {
		t.Fatalf("k=0: got %v", got)
	}
	if got := MergeTopK(3); len(got) != 0 {
		t.Fatalf("no lists: got %v", got)
	}
	if got := MergeTopK(3, nil, []*Answer{nil}); len(got) != 0 {
		t.Fatalf("nil entries: got %v", got)
	}
	// Single-node answers (no edges) sign by root and are distinct per root.
	a, b := mkAnswer(1, 0.5), mkAnswer(2, 0.6)
	if got := MergeTopK(10, []*Answer{a}, []*Answer{b}); len(got) != 2 {
		t.Fatalf("single-node answers: got %v", got)
	}
}
