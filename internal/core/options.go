// Package core implements the search algorithms of BANKS-II: Backward
// expanding search (§3) in both its multi-iterator (MI) and single-iterator
// (SI) variants, and the paper's contribution, Bidirectional expanding
// search with spreading-activation prioritization (§4).
//
// All algorithms share the answer model of §2.2–2.3: an answer is a
// minimal rooted directed tree embedded in the combined data graph,
// containing at least one node matching each query keyword, scored by
// EScore·N^λ where EScore = 1/(1+Σᵢ s(T,tᵢ)) derives from root→keyword
// path weights and N is the prestige of the root and the leaves.
package core

import (
	"errors"
	"fmt"

	"banks/internal/graph"
)

// MaxKeywords is the largest supported query size. The paper's workloads
// use 2–7 keywords; 16 leaves generous headroom while keeping per-node
// state compact.
const MaxKeywords = 16

// MaxWorkers caps Options.Workers. Larger requests are clamped here (a
// documented fallback, not an error): beyond this point extra goroutines
// only add scheduling overhead, and the cap keeps a forged or buggy
// request from spawning unbounded goroutines per query.
const MaxWorkers = 64

// OptionsError reports an invalid Options field. Every validation failure
// returned by the search entry points for bad options is of this type, so
// callers can test with errors.As and switch on Field.
type OptionsError struct {
	// Field names the offending Options field (e.g. "Workers").
	Field string
	// Reason describes the constraint that was violated.
	Reason string
}

func (e *OptionsError) Error() string { return "core: " + e.Field + " " + e.Reason }

// Default parameter values from the paper (§2.3, §4.2, §5.1).
const (
	DefaultMu     = 0.5
	DefaultLambda = 0.2
	DefaultDMax   = 8
	DefaultK      = 10
)

// Options configures a search. The zero value selects the paper's
// defaults.
type Options struct {
	// K is the number of answers to produce (top-k). Default 10.
	K int
	// Mu is the activation attenuation factor µ (§4.3). Default 0.5.
	// Only Bidirectional search uses it.
	Mu float64
	// Lambda weights node prestige in the overall tree score EScore·N^λ
	// (§2.3). Default 0.2.
	Lambda float64
	// DMax is the depth cutoff d_max (§4.2): nodes at this depth from the
	// nearest keyword node are not expanded further. Default 8.
	DMax int
	// MaxNodes bounds the number of node expansions (pops); 0 means
	// unlimited. When exhausted the search flushes buffered answers and
	// returns what it has.
	MaxNodes int
	// Workers selects intra-query parallelism: the number of worker
	// goroutines the search may use in addition to the coordinating
	// goroutine. 0 (the default) runs the fully serial implementation;
	// values ≥ 1 run the parallel machinery with that many workers (1 is
	// useful for exercising the machinery — it adds coordination overhead
	// without parallel speedup). Parallel execution is bit-identical to
	// serial by construction: answers, scores, orderings and all
	// deterministic Stats counters are unchanged; only wall-clock fields
	// and Stats.WorkersUsed differ. Bidirectional and MIBackward use
	// workers; SIBackward and Near are inherently sequential and ignore
	// the field (documented fallback, never an error). Values above
	// MaxWorkers are clamped; negative values are rejected with an
	// *OptionsError. When Workers ≥ 1, EdgeFilter and EdgePriority are
	// called from worker goroutines and must be pure and safe for
	// concurrent use (they are already required to be deterministic).
	Workers int
	// StrictBound selects the tighter upper-bound computation of §4.5
	// (tracking seen-but-incomplete nodes, NRA-style). The default (false)
	// is the paper's "looser heuristic" — cheaper, outputs faster, and
	// empirically correct order (§5.7); it is what their experiments use.
	StrictBound bool
	// ActivationSum switches per-keyword activation combination from max
	// to sum (the paper's footnote-6 extension backing "near queries",
	// appropriate for scoring models that aggregate multiple paths).
	ActivationSum bool
	// EdgeFilter, when non-nil, restricts traversal to edges for which it
	// returns true (the §1 extension "enforce constraints using edge types
	// to restrict search to specified search paths"). The forward flag
	// tells whether the combined edge being traversed is an original edge.
	EdgeFilter func(t graph.EdgeType, forward bool) bool
	// EdgePriority, when non-nil, multiplies the activation spread across
	// an edge (the §1 extension "prioritize certain paths over others").
	// It does not affect distances or scores, only search order.
	EdgePriority func(t graph.EdgeType, forward bool) float64
	// Emit, when non-nil, is invoked synchronously at the exact moment the
	// output heap releases an answer (§5.2's "output" event), on the
	// goroutine running the search. The emitted sequence is bit-identical
	// in content and order to the Result.Answers the search returns,
	// including truncated prefixes under cancellation. The callback must
	// not modify the answer and must not re-enter the search; it may
	// block, which stalls answer generation (the streaming layers build
	// their backpressure policies on exactly that). Emit never changes
	// what a search computes — only when the caller hears about it — but
	// it has no identity to cache on, so queries carrying it bypass the
	// engine result cache. Tree searches only; Near uses EmitNear.
	Emit func(EmittedAnswer)
	// EmitNear, when non-nil, receives each near-query result as it is
	// ranked (all at search end — activation ranking needs the full
	// spread; see EmittedNear). The emitted sequence is identical to the
	// returned slice. Same re-entrancy and caching caveats as Emit.
	EmitNear func(EmittedNear)
}

// Normalized returns the options with zero values replaced by the paper's
// defaults — the form the algorithms actually run with. Two Options values
// with equal Normalized() forms describe the same search, which the engine
// result cache relies on for canonical keys. (Workers is normalized only
// by clamping to MaxWorkers: it never changes what a search returns, only
// how many goroutines compute it, so cache keys may ignore it.)
func (o Options) Normalized() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = DefaultK
	}
	if o.Mu == 0 {
		o.Mu = DefaultMu
	}
	if o.Lambda == 0 {
		o.Lambda = DefaultLambda
	}
	if o.DMax == 0 {
		o.DMax = DefaultDMax
	}
	if o.Workers > MaxWorkers {
		o.Workers = MaxWorkers
	}
	return o
}

// Validate checks the options exactly as the search entry points do
// (defaults applied first), returning the same typed *OptionsError on the
// first invalid field. It exists for callers that must fail fast before
// launching an asynchronous search — the engine's streaming path
// validates here so an invalid request errors synchronously instead of
// surfacing after the stream has started.
func (o Options) Validate() error { return o.withDefaults().validate() }

func (o Options) validate() error {
	if o.K < 0 {
		return &OptionsError{Field: "K", Reason: "must be non-negative"}
	}
	// Both range checks are written as negated conjunctions so NaN —
	// which fails every comparison — lands in the error branch instead
	// of slipping through and poisoning scores downstream.
	if !(o.Mu > 0 && o.Mu < 1) {
		return &OptionsError{Field: "Mu", Reason: fmt.Sprintf("must be in (0,1), got %v", o.Mu)}
	}
	if !(o.Lambda >= 0) {
		return &OptionsError{Field: "Lambda", Reason: fmt.Sprintf("must be non-negative, got %v", o.Lambda)}
	}
	if o.DMax < 0 {
		return &OptionsError{Field: "DMax", Reason: "must be non-negative"}
	}
	if o.MaxNodes < 0 {
		return &OptionsError{Field: "MaxNodes", Reason: "must be non-negative"}
	}
	if o.Workers < 0 {
		return &OptionsError{Field: "Workers", Reason: "must be non-negative"}
	}
	return nil
}

func validateInput(g graph.View, keywords [][]graph.NodeID) error {
	// The typed-nil check catches callers passing a nil *graph.Graph
	// through the View interface (non-nil interface, nil concrete value).
	if g == nil || g == (graph.View)((*graph.Graph)(nil)) {
		return errors.New("core: nil graph")
	}
	if len(keywords) == 0 {
		return errors.New("core: no keywords")
	}
	if len(keywords) > MaxKeywords {
		return fmt.Errorf("core: %d keywords exceeds maximum %d", len(keywords), MaxKeywords)
	}
	n := graph.NodeID(g.NumNodes())
	for i, s := range keywords {
		for _, u := range s {
			if u < 0 || u >= n {
				return fmt.Errorf("core: keyword %d matches node %d outside graph", i, u)
			}
		}
	}
	return nil
}
