package core

import (
	"context"
	"fmt"

	"banks/internal/graph"
)

// Algo names a search strategy. It lives in core (rather than the public
// facade) so that both the banks package and internal/engine can dispatch
// on it without an import cycle.
type Algo string

// Available algorithms.
const (
	// AlgoBidirectional is the paper's contribution (§4).
	AlgoBidirectional Algo = "bidirectional"
	// AlgoSIBackward is single-iterator Backward expanding search (§4.6).
	AlgoSIBackward Algo = "si-backward"
	// AlgoMIBackward is the original Backward expanding search of BANKS (§3).
	AlgoMIBackward Algo = "mi-backward"
)

// Algos lists all supported algorithm names.
func Algos() []Algo {
	return []Algo{AlgoBidirectional, AlgoSIBackward, AlgoMIBackward}
}

// Search dispatches to the named algorithm. A nil ctx is treated as
// context.Background().
func Search(ctx context.Context, g graph.View, algo Algo, keywords [][]graph.NodeID, opts Options) (*Result, error) {
	switch algo {
	case AlgoBidirectional:
		return Bidirectional(ctx, g, keywords, opts)
	case AlgoSIBackward:
		return SIBackward(ctx, g, keywords, opts)
	case AlgoMIBackward:
		return MIBackward(ctx, g, keywords, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

// orBackground normalizes a nil context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
