package core

import (
	"context"
	"sort"
	"time"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// NearResult is one node of a near-query response, ranked by accumulated
// activation.
type NearResult struct {
	Node       graph.NodeID
	Activation float64
}

// Near implements the "near queries" extension (§4.3, footnote 6): instead
// of connecting trees, the response is a ranked list of nodes close to the
// keyword nodes, with per-keyword activations combined by summation so
// that multiple short paths reinforce each other (the aggregation used by
// ObjectRank-style scoring). Example: "papers near ‘recovery’ and
// ‘Gray’".
//
// The search runs the backward activation-spreading machinery alone: seed
// activation prestige(u)/|Sᵢ| at the keyword nodes, spread with
// attenuation µ across incoming edges in activation order, and return the
// k nodes with the highest total activation that were reached from every
// keyword.
//
// ctx bounds the spreading loop: on expiry the nodes activated so far are
// ranked and returned with Stats.Truncated set.
//
// Options.Workers is accepted but ignored (Stats.WorkersUsed stays 0):
// activation spreading pops nodes in activation order and every pop
// depends on the sums the previous pops accumulated, so the documented
// fallback is serial execution with results identical to any requested
// worker count.
func Near(ctx context.Context, g graph.View, keywords [][]graph.NodeID, opts Options) ([]NearResult, Stats, error) {
	opts = opts.withDefaults()
	opts.ActivationSum = true
	if err := opts.validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := validateInput(g, keywords); err != nil {
		return nil, Stats{}, err
	}
	sc := newSearchContext(orBackground(ctx), g, keywords, opts)
	if anyEmptyKeyword(keywords) || sc.expired() {
		return nil, *sc.stats, nil
	}

	q := pqueue.NewMax[graph.NodeID]()
	for i, si := range keywords {
		sz := float64(len(si))
		for _, u := range si {
			s := sc.st(u)
			s.depth = 0
			s.act[i] += g.Prestige(u) / sz
		}
	}
	for _, u := range sc.seedNodes() {
		q.Push(u, totalActivation(sc.st(u)))
		sc.stats.NodesTouched++
	}

	for q.Len() > 0 {
		if opts.MaxNodes > 0 && sc.stats.NodesExplored >= opts.MaxNodes {
			sc.stats.BudgetExhausted = true
			break
		}
		if sc.cancelled() {
			break
		}
		v, _, _ := q.Pop()
		sv := sc.st(v)
		sv.inXin = true
		sc.stats.NodesExplored++
		if int(sv.depth) >= opts.DMax {
			continue
		}
		invSum := sc.invSumIn(v, sv)
		if invSum <= 0 {
			continue
		}
		for _, h := range sc.g.Neighbors(v) {
			if !sc.allowEdge(h) {
				continue
			}
			u := h.To
			sc.stats.EdgesRelaxed++
			su := sc.st(u)
			share := (1 / h.WIn) / invSum * sc.edgePriority(h)
			improved := false
			for i := 0; i < sc.nk; i++ {
				if a := sv.act[i] * opts.Mu * share; a > 0 {
					su.act[i] += a
					improved = true
				}
			}
			if su.inXin {
				continue // spread once per node; sums stay bounded
			}
			if su.depth < 0 {
				su.depth = sv.depth + 1
			}
			if q.Contains(u) {
				if improved {
					q.Bump(u, totalActivation(su))
				}
			} else {
				q.Push(u, totalActivation(su))
				sc.stats.NodesTouched++
			}
		}
	}

	// Rank reached nodes that accumulated activation from every keyword.
	var out []NearResult
	for u, s := range sc.state {
		ok := true
		for i := 0; i < sc.nk; i++ {
			if s.act[i] <= 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, NearResult{Node: u, Activation: totalActivation(s)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Activation != out[j].Activation {
			return out[i].Activation > out[j].Activation
		}
		return out[i].Node < out[j].Node
	})
	if opts.K > 0 && len(out) > opts.K {
		out = out[:opts.K]
	}
	if opts.EmitNear != nil {
		// Emission happens before Duration is stamped so every OutputAt
		// offset lies inside the reported search duration.
		for i, nr := range out {
			opts.EmitNear(EmittedNear{Result: nr, Rank: i + 1, OutputAt: time.Since(sc.start)})
		}
	}
	res := sc.finishResult() // stamps Duration
	return out, res.Stats, nil
}
