package core

import (
	"sync"
	"sync/atomic"
)

// Parallel MI-Backward production.
//
// The per-keyword-node Dijkstra iterators of Backward search are
// independent by construction (§3): an iterator's entire mutable state —
// frontier, dist, next, depth, settled — is iterator-local, and the only
// cross-iterator coupling is the global schedule (which iterator settles
// next) and the answer emission it triggers. Parallel mode exploits that:
// worker goroutines run the iterators ahead speculatively, streaming settle
// events through per-iterator bounded buffers, while the coordinator
// (miSearch.run) consumes events in exactly the serial schedule order —
// the same sched heap, fed the same priorities in the same sequence. Every
// globally visible effect (reach recording, emission, output-heap drains,
// Stats) happens on the coordinator in that order, so the results are
// bit-identical to Workers == 0; differential_test.go enforces this on
// randomized graphs, and the golden pins tie both modes to the pre-refactor
// outputs.
//
// Backpressure and shutdown: buffers bound speculation, so an early stop
// (k answers out, MaxNodes, cancellation) wastes at most
// batch*(miBatchChans+1) settles per iterator. Workers never consult the
// search context — cancellation is observed by the coordinator at the
// same amortized cadence as in serial mode (identical Truncated prefixes),
// which then closes done to release the producers.

const (
	// miMaxBatch/miMinBatch bound how many settle events a worker packs
	// into one channel send. Batching amortizes channel synchronization
	// without affecting the merge order (the coordinator unpacks in
	// sequence), but the buffered lookahead is also the speculation the
	// merge may never consume — so the batch size adapts: deep lookahead
	// when the query has few iterators (each is consumed often), shallow
	// when it has thousands (frequent-term origins, where deep buffers
	// would multiply wasted work on budget-bounded searches).
	miMaxBatch = 16
	miMinBatch = 4
	// miBatchChans is the per-iterator channel capacity in batches.
	miBatchChans = 1
)

// miSpecBudget is the target total speculative lookahead in events across
// all iterators (batch = clamp(miSpecBudget/iters, min, max)). A variable
// so tests can lower it to drive small graphs through the shallow-batch
// path.
var miSpecBudget = 4096

// miParallel carries the producer-side plumbing of one parallel search.
type miParallel struct {
	nw    int
	batch int
	// chans[idx] streams iterator idx's event batches, closed at
	// exhaustion. Only the owning worker sends on it, so a send after a
	// successful capacity check never blocks.
	chans []chan []miEvent
	// pending/cursor hold the coordinator's partially consumed batch.
	pending [][]miEvent
	cursor  []int
	// consumed[idx] counts batches the coordinator has received from
	// chans[idx]. Workers judge buffer capacity as sent-consumed rather
	// than len(chan): an atomic load is guaranteed fresh, where a plain
	// len read of a channel the coordinator just drained has no
	// happens-before edge and could (per the memory model) stay stale
	// forever, wedging a worker into sleeping on a full-looking buffer.
	consumed []atomic.Int64
	// wake[w] (capacity 1) tells worker w that buffer space opened up.
	// The coordinator bumps consumed before pinging, so a worker that
	// finds a wake token pending is guaranteed to see the freed slot on
	// its rescan — a dropped ping (token already present) can never be a
	// lost wakeup.
	wake []chan struct{}
	// done broadcasts coordinator shutdown.
	done chan struct{}
	wg   sync.WaitGroup
}

// runParallel runs the merge loop against worker-produced event streams.
// Iterator ownership passes to the workers here: the coordinator must not
// touch m.iters afterwards (it reads events only).
func (m *miSearch) runParallel(workers int) {
	if workers > len(m.iters) {
		workers = len(m.iters)
	}
	batch := miSpecBudget / len(m.iters)
	if batch > miMaxBatch {
		batch = miMaxBatch
	}
	if batch < miMinBatch {
		batch = miMinBatch
	}
	p := &miParallel{
		nw:       workers,
		batch:    batch,
		chans:    make([]chan []miEvent, len(m.iters)),
		pending:  make([][]miEvent, len(m.iters)),
		cursor:   make([]int, len(m.iters)),
		consumed: make([]atomic.Int64, len(m.iters)),
		wake:     make([]chan struct{}, workers),
		done:     make(chan struct{}),
	}
	for i := range p.chans {
		p.chans[i] = make(chan []miEvent, miBatchChans)
	}
	m.stats.WorkersUsed = workers
	for w := 0; w < workers; w++ {
		p.wake[w] = make(chan struct{}, 1)
		p.wg.Add(1)
		go m.produce(p, w)
	}
	m.source = p.next
	m.run()
	close(p.done)
	p.wg.Wait()
}

// next is the parallel event source: it serves iterator idx's stream in
// production order, refilling from the channel batch by batch.
func (p *miParallel) next(idx int) (miEvent, bool) {
	if p.cursor[idx] >= len(p.pending[idx]) {
		b, ok := <-p.chans[idx]
		if !ok {
			return miEvent{}, false
		}
		p.pending[idx], p.cursor[idx] = b, 0
		// Publish the freed slot, then wake the producing worker. Order
		// matters: the bump must be visible before any wake token the
		// worker might consume instead of this (possibly dropped) ping.
		p.consumed[idx].Add(1)
		select {
		case p.wake[idx%p.nw] <- struct{}{}:
		default:
		}
	}
	ev := p.pending[idx][p.cursor[idx]]
	p.cursor[idx]++
	return ev, true
}

// produce is one worker: it owns the iterators idx ≡ w (mod nw) and keeps
// each one's buffer full, sleeping on wake when every owned buffer is at
// capacity. Workers skip full buffers instead of blocking on them —
// blocking on one iterator while the coordinator waits for another of the
// same worker would deadlock the merge.
func (m *miSearch) produce(p *miParallel, w int) {
	defer p.wg.Done()
	type ownedIter struct {
		idx  int
		it   *miIterator
		sent int64
	}
	var owned []ownedIter
	for idx := w; idx < len(m.iters); idx += p.nw {
		owned = append(owned, ownedIter{idx: idx, it: m.iters[idx]})
	}
	for {
		progressed := false
		// Iterate by index over a slice that swap-deletes exhausted
		// entries: frequent-term queries seed thousands of iterators most
		// of which die within a few settles, and rescanning corpses on
		// every wake-up would dominate the producer loop.
		for i := 0; i < len(owned); {
			o := &owned[i]
			// Capacity is judged as sent-consumed (see miParallel.consumed
			// for why not len(chan)). Only this goroutine sends on
			// chans[o.idx], so a send after the capacity check cannot
			// block; the done case is shutdown insurance only.
			for o.sent-p.consumed[o.idx].Load() < miBatchChans {
				batch := make([]miEvent, 0, p.batch)
				exhausted := false
				for len(batch) < p.batch {
					var ev miEvent
					if !o.it.advance(m.g, &m.opts, &ev) {
						exhausted = true
						break
					}
					batch = append(batch, ev)
				}
				if len(batch) > 0 {
					select {
					case p.chans[o.idx] <- batch:
						o.sent++
						progressed = true
					case <-p.done:
						return
					}
				}
				if exhausted {
					close(p.chans[o.idx])
					o.it = nil
					break
				}
			}
			if o.it == nil {
				owned[i] = owned[len(owned)-1]
				owned = owned[:len(owned)-1]
				continue
			}
			i++
		}
		if len(owned) == 0 {
			return
		}
		if !progressed {
			select {
			case <-p.wake[w]:
			case <-p.done:
				return
			}
		}
	}
}
