package core

import (
	"math"
	"testing"

	"banks/internal/graph"
)

// algorithms under test, by name, for table-driven runs (context-free
// wrappers around the ctx-aware entry points).
var algorithms = map[string]func(*graph.Graph, [][]graph.NodeID, Options) (*Result, error){
	"bidirectional": func(g *graph.Graph, kw [][]graph.NodeID, o Options) (*Result, error) {
		return Bidirectional(nil, g, kw, o)
	},
	"si-backward": func(g *graph.Graph, kw [][]graph.NodeID, o Options) (*Result, error) {
		return SIBackward(nil, g, kw, o)
	},
	"mi-backward": func(g *graph.Graph, kw [][]graph.NodeID, o Options) (*Result, error) {
		return MIBackward(nil, g, kw, o)
	},
}

// grayGraph builds the classic "Gray transaction" scenario:
//
//	author Gray(0), author Other(1)
//	paper  T1(2) "transaction" by Gray, paper T2(3) "transaction" by Other
//	writes W1(4): Gray→T1, W2(5): Other→T2
//
// writes rows have FKs to author and paper, so edges W→A and W→P.
func grayGraph(t *testing.T) (*graph.Graph, [][]graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	gray := b.AddNode("author")  // 0
	other := b.AddNode("author") // 1
	t1 := b.AddNode("paper")     // 2
	t2 := b.AddNode("paper")     // 3
	w1 := b.AddNode("writes")    // 4
	w2 := b.AddNode("writes")    // 5
	for _, e := range [][2]graph.NodeID{{w1, gray}, {w1, t1}, {w2, other}, {w2, t2}} {
		if err := b.AddEdge(e[0], e[1], 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	p := make([]float64, g.NumNodes())
	for i := range p {
		p[i] = 1
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	// keywords: "gray" → {0}, "transaction" → {2,3}
	return g, [][]graph.NodeID{{gray}, {t1, t2}}
}

func TestAllAlgorithmsFindGrayTransaction(t *testing.T) {
	g, kw := grayGraph(t)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answers", name)
		}
		best := res.Answers[0]
		// Best answer must connect Gray(0) and T1(2) through W1(4).
		wantNodes := map[graph.NodeID]bool{0: true, 2: true, 4: true}
		got := map[graph.NodeID]bool{}
		for _, u := range best.Nodes {
			got[u] = true
		}
		for u := range wantNodes {
			if !got[u] {
				t.Fatalf("%s: best answer %v missing node %d", name, best, u)
			}
		}
		if got[3] || got[5] || got[1] {
			t.Fatalf("%s: best answer %v includes the unrelated paper's nodes", name, best)
		}
		// Root must be the writes node (only node with forward paths to
		// both keywords at minimal cost) — or the answer tree must at
		// least cover both keywords.
		if len(best.KeywordNodes) != 2 {
			t.Fatalf("%s: keyword nodes %v", name, best.KeywordNodes)
		}
		verifyAnswer(t, g, kw, best, Options{K: 5}.withDefaults())
	}
}

func TestAlgorithmsAgreeOnBestScore(t *testing.T) {
	g, kw := grayGraph(t)
	scores := map[string]float64{}
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 10, DMax: 10})
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, a := range res.Answers {
			if a.Score > best {
				best = a.Score
			}
		}
		scores[name] = best
	}
	if math.Abs(scores["bidirectional"]-scores["si-backward"]) > 1e-9 ||
		math.Abs(scores["mi-backward"]-scores["si-backward"]) > 1e-9 {
		t.Fatalf("best scores diverge: %v", scores)
	}
}

func TestSingleNodeAnswer(t *testing.T) {
	// One paper contains both keywords: the minimal answer is the single
	// node itself.
	b := graph.NewBuilder()
	p := b.AddNode("paper")
	q := b.AddNode("paper")
	if err := b.AddEdge(p, q, 1, 0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	_ = g.SetPrestige([]float64{1, 1})
	kw := [][]graph.NodeID{{p}, {p, q}}
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answers", name)
		}
		best := res.Answers[0]
		if best.Size() != 1 || best.Root != p {
			t.Fatalf("%s: want single-node answer at %d, got %v", name, p, best)
		}
		if best.EdgeScore != 0 {
			t.Fatalf("%s: single-node edge score = %v", name, best.EdgeScore)
		}
	}
}

func TestEmptyKeywordSetNoAnswers(t *testing.T) {
	g, kw := grayGraph(t)
	kw = append(kw, nil) // third keyword matches nothing
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Answers) != 0 {
			t.Fatalf("%s: expected no answers with an unmatched keyword", name)
		}
	}
}

func TestInputValidation(t *testing.T) {
	g, kw := grayGraph(t)
	for name, algo := range algorithms {
		if _, err := algo(nil, kw, Options{}); err == nil {
			t.Errorf("%s: nil graph accepted", name)
		}
		if _, err := algo(g, nil, Options{}); err == nil {
			t.Errorf("%s: empty keywords accepted", name)
		}
		if _, err := algo(g, [][]graph.NodeID{{999}}, Options{}); err == nil {
			t.Errorf("%s: out-of-range node accepted", name)
		}
		too := make([][]graph.NodeID, MaxKeywords+1)
		for i := range too {
			too[i] = []graph.NodeID{0}
		}
		if _, err := algo(g, too, Options{}); err == nil {
			t.Errorf("%s: too many keywords accepted", name)
		}
		if _, err := algo(g, kw, Options{Mu: 2}); err == nil {
			t.Errorf("%s: bad Mu accepted", name)
		}
		if _, err := algo(g, kw, Options{K: -1}); err == nil {
			t.Errorf("%s: negative K accepted", name)
		}
		if _, err := algo(g, kw, Options{DMax: -2}); err == nil {
			t.Errorf("%s: negative DMax accepted", name)
		}
	}
}

func TestKLimitsOutput(t *testing.T) {
	g, kw := grayGraph(t)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != 1 {
			t.Fatalf("%s: K=1 returned %d answers", name, len(res.Answers))
		}
	}
}

func TestZeroOptionsMeanPaperDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.K != DefaultK || o.Mu != DefaultMu || o.Lambda != DefaultLambda || o.DMax != DefaultDMax {
		t.Fatalf("withDefaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{K: 3, Mu: 0.7, Lambda: 0.5, DMax: 4}.withDefaults()
	if o.K != 3 || o.Mu != 0.7 || o.Lambda != 0.5 || o.DMax != 4 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", o)
	}
}

func TestMaxNodesBudget(t *testing.T) {
	g, kw := chainGraph(t, 64)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{MaxNodes: 3, K: 10, DMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.BudgetExhausted {
			t.Fatalf("%s: budget not reported exhausted", name)
		}
		if res.Stats.NodesExplored > 4 {
			t.Fatalf("%s: explored %d nodes with budget 3", name, res.Stats.NodesExplored)
		}
	}
}

// chainGraph builds a path of n nodes with keywords at the two ends.
func chainGraph(t *testing.T, n int) (*graph.Graph, [][]graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNodes("t", n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	_ = g.SetPrestige(p)
	return g, [][]graph.NodeID{{0}, {graph.NodeID(n - 1)}}
}

func TestChainAnswerPathLength(t *testing.T) {
	g, kw := chainGraph(t, 6)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 1, DMax: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%s: no answer on chain", name)
		}
		a := res.Answers[0]
		if a.Size() != 6 {
			t.Fatalf("%s: chain answer has %d nodes, want 6: %v", name, a.Size(), a)
		}
		verifyAnswer(t, g, kw, a, Options{K: 1, DMax: 10}.withDefaults())
	}
}

func TestDMaxCutsLongChain(t *testing.T) {
	// Ends are 20 hops apart; with DMax 8 the backward searches cannot
	// meet (depth limit), so no answers.
	g, kw := chainGraph(t, 21)
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 1, DMax: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != 0 {
			t.Fatalf("%s: DMax=8 should not bridge a 20-hop chain, got %v", name, res.Answers[0])
		}
	}
}

func TestMinimalityRootWithOneChildDiscarded(t *testing.T) {
	// v(0) → a(1), a → k1(2), a → k2(3). Keywords at k1, k2.
	// Tree rooted at v via single child a is non-minimal: the subtree at a
	// covers both keywords and must be the reported answer.
	b := graph.NewBuilder()
	v := b.AddNode("t")
	a := b.AddNode("t")
	k1 := b.AddNode("t")
	k2 := b.AddNode("t")
	_ = b.AddEdge(v, a, 1, 0)
	_ = b.AddEdge(a, k1, 1, 0)
	_ = b.AddEdge(a, k2, 1, 0)
	g := b.Build()
	_ = g.SetPrestige([]float64{1, 1, 1, 1})
	kw := [][]graph.NodeID{{k1}, {k2}}
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 10, DMax: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, ans := range res.Answers {
			if ans.Root == v {
				t.Fatalf("%s: non-minimal tree rooted at %d emitted: %v", name, v, ans)
			}
		}
		if len(res.Answers) == 0 || res.Answers[0].Root != a {
			t.Fatalf("%s: expected answer rooted at %d, got %v", name, a, res.Answers)
		}
	}
}

func TestRootKeptWhenItCoversAKeyword(t *testing.T) {
	// r(0) matches keyword 1 and has a single child k(1) matching keyword
	// 2: the tree rooted at r is minimal despite the single child. An
	// extra edge x→k raises indeg(k), making the k-rooted rotation (which
	// must climb the backward edge k→r) strictly worse, so rotation dedup
	// (§4.6) keeps the r-rooted version.
	b := graph.NewBuilder()
	r := b.AddNode("t")
	k := b.AddNode("t")
	x := b.AddNode("t")
	_ = b.AddEdge(r, k, 1, 0)
	_ = b.AddEdge(x, k, 1, 0)
	g := b.Build()
	_ = g.SetPrestige([]float64{1, 1, 1})
	kw := [][]graph.NodeID{{r}, {k}}
	for name, algo := range algorithms {
		res, err := algo(g, kw, Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, ans := range res.Answers {
			if ans.Root == r && ans.Size() == 2 {
				found = true
			}
			if ans.Root == k && ans.Size() == 2 {
				t.Fatalf("%s: lower-scoring rotation rooted at %d output alongside the better one: %v",
					name, k, res.Answers)
			}
		}
		if !found {
			t.Fatalf("%s: two-node answer rooted at %d not found: %v", name, r, res.Answers)
		}
	}
}

// verifyAnswer checks the structural invariants of an emitted answer:
// rooted connected tree, full keyword coverage, consistent score.
func verifyAnswer(t *testing.T, g *graph.Graph, kw [][]graph.NodeID, a *Answer, opts Options) {
	t.Helper()
	if len(a.Nodes) == 0 || a.Nodes[0] != a.Root {
		t.Fatalf("answer nodes must start with root: %v", a)
	}
	// Each non-root node has exactly one incoming tree edge.
	parents := map[graph.NodeID]graph.NodeID{}
	for _, e := range a.Edges {
		if _, dup := parents[e.To]; dup {
			t.Fatalf("node %d has two parents: %v", e.To, a)
		}
		parents[e.To] = e.From
		if e.Weight <= 0 {
			t.Fatalf("non-positive tree edge weight: %v", a)
		}
	}
	if len(a.Edges) != len(a.Nodes)-1 {
		t.Fatalf("tree has %d edges for %d nodes: %v", len(a.Edges), len(a.Nodes), a)
	}
	// Connectivity: every node walks up to the root.
	for _, u := range a.Nodes {
		cur := u
		for steps := 0; cur != a.Root; steps++ {
			p, ok := parents[cur]
			if !ok || steps > len(a.Nodes) {
				t.Fatalf("node %d not connected to root: %v", u, a)
			}
			cur = p
		}
	}
	// Keyword coverage.
	inTree := map[graph.NodeID]bool{}
	for _, u := range a.Nodes {
		inTree[u] = true
	}
	for i, si := range kw {
		node := a.KeywordNodes[i]
		if !inTree[node] {
			t.Fatalf("keyword %d node %d not in tree: %v", i, node, a)
		}
		found := false
		for _, u := range si {
			if u == node {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("keyword %d node %d does not match the keyword: %v", i, node, a)
		}
	}
	// Score recomputation.
	want := overallScore(a.EdgeScore, a.NodeScore, opts.Lambda)
	if math.Abs(want-a.Score) > 1e-12 {
		t.Fatalf("score mismatch: %v vs %v", a.Score, want)
	}
	// Every edge must exist in the combined graph with that weight.
	for _, e := range a.Edges {
		w, _, _, ok := minEdge(g, e.From, e.To, nil)
		if !ok || math.Abs(w-e.Weight) > 1e-9 {
			t.Fatalf("tree edge %d→%d (w=%v) not in graph (min=%v, ok=%v)", e.From, e.To, e.Weight, w, ok)
		}
	}
}
