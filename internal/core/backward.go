package core

import (
	"context"
	"math"
	"time"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// MIBackward runs the original Backward expanding search of BANKS (§3):
// one single-source shortest-path (Dijkstra) iterator per keyword node,
// each traversing combined edges in reverse, globally scheduled by the
// distance of the next frontier node. A node settled by iterators covering
// every keyword becomes an answer root.
//
// The per-iterator visited lists deliberately reproduce the algorithm's
// memory behaviour: a node reached by many iterators is stored once per
// iterator, which is exactly the cost §4.2.1 criticizes.
//
// ctx bounds the search: on expiry the answers buffered so far are flushed
// as a partial top-k with Stats.Truncated set.
func MIBackward(ctx context.Context, g *graph.Graph, keywords [][]graph.NodeID, opts Options) (*Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validateInput(g, keywords); err != nil {
		return nil, err
	}
	start := time.Now()
	stats := &Stats{}
	out := newOutputHeap(opts.K, !opts.StrictBound, start, stats)
	m := &miSearch{
		canceller: newCanceller(ctx, stats),
		g:         g,
		opts:      opts,
		nk:        len(keywords),
		kw:        keywords,
		bits:      make(map[graph.NodeID]uint32),
		glob:      make(map[graph.NodeID]*miGlobal),
		out:       out,
		stats:     stats,
		sched:     pqueue.NewMin[int](),
	}
	for i, s := range keywords {
		for _, u := range s {
			m.bits[u] |= 1 << i
		}
	}
	if !m.expired() && !anyEmptyKeyword(keywords) {
		m.seed()
		m.run()
	}
	stats.Duration = time.Since(start)
	return &Result{Answers: out.results(), Stats: *stats}, nil
}

// miIterator is one single-source shortest-path iterator (§3): Dijkstra
// from a keyword node over reversed combined edges.
type miIterator struct {
	origin graph.NodeID
	kwIdx  int
	// cachedIdx is this iterator's index in miSearch.iters (-1 until
	// resolved).
	cachedIdx int32

	frontier *pqueue.Heap[graph.NodeID]
	dist     map[graph.NodeID]float64
	next     map[graph.NodeID]graph.NodeID // next hop toward the origin
	depth    map[graph.NodeID]int32
	settled  map[graph.NodeID]struct{}
}

// miGlobal is the cross-iterator state of one node: the best settled
// distance and owning iterator per keyword.
type miGlobal struct {
	dist        []float64
	it          []int32
	lastEmitSum float64
}

type miSearch struct {
	canceller

	g     *graph.Graph
	opts  Options
	nk    int
	kw    [][]graph.NodeID
	bits  map[graph.NodeID]uint32
	iters []*miIterator
	glob  map[graph.NodeID]*miGlobal
	out   *outputHeap
	stats *Stats
	sched *pqueue.Heap[int]
}

func (m *miSearch) seed() {
	for i, si := range m.kw {
		for _, u := range si {
			it := &miIterator{
				origin:    u,
				kwIdx:     i,
				cachedIdx: int32(len(m.iters)),
				frontier:  pqueue.NewMin[graph.NodeID](),
				dist:      map[graph.NodeID]float64{u: 0},
				next:      map[graph.NodeID]graph.NodeID{u: graph.InvalidNode},
				depth:     map[graph.NodeID]int32{u: 0},
				settled:   make(map[graph.NodeID]struct{}),
			}
			it.frontier.Push(u, 0)
			m.stats.NodesTouched++
			m.iters = append(m.iters, it)
			m.sched.Push(len(m.iters)-1, 0)
		}
	}
}

func (m *miSearch) run() {
	const boundEvery = 32
	sinceBound := 0
	for m.sched.Len() > 0 {
		if m.out.full() {
			return
		}
		if m.opts.MaxNodes > 0 && m.stats.NodesExplored >= m.opts.MaxNodes {
			m.stats.BudgetExhausted = true
			break
		}
		if m.cancelled() {
			break
		}
		idx, _, _ := m.sched.Pop()
		m.step(m.iters[idx])
		if _, d, ok := m.iters[idx].frontier.Peek(); ok {
			m.sched.Push(idx, d)
		}
		sinceBound++
		if sinceBound >= boundEvery {
			sinceBound = 0
			score, edge := m.upperBound()
			if m.out.drain(score, edge) {
				return
			}
		}
	}
	m.out.flush()
}

// step runs one getnext() of the iterator (§3): settle the minimum-
// distance frontier node, record the reach globally, and expand the
// frontier across incoming combined edges.
func (m *miSearch) step(it *miIterator) {
	v, d, ok := it.frontier.Pop()
	if !ok {
		return
	}
	it.settled[v] = struct{}{}
	m.stats.NodesExplored++
	m.recordReach(v, d, it)

	if int(it.depth[v]) >= m.opts.DMax {
		return
	}
	for _, h := range m.g.Neighbors(v) {
		if m.opts.EdgeFilter != nil && !m.opts.EdgeFilter(h.Type, h.Forward) {
			continue
		}
		u := h.To
		if _, done := it.settled[u]; done {
			continue
		}
		m.stats.EdgesRelaxed++
		nd := d + h.WIn
		old, seen := it.dist[u]
		if !seen || nd < old {
			it.dist[u] = nd
			it.next[u] = v
			it.depth[u] = it.depth[v] + 1
			if it.frontier.Contains(u) {
				it.frontier.Bump(u, nd)
			} else {
				it.frontier.Push(u, nd)
				m.stats.NodesTouched++
			}
		}
	}
}

// recordReach merges a settled (node, dist) pair into the node's global
// state; if the node is now reached from every keyword, answers are
// emitted (the visited-list intersection test of §3). Unlike the
// single-iterator algorithms, Backward search generates a tree per
// iterator combination (§4.6: it "keeps shortest paths to each node
// containing the keyword"), so every settle of a complete node emits the
// combination routing its keyword through the settling iterator; the
// output heap filters duplicates and keeps the best-scoring variants.
func (m *miSearch) recordReach(v graph.NodeID, d float64, it *miIterator) {
	gn, ok := m.glob[v]
	if !ok {
		gn = &miGlobal{
			dist:        make([]float64, m.nk),
			it:          make([]int32, m.nk),
			lastEmitSum: math.Inf(1),
		}
		for i := range gn.dist {
			gn.dist[i] = math.Inf(1)
			gn.it[i] = -1
		}
		m.glob[v] = gn
	}
	idx := m.iterIndex(it)
	if d < gn.dist[it.kwIdx] {
		gn.dist[it.kwIdx] = d
		gn.it[it.kwIdx] = idx
	}
	m.maybeEmit(v, gn)
	// Emit the variant that reaches keyword kwIdx through this specific
	// iterator even when it is not the closest origin — Backward search
	// keeps all such per-origin trees, and a longer path may end at a
	// higher-prestige leaf.
	if gn.it[it.kwIdx] != idx {
		m.emitVariant(v, gn, it.kwIdx, idx)
	}
}

// emitVariant emits the tree rooted at v whose path for keyword kw goes
// through iterator override, with all other keywords routed through their
// best iterators. No-op while v is incomplete.
func (m *miSearch) emitVariant(v graph.NodeID, gn *miGlobal, kw int, override int32) {
	for i := 0; i < m.nk; i++ {
		if gn.it[i] < 0 {
			return
		}
	}
	its := make([]int32, m.nk)
	copy(its, gn.it)
	its[kw] = override
	m.emitCombination(v, its)
}

// iterIndex returns the scheduler index of it (assigned at seed time).
func (m *miSearch) iterIndex(it *miIterator) int32 { return it.cachedIdx }

func (m *miSearch) maybeEmit(v graph.NodeID, gn *miGlobal) {
	sum := 0.0
	for i := 0; i < m.nk; i++ {
		if math.IsInf(gn.dist[i], 1) {
			return
		}
		sum += gn.dist[i]
	}
	if sum >= gn.lastEmitSum-1e-12 {
		return
	}
	gn.lastEmitSum = sum
	m.emitCombination(v, gn.it)
}

// emitCombination builds and buffers the answer rooted at v with keyword i
// reached through iterator its[i].
func (m *miSearch) emitCombination(v graph.NodeID, its []int32) {
	paths := make([][]graph.NodeID, m.nk)
	for i := 0; i < m.nk; i++ {
		it := m.iters[its[i]]
		path := []graph.NodeID{v}
		cur := v
		for cur != it.origin {
			nxt, ok := it.next[cur]
			if !ok || nxt == graph.InvalidNode {
				return // defensive: broken chain
			}
			path = append(path, nxt)
			cur = nxt
		}
		paths[i] = path
	}
	kwBits := func(u graph.NodeID) uint32 { return m.bits[u] }
	if a := buildAnswer(m.g, m.opts, v, paths, kwBits, m.nk); a != nil {
		m.out.add(a)
	}
}

// upperBound is the §4.5 bound adapted to multiple iterators: mᵢ is the
// smallest next-frontier distance among keyword i's iterators.
func (m *miSearch) upperBound() (score, edge float64) {
	mi := make([]float64, m.nk)
	for i := range mi {
		mi[i] = math.Inf(1)
	}
	for _, it := range m.iters {
		if _, d, ok := it.frontier.Peek(); ok && d < mi[it.kwIdx] {
			mi[it.kwIdx] = d
		}
	}
	h := 0.0
	for i := 0; i < m.nk; i++ {
		if math.IsInf(mi[i], 1) {
			// Keyword i's iterators are exhausted: existing distances are
			// final; future answers can only combine already-known reaches
			// for i, so treat its contribution as 0 (conservative).
			continue
		}
		h += mi[i]
	}
	if m.sched.Len() == 0 {
		return 0, math.Inf(1)
	}
	return scoreUpperBound(m.g, h, m.nk, m.opts.Lambda), h
}
