package core

import (
	"context"
	"math"
	"time"

	"banks/internal/graph"
	"banks/internal/pqueue"
)

// MIBackward runs the original Backward expanding search of BANKS (§3):
// one single-source shortest-path (Dijkstra) iterator per keyword node,
// each traversing combined edges in reverse, globally scheduled by the
// distance of the next frontier node. A node settled by iterators covering
// every keyword becomes an answer root.
//
// The per-iterator visited lists deliberately reproduce the algorithm's
// memory behaviour: a node reached by many iterators is stored once per
// iterator, which is exactly the cost §4.2.1 criticizes.
//
// The search is structured as a deterministic merge over per-iterator
// event streams: each iterator's advance (settle + expand) touches only
// iterator-local state and yields a miEvent, and a single coordinator
// applies events in the schedule order of the serial loop. With
// opts.Workers == 0 events are produced inline; with Workers ≥ 1 they are
// produced speculatively by worker goroutines (backward_parallel.go). The
// merge order — and therefore every answer, score, tie-break and counter —
// is identical in both modes.
//
// ctx bounds the search: on expiry the answers buffered so far are flushed
// as a partial top-k with Stats.Truncated set.
func MIBackward(ctx context.Context, g graph.View, keywords [][]graph.NodeID, opts Options) (*Result, error) {
	ctx = orBackground(ctx)
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validateInput(g, keywords); err != nil {
		return nil, err
	}
	start := time.Now()
	stats := &Stats{}
	out := newOutputHeap(opts.K, !opts.StrictBound, start, stats, opts.Emit)
	m := &miSearch{
		canceller: newCanceller(ctx, stats),
		g:         g,
		opts:      opts,
		nk:        len(keywords),
		kw:        keywords,
		bits:      make(map[graph.NodeID]uint32),
		glob:      make(map[graph.NodeID]*miGlobal),
		out:       out,
		stats:     stats,
		sched:     pqueue.NewMin[int](),
	}
	for i, s := range keywords {
		for _, u := range s {
			m.bits[u] |= 1 << i
		}
	}
	if !m.expired() && !anyEmptyKeyword(keywords) {
		m.seed()
		if opts.Workers >= 1 {
			m.runParallel(opts.Workers)
		} else {
			m.source = m.serialSource
			m.run()
		}
	}
	stats.Duration = time.Since(start)
	return &Result{Answers: out.results(), Stats: *stats}, nil
}

// miIterator is one single-source shortest-path iterator (§3): Dijkstra
// from a keyword node over reversed combined edges. All fields are
// iterator-local: after seeding, an iterator is touched by exactly one
// goroutine (the coordinator in serial mode, its owning worker in parallel
// mode) and never read by the merge — the merge sees only miEvents.
type miIterator struct {
	origin graph.NodeID

	frontier *pqueue.Heap[graph.NodeID]
	dist     map[graph.NodeID]float64
	next     map[graph.NodeID]graph.NodeID // next hop toward the origin
	depth    map[graph.NodeID]int32
	settled  map[graph.NodeID]struct{}
}

// miEvent is one settle produced by an iterator's advance: everything the
// merge coordinator needs to reproduce the serial step's globally visible
// effects without touching iterator state.
type miEvent struct {
	// v was settled at distance d.
	v graph.NodeID
	d float64
	// pred is v's next hop toward the iterator origin at settle time
	// (InvalidNode at the origin itself). Predecessor chains run through
	// settled nodes only, whose next pointers are final, so the
	// coordinator can rebuild root→origin paths from consumed events
	// alone.
	pred graph.NodeID
	// nextD/nextOK give the iterator's frontier head after the expansion —
	// the priority the serial loop re-schedules the iterator with.
	nextD  float64
	nextOK bool
	// touched/relaxed are the step's Stats deltas (frontier insertions and
	// edge relaxations during the expansion).
	touched, relaxed int
}

// advance runs one getnext() of the iterator (§3) using iterator-local
// state only: settle the minimum-distance frontier node and expand the
// frontier across incoming combined edges. It fills ev with the step's
// globally visible effects, which the coordinator applies in schedule
// order (applyEvent). ok is false when the frontier is exhausted.
func (it *miIterator) advance(g graph.View, opts *Options, ev *miEvent) bool {
	v, d, ok := it.frontier.Pop()
	if !ok {
		return false
	}
	it.settled[v] = struct{}{}
	ev.v, ev.d, ev.pred = v, d, it.next[v]
	ev.touched, ev.relaxed = 0, 0

	if int(it.depth[v]) < opts.DMax {
		for _, h := range g.Neighbors(v) {
			if opts.EdgeFilter != nil && !opts.EdgeFilter(h.Type, h.Forward) {
				continue
			}
			u := h.To
			if _, done := it.settled[u]; done {
				continue
			}
			ev.relaxed++
			nd := d + h.WIn
			old, seen := it.dist[u]
			if !seen || nd < old {
				it.dist[u] = nd
				it.next[u] = v
				it.depth[u] = it.depth[v] + 1
				if it.frontier.Contains(u) {
					it.frontier.Bump(u, nd)
				} else {
					it.frontier.Push(u, nd)
					ev.touched++
				}
			}
		}
	}
	_, nd, nok := it.frontier.Peek()
	ev.nextD, ev.nextOK = nd, nok
	return true
}

// miGlobal is the cross-iterator state of one node: the best settled
// distance and owning iterator per keyword.
type miGlobal struct {
	dist        []float64
	it          []int32
	lastEmitSum float64
}

// miSearch is the merge coordinator. Besides the shared search plumbing it
// keeps, per iterator, exactly the event-derived state the serial loop
// would read from the live iterator: keyword index, origin, settled
// predecessor map, and the current frontier-head distance.
type miSearch struct {
	canceller

	g    graph.View
	opts Options
	nk   int
	kw   [][]graph.NodeID
	bits map[graph.NodeID]uint32

	// iters holds the live iterators. The coordinator drives them inline
	// in serial mode; in parallel mode ownership passes to the workers at
	// spawn and the coordinator must not touch them again.
	iters []*miIterator
	// Per-iterator merge state, indexed like iters.
	kwOf   []int
	origin []graph.NodeID
	pred   []map[graph.NodeID]graph.NodeID
	nextD  []float64
	nextOK []bool

	glob  map[graph.NodeID]*miGlobal
	out   *outputHeap
	stats *Stats
	sched *pqueue.Heap[int]

	// source yields iterator idx's next event; it abstracts inline
	// production (serial) from channel consumption (parallel) so run() is
	// one implementation for both modes.
	source func(idx int) (miEvent, bool)
}

func (m *miSearch) seed() {
	for i, si := range m.kw {
		for _, u := range si {
			it := &miIterator{
				origin:   u,
				frontier: pqueue.NewMin[graph.NodeID](),
				dist:     map[graph.NodeID]float64{u: 0},
				next:     map[graph.NodeID]graph.NodeID{u: graph.InvalidNode},
				depth:    map[graph.NodeID]int32{u: 0},
				settled:  make(map[graph.NodeID]struct{}),
			}
			it.frontier.Push(u, 0)
			m.stats.NodesTouched++
			idx := len(m.iters)
			m.iters = append(m.iters, it)
			m.kwOf = append(m.kwOf, i)
			m.origin = append(m.origin, u)
			m.pred = append(m.pred, make(map[graph.NodeID]graph.NodeID))
			m.nextD = append(m.nextD, 0)
			m.nextOK = append(m.nextOK, true)
			m.sched.Push(idx, 0)
		}
	}
}

// serialSource produces iterator idx's next event inline (Workers == 0).
func (m *miSearch) serialSource(idx int) (miEvent, bool) {
	var ev miEvent
	ok := m.iters[idx].advance(m.g, &m.opts, &ev)
	return ev, ok
}

func (m *miSearch) run() {
	const boundEvery = 32
	sinceBound := 0
	for m.sched.Len() > 0 {
		if m.out.full() {
			return
		}
		if m.opts.MaxNodes > 0 && m.stats.NodesExplored >= m.opts.MaxNodes {
			m.stats.BudgetExhausted = true
			break
		}
		if m.cancelled() {
			break
		}
		idx, _, _ := m.sched.Pop()
		ev, ok := m.source(idx)
		if !ok {
			// A scheduled iterator always has an event pending (it was
			// re-queued with a live frontier head); this is reachable only
			// on early producer shutdown.
			break
		}
		m.applyEvent(idx, ev)
		if ev.nextOK {
			m.sched.Push(idx, ev.nextD)
		}
		sinceBound++
		if sinceBound >= boundEvery {
			sinceBound = 0
			score, edge := m.upperBound()
			if m.out.drain(score, edge) {
				return
			}
		}
	}
	m.out.flush()
}

// applyEvent merges one settle into the cross-iterator state, reproducing
// the serial step's sequence of globally visible effects exactly: the
// explored counter first (answer generation stamps read it), then the
// reach recording and any emissions, then the expansion counters.
func (m *miSearch) applyEvent(idx int, ev miEvent) {
	m.pred[idx][ev.v] = ev.pred
	m.stats.NodesExplored++
	m.recordReach(ev.v, ev.d, idx)
	m.stats.EdgesRelaxed += ev.relaxed
	m.stats.NodesTouched += ev.touched
	m.nextD[idx], m.nextOK[idx] = ev.nextD, ev.nextOK
}

// recordReach merges a settled (node, dist) pair into the node's global
// state; if the node is now reached from every keyword, answers are
// emitted (the visited-list intersection test of §3). Unlike the
// single-iterator algorithms, Backward search generates a tree per
// iterator combination (§4.6: it "keeps shortest paths to each node
// containing the keyword"), so every settle of a complete node emits the
// combination routing its keyword through the settling iterator; the
// output heap filters duplicates and keeps the best-scoring variants.
func (m *miSearch) recordReach(v graph.NodeID, d float64, idx int) {
	gn, ok := m.glob[v]
	if !ok {
		gn = &miGlobal{
			dist:        make([]float64, m.nk),
			it:          make([]int32, m.nk),
			lastEmitSum: math.Inf(1),
		}
		for i := range gn.dist {
			gn.dist[i] = math.Inf(1)
			gn.it[i] = -1
		}
		m.glob[v] = gn
	}
	kw := m.kwOf[idx]
	if d < gn.dist[kw] {
		gn.dist[kw] = d
		gn.it[kw] = int32(idx)
	}
	m.maybeEmit(v, gn)
	// Emit the variant that reaches keyword kw through this specific
	// iterator even when it is not the closest origin — Backward search
	// keeps all such per-origin trees, and a longer path may end at a
	// higher-prestige leaf.
	if gn.it[kw] != int32(idx) {
		m.emitVariant(v, gn, kw, int32(idx))
	}
}

// emitVariant emits the tree rooted at v whose path for keyword kw goes
// through iterator override, with all other keywords routed through their
// best iterators. No-op while v is incomplete.
func (m *miSearch) emitVariant(v graph.NodeID, gn *miGlobal, kw int, override int32) {
	for i := 0; i < m.nk; i++ {
		if gn.it[i] < 0 {
			return
		}
	}
	its := make([]int32, m.nk)
	copy(its, gn.it)
	its[kw] = override
	m.emitCombination(v, its)
}

func (m *miSearch) maybeEmit(v graph.NodeID, gn *miGlobal) {
	sum := 0.0
	for i := 0; i < m.nk; i++ {
		if math.IsInf(gn.dist[i], 1) {
			return
		}
		sum += gn.dist[i]
	}
	if sum >= gn.lastEmitSum-1e-12 {
		return
	}
	gn.lastEmitSum = sum
	m.emitCombination(v, gn.it)
}

// emitCombination builds and buffers the answer rooted at v with keyword i
// reached through iterator its[i]. Paths are rebuilt from the coordinator's
// per-iterator predecessor maps, which hold exactly the settled nodes'
// final next hops.
func (m *miSearch) emitCombination(v graph.NodeID, its []int32) {
	paths := make([][]graph.NodeID, m.nk)
	for i := 0; i < m.nk; i++ {
		idx := its[i]
		preds := m.pred[idx]
		path := []graph.NodeID{v}
		cur := v
		for cur != m.origin[idx] {
			nxt, ok := preds[cur]
			if !ok || nxt == graph.InvalidNode {
				return // defensive: broken chain
			}
			path = append(path, nxt)
			cur = nxt
		}
		paths[i] = path
	}
	kwBits := func(u graph.NodeID) uint32 { return m.bits[u] }
	if a := buildAnswer(m.g, m.opts, v, paths, kwBits, m.nk); a != nil {
		m.out.add(a)
	}
}

// upperBound is the §4.5 bound adapted to multiple iterators: mᵢ is the
// smallest next-frontier distance among keyword i's iterators, read from
// the event-derived frontier heads (identical to peeking the live
// frontiers in serial mode).
func (m *miSearch) upperBound() (score, edge float64) {
	mi := make([]float64, m.nk)
	for i := range mi {
		mi[i] = math.Inf(1)
	}
	for idx := range m.nextD {
		if m.nextOK[idx] && m.nextD[idx] < mi[m.kwOf[idx]] {
			mi[m.kwOf[idx]] = m.nextD[idx]
		}
	}
	h := 0.0
	for i := 0; i < m.nk; i++ {
		if math.IsInf(mi[i], 1) {
			// Keyword i's iterators are exhausted: existing distances are
			// final; future answers can only combine already-known reaches
			// for i, so treat its contribution as 0 (conservative).
			continue
		}
		h += mi[i]
	}
	if m.sched.Len() == 0 {
		return 0, math.Inf(1)
	}
	return scoreUpperBound(m.g, h, m.nk, m.opts.Lambda), h
}
