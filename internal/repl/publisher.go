package repl

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"banks/internal/api"
	"banks/internal/wal"
)

// Source is the primary-side seam the Publisher serves from;
// *banks.Live satisfies it.
type Source interface {
	// Generation is the current base snapshot generation.
	Generation() uint64
	// DeltaVersion counts records applied since the base.
	DeltaVersion() uint64
	// BaseNodes is the label split point (see Position.BaseNodes).
	BaseNodes() int
	// BasePath is the snapshot file backing the current base ("" when
	// bootstrapping is impossible — no snapshot path configured).
	BasePath() string
	// WALSize, WALChanged and WALReadAt expose the log; see wal.Log.
	WALSize() int64
	WALChanged() <-chan struct{}
	WALReadAt(from int64, max int) ([]byte, int64, error)
}

// PublisherConfig configures a Publisher.
type PublisherConfig struct {
	Source Source
	// MaxChunk bounds one log response body (0 means 1 MiB). A single
	// frame larger than the bound is still served whole.
	MaxChunk int
	// MaxWait caps the long-poll window a client may request (0 means
	// 25s).
	MaxWait time.Duration
	// WriteError emits an error response in the host server's envelope
	// dialect. nil means the full api envelope (legacy mirrors included).
	WriteError func(w http.ResponseWriter, status int, code, field, detail string)
}

// Publisher serves a primary's WAL to followers: the log endpoint with
// long-poll tailing and the 409 bootstrap handshake, and the snapshot
// endpoint that hands out the current base file.
type Publisher struct {
	cfg PublisherConfig
}

// NewPublisher validates the config and returns a Publisher.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Source == nil {
		return nil, errors.New("repl: publisher requires a source")
	}
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = 1 << 20
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 25 * time.Second
	}
	if cfg.WriteError == nil {
		cfg.WriteError = func(w http.ResponseWriter, status int, code, field, detail string) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(api.NewError(status, code, field, detail))
		}
	}
	return &Publisher{cfg: cfg}, nil
}

func (p *Publisher) position() Position {
	s := p.cfg.Source
	return Position{
		Generation:   s.Generation(),
		DeltaVersion: s.DeltaVersion(),
		WALSize:      s.WALSize(),
		BaseNodes:    s.BaseNodes(),
	}
}

// conflict answers the bootstrap handshake: 409 with the primary's
// position as the body. Not an error envelope — the follower's next
// move (fetch the snapshot, resume tailing) is encoded in the status.
func (p *Publisher) conflict(w http.ResponseWriter, pos Position) {
	setPositionHeaders(w.Header(), pos)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(pos)
}

// ServeLog handles GET /v1/replication/log?gen=G&from=N&wait=MS: whole
// WAL frames from offset N as long as (G, N) addresses this log, a 409
// handshake when it does not (the follower is behind a compaction, or
// its log diverged), and a long-poll park when the follower is caught
// up and asked to wait.
func (p *Publisher) ServeLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		p.cfg.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "", "replication log is GET-only")
		return
	}
	q := r.URL.Query()
	gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
	if err != nil {
		p.cfg.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "gen", "gen must be the follower's base generation")
		return
	}
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		p.cfg.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "from", "from must be the follower's WAL end offset")
		return
	}
	var wait time.Duration
	if s := q.Get("wait"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil || ms < 0 {
			p.cfg.WriteError(w, http.StatusBadRequest, api.CodeBadRequest, "wait", "wait must be a non-negative millisecond count")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > p.cfg.MaxWait {
		wait = p.cfg.MaxWait
	}
	deadline := time.Now().Add(wait)

	for {
		// Grab the change channel before reading the position: any append
		// that lands after the read closes this channel, so the park below
		// cannot miss it.
		ch := p.cfg.Source.WALChanged()
		pos := p.position()
		if gen != pos.Generation || from < wal.HeaderSize || from > pos.WALSize {
			p.conflict(w, pos)
			return
		}
		chunk, _, err := p.cfg.Source.WALReadAt(from, p.cfg.MaxChunk)
		if err != nil {
			// The offset stopped addressing the log mid-request (a
			// compaction reset it): resync the follower. Anything else is
			// a real fault.
			var ce *wal.ErrCorrupt
			if errors.As(err, &ce) {
				p.cfg.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "", "replication log read: "+err.Error())
				return
			}
			p.conflict(w, p.position())
			return
		}
		if len(chunk) > 0 {
			setPositionHeaders(w.Header(), pos)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(chunk)))
			w.Write(chunk)
			return
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			// Caught up and out of patience: empty 200, headers only.
			setPositionHeaders(w.Header(), pos)
			w.WriteHeader(http.StatusOK)
			return
		}
		park := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			park.Stop()
		case <-park.C:
		case <-r.Context().Done():
			park.Stop()
			return
		}
	}
}

// ServeSnapshot handles GET /v1/replication/snapshot: the primary's
// current base snapshot file, streamed verbatim, with position headers.
// The follower verifies the file's own generation after download — the
// file, not the headers, is authoritative (the base may advance while
// the body streams; the stale file is still a valid bootstrap, the
// follower just re-handshakes).
func (p *Publisher) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		p.cfg.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "", "replication snapshot is GET-only")
		return
	}
	pos := p.position()
	path := p.cfg.Source.BasePath()
	if path == "" {
		p.cfg.WriteError(w, http.StatusServiceUnavailable, api.CodeInternal, "", "this primary has no snapshot path; followers cannot bootstrap from it")
		return
	}
	f, err := os.Open(path)
	if err != nil {
		// A gen-0 primary whose base was never materialized to disk has
		// nothing to bootstrap from — that is an availability condition
		// (start the primary from a snapshot file), not a server bug.
		status := http.StatusInternalServerError
		if os.IsNotExist(err) {
			status = http.StatusServiceUnavailable
		}
		p.cfg.WriteError(w, status, api.CodeInternal, "", "open base snapshot: "+err.Error())
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		p.cfg.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "", "stat base snapshot: "+err.Error())
		return
	}
	setPositionHeaders(w.Header(), pos)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(st.Size(), 10))
	io.Copy(w, f)
}
