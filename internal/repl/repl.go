// Package repl implements WAL log-shipping replication: a primary
// serves its write-ahead log over HTTP and followers tail it, applying
// each record through the delta manager's replay idempotence rules.
// The wire payload is the WAL's own canonical frame encoding served
// byte-for-byte, and followers re-append the frames to their local
// log, so a follower's WAL file is a byte-identical copy of the
// primary's at identical offsets. That makes wal_offset a cluster-wide
// position: a follower that has applied through offset N answers
// queries byte-identically to the primary as of offset N, by
// construction rather than by comparison.
//
// Protocol (docs/REPLICATION.md is the spec of record):
//
//	GET /v1/replication/log?gen=G&from=N&wait=MS
//	  200 → raw WAL frames [N, end) as the body (empty body: caught
//	        up), position headers describing the primary
//	  409 → (G, N) does not address this primary's log — the follower
//	        is behind a compaction (or diverged) and must bootstrap;
//	        the body is the primary's Position as JSON
//	GET /v1/replication/snapshot
//	  200 → the primary's current base snapshot file, position headers
//
// The wait parameter long-polls: a caught-up follower's request parks
// until the log changes or the window expires, so tailing costs one
// round-trip per mutation batch, not one per poll interval.
package repl

import (
	"fmt"
	"net/http"
	"strconv"
)

// Position response headers. Every replication response carries the
// primary's current position so followers can measure lag without a
// second request.
const (
	HeaderGeneration   = "X-Banks-Generation"
	HeaderWALSize      = "X-Banks-Wal-Size"
	HeaderDeltaVersion = "X-Banks-Delta-Version"
	HeaderBaseNodes    = "X-Banks-Base-Nodes"
)

// Position is a primary's replication position: the base generation,
// the WAL end offset, the delta version (records applied since the
// base), and the label split point followers must adopt to render
// byte-identical answers.
type Position struct {
	Generation   uint64 `json:"generation"`
	WALSize      int64  `json:"wal_size"`
	DeltaVersion uint64 `json:"delta_version"`
	BaseNodes    int    `json:"base_nodes"`
}

func setPositionHeaders(h http.Header, pos Position) {
	h.Set(HeaderGeneration, strconv.FormatUint(pos.Generation, 10))
	h.Set(HeaderWALSize, strconv.FormatInt(pos.WALSize, 10))
	h.Set(HeaderDeltaVersion, strconv.FormatUint(pos.DeltaVersion, 10))
	h.Set(HeaderBaseNodes, strconv.Itoa(pos.BaseNodes))
}

// parsePosition reads the position headers of a replication response.
func parsePosition(h http.Header) (Position, error) {
	var pos Position
	var err error
	if pos.Generation, err = strconv.ParseUint(h.Get(HeaderGeneration), 10, 64); err != nil {
		return Position{}, fmt.Errorf("repl: bad %s header %q", HeaderGeneration, h.Get(HeaderGeneration))
	}
	if pos.WALSize, err = strconv.ParseInt(h.Get(HeaderWALSize), 10, 64); err != nil {
		return Position{}, fmt.Errorf("repl: bad %s header %q", HeaderWALSize, h.Get(HeaderWALSize))
	}
	if pos.DeltaVersion, err = strconv.ParseUint(h.Get(HeaderDeltaVersion), 10, 64); err != nil {
		return Position{}, fmt.Errorf("repl: bad %s header %q", HeaderDeltaVersion, h.Get(HeaderDeltaVersion))
	}
	if pos.BaseNodes, err = strconv.Atoi(h.Get(HeaderBaseNodes)); err != nil {
		return Position{}, fmt.Errorf("repl: bad %s header %q", HeaderBaseNodes, h.Get(HeaderBaseNodes))
	}
	return pos, nil
}
