package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"banks/internal/delta"
	"banks/internal/store"
	"banks/internal/wal"
)

// Target is the follower-side seam records are applied through;
// *banks.Live satisfies it.
type Target interface {
	// Generation and DeltaVersion are the local logical position.
	Generation() uint64
	DeltaVersion() uint64
	// WALSize is the local log's end offset — the replication cursor.
	WALSize() int64
	// ReplayLogged applies one shipped record under the replay
	// idempotence rules and appends it to the local log (see
	// delta.Manager.ReplayLogged).
	ReplayLogged(generation, version uint64, ops []delta.Op) (applied bool, offset int64, err error)
	// AdoptSnapshot hot-swaps a fetched snapshot in as the new base,
	// truncating the local log.
	AdoptSnapshot(ctx context.Context, path string) (uint64, error)
	// SetBaseNodes adopts the primary's label split point.
	SetBaseNodes(n int)
}

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	// Primary is the primary's base URL (scheme://host:port).
	Primary string
	// Target is the local serving instance records apply to. It must
	// have a write-ahead log — the local log is the replication cursor
	// and what makes a follower restart resume instead of re-bootstrap.
	Target Target
	// BasePath is the local snapshot base path; fetched generations are
	// installed under it with the ".genN" convention.
	BasePath string
	// Client issues the HTTP requests (nil means a dedicated client; it
	// must not have a global timeout shorter than PollWait).
	Client *http.Client
	// PollWait is the long-poll window requested from the primary
	// (0 means 10s).
	PollWait time.Duration
	// Backoff and MaxBackoff bound the reconnect schedule (0 means
	// 200ms / 5s).
	Backoff, MaxBackoff time.Duration
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time sample of a follower's replication
// state — the /statusz replication block and the lag metrics read it.
type FollowerStats struct {
	Primary string `json:"primary"`
	// Connected reports whether the last poll of the primary succeeded.
	Connected bool `json:"connected"`
	// Generation is the local base generation.
	Generation uint64 `json:"generation"`
	// WALOffset is the local log end — the position this follower's
	// answers are exact at. PrimaryWALOffset is the primary's log end at
	// the last successful poll; LagBytes is the gap.
	WALOffset        int64 `json:"wal_offset"`
	PrimaryWALOffset int64 `json:"primary_wal_offset"`
	LagBytes         int64 `json:"lag_bytes"`
	// LagRecords is how many acknowledged batches the follower still has
	// to apply; LagSeconds how long it has been behind (0 when caught
	// up).
	LagRecords int64   `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	// RecordsApplied / BytesApplied / Bootstraps / Reconnects are
	// lifetime counters for this process.
	RecordsApplied uint64 `json:"records_applied"`
	BytesApplied   int64  `json:"bytes_applied"`
	Bootstraps     uint64 `json:"bootstraps"`
	Reconnects     uint64 `json:"reconnects"`
	LastError      string `json:"last_error,omitempty"`
}

// Follower tails a primary's replication log: bootstrap when the
// handshake demands it, catch up, then long-poll the tail, reconnecting
// with exponential backoff on any failure. One goroutine, started by
// StartFollower, owns the whole lifecycle.
type Follower struct {
	cfg    FollowerConfig
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	stats      FollowerStats
	caughtUpAt time.Time // last moment the follower was at the primary's offset
	behind     bool      // currently lagging (LagSeconds counts from caughtUpAt)
}

// StartFollower validates the config and starts the tail loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" || cfg.Target == nil {
		return nil, errors.New("repl: follower requires a primary URL and a target")
	}
	if cfg.Target.WALSize() < wal.HeaderSize {
		return nil, errors.New("repl: follower target has no write-ahead log (the local log is the replication cursor)")
	}
	if cfg.BasePath == "" {
		return nil, errors.New("repl: follower requires a snapshot base path to install fetched generations under")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{cfg: cfg, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	f.stats.Primary = cfg.Primary
	f.caughtUpAt = time.Now()
	f.behind = true // not caught up until the first successful poll says so
	go f.run()
	return f, nil
}

// Close stops the tail loop and waits for it to exit.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
}

// Stats samples the follower.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Generation = f.cfg.Target.Generation()
	st.WALOffset = f.cfg.Target.WALSize()
	if f.behind {
		st.LagSeconds = time.Since(f.caughtUpAt).Seconds()
	}
	return st
}

func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.Backoff
	for f.ctx.Err() == nil {
		err := f.poll()
		if err == nil {
			backoff = f.cfg.Backoff
			continue
		}
		if f.ctx.Err() != nil {
			return
		}
		f.mu.Lock()
		f.stats.Connected = false
		f.stats.LastError = err.Error()
		f.stats.Reconnects++
		f.mu.Unlock()
		f.cfg.Logf("repl: follower of %s: %v (retrying in %s)", f.cfg.Primary, err, backoff)
		select {
		case <-time.After(backoff):
		case <-f.ctx.Done():
			return
		}
		if backoff *= 2; backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
	}
}

// poll performs one log fetch — long-polling when caught up — and
// applies what it returns. nil means the connection is healthy.
func (f *Follower) poll() error {
	t := f.cfg.Target
	from := t.WALSize()
	url := fmt.Sprintf("%s/v1/replication/log?gen=%d&from=%d&wait=%d",
		f.cfg.Primary, t.Generation(), from, f.cfg.PollWait.Milliseconds())
	// The deadline must outlast the requested long-poll window.
	ctx, cancel := context.WithTimeout(f.ctx, f.cfg.PollWait+30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("log fetch: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// The handshake: our (generation, offset) no longer addresses the
		// primary's log — it compacted past us (or we diverged). Fetch
		// its current base and adopt it.
		return f.bootstrap()
	default:
		return fmt.Errorf("log fetch: primary answered %s", resp.Status)
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("log body: %w", err)
	}
	applied := 0
	if len(body) > 0 {
		recs, err := wal.DecodeFrames(body)
		if err != nil {
			// Torn or damaged chunk: apply nothing from it, reconnect.
			return fmt.Errorf("log stream: %w", err)
		}
		for _, rec := range recs {
			ok, _, err := t.ReplayLogged(rec.Generation, rec.Version, rec.Ops)
			if err != nil {
				return fmt.Errorf("apply replicated record (gen %d, version %d): %w", rec.Generation, rec.Version, err)
			}
			if ok {
				applied++
			}
		}
		if t.WALSize() == from {
			// Every record in a non-empty chunk was a skip: the primary is
			// re-serving history we already hold, which from == our log end
			// rules out unless the logs diverged.
			return fmt.Errorf("replication stalled: %d bytes from offset %d applied nothing", len(body), from)
		}
	}

	pos, perr := parsePosition(resp.Header)
	f.mu.Lock()
	f.stats.Connected = true
	f.stats.LastError = ""
	f.stats.RecordsApplied += uint64(applied)
	f.stats.BytesApplied += int64(len(body))
	if perr == nil {
		f.stats.PrimaryWALOffset = pos.WALSize
		local := t.WALSize()
		f.stats.LagBytes = pos.WALSize - local
		f.stats.LagRecords = int64(pos.DeltaVersion) - int64(t.DeltaVersion())
		if pos.Generation != t.Generation() {
			// Mid-handshake (the primary compacted since this response was
			// built): byte lag is cross-generation and meaningless, record
			// lag likewise. Report "behind, amount unknown" as non-zero.
			f.stats.LagBytes = 1
			f.stats.LagRecords = 1
		}
		if f.stats.LagBytes <= 0 && f.stats.LagRecords <= 0 {
			f.stats.LagBytes, f.stats.LagRecords = 0, 0
			f.behind = false
			f.caughtUpAt = time.Now()
		} else {
			f.behind = true
		}
	}
	f.mu.Unlock()
	if perr == nil {
		t.SetBaseNodes(pos.BaseNodes)
	}
	return nil
}

// bootstrap fetches the primary's current base snapshot, installs it
// under BasePath, and hot-swaps it in. The local WAL resets with the
// adoption, so the next poll resumes from the log's start — exactly
// where the primary's post-compaction log begins.
func (f *Follower) bootstrap() error {
	ctx, cancel := context.WithTimeout(f.ctx, 5*time.Minute)
	defer cancel()
	path, pos, err := FetchSnapshot(ctx, f.cfg.Client, f.cfg.Primary, f.cfg.BasePath)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	gen, err := f.cfg.Target.AdoptSnapshot(ctx, path)
	if err != nil {
		return fmt.Errorf("bootstrap: adopt %s: %w", path, err)
	}
	f.cfg.Target.SetBaseNodes(pos.BaseNodes)
	f.mu.Lock()
	f.stats.Bootstraps++
	f.mu.Unlock()
	f.cfg.Logf("repl: follower of %s: bootstrapped generation %d from %s", f.cfg.Primary, gen, path)
	return nil
}

// FetchSnapshot downloads the primary's current base snapshot, verifies
// it opens, and installs it under basePath with the generation-suffix
// convention (basePath itself for generation 0, basePath+".genN"
// otherwise — the layout LatestSnapshotPath resolves on restart). The
// installed path and the primary's position at fetch time are returned;
// the file's own generation, not the header, decides the name.
func FetchSnapshot(ctx context.Context, client *http.Client, primary, basePath string) (string, Position, error) {
	if client == nil {
		client = &http.Client{}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/replication/snapshot", nil)
	if err != nil {
		return "", Position{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", Position{}, fmt.Errorf("snapshot fetch: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", Position{}, fmt.Errorf("snapshot fetch: primary answered %s: %s", resp.Status, snippet)
	}
	pos, perr := parsePosition(resp.Header)
	if perr != nil {
		return "", Position{}, perr
	}

	tmp := basePath + ".fetch.tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return "", Position{}, err
	}
	if _, err := io.Copy(out, resp.Body); err != nil {
		out.Close()
		os.Remove(tmp)
		return "", Position{}, fmt.Errorf("snapshot download: %w", err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return "", Position{}, err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return "", Position{}, err
	}

	// The file is authoritative for its own generation: verify it opens
	// and name it accordingly.
	snap, err := store.Open(tmp, store.Options{})
	if err != nil {
		os.Remove(tmp)
		return "", Position{}, fmt.Errorf("fetched snapshot does not verify: %w", err)
	}
	gen := snap.Generation
	snap.Close()
	dest := basePath
	if gen > 0 {
		dest = fmt.Sprintf("%s.gen%d", basePath, gen)
	}
	if err := os.Rename(tmp, dest); err != nil {
		os.Remove(tmp)
		return "", Position{}, err
	}
	pos.Generation = gen
	return dest, pos, nil
}
