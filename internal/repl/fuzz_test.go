package repl_test

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"banks/internal/delta"
	"banks/internal/engine"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/wal"
)

// fuzzFrames encodes a frame sequence through a scratch log — the only
// encoder there is, which is the point: the follower must never accept
// bytes the primary's encoder could not have produced.
func fuzzFrames(f *testing.F, recs []struct {
	gen, ver uint64
	ops      []delta.Op
}) []byte {
	f.Helper()
	dir := f.TempDir()
	l, _, err := wal.Open(filepath.Join(dir, "seed.wal"), wal.Options{Policy: wal.PolicyNever})
	if err != nil {
		f.Fatal(err)
	}
	defer l.Close()
	for _, r := range recs {
		if _, err := l.Append(r.gen, r.ver, r.ops); err != nil {
			f.Fatal(err)
		}
	}
	data, _, err := l.ReadAt(wal.HeaderSize, 1<<30)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReplicationStream attacks the follower's chunk-application
// boundary with arbitrary bytes posing as a primary's log stream. The
// contract: torn frames, flipped bytes, forged lengths — anything that
// is not a canonically encoded frame sequence — must be rejected as
// *wal.ErrCorrupt without panicking; and whatever DOES decode must still
// pass the replay gate, which only ever applies the exactly-next version
// of the current generation (replayed offsets are skipped, forged
// generations refused — never applied).
func FuzzReplicationStream(f *testing.F) {
	ops := []delta.Op{{Kind: delta.OpInsertNode, Table: "paper", Text: "fuzz stream probe"}}
	edge := []delta.Op{{Kind: delta.OpInsertEdge, From: 0, To: 1, Weight: 1.5}}

	type rec = struct {
		gen, ver uint64
		ops      []delta.Op
	}
	valid := fuzzFrames(f, []rec{{0, 1, ops}, {0, 2, edge}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                           // torn tail
	f.Add([]byte{})                                       // empty chunk (caught-up poll)
	f.Add(fuzzFrames(f, []rec{{0, 2, ops}, {0, 1, ops}})) // replayed offset
	f.Add(fuzzFrames(f, []rec{{7, 1, ops}}))              // forged generation
	f.Add(fuzzFrames(f, []rec{{0, 5, ops}}))              // version hole
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff
	f.Add(flipped)
	forgedLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(forgedLen, wal.MaxPayload+1)
	f.Add(forgedLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := wal.DecodeFrames(data)
		if err != nil {
			var c *wal.ErrCorrupt
			if !errors.As(err, &c) {
				t.Fatalf("non-ErrCorrupt decode error: %v", err)
			}
			return
		}
		// Whatever decoded is fed to a fresh replay gate at gen 0 /
		// version 0. Track what the gate MUST do and assert it does
		// nothing else.
		m := newFuzzManager(t)
		gen, ver := uint64(0), uint64(0)
		for _, r := range recs {
			applied, _, err := m.ReplayLogged(r.Generation, r.Version, r.Ops)
			if applied {
				if r.Generation != gen || r.Version != ver+1 {
					t.Fatalf("gate applied gen=%d ver=%d at state gen=%d ver=%d",
						r.Generation, r.Version, gen, ver)
				}
				ver++
			} else if err == nil && r.Generation == gen && r.Version == ver+1 {
				// The exactly-next record may still be refused for
				// semantic reasons (bad op against the tiny base) — but
				// then an error must say so.
				t.Fatalf("gate silently skipped the exactly-next record gen=%d ver=%d", r.Generation, r.Version)
			}
			_ = err // refusals are fine; panics are not
		}
	})
}

// newFuzzManager builds the smallest possible replay target: a two-node
// base graph with a delta manager over it — enough for the gate's
// gen/version arithmetic, cheap enough to rebuild per fuzz input.
func newFuzzManager(t *testing.T) *delta.Manager {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("paper")
	b.AddNode("paper")
	if err := b.AddEdge(0, 1, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if err := g.SetPrestige([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	ix.AddTerm(0, "fuzz")
	ix.AddTerm(1, "stream")
	ix.Freeze(g)
	eng, err := engine.New(g, ix, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := delta.NewManager(delta.Config{
		Engine: eng,
		Graph:  g,
		Index:  ix,
		Mode:   delta.PrestigeUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}
