package repl_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"banks"
	"banks/internal/datagen"
	"banks/internal/repl"
	"banks/internal/router/faultproxy"
)

// The replication tests run against the same factor-0.05 DBLP-like
// dataset the repo's other differential suites use, built once and
// shared: byte identity between a primary and its follower only means
// something when both run real searches over a real graph.
var (
	sharedOnce sync.Once
	sharedDB   *banks.DB
	sharedErr  error
)

func testDB(t testing.TB) *banks.DB {
	t.Helper()
	sharedOnce.Do(func() {
		ds, err := datagen.DBLP(datagen.DefaultDBLP(0.05))
		if err != nil {
			sharedErr = err
			return
		}
		sharedDB, sharedErr = banks.Build(ds.DB, banks.BuildOptions{})
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedDB
}

// world is one WAL-backed live serving instance rooted at its own
// snapshot file. The result cache is disabled so every signature comes
// from a real search.
type world struct {
	db   *banks.DB
	eng  *banks.Engine
	live *banks.Live

	snapPath, walPath string
	closed            bool
}

// openWorld materializes the shared DB as a snapshot under dir (unless
// one is already there from a previous incarnation) and opens a live
// instance over it with a WAL.
func openWorld(t *testing.T, dir string) *world {
	t.Helper()
	snapPath := filepath.Join(dir, "base.banksnap")
	walPath := filepath.Join(dir, "live.wal")
	if _, err := banks.OpenSnapshot(snapPath); err != nil {
		if err := testDB(t).WriteSnapshotFile(snapPath); err != nil {
			t.Fatal(err)
		}
	}
	db, err := banks.OpenSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 4, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	live, err := banks.OpenLive(eng, banks.LiveOptions{SnapshotPath: snapPath, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{db: db, eng: eng, live: live, snapPath: snapPath, walPath: walPath}
	t.Cleanup(func() { w.close() })
	return w
}

func (w *world) close() {
	if w.closed {
		return
	}
	w.closed = true
	w.live.Close()
	w.db.Close()
}

// serve mounts the world's replication publisher on an httptest server,
// the way internal/server mounts it on banksd.
func serve(t *testing.T, w *world) *httptest.Server {
	t.Helper()
	pub, err := repl.NewPublisher(repl.PublisherConfig{Source: w.live, MaxWait: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/replication/log", pub.ServeLog)
	mux.HandleFunc("/v1/replication/snapshot", pub.ServeSnapshot)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// follow starts a follower tailing primaryURL into w.
func follow(t *testing.T, w *world, primaryURL string) *repl.Follower {
	t.Helper()
	f, err := repl.StartFollower(repl.FollowerConfig{
		Primary:  primaryURL,
		Target:   w.live,
		BasePath: w.snapPath,
		PollWait: 300 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// waitConverged polls until the follower has applied the primary's log
// to its end: same generation, same wal offset, zero record lag.
func waitConverged(t *testing.T, f *repl.Follower, primary *world) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Stats()
		if st.Connected && st.Generation == primary.live.Generation() &&
			st.WALOffset == primary.live.WALSize() && st.LagRecords == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged to gen=%d size=%d: %+v",
		primary.live.Generation(), primary.live.WALSize(), f.Stats())
}

// replTrace is the deterministic mutation trace the differential runs:
// every op kind, phrased against the shared DB. base is the pristine
// node count; IDs from base upward are assigned deterministically, so
// primary and follower agree on them.
func replTrace(base banks.NodeID) [][]banks.MutationOp {
	return [][]banks.MutationOp{
		{
			{Kind: banks.OpInsertNode, Table: "paper", Text: "replqux alpha shipping"},
			{Kind: banks.OpInsertNode, Table: "paper", Text: "replqux beta tailing"},
		},
		{
			{Kind: banks.OpInsertEdge, From: base, To: base + 1, Weight: 1.0},
		},
		{
			{Kind: banks.OpInsertNode, Table: "author", Text: "replqux gamma"},
			{Kind: banks.OpInsertEdge, From: base + 2, To: base, Weight: 2.5},
		},
		{
			{Kind: banks.OpInsertTerm, Node: base, Term: "replship"},
			{Kind: banks.OpInsertTerm, Node: 3, Term: "replship"},
		},
		{
			{Kind: banks.OpDeleteEdge, From: base, To: base + 1},
			{Kind: banks.OpInsertEdge, From: base + 1, To: base + 2, Weight: 1.25},
		},
		{
			{Kind: banks.OpDeleteNode, Node: 11},
			{Kind: banks.OpInsertNode, Table: "paper", Text: "replqux delta omega"},
			{Kind: banks.OpDeleteTerm, Node: base, Term: "replship"},
		},
	}
}

var replQueries = []string{
	"replqux alpha",
	"replqux beta gamma",
	"replship replqux",
	"database transaction",
}

var replAlgos = []banks.Algorithm{banks.Bidirectional, banks.SIBackward, banks.MIBackward}

// signature renders everything deterministic about the world's answers
// to every probe query under all three algorithms, plus the display
// labels of every node the trace inserted — the exact material a
// /v1/search response is built from.
func signature(t *testing.T, w *world, base, inserted banks.NodeID) string {
	t.Helper()
	var sb strings.Builder
	for _, algo := range replAlgos {
		for _, q := range replQueries {
			res, err := w.eng.Search(context.Background(), q, algo, banks.Options{K: 5, MaxNodes: 50_000})
			if err != nil {
				t.Fatalf("search %q/%v: %v", q, algo, err)
			}
			fmt.Fprintf(&sb, "%v %q answers=%d explored=%d truncated=%v\n",
				algo, q, len(res.Answers), res.Stats.NodesExplored, res.Stats.Truncated)
			for i, a := range res.Answers {
				nodes := make([]int, len(a.Nodes))
				for j, u := range a.Nodes {
					nodes[j] = int(u)
				}
				sort.Ints(nodes)
				fmt.Fprintf(&sb, "  %d: root=%d score=%.12g edge=%.12g nodes=%v\n",
					i, a.Root, a.Score, a.EdgeScore, nodes)
			}
		}
	}
	for u := base; u < base+inserted; u++ {
		fmt.Fprintf(&sb, "label %d = %q\n", u, w.live.NodeLabel(u))
	}
	return sb.String()
}

// TestReplicationDifferential is the tentpole acceptance proof: at every
// acked wal_offset of a multi-batch mutation trace — including across a
// live compaction on the primary — the follower answers every probe
// query byte-identically to the primary under all three algorithms, and
// renders identical labels for the runtime-inserted nodes.
func TestReplicationDifferential(t *testing.T) {
	primary := openWorld(t, t.TempDir())
	ts := serve(t, primary)
	fw := openWorld(t, t.TempDir())
	f := follow(t, fw, ts.URL)

	base := banks.NodeID(primary.db.Graph.NumNodes())
	batches := replTrace(base)
	var inserted banks.NodeID

	compactAfter := 2 // cross a compaction boundary mid-trace
	for i, ops := range batches {
		if _, err := primary.live.Apply(ops); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for _, op := range ops {
			if op.Kind == banks.OpInsertNode {
				inserted++
			}
		}
		waitConverged(t, f, primary)
		want := signature(t, primary, base, inserted)
		got := signature(t, fw, base, inserted)
		if want != got {
			t.Fatalf("offset %d (batch %d): follower diverged\nprimary:\n%s\nfollower:\n%s",
				primary.live.WALSize(), i, want, got)
		}
		if i == compactAfter {
			if _, err := primary.live.Compact(context.Background()); err != nil {
				t.Fatalf("compact after batch %d: %v", i, err)
			}
			waitConverged(t, f, primary)
			want, got := signature(t, primary, base, inserted), signature(t, fw, base, inserted)
			if want != got {
				t.Fatalf("after compaction: follower diverged\nprimary:\n%s\nfollower:\n%s", want, got)
			}
		}
	}

	st := f.Stats()
	if st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want exactly 1 (the compaction crossing)", st.Bootstraps)
	}
	if fw.live.Generation() != 1 || fw.live.Generation() != primary.live.Generation() {
		t.Fatalf("generations: follower %d, primary %d", fw.live.Generation(), primary.live.Generation())
	}
}

// TestFollowerKillAndReconnect is the crash-resilience hammer: the
// follower is cut mid-tail (its process image discarded, state only on
// disk), the primary keeps writing and compacts while the follower is
// down, and a fresh incarnation recovered from the follower's own
// snapshot + WAL must bootstrap across the compaction boundary and
// re-converge to byte identity. Run under -race, searches keep flowing
// on the follower while it tails.
func TestFollowerKillAndReconnect(t *testing.T) {
	primary := openWorld(t, t.TempDir())
	ts := serve(t, primary)
	fdir := t.TempDir()
	fw := openWorld(t, fdir)
	f := follow(t, fw, ts.URL)

	base := banks.NodeID(primary.db.Graph.NumNodes())
	mkBatch := func(i int) []banks.MutationOp {
		return []banks.MutationOp{
			{Kind: banks.OpInsertNode, Table: "paper", Text: fmt.Sprintf("replhammer wave %d", i)},
		}
	}

	// Readers on the follower while it tails: every search must succeed
	// against whichever source it binds (-race guards the swaps).
	stopRead := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				if _, err := fw.eng.Search(context.Background(), "replhammer database",
					banks.Bidirectional, banks.Options{K: 3, MaxNodes: 20_000}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var inserted banks.NodeID
	for i := 0; i < 8; i++ {
		if _, err := primary.live.Apply(mkBatch(i)); err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	waitConverged(t, f, primary)

	// Kill: stop the tail, close the follower's process image. Its
	// snapshot + WAL stay on disk, exactly what a SIGKILL leaves.
	f.Close()
	close(stopRead)
	rg.Wait()
	fw.close()

	// The primary moves on without it: more batches, then a compaction
	// that resets the primary's WAL — the restarted follower cannot
	// catch up by log alone, it must re-bootstrap.
	for i := 8; i < 12; i++ {
		if _, err := primary.live.Apply(mkBatch(i)); err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	if _, err := primary.live.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 15; i++ {
		if _, err := primary.live.Apply(mkBatch(i)); err != nil {
			t.Fatal(err)
		}
		inserted++
	}

	// Restart: crash-recover the follower from its own disk state and
	// resume tailing.
	fw2 := openWorld(t, fdir)
	f2 := follow(t, fw2, ts.URL)
	waitConverged(t, f2, primary)

	want := signature(t, primary, base, inserted)
	got := signature(t, fw2, base, inserted)
	if want != got {
		t.Fatalf("restarted follower diverged\nprimary:\n%s\nfollower:\n%s", want, got)
	}
	if st := f2.Stats(); st.Bootstraps != 1 {
		t.Fatalf("restarted follower bootstraps = %d, want 1 (the compaction it slept through)", st.Bootstraps)
	}
}

// TestFollowerStreamCuts injects transport faults into the replication
// stream — dropped connections and 503s, the failure classes of a dying
// or overloaded primary — and asserts the follower's reconnect loop
// converges to byte identity anyway.
func TestFollowerStreamCuts(t *testing.T) {
	primary := openWorld(t, t.TempDir())
	ts := serve(t, primary)
	proxy, err := faultproxy.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	replMatch := func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/v1/replication/")
	}
	proxy.Set(&faultproxy.Fault{Mode: faultproxy.ModeDrop, Count: 2, Match: replMatch})

	fw := openWorld(t, t.TempDir())
	f := follow(t, fw, proxy.URL())

	base := banks.NodeID(primary.db.Graph.NumNodes())
	batches := replTrace(base)
	var inserted banks.NodeID
	for i, ops := range batches {
		if _, err := primary.live.Apply(ops); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for _, op := range ops {
			if op.Kind == banks.OpInsertNode {
				inserted++
			}
		}
		if i == 3 {
			// Mid-trace, a second round of faults: the overloaded-primary
			// class this time.
			proxy.Set(&faultproxy.Fault{Mode: faultproxy.Mode5xx, Count: 2, Match: replMatch})
		}
	}
	waitConverged(t, f, primary)

	want := signature(t, primary, base, inserted)
	got := signature(t, fw, base, inserted)
	if want != got {
		t.Fatalf("follower diverged across stream cuts\nprimary:\n%s\nfollower:\n%s", want, got)
	}
	if proxy.Injected() < 3 {
		t.Fatalf("proxy injected %d faults, want >= 3 — the cuts never landed", proxy.Injected())
	}
	if st := f.Stats(); st.Reconnects == 0 {
		t.Fatalf("follower reports no reconnects across %d injected faults: %+v", proxy.Injected(), st)
	}
}
