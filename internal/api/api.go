// Package api defines the v1 wire contract shared by every HTTP surface
// of the system (internal/server and internal/router): the error
// envelope and the registry of machine-readable error codes.
//
// Before this package, each call site minted its own code string and the
// envelope shape had drifted between the shard server and the router.
// The v1 contract is one schema:
//
//	{"error": {"code": "...", "field": "...", "detail": "..."}}
//
// where code is a slug from the registry below, field names the
// offending request field for validation errors, and detail is the
// human-readable diagnosis. During the deprecation window the envelope
// additionally carries the legacy fields clients may still read: a
// top-level "code" mirroring error.code, and error.status /
// error.message mirroring the HTTP status and detail. New clients must
// not depend on the legacy fields; docs/ERRORS.md is the registry of
// record and states the removal policy.
package api

import "net/http"

// Error codes of the v1 registry. Every error either surface emits uses
// one of these slugs; adding a call site with a new literal means adding
// it here and to docs/ERRORS.md first.
const (
	// CodeBadRequest: a structurally invalid request (unknown field or
	// parameter, malformed value, missing required field).
	CodeBadRequest = "bad_request"
	// CodeBadOptions: search options rejected by core's typed validation
	// (field carries the offending option).
	CodeBadOptions = "bad_options"
	// CodeBadBody: the request body is not valid JSON.
	CodeBadBody = "bad_body"
	// CodeBodyTooLarge: the request body exceeds the wire cap.
	CodeBodyTooLarge = "body_too_large"
	// CodeBatchTooLarge: a /v1/batch request exceeds the tenant's batch
	// cap.
	CodeBatchTooLarge = "batch_too_large"
	// CodeMutateTooLarge: a /v1/mutate batch exceeds the tenant's op cap.
	CodeMutateTooLarge = "mutate_too_large"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverCapacity: the global admission gate is at its in-flight
	// limit (429 + Retry-After).
	CodeOverCapacity = "over_capacity"
	// CodeTenantOverCapacity: the tenant's in-flight quota is exhausted
	// (429 + Retry-After).
	CodeTenantOverCapacity = "tenant_over_capacity"
	// CodeDeadlineExceeded: the deadline expired before the query could
	// start executing (mid-search expiry returns a truncated 200 instead).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the client went away before the query could start.
	CodeCanceled = "canceled"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
	// CodeNotMutable: mutation endpoint on a server started without live
	// mutations.
	CodeNotMutable = "not_mutable"
	// CodeMutateDenied: the tenant's limits forbid mutations.
	CodeMutateDenied = "mutate_denied"
	// CodeWALAppendFailed: the mutation batch could not be made durable;
	// it was NOT applied.
	CodeWALAppendFailed = "wal_append_failed"
	// CodeCompactFailed: compaction failed; the previous state still
	// serves.
	CodeCompactFailed = "compact_failed"
	// CodeShardError: a shard backend failed and no replica could answer
	// (router, 502).
	CodeShardError = "shard_error"
	// CodeShardRejected: a shard backend rejected the request with a 4xx
	// that carried no code of its own (router passthrough fallback).
	CodeShardRejected = "shard_rejected"
	// CodeNotRouted: the endpoint is not available through the router.
	CodeNotRouted = "not_routed"
	// CodeNotPrimary: mutation sent to a replication follower; the error
	// detail names the primary's URL.
	CodeNotPrimary = "not_primary"
)

// CodeInfo documents one registry entry: the HTTP status the code is
// emitted with and a one-line description for docs/ERRORS.md.
type CodeInfo struct {
	Status      int
	Description string
}

// Registry is the v1 error-code registry. Tests in internal/server and
// internal/router assert every emitted code resolves here.
var Registry = map[string]CodeInfo{
	CodeBadRequest:         {http.StatusBadRequest, "structurally invalid request (unknown or malformed field/parameter)"},
	CodeBadOptions:         {http.StatusBadRequest, "search options rejected by typed validation; field names the option"},
	CodeBadBody:            {http.StatusBadRequest, "request body is not valid JSON"},
	CodeBodyTooLarge:       {http.StatusRequestEntityTooLarge, "request body exceeds the wire cap"},
	CodeBatchTooLarge:      {http.StatusBadRequest, "batch exceeds the tenant's query cap"},
	CodeMutateTooLarge:     {http.StatusBadRequest, "mutation batch exceeds the tenant's op cap"},
	CodeMethodNotAllowed:   {http.StatusMethodNotAllowed, "wrong HTTP method for this endpoint"},
	CodeOverCapacity:       {http.StatusTooManyRequests, "server at its global in-flight limit; honor Retry-After"},
	CodeTenantOverCapacity: {http.StatusTooManyRequests, "tenant in-flight quota exhausted; honor Retry-After"},
	CodeDeadlineExceeded:   {http.StatusGatewayTimeout, "deadline expired before the query could start executing"},
	CodeCanceled:           {http.StatusServiceUnavailable, "request canceled before the query could start executing"},
	CodeInternal:           {http.StatusInternalServerError, "unexpected server-side failure"},
	CodeNotMutable:         {http.StatusNotImplemented, "server was started without live mutations"},
	CodeMutateDenied:       {http.StatusForbidden, "tenant is not allowed to mutate"},
	CodeWALAppendFailed:    {http.StatusServiceUnavailable, "batch could not be made durable; it was not applied"},
	CodeCompactFailed:      {http.StatusInternalServerError, "compaction failed; previous state still serves"},
	CodeShardError:         {http.StatusBadGateway, "a shard failed and no replica could answer"},
	CodeShardRejected:      {http.StatusBadRequest, "shard rejected the request without a code of its own"},
	CodeNotRouted:          {http.StatusNotImplemented, "endpoint not available through the router"},
	CodeNotPrimary:         {http.StatusConflict, "this server is a replication follower; write to the primary named in detail"},
}

// Known reports whether code is in the v1 registry.
func Known(code string) bool {
	_, ok := Registry[code]
	return ok
}

// ErrorDetail is the body of the v1 error envelope. Code, Field and
// Detail are the contract; Status and Message are legacy aliases
// (deprecated, mirroring the HTTP status line and Detail) kept while
// pre-v1 clients migrate.
type ErrorDetail struct {
	Code   string `json:"code"`
	Field  string `json:"field,omitempty"`
	Detail string `json:"detail"`

	// Deprecated: legacy aliases, removed after the v1 deprecation
	// window. Read Code/Detail and the HTTP status line instead.
	Status  int    `json:"status,omitempty"`
	Message string `json:"message,omitempty"`
}

// ErrorEnvelope is the complete v1 error response body.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`

	// Deprecated: LegacyCode mirrors Error.Code at the top level for
	// pre-v1 clients; removed after the deprecation window.
	LegacyCode string `json:"code,omitempty"`
}

// NewError assembles a v1 error envelope with the legacy mirror fields
// filled in.
func NewError(status int, code, field, detail string) ErrorEnvelope {
	return ErrorEnvelope{
		Error:      NewErrorDetail(status, code, field, detail),
		LegacyCode: code,
	}
}

// NewErrorDetail assembles one v1 error detail (the element shape used
// by per-element error arrays, e.g. /v1/batch) with legacy mirrors.
func NewErrorDetail(status int, code, field, detail string) ErrorDetail {
	return ErrorDetail{
		Code:    code,
		Field:   field,
		Detail:  detail,
		Status:  status,
		Message: detail,
	}
}

// V1Only strips the deprecated mirror fields, leaving the pure v1
// contract — what servers emit once started with -legacy-errors=false.
func (e ErrorEnvelope) V1Only() ErrorEnvelope {
	return ErrorEnvelope{Error: e.Error.V1Only()}
}

// V1Only strips the deprecated mirror fields from one error detail.
func (d ErrorDetail) V1Only() ErrorDetail {
	return ErrorDetail{Code: d.Code, Field: d.Field, Detail: d.Detail}
}
