package api

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestRegistryCoversConstants pins that every code constant resolves in
// the registry with a sane HTTP status.
func TestRegistryCoversConstants(t *testing.T) {
	codes := []string{
		CodeBadRequest, CodeBadOptions, CodeBadBody, CodeBodyTooLarge,
		CodeBatchTooLarge, CodeMutateTooLarge, CodeMethodNotAllowed,
		CodeOverCapacity, CodeTenantOverCapacity, CodeDeadlineExceeded,
		CodeCanceled, CodeInternal, CodeNotMutable, CodeMutateDenied,
		CodeWALAppendFailed, CodeCompactFailed, CodeNotPrimary,
		CodeShardError, CodeShardRejected, CodeNotRouted,
	}
	if len(codes) != len(Registry) {
		t.Fatalf("registry has %d entries, constants list %d — keep them in lockstep", len(Registry), len(codes))
	}
	for _, c := range codes {
		info, ok := Registry[c]
		if !ok {
			t.Fatalf("code %q missing from registry", c)
		}
		if info.Status < 400 || info.Status > 599 {
			t.Fatalf("code %q has non-error status %d", c, info.Status)
		}
		if info.Description == "" {
			t.Fatalf("code %q has no description", c)
		}
		if !Known(c) {
			t.Fatalf("Known(%q) = false", c)
		}
	}
	if Known("no_such_code") {
		t.Fatal("Known accepted an unregistered code")
	}
}

// TestEnvelopeShape pins the exact v1 wire shape — the new contract
// fields AND the legacy mirrors — so neither can drift silently.
func TestEnvelopeShape(t *testing.T) {
	env := NewError(http.StatusBadRequest, CodeBadOptions, "k", "k must be positive")
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	e, ok := m["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %s", raw)
	}
	// v1 contract fields.
	if e["code"] != "bad_options" || e["field"] != "k" || e["detail"] != "k must be positive" {
		t.Fatalf("v1 fields wrong: %s", raw)
	}
	// Legacy mirrors during the deprecation window.
	if m["code"] != "bad_options" {
		t.Fatalf("legacy top-level code missing: %s", raw)
	}
	if e["status"] != float64(400) || e["message"] != "k must be positive" {
		t.Fatalf("legacy status/message mirrors missing: %s", raw)
	}
}

// TestEnvelopeOmitsEmptyField pins that field is omitted when unknown
// rather than emitted as "".
func TestEnvelopeOmitsEmptyField(t *testing.T) {
	raw, err := json.Marshal(NewError(http.StatusInternalServerError, CodeInternal, "", "boom"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, present := m["error"].(map[string]any)["field"]; present {
		t.Fatalf("empty field serialized: %s", raw)
	}
}
