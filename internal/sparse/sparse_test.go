package sparse

import (
	"strings"
	"testing"

	"banks/internal/relational"
)

// miniDBLP mirrors the fixture from the relational package tests.
func miniDBLP(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	conf, _ := db.CreateTable("conf", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conf"}})
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	paper.Append([]string{"Transaction Recovery"}, []int32{0})
	paper.Append([]string{"Query Optimization"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEnumerateGrayTransaction(t *testing.T) {
	db := miniDBLP(t)
	cns, err := Enumerate(db, []string{"gray", "transaction"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cns) == 0 {
		t.Fatal("no CNs enumerated")
	}
	// The canonical CN author{gray}—writes—paper{transaction} must be
	// present.
	found := false
	for _, cn := range cns {
		if cn.Size == 3 &&
			strings.Contains(cn.Signature, "author{gray}") &&
			strings.Contains(cn.Signature, "paper{transaction}") &&
			strings.Contains(cn.Signature, "writes") {
			found = true
		}
	}
	if !found {
		var sigs []string
		for _, cn := range cns {
			sigs = append(sigs, cn.Signature)
		}
		t.Fatalf("expected author–writes–paper CN, got %v", sigs)
	}
	// All CNs respect size bound, cover both keywords and have keyword
	// leaves.
	for _, cn := range cns {
		if cn.Size > 3 {
			t.Fatalf("CN too large: %v", cn)
		}
		if !strings.Contains(cn.Signature, "gray") || !strings.Contains(cn.Signature, "transaction") {
			t.Fatalf("CN does not cover keywords: %v", cn)
		}
	}
}

func TestEnumerateDedup(t *testing.T) {
	db := miniDBLP(t)
	cns, err := Enumerate(db, []string{"gray", "transaction"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, cn := range cns {
		if seen[cn.Signature] {
			t.Fatalf("duplicate CN %v", cn)
		}
		seen[cn.Signature] = true
	}
}

func TestEnumerateSizeOrdering(t *testing.T) {
	db := miniDBLP(t)
	cns, err := Enumerate(db, []string{"gray", "transaction"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cns); i++ {
		if cns[i].Size < cns[i-1].Size {
			t.Fatal("CNs not sorted by size")
		}
	}
}

func TestEnumerateSingleNodeCN(t *testing.T) {
	db := miniDBLP(t)
	// Both keywords on the same tuple → a size-1 CN must exist.
	cns, err := Enumerate(db, []string{"transaction", "recovery"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cn := range cns {
		if cn.Size == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("size-1 CN not enumerated for co-occurring keywords")
	}
}

func TestEnumerateUnmatchedKeyword(t *testing.T) {
	db := miniDBLP(t)
	cns, err := Enumerate(db, []string{"gray", "zzzznothing"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cns) != 0 {
		t.Fatalf("CNs enumerated for unmatched keyword: %v", cns)
	}
}

func TestEnumerateValidation(t *testing.T) {
	db := miniDBLP(t)
	if _, err := Enumerate(db, nil, 3); err == nil {
		t.Fatal("empty keywords accepted")
	}
	if _, err := Enumerate(db, []string{"gray"}, 0); err == nil {
		t.Fatal("zero maxSize accepted")
	}
	too := make([]string, 17)
	for i := range too {
		too[i] = "x"
	}
	if _, err := Enumerate(db, too, 3); err == nil {
		t.Fatal("17 keywords accepted")
	}
}

func TestRunFindsJoinResult(t *testing.T) {
	db := miniDBLP(t)
	out, err := Run(db, []string{"gray", "transaction"}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results")
	}
	// One result must connect author 0 (Gray) with paper 0 (Transaction
	// Recovery).
	found := false
	for _, r := range out.Results {
		hasGray, hasPaper := false, false
		for _, ref := range r.Rows {
			if ref.Table == "author" && ref.Row == 0 {
				hasGray = true
			}
			if ref.Table == "paper" && ref.Row == 0 {
				hasPaper = true
			}
		}
		if hasGray && hasPaper {
			found = true
		}
	}
	if !found {
		t.Fatalf("gray–transaction join not found: %v", out.Results)
	}
	if out.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestRunLimitPerCN(t *testing.T) {
	db := miniDBLP(t)
	out, err := Run(db, []string{"paper"}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "paper" matches no tuple text in this fixture (only table name,
	// which Sparse does not model) — expect zero results rather than an
	// error.
	_ = out
}

func TestRunSelfJoinSchema(t *testing.T) {
	// Citation-style self join: paper←cites→paper with keywords on both
	// sides.
	db := relational.NewDatabase()
	paper, _ := db.CreateTable("paper", []string{"title"}, nil)
	cites, _ := db.CreateTable("cites", nil, []relational.FK{
		{Name: "src", RefTable: "paper"},
		{Name: "dst", RefTable: "paper"},
	})
	paper.Append([]string{"alpha topic"}, nil)
	paper.Append([]string{"beta topic"}, nil)
	cites.Append(nil, []int32{0, 1})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	out, err := Run(db, []string{"alpha", "beta"}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) == 0 {
		t.Fatal("self-join CN found no results")
	}
}
