// Package sparse implements the Sparse algorithm of Hristidis, Gravano and
// Papakonstantinou, "Efficient IR-style keyword search over relational
// databases" (VLDB 2003) — the candidate-network baseline the paper
// compares against in §5.
//
// A candidate network (CN) is a join tree of relation occurrences, each
// optionally annotated with query keywords its tuples must contain, whose
// annotations together cover the whole query (AND semantics, the setting
// where the paper reports Sparse works best). Sparse evaluates each CN as
// a join — here with indexed nested-loop joins over the in-memory
// relational engine, matching the warm-cache, indexed measurement
// methodology of §5.2 — and merges the per-CN results.
//
// The experiment harness uses this package for the "Sparse-LB" columns of
// Figure 5: evaluating all CNs no larger than the relevant answer is a
// lower bound on Sparse's cost, because the real algorithm must also try
// larger networks before it can bound the result stream.
package sparse

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"banks/internal/index"
	"banks/internal/relational"
)

// CN is one candidate network.
type CN struct {
	Root *relational.JoinNode
	// Size is the number of relation occurrences.
	Size int
	// Signature is the canonical unrooted form used for deduplication.
	Signature string
}

// String renders the CN in Discover notation, e.g.
// "author{gray}⋈writes⋈paper{transaction}".
func (c *CN) String() string { return c.Signature }

// Result is one join result of one CN.
type Result struct {
	CN   *CN
	Rows relational.JoinResult
}

// Output bundles a Sparse run.
type Output struct {
	CNs     []*CN
	Results []Result
	Elapsed time.Duration
}

// schemaEdge is one foreign key viewed as an undirected schema-graph edge.
type schemaEdge struct {
	from string // table holding the FK
	fk   int    // FK index within from
	to   string // referenced table
}

// Run enumerates all candidate networks of at most maxSize occurrences for
// the keywords and evaluates each against db (limitPerCN caps results per
// CN; 0 = unlimited). Keywords are normalized before matching.
func Run(db *relational.Database, keywords []string, maxSize, limitPerCN int) (*Output, error) {
	cns, err := Enumerate(db, keywords, maxSize)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	out := &Output{CNs: cns}
	for _, cn := range cns {
		res, err := db.EvalJoin(cn.Root, limitPerCN)
		if err != nil {
			return nil, fmt.Errorf("sparse: evaluating %s: %w", cn, err)
		}
		for _, r := range res {
			out.Results = append(out.Results, Result{CN: cn, Rows: r})
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// Enumerate generates all distinct candidate networks of size ≤ maxSize
// covering every keyword, with the standard validity rule that leaf
// occurrences must carry keywords (free leaves only enlarge results
// without adding coverage).
func Enumerate(db *relational.Database, keywords []string, maxSize int) ([]*CN, error) {
	if len(keywords) == 0 {
		return nil, errors.New("sparse: no keywords")
	}
	if len(keywords) > 16 {
		return nil, fmt.Errorf("sparse: %d keywords exceeds maximum 16", len(keywords))
	}
	if maxSize <= 0 {
		return nil, errors.New("sparse: maxSize must be positive")
	}
	norm := make([]string, len(keywords))
	for i, k := range keywords {
		norm[i] = index.Normalize(k)
	}

	// Which tables can host which keywords.
	hosts := make([][]string, len(norm))
	for i, k := range norm {
		for _, t := range db.TableNames() {
			if len(db.Table(t).MatchingRows(k)) > 0 {
				hosts[i] = append(hosts[i], t)
			}
		}
		if len(hosts[i]) == 0 {
			return nil, nil // a keyword matches nothing: no CNs, no answers
		}
	}

	var edges []schemaEdge
	for _, t := range db.TableNames() {
		for k, fk := range db.Table(t).FKs {
			edges = append(edges, schemaEdge{from: t, fk: k, to: fk.RefTable})
		}
	}

	full := uint32(1)<<len(norm) - 1

	// Seed with every (table, keyword-subset) single node, where the table
	// hosts all keywords in the subset (non-empty subsets only: the first
	// node is a leaf until expanded).
	var queue []partial
	seen := map[string]bool{}
	var complete []*CN

	for mask := uint32(1); mask <= full; mask++ {
		for _, t := range db.TableNames() {
			if !tableHosts(db, t, norm, mask) {
				continue
			}
			p := partial{root: &cnNode{table: t, mask: mask}, mask: mask, size: 1}
			queue = append(queue, p)
		}
	}

	emit := func(p partial) {
		if p.mask != full || !leavesCovered(p.root) {
			return
		}
		sig := canonicalCN(p.root, norm)
		if seen[sig] {
			return
		}
		seen[sig] = true
		complete = append(complete, &CN{Root: toJoinTree(db, p.root, norm), Size: p.size, Signature: sig})
	}

	// Breadth-first growth: attach one occurrence at a time to any node of
	// the partial tree via any schema edge.
	expandSeen := map[string]bool{}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		emit(p)
		if p.size >= maxSize {
			continue
		}
		sig := canonicalCN(p.root, norm)
		key := fmt.Sprintf("%s|%d", sig, p.mask)
		if expandSeen[key] {
			continue
		}
		expandSeen[key] = true

		nodes := collect(p.root)
		for _, at := range nodes {
			for _, e := range edges {
				// Attach a new occurrence of the opposite table.
				var newTable string
				var pfk, cfk int
				switch at.table {
				case e.from:
					newTable, pfk, cfk = e.to, e.fk, -1
				case e.to:
					newTable, pfk, cfk = e.from, -1, e.fk
				default:
					continue
				}
				// Keyword subsets the new node can carry (possibly empty).
				for mask := uint32(0); mask <= full; mask++ {
					if mask&p.mask != 0 {
						continue
					}
					if mask != 0 && !tableHosts(db, newTable, norm, mask) {
						continue
					}
					np := clonePartial(p)
					nat := findClone(np.root, p.root, at)
					nat.children = append(nat.children, &cnChild{
						node:     &cnNode{table: newTable, mask: mask},
						parentFK: pfk,
						childFK:  cfk,
					})
					np.mask |= mask
					np.size++
					queue = append(queue, np)
				}
			}
		}
	}

	sort.Slice(complete, func(i, j int) bool {
		if complete[i].Size != complete[j].Size {
			return complete[i].Size < complete[j].Size
		}
		return complete[i].Signature < complete[j].Signature
	})
	return complete, nil
}

// cnNode is the internal CN tree representation.
type cnNode struct {
	table    string
	mask     uint32
	children []*cnChild
}

// partial is a CN under construction: a rooted tree plus the mask of
// covered keywords.
type partial struct {
	root *cnNode
	mask uint32
	size int
}

type cnChild struct {
	node     *cnNode
	parentFK int // FK index in parent (≥0) or -1
	childFK  int // FK index in child (≥0) or -1
}

func tableHosts(db *relational.Database, table string, kws []string, mask uint32) bool {
	t := db.Table(table)
	for i, k := range kws {
		if mask&(1<<i) != 0 && len(t.MatchingRows(k)) == 0 {
			return false
		}
	}
	return true
}

func leavesCovered(n *cnNode) bool {
	if len(n.children) == 0 {
		return n.mask != 0
	}
	for _, c := range n.children {
		if !leavesCovered(c.node) {
			return false
		}
	}
	return true
}

func collect(n *cnNode) []*cnNode {
	out := []*cnNode{n}
	for _, c := range n.children {
		out = append(out, collect(c.node)...)
	}
	return out
}

func clonePartial(p partial) partial {
	return partial{root: cloneNode(p.root), mask: p.mask, size: p.size}
}

func cloneNode(n *cnNode) *cnNode {
	c := &cnNode{table: n.table, mask: n.mask}
	for _, ch := range n.children {
		c.children = append(c.children, &cnChild{
			node:     cloneNode(ch.node),
			parentFK: ch.parentFK,
			childFK:  ch.childFK,
		})
	}
	return c
}

// findClone locates, in the cloned tree, the node corresponding to target
// in the original tree (parallel traversal).
func findClone(cloneRoot, origRoot, target *cnNode) *cnNode {
	if origRoot == target {
		return cloneRoot
	}
	for i, ch := range origRoot.children {
		if found := findClone(cloneRoot.children[i].node, ch.node, target); found != nil {
			return found
		}
	}
	return nil
}

// canonicalCN returns a rooting-independent canonical string: the minimum
// over all rootings of the recursive canonical form. CNs are tiny (≤ 8
// nodes), so re-rooting cost is irrelevant.
func canonicalCN(root *cnNode, kws []string) string {
	und := buildUndirected(root, kws)
	best := ""
	for i := range und.labels {
		s := und.canonical(i, -1)
		if best == "" || s < best {
			best = s
		}
	}
	return best
}

type undirected struct {
	labels []string
	adj    [][]struct {
		to   int
		edge string
	}
}

func buildUndirected(root *cnNode, kws []string) *undirected {
	u := &undirected{}
	var walk func(n *cnNode) int
	walk = func(n *cnNode) int {
		id := len(u.labels)
		u.labels = append(u.labels, nodeLabel(n, kws))
		u.adj = append(u.adj, nil)
		for _, c := range n.children {
			cid := walk(c.node)
			// Edge label encodes which side holds the FK, so structurally
			// different joins do not collapse.
			var el string
			if c.parentFK >= 0 {
				el = fmt.Sprintf("p%d", c.parentFK)
			} else {
				el = fmt.Sprintf("c%d", c.childFK)
			}
			u.adj[id] = append(u.adj[id], struct {
				to   int
				edge string
			}{cid, el + ">"})
			u.adj[cid] = append(u.adj[cid], struct {
				to   int
				edge string
			}{id, el + "<"})
		}
		return id
	}
	walk(root)
	return u
}

func (u *undirected) canonical(at, from int) string {
	var parts []string
	for _, e := range u.adj[at] {
		if e.to == from {
			continue
		}
		parts = append(parts, e.edge+u.canonical(e.to, at))
	}
	sort.Strings(parts)
	return u.labels[at] + "(" + strings.Join(parts, ",") + ")"
}

func nodeLabel(n *cnNode, kws []string) string {
	var ks []string
	for i, k := range kws {
		if n.mask&(1<<i) != 0 {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	if len(ks) == 0 {
		return n.table
	}
	return n.table + "{" + strings.Join(ks, " ") + "}"
}

// toJoinTree converts the internal representation into the relational
// engine's executable join tree.
func toJoinTree(db *relational.Database, n *cnNode, kws []string) *relational.JoinNode {
	jn := &relational.JoinNode{Table: n.table}
	for i, k := range kws {
		if n.mask&(1<<i) != 0 {
			jn.Terms = append(jn.Terms, k)
		}
	}
	for _, c := range n.children {
		jn.Children = append(jn.Children, relational.JoinEdge{
			Child:    toJoinTree(db, c.node, kws),
			ParentFK: c.parentFK,
			ChildFK:  c.childFK,
		})
	}
	return jn
}
