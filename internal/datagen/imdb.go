package datagen

import (
	"fmt"
	"math/rand"
	"slices"

	"banks/internal/relational"
)

// IMDBConfig sizes the synthetic movie dataset (the IMDB stand-in).
type IMDBConfig struct {
	Movies    int
	Actors    int
	Directors int
	// SeedsPerCombo as in DBLPConfig. Default 25.
	SeedsPerCombo int
	Seed          int64
}

// DefaultIMDB returns a config scaled by factor (factor 1 ≈ 170k tuples;
// the paper says IMDB "has a similar size" to DBLP).
func DefaultIMDB(factor float64) IMDBConfig {
	if factor <= 0 {
		factor = 1
	}
	return IMDBConfig{
		Movies:        int(25_000 * factor),
		Actors:        int(20_000 * factor),
		Directors:     int(3_000 * factor),
		SeedsPerCombo: 25,
		Seed:          2,
	}
}

// IMDB generates the movie dataset:
//
//	actor(name)
//	director(name)
//	movie(title) → director
//	casts(actor→actor, movie→movie, role text)
//
// Casts rows carry a role string so keywords can also match relationship
// tuples (the paper's graphs associate text with link tuples too).
func IMDB(cfg IMDBConfig) (*Dataset, error) {
	if cfg.Movies < 10 || cfg.Actors < 10 || cfg.Directors < 2 {
		return nil, fmt.Errorf("datagen: IMDB config too small: %+v", cfg)
	}
	if cfg.SeedsPerCombo <= 0 {
		cfg.SeedsPerCombo = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	firstPool := makeNamePool(max(20, cfg.Actors/50), 2)
	lastPool := makeNamePool(max(40, cfg.Actors/5), 3)
	// First names are Zipf-distributed so a few names ("John") match very
	// many tuples — the frequent-keyword scenario of §4.1 and the
	// large-origin class of §5.4.
	firstZipf := rand.NewZipf(rng, 1.4, 3, uint64(len(firstPool)-1))
	actorNames := make([]string, cfg.Actors)
	for i := range actorNames {
		actorNames[i] = firstPool[firstZipf.Uint64()] + " " + lastPool[rng.Intn(len(lastPool))]
	}
	directorNames := make([]string, cfg.Directors)
	for i := range directorNames {
		directorNames[i] = firstPool[rng.Intn(len(firstPool))] + " " + lastPool[rng.Intn(len(lastPool))]
	}

	voc := newVocab(rng, 1500)
	titles := make([]string, cfg.Movies)
	for i := range titles {
		titles[i] = voc.title(2 + rng.Intn(4))
	}

	movieDirector := make([]int32, cfg.Movies)
	dirZipf := rand.NewZipf(rng, 1.2, 4, uint64(cfg.Directors-1))
	for i := range movieDirector {
		movieDirector[i] = int32(dirZipf.Uint64())
	}

	// Casts: 2–8 actors per movie; star actors (low Zipf rank) appear in
	// very many movies — the "John" case from §4.1 with large fan-in.
	actorZipf := rand.NewZipf(rng, 1.25, 6, uint64(cfg.Actors-1))
	movieActors := make([][]int32, cfg.Movies)
	for i := range movieActors {
		na := 2 + rng.Intn(7)
		seen := make(map[int32]struct{}, na)
		for len(seen) < na {
			var a int32
			if rng.Intn(2) == 0 {
				a = int32(actorZipf.Uint64())
			} else {
				a = int32(rng.Intn(cfg.Actors))
			}
			seen[a] = struct{}{}
		}
		for a := range seen {
			movieActors[i] = append(movieActors[i], a)
		}
		// Map iteration order is random; sort so identical seeds yield
		// identical datasets.
		slices.Sort(movieActors[i])
	}

	entity := newPlanner("movie", "p", cfg.Movies)
	namePl := newPlanner("actor", "a", cfg.Movies)
	planted := make(map[string]map[int32]struct{})
	plant := func(term string, row int32) bool {
		rows, ok := planted[term]
		if !ok {
			rows = make(map[int32]struct{})
			planted[term] = rows
		}
		if _, dup := rows[row]; dup {
			return false
		}
		rows[row] = struct{}{}
		return true
	}

	var seeds []ComboSeed
	for _, combo := range allCombos() {
		for s := 0; s < cfg.SeedsPerCombo; s++ {
			m := int32(rng.Intn(cfg.Movies))
			if len(movieActors[m]) == 0 {
				continue
			}
			a := movieActors[m][rng.Intn(len(movieActors[m]))]
			t1, t2 := takePair(rng, entity, combo[0], combo[1])
			n1, n2 := takePair(rng, namePl, combo[2], combo[3])
			if !plant(t1, m) || !plant(t2, m) || !plant(n1, a) || !plant(n2, a) {
				continue
			}
			titles[m] += " " + t1 + " " + t2
			actorNames[a] += " " + n1 + " " + n2
			seeds = append(seeds, ComboSeed{
				Combo:       combo,
				EntityTerms: [2]string{t1, t2},
				NameTerms:   [2]string{n1, n2},
				EntityTable: "movie", EntityRow: m,
				NameTable: "actor", NameRow: a,
			})
		}
	}
	topUp(rng, entity, plant, func(term string, row int32) { titles[row] += " " + term }, cfg.Movies)
	topUp(rng, namePl, plant, func(term string, row int32) { actorNames[row] += " " + term }, cfg.Actors)

	roles := []string{"lead", "villain", "cameo", "support", "narrator", "hero", "detective", "captain"}

	db := relational.NewDatabase()
	actor, err := db.CreateTable("actor", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	director, err := db.CreateTable("director", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	movie, err := db.CreateTable("movie", []string{"title"}, []relational.FK{{Name: "director", RefTable: "director"}})
	if err != nil {
		return nil, err
	}
	casts, err := db.CreateTable("casts", []string{"role"}, []relational.FK{
		{Name: "actor", RefTable: "actor"},
		{Name: "movie", RefTable: "movie"},
	})
	if err != nil {
		return nil, err
	}

	for _, n := range actorNames {
		actor.Append([]string{n}, nil)
	}
	for _, n := range directorNames {
		director.Append([]string{n}, nil)
	}
	for i, t := range titles {
		movie.Append([]string{t}, []int32{movieDirector[i]})
	}
	for m, as := range movieActors {
		for _, a := range as {
			casts.Append([]string{roles[rng.Intn(len(roles))]}, []int32{a, int32(m)})
		}
	}
	if err := db.Freeze(); err != nil {
		return nil, err
	}

	return &Dataset{
		Name:        "imdb",
		DB:          db,
		Bands:       append(entity.bandTermsMeta(), namePl.bandTermsMeta()...),
		Seeds:       seeds,
		EntityTable: "movie", NameTable: "actor",
		LinkTable: "casts", LinkEntityFK: 1, LinkNameFK: 0,
	}, nil
}
