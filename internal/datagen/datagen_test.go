package datagen

import (
	"testing"

	"banks/internal/relational"
)

// smallDBLP is shared across tests; generation is deterministic.
func smallDBLP(t *testing.T) *Dataset {
	t.Helper()
	ds, err := DBLP(DBLPConfig{Papers: 2000, Authors: 1200, Confs: 12, SeedsPerCombo: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDBLPShape(t *testing.T) {
	ds := smallDBLP(t)
	db := ds.DB
	for _, name := range []string{"author", "conference", "paper", "writes", "cites"} {
		if db.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if db.Table("paper").NumRows() != 2000 {
		t.Fatalf("papers = %d", db.Table("paper").NumRows())
	}
	if db.Table("author").NumRows() != 1200 {
		t.Fatalf("authors = %d", db.Table("author").NumRows())
	}
	w := db.Table("writes").NumRows()
	if w < 2000 || w > 4*2000 {
		t.Fatalf("writes rows = %d, want between 1 and 4 per paper", w)
	}
}

func TestDBLPDeterministic(t *testing.T) {
	cfg := DBLPConfig{Papers: 500, Authors: 300, Confs: 8, SeedsPerCombo: 2, Seed: 9}
	a, err := DBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 500; i++ {
		if a.DB.Table("paper").Row(i).Texts[0] != b.DB.Table("paper").Row(i).Texts[0] {
			t.Fatalf("row %d differs between identical-seed runs", i)
		}
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("seed counts differ: %d vs %d", len(a.Seeds), len(b.Seeds))
	}
}

func TestDBLPRejectsTinyConfig(t *testing.T) {
	if _, err := DBLP(DBLPConfig{Papers: 1, Authors: 1, Confs: 1}); err == nil {
		t.Fatal("tiny config accepted")
	}
}

func TestBandCountsRoughlyOnTarget(t *testing.T) {
	ds := smallDBLP(t)
	paper := ds.DB.Table("paper")
	author := ds.DB.Table("author")
	for _, bt := range ds.Bands {
		var got int
		switch bt.Table {
		case "paper":
			got = len(paper.MatchingRows(bt.Term))
		case "author":
			got = len(author.MatchingRows(bt.Term))
		default:
			t.Fatalf("band term in unexpected table %s", bt.Table)
		}
		if got == 0 {
			t.Errorf("band term %s (band %s) matches nothing", bt.Term, bt.Band)
			continue
		}
		// Combo seeding can add a few extra occurrences beyond the target.
		if got > bt.Count+40 {
			t.Errorf("band term %s: %d occurrences, planned %d", bt.Term, got, bt.Count)
		}
	}
}

func TestBandOrdering(t *testing.T) {
	// Average count per band must increase from tiny to large.
	ds, err := DBLP(DBLPConfig{Papers: 20_000, Authors: 10_000, Confs: 20, SeedsPerCombo: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	paper := ds.DB.Table("paper")
	avg := make(map[Band]float64)
	n := make(map[Band]int)
	for _, bt := range ds.Bands {
		if bt.Table != "paper" {
			continue
		}
		avg[bt.Band] += float64(len(paper.MatchingRows(bt.Term)))
		n[bt.Band]++
	}
	for b := BandTiny; b < numBands; b++ {
		if n[b] == 0 {
			t.Fatalf("no paper-side terms for band %s", b)
		}
		avg[b] /= float64(n[b])
	}
	if !(avg[BandTiny] < avg[BandSmall] && avg[BandSmall] < avg[BandMedium] && avg[BandMedium] < avg[BandLarge]) {
		t.Fatalf("band averages not increasing: %v", avg)
	}
}

func TestComboSeedsAreConnectedAndMatch(t *testing.T) {
	ds := smallDBLP(t)
	if len(ds.Seeds) == 0 {
		t.Fatal("no combo seeds planted")
	}
	paper := ds.DB.Table("paper")
	author := ds.DB.Table("author")
	writes := ds.DB.Table("writes")
	for _, s := range ds.Seeds {
		// The entity tuple must contain both entity terms.
		for _, term := range s.EntityTerms {
			if !contains(paper.MatchingRows(term), s.EntityRow) {
				t.Fatalf("seed %v: paper %d does not match %s", s.Combo, s.EntityRow, term)
			}
		}
		for _, term := range s.NameTerms {
			if !contains(author.MatchingRows(term), s.NameRow) {
				t.Fatalf("seed %v: author %d does not match %s", s.Combo, s.NameRow, term)
			}
		}
		// There must be a writes row linking them.
		linked := false
		for _, w := range writes.RefRows(ds.LinkEntityFK, s.EntityRow) {
			if writes.Row(w).FKs[ds.LinkNameFK] == s.NameRow {
				linked = true
				break
			}
		}
		if !linked {
			t.Fatalf("seed %v: paper %d and author %d not linked", s.Combo, s.EntityRow, s.NameRow)
		}
	}
}

func TestAllCombosSeeded(t *testing.T) {
	ds := smallDBLP(t)
	seen := make(map[[4]Band]int)
	for _, s := range ds.Seeds {
		seen[s.Combo]++
	}
	for _, c := range Combos() {
		if seen[c] == 0 {
			t.Errorf("combo %s has no seeds", ComboLabel(c))
		}
	}
}

func TestIMDBShape(t *testing.T) {
	ds, err := IMDB(IMDBConfig{Movies: 800, Actors: 700, Directors: 30, SeedsPerCombo: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"actor", "director", "movie", "casts"} {
		if ds.DB.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if ds.EntityTable != "movie" || ds.NameTable != "actor" || ds.LinkTable != "casts" {
		t.Fatalf("metadata wrong: %+v", ds)
	}
	// Casts rows carry role text.
	if len(ds.DB.Table("casts").Row(0).Texts) != 1 {
		t.Fatal("casts rows should have a role text column")
	}
	if len(ds.Seeds) == 0 {
		t.Fatal("no combo seeds")
	}
}

func TestPatentsShape(t *testing.T) {
	ds, err := Patents(PatentsConfig{Patents: 900, Inventors: 600, Assignees: 20, SeedsPerCombo: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"assignee", "inventor", "patent", "invents", "cites"} {
		if ds.DB.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	if ds.DB.Table("cites").NumRows() == 0 {
		t.Fatal("patents should cite each other")
	}
}

func TestBandString(t *testing.T) {
	if BandTiny.String() != "T" || BandLarge.String() != "L" {
		t.Fatal("band labels wrong")
	}
	if ComboLabel([4]Band{BandTiny, BandSmall, BandMedium, BandLarge}) != "(T,S,M,L)" {
		t.Fatalf("ComboLabel = %s", ComboLabel([4]Band{BandTiny, BandSmall, BandMedium, BandLarge}))
	}
}

func TestHubConferenceExists(t *testing.T) {
	ds := smallDBLP(t)
	paper := ds.DB.Table("paper")
	counts := make(map[int32]int)
	for i := int32(0); i < int32(paper.NumRows()); i++ {
		counts[paper.Row(i).FKs[0]]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Zipf skew must create at least one hub conference holding >20% of
	// papers — the large fan-in scenario of §4.1.
	if maxCount < paper.NumRows()/5 {
		t.Fatalf("largest conference has only %d/%d papers; want a hub", maxCount, paper.NumRows())
	}
}

func TestBandTermsFor(t *testing.T) {
	ds := smallDBLP(t)
	terms := ds.BandTermsFor("paper", BandTiny)
	if len(terms) != bandTermsPerSide[BandTiny] {
		t.Fatalf("BandTermsFor(paper,tiny) = %d terms, want %d", len(terms), bandTermsPerSide[BandTiny])
	}
	if len(ds.BandTermsFor("author", BandLarge)) != bandTermsPerSide[BandLarge] {
		t.Fatal("author large band terms missing")
	}
}

func contains(list []int32, v int32) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

var _ = relational.RowRef{} // keep import if test edits remove direct uses
