// Package datagen generates the synthetic datasets that stand in for the
// paper's DBLP, IMDB and US-Patent databases (§5).
//
// The real dumps are not redistributable, and the algorithms' behaviour
// depends only on (a) graph topology — entity tables linked through
// relationship tables, hub nodes with very large fan-in, citation links —
// and (b) keyword selectivity. The generators reproduce both knobs
// deterministically: background text is drawn from a Zipfian vocabulary
// (frequent terms like "database" naturally have large origin sets), and a
// set of *planted band terms* is injected with exact occurrence counts so
// the tiny/small/medium/large selectivity categories of §5.6 exist by
// construction at every scale. Planted combo seeds guarantee that the
// workload generator can always build queries whose keywords co-occur in a
// small join tree, mirroring how the paper derives queries from SQL result
// rows (§5.4).
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"banks/internal/relational"
)

// Band is a keyword-selectivity category from §5.6.
type Band int

// Selectivity bands. The paper's thresholds on DBLP-scale data (~500k
// papers): tiny 1–500, small 1000–2000, medium 2500–5000, large >7000
// matching tuples. Generators scale these proportionally to entity count.
const (
	BandTiny Band = iota
	BandSmall
	BandMedium
	BandLarge
	numBands
)

// String returns the one-letter category name used in Figure 6(c).
func (b Band) String() string {
	switch b {
	case BandTiny:
		return "T"
	case BandSmall:
		return "S"
	case BandMedium:
		return "M"
	case BandLarge:
		return "L"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// bandCount returns the planted occurrence count for band b when the
// primary entity table has n rows. Fractions are chosen so that at the
// paper's DBLP scale (~500k papers) the counts land inside the paper's
// band ranges.
func bandCount(b Band, n int) int {
	frac := map[Band]float64{
		BandTiny:   0.0004, // 200 at 500k
		BandSmall:  0.003,  // 1500 at 500k
		BandMedium: 0.0075, // 3750 at 500k
		BandLarge:  0.02,   // 10000 at 500k
	}[b]
	c := int(frac * float64(n))
	if c < 2 {
		c = 2
	}
	return c
}

// bandTermsPerSide is how many distinct planted terms each band gets on
// each side (entity titles vs. name tables).
var bandTermsPerSide = map[Band]int{
	BandTiny:   20,
	BandSmall:  10,
	BandMedium: 8,
	BandLarge:  6,
}

var bandPrefix = map[Band]string{
	BandTiny:   "xqtiny",
	BandSmall:  "xqsmall",
	BandMedium: "xqmed",
	BandLarge:  "xqbig",
}

// BandTerm is a planted term with a known selectivity band and the table
// it was planted into.
type BandTerm struct {
	Term  string
	Table string
	Band  Band
	// Count is the exact number of tuples the term was planted into.
	Count int
}

// ComboSeed records a pair of linked tuples that was seeded with band
// terms so that a 3-node answer tree (entity ← link → name-entity)
// covering four keywords of the given bands is guaranteed to exist
// (Figure 6(c) workload).
type ComboSeed struct {
	Combo [4]Band
	// EntityTerms are planted in the entity tuple (e.g. paper title);
	// NameTerms in the linked name tuple (e.g. author name).
	EntityTerms [2]string
	NameTerms   [2]string
	// EntityRow / NameRow locate the seeded tuples.
	EntityTable string
	EntityRow   int32
	NameTable   string
	NameRow     int32
}

// Dataset bundles a generated database with its planting metadata.
type Dataset struct {
	Name string
	DB   *relational.Database
	// Bands lists all planted band terms.
	Bands []BandTerm
	// Seeds lists the planted Figure-6(c) combo seeds.
	Seeds []ComboSeed
	// EntityTable and NameTable are the tables band terms were planted
	// into (e.g. "paper" and "author"), and LinkTable the relationship
	// table connecting them (e.g. "writes") with LinkEntityFK/LinkNameFK
	// its FK column indexes.
	EntityTable, NameTable, LinkTable string
	LinkEntityFK, LinkNameFK          int
}

// BandTermsFor returns the planted terms of band b in the named table.
func (d *Dataset) BandTermsFor(table string, b Band) []string {
	var out []string
	for _, bt := range d.Bands {
		if bt.Table == table && bt.Band == b {
			out = append(out, bt.Term)
		}
	}
	return out
}

// --- text machinery ---

var consonants = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
	"n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "dr", "gr",
	"kh", "pr", "sh", "st", "th", "tr"}
var vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}

// syllable returns a pseudo-syllable for index i, deterministic.
func syllable(i int) string {
	c := consonants[i%len(consonants)]
	v := vowels[(i/len(consonants))%len(vowels)]
	return c + v
}

// makeNamePool generates n distinct capitalized pseudo-names.
func makeNamePool(n int, syllables int) []string {
	pool := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		x := i
		for s := 0; s < syllables; s++ {
			sb.WriteString(syllable(x % 240))
			x = x/240 + 7*s + i%13
		}
		name := sb.String()
		pool[i] = strings.ToUpper(name[:1]) + name[1:] + suffix(i)
	}
	return pool
}

// suffix disambiguates pool entries that would otherwise collide.
func suffix(i int) string {
	if i < 240*240 {
		return ""
	}
	return fmt.Sprintf("%d", i)
}

// domainWords gives the vocabulary some realistic database-flavoured terms
// so ad-hoc demo queries (e.g. "transaction recovery") match something.
var domainWords = []string{
	"database", "transaction", "query", "optimization", "recovery", "index",
	"keyword", "search", "graph", "parametric", "xml", "schema", "join",
	"concurrency", "storage", "distributed", "stream", "mining", "web",
	"semantic", "spatial", "temporal", "parallel", "relational", "object",
	"cache", "logging", "replication", "cluster", "ranking",
}

// vocab is a Zipf-sampled word list: a few hundred generated words plus
// the domain words, with rank-frequency following a Zipf law so that
// low-rank words are "large origin" terms and tail words are rare.
type vocab struct {
	words []string
	zipf  *rand.Zipf
}

func newVocab(rng *rand.Rand, size int) *vocab {
	words := make([]string, 0, size)
	words = append(words, domainWords...)
	for i := len(words); i < size; i++ {
		words = append(words, "w"+syllable(i%240)+syllable((i/240)%240)+fmt.Sprintf("%d", i/57600))
	}
	return &vocab{
		words: words,
		zipf:  rand.NewZipf(rng, 1.07, 1.0, uint64(size-1)),
	}
}

// title samples nWords words (with replacement) into a space-separated
// pseudo-title.
func (v *vocab) title(nWords int) string {
	var sb strings.Builder
	for i := 0; i < nWords; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(v.words[v.zipf.Uint64()])
	}
	return sb.String()
}

// bandTermName returns the j-th planted term of band b on the given side
// ("p" for entity/title side, "a" for name side).
func bandTermName(b Band, side string, j int) string {
	return fmt.Sprintf("%s%02d%s", bandPrefix[b], j, side)
}

// planner tracks how many occurrences of each planted term have been used
// so far, so combo seeding and top-up together hit the exact target count.
type planner struct {
	target map[string]int
	used   map[string]int
	terms  map[Band][]string // per band, this side's terms
	side   string
	table  string
}

func newPlanner(table, side string, entityCount int) *planner {
	p := &planner{
		target: make(map[string]int),
		used:   make(map[string]int),
		terms:  make(map[Band][]string),
		side:   side,
		table:  table,
	}
	for b := BandTiny; b < numBands; b++ {
		n := bandTermsPerSide[b]
		cnt := bandCount(b, entityCount)
		for j := 0; j < n; j++ {
			term := bandTermName(b, side, j)
			p.terms[b] = append(p.terms[b], term)
			p.target[term] = cnt
		}
	}
	return p
}

// take returns a term of band b that still has unused occurrences,
// consuming one occurrence. It falls back to round-robin if all are
// exhausted (the extra occurrences keep the term within its band since
// combo seeding uses far fewer slots than the band count).
func (p *planner) take(rng *rand.Rand, b Band) string {
	terms := p.terms[b]
	start := rng.Intn(len(terms))
	for i := 0; i < len(terms); i++ {
		t := terms[(start+i)%len(terms)]
		if p.used[t] < p.target[t] {
			p.used[t]++
			return t
		}
	}
	t := terms[start]
	p.used[t]++
	return t
}

// bandTermsMeta returns the BandTerm records for this planner's side with
// final counts.
func (p *planner) bandTermsMeta() []BandTerm {
	var out []BandTerm
	for b := BandTiny; b < numBands; b++ {
		for _, t := range p.terms[b] {
			c := p.used[t]
			if c < p.target[t] {
				c = p.target[t]
			}
			out = append(out, BandTerm{Term: t, Table: p.table, Band: b, Count: c})
		}
	}
	return out
}

// remaining returns how many top-up occurrences term t still needs.
func (p *planner) remaining(t string) int {
	r := p.target[t] - p.used[t]
	if r < 0 {
		return 0
	}
	return r
}

// allCombos returns the eight Figure-6(c) band combinations, reconstructed
// from the paper's text (the figure's x-axis labels are a typesetting
// error; see DESIGN.md).
func allCombos() [][4]Band {
	T, S, M, L := BandTiny, BandSmall, BandMedium, BandLarge
	return [][4]Band{
		{T, T, T, T},
		{T, T, T, L},
		{T, T, L, L},
		{T, L, L, L},
		{T, S, M, L},
		{M, M, M, M},
		{M, L, L, L},
		{L, L, L, L},
	}
}

// Combos exposes the Figure-6(c) band combinations for the workload and
// experiment packages.
func Combos() [][4]Band { return allCombos() }

// ComboLabel formats a combo like "(T,T,T,L)".
func ComboLabel(c [4]Band) string {
	return fmt.Sprintf("(%s,%s,%s,%s)", c[0], c[1], c[2], c[3])
}
