package datagen

import (
	"fmt"
	"math/rand"
	"slices"

	"banks/internal/relational"
)

// PatentsConfig sizes the synthetic patent dataset (the US-Patents
// stand-in). The paper's subset has 4M nodes and 15M edges; the default
// factor-1 config keeps the same *relative* proportions at bench scale.
type PatentsConfig struct {
	Patents   int
	Inventors int
	Assignees int
	// SeedsPerCombo as in DBLPConfig. Default 25.
	SeedsPerCombo int
	Seed          int64
}

// DefaultPatents returns a config scaled by factor (factor 1 ≈ 200k
// tuples).
func DefaultPatents(factor float64) PatentsConfig {
	if factor <= 0 {
		factor = 1
	}
	return PatentsConfig{
		Patents:       int(40_000 * factor),
		Inventors:     int(25_000 * factor),
		Assignees:     int(1_500 * factor),
		SeedsPerCombo: 25,
		Seed:          3,
	}
}

// Patents generates the patent dataset:
//
//	assignee(name)
//	inventor(name)
//	patent(title) → assignee           (company hub edge)
//	invents(inventor→inventor, patent→patent)
//	cites(src→patent, dst→patent)
func Patents(cfg PatentsConfig) (*Dataset, error) {
	if cfg.Patents < 10 || cfg.Inventors < 10 || cfg.Assignees < 2 {
		return nil, fmt.Errorf("datagen: Patents config too small: %+v", cfg)
	}
	if cfg.SeedsPerCombo <= 0 {
		cfg.SeedsPerCombo = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	firstPool := makeNamePool(max(20, cfg.Inventors/50), 2)
	lastPool := makeNamePool(max(40, cfg.Inventors/5), 3)
	// First names are Zipf-distributed so a few names ("John") match very
	// many tuples — the frequent-keyword scenario of §4.1 and the
	// large-origin class of §5.4.
	firstZipf := rand.NewZipf(rng, 1.4, 3, uint64(len(firstPool)-1))
	inventorNames := make([]string, cfg.Inventors)
	for i := range inventorNames {
		inventorNames[i] = firstPool[firstZipf.Uint64()] + " " + lastPool[rng.Intn(len(lastPool))]
	}
	assigneeNames := make([]string, cfg.Assignees)
	companies := []string{"Microsoft", "Oracle", "Lucent", "Kodak", "Xerox"}
	companyPool := makeNamePool(cfg.Assignees, 3)
	for i := range assigneeNames {
		if i < len(companies) {
			assigneeNames[i] = companies[i] + " Corporation"
		} else {
			assigneeNames[i] = companyPool[i] + " Inc"
		}
	}

	voc := newVocab(rng, 2500)
	titles := make([]string, cfg.Patents)
	for i := range titles {
		titles[i] = voc.title(5 + rng.Intn(6))
	}

	patentAssignee := make([]int32, cfg.Patents)
	assigneeZipf := rand.NewZipf(rng, 1.15, 2, uint64(cfg.Assignees-1))
	for i := range patentAssignee {
		patentAssignee[i] = int32(assigneeZipf.Uint64())
	}

	inventorZipf := rand.NewZipf(rng, 1.3, 8, uint64(cfg.Inventors-1))
	patentInventors := make([][]int32, cfg.Patents)
	for i := range patentInventors {
		ni := 1 + rng.Intn(3)
		seen := make(map[int32]struct{}, ni)
		for len(seen) < ni {
			var a int32
			if rng.Intn(2) == 0 {
				a = int32(inventorZipf.Uint64())
			} else {
				a = int32(rng.Intn(cfg.Inventors))
			}
			seen[a] = struct{}{}
		}
		for a := range seen {
			patentInventors[i] = append(patentInventors[i], a)
		}
		// Map iteration order is random; sort so identical seeds yield
		// identical datasets.
		slices.Sort(patentInventors[i])
	}

	type cite struct{ src, dst int32 }
	var cites []cite
	for i := 1; i < cfg.Patents; i++ {
		nc := rng.Intn(7) // patents cite heavily: ~3 on average
		for c := 0; c < nc; c++ {
			a, b := rng.Intn(i), rng.Intn(i)
			cites = append(cites, cite{int32(i), int32(min(a, b))})
		}
	}

	entity := newPlanner("patent", "p", cfg.Patents)
	namePl := newPlanner("inventor", "a", cfg.Patents)
	planted := make(map[string]map[int32]struct{})
	plant := func(term string, row int32) bool {
		rows, ok := planted[term]
		if !ok {
			rows = make(map[int32]struct{})
			planted[term] = rows
		}
		if _, dup := rows[row]; dup {
			return false
		}
		rows[row] = struct{}{}
		return true
	}

	var seeds []ComboSeed
	for _, combo := range allCombos() {
		for s := 0; s < cfg.SeedsPerCombo; s++ {
			p := int32(rng.Intn(cfg.Patents))
			if len(patentInventors[p]) == 0 {
				continue
			}
			a := patentInventors[p][rng.Intn(len(patentInventors[p]))]
			t1, t2 := takePair(rng, entity, combo[0], combo[1])
			n1, n2 := takePair(rng, namePl, combo[2], combo[3])
			if !plant(t1, p) || !plant(t2, p) || !plant(n1, a) || !plant(n2, a) {
				continue
			}
			titles[p] += " " + t1 + " " + t2
			inventorNames[a] += " " + n1 + " " + n2
			seeds = append(seeds, ComboSeed{
				Combo:       combo,
				EntityTerms: [2]string{t1, t2},
				NameTerms:   [2]string{n1, n2},
				EntityTable: "patent", EntityRow: p,
				NameTable: "inventor", NameRow: a,
			})
		}
	}
	topUp(rng, entity, plant, func(term string, row int32) { titles[row] += " " + term }, cfg.Patents)
	topUp(rng, namePl, plant, func(term string, row int32) { inventorNames[row] += " " + term }, cfg.Inventors)

	db := relational.NewDatabase()
	assignee, err := db.CreateTable("assignee", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	inventor, err := db.CreateTable("inventor", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	patent, err := db.CreateTable("patent", []string{"title"}, []relational.FK{{Name: "assignee", RefTable: "assignee"}})
	if err != nil {
		return nil, err
	}
	invents, err := db.CreateTable("invents", nil, []relational.FK{
		{Name: "inventor", RefTable: "inventor"},
		{Name: "patent", RefTable: "patent"},
	})
	if err != nil {
		return nil, err
	}
	citesT, err := db.CreateTable("cites", nil, []relational.FK{
		{Name: "src", RefTable: "patent"},
		{Name: "dst", RefTable: "patent"},
	})
	if err != nil {
		return nil, err
	}

	for _, n := range assigneeNames {
		assignee.Append([]string{n}, nil)
	}
	for _, n := range inventorNames {
		inventor.Append([]string{n}, nil)
	}
	for i, t := range titles {
		patent.Append([]string{t}, []int32{patentAssignee[i]})
	}
	for p, is := range patentInventors {
		for _, a := range is {
			invents.Append(nil, []int32{a, int32(p)})
		}
	}
	for _, c := range cites {
		citesT.Append(nil, []int32{c.src, c.dst})
	}
	if err := db.Freeze(); err != nil {
		return nil, err
	}

	return &Dataset{
		Name:        "patents",
		DB:          db,
		Bands:       append(entity.bandTermsMeta(), namePl.bandTermsMeta()...),
		Seeds:       seeds,
		EntityTable: "patent", NameTable: "inventor",
		LinkTable: "invents", LinkEntityFK: 1, LinkNameFK: 0,
	}, nil
}
