package datagen

import (
	"fmt"
	"math/rand"
	"slices"

	"banks/internal/relational"
)

// DBLPConfig sizes the synthetic bibliography dataset (the DBLP stand-in).
type DBLPConfig struct {
	Papers  int
	Authors int
	Confs   int
	// SeedsPerCombo is how many linked (paper, author) pairs are seeded
	// with band terms per Figure-6(c) combination. Default 25.
	SeedsPerCombo int
	Seed          int64
}

// DefaultDBLP returns a config scaled by factor: factor 1 is the bench
// default (~180k tuples); the paper's DBLP has roughly 2M nodes, i.e.
// factor ≈ 11.
func DefaultDBLP(factor float64) DBLPConfig {
	if factor <= 0 {
		factor = 1
	}
	return DBLPConfig{
		Papers:        int(30_000 * factor),
		Authors:       int(18_000 * factor),
		Confs:         int(60 * factor),
		SeedsPerCombo: 25,
		Seed:          1,
	}
}

// DBLP generates the bibliography dataset:
//
//	author(name)
//	conference(name)
//	paper(title) → conference            (the hub edge of §2.1)
//	writes(author→author, paper→paper)   (authorship link table)
//	cites(src→paper, dst→paper)          (citation links)
func DBLP(cfg DBLPConfig) (*Dataset, error) {
	if cfg.Papers < 10 || cfg.Authors < 10 || cfg.Confs < 2 {
		return nil, fmt.Errorf("datagen: DBLP config too small: %+v", cfg)
	}
	if cfg.SeedsPerCombo <= 0 {
		cfg.SeedsPerCombo = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- base content ---
	firstPool := makeNamePool(max(20, cfg.Authors/40), 2)
	lastPool := makeNamePool(max(40, cfg.Authors/4), 3)
	// First names are Zipf-distributed so a few names ("John") match very
	// many tuples — the frequent-keyword scenario of §4.1 and the
	// large-origin class of §5.4.
	firstZipf := rand.NewZipf(rng, 1.4, 3, uint64(len(firstPool)-1))
	authorNames := make([]string, cfg.Authors)
	for i := range authorNames {
		authorNames[i] = firstPool[firstZipf.Uint64()] + " " + lastPool[rng.Intn(len(lastPool))]
	}

	confNames := make([]string, cfg.Confs)
	famous := []string{"VLDB", "SIGMOD", "ICDE", "PODS", "EDBT"}
	confPool := makeNamePool(cfg.Confs, 2)
	for i := range confNames {
		if i < len(famous) {
			confNames[i] = famous[i]
		} else {
			confNames[i] = "Conf" + confPool[i]
		}
	}

	voc := newVocab(rng, 2000)
	titles := make([]string, cfg.Papers)
	for i := range titles {
		titles[i] = voc.title(4 + rng.Intn(5))
	}

	// Paper → conference assignment, Zipf-skewed so a few conferences have
	// enormous fan-in (the paper's "conference node with large degree").
	confZipf := rand.NewZipf(rng, 1.2, 2, uint64(cfg.Confs-1))
	paperConf := make([]int32, cfg.Papers)
	for i := range paperConf {
		paperConf[i] = int32(confZipf.Uint64())
	}

	// Authorship: 1–4 authors per paper; half the picks are Zipf-skewed so
	// prolific authors exist (the "C. Mohan" case of §5.5 with large
	// fan-in on a tiny origin).
	authorZipf := rand.NewZipf(rng, 1.3, 8, uint64(cfg.Authors-1))
	paperAuthors := make([][]int32, cfg.Papers)
	for i := range paperAuthors {
		na := 1 + rng.Intn(4)
		seen := make(map[int32]struct{}, na)
		for len(seen) < na {
			var a int32
			if rng.Intn(2) == 0 {
				a = int32(authorZipf.Uint64())
			} else {
				a = int32(rng.Intn(cfg.Authors))
			}
			seen[a] = struct{}{}
		}
		for a := range seen {
			paperAuthors[i] = append(paperAuthors[i], a)
		}
		// Map iteration order is random; sort so identical seeds yield
		// identical datasets.
		slices.Sort(paperAuthors[i])
	}

	// Citations: papers cite earlier papers, skewed toward low ids so some
	// papers are highly cited (prestige differentiation, §2.3).
	type cite struct{ src, dst int32 }
	var cites []cite
	for i := 1; i < cfg.Papers; i++ {
		nc := rng.Intn(5)
		for c := 0; c < nc; c++ {
			a, b := rng.Intn(i), rng.Intn(i)
			cites = append(cites, cite{int32(i), int32(min(a, b))})
		}
	}

	// --- band planting ---
	entity := newPlanner("paper", "p", cfg.Papers)
	namePl := newPlanner("author", "a", cfg.Papers)
	planted := make(map[string]map[int32]struct{})
	plant := func(term string, row int32) bool {
		rows, ok := planted[term]
		if !ok {
			rows = make(map[int32]struct{})
			planted[term] = rows
		}
		if _, dup := rows[row]; dup {
			return false
		}
		rows[row] = struct{}{}
		return true
	}

	var seeds []ComboSeed
	for _, combo := range allCombos() {
		for s := 0; s < cfg.SeedsPerCombo; s++ {
			p := int32(rng.Intn(cfg.Papers))
			if len(paperAuthors[p]) == 0 {
				continue
			}
			a := paperAuthors[p][rng.Intn(len(paperAuthors[p]))]
			t1, t2 := takePair(rng, entity, combo[0], combo[1])
			n1, n2 := takePair(rng, namePl, combo[2], combo[3])
			if !plant(t1, p) || !plant(t2, p) || !plant(n1, a) || !plant(n2, a) {
				continue // rare collision; skip this seed
			}
			titles[p] += " " + t1 + " " + t2
			authorNames[a] += " " + n1 + " " + n2
			seeds = append(seeds, ComboSeed{
				Combo:       combo,
				EntityTerms: [2]string{t1, t2},
				NameTerms:   [2]string{n1, n2},
				EntityTable: "paper", EntityRow: p,
				NameTable: "author", NameRow: a,
			})
		}
	}

	// Top-up each planted term to its exact band count.
	topUp(rng, entity, plant, func(term string, row int32) { titles[row] += " " + term }, cfg.Papers)
	topUp(rng, namePl, plant, func(term string, row int32) { authorNames[row] += " " + term }, cfg.Authors)

	// --- assemble relational database ---
	db := relational.NewDatabase()
	author, err := db.CreateTable("author", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	conference, err := db.CreateTable("conference", []string{"name"}, nil)
	if err != nil {
		return nil, err
	}
	paper, err := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conference"}})
	if err != nil {
		return nil, err
	}
	writes, err := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	if err != nil {
		return nil, err
	}
	citesT, err := db.CreateTable("cites", nil, []relational.FK{
		{Name: "src", RefTable: "paper"},
		{Name: "dst", RefTable: "paper"},
	})
	if err != nil {
		return nil, err
	}

	for _, n := range authorNames {
		author.Append([]string{n}, nil)
	}
	for _, n := range confNames {
		conference.Append([]string{n}, nil)
	}
	for i, t := range titles {
		paper.Append([]string{t}, []int32{paperConf[i]})
	}
	for p, as := range paperAuthors {
		for _, a := range as {
			writes.Append(nil, []int32{a, int32(p)})
		}
	}
	for _, c := range cites {
		citesT.Append(nil, []int32{c.src, c.dst})
	}
	if err := db.Freeze(); err != nil {
		return nil, err
	}

	ds := &Dataset{
		Name:        "dblp",
		DB:          db,
		Bands:       append(entity.bandTermsMeta(), namePl.bandTermsMeta()...),
		Seeds:       seeds,
		EntityTable: "paper", NameTable: "author",
		LinkTable: "writes", LinkEntityFK: 1, LinkNameFK: 0,
	}
	return ds, nil
}

// takePair draws two distinct terms for bands b1 and b2 from planner p.
func takePair(rng *rand.Rand, p *planner, b1, b2 Band) (string, string) {
	t1 := p.take(rng, b1)
	t2 := p.take(rng, b2)
	for tries := 0; t2 == t1 && tries < 32; tries++ {
		t2 = p.take(rng, b2)
	}
	return t1, t2
}

// topUp plants each term's remaining occurrences into random rows. The
// tries budget guards against pathological configs where a term's target
// exceeds the number of available rows.
func topUp(rng *rand.Rand, p *planner, plant func(string, int32) bool, apply func(string, int32), numRows int) {
	// Iterate bands in fixed order (p.terms is a map) so identical seeds
	// consume the rng identically and yield identical datasets.
	for b := BandTiny; b < numBands; b++ {
		terms := p.terms[b]
		for _, term := range terms {
			left := min(p.remaining(term), numRows/2)
			for tries := 0; left > 0 && tries < 50*numRows; tries++ {
				row := int32(rng.Intn(numRows))
				if plant(term, row) {
					apply(term, row)
					left--
				}
			}
		}
	}
}
