// Package index implements the keyword index of BANKS-II (§3).
//
// "A single index is built on values from selected string-valued attributes
// from multiple tables. The index maps from keywords to (table-name,
// tuple-id) pairs." Here tuples are graph nodes, so the index maps a term
// to the sorted set of NodeIDs whose text contains the term. Per §2.2, a
// term that matches a relation name matches every tuple of that relation.
package index

import (
	"sort"
	"strings"
	"unicode"

	"banks/internal/graph"
)

// Index is an inverted index from lower-cased terms to node IDs.
//
// It has two interchangeable backings: the mutable map form filled by
// AddText/AddTerm and frozen in place (the Build path), and the columnar
// Flat form attached by FromFlat, whose arrays may be zero-copy views over
// a memory-mapped snapshot. Lookup results are identical either way.
type Index struct {
	postings map[string][]graph.NodeID
	// relation name → all nodes of that relation (materialized lazily at
	// Freeze time from the graph's node→table mapping).
	relations map[string][]graph.NodeID
	frozen    bool
	// flat, when non-nil, serves all reads; the map fields are nil.
	flat *Flat
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings:  make(map[string][]graph.NodeID),
		relations: make(map[string][]graph.NodeID),
	}
}

// FromMaps builds a frozen index directly from explicit posting and
// relation maps, taking ownership of both (the caller must not modify
// them afterwards). Posting lists are sorted and deduplicated here;
// relation lists are trusted as given, which is what the compaction path
// needs: unlike Freeze, which derives relation pseudo-postings from
// every node of the graph, FromMaps lets the caller exclude tombstoned
// placeholder nodes so deleted tuples stay unfindable by relation-name
// terms. Keys must already be in Normalize form.
func FromMaps(postings, relations map[string][]graph.NodeID) *Index {
	if postings == nil {
		postings = make(map[string][]graph.NodeID)
	}
	if relations == nil {
		relations = make(map[string][]graph.NodeID)
	}
	for term, list := range postings {
		postings[term] = dedupe(list)
	}
	return &Index{postings: postings, relations: relations, frozen: true}
}

// AddText tokenizes text and adds a posting for each distinct term to node
// u. Safe to call repeatedly for the same node (e.g. one call per string
// attribute).
func (ix *Index) AddText(u graph.NodeID, text string) {
	ix.mutable()
	for _, term := range Tokenize(text) {
		ix.postings[term] = append(ix.postings[term], u)
	}
}

// AddTerm adds a single pre-tokenized term for node u. The term is
// normalized (lower-cased) first.
func (ix *Index) AddTerm(u graph.NodeID, term string) {
	ix.mutable()
	t := Normalize(term)
	if t == "" {
		return
	}
	ix.postings[t] = append(ix.postings[t], u)
}

// Freeze sorts and deduplicates all posting lists and records relation-name
// pseudo-postings from g (a query term equal to a relation name matches all
// tuples of the relation). Lookup before Freeze returns unsorted data;
// always Freeze after loading.
func (ix *Index) Freeze(g *graph.Graph) {
	if ix.flat != nil {
		return // snapshot-backed indexes are born frozen
	}
	for term, list := range ix.postings {
		ix.postings[term] = dedupe(list)
	}
	byTable := make(map[int][]graph.NodeID)
	for u := 0; u < g.NumNodes(); u++ {
		ti := g.TableIndex(graph.NodeID(u))
		byTable[ti] = append(byTable[ti], graph.NodeID(u))
	}
	for ti, name := range g.Tables() {
		ix.relations[Normalize(name)] = byTable[ti]
	}
	ix.frozen = true
}

// Lookup returns the nodes matching term: the union of the term's posting
// list and, if the term names a relation, all tuples of that relation. The
// result is sorted and deduplicated; it must not be modified.
func (ix *Index) Lookup(term string) []graph.NodeID {
	t := Normalize(term)
	var post, rel []graph.NodeID
	if ix.flat != nil {
		tb := []byte(t)
		post = ix.flat.termPostings(tb)
		rel = ix.flat.relPostings(tb)
	} else {
		post = ix.postings[t]
		rel = ix.relations[t]
	}
	switch {
	case len(rel) == 0:
		return post
	case len(post) == 0:
		return rel
	default:
		merged := make([]graph.NodeID, 0, len(post)+len(rel))
		merged = append(merged, post...)
		merged = append(merged, rel...)
		return dedupe(merged)
	}
}

// TermPostings returns the raw posting list of term — no relation-name
// merge — sorted ascending (nil if the term is unindexed). The slice is
// shared and must not be modified. The delta overlay uses the split
// accessors so deleting a (term,node) pair cannot hide a node that still
// matches via its relation name.
func (ix *Index) TermPostings(term string) []graph.NodeID {
	t := Normalize(term)
	if ix.flat != nil {
		return ix.flat.termPostings([]byte(t))
	}
	return ix.postings[t]
}

// RelationPostings returns the relation pseudo-postings of term: every
// node of the relation the term names, or nil when it names none. The
// slice is shared and must not be modified.
func (ix *Index) RelationPostings(term string) []graph.NodeID {
	t := Normalize(term)
	if ix.flat != nil {
		return ix.flat.relPostings([]byte(t))
	}
	return ix.relations[t]
}

// Count returns the number of nodes matching term without materializing a
// merged list (used for workload selectivity classification).
func (ix *Index) Count(term string) int {
	return len(ix.Lookup(term))
}

// Terms returns all indexed terms (not relation names) in unspecified
// order. Intended for workload generation and tests.
func (ix *Index) Terms() []string {
	if ix.flat != nil {
		out := make([]string, ix.flat.NumTerms())
		for i := range out {
			out[i] = ix.flat.Term(i)
		}
		return out
	}
	out := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		out = append(out, t)
	}
	return out
}

// ForEachTermPosting calls fn once per indexed term with the term's raw
// posting list — no relation-name merge — in unspecified order. The slice
// must not be modified (on a flat-backed index it may alias mapped
// memory). The compaction path uses this to rebuild a filtered index
// without going through per-term Lookup, which would fold relation
// pseudo-postings into every term that happens to name a relation.
func (ix *Index) ForEachTermPosting(fn func(term string, nodes []graph.NodeID)) {
	if ix.flat != nil {
		for i := 0; i < ix.flat.NumTerms(); i++ {
			fn(ix.flat.Term(i), ix.flat.Postings[ix.flat.PostOffsets[i]:ix.flat.PostOffsets[i+1]])
		}
		return
	}
	for t, list := range ix.postings {
		fn(t, list)
	}
}

// NumTerms returns the number of distinct indexed terms.
func (ix *Index) NumTerms() int {
	if ix.flat != nil {
		return ix.flat.NumTerms()
	}
	return len(ix.postings)
}

// mutable panics when the index cannot accept new postings. Flat-backed
// indexes may alias read-only mapped memory, so mutation is a programming
// error rather than a recoverable condition.
func (ix *Index) mutable() {
	if ix.flat != nil {
		panic("index: cannot add postings to a snapshot-backed index")
	}
}

func notAlnum(r rune) bool {
	return !unicode.IsLetter(r) && !unicode.IsNumber(r)
}

// Normalize lower-cases a term and trims surrounding punctuation. The trim
// runs again after lowering because lowering itself can surface non-letter
// runes at the edges (e.g. 'İ' lowers to 'i' plus a combining dot); without
// the second pass Lookup would normalize a query term differently from how
// Tokenize indexed it.
func Normalize(term string) string {
	t := strings.ToLower(strings.TrimFunc(term, notAlnum))
	return strings.TrimFunc(t, notAlnum)
}

// Tokenize splits text into normalized terms on any non-alphanumeric rune.
// Every returned term is in Normalize form, so Lookup(term) finds exactly
// the postings AddText recorded.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, notAlnum)
	out := fields[:0]
	for _, f := range fields {
		if t := Normalize(f); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func dedupe(list []graph.NodeID) []graph.NodeID {
	if len(list) < 2 {
		return list
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	w := 1
	for i := 1; i < len(list); i++ {
		if list[i] != list[i-1] {
			list[w] = list[i]
			w++
		}
	}
	return list[:w]
}
