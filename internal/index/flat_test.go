package index

import (
	"reflect"
	"sort"
	"testing"

	"banks/internal/graph"
)

func builtIndex(t *testing.T) (*Index, *graph.Graph) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNodes("author", 3)
	b.AddNodes("paper", 2)
	g := b.Build()
	ix := New()
	ix.AddText(0, "jim gray")
	ix.AddText(1, "pat selinger")
	ix.AddText(2, "jim ullman")
	ix.AddText(3, "transaction recovery")
	ix.AddText(4, "gray transaction")
	ix.Freeze(g)
	return ix, g
}

// TestFlattenFromFlatEquivalence pins that a flat-backed index answers
// every Lookup/Count/Terms/NumTerms exactly like the map-backed original.
func TestFlattenFromFlatEquivalence(t *testing.T) {
	ix, _ := builtIndex(t)
	f, err := ix.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(5); err != nil {
		t.Fatalf("Validate of a well-formed flat: %v", err)
	}
	fx := FromFlat(f)
	if fx.NumTerms() != ix.NumTerms() {
		t.Fatalf("NumTerms %d vs %d", fx.NumTerms(), ix.NumTerms())
	}
	a, b := ix.Terms(), fx.Terms()
	sort.Strings(a)
	sort.Strings(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Terms %v vs %v", b, a)
	}
	for _, term := range append(a, "author", "paper", "Gray", "nosuch", "") {
		want, got := ix.Lookup(term), fx.Lookup(term)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Lookup(%q): %v vs %v", term, got, want)
		}
		if ix.Count(term) != fx.Count(term) {
			t.Fatalf("Count(%q) differs", term)
		}
	}
}

// TestFlattenRequiresFreeze and mutation guards.
func TestFlatContracts(t *testing.T) {
	if _, err := New().Flatten(); err == nil {
		t.Fatal("Flatten before Freeze must fail")
	}
	ix, _ := builtIndex(t)
	f, err := ix.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FromFlat(f).Flatten()
	if err != nil || f2 != f {
		t.Fatal("flat-backed Flatten must return its own backing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddText on a flat-backed index must panic")
		}
	}()
	FromFlat(f).AddText(0, "boom")
}

// TestValidateRejectsForgedOffsets covers the offset-array attacks a
// snapshot reader must survive, including the non-monotone case
// [0, 10, 5] whose out-of-range middle entry is only detectable by an
// explicit bounds check before slicing (regression: this used to panic).
func TestValidateRejectsForgedOffsets(t *testing.T) {
	base := func() *Flat {
		return &Flat{
			TermOffsets:    []uint32{0, 2, 5},
			TermBytes:      []byte("abcde"),
			PostOffsets:    []uint32{0, 1, 2},
			Postings:       []graph.NodeID{0, 1},
			RelOffsets:     []uint32{0},
			RelBytes:       nil,
			RelPostOffsets: []uint32{0},
			RelPostings:    nil,
		}
	}
	if err := base().Validate(2); err != nil {
		t.Fatalf("well-formed flat rejected: %v", err)
	}
	mutations := map[string]func(*Flat){
		"term-offsets-overshoot-then-shrink": func(f *Flat) { f.TermOffsets = []uint32{0, 10, 5} },
		"term-offsets-decrease":              func(f *Flat) { f.TermOffsets = []uint32{0, 3, 2, 5}; f.PostOffsets = []uint32{0, 1, 1, 2} },
		"term-offsets-not-spanning":          func(f *Flat) { f.TermOffsets = []uint32{0, 2, 4} },
		"post-offsets-overshoot-then-shrink": func(f *Flat) { f.PostOffsets = []uint32{0, 9, 2} },
		"post-offsets-not-spanning":          func(f *Flat) { f.PostOffsets = []uint32{0, 1, 1} },
		"dict-not-sorted":                    func(f *Flat) { f.TermBytes = []byte("cbade") },
		"posting-out-of-range":               func(f *Flat) { f.Postings = []graph.NodeID{0, 7} },
		"posting-negative":                   func(f *Flat) { f.Postings = []graph.NodeID{-1, 1} },
		"posting-not-sorted":                 func(f *Flat) { f.PostOffsets = []uint32{0, 2, 2}; f.Postings = []graph.NodeID{1, 0} },
		"offset-count-mismatch":              func(f *Flat) { f.PostOffsets = []uint32{0, 2} },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Validate panicked: %v", r)
				}
			}()
			f := base()
			mutate(f)
			if err := f.Validate(2); err == nil {
				t.Fatal("forged flat accepted")
			}
		})
	}
}
