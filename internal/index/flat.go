package index

import (
	"bytes"
	"fmt"
	"sort"

	"banks/internal/graph"
)

// Flat is the frozen columnar form of an Index: a sorted term dictionary
// plus concatenated posting lists, and the same pair for relation-name
// pseudo-postings. All arrays are fixed-width or plain bytes, so a Flat can
// be backed either by heap slices (built by Flatten) or by zero-copy views
// over a memory-mapped snapshot (internal/store). Term i occupies
// TermBytes[TermOffsets[i]:TermOffsets[i+1]] and its posting list is
// Postings[PostOffsets[i]:PostOffsets[i+1]].
//
// Invariants (enforced by Validate): both dictionaries are strictly
// ascending in byte order, offset arrays are monotone and end at the
// length of the array they index, and every posting list is strictly
// ascending with node IDs in [0, NumNodes).
type Flat struct {
	TermOffsets []uint32
	TermBytes   []byte
	Postings    []graph.NodeID
	PostOffsets []uint32

	RelOffsets     []uint32
	RelBytes       []byte
	RelPostings    []graph.NodeID
	RelPostOffsets []uint32
}

// NumTerms returns the number of distinct terms in the dictionary.
func (f *Flat) NumTerms() int { return len(f.TermOffsets) - 1 }

// Term materializes dictionary entry i as a string.
func (f *Flat) Term(i int) string {
	return string(f.TermBytes[f.TermOffsets[i]:f.TermOffsets[i+1]])
}

// lookupDict binary-searches a dictionary (offsets into blob) for term and
// returns its index, or -1.
func lookupDict(offsets []uint32, blob []byte, term []byte) int {
	n := len(offsets) - 1
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(blob[offsets[i]:offsets[i+1]], term) >= 0
	})
	if i < n && bytes.Equal(blob[offsets[i]:offsets[i+1]], term) {
		return i
	}
	return -1
}

// termPostings returns the posting list of term (already normalized), or
// nil. The result aliases the backing array and must not be modified.
func (f *Flat) termPostings(term []byte) []graph.NodeID {
	i := lookupDict(f.TermOffsets, f.TermBytes, term)
	if i < 0 {
		return nil
	}
	return f.Postings[f.PostOffsets[i]:f.PostOffsets[i+1]]
}

// relPostings is termPostings over the relation-name dictionary.
func (f *Flat) relPostings(term []byte) []graph.NodeID {
	i := lookupDict(f.RelOffsets, f.RelBytes, term)
	if i < 0 {
		return nil
	}
	return f.RelPostings[f.RelPostOffsets[i]:f.RelPostOffsets[i+1]]
}

// Validate checks every structural invariant a query path relies on, so
// that a Flat assembled from untrusted snapshot bytes can never make
// Lookup panic or return out-of-range nodes. It reads each array exactly
// once.
func (f *Flat) Validate(numNodes int) error {
	if err := validateDict("term", f.TermOffsets, f.TermBytes, f.PostOffsets, f.Postings, numNodes); err != nil {
		return err
	}
	return validateDict("relation", f.RelOffsets, f.RelBytes, f.RelPostOffsets, f.RelPostings, numNodes)
}

func validateDict(kind string, offsets []uint32, blob []byte, postOff []uint32, postings []graph.NodeID, numNodes int) error {
	if len(offsets) == 0 || len(postOff) != len(offsets) {
		return fmt.Errorf("index: %s dictionary offset arrays have lengths %d/%d", kind, len(offsets), len(postOff))
	}
	if offsets[0] != 0 || int(offsets[len(offsets)-1]) != len(blob) {
		return fmt.Errorf("index: %s dictionary offsets do not span the term blob", kind)
	}
	if postOff[0] != 0 || int(postOff[len(postOff)-1]) != len(postings) {
		return fmt.Errorf("index: %s posting offsets do not span the posting array", kind)
	}
	var prev []byte
	for i := 0; i+1 < len(offsets); i++ {
		// An entry's end must be bounds-checked before slicing: a forged
		// array like [0, 10, 5] over a 5-byte blob passes the first/last
		// checks above and is non-decreasing at i=0, so the decrease would
		// only be caught after blob[0:10] had already panicked.
		if offsets[i] > offsets[i+1] || int(offsets[i+1]) > len(blob) {
			return fmt.Errorf("index: %s dictionary offsets corrupt at %d", kind, i)
		}
		cur := blob[offsets[i]:offsets[i+1]]
		if i > 0 && bytes.Compare(prev, cur) >= 0 {
			return fmt.Errorf("index: %s dictionary not strictly sorted at %d", kind, i)
		}
		prev = cur
		if postOff[i] > postOff[i+1] || int(postOff[i+1]) > len(postings) {
			return fmt.Errorf("index: %s posting offsets corrupt at %d", kind, i)
		}
		list := postings[postOff[i]:postOff[i+1]]
		for j, u := range list {
			if u < 0 || int(u) >= numNodes {
				return fmt.Errorf("index: %s %d posting %d references node %d outside [0,%d)", kind, i, j, u, numNodes)
			}
			if j > 0 && list[j-1] >= u {
				return fmt.Errorf("index: %s %d posting list not strictly sorted at %d", kind, i, j)
			}
		}
	}
	return nil
}

// Flatten converts a frozen Index into its columnar form (copying into
// fresh heap slices). The Index must have been frozen first so posting
// lists are sorted and deduplicated. A Flat-backed index flattens to its
// own backing arrays without copying.
func (ix *Index) Flatten() (*Flat, error) {
	if ix.flat != nil {
		return ix.flat, nil
	}
	if !ix.frozen {
		return nil, fmt.Errorf("index: Flatten before Freeze")
	}
	f := &Flat{}
	f.TermOffsets, f.TermBytes, f.PostOffsets, f.Postings = flattenDict(ix.postings)
	f.RelOffsets, f.RelBytes, f.RelPostOffsets, f.RelPostings = flattenDict(ix.relations)
	return f, nil
}

func flattenDict(m map[string][]graph.NodeID) (offsets []uint32, blob []byte, postOff []uint32, postings []graph.NodeID) {
	terms := make([]string, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	offsets = make([]uint32, 1, len(terms)+1)
	postOff = make([]uint32, 1, len(terms)+1)
	for _, t := range terms {
		blob = append(blob, t...)
		postings = append(postings, m[t]...)
		offsets = append(offsets, uint32(len(blob)))
		postOff = append(postOff, uint32(len(postings)))
	}
	return offsets, blob, postOff, postings
}

// FromFlat returns an Index served directly from a frozen columnar form.
// The Flat (and whatever memory backs it) must outlive the Index; call
// Validate before trusting snapshot-derived data.
func FromFlat(f *Flat) *Index {
	return &Index{flat: f, frozen: true}
}
