package index

import (
	"strings"
	"testing"
	"unicode"

	"banks/internal/graph"
)

// oneNodeGraph builds a single-node graph for Freeze.
func oneNodeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("row")
	return b.Build()
}

// FuzzTokenize checks the tokenizer invariants on arbitrary text: no empty
// terms, every term is in Normalize form (so Lookup can find it again), and
// tokenization is deterministic.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"Gray, TRANSACTION; recovery!",
		"a.b.c-d_e  f",
		"ALL CAPS 123 mixed99",
		"ümlaut Ünïcode ÅNGSTRÖM",
		"İstanbul DİYARBAKIR", // dotted capital I lowers to i + combining dot
		"数据库 データベース база данных",
		"\x00\xff\xfe broken \xf0\x28\x8c\x28 utf8",
		strings.Repeat("long ", 200),
		"...!!!???",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		terms := Tokenize(text)
		for _, term := range terms {
			if term == "" {
				t.Fatalf("Tokenize(%q) produced an empty term", text)
			}
			if n := Normalize(term); n != term {
				t.Fatalf("Tokenize(%q) produced non-normal term %q (Normalize → %q)", text, term, n)
			}
			first, _ := utf8DecodeRune(term)
			if !unicode.IsLetter(first) && !unicode.IsNumber(first) {
				t.Fatalf("term %q starts with separator rune %q", term, first)
			}
		}
		again := Tokenize(text)
		if len(again) != len(terms) {
			t.Fatalf("Tokenize(%q) not deterministic: %d vs %d terms", text, len(terms), len(again))
		}
		for i := range terms {
			if terms[i] != again[i] {
				t.Fatalf("Tokenize(%q) not deterministic at %d: %q vs %q", text, i, terms[i], again[i])
			}
		}
	})
}

func utf8DecodeRune(s string) (rune, int) {
	for _, r := range s {
		return r, len(string(r))
	}
	return 0, 0
}

// FuzzNormalize checks that Normalize is idempotent — the property the
// index relies on for AddText/Lookup agreement.
func FuzzNormalize(f *testing.F) {
	for _, s := range []string{"", "Gray!", "  .İ. ", "ǅungla", "ÅB̈C", "\xffé\xfe"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, term string) {
		n := Normalize(term)
		if n2 := Normalize(n); n2 != n {
			t.Fatalf("Normalize not idempotent: %q → %q → %q", term, n, n2)
		}
	})
}

// FuzzIndexLookup checks end-to-end agreement between indexing and lookup:
// every term Tokenize extracts from a document must find that document.
func FuzzIndexLookup(f *testing.F) {
	for _, s := range []string{"Gray transaction", "İstanbul 123", "唯一 word"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		g := oneNodeGraph(t)
		ix := New()
		ix.AddText(0, text)
		ix.Freeze(g)
		for _, term := range Tokenize(text) {
			nodes := ix.Lookup(term)
			found := false
			for _, u := range nodes {
				if u == 0 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("term %q extracted from %q not found by Lookup (got %v)", term, text, nodes)
			}
		}
	})
}
