package index

import (
	"reflect"
	"testing"
	"testing/quick"

	"banks/internal/graph"
)

func testGraph() *graph.Graph {
	b := graph.NewBuilder()
	b.AddNodes("paper", 3)  // nodes 0,1,2
	b.AddNodes("author", 2) // nodes 3,4
	_ = b.AddEdge(0, 3, 1, 0)
	return b.Build()
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Transaction Processing: Concepts", []string{"transaction", "processing", "concepts"}},
		{"", nil},
		{"   ", nil},
		{"XML-based B2B!", []string{"xml", "based", "b2b"}},
		{"Gray,Jim", []string{"gray", "jim"}},
		{"naïve Café", []string{"naïve", "café"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Gray":      "gray",
		"  Gray!? ": "gray",
		"'quoted'":  "quoted",
		"":          "",
		"--":        "",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	g := testGraph()
	ix := New()
	ix.AddText(0, "Transaction recovery in databases")
	ix.AddText(1, "Query optimization")
	ix.AddText(3, "Jim Gray")
	ix.AddText(4, "Jim Smith")
	ix.Freeze(g)

	if got := ix.Lookup("transaction"); !reflect.DeepEqual(got, []graph.NodeID{0}) {
		t.Fatalf("Lookup(transaction) = %v", got)
	}
	if got := ix.Lookup("JIM"); !reflect.DeepEqual(got, []graph.NodeID{3, 4}) {
		t.Fatalf("Lookup(JIM) = %v, want [3 4]", got)
	}
	if got := ix.Lookup("nosuchterm"); len(got) != 0 {
		t.Fatalf("Lookup(nosuchterm) = %v, want empty", got)
	}
	if ix.Count("jim") != 2 {
		t.Fatalf("Count(jim) = %d, want 2", ix.Count("jim"))
	}
}

func TestRelationNameMatchesAllTuples(t *testing.T) {
	g := testGraph()
	ix := New()
	ix.AddText(0, "some paper text")
	ix.Freeze(g)
	// §2.2: "if a term matches a relation name, all tuples in the relation
	// are assumed to match the term."
	if got := ix.Lookup("paper"); !reflect.DeepEqual(got, []graph.NodeID{0, 1, 2}) {
		t.Fatalf("Lookup(paper) = %v, want [0 1 2]", got)
	}
	if got := ix.Lookup("Author"); !reflect.DeepEqual(got, []graph.NodeID{3, 4}) {
		t.Fatalf("Lookup(Author) = %v, want [3 4]", got)
	}
}

func TestRelationNameMergesWithTextMatches(t *testing.T) {
	g := testGraph()
	ix := New()
	ix.AddText(3, "the paper writer") // author node whose text contains "paper"
	ix.Freeze(g)
	got := ix.Lookup("paper")
	want := []graph.NodeID{0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Lookup(paper) = %v, want %v", got, want)
	}
}

func TestDuplicatePostingsDeduped(t *testing.T) {
	g := testGraph()
	ix := New()
	ix.AddText(0, "gray gray gray")
	ix.AddText(0, "gray again")
	ix.Freeze(g)
	if got := ix.Lookup("gray"); !reflect.DeepEqual(got, []graph.NodeID{0}) {
		t.Fatalf("Lookup(gray) = %v, want [0]", got)
	}
}

func TestAddTerm(t *testing.T) {
	g := testGraph()
	ix := New()
	ix.AddTerm(2, "  Special-Term ") // trims punctuation only at ends
	ix.AddTerm(2, "")
	ix.Freeze(g)
	if got := ix.Lookup("special-term"); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Fatalf("Lookup(special-term) = %v, want [2]", got)
	}
	if ix.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1", ix.NumTerms())
	}
}

// Property: Lookup results are always sorted, unique and within node range.
func TestQuickLookupInvariants(t *testing.T) {
	g := testGraph()
	f := func(texts []string) bool {
		ix := New()
		for i, txt := range texts {
			ix.AddText(graph.NodeID(i%5), txt)
		}
		ix.Freeze(g)
		for _, term := range ix.Terms() {
			list := ix.Lookup(term)
			for j, id := range list {
				if id < 0 || int(id) >= 5 {
					return false
				}
				if j > 0 && list[j-1] >= id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	g := testGraph()
	ix := New()
	for i := 0; i < 5; i++ {
		ix.AddText(graph.NodeID(i), "alpha beta gamma delta epsilon zeta")
	}
	ix.Freeze(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup("gamma")
	}
}
